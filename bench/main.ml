(* Benchmark harness.

   Regenerates every table and figure of the paper's evaluation
   (Tables 1-2, Figures 2(b)-(d), 3(b)-(d)), runs the ablation studies
   from DESIGN.md, and closes with Bechamel micro-benchmarks of the
   fitting kernels behind each table/figure (on a dimension-reduced
   instance so Bechamel can afford many repetitions; the harness above
   reports the true paper-scale fitting costs).

   Usage: main.exe [tab1] [tab2] [fig2] [fig3] [ablation] [micro] [par]
                   [posterior] [serve] [frontend] [synth] [quick|full|smoke]
   CBMF_BENCH_QUICK=1 forces the reduced [synth] grid without smoke
   validation.
   With no arguments everything runs at paper scale with a 4-point
   sample-budget grid for the figures; [full] uses the paper's 6-point
   grid, [quick] reduced (non-paper) settings. *)

open Cbmf_experiments

let fmt = Format.std_formatter

let section title = Format.fprintf fmt "@.=== %s ===@.@." title

(* Monte-Carlo data is generated once per circuit and shared. *)
let data_cache : (string, Workload.data) Hashtbl.t = Hashtbl.create 4

let data_for name =
  match Hashtbl.find_opt data_cache name with
  | Some d -> d
  | None ->
      let w = match name with "lna" -> Workload.lna () | _ -> Workload.mixer () in
      Format.fprintf fmt "[generating Monte-Carlo data: %s]@." name;
      let d = Workload.generate w ~seed:1 ~n_train_max:35 ~n_test_per_state:50 in
      Hashtbl.add data_cache name d;
      d

let cbmf_config ~quick =
  if quick then Cbmf_core.Cbmf.fast_config else Cbmf_core.Cbmf.default_config

let run_table ~quick id name =
  section (Printf.sprintf "%s (paper Table %s: %s)" id (String.sub id 3 1) name);
  let t = Tables.run ~cbmf_config:(cbmf_config ~quick) (data_for name) in
  Format.fprintf fmt "%a@." Tables.pp t;
  Format.fprintf fmt "Accuracy preserved (<=10%% relative): %b@."
    (Tables.accuracy_preserved t)

let run_figure ~quick ~full id name =
  section
    (Printf.sprintf "%s (paper Figure %s(b)-(d): %s error vs samples)" id
       (String.sub id 3 1) name);
  let n_grid =
    if quick then [| 10; 20; 35 |]
    else if full then [| 10; 15; 20; 25; 30; 35 |]
    else [| 10; 15; 25; 35 |]
  in
  let series =
    Sweep.run_all ~cbmf_config:(cbmf_config ~quick) ~n_grid (data_for name)
  in
  Array.iter (fun s -> Format.fprintf fmt "%a@.@." Sweep.pp s) series

let run_ablation () =
  section "Ablations (DESIGN.md: ablation-r / ablation-em / ablation-r0)";
  List.iter
    (fun name ->
      let data = data_for name in
      let a = Ablation.run data ~poi:0 ~n_per_state:15 in
      Format.fprintf fmt "%a@.@." Ablation.pp a)
    [ "lna"; "mixer" ]

(* --- Domain-parallel matrix ---------------------------------------- *)

(* Domain-count matrix for the parallel layer: {1, 2, 4} domains ×
   {em-fit, posterior-dual, matmul_nt, predict_batch, synth-k128},
   every cell timed min-of-reps against a sequential (pool size 1)
   reference pass, written to BENCH_parallel.json.  [smoke] shrinks
   the workloads (synthetic instances, no Monte-Carlo generation),
   re-reads the JSON, validates the schema and fails hard unless the
   1-domain cells stay within the 1.05x overhead bound — the contract
   that a 1-domain pool takes the sequential fallback and costs
   (essentially) nothing.  The [par-smoke] dune alias runs this under
   [dune runtest]. *)
let run_par ~smoke ~quick =
  section
    (if smoke then "par (smoke: domain-matrix schema + 1-domain overhead)"
     else "par (domain-count matrix {1,2,4} x 5 kernels, min-of-reps)");
  let module Pool = Cbmf_parallel.Pool in
  let module Tune = Cbmf_parallel.Tune in
  let module Synthetic = Cbmf_circuit.Synthetic in
  let open Cbmf_linalg in
  let domain_counts = [ 1; 2; 4 ] in
  let reps = if smoke then 5 else 3 in
  let time_min f =
    f ();
    (* warm: spawns the pool at the current size, pages buffers in *)
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let synth_spec ~k ~d ~m ~active ~seed =
    { Synthetic.k; m; d; active_per_state = active; rho = 0.9;
      noise_sigma = 0.05; density = 0.2; seed }
  in
  let synth_instance ~k ~d ~m ~active ~n_per_state ~seed =
    let truth = Synthetic.truth (synth_spec ~k ~d ~m ~active ~seed) in
    (truth, Synthetic.dataset truth ~n_per_state)
  in
  let dual_prior (truth : Synthetic.t) =
    let lambda = Array.make truth.Synthetic.spec.Synthetic.m 1e-7 in
    Array.iteri
      (fun i col -> lambda.(col) <- truth.Synthetic.lambda.(i))
      truth.Synthetic.support;
    Cbmf_core.Prior.create ~lambda ~r:(Mat.copy truth.Synthetic.r) ~sigma0:0.1
  in
  (* 1. em-fit: the acceptance-criterion workload (full run = LNA
     testbench; smoke = synthetic, Monte-Carlo-free). *)
  let em_kernel =
    if smoke then begin
      let _, train =
        synth_instance ~k:8 ~d:20 ~m:21 ~active:4 ~n_per_state:24 ~seed:7
      in
      let config =
        {
          Cbmf_core.Cbmf.init =
            {
              Cbmf_core.Init.r0_grid = [| 0.9 |];
              sigma0_grid = [| 0.1 |];
              theta_max = 5;
              n_folds = 2;
              lambda_off = 1e-7;
            };
          em = { Cbmf_core.Em.default_config with max_iter = 3; tol = 1e-3 };
        }
      in
      fun () -> ignore (Cbmf_core.Cbmf.fit ~config train)
    end
    else begin
      let data = data_for "lna" in
      let train = Workload.train_dataset data ~poi:0 ~n_per_state:15 in
      let config = cbmf_config ~quick in
      fun () -> ignore (Cbmf_core.Cbmf.fit ~config train)
    end
  in
  (* 2. posterior-dual: the G-assembly pair fan-out + NK x NK solve. *)
  let dual_kernel =
    let k, d, m, active, n_per_state =
      if smoke then (12, 24, 25, 6, 24) else (32, 60, 61, 8, 20)
    in
    let truth, train = synth_instance ~k ~d ~m ~active ~n_per_state ~seed:11 in
    let prior = dual_prior truth in
    fun () ->
      ignore
        (Cbmf_core.Posterior.compute ~need_sigma:true ~path:`Dual train prior
           ~active:truth.Synthetic.support)
  in
  (* 3. matmul_nt: the blocked GEMM behind Gram assembly, at a shape
     above the fan-out threshold. *)
  let gemm_kernel =
    let dim = if smoke then 256 else 360 in
    let rng = Cbmf_prob.Rng.create 17 in
    let ga = Mat.init dim dim (fun _ _ -> Cbmf_prob.Rng.gaussian rng) in
    let gb = Mat.init dim dim (fun _ _ -> Cbmf_prob.Rng.gaussian rng) in
    let dst = Mat.create dim dim in
    fun () -> Mat.matmul_nt_into ga gb ~dst
  in
  (* 4. predict_batch: the serving tier's chunk fan-out. *)
  let predict_kernel =
    let k, d, m, active, n_batch =
      if smoke then (8, 32, 65, 5, 32768) else (32, 32, 65, 8, 8192)
    in
    let truth = Synthetic.truth (synth_spec ~k ~d ~m ~active ~seed:23) in
    let model = Cbmf_serve.Model.of_synthetic truth in
    let xs, states = Synthetic.batch_inputs truth ~salt:0 ~n:n_batch in
    fun () -> ignore (Cbmf_serve.Engine.predict_batch model ~states ~xs)
  in
  (* 5. synth-k128: many-state posterior (K^2 = 16384 pair fan-out). *)
  let synth_kernel =
    let d, m, active, n_per_state =
      if smoke then (16, 17, 4, 4) else (200, 201, 6, 6)
    in
    let truth, train =
      synth_instance ~k:128 ~d ~m ~active ~n_per_state ~seed:33
    in
    fun () -> ignore (Recovery.posterior_path truth train)
  in
  let kernels =
    [ ("em-fit", em_kernel);
      ("posterior-dual", dual_kernel);
      ("matmul_nt", gemm_kernel);
      ("predict_batch", predict_kernel);
      ("synth-k128", synth_kernel) ]
  in
  let results =
    List.map
      (fun (name, f) ->
        Pool.set_default_size 1;
        let seconds_seq = time_min f in
        let cells =
          List.map
            (fun domains ->
              Pool.set_default_size domains;
              let s = time_min f in
              (domains, s, seconds_seq /. s, s /. seconds_seq))
            domain_counts
        in
        Format.fprintf fmt "  %-15s seq %9.4f s  |" name seconds_seq;
        List.iter
          (fun (dc, s, sp, _) ->
            Format.fprintf fmt "  %dd %9.4f s (%5.2fx)" dc s sp)
          cells;
        Format.fprintf fmt "@.";
        (name, seconds_seq, cells))
      kernels
  in
  Pool.set_default_size (Pool.env_domains ());
  let rec_domains = Domain.recommended_domain_count () in
  let tuned = Tune.recommended_domains () in
  Format.fprintf fmt
    "  recommended_domain_count = %d, tuned_domains = %d@." rec_domains tuned;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"domain_counts\": [%s],\n"
    (String.concat ", " (List.map string_of_int domain_counts));
  Printf.bprintf buf "  \"recommended_domain_count\": %d,\n" rec_domains;
  Printf.bprintf buf "  \"tuned_domains\": %d,\n" tuned;
  Buffer.add_string buf "  \"kernels\": [\n";
  List.iteri
    (fun i (name, seconds_seq, cells) ->
      Printf.bprintf buf "    {\"name\": %S, \"seconds_seq\": %.6f, \"cells\": [\n"
        name seconds_seq;
      List.iteri
        (fun j (dc, s, sp, ov) ->
          Printf.bprintf buf
            "      {\"domains\": %d, \"seconds\": %.6f, \
             \"speedup_vs_seq\": %.4f, \"overhead_vs_seq\": %.4f}%s\n"
            dc s sp ov
            (if j = List.length cells - 1 then "" else ","))
        cells;
      Printf.bprintf buf "    ]}%s\n"
        (if i = List.length results - 1 then "" else ","))
    results;
  Buffer.add_string buf "  ]\n";
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_parallel.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  Format.fprintf fmt "  [wrote BENCH_parallel.json]@.";
  if smoke then begin
    let ic = open_in "BENCH_parallel.json" in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let has needle =
      let nl = String.length needle and bl = String.length body in
      let rec scan i =
        if i + nl > bl then false
        else if String.sub body i nl = needle then true
        else scan (i + 1)
      in
      scan 0
    in
    let required =
      [ "\"domain_counts\""; "\"recommended_domain_count\"";
        "\"tuned_domains\""; "\"kernels\""; "\"seconds_seq\""; "\"cells\"";
        "\"domains\""; "\"seconds\""; "\"speedup_vs_seq\"";
        "\"overhead_vs_seq\""; "\"em-fit\""; "\"posterior-dual\"";
        "\"matmul_nt\""; "\"predict_batch\""; "\"synth-k128\"" ]
    in
    let missing = List.filter (fun k -> not (has k)) required in
    if missing <> [] then begin
      Format.fprintf fmt "  SMOKE FAIL: missing %s@."
        (String.concat ", " missing);
      exit 1
    end;
    (* Every kernel must carry one cell per domain count, all timings
       finite and positive. *)
    List.iter
      (fun (name, seconds_seq, cells) ->
        if List.map (fun (dc, _, _, _) -> dc) cells <> domain_counts then begin
          Format.fprintf fmt "  SMOKE FAIL: %s missing domain cells@." name;
          exit 1
        end;
        List.iter
          (fun (_, s, _, _) ->
            if not (Float.is_finite s && s > 0.0) then begin
              Format.fprintf fmt "  SMOKE FAIL: %s has bad timing@." name;
              exit 1
            end)
          ((0, seconds_seq, 0.0, 0.0) :: cells))
      results;
    (* The 1-domain overhead bound: a 1-domain pool takes the
       sequential fallback, so it must stay within 5% of a sequential
       pass.  The matrix cells above are measured in separate windows,
       where concurrent runtest load can skew the ratio — so the
       asserted measurement times back-to-back pairs (contention hits
       both legs), alternates which leg runs first (ordering/cache
       drift cancels), keeps only the least-contended third of the
       pairs (smallest wall-clock total: the quiet scheduling windows)
       and takes their median ratio (GC-pause outliers drop out). *)
    Pool.set_default_size 1;
    List.iter
      (fun (name, f) ->
        f ();
        let n_pairs = (4 * reps) + 1 in
        let pairs =
          Array.init n_pairs (fun i ->
              let t0 = Unix.gettimeofday () in
              f ();
              let t1 = Unix.gettimeofday () in
              f ();
              let t2 = Unix.gettimeofday () in
              let first = t1 -. t0 and second = t2 -. t1 in
              ( first +. second,
                if i land 1 = 0 then second /. first else first /. second ))
        in
        Array.sort compare pairs;
        let quiet = Array.sub pairs 0 (Stdlib.max 3 (n_pairs / 3)) in
        let ratios = Array.map snd quiet in
        Array.sort compare ratios;
        let ov = ratios.(Array.length ratios / 2) in
        if ov > 1.05 then begin
          Format.fprintf fmt
            "  SMOKE FAIL: %s 1-domain overhead %.3fx > 1.05x@." name ov;
          exit 1
        end)
      kernels;
    Pool.set_default_size (Pool.env_domains ());
    (* On a 1-core container (no CBMF_DOMAINS override) the tuner must
       recommend exactly 1 domain — no parallel path, no calibration. *)
    (if Sys.getenv_opt "CBMF_DOMAINS" = None && rec_domains = 1
        && tuned <> 1 then begin
       Format.fprintf fmt
         "  SMOKE FAIL: 1-core container but tuned_domains = %d@." tuned;
       exit 1
     end);
    Format.fprintf fmt
      "  smoke OK: schema valid, 1-domain overhead within 1.05x@."
  end

(* --- Posterior before/after kernels -------------------------------- *)

(* Times the PR's optimized hot paths against the frozen pre-PR
   implementations ([Legacy], naive GEMM), single-core, and writes
   BENCH_posterior.json.  [smoke] swaps the LNA workload for a tiny
   synthetic instance (no Monte-Carlo generation), then re-reads the
   JSON and fails hard unless the schema holds and both solver paths
   were exercised — this is what the [bench-smoke] dune alias runs
   under [dune runtest]. *)
let run_posterior ~smoke =
  section
    (if smoke then "posterior (smoke: schema + both solver paths)"
     else "posterior (before/after kernels, LNA workload)");
  let module Pool = Cbmf_parallel.Pool in
  let open Cbmf_linalg in
  Pool.set_default_size 1;
  let workload, n_per_state, d, prior =
    if smoke then begin
      let rng = Cbmf_prob.Rng.create 5 in
      let k = 3 and n = 6 and m = 10 in
      let design =
        Array.init k (fun _ ->
            Mat.init n m (fun _ _ -> Cbmf_prob.Rng.gaussian rng))
      in
      let response =
        Array.init k (fun _ -> Cbmf_prob.Rng.gaussian_vector rng n)
      in
      let d = Cbmf_model.Dataset.create ~design ~response in
      let lambda = Array.make m 1e-7 in
      Array.iter (fun j -> lambda.(j) <- 1.0) [| 1; 4; 7 |];
      let prior =
        Cbmf_core.Prior.create ~lambda
          ~r:(Cbmf_core.Prior.r_of_r0 ~n_states:k ~r0:0.9)
          ~sigma0:0.3
      in
      ("synthetic-smoke", n, d, prior)
    end
    else begin
      let data = data_for "lna" in
      let train = Workload.train_dataset data ~poi:0 ~n_per_state:15 in
      let _, std = Cbmf_core.Standardize.fit train in
      let init =
        Cbmf_core.Init.run
          ~config:Cbmf_core.Cbmf.fast_config.Cbmf_core.Cbmf.init std
      in
      ("lna", 15, std, init.Cbmf_core.Init.prior)
    end
  in
  let active =
    (* The initializer's support: post-pruning regime, aK < NK. *)
    let keep = ref [] in
    Array.iteri
      (fun j lam -> if lam > 1e-3 then keep := j :: !keep)
      prior.Cbmf_core.Prior.lambda;
    Array.of_list (List.rev !keep)
  in
  let reps = if smoke then 1 else 3 in
  let time_n f =
    f ();
    (* warm *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  (* 1. Blocked GEMM vs the naive triple loop, at Gram-assembly scale. *)
  let gemm_dim = if smoke then 24 else 360 in
  let rng = Cbmf_prob.Rng.create 17 in
  let ga =
    Mat.init gemm_dim gemm_dim (fun _ _ -> Cbmf_prob.Rng.gaussian rng)
  in
  let gb =
    Mat.init gemm_dim gemm_dim (fun _ _ -> Cbmf_prob.Rng.gaussian rng)
  in
  let gemm_before = time_n (fun () -> ignore (Mat.matmul_nt_naive ga gb)) in
  let gemm_after = time_n (fun () -> ignore (Mat.matmul_nt ga gb)) in
  (* 2. Full posterior (μ, Σ-blocks, NLML), legacy vs each new path. *)
  let post_before =
    time_n (fun () -> ignore (Legacy.compute ~need_sigma:true d prior ~active))
  in
  let post_dual =
    time_n (fun () ->
        ignore
          (Cbmf_core.Posterior.compute ~need_sigma:true ~path:`Dual d prior
             ~active))
  in
  let post_primal =
    time_n (fun () ->
        ignore
          (Cbmf_core.Posterior.compute ~need_sigma:true ~path:`Primal d prior
             ~active))
  in
  let path_chosen =
    let p =
      Cbmf_core.Posterior.compute ~need_sigma:true ~path:`Auto d prior ~active
    in
    match p.Cbmf_core.Posterior.path with `Dual -> "dual" | `Primal -> "primal"
  in
  (* 3. End-to-end EM fit: the acceptance-criterion workload. *)
  let em_config =
    if smoke then { Cbmf_core.Em.default_config with max_iter = 3 }
    else Cbmf_core.Cbmf.fast_config.Cbmf_core.Cbmf.em
  in
  let em_before =
    time_n (fun () ->
        ignore (Cbmf_core.Em.run ~config:em_config ~posterior:Legacy.compute d prior))
  in
  let em_after =
    time_n (fun () -> ignore (Cbmf_core.Em.run ~config:em_config d prior))
  in
  Pool.set_default_size (Pool.env_domains ());
  let kernels =
    [ ("matmul_nt", gemm_before, gemm_after);
      ("posterior-dual", post_before, post_dual);
      ("posterior-primal", post_before, post_primal);
      ("em-fit", em_before, em_after) ]
  in
  List.iter
    (fun (name, before, after) ->
      Format.fprintf fmt "  %-18s before %10.4f s   after %10.4f s   %6.2fx@."
        name before after (before /. after))
    kernels;
  Format.fprintf fmt "  auto path on support (aK=%d, NK=%d): %s@."
    (Array.length active * d.Cbmf_model.Dataset.n_states)
    (d.Cbmf_model.Dataset.n_states * d.Cbmf_model.Dataset.n_samples)
    path_chosen;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"workload\": %S,\n" workload;
  Buffer.add_string buf "  \"kernel\": \"em-fit\",\n";
  Printf.bprintf buf "  \"n_per_state\": %d,\n" n_per_state;
  Printf.bprintf buf "  \"path_chosen\": %S,\n" path_chosen;
  Buffer.add_string buf "  \"paths_exercised\": [\"dual\", \"primal\"],\n";
  Buffer.add_string buf "  \"kernels\": [\n";
  List.iteri
    (fun i (name, before, after) ->
      Printf.bprintf buf
        "    {\"name\": %S, \"seconds_before\": %.6f, \"seconds_after\": \
         %.6f, \"speedup\": %.4f}%s\n"
        name before after (before /. after)
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  Buffer.add_string buf "  ],\n";
  Printf.bprintf buf "  \"speedup\": %.4f\n" (em_before /. em_after);
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_posterior.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  Format.fprintf fmt "  [wrote BENCH_posterior.json]@.";
  if smoke then begin
    let ic = open_in "BENCH_posterior.json" in
    let len = in_channel_length ic in
    let body = really_input_string ic len in
    close_in ic;
    let has needle =
      let nl = String.length needle and bl = String.length body in
      let rec scan i =
        if i + nl > bl then false
        else if String.sub body i nl = needle then true
        else scan (i + 1)
      in
      scan 0
    in
    let required =
      [ "\"workload\""; "\"kernel\""; "\"n_per_state\""; "\"path_chosen\"";
        "\"paths_exercised\""; "\"kernels\""; "\"seconds_before\"";
        "\"seconds_after\""; "\"speedup\""; "\"dual\""; "\"primal\"";
        "\"posterior-dual\""; "\"posterior-primal\""; "\"em-fit\"" ]
    in
    let missing = List.filter (fun k -> not (has k)) required in
    if missing <> [] then begin
      Format.fprintf fmt "  SMOKE FAIL: missing %s@."
        (String.concat ", " missing);
      exit 1
    end;
    if not (path_chosen = "dual" || path_chosen = "primal") then begin
      Format.fprintf fmt "  SMOKE FAIL: bad path_chosen %s@." path_chosen;
      exit 1
    end;
    Format.fprintf fmt "  smoke OK: schema valid, both paths exercised@."
  end

(* --- Serving: batched engine and registry -------------------------- *)

(* Times the serving subsystem and writes BENCH_serve.json: batched
   [Engine.predict_batch] vs the naive per-point [Model.predict] loop
   (points/second), and a cold registry hit (snapshot load + decode)
   vs warm hits.  [smoke] shrinks the instance, re-reads the JSON and
   fails hard unless the schema holds and the batched path is
   bit-identical to the naive loop. *)
let run_serve ~smoke =
  section
    (if smoke then "serve (smoke: schema + batched = naive bitwise)"
     else "serve (batched vs naive, cold vs warm registry)");
  let module S = Cbmf_serve in
  let open Cbmf_linalg in
  let rng = Cbmf_prob.Rng.create 23 in
  let dim = if smoke then 8 else 32 in
  let k = if smoke then 6 else 32 in
  let a = if smoke then 16 else 64 in
  let batch = if smoke then 256 else 4096 in
  let model =
    {
      S.Model.input_dim = dim;
      n_states = k;
      terms =
        Array.init a (fun j ->
            if j = 0 then Cbmf_basis.Term.Constant
            else if j <= dim then Cbmf_basis.Term.Linear ((j - 1) mod dim)
            else Cbmf_basis.Term.Square ((j - 1) mod dim));
      col_means = Mat.init k a (fun _ _ -> 0.1 *. Cbmf_prob.Rng.gaussian rng);
      col_scales = Array.init a (fun j -> 1.0 +. (0.1 *. float_of_int (j mod 5)));
      y_means = Array.init k (fun _ -> Cbmf_prob.Rng.gaussian rng);
      y_scale = 2.0;
      mu = Mat.init a k (fun _ _ -> Cbmf_prob.Rng.gaussian rng);
      lambda = Array.make a 1.0;
      r = Mat.init k k (fun i j -> if i = j then 1.0 else 0.5);
      sigma0 = 0.1;
      cov =
        Array.init k (fun _ ->
            Mat.init a a (fun i j ->
                if i = j then 1.0 else 0.01 *. float_of_int ((i + j) mod 7)));
    }
  in
  (match S.Model.validate model with
  | Ok () -> ()
  | Error e ->
      Format.fprintf fmt "  SMOKE FAIL: synthetic model invalid: %s@." e;
      exit 1);
  let xs = Mat.init batch dim (fun _ _ -> Cbmf_prob.Rng.gaussian rng) in
  let states = Array.init batch (fun i -> i mod k) in
  let reps = if smoke then 3 else 10 in
  let time_n f =
    f ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let naive () =
    let means = Array.make batch 0.0 and sds = Array.make batch 0.0 in
    for i = 0 to batch - 1 do
      let m, s = S.Model.predict model ~state:states.(i) (Mat.row xs i) in
      means.(i) <- m;
      sds.(i) <- s
    done;
    (means, sds)
  in
  let batched () = S.Engine.predict_batch model ~states ~xs in
  (* Correctness first: the two paths must agree bit-for-bit. *)
  let nm, ns = naive () in
  let bm, bs = batched () in
  let bits_eq xs ys =
    Array.for_all2
      (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      xs ys
  in
  if not (bits_eq nm bm && bits_eq ns bs) then begin
    Format.fprintf fmt "  SMOKE FAIL: batched path differs from naive loop@.";
    exit 1
  end;
  let naive_s = time_n (fun () -> ignore (naive ())) in
  let batched_s = time_n (fun () -> ignore (batched ())) in
  let pps s = float_of_int batch /. s in
  (* Registry: cold load (snapshot decode from disk) vs warm hits. *)
  let tmp = Filename.temp_file "cbmf_serve_bench" ".snap" in
  S.Snapshot.save ~path:tmp model;
  let reg = S.Registry.create () in
  S.Registry.add_path reg ~name:"m" tmp;
  let t0 = Unix.gettimeofday () in
  let loaded = S.Registry.get reg ~name:"m" in
  let cold_s = Unix.gettimeofday () -. t0 in
  if not (S.Model.equal loaded model) then begin
    Format.fprintf fmt "  SMOKE FAIL: registry round-trip not bit-identical@.";
    exit 1
  end;
  let warm_reps = 1000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to warm_reps do
    ignore (S.Registry.get reg ~name:"m")
  done;
  let warm_s = (Unix.gettimeofday () -. t0) /. float_of_int warm_reps in
  Sys.remove tmp;
  (* Codec: zero-copy framed writes vs the legacy encode-then-frame
     path (one string per message body, another copy to prepend the
     length prefix), on a predict request/reply pair.  Alloc per frame
     via [Gc.allocated_bytes]; wire bytes must be identical, since the
     zero-copy writer is an encoding of the same frozen format, not a
     new one. *)
  let creq =
    S.Protocol.Predict
      {
        name = "m";
        states = Array.sub states 0 (min 64 batch);
        xs = Mat.init (min 64 batch) dim (fun i j -> Mat.get xs i j);
      }
  in
  let crep =
    S.Protocol.Predicted
      {
        means = Array.sub bm 0 (min 64 batch);
        sds = Array.sub bs 0 (min 64 batch);
      }
  in
  let wire_of write =
    let p = Filename.temp_file "cbmf_codec_bench" ".bin" in
    let fd = Unix.openfile p [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
    write fd;
    Unix.close fd;
    let ic = open_in_bin p in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove p;
    body
  in
  let legacy_req fd = S.Protocol.write_frame fd (S.Protocol.encode_request creq) in
  let legacy_rep fd = S.Protocol.write_frame fd (S.Protocol.encode_reply crep) in
  let zc_req fd = S.Protocol.write_request fd creq in
  let zc_rep fd = S.Protocol.write_reply fd crep in
  let wire_identical =
    String.equal (wire_of legacy_req) (wire_of zc_req)
    && String.equal (wire_of legacy_rep) (wire_of zc_rep)
  in
  if not wire_identical then begin
    Format.fprintf fmt
      "  SMOKE FAIL: zero-copy frames differ from the legacy wire bytes@.";
    exit 1
  end;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let frames = if smoke then 200 else 2000 in
  let alloc_per_frame write =
    write devnull;
    let a0 = Gc.allocated_bytes () in
    for _ = 1 to frames do
      write devnull
    done;
    (Gc.allocated_bytes () -. a0) /. float_of_int frames
  in
  let req_legacy_b = alloc_per_frame legacy_req in
  let req_zc_b = alloc_per_frame zc_req in
  let rep_legacy_b = alloc_per_frame legacy_rep in
  let rep_zc_b = alloc_per_frame zc_rep in
  Unix.close devnull;
  Format.fprintf fmt
    "  predict_batch (%d pts)  naive %10.1f pts/s   batched %10.1f pts/s   \
     %5.2fx@."
    batch (pps naive_s) (pps batched_s) (naive_s /. batched_s);
  Format.fprintf fmt
    "  codec request frame     legacy %8.0f B      zero-copy %8.0f B    \
     %5.2fx@."
    req_legacy_b req_zc_b (req_legacy_b /. req_zc_b);
  Format.fprintf fmt
    "  codec reply frame       legacy %8.0f B      zero-copy %8.0f B    \
     %5.2fx@."
    rep_legacy_b rep_zc_b (rep_legacy_b /. rep_zc_b);
  Format.fprintf fmt
    "  registry                cold %10.6f s      warm %12.2e s      %5.0fx@."
    cold_s warm_s (cold_s /. warm_s);
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"batch\": %d,\n\
    \  \"n_active\": %d,\n\
    \  \"n_states\": %d,\n\
    \  \"naive_pts_per_s\": %.1f,\n\
    \  \"batched_pts_per_s\": %.1f,\n\
    \  \"batched_speedup\": %.4f,\n\
    \  \"cold_load_s\": %.6f,\n\
    \  \"warm_hit_s\": %.9f,\n\
    \  \"warm_speedup\": %.1f,\n\
    \  \"codec\": {\n\
    \    \"frames\": %d,\n\
    \    \"request_legacy_bytes_per_frame\": %.0f,\n\
    \    \"request_zero_copy_bytes_per_frame\": %.0f,\n\
    \    \"request_alloc_reduction\": %.2f,\n\
    \    \"reply_legacy_bytes_per_frame\": %.0f,\n\
    \    \"reply_zero_copy_bytes_per_frame\": %.0f,\n\
    \    \"reply_alloc_reduction\": %.2f,\n\
    \    \"wire_identical\": %b\n\
    \  },\n\
    \  \"bit_identical\": true\n\
     }\n"
    batch a k (pps naive_s) (pps batched_s) (naive_s /. batched_s) cold_s
    warm_s (cold_s /. warm_s) frames req_legacy_b req_zc_b
    (req_legacy_b /. req_zc_b)
    rep_legacy_b rep_zc_b
    (rep_legacy_b /. rep_zc_b)
    wire_identical;
  close_out oc;
  Format.fprintf fmt "  [wrote BENCH_serve.json]@.";
  if smoke then begin
    let ic = open_in "BENCH_serve.json" in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let has needle =
      let nl = String.length needle and bl = String.length body in
      let rec scan i =
        if i + nl > bl then false
        else if String.sub body i nl = needle then true
        else scan (i + 1)
      in
      scan 0
    in
    let required =
      [ "\"batch\""; "\"n_active\""; "\"n_states\""; "\"naive_pts_per_s\"";
        "\"batched_pts_per_s\""; "\"batched_speedup\""; "\"cold_load_s\"";
        "\"warm_hit_s\""; "\"warm_speedup\""; "\"codec\"";
        "\"request_alloc_reduction\""; "\"reply_alloc_reduction\"";
        "\"wire_identical\": true"; "\"bit_identical\": true" ]
    in
    let missing = List.filter (fun key -> not (has key)) required in
    if missing <> [] then begin
      Format.fprintf fmt "  SMOKE FAIL: missing %s@."
        (String.concat ", " missing);
      exit 1
    end;
    if req_zc_b >= req_legacy_b || rep_zc_b >= rep_legacy_b then begin
      Format.fprintf fmt
        "  SMOKE FAIL: zero-copy framing did not reduce allocation \
         (request %.0f -> %.0f B, reply %.0f -> %.0f B)@."
        req_legacy_b req_zc_b rep_legacy_b rep_zc_b;
      exit 1
    end;
    Format.fprintf fmt
      "  smoke OK: schema valid, batched = naive bitwise, zero-copy \
       allocation reduced@."
  end

(* --- Serving under load: open-loop generator ------------------------ *)

(* Drives live servers (workers = 2, queue_cap = 4, shed-on-full
   admission) with an open-loop load generator at 1x / 2x / 4x of the
   calibrated single-connection service rate — once through the
   dynamic batcher (the shipping default) and once with the batcher
   disabled (window 0) — and writes BENCH_serve_load.json: per level,
   offered load, batched and unbatched accepted throughput (each the
   max over interleaved reps, so concurrent runtest load cancels out),
   client-observed p50/p99 latency of successful requests, and the
   shed rate.  Open-loop means send times are scheduled from the
   offered rate alone — a slow reply does not throttle the generator,
   so overload actually lands on the admission queue instead of being
   absorbed by closed-loop back-pressure.  A closed-loop coalesce
   microbench follows: 32 persistent connections hammer one
   compute-heavy model through 32 worker threads, where the merged
   engine calls stream each state's covariance once per flush instead
   of once per request.  [smoke] shrinks the request budget, re-reads
   the JSON, and fails hard unless the schema holds, the 4x level shed
   requests (overload must surface as typed sheds, not latency
   collapse), the p99 of the requests the server did accept stayed
   bounded, batched throughput at 4x is no worse than unbatched, and
   the coalesce bench is bit-identical with speedup >= 1. *)
let run_serve_load ~smoke =
  section
    (if smoke then
       "serve-load (smoke: schema + typed sheds + batched >= unbatched at 4x)"
     else "serve-load (open-loop 1x/2x/4x batched vs unbatched + coalesce)");
  let module S = Cbmf_serve in
  let open Cbmf_linalg in
  let rng = Cbmf_prob.Rng.create 29 in
  let dim = 8 and k = 4 in
  let mk_model a =
    {
      S.Model.input_dim = dim;
      n_states = k;
      terms =
        Array.init a (fun j ->
            if j = 0 then Cbmf_basis.Term.Constant
            else if j <= dim then Cbmf_basis.Term.Linear ((j - 1) mod dim)
            else Cbmf_basis.Term.Square ((j - 1) mod dim));
      col_means = Mat.init k a (fun _ _ -> 0.1 *. Cbmf_prob.Rng.gaussian rng);
      col_scales = Array.init a (fun j -> 1.0 +. (0.1 *. float_of_int (j mod 5)));
      y_means = Array.init k (fun _ -> Cbmf_prob.Rng.gaussian rng);
      y_scale = 2.0;
      mu = Mat.init a k (fun _ _ -> Cbmf_prob.Rng.gaussian rng);
      lambda = Array.make a 1.0;
      r = Mat.init k k (fun i j -> if i = j then 1.0 else 0.5);
      sigma0 = 0.1;
      cov =
        Array.init k (fun _ ->
            Mat.init a a (fun i j ->
                if i = j then 1.0 else 0.01 *. float_of_int ((i + j) mod 7)));
    }
  in
  (* Enough active terms that engine compute (not framing) dominates a
     request, so coalescing has something real to amortize. *)
  let a = 320 in
  let model = mk_model a in
  (match S.Model.validate model with
  | Ok () -> ()
  | Error e ->
      Format.fprintf fmt "  SMOKE FAIL: synthetic model invalid: %s@." e;
      exit 1);
  let batch = 8 in
  let xs = Mat.init batch dim (fun _ _ -> Cbmf_prob.Rng.gaussian rng) in
  let states = Array.init batch (fun i -> i mod k) in
  let dir = Filename.temp_file "cbmf_serve_load" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  (* 8 workers: overload still sheds (capacity on this box is
     compute-bound, not worker-bound), but saturation now leaves
     several workers blocked in the batcher at once, so the merged
     calls genuinely coalesce instead of topping out at pairs. *)
  let workers = 8 and queue_cap = 4 in
  let registry = S.Registry.create () in
  S.Registry.put registry ~name:"m" model;
  (* Two identical servers, differing only in the batcher: window 0
     disables coalescing (direct per-request engine calls); -1 resolves
     to the shipping CBMF_BATCH_WINDOW_US default. *)
  let start_load_server ~tag ~window =
    S.Server.start
      ~config:
        {
          S.Server.default_config with
          workers;
          queue_cap;
          timeout = 5.0;
          batch_window_us = window;
        }
      ~registry
      (Unix.ADDR_UNIX (Filename.concat dir (tag ^ ".sock")))
  in
  let unbatched_srv = start_load_server ~tag:"unbatched" ~window:0 in
  let batched_srv = start_load_server ~tag:"batched" ~window:(-1) in
  let one_request addr () =
    (* Fresh connection per request: connect, one predict, close — the
       open-loop generator models independent arrivals, not sessions. *)
    match S.Client.connect ~timeout:5.0 addr with
    | exception _ -> `Lost
    | c ->
        Fun.protect
          ~finally:(fun () -> try S.Client.close c with _ -> ())
          (fun () ->
            match S.Client.predict_typed c ~name:"m" ~states ~xs with
            | Ok _ -> `Ok
            | Error (S.Client.Overloaded _) -> `Shed
            | Error _ -> `Lost
            | exception _ -> `Lost)
  in
  (* Calibrate: sequential closed-loop rate over one connection against
     the unbatched server (a solo closed-loop request on the batched
     one would pay the idle-edge window wait on every send and
     understate capacity).  This under-counts true 2-worker capacity
     (it includes client-side round-trip overhead), so "4x" offered is
     conservatively past saturation. *)
  let calib_reqs = if smoke then 40 else 200 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to calib_reqs do
    ignore (one_request (S.Server.addr unbatched_srv) ())
  done;
  let base_rate = float_of_int calib_reqs /. (Unix.gettimeofday () -. t0) in
  let run_level ~tag addr mult =
    let offered = base_rate *. float_of_int mult in
    let n_threads = min 16 (4 * mult) in
    let total = (if smoke then 60 else 400) * mult in
    let lock = Mutex.create () in
    let ok = ref 0 and shed = ref 0 and lost = ref 0 in
    let lats = ref [] in
    let start = Unix.gettimeofday () in
    let worker tid =
      (* Thread [tid] owns arrivals tid, tid+T, tid+2T, ... of the
         global schedule; arrival j fires at start + j/offered whether
         or not earlier requests have finished. *)
      let j = ref tid in
      while !j < total do
        let due = start +. (float_of_int !j /. offered) in
        let now = Unix.gettimeofday () in
        if due > now then Thread.delay (due -. now);
        let s0 = Unix.gettimeofday () in
        let outcome = one_request addr () in
        let lat_us = (Unix.gettimeofday () -. s0) *. 1e6 in
        Mutex.lock lock;
        (match outcome with
        | `Ok ->
            incr ok;
            lats := lat_us :: !lats
        | `Shed -> incr shed
        | `Lost -> incr lost);
        Mutex.unlock lock;
        j := !j + n_threads
      done
    in
    let threads = List.init n_threads (fun tid -> Thread.create worker tid) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. start in
    let sorted = Array.of_list !lats in
    Array.sort compare sorted;
    let pct p =
      if Array.length sorted = 0 then 0.0
      else
        sorted.(min (Array.length sorted - 1)
                  (int_of_float (p *. float_of_int (Array.length sorted))))
    in
    let throughput = float_of_int !ok /. wall in
    let shed_rate = float_of_int !shed /. float_of_int total in
    Format.fprintf fmt
      "  %dx offered (%8.1f rps) %-9s  ok %4d  shed %4d  lost %4d  thru \
       %8.1f rps  p50 %8.0f us  p99 %8.0f us@."
      mult offered tag !ok !shed !lost throughput (pct 0.50) (pct 0.99);
    (mult, offered, total, !ok, !shed, !lost, throughput, pct 0.50, pct 0.99,
     shed_rate)
  in
  (* Interleaved max-of-reps per mode: alternating unbatched/batched
     runs at the same level means a background load spike penalizes
     both columns alike instead of biasing one. *)
  let reps = 2 in
  let thru (_, _, _, _, _, _, t, _, _, _) = t in
  let best results =
    List.fold_left
      (fun acc r -> if thru r > thru acc then r else acc)
      (List.hd results) (List.tl results)
  in
  let run_pair mult =
    let us = ref [] and bs = ref [] in
    for _ = 1 to reps do
      us := run_level ~tag:"unbatched" (S.Server.addr unbatched_srv) mult :: !us;
      bs := run_level ~tag:"batched" (S.Server.addr batched_srv) mult :: !bs
    done;
    (best !bs, thru (best !us))
  in
  let levels = List.map run_pair [ 1; 2; 4 ] in
  let stop_server srv =
    (let c = S.Client.connect ~timeout:5.0 (S.Server.addr srv) in
     S.Client.shutdown c;
     S.Client.close c);
    S.Server.wait srv
  in
  stop_server unbatched_srv;
  stop_server batched_srv;
  (* --- Closed-loop coalesce microbench ------------------------------ *)
  (* 32 persistent connections, each a closed loop of small (8-point)
     predicts on one compute-heavy model, served by 32 worker threads.
     Unbatched, every request streams each of its states' AxA
     covariance blocks through the cache on its own; batched, the
     drainer's merged call streams them once per flush for every
     coalesced request.  Every reply is checked bit-identical to the
     local engine in both modes. *)
  let ca = 320 in
  let cmodel = mk_model ca in
  S.Registry.put registry ~name:"c" cmodel;
  let conns = 32 and cpts = 8 and cwindow = 800 in
  let creqs = if smoke then 12 else 40 in
  let cxs = Mat.init cpts dim (fun _ _ -> Cbmf_prob.Rng.gaussian rng) in
  let cstates = Array.init cpts (fun i -> i mod k) in
  let exp_m, exp_s = S.Engine.predict_batch cmodel ~states:cstates ~xs:cxs in
  let bits_eq xs ys =
    Array.length xs = Array.length ys
    && Array.for_all2
         (fun x y ->
           Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
         xs ys
  in
  let coalesce_run ~tag ~window =
    let server =
      S.Server.start
        ~config:
          {
            S.Server.default_config with
            workers = conns;
            queue_cap = 2 * conns;
            timeout = 30.0;
            batch_window_us = window;
            batch_max = 512;
          }
        ~registry
        (Unix.ADDR_UNIX (Filename.concat dir (tag ^ ".sock")))
    in
    let addr = S.Server.addr server in
    let lock = Mutex.create () in
    let identical = ref true and failed = ref 0 in
    let t0 = Unix.gettimeofday () in
    let threads =
      List.init conns (fun _ ->
          Thread.create
            (fun () ->
              let c = S.Client.connect ~timeout:30.0 addr in
              Fun.protect
                ~finally:(fun () -> try S.Client.close c with _ -> ())
                (fun () ->
                  for _ = 1 to creqs do
                    match
                      S.Client.predict_typed c ~name:"c" ~states:cstates
                        ~xs:cxs
                    with
                    | Ok (rm, rs) ->
                        if not (bits_eq rm exp_m && bits_eq rs exp_s) then begin
                          Mutex.lock lock;
                          identical := false;
                          Mutex.unlock lock
                        end
                    | Error _ | (exception _) ->
                        Mutex.lock lock;
                        incr failed;
                        Mutex.unlock lock
                  done))
            ())
    in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    stop_server server;
    let rps = float_of_int (conns * creqs) /. wall in
    (rps, !identical && !failed = 0)
  in
  let cu = ref [] and cb = ref [] in
  for _ = 1 to reps do
    cu := coalesce_run ~tag:"coalesce-unbatched" ~window:0 :: !cu;
    cb := coalesce_run ~tag:"coalesce-batched" ~window:cwindow :: !cb
  done;
  let best_rps rs = List.fold_left (fun m (r, _) -> Float.max m r) 0.0 rs in
  let coalesce_unbatched = best_rps !cu and coalesce_batched = best_rps !cb in
  let coalesce_identical =
    List.for_all (fun (_, ok) -> ok) !cu && List.for_all (fun (_, ok) -> ok) !cb
  in
  let coalesce_speedup = coalesce_batched /. coalesce_unbatched in
  Format.fprintf fmt
    "  coalesce (%d conns x %d x %d pts)  unbatched %8.1f rps   batched \
     %8.1f rps   %5.2fx   bit-identical %b@."
    conns creqs cpts coalesce_unbatched coalesce_batched coalesce_speedup
    coalesce_identical;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  let oc = open_out "BENCH_serve_load.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workers\": %d,\n\
    \  \"queue_cap\": %d,\n\
    \  \"batch\": %d,\n\
    \  \"n_active\": %d,\n\
    \  \"base_rate_rps\": %.1f,\n\
    \  \"levels\": [\n"
    workers queue_cap batch a base_rate;
  List.iteri
    (fun i
         ( (mult, offered, sent, ok, shed, lost, thru, p50, p99, shed_rate),
           unbatched_thru ) ->
      Printf.fprintf oc
        "    { \"offered_x\": %d, \"offered_rps\": %.1f, \"sent\": %d, \
         \"ok\": %d, \"shed\": %d, \"lost\": %d, \"throughput_rps\": %.1f, \
         \"unbatched_throughput_rps\": %.1f, \"batched_speedup\": %.4f, \
         \"p50_us\": %.0f, \"p99_us\": %.0f, \"shed_rate\": %.4f }%s\n"
        mult offered sent ok shed lost thru unbatched_thru
        (thru /. Float.max unbatched_thru 1e-9)
        p50 p99 shed_rate
        (if i = 2 then "" else ","))
    levels;
  Printf.fprintf oc
    "  ],\n\
    \  \"coalesce\": {\n\
    \    \"connections\": %d,\n\
    \    \"requests_per_conn\": %d,\n\
    \    \"points_per_request\": %d,\n\
    \    \"n_active\": %d,\n\
    \    \"window_us\": %d,\n\
    \    \"unbatched_rps\": %.1f,\n\
    \    \"batched_rps\": %.1f,\n\
    \    \"speedup\": %.4f,\n\
    \    \"bit_identical\": %b\n\
    \  }\n\
     }\n"
    conns creqs cpts ca cwindow coalesce_unbatched coalesce_batched
    coalesce_speedup coalesce_identical;
  close_out oc;
  Format.fprintf fmt "  [wrote BENCH_serve_load.json]@.";
  if smoke then begin
    let ic = open_in "BENCH_serve_load.json" in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let has needle =
      let nl = String.length needle and bl = String.length body in
      let rec scan i =
        if i + nl > bl then false
        else if String.sub body i nl = needle then true
        else scan (i + 1)
      in
      scan 0
    in
    let required =
      [ "\"workers\""; "\"queue_cap\""; "\"base_rate_rps\""; "\"levels\"";
        "\"offered_x\": 1"; "\"offered_x\": 2"; "\"offered_x\": 4";
        "\"throughput_rps\""; "\"unbatched_throughput_rps\"";
        "\"batched_speedup\""; "\"p50_us\""; "\"p99_us\""; "\"shed_rate\"";
        "\"coalesce\""; "\"speedup\""; "\"bit_identical\": true" ]
    in
    let missing = List.filter (fun key -> not (has key)) required in
    if missing <> [] then begin
      Format.fprintf fmt "  SMOKE FAIL: missing %s@."
        (String.concat ", " missing);
      exit 1
    end;
    let (_, _, _, ok4, shed4, _, thru4, _, p99_4, _), unbatched_thru4 =
      List.nth levels 2
    in
    if shed4 = 0 then begin
      Format.fprintf fmt
        "  SMOKE FAIL: 4x offered load produced zero typed sheds@.";
      exit 1
    end;
    if ok4 = 0 then begin
      Format.fprintf fmt "  SMOKE FAIL: 4x offered load served nothing@.";
      exit 1
    end;
    if p99_4 >= 5e6 then begin
      Format.fprintf fmt
        "  SMOKE FAIL: accepted-request p99 unbounded under overload \
         (%.0f us)@."
        p99_4;
      exit 1
    end;
    if thru4 < unbatched_thru4 then begin
      Format.fprintf fmt
        "  SMOKE FAIL: batched throughput %.1f rps below unbatched %.1f rps \
         at 4x offered load@."
        thru4 unbatched_thru4;
      exit 1
    end;
    if not coalesce_identical then begin
      Format.fprintf fmt
        "  SMOKE FAIL: coalesced replies not bit-identical to the local \
         engine@.";
      exit 1
    end;
    if coalesce_speedup < 1.0 then begin
      Format.fprintf fmt
        "  SMOKE FAIL: coalesce speedup %.2fx below 1x@." coalesce_speedup;
      exit 1
    end;
    Format.fprintf fmt
      "  smoke OK: schema valid, typed sheds at 4x with bounded p99, \
       batched >= unbatched, coalesce bit-identical (%.2fx)@."
      coalesce_speedup
  end

(* --- Front-end before/after kernels -------------------------------- *)

(* Times the PR's front-end hot paths against the frozen pre-PR
   implementations ([Legacy.Frontend], per-frequency MNA rebuilds),
   single-core, and writes BENCH_frontend.json: the Algorithm-1 CV
   grid with shared precomputation vs the per-cell re-materializing
   loop, incremental S-OMP vs per-step QR refits, split-stamp
   [Mna.ac_sweep] vs per-frequency [Mna.ac], and the end-to-end fit
   through the legacy vs current initializer.  Every kernel records a
   parity flag (identical supports / bit-identical curves and fitted
   coefficients); the run fails hard if any flag is false.  [smoke]
   swaps the LNA workload for a tiny synthetic instance, then re-reads
   the JSON and verifies the schema — this is part of the
   [bench-smoke] dune alias under [dune runtest]. *)
let run_frontend ~smoke =
  section
    (if smoke then "frontend (smoke: schema + oracle parity)"
     else "frontend (before/after front-end kernels, LNA workload)");
  let module Pool = Cbmf_parallel.Pool in
  let open Cbmf_linalg in
  Pool.set_default_size 1;
  let hash_floats = Cbmf_testkit.Seeded.hash_floats in
  let workload, d, init_config, somp_terms =
    if smoke then begin
      let rng = Cbmf_prob.Rng.create 7 in
      let k = 4 and n = 12 and m = 60 in
      let support = [| 2; 17; 41 |] in
      let design =
        Array.init k (fun _ ->
            Mat.init n m (fun _ j ->
                if j = 0 then 1.0 else Cbmf_prob.Rng.gaussian rng))
      in
      let response =
        Array.init k (fun s ->
            Array.init n (fun i ->
                let acc = ref (0.05 *. Cbmf_prob.Rng.gaussian rng) in
                Array.iteri
                  (fun si col ->
                    let c = 1.0 /. float_of_int (si + 1) in
                    let c = c *. (1.0 +. (0.3 *. sin (0.4 *. float_of_int s))) in
                    acc := !acc +. (c *. Mat.get design.(s) i col))
                  support;
                !acc))
      in
      let d = Cbmf_model.Dataset.create ~design ~response in
      let config =
        {
          Cbmf_core.Init.r0_grid = [| 0.6; 0.9 |];
          sigma0_grid = [| 0.1; 0.3 |];
          theta_max = 4;
          n_folds = 3;
          lambda_off = 1e-7;
        }
      in
      ("synthetic-smoke", d, config, 6)
    end
    else begin
      let data = data_for "lna" in
      let train = Workload.train_dataset data ~poi:0 ~n_per_state:12 in
      let _, std = Cbmf_core.Standardize.fit train in
      (* Wide grid, shallow passes: the regime where the shared fold /
         R-factor / norm precomputation pays (the per-cell greedy work
         itself is identical in both paths). *)
      let config =
        {
          Cbmf_core.Init.r0_grid = [| 0.5; 0.7; 0.9; 0.995 |];
          sigma0_grid = [| 0.1; 0.2; 0.3 |];
          theta_max = 6;
          n_folds = 4;
          lambda_off = 1e-7;
        }
      in
      (* 8 of the 12 samples/state: selection margins at every step are
         far above fp noise, so the support-parity flag is meaningful
         (a near-square fit would select on noise-level residuals). *)
      ("lna", std, config, 8)
    end
  in
  let reps = if smoke then 1 else 3 in
  let time_n f =
    f ();
    (* warm *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  (* 1. Algorithm-1 CV grid: legacy per-cell loop vs shared precompute. *)
  let init_before_r = Legacy.Frontend.init_run ~config:init_config d in
  let init_after_r = Cbmf_core.Init.run ~config:init_config d in
  let init_identical =
    init_before_r.Cbmf_core.Init.support = init_after_r.Cbmf_core.Init.support
    && init_before_r.Cbmf_core.Init.theta = init_after_r.Cbmf_core.Init.theta
    && Int64.equal
         (Int64.bits_of_float init_before_r.Cbmf_core.Init.r0)
         (Int64.bits_of_float init_after_r.Cbmf_core.Init.r0)
    && Int64.equal
         (Int64.bits_of_float init_before_r.Cbmf_core.Init.sigma0)
         (Int64.bits_of_float init_after_r.Cbmf_core.Init.sigma0)
    && Int64.equal
         (Int64.bits_of_float init_before_r.Cbmf_core.Init.cv_error)
         (Int64.bits_of_float init_after_r.Cbmf_core.Init.cv_error)
  in
  let init_before =
    time_n (fun () -> ignore (Legacy.Frontend.init_run ~config:init_config d))
  in
  let init_after =
    time_n (fun () -> ignore (Cbmf_core.Init.run ~config:init_config d))
  in
  (* 2. S-OMP: incremental bordered-Cholesky refits vs per-step QR. *)
  let somp_before_r = Legacy.Frontend.somp_fit d ~n_terms:somp_terms in
  let somp_after_r = Cbmf_model.Somp.fit d ~n_terms:somp_terms in
  let somp_support_identical =
    somp_before_r.Cbmf_model.Somp.support = somp_after_r.Cbmf_model.Somp.support
  in
  let somp_coeffs_close =
    let a = somp_before_r.Cbmf_model.Somp.coeffs
    and b = somp_after_r.Cbmf_model.Somp.coeffs in
    let maxd = ref 0.0 and maxa = ref 0.0 in
    Array.iteri
      (fun i x ->
        maxd := Float.max !maxd (abs_float (x -. b.Mat.data.(i)));
        maxa := Float.max !maxa (abs_float x))
      a.Mat.data;
    !maxd <= 1e-8 *. (1.0 +. !maxa)
  in
  let somp_before =
    time_n (fun () -> ignore (Legacy.Frontend.somp_fit d ~n_terms:somp_terms))
  in
  let somp_after =
    time_n (fun () -> ignore (Cbmf_model.Somp.fit d ~n_terms:somp_terms))
  in
  (* 3. MNA frequency sweep: split-stamp reassembly vs full per-ω
     rebuild of the LNA small-signal netlist. *)
  let tb = (Workload.lna ()).Workload.testbench in
  let dim = Cbmf_circuit.Testbench.dim tb in
  let n_freqs = if smoke then 16 else 128 in
  let freqs =
    Array.init n_freqs (fun i -> 1.0e9 *. (1.0 +. (0.05 *. float_of_int i)))
  in
  let rng_x = Cbmf_prob.Rng.create 29 in
  let n_sweep = if smoke then 2 else 8 in
  let xs =
    Array.init n_sweep (fun _ ->
        Array.init dim (fun _ -> Cbmf_prob.Rng.gaussian rng_x))
  in
  let states =
    Array.init n_sweep (fun i ->
        i * 7 mod Cbmf_circuit.Testbench.n_states tb)
  in
  let sweep_naive () =
    Array.init n_sweep (fun i ->
        Cbmf_circuit.Lna.gain_curve_naive tb ~state:states.(i) xs.(i) ~freqs)
  in
  let sweep_fast () =
    Array.init n_sweep (fun i ->
        Cbmf_circuit.Lna.gain_curve tb ~state:states.(i) xs.(i) ~freqs)
  in
  let sweep_bit_identical =
    let cb = sweep_naive () and ca = sweep_fast () in
    Array.for_all2
      (fun a b ->
        Array.for_all2
          (fun x y ->
            Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
          a b)
      cb ca
  in
  let sweep_before = time_n (fun () -> ignore (sweep_naive ())) in
  let sweep_after = time_n (fun () -> ignore (sweep_fast ())) in
  (* 4. End-to-end fit through the legacy vs current initializer. *)
  let em_config =
    if smoke then { Cbmf_core.Em.default_config with max_iter = 3; tol = 1e-3 }
    else Cbmf_core.Cbmf.fast_config.Cbmf_core.Cbmf.em
  in
  let fit_config = { Cbmf_core.Cbmf.init = init_config; em = em_config } in
  let fit_legacy () =
    (* [Cbmf.fit] with the frozen initializer: same standardization,
       same σ0 floor, same EM — only the CV grid differs. *)
    let transform, std = Cbmf_core.Standardize.fit d in
    let init = Legacy.Frontend.init_run ~config:init_config std in
    let em_config =
      {
        em_config with
        Cbmf_core.Em.min_sigma0 =
          Float.max em_config.Cbmf_core.Em.min_sigma0
            (0.9 *. init.Cbmf_core.Init.cv_error);
      }
    in
    let _, post, _ =
      Cbmf_core.Em.run ~config:em_config std init.Cbmf_core.Init.prior
    in
    Cbmf_core.Standardize.unstandardize_coeffs transform
      (Cbmf_core.Posterior.coefficients post)
  in
  let fit_new () = (Cbmf_core.Cbmf.fit ~config:fit_config d).Cbmf_core.Cbmf.coeffs in
  let e2e_hash_before = hash_floats (fit_legacy ()).Mat.data in
  let e2e_hash_after = hash_floats (fit_new ()).Mat.data in
  let e2e_coeffs_identical = Int64.equal e2e_hash_before e2e_hash_after in
  let e2e_before = time_n (fun () -> ignore (fit_legacy ())) in
  let e2e_after = time_n (fun () -> ignore (fit_new ())) in
  Pool.set_default_size (Pool.env_domains ());
  let kernels =
    [ ("init-cv-grid", init_before, init_after);
      ("somp-fit", somp_before, somp_after);
      ("ac-sweep", sweep_before, sweep_after);
      ("fit-e2e", e2e_before, e2e_after) ]
  in
  List.iter
    (fun (name, before, after) ->
      Format.fprintf fmt "  %-18s before %10.4f s   after %10.4f s   %6.2fx@."
        name before after (before /. after))
    kernels;
  let parity =
    [ ("init_identical", init_identical);
      ("somp_support_identical", somp_support_identical);
      ("somp_coeffs_close", somp_coeffs_close);
      ("sweep_bit_identical", sweep_bit_identical);
      ("e2e_coeffs_identical", e2e_coeffs_identical) ]
  in
  List.iter
    (fun (name, ok) -> Format.fprintf fmt "  parity %-24s %b@." name ok)
    parity;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"workload\": %S,\n" workload;
  Printf.bprintf buf "  \"model_hash\": \"%Lx\",\n" e2e_hash_after;
  Buffer.add_string buf "  \"kernels\": [\n";
  List.iteri
    (fun i (name, before, after) ->
      Printf.bprintf buf
        "    {\"name\": %S, \"seconds_before\": %.6f, \"seconds_after\": \
         %.6f, \"speedup\": %.4f}%s\n"
        name before after (before /. after)
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"parity\": {\n";
  List.iteri
    (fun i (name, ok) ->
      Printf.bprintf buf "    \"%s\": %b%s\n" name ok
        (if i = List.length parity - 1 then "" else ","))
    parity;
  Buffer.add_string buf "  },\n";
  Printf.bprintf buf "  \"speedup_init_cv\": %.4f,\n" (init_before /. init_after);
  Printf.bprintf buf "  \"speedup_ac_sweep\": %.4f\n" (sweep_before /. sweep_after);
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_frontend.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  Format.fprintf fmt "  [wrote BENCH_frontend.json]@.";
  let bad = List.filter (fun (_, ok) -> not ok) parity in
  if bad <> [] then begin
    Format.fprintf fmt "  FRONTEND FAIL: parity broken for %s@."
      (String.concat ", " (List.map fst bad));
    exit 1
  end;
  if smoke then begin
    let ic = open_in "BENCH_frontend.json" in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let has needle =
      let nl = String.length needle and bl = String.length body in
      let rec scan i =
        if i + nl > bl then false
        else if String.sub body i nl = needle then true
        else scan (i + 1)
      in
      scan 0
    in
    let required =
      [ "\"workload\""; "\"model_hash\""; "\"kernels\"";
        "\"init-cv-grid\""; "\"somp-fit\""; "\"ac-sweep\""; "\"fit-e2e\"";
        "\"seconds_before\""; "\"seconds_after\""; "\"speedup\"";
        "\"parity\""; "\"init_identical\": true";
        "\"somp_support_identical\": true"; "\"somp_coeffs_close\": true";
        "\"sweep_bit_identical\": true"; "\"e2e_coeffs_identical\": true";
        "\"speedup_init_cv\""; "\"speedup_ac_sweep\"" ]
    in
    let missing = List.filter (fun key -> not (has key)) required in
    if missing <> [] then begin
      Format.fprintf fmt "  SMOKE FAIL: missing %s@."
        (String.concat ", " missing);
      exit 1
    end;
    Format.fprintf fmt "  smoke OK: schema valid, all parity flags true@."
  end

(* --- Synthetic scaling matrix -------------------------------------- *)

(* Scales the spec-driven synthetic workload over a (K, d) grid no
   physical testbench reaches — K up to 256 states, d up to 10⁵ device
   variables — and writes BENCH_synthetic.json: per cell, generation
   time, a budget-sized front-end fit, the structured posterior on the
   true support with the solver path Auto actually took (the
   dual/primal crossover moves through the grid as NK crosses aK), and
   batched serving throughput against the oracle-exact snapshot.  A
   small ground-truth recovery comparison (C-BMF vs the uncorrelated
   ablation at rho = 0.9, low budgets) rides along.  [quick] — smoke
   mode or CBMF_BENCH_QUICK=1 — shrinks the grid to seconds; smoke
   additionally re-reads the JSON and fails hard unless the schema
   holds and every cell records a dual/primal path. *)
let run_synth ~smoke =
  let module Synthetic = Cbmf_circuit.Synthetic in
  let module Pool = Cbmf_parallel.Pool in
  let quick = smoke || Sys.getenv_opt "CBMF_BENCH_QUICK" = Some "1" in
  section
    (if quick then "synth (quick: reduced synthetic scaling grid)"
     else "synth (synthetic scaling matrix: K x d, path per cell)");
  Pool.set_default_size 1;
  let active = 6 and rho = 0.9 in
  (* n/state is budget-sized per d so the grid sweeps the Auto
     crossover: primal where aK < NK strictly, dual elsewhere. *)
  let grid =
    if quick then [ (4, 24, 10); (8, 600, 3) ]
    else
      [ (32, 1_000, 10); (32, 10_000, 6); (32, 100_000, 4);
        (128, 1_000, 10); (128, 10_000, 6); (128, 100_000, 4);
        (256, 1_000, 10); (256, 10_000, 6); (256, 100_000, 4) ]
  in
  let now () = Unix.gettimeofday () in
  let run_cell (k, d, n_per_state) =
    let spec =
      { Synthetic.k; m = d + 1; d; active_per_state = active; rho;
        noise_sigma = 0.05; density = 0.2; seed = 33 }
    in
    let t0 = now () in
    let truth = Synthetic.truth spec in
    let train = Synthetic.dataset truth ~n_per_state in
    let gen_s = now () -. t0 in
    let t0 = now () in
    let path = Recovery.posterior_path truth train in
    let posterior_s = now () -. t0 in
    let fit_config =
      {
        Cbmf_core.Cbmf.init =
          {
            Cbmf_core.Init.r0_grid = [| rho |];
            sigma0_grid = [| 0.1 |];
            theta_max = active + 2;
            n_folds = 2;
            lambda_off = 1e-7;
          };
        em = { Cbmf_core.Em.default_config with max_iter = 5; tol = 1e-3 };
      }
    in
    (* The front-end fit cost grows superlinearly in K (the CV grid's
       Bayesian greedy solves couple all states), so the budget-sized
       fit is timed only where it finishes in minutes; -1 marks a
       skipped cell.  The posterior/path and serving columns — the
       scaling claims under test — are measured at every cell. *)
    let do_fit = k <= 32 || k * d <= 3_000_000 in
    let fit_s =
      if do_fit then begin
        let t0 = now () in
        ignore (Cbmf_core.Cbmf.fit ~config:fit_config train);
        now () -. t0
      end
      else -1.0
    in
    let n_batch = Int.max 256 (1_000_000 / d) in
    let model = Cbmf_serve.Model.of_synthetic truth in
    let xs, states = Synthetic.batch_inputs truth ~salt:0 ~n:n_batch in
    let t0 = now () in
    let means, _ = Cbmf_serve.Engine.predict_batch model ~states ~xs in
    let predict_s = now () -. t0 in
    if not (Array.for_all Float.is_finite means) then begin
      Format.fprintf fmt "  SYNTH FAIL: non-finite predictions at K=%d d=%d@."
        k d;
      exit 1
    end;
    if path <> "dual" && path <> "primal" then begin
      Format.fprintf fmt "  SYNTH FAIL: bad posterior path %S at K=%d d=%d@."
        path k d;
      exit 1
    end;
    let pts_per_s = float_of_int n_batch /. Float.max predict_s 1e-9 in
    let fit_str =
      if fit_s < 0.0 then "   skip" else Printf.sprintf "%7.2f" fit_s
    in
    Format.fprintf fmt
      "  K=%-4d d=%-7d n/st=%-3d gen %7.2f s   fit %s s   posterior \
       %8.4f s (%-6s)   predict %10.0f pts/s@."
      k d n_per_state gen_s fit_str posterior_s path pts_per_s;
    (k, d, spec.Synthetic.m, n_per_state, gen_s, fit_s, posterior_s, path,
     pts_per_s)
  in
  let cells = List.map run_cell grid in
  (* Ground-truth recovery: correlated fit vs the uncorrelated ablation
     on a low-budget rho = 0.9 workload. *)
  let rspec =
    { Synthetic.default_spec with
      Synthetic.k = 12; m = 31; d = 15; active_per_state = 4; rho;
      noise_sigma = 0.05; density = 0.2; seed = 5 }
  in
  let budgets = if quick then [| 4 |] else [| 4; 6; 8 |] in
  let rcells =
    Recovery.run_grid ~n_test:25
      ~methods:[ `Cbmf; `Uncorrelated ]
      ~specs:[| rspec |] ~budgets ()
  in
  Format.fprintf fmt "@.%a" Recovery.pp_cells rcells;
  let mean_f1 m =
    let sel =
      Array.of_list
        (List.filter
           (fun c -> c.Recovery.method_ = m)
           (Array.to_list rcells))
    in
    Array.fold_left (fun acc c -> acc +. c.Recovery.f1) 0.0 sel
    /. float_of_int (Array.length sel)
  in
  let f1_cbmf = mean_f1 `Cbmf and f1_unc = mean_f1 `Uncorrelated in
  Format.fprintf fmt
    "  recovery F1 (rho=%.1f, budgets %s): cbmf %.3f   uncorrelated %.3f@."
    rho
    (String.concat "," (List.map string_of_int (Array.to_list budgets)))
    f1_cbmf f1_unc;
  Pool.set_default_size (Pool.env_domains ());
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"quick\": %b,\n" quick;
  Printf.bprintf buf "  \"active_per_state\": %d,\n" active;
  Printf.bprintf buf "  \"rho\": %.2f,\n" rho;
  Buffer.add_string buf "  \"cells\": [\n";
  List.iteri
    (fun i (k, d, m, n, gen_s, fit_s, posterior_s, path, pts) ->
      Printf.bprintf buf
        "    {\"k\": %d, \"d\": %d, \"m\": %d, \"n_per_state\": %d, \
         \"gen_s\": %.4f, \"fit_s\": %.4f, \"posterior_s\": %.6f, \
         \"posterior_path\": %S, \"predict_pts_per_s\": %.1f}%s\n"
        k d m n gen_s fit_s posterior_s path pts
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"recovery\": {\n";
  Printf.bprintf buf "    \"rho\": %.2f,\n" rho;
  Printf.bprintf buf "    \"budgets\": [%s],\n"
    (String.concat ", " (List.map string_of_int (Array.to_list budgets)));
  Printf.bprintf buf "    \"f1_cbmf\": %.4f,\n" f1_cbmf;
  Printf.bprintf buf "    \"f1_uncorrelated\": %.4f,\n" f1_unc;
  Printf.bprintf buf "    \"f1_gap\": %.4f\n" (f1_cbmf -. f1_unc);
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_synthetic.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  Format.fprintf fmt "  [wrote BENCH_synthetic.json]@.";
  if smoke then begin
    let ic = open_in "BENCH_synthetic.json" in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let has needle =
      let nl = String.length needle and bl = String.length body in
      let rec scan i =
        if i + nl > bl then false
        else if String.sub body i nl = needle then true
        else scan (i + 1)
      in
      scan 0
    in
    let required =
      [ "\"quick\""; "\"active_per_state\""; "\"rho\""; "\"cells\"";
        "\"k\""; "\"d\""; "\"m\""; "\"n_per_state\""; "\"gen_s\"";
        "\"fit_s\""; "\"posterior_s\""; "\"posterior_path\"";
        "\"predict_pts_per_s\""; "\"recovery\""; "\"budgets\"";
        "\"f1_cbmf\""; "\"f1_uncorrelated\""; "\"f1_gap\"" ]
    in
    let missing = List.filter (fun key -> not (has key)) required in
    if missing <> [] then begin
      Format.fprintf fmt "  SMOKE FAIL: missing %s@."
        (String.concat ", " missing);
      exit 1
    end;
    (* The quick grid is sized to exercise both solver paths. *)
    if not (has "\"posterior_path\": \"dual\"") then begin
      Format.fprintf fmt "  SMOKE FAIL: no dual-path cell@.";
      exit 1
    end;
    if not (has "\"posterior_path\": \"primal\"") then begin
      Format.fprintf fmt "  SMOKE FAIL: no primal-path cell@.";
      exit 1
    end;
    Format.fprintf fmt "  smoke OK: schema valid, both paths present@."
  end

(* --- Active-learning loop: incremental update cost + parity -------- *)

(* Times the streaming rank-one updater against a from-scratch
   factorization and writes BENCH_active.json: per cell, the full
   refit cost ([Update.create], a fresh aK x aK Cholesky), the
   per-sample append cost ([Update.append], one rank-one update), the
   speedup, and the mu/NLML parity of the appended state against both
   a fresh updater and the [`Primal] posterior on the grown dataset;
   plus the acquisition loop's FNV hash at 1/2/4 domains.  [smoke]
   shrinks the sizes, re-reads the JSON, validates the schema and
   fails hard unless incremental < refit, parity <= 1e-8 and the loop
   hashes match across domain counts.  The [active-bench-smoke] dune
   alias runs this under [dune runtest]. *)
let run_active ~smoke =
  section
    (if smoke then "active (smoke: update cost + parity + loop hash)"
     else "active (streaming update vs refit, loop domain matrix)");
  let module Pool = Cbmf_parallel.Pool in
  let module Synthetic = Cbmf_circuit.Synthetic in
  let module Update = Cbmf_active.Update in
  let module Sim = Cbmf_active.Sim in
  let module Loop = Cbmf_active.Loop in
  let open Cbmf_linalg in
  let open Cbmf_model in
  let reps = if smoke then 3 else 5 in
  let time_min f =
    f ();
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  let cells = if smoke then [ (8, 21, 10) ] else [ (32, 41, 20); (64, 41, 20) ] in
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "{\n  \"smoke\": %b,\n  \"cells\": [\n" smoke;
  let n_base = 10 and extra = 4 in
  List.iteri
    (fun ci (k, m, d) ->
      let spec =
        { Synthetic.default_spec with
          Synthetic.k; m; d;
          active_per_state = 4;
          noise_sigma = 0.05;
          seed = 3 + ci }
      in
      let truth = Synthetic.truth spec in
      let full = Synthetic.dataset truth ~n_per_state:(n_base + extra) in
      let base = Dataset.truncate_samples full ~n:n_base in
      let active = Array.init m Fun.id in
      let prior =
        Cbmf_core.Prior.create ~lambda:(Array.make m 1.0)
          ~r:(Cbmf_core.Prior.r_of_r0 ~n_states:k ~r0:0.5)
          ~sigma0:0.1
      in
      (* full refit = fresh aK x aK assembly + factorization *)
      let refit_s = time_min (fun () -> ignore (Update.create base prior ~active)) in
      (* per-sample append: k rank-one updates per round, averaged *)
      let append_rounds = extra in
      let append_s =
        let upd = ref (Update.create base prior ~active) in
        let t =
          time_min (fun () ->
              upd := Update.create base prior ~active;
              for i = n_base to n_base + append_rounds - 1 do
                for s = 0 to k - 1 do
                  Update.append !upd ~state:s
                    ~row:(Mat.row (Dataset.state_design full s) i)
                    ~y:(Vec.get (Dataset.state_response full s) i)
                done
              done)
        in
        (t -. refit_s) /. float_of_int (append_rounds * k)
      in
      (* parity of the appended state on the grown dataset *)
      let upd = Update.create base prior ~active in
      for i = n_base to n_base + extra - 1 do
        for s = 0 to k - 1 do
          Update.append upd ~state:s
            ~row:(Mat.row (Dataset.state_design full s) i)
            ~y:(Vec.get (Dataset.state_response full s) i)
        done
      done;
      let reference =
        Cbmf_core.Posterior.compute ~need_sigma:false ~path:`Primal full prior
          ~active
      in
      let scale = Mat.max_abs reference.Cbmf_core.Posterior.mu in
      let parity_mu =
        Mat.max_abs (Mat.sub reference.Cbmf_core.Posterior.mu (Update.mean upd))
        /. (1.0 +. scale)
      in
      let parity_nlml =
        abs_float (reference.Cbmf_core.Posterior.nlml -. Update.nlml upd)
        /. (1.0 +. abs_float reference.Cbmf_core.Posterior.nlml)
      in
      let parity_ok = parity_mu <= 1e-8 && parity_nlml <= 1e-8 in
      let speedup = refit_s /. Float.max append_s 1e-12 in
      Format.fprintf fmt
        "  k=%-3d m=%-3d aK=%-5d refit %8.2f ms  append %8.4f ms/sample  \
         speedup %7.1fx  parity(mu %.1e, nlml %.1e) %s@."
        k m (m * k) (1e3 *. refit_s) (1e3 *. append_s) speedup parity_mu
        parity_nlml
        (if parity_ok then "ok" else "FAIL");
      Printf.bprintf buf
        "    { \"k\": %d, \"m\": %d, \"a\": %d, \"n_base\": %d, \"refit_s\": \
         %.6f, \"append_s\": %.8f, \"speedup\": %.1f, \"incremental_faster\": \
         %b, \"parity_mu\": %.3e, \"parity_nlml\": %.3e, \"parity_ok\": %b }%s\n"
        k m m n_base refit_s append_s speedup
        (append_s < refit_s)
        parity_mu parity_nlml parity_ok
        (if ci = List.length cells - 1 then "" else ","))
    cells;
  Buffer.add_string buf "  ],\n";
  (* acquisition-loop hash across domain counts *)
  let loop_spec =
    { Synthetic.default_spec with
      Synthetic.k = (if smoke then 4 else 8);
      m = 11; d = 7;
      active_per_state = 4;
      noise_sigma = 0.05;
      seed = 44 }
  in
  let loop_config =
    { Loop.default_config with
      Loop.n0 = 4;
      rounds = (if smoke then 4 else 8);
      pool_size = 8;
      resync_every = 3;
      em = { Cbmf_core.Em.default_config with max_iter = 6; tol = 1e-3 } }
  in
  let loop_prior0 =
    Cbmf_core.Prior.create
      ~lambda:(Array.make loop_spec.Synthetic.m 1.0)
      ~r:
        (Cbmf_core.Prior.r_of_r0 ~n_states:loop_spec.Synthetic.k ~r0:0.5)
      ~sigma0:0.2
  in
  let loop_hash () =
    let res =
      Loop.run ~config:loop_config
        ~sim:(Sim.of_synthetic (Synthetic.truth loop_spec))
        ~prior0:loop_prior0 ()
    in
    let acc =
      Cbmf_testkit.Seeded.hash_floats_acc Cbmf_testkit.Seeded.fnv_offset
        res.Loop.coeffs.Mat.data
    in
    Cbmf_testkit.Seeded.hash_floats_acc acc
      (Array.map (fun l -> l.Loop.nlml) res.Loop.logs)
  in
  let hashes =
    List.map
      (fun n ->
        Pool.set_default_size n;
        let h = loop_hash () in
        Pool.set_default_size (Pool.env_domains ());
        (n, h))
      [ 1; 2; 4 ]
  in
  let h1 = snd (List.hd hashes) in
  let invariant = List.for_all (fun (_, h) -> Int64.equal h h1) hashes in
  Format.fprintf fmt "  loop hash at 1/2/4 domains: %s@."
    (if invariant then "bit-identical" else "MISMATCH");
  Printf.bprintf buf "  \"loop\": { \"k\": %d, \"m\": %d, \"rounds\": %d, %s, \
                      \"domain_invariant\": %b }\n"
    loop_spec.Synthetic.k loop_spec.Synthetic.m loop_config.Loop.rounds
    (String.concat ", "
       (List.map
          (fun (n, h) -> Printf.sprintf "\"hash_%d\": \"%Lx\"" n h)
          hashes))
    invariant;
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_active.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  Format.fprintf fmt "  [wrote BENCH_active.json]@.";
  if smoke then begin
    let ic = open_in "BENCH_active.json" in
    let body = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let has needle =
      let nl = String.length needle and bl = String.length body in
      let rec scan i =
        if i + nl > bl then false
        else if String.sub body i nl = needle then true
        else scan (i + 1)
      in
      scan 0
    in
    let required =
      [ "\"smoke\""; "\"cells\""; "\"k\""; "\"m\""; "\"a\""; "\"n_base\"";
        "\"refit_s\""; "\"append_s\""; "\"speedup\"";
        "\"incremental_faster\": true"; "\"parity_mu\""; "\"parity_nlml\"";
        "\"parity_ok\": true"; "\"loop\""; "\"hash_1\""; "\"hash_2\"";
        "\"hash_4\""; "\"domain_invariant\": true" ]
    in
    let missing = List.filter (fun key -> not (has key)) required in
    if missing <> [] then begin
      Format.fprintf fmt "  SMOKE FAIL: missing %s@."
        (String.concat ", " missing);
      exit 1
    end;
    Format.fprintf fmt
      "  smoke OK: schema valid, incremental < refit, parity <= 1e-8, loop \
       domain-invariant@."
  end

(* --- Bechamel micro-benchmarks ------------------------------------- *)

let micro_dataset () =
  (* Dimension-reduced C-BMF instance: K = 32 states, N = 15 samples,
     M = 200 basis functions, planted sparse/correlated truth. *)
  let open Cbmf_linalg in
  let rng = Cbmf_prob.Rng.create 11 in
  let k = 32 and n = 15 and m = 200 in
  let support = [| 3; 20; 57; 101; 160 |] in
  let design =
    Array.init k (fun _ ->
        Mat.init n m (fun _ j ->
            if j = 0 then 1.0 else Cbmf_prob.Rng.gaussian rng))
  in
  let response =
    Array.init k (fun s ->
        Array.init n (fun i ->
            let acc = ref (2.0 +. (0.05 *. Cbmf_prob.Rng.gaussian rng)) in
            Array.iteri
              (fun si col ->
                let c = 1.0 /. float_of_int (si + 1) in
                let c = c *. (1.0 +. (0.2 *. sin (0.2 *. float_of_int s))) in
                acc := !acc +. (c *. Mat.get design.(s) i col))
              support;
            !acc))
  in
  Cbmf_model.Dataset.create ~design ~response

let micro () =
  section "Bechamel micro-benchmarks (dimension-reduced instances)";
  let open Bechamel in
  let open Toolkit in
  let d = micro_dataset () in
  let _, std = Cbmf_core.Standardize.fit d in
  let prior =
    let lambda = Array.make std.Cbmf_model.Dataset.n_basis 1e-7 in
    Array.iter (fun j -> lambda.(j) <- 1.0) [| 2; 19; 56; 100; 159 |];
    Cbmf_core.Prior.create ~lambda
      ~r:(Cbmf_core.Prior.r_of_r0 ~n_states:32 ~r0:0.9)
      ~sigma0:0.1
  in
  let fast = Cbmf_core.Cbmf.fast_config in
  let tests =
    Test.make_grouped ~name:"cbmf"
      [ (* Kernels behind Tables 1 & 2: one full fit per method. *)
        Test.make ~name:"tab1-tab2.somp-fit"
          (Staged.stage (fun () -> ignore (Cbmf_model.Somp.fit d ~n_terms:10)));
        Test.make ~name:"tab1-tab2.cbmf-fit"
          (Staged.stage (fun () -> ignore (Cbmf_core.Cbmf.fit ~config:fast d)));
        (* Kernels behind Figures 2 & 3: one sweep point = posterior
           solves + EM refinement + greedy initialization. *)
        Test.make ~name:"fig2-fig3.posterior"
          (Staged.stage (fun () ->
               ignore
                 (Cbmf_core.Posterior.compute ~need_sigma:true std prior
                    ~active:(Array.init std.Cbmf_model.Dataset.n_basis Fun.id))));
        Test.make ~name:"fig2-fig3.em-refine"
          (Staged.stage (fun () ->
               ignore
                 (Cbmf_core.Em.run
                    ~config:{ Cbmf_core.Em.default_config with max_iter = 2 }
                    std prior)));
        Test.make ~name:"fig2-fig3.init-pass"
          (Staged.stage (fun () ->
               ignore
                 (Cbmf_core.Init.greedy_pass ~train:std ~test:None ~r0:0.9
                    ~sigma0:0.1 ~theta_max:10)))
      ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 3.0) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ t ] -> Format.fprintf fmt "  %-30s %12.3f ms/run@." name (t /. 1e6)
      | _ -> Format.fprintf fmt "  %-30s (no estimate)@." name)
    rows

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let full = List.mem "full" args in
  let smoke = List.mem "smoke" args in
  let args =
    List.filter (fun a -> a <> "quick" && a <> "full" && a <> "smoke") args
  in
  let all = args = [] in
  let want x = all || List.mem x args in
  let t0 = Unix.gettimeofday () in
  if want "tab1" then run_table ~quick "tab1" "lna";
  if want "tab2" then run_table ~quick "tab2" "mixer";
  if want "fig2" then run_figure ~quick ~full "fig2" "lna";
  if want "fig3" then run_figure ~quick ~full "fig3" "mixer";
  if want "ablation" then run_ablation ();
  if want "micro" then micro ();
  if want "par" then run_par ~smoke ~quick;
  if want "posterior" then run_posterior ~smoke;
  if want "serve" then run_serve ~smoke;
  if want "serve_load" then run_serve_load ~smoke;
  if want "frontend" then run_frontend ~smoke;
  if want "synth" then run_synth ~smoke;
  if want "active" then run_active ~smoke;
  Format.fprintf fmt "@.[bench complete in %.1f s wall clock]@."
    (Unix.gettimeofday () -. t0)
