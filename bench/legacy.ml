(* Frozen pre-optimization posterior (the PR-1-era hot path): dense
   [Chol.inverse] of the NK×NK Gram to extract the W-blocks, sqrt(λ)-
   scaled design copies for the G assembly, no workspace reuse.  Kept
   verbatim as the "before" baseline for BENCH_posterior.json — the
   library's [Posterior.compute] must beat this end-to-end through the
   same EM loop ([Em.run ~posterior:Legacy.compute]). *)

open Cbmf_linalg
open Cbmf_model
open Cbmf_core

let upper_pairs k =
  let pairs = Array.make (k * (k + 1) / 2) (0, 0) in
  let idx = ref 0 in
  for k1 = 0 to k - 1 do
    for k2 = k1 to k - 1 do
      pairs.(!idx) <- (k1, k2);
      incr idx
    done
  done;
  pairs

let assemble_g (d : Dataset.t) (prior : Prior.t) ~(s_mats : Mat.t array) =
  let k = d.Dataset.n_states and n = d.Dataset.n_samples in
  let nk = k * n in
  let g = Array.make (nk * nk) 0.0 in
  let pairs = upper_pairs k in
  let pool = Cbmf_parallel.Pool.default () in
  Cbmf_parallel.Pool.parallel_for pool ~n:(Array.length pairs)
    (fun pair_i ->
      let k1, k2 = pairs.(pair_i) in
      let r12 = Mat.get prior.Prior.r k1 k2 in
      if r12 <> 0.0 then begin
        let p = Mat.matmul_nt_naive s_mats.(k1) s_mats.(k2) in
        for i = 0 to n - 1 do
          let gi = ((k1 * n) + i) * nk in
          let pi = i * n in
          for j = 0 to n - 1 do
            let v = r12 *. p.Mat.data.(pi + j) in
            g.(gi + (k2 * n) + j) <- v;
            if k1 <> k2 then begin
              let gj = ((k2 * n) + j) * nk in
              g.(gj + (k1 * n) + i) <- v
            end
          done
        done
      end);
  let s2 = prior.Prior.sigma0 *. prior.Prior.sigma0 in
  for i = 0 to nk - 1 do
    g.((i * nk) + i) <- g.((i * nk) + i) +. s2
  done;
  Mat.unsafe_of_flat ~rows:nk ~cols:nk g

(* Dense inverse column-by-column, exactly as the pre-TRSM [Chol]
   did it (the blocked [Chol.inverse] would flatter the baseline). *)
let dense_inverse chol =
  let n = Chol.dim chol in
  let inv = Mat.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    Mat.set_col inv j (Chol.solve_vec chol e)
  done;
  Mat.symmetrize_inplace inv;
  inv

let compute ?(need_sigma = true) (d : Dataset.t) (prior : Prior.t) ~active =
  let k = d.Dataset.n_states
  and n = d.Dataset.n_samples
  and m = d.Dataset.n_basis in
  let a = Array.length active in
  let nk = k * n in
  let b_act = Array.map (fun bmat -> Mat.select_cols bmat active) d.Dataset.design in
  let sqrt_lambda = Array.map (fun j -> sqrt prior.Prior.lambda.(j)) active in
  let s_mats =
    Array.map
      (fun (bm : Mat.t) ->
        Mat.init bm.Mat.rows a (fun i j -> Mat.get bm i j *. sqrt_lambda.(j)))
      b_act
  in
  let g = assemble_g d prior ~s_mats in
  let chol = Chol.factorize_with_retry g in
  let y = Array.make nk 0.0 in
  for s = 0 to k - 1 do
    Array.blit d.Dataset.response.(s) 0 y (s * n) n
  done;
  let z = Chol.solve_vec chol y in
  let v = Array.make_matrix a k 0.0 in
  for s = 0 to k - 1 do
    let bm = b_act.(s) in
    for i = 0 to n - 1 do
      let zi = z.((s * n) + i) in
      if zi <> 0.0 then begin
        let row = i * a in
        for j = 0 to a - 1 do
          v.(j).(s) <- v.(j).(s) +. (zi *. bm.Mat.data.(row + j))
        done
      end
    done
  done;
  let mu = Mat.create m k in
  Array.iteri
    (fun j col ->
      let lam = prior.Prior.lambda.(col) in
      if lam > 0.0 then begin
        let rv = Mat.mat_vec prior.Prior.r v.(j) in
        for s = 0 to k - 1 do
          Mat.set mu col s (lam *. rv.(s))
        done
      end)
    active;
  let resid_sq = ref 0.0 in
  for s = 0 to k - 1 do
    let bm = b_act.(s) in
    for i = 0 to n - 1 do
      let pred = ref 0.0 in
      let row = i * a in
      for j = 0 to a - 1 do
        pred := !pred +. (bm.Mat.data.(row + j) *. Mat.get mu active.(j) s)
      done;
      let e = y.((s * n) + i) -. !pred in
      resid_sq := !resid_sq +. (e *. e)
    done
  done;
  let nlml = Vec.dot y z +. Chol.log_det chol in
  let sigma_blocks, trace_ginv =
    if not need_sigma then ([||], 0.0)
    else begin
      let ginv = dense_inverse chol in
      let trace_ginv = Mat.trace ginv in
      let w = Array.init a (fun _ -> Mat.create k k) in
      let pairs = upper_pairs k in
      let pool = Cbmf_parallel.Pool.default () in
      Cbmf_parallel.Pool.parallel_for pool ~n:(Array.length pairs)
        (fun pair_i ->
          let k1, k2 = pairs.(pair_i) in
          let zbuf = Mat.create n a in
          let b2 = b_act.(k2) in
          for i = 0 to n - 1 do
            let gi = ((k1 * n) + i) * (k * n) in
            let zrow = i * a in
            for i2 = 0 to n - 1 do
              let gv = ginv.Mat.data.(gi + (k2 * n) + i2) in
              if gv <> 0.0 then begin
                let brow = i2 * a in
                for j = 0 to a - 1 do
                  zbuf.Mat.data.(zrow + j) <-
                    zbuf.Mat.data.(zrow + j) +. (gv *. b2.Mat.data.(brow + j))
                done
              end
            done
          done;
          let b1 = b_act.(k1) in
          let acc = Array.make a 0.0 in
          for i = 0 to n - 1 do
            let brow = i * a and zrow = i * a in
            for j = 0 to a - 1 do
              acc.(j) <-
                acc.(j) +. (b1.Mat.data.(brow + j) *. zbuf.Mat.data.(zrow + j))
            done
          done;
          for j = 0 to a - 1 do
            Mat.set w.(j) k1 k2 acc.(j);
            if k1 <> k2 then Mat.set w.(j) k2 k1 acc.(j)
          done);
      let blocks =
        Array.mapi
          (fun j col ->
            let lam = prior.Prior.lambda.(col) in
            let rw = Mat.matmul prior.Prior.r w.(j) in
            let rwr = Mat.matmul rw prior.Prior.r in
            let s = Mat.sub (Mat.scale lam prior.Prior.r) (Mat.scale (lam *. lam) rwr) in
            Mat.symmetrize_inplace s;
            (col, s))
          active
      in
      (blocks, trace_ginv)
    end
  in
  let predictive ~state (b : Vec.t) =
    let mean = ref 0.0 in
    Array.iter (fun col -> mean := !mean +. (b.(col) *. Mat.get mu col state)) active;
    let t_act = Array.map (fun col -> prior.Prior.lambda.(col) *. b.(col)) active in
    let a_aa = ref 0.0 in
    Array.iteri (fun j col -> a_aa := !a_aa +. (t_act.(j) *. b.(col))) active;
    let a_aa = Mat.get prior.Prior.r state state *. !a_aa in
    let w = Array.make nk 0.0 in
    for s = 0 to k - 1 do
      let rks = Mat.get prior.Prior.r s state in
      if rks <> 0.0 then begin
        let bm = b_act.(s) in
        for i = 0 to n - 1 do
          let row = i * a in
          let acc = ref 0.0 in
          for j = 0 to a - 1 do
            acc := !acc +. (bm.Mat.data.(row + j) *. t_act.(j))
          done;
          w.((s * n) + i) <- rks *. !acc
        done
      end
    done;
    let var = a_aa -. Chol.quad_inv chol w in
    (!mean, Float.max var 0.0)
  in
  (* Same contract as [Posterior.state_cov], through the cached factor. *)
  let state_cov () =
    Array.init k (fun s ->
        let ws_mat = Mat.create nk a in
        let wd = ws_mat.Mat.data in
        for k' = 0 to k - 1 do
          let rks = Mat.get prior.Prior.r k' s in
          if rks <> 0.0 then begin
            let bm = b_act.(k') in
            for i = 0 to n - 1 do
              let brow = i * a in
              let wrow = ((k' * n) + i) * a in
              for j = 0 to a - 1 do
                wd.(wrow + j) <-
                  rks *. prior.Prior.lambda.(active.(j))
                  *. bm.Mat.data.(brow + j)
              done
            done
          end
        done;
        let x = Chol.solve_lower_mat chol ws_mat in
        let xtx = Mat.syrk_tn x in
        let c = Mat.create a a in
        let rss = Mat.get prior.Prior.r s s in
        for j = 0 to a - 1 do
          Mat.set c j j (rss *. prior.Prior.lambda.(active.(j)))
        done;
        Mat.sub c xtx)
  in
  {
    Posterior.mu;
    sigma_blocks;
    active;
    nlml;
    resid_sq = !resid_sq;
    trace_ginv;
    nk;
    path = `Dual;
    predictive;
    state_cov;
  }
