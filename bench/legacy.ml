(* Frozen pre-optimization posterior (the PR-1-era hot path): dense
   [Chol.inverse] of the NK×NK Gram to extract the W-blocks, sqrt(λ)-
   scaled design copies for the G assembly, no workspace reuse.  Kept
   verbatim as the "before" baseline for BENCH_posterior.json — the
   library's [Posterior.compute] must beat this end-to-end through the
   same EM loop ([Em.run ~posterior:Legacy.compute]). *)

open Cbmf_linalg
open Cbmf_model
open Cbmf_core

let upper_pairs k =
  let pairs = Array.make (k * (k + 1) / 2) (0, 0) in
  let idx = ref 0 in
  for k1 = 0 to k - 1 do
    for k2 = k1 to k - 1 do
      pairs.(!idx) <- (k1, k2);
      incr idx
    done
  done;
  pairs

let assemble_g (d : Dataset.t) (prior : Prior.t) ~(s_mats : Mat.t array) =
  let k = d.Dataset.n_states and n = d.Dataset.n_samples in
  let nk = k * n in
  let g = Array.make (nk * nk) 0.0 in
  let pairs = upper_pairs k in
  let pool = Cbmf_parallel.Pool.default () in
  Cbmf_parallel.Pool.parallel_for pool ~n:(Array.length pairs)
    (fun pair_i ->
      let k1, k2 = pairs.(pair_i) in
      let r12 = Mat.get prior.Prior.r k1 k2 in
      if r12 <> 0.0 then begin
        let p = Mat.matmul_nt_naive s_mats.(k1) s_mats.(k2) in
        for i = 0 to n - 1 do
          let gi = ((k1 * n) + i) * nk in
          let pi = i * n in
          for j = 0 to n - 1 do
            let v = r12 *. p.Mat.data.(pi + j) in
            g.(gi + (k2 * n) + j) <- v;
            if k1 <> k2 then begin
              let gj = ((k2 * n) + j) * nk in
              g.(gj + (k1 * n) + i) <- v
            end
          done
        done
      end);
  let s2 = prior.Prior.sigma0 *. prior.Prior.sigma0 in
  for i = 0 to nk - 1 do
    g.((i * nk) + i) <- g.((i * nk) + i) +. s2
  done;
  Mat.unsafe_of_flat ~rows:nk ~cols:nk g

(* Dense inverse column-by-column, exactly as the pre-TRSM [Chol]
   did it (the blocked [Chol.inverse] would flatter the baseline). *)
let dense_inverse chol =
  let n = Chol.dim chol in
  let inv = Mat.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    Mat.set_col inv j (Chol.solve_vec chol e)
  done;
  Mat.symmetrize_inplace inv;
  inv

let compute ?(need_sigma = true) (d : Dataset.t) (prior : Prior.t) ~active =
  let k = d.Dataset.n_states
  and n = d.Dataset.n_samples
  and m = d.Dataset.n_basis in
  let a = Array.length active in
  let nk = k * n in
  let b_act = Array.map (fun bmat -> Mat.select_cols bmat active) d.Dataset.design in
  let sqrt_lambda = Array.map (fun j -> sqrt prior.Prior.lambda.(j)) active in
  let s_mats =
    Array.map
      (fun (bm : Mat.t) ->
        Mat.init bm.Mat.rows a (fun i j -> Mat.get bm i j *. sqrt_lambda.(j)))
      b_act
  in
  let g = assemble_g d prior ~s_mats in
  let chol = Chol.factorize_with_retry g in
  let y = Array.make nk 0.0 in
  for s = 0 to k - 1 do
    Array.blit d.Dataset.response.(s) 0 y (s * n) n
  done;
  let z = Chol.solve_vec chol y in
  let v = Array.make_matrix a k 0.0 in
  for s = 0 to k - 1 do
    let bm = b_act.(s) in
    for i = 0 to n - 1 do
      let zi = z.((s * n) + i) in
      if zi <> 0.0 then begin
        let row = i * a in
        for j = 0 to a - 1 do
          v.(j).(s) <- v.(j).(s) +. (zi *. bm.Mat.data.(row + j))
        done
      end
    done
  done;
  let mu = Mat.create m k in
  Array.iteri
    (fun j col ->
      let lam = prior.Prior.lambda.(col) in
      if lam > 0.0 then begin
        let rv = Mat.mat_vec prior.Prior.r v.(j) in
        for s = 0 to k - 1 do
          Mat.set mu col s (lam *. rv.(s))
        done
      end)
    active;
  let resid_sq = ref 0.0 in
  for s = 0 to k - 1 do
    let bm = b_act.(s) in
    for i = 0 to n - 1 do
      let pred = ref 0.0 in
      let row = i * a in
      for j = 0 to a - 1 do
        pred := !pred +. (bm.Mat.data.(row + j) *. Mat.get mu active.(j) s)
      done;
      let e = y.((s * n) + i) -. !pred in
      resid_sq := !resid_sq +. (e *. e)
    done
  done;
  let nlml = Vec.dot y z +. Chol.log_det chol in
  let sigma_blocks, trace_ginv =
    if not need_sigma then ([||], 0.0)
    else begin
      let ginv = dense_inverse chol in
      let trace_ginv = Mat.trace ginv in
      let w = Array.init a (fun _ -> Mat.create k k) in
      let pairs = upper_pairs k in
      let pool = Cbmf_parallel.Pool.default () in
      Cbmf_parallel.Pool.parallel_for pool ~n:(Array.length pairs)
        (fun pair_i ->
          let k1, k2 = pairs.(pair_i) in
          let zbuf = Mat.create n a in
          let b2 = b_act.(k2) in
          for i = 0 to n - 1 do
            let gi = ((k1 * n) + i) * (k * n) in
            let zrow = i * a in
            for i2 = 0 to n - 1 do
              let gv = ginv.Mat.data.(gi + (k2 * n) + i2) in
              if gv <> 0.0 then begin
                let brow = i2 * a in
                for j = 0 to a - 1 do
                  zbuf.Mat.data.(zrow + j) <-
                    zbuf.Mat.data.(zrow + j) +. (gv *. b2.Mat.data.(brow + j))
                done
              end
            done
          done;
          let b1 = b_act.(k1) in
          let acc = Array.make a 0.0 in
          for i = 0 to n - 1 do
            let brow = i * a and zrow = i * a in
            for j = 0 to a - 1 do
              acc.(j) <-
                acc.(j) +. (b1.Mat.data.(brow + j) *. zbuf.Mat.data.(zrow + j))
            done
          done;
          for j = 0 to a - 1 do
            Mat.set w.(j) k1 k2 acc.(j);
            if k1 <> k2 then Mat.set w.(j) k2 k1 acc.(j)
          done);
      let blocks =
        Array.mapi
          (fun j col ->
            let lam = prior.Prior.lambda.(col) in
            let rw = Mat.matmul prior.Prior.r w.(j) in
            let rwr = Mat.matmul rw prior.Prior.r in
            let s = Mat.sub (Mat.scale lam prior.Prior.r) (Mat.scale (lam *. lam) rwr) in
            Mat.symmetrize_inplace s;
            (col, s))
          active
      in
      (blocks, trace_ginv)
    end
  in
  let predictive ~state (b : Vec.t) =
    let mean = ref 0.0 in
    Array.iter (fun col -> mean := !mean +. (b.(col) *. Mat.get mu col state)) active;
    let t_act = Array.map (fun col -> prior.Prior.lambda.(col) *. b.(col)) active in
    let a_aa = ref 0.0 in
    Array.iteri (fun j col -> a_aa := !a_aa +. (t_act.(j) *. b.(col))) active;
    let a_aa = Mat.get prior.Prior.r state state *. !a_aa in
    let w = Array.make nk 0.0 in
    for s = 0 to k - 1 do
      let rks = Mat.get prior.Prior.r s state in
      if rks <> 0.0 then begin
        let bm = b_act.(s) in
        for i = 0 to n - 1 do
          let row = i * a in
          let acc = ref 0.0 in
          for j = 0 to a - 1 do
            acc := !acc +. (bm.Mat.data.(row + j) *. t_act.(j))
          done;
          w.((s * n) + i) <- rks *. !acc
        done
      end
    done;
    let var = a_aa -. Chol.quad_inv chol w in
    (!mean, Float.max var 0.0)
  in
  (* Same contract as [Posterior.state_cov], through the cached factor. *)
  let state_cov () =
    Array.init k (fun s ->
        let ws_mat = Mat.create nk a in
        let wd = ws_mat.Mat.data in
        for k' = 0 to k - 1 do
          let rks = Mat.get prior.Prior.r k' s in
          if rks <> 0.0 then begin
            let bm = b_act.(k') in
            for i = 0 to n - 1 do
              let brow = i * a in
              let wrow = ((k' * n) + i) * a in
              for j = 0 to a - 1 do
                wd.(wrow + j) <-
                  rks *. prior.Prior.lambda.(active.(j))
                  *. bm.Mat.data.(brow + j)
              done
            done
          end
        done;
        let x = Chol.solve_lower_mat chol ws_mat in
        let xtx = Mat.syrk_tn x in
        let c = Mat.create a a in
        let rss = Mat.get prior.Prior.r s s in
        for j = 0 to a - 1 do
          Mat.set c j j (rss *. prior.Prior.lambda.(active.(j)))
        done;
        Mat.sub c xtx)
  in
  {
    Posterior.mu;
    sigma_blocks;
    active;
    nlml;
    resid_sq = !resid_sq;
    trace_ginv;
    nk;
    path = `Dual;
    predictive;
    state_cov;
  }

(* --- Frozen pre-PR front-end paths --------------------------------- *)

(* The "before" baselines for BENCH_frontend.json, kept verbatim from
   the pre-incremental front end: S-OMP recomputing column norms on
   every selection and re-solving the full QR on every step, and the
   Algorithm-1 CV grid re-materializing the folds and re-factorizing
   the R prior inside every (r0, sigma0) cell.  The library's
   [Somp.fit] / [Init.run] must produce identical supports and scores
   while beating these end-to-end. *)
module Frontend = struct
  let select_next (d : Dataset.t) ~residual ~exclude =
    let m = d.Dataset.n_basis in
    let scores = Array.make m 0.0 in
    for k = 0 to d.Dataset.n_states - 1 do
      let b = d.Dataset.design.(k) in
      let norms = Cbmf_basis.Dictionary.column_norms b in
      let corr = Mat.mat_tvec b residual.(k) in
      for j = 0 to m - 1 do
        scores.(j) <- scores.(j) +. (abs_float corr.(j) /. norms.(j))
      done
    done;
    let best = ref (-1) and best_score = ref neg_infinity in
    for j = 0 to m - 1 do
      if (not exclude.(j)) && scores.(j) > !best_score then begin
        best := j;
        best_score := scores.(j)
      end
    done;
    if !best < 0 then raise Not_found;
    !best

  let somp_fit (d : Dataset.t) ~n_terms =
    let m = d.Dataset.n_basis in
    let n_terms = Stdlib.min n_terms (Stdlib.min d.Dataset.n_samples m) in
    assert (n_terms > 0);
    let exclude = Array.make m false in
    let support = ref [] in
    let residual = Array.map Vec.copy d.Dataset.response in
    let refit sup =
      let coeffs = Ols.fit_on_support d ~support:sup in
      for k = 0 to d.Dataset.n_states - 1 do
        residual.(k) <-
          Vec.sub d.Dataset.response.(k) (Metrics.predict_state ~coeffs d k)
      done;
      coeffs
    in
    let coeffs = ref (Mat.create d.Dataset.n_states m) in
    (try
       for _ = 1 to n_terms do
         let j = select_next d ~residual ~exclude in
         exclude.(j) <- true;
         support := j :: !support;
         coeffs := refit (Array.of_list (List.rev !support))
       done
     with Not_found | Qr.Rank_deficient _ -> ());
    { Somp.support = Array.of_list (List.rev !support); coeffs = !coeffs }

  let greedy_pass ~(train : Dataset.t) ~test ~r0 ~sigma0 ~theta_max =
    let k = train.Dataset.n_states
    and n = train.Dataset.n_samples
    and m = train.Dataset.n_basis in
    let nk = k * n in
    let theta_max = Stdlib.min theta_max (Stdlib.min (nk - 1) m) in
    assert (theta_max >= 1);
    let r = Prior.r_of_r0 ~n_states:k ~r0 in
    let l_r = Chol.lower (Chol.factorize_with_retry r) in
    let chol_g = Chol.of_scaled_identity nk (sigma0 *. sigma0) in
    let y = Array.make nk 0.0 in
    for s = 0 to k - 1 do
      Array.blit train.Dataset.response.(s) 0 y (s * n) n
    done;
    let residual = Array.map Vec.copy train.Dataset.response in
    let exclude = Array.make m false in
    let support = ref [] in
    let errors = ref [] in
    (try
       for _ = 1 to theta_max do
         let s = select_next train ~residual ~exclude in
         exclude.(s) <- true;
         support := s :: !support;
         for j = 0 to k - 1 do
           let u = Array.make nk 0.0 in
           for st = 0 to k - 1 do
             let lrj = Mat.get l_r st j in
             if lrj <> 0.0 then begin
               let b = train.Dataset.design.(st) in
               for i = 0 to n - 1 do
                 u.((st * n) + i) <- lrj *. Mat.get b i s
               done
             end
           done;
           Chol.rank1_update chol_g u
         done;
         let z = Chol.solve_vec chol_g y in
         let sup = Array.of_list (List.rev !support) in
         let a = Array.length sup in
         let mu = Mat.create a k in
         Array.iteri
           (fun j col ->
             let v = Array.make k 0.0 in
             for st = 0 to k - 1 do
               let b = train.Dataset.design.(st) in
               let bd = b.Mat.data and bc = b.Mat.cols in
               let acc = ref 0.0 in
               for i = 0 to n - 1 do
                 acc :=
                   !acc
                   +. (Array.unsafe_get bd ((i * bc) + col)
                      *. Array.unsafe_get z ((st * n) + i))
               done;
               v.(st) <- !acc
             done;
             Mat.set_row mu j (Mat.mat_vec r v))
           sup;
         for st = 0 to k - 1 do
           let b = train.Dataset.design.(st) in
           let bd = b.Mat.data and bc = b.Mat.cols in
           let md = mu.Mat.data in
           let res = Vec.copy train.Dataset.response.(st) in
           for i = 0 to n - 1 do
             let row = i * bc in
             let pred = ref 0.0 in
             for j = 0 to a - 1 do
               pred :=
                 !pred
                 +. (Array.unsafe_get bd (row + Array.unsafe_get sup j)
                    *. Array.unsafe_get md ((j * k) + st))
             done;
             res.(i) <- res.(i) -. !pred
           done;
           residual.(st) <- res
         done;
         match test with
         | None -> ()
         | Some (t : Dataset.t) ->
             let pairs =
               Array.init k (fun st ->
                   let b = t.Dataset.design.(st) in
                   let predicted =
                     Array.init b.Mat.rows (fun i ->
                         let acc = ref 0.0 in
                         for j = 0 to a - 1 do
                           acc :=
                             !acc +. (Mat.get b i sup.(j) *. Mat.get mu j st)
                         done;
                         !acc)
                   in
                   (predicted, t.Dataset.response.(st)))
             in
             errors := Metrics.relative_rms_pooled pairs :: !errors
       done
     with Not_found -> ());
    (Array.of_list (List.rev !support), Array.of_list (List.rev !errors))

  let init_run ~(config : Init.config) (d : Dataset.t) =
    assert (Array.length config.Init.r0_grid > 0);
    assert (Array.length config.Init.sigma0_grid > 0);
    let pool = Cbmf_parallel.Pool.default () in
    let best = ref None in
    Array.iter
      (fun r0 ->
        Array.iter
          (fun sigma0 ->
            let fold_errs =
              Cbmf_parallel.Pool.map ~chunk:1 pool ~n:config.Init.n_folds
                (fun fold ->
                  let train, test =
                    Dataset.split_fold d ~n_folds:config.Init.n_folds ~fold
                  in
                  let _, errs =
                    greedy_pass ~train ~test:(Some test) ~r0 ~sigma0
                      ~theta_max:config.Init.theta_max
                  in
                  errs)
            in
            let acc = ref [||] in
            let n_err = ref max_int in
            Array.iteri
              (fun fold errs ->
                n_err := Stdlib.min !n_err (Array.length errs);
                if fold = 0 then acc := Array.copy errs
                else
                  for i = 0
                       to Stdlib.min (Array.length !acc) (Array.length errs) - 1
                  do
                    !acc.(i) <- !acc.(i) +. errs.(i)
                  done)
              fold_errs;
            let n_err = Stdlib.min !n_err (Array.length !acc) in
            for theta_i = 0 to n_err - 1 do
              let e = !acc.(theta_i) /. float_of_int config.Init.n_folds in
              match !best with
              | Some (_, _, _, e_best) when e >= e_best -> ()
              | _ -> best := Some (r0, sigma0, theta_i + 1, e)
            done)
          config.Init.sigma0_grid)
      config.Init.r0_grid;
    match !best with
    | None -> invalid_arg "Legacy.Frontend.init_run: empty grid"
    | Some (r0, sigma0, theta, cv_error) ->
        let support, _ =
          greedy_pass ~train:d ~test:None ~r0 ~sigma0 ~theta_max:theta
        in
        let lambda = Array.make d.Dataset.n_basis config.Init.lambda_off in
        Array.iter (fun s -> lambda.(s) <- 1.0) support;
        let prior =
          Prior.create ~lambda
            ~r:(Prior.r_of_r0 ~n_states:d.Dataset.n_states ~r0)
            ~sigma0
        in
        { Init.support; r0; sigma0; theta; cv_error; prior }
end
