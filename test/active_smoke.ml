(* Active-learning loop smoke test.

   Run by the `active-smoke` dune alias with CBMF_DOMAINS=2 (a real
   multi-domain pool, not an in-process toggle).  Drives the full
   simulate→refit→acquire loop on a synthetic ground truth and checks
   that (1) budget accounting is exact, (2) the streaming NLML agrees
   with a from-scratch `Primal refit at every checkpoint, (3) results
   are finite, and (4) a 1-domain rerun is bit-identical to the
   multi-domain run.  Exits nonzero on any failure. *)

open Cbmf_linalg
module Pool = Cbmf_parallel.Pool
module Syn = Cbmf_circuit.Synthetic
module Update = Cbmf_active.Update
module Sim = Cbmf_active.Sim
module Loop = Cbmf_active.Loop

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "active-smoke FAIL: %s\n%!" name
  end

let fnv = Cbmf_testkit.Seeded.hash_floats_acc

let spec =
  { Syn.default_spec with
    k = 4;
    m = 11;
    d = 7;
    active_per_state = 4;
    rho = 0.9;
    noise_sigma = 0.05;
    seed = 44 }

let config =
  { Loop.default_config with
    n0 = 4;
    rounds = 6;
    pool_size = 8;
    resync_every = 3;
    em = { Cbmf_core.Em.default_config with max_iter = 6; tol = 1e-3 } }

let prior0 =
  Cbmf_core.Prior.create
    ~lambda:(Array.make spec.Syn.m 1.0)
    ~r:(Cbmf_core.Prior.r_of_r0 ~n_states:spec.Syn.k ~r0:0.5)
    ~sigma0:0.2

let run () =
  Loop.run ~config ~sim:(Sim.of_synthetic (Syn.truth spec)) ~prior0 ()

let result_hash (res : Loop.result) =
  let acc = fnv Cbmf_testkit.Seeded.fnv_offset res.Loop.coeffs.Mat.data in
  fnv acc (Array.map (fun l -> l.Loop.nlml) res.Loop.logs)

let () =
  let res = run () in
  let k = spec.Syn.k in
  check "budget accounting"
    (res.Loop.simulated = (config.Loop.n0 * k) + (config.Loop.rounds * k));
  check "one log per round" (Array.length res.Loop.logs = config.Loop.rounds);
  check "coeffs finite"
    (Array.for_all Float.is_finite res.Loop.coeffs.Mat.data);
  check "nlml finite"
    (Array.for_all (fun l -> Float.is_finite l.Loop.nlml) res.Loop.logs);
  (* streaming factorization vs from-scratch refit on the final data *)
  let refit =
    Update.create res.Loop.data res.Loop.prior ~active:res.Loop.active
  in
  let stream_nlml = (Array.get res.Loop.logs (config.Loop.rounds - 1)).Loop.nlml
  and refit_nlml = Update.nlml refit in
  check "streaming NLML = refit NLML @ 1e-8"
    (abs_float (stream_nlml -. refit_nlml)
    <= 1e-8 *. (1.0 +. abs_float refit_nlml));
  (* multi-domain run (the alias env) vs a forced 1-domain rerun *)
  let h_env = result_hash res in
  Pool.set_default_size 1;
  let h_one = result_hash (run ()) in
  Pool.set_default_size (Pool.env_domains ());
  check "bit-identical to a 1-domain run" (Int64.equal h_env h_one);
  if !failures > 0 then exit 1;
  Printf.printf
    "active-smoke OK: %d rounds, %d simulated, %d EM runs, nlml %.6f, hash \
     %Lx\n%!"
    config.Loop.rounds res.Loop.simulated res.Loop.em_runs stream_nlml h_env
