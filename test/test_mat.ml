open Cbmf_linalg
open Helpers

let test_identity () =
  let i3 = Mat.identity 3 in
  check_float "trace" 3.0 (Mat.trace i3);
  check_true "symmetric" (Mat.is_symmetric i3);
  let a = random_mat 3 3 in
  mat_close "I·a = a" a (Mat.matmul i3 a);
  mat_close "a·I = a" a (Mat.matmul a i3)

let test_transpose () =
  let a = random_mat 3 5 in
  let at = Mat.transpose a in
  check_int "rows" 5 (fst (Mat.dim at));
  mat_close "involution" a (Mat.transpose at)

let test_matmul_assoc () =
  let a = random_mat 4 3 and b = random_mat 3 5 and c = random_mat 5 2 in
  mat_close ~tol:1e-10 "(ab)c = a(bc)"
    (Mat.matmul (Mat.matmul a b) c)
    (Mat.matmul a (Mat.matmul b c))

let test_matmul_variants () =
  let a = random_mat 4 3 and b = random_mat 5 3 in
  mat_close "matmul_nt = a·bᵀ" (Mat.matmul a (Mat.transpose b)) (Mat.matmul_nt a b);
  let c = random_mat 4 5 in
  mat_close "matmul_tn = aᵀ·c" (Mat.matmul (Mat.transpose a) c) (Mat.matmul_tn a c)

let test_mat_vec () =
  let a = random_mat 4 3 in
  let x = random_vec 3 in
  let expected = Array.init 4 (fun i -> Vec.dot (Mat.row a i) x) in
  vec_close "mat_vec" expected (Mat.mat_vec a x);
  let y = random_vec 4 in
  vec_close "mat_tvec" (Mat.mat_vec (Mat.transpose a) y) (Mat.mat_tvec a y)

let test_gram () =
  let a = random_mat 6 3 in
  let g = Mat.gram a in
  check_true "gram symmetric" (Mat.is_symmetric ~tol:1e-10 g);
  mat_close "gram = aᵀa" (Mat.matmul (Mat.transpose a) a) g

let test_rows_cols () =
  let a = Mat.init 3 4 (fun i j -> float_of_int ((10 * i) + j)) in
  vec_close "row" (Vec.of_list [ 10.0; 11.0; 12.0; 13.0 ]) (Mat.row a 1);
  vec_close "col" (Vec.of_list [ 2.0; 12.0; 22.0 ]) (Mat.col a 2);
  Mat.set_row a 0 (Vec.of_list [ 1.0; 1.0; 1.0; 1.0 ]);
  check_float "set_row" 1.0 (Mat.get a 0 3);
  Mat.set_col a 1 (Vec.of_list [ 5.0; 5.0; 5.0 ]);
  check_float "set_col" 5.0 (Mat.get a 2 1)

let test_submatrix_select () =
  let a = Mat.init 4 4 (fun i j -> float_of_int ((10 * i) + j)) in
  let s = Mat.submatrix a ~row0:1 ~col0:2 ~rows:2 ~cols:2 in
  check_float "sub[0,0]" 12.0 (Mat.get s 0 0);
  check_float "sub[1,1]" 23.0 (Mat.get s 1 1);
  let c = Mat.select_cols a [| 3; 0 |] in
  check_float "select[0,0]" 3.0 (Mat.get c 0 0);
  check_float "select[2,1]" 20.0 (Mat.get c 2 1)

let test_outer_quadratic () =
  let x = Vec.of_list [ 1.0; 2.0 ] and y = Vec.of_list [ 3.0; 4.0; 5.0 ] in
  let o = Mat.outer x y in
  check_float "outer" 8.0 (Mat.get o 1 1);
  let a = random_spd 4 in
  let v = random_vec 4 in
  check_float ~tol:1e-10 "quadratic_form"
    (Vec.dot v (Mat.mat_vec a v))
    (Mat.quadratic_form a v)

let test_add_outer_inplace () =
  let a = Mat.create 2 2 in
  let x = Vec.of_list [ 1.0; 2.0 ] in
  Mat.add_outer_inplace a 2.0 x x;
  check_float "outer inplace" 8.0 (Mat.get a 1 1);
  check_float "outer inplace off-diag" 4.0 (Mat.get a 0 1)

let test_diag_trace () =
  let d = Mat.diag (Vec.of_list [ 1.0; 2.0; 3.0 ]) in
  check_float "trace" 6.0 (Mat.trace d);
  vec_close "diagonal" (Vec.of_list [ 1.0; 2.0; 3.0 ]) (Mat.diagonal d);
  Mat.add_diag_inplace d 1.0;
  check_float "add_diag" 2.0 (Mat.get d 0 0)

let test_symmetrize () =
  let a = Mat.of_arrays [| [| 1.0; 4.0 |]; [| 2.0; 1.0 |] |] in
  Mat.symmetrize_inplace a;
  check_float "sym" 3.0 (Mat.get a 0 1);
  check_true "is_symmetric" (Mat.is_symmetric a)

let test_norms () =
  let a = Mat.of_arrays [| [| 1.0; -2.0 |]; [| 3.0; 4.0 |] |] in
  check_float "norm_inf" 7.0 (Mat.norm_inf a);
  check_float "max_abs" 4.0 (Mat.max_abs a);
  check_float ~tol:1e-10 "frobenius" (sqrt 30.0) (Mat.frobenius a)

let prop_transpose_matmul =
  qcase ~count:50 "(ab)ᵀ = bᵀaᵀ"
    QCheck2.Gen.(pair (int_range 1 8) (int_range 1 8))
    (fun (r, c) ->
      let a = random_mat r c and b = random_mat c r in
      Mat.approx_equal ~tol:1e-9
        (Mat.transpose (Mat.matmul a b))
        (Mat.matmul (Mat.transpose b) (Mat.transpose a)))

let prop_trace_cyclic =
  qcase ~count:50 "Tr(ab) = Tr(ba)"
    QCheck2.Gen.(pair (int_range 1 8) (int_range 1 8))
    (fun (r, c) ->
      let a = random_mat r c and b = random_mat c r in
      abs_float (Mat.trace (Mat.matmul a b) -. Mat.trace (Mat.matmul b a))
      <= 1e-8)

(* The blocked kernels must agree with the naive triple loops on
   shapes that exercise every tile/unroll remainder (sizes around the
   4× k-unroll, the 2×2 register block, and odd dimensions). *)
let test_blocked_vs_naive () =
  List.iter
    (fun (m, p, n) ->
      let a = random_mat m p and b = random_mat p n in
      mat_close ~tol:1e-10
        (Printf.sprintf "matmul blocked = naive (%dx%dx%d)" m p n)
        (Mat.matmul_naive a b) (Mat.matmul a b);
      let bt = random_mat n p in
      mat_close ~tol:1e-10
        (Printf.sprintf "matmul_nt blocked = naive (%dx%dx%d)" m p n)
        (Mat.matmul_nt_naive a bt) (Mat.matmul_nt a bt);
      let c = random_mat m n in
      mat_close ~tol:1e-10
        (Printf.sprintf "matmul_tn blocked = naive (%dx%dx%d)" m p n)
        (Mat.matmul_naive (Mat.transpose a) c)
        (Mat.matmul_tn a c))
    [ (1, 1, 1); (2, 3, 2); (3, 5, 7); (5, 4, 1); (8, 8, 8); (9, 13, 11);
      (1, 9, 6); (17, 66, 5) ]

(* The packed-parallel GEMM paths must be bit-identical to the
   sequential blocked kernels at any domain count — the shapes are
   sized to clear the fan-out thresholds under any Tune calibration
   (> 16M flops), so the panel kernels really run — and must still
   agree with the naive oracles. *)
let test_gemm_domain_bit_identity () =
  let module Pool = Cbmf_parallel.Pool in
  let a = random_mat 257 200 and b = random_mat 200 211 in
  let nt_b = random_mat 211 200 in
  let tn_c = random_mat 257 211 in
  let s = random_mat 301 277 in
  let w = Array.init 200 (fun i -> 0.25 +. (0.125 *. float_of_int (i mod 8))) in
  let run () =
    [ Mat.matmul a b; Mat.matmul_nt a nt_b; Mat.matmul_tn a tn_c;
      Mat.syrk_tn s; Mat.syrk_nt s; Mat.matmul_nt_weighted a w nt_b ]
  in
  Pool.set_default_size 1;
  let seq = run () in
  List.iter
    (fun size ->
      Pool.set_default_size size;
      List.iteri
        (fun i (p : Mat.t) ->
          check_true
            (Printf.sprintf "kernel %d bit-identical at %d domains" i size)
            ((List.nth seq i).Mat.data = p.Mat.data))
        (run ()))
    [ 2; 4; 8 ];
  Pool.set_default_size (Pool.env_domains ());
  mat_close ~tol:1e-8 "matmul vs naive" (Mat.matmul_naive a b) (List.nth seq 0);
  mat_close ~tol:1e-8 "matmul_nt vs naive" (Mat.matmul_nt_naive a nt_b)
    (List.nth seq 1)

let test_syrk () =
  let a = random_mat 7 4 in
  mat_close ~tol:1e-10 "syrk_tn = aᵀa" (Mat.matmul_tn a a) (Mat.syrk_tn a);
  mat_close ~tol:1e-10 "syrk_nt = aaᵀ" (Mat.matmul_nt a a) (Mat.syrk_nt a);
  check_true "syrk_tn symmetric" (Mat.is_symmetric (Mat.syrk_tn a));
  check_true "syrk_nt symmetric" (Mat.is_symmetric (Mat.syrk_nt a))

let test_matmul_nt_weighted () =
  let a = random_mat 5 6 and b = random_mat 4 6 in
  let w = Array.init 6 (fun i -> 0.5 +. (0.25 *. float_of_int i)) in
  let scaled = Mat.init 5 6 (fun i j -> Mat.get a i j *. w.(j)) in
  mat_close ~tol:1e-10 "a·diag(w)·bᵀ" (Mat.matmul_nt scaled b)
    (Mat.matmul_nt_weighted a w b);
  (* Same physical matrix on both sides: symmetric fast path. *)
  let aw = Mat.matmul_nt_weighted a w a in
  let scaled_a = Mat.init 5 6 (fun i j -> Mat.get a i j *. w.(j)) in
  mat_close ~tol:1e-10 "a·diag(w)·aᵀ" (Mat.matmul_nt scaled_a a) aw;
  check_true "weighted self symmetric" (Mat.is_symmetric aw)

let suite =
  [ ( "linalg.mat",
      [ case "identity" test_identity;
        case "transpose" test_transpose;
        case "matmul associativity" test_matmul_assoc;
        case "matmul_nt/tn" test_matmul_variants;
        case "blocked kernels = naive" test_blocked_vs_naive;
        case "GEMM bit-identical across domain counts"
          test_gemm_domain_bit_identity;
        case "syrk" test_syrk;
        case "matmul_nt_weighted" test_matmul_nt_weighted;
        case "mat_vec/mat_tvec" test_mat_vec;
        case "gram" test_gram;
        case "rows/cols" test_rows_cols;
        case "submatrix/select_cols" test_submatrix_select;
        case "outer/quadratic" test_outer_quadratic;
        case "add_outer_inplace" test_add_outer_inplace;
        case "diag/trace" test_diag_trace;
        case "symmetrize" test_symmetrize;
        case "norms" test_norms;
        prop_transpose_matmul;
        prop_trace_cyclic ] ) ]
