(* Fault-injection smoke test.

   Run by the `robust-smoke` dune alias with injection armed through
   the environment — CBMF_FAULT_SITES/SEED/PROB — and CBMF_DOMAINS=2,
   i.e. exactly the knobs a user would set to exercise the failure
   paths.  Drives the Monte-Carlo → dataset → EM pipeline end to end
   and checks that (1) faults were actually injected and recovered
   from, (2) every result is finite, and (3) a 1-domain rerun is
   bit-identical to the 2-domain run.  Exits nonzero on any failure. *)

open Cbmf_linalg
open Cbmf_model
open Cbmf_core
open Cbmf_robust

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "robust-smoke FAIL: %s\n%!" name
  end

let fnv = Cbmf_testkit.Seeded.hash_floats_acc

let finite (xs : float array) = Array.for_all Float.is_finite xs

(* Small planted multi-state regression problem (same shape the unit
   tests use) so the EM stage is fast. *)
let planted () =
  let k = 6 and n = 10 and m = 16 in
  let rng = Cbmf_prob.Rng.create 99 in
  let design =
    Array.init k (fun _ ->
        Mat.init n m (fun _ j ->
            if j = 0 then 1.0 else Cbmf_prob.Rng.gaussian rng))
  in
  let response =
    Array.init k (fun s ->
        Array.init n (fun i ->
            (4.0 *. Mat.get design.(s) i 0)
            +. (1.5 *. (1.0 +. (0.1 *. sin (0.3 *. float_of_int s)))
               *. Mat.get design.(s) i 5)
            -. Mat.get design.(s) i 9
            +. (0.05 *. Cbmf_prob.Rng.gaussian rng)))
  in
  Dataset.create ~design ~response

let pipeline () =
  (* Stage 1: resilient Monte Carlo on the LNA testbench. *)
  let tb = Cbmf_circuit.Lna.create () in
  let rng = Cbmf_prob.Rng.create 42 in
  let mc_diag = Diag.create () in
  let mc = Cbmf_circuit.Montecarlo.generate ~diag:mc_diag tb rng ~n_per_state:3 in
  let mc_hash =
    Array.fold_left
      (fun acc (s : Cbmf_circuit.Montecarlo.per_state) ->
        fnv (fnv acc s.Cbmf_circuit.Montecarlo.xs.Mat.data)
          s.Cbmf_circuit.Montecarlo.ys.Mat.data)
      Cbmf_testkit.Seeded.fnv_offset mc.Cbmf_circuit.Montecarlo.states
  in
  Array.iter
    (fun (s : Cbmf_circuit.Montecarlo.per_state) ->
      check "mc ys finite" (finite s.Cbmf_circuit.Montecarlo.ys.Mat.data))
    mc.Cbmf_circuit.Montecarlo.states;
  (* Stage 2: guarded EM on a planted problem. *)
  let d = planted () in
  check "dataset validates" (Dataset.validate d = Ok ());
  let prior0 =
    Prior.create
      ~lambda:(Array.make d.Dataset.n_basis 0.5)
      ~r:(Prior.r_of_r0 ~n_states:d.Dataset.n_states ~r0:0.5)
      ~sigma0:0.3
  in
  let prior, post, trace = Em.run d prior0 in
  check "lambda finite" (finite prior.Prior.lambda);
  check "R finite" (finite prior.Prior.r.Mat.data);
  check "sigma0 finite" (Float.is_finite prior.Prior.sigma0);
  check "nlml finite" (Float.is_finite post.Posterior.nlml);
  let em_hash =
    fnv (fnv Cbmf_testkit.Seeded.fnv_offset prior.Prior.lambda) prior.Prior.r.Mat.data
  in
  let report =
    (Diag.summary mc_diag, Diag.summary trace.Em.diag, trace.Em.recoveries)
  in
  (Int64.logxor mc_hash em_hash, Diag.count mc_diag + Diag.count trace.Em.diag, report)

(* Re-arm with the same environment knobs: restarts the deterministic
   decision stream so both pipeline runs see identical injections. *)
let rearm () =
  let sites =
    String.split_on_char ',' (Sys.getenv "CBMF_FAULT_SITES")
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let seed = int_of_string (String.trim (Sys.getenv "CBMF_FAULT_SEED")) in
  let prob = float_of_string (String.trim (Sys.getenv "CBMF_FAULT_PROB")) in
  Inject.arm ~seed ~prob ~sites ()

let () =
  check "injection armed via environment" (Inject.armed ());
  check "CBMF_DOMAINS=2 honored" (Cbmf_parallel.Pool.env_domains () = 2);
  rearm ();
  let h2, faults2, report2 = pipeline () in
  check "faults were injected and survived" (faults2 > 0);
  (* Rerun on one domain: everything — data, repairs, fault report —
     must be bit-identical. *)
  Cbmf_parallel.Pool.set_default_size 1;
  rearm ();
  let h1, faults1, report1 = pipeline () in
  check "1-domain rerun bit-identical" (Int64.equal h1 h2);
  check "fault accounting domain-invariant"
    (faults1 = faults2 && report1 = report2);
  if !failures > 0 then begin
    Printf.eprintf "robust-smoke: %d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline "robust-smoke: pipeline self-healed; 1 vs 2 domains bit-identical"
