let () =
  Alcotest.run "cbmf"
    (List.concat
       [ Test_vec.suite;
         Test_mat.suite;
         Test_chol.suite;
         Test_lu_qr_eig.suite;
         Test_complex.suite;
         Test_prob.suite;
         Test_basis.suite;
         Test_circuit.suite;
         Test_mna.suite;
         Test_testbench.suite;
         Test_model.suite;
         Test_lasso.suite;
         Test_group_lasso.suite;
         Test_core.suite;
         Test_cluster.suite;
         Test_parallel.suite;
         Test_robust.suite;
         Test_serve.suite;
         Test_synthetic.suite;
         Test_recovery.suite;
         Test_engine_stress.suite;
         Test_posterior_oracle.suite;
         Test_active.suite;
         Test_frontend_oracle.suite;
         Test_integration.suite ])
