(* Ground-truth recovery: on a strongly correlated workload (rho = 0.9)
   with a low sample budget, exploiting cross-state correlation must
   recover the planted support at least as well as the uncorrelated
   ablation — the paper's central claim, checked against a truth no
   physical testbench can expose. *)

open Helpers
module Synthetic = Cbmf_circuit.Synthetic
module Recovery = Cbmf_experiments.Recovery
module Metrics = Cbmf_model.Metrics

(* Correlated regime: many states, few samples per state — each state
   is underdetermined alone, so sharing across states is what recovers
   the template. *)
let spec =
  { Synthetic.default_spec with
    Synthetic.k = 12;
    m = 31;
    d = 15;
    active_per_state = 4;
    rho = 0.9;
    noise_sigma = 0.05;
    density = 0.2;
    seed = 5 }

let mean xs = Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let cells_of method_ cells =
  Array.of_list
    (List.filter (fun c -> c.Recovery.method_ = method_) (Array.to_list cells))

let test_metrics () =
  let p, r =
    Metrics.support_precision_recall ~truth:[| 2; 5; 9 |] ~estimate:[| 2; 9; 11; 14 |]
  in
  check_float ~tol:1e-12 "precision" 0.5 p;
  check_float ~tol:1e-12 "recall" (2.0 /. 3.0) r;
  check_float ~tol:1e-12 "f1"
    (2.0 *. 0.5 *. (2.0 /. 3.0) /. (0.5 +. (2.0 /. 3.0)))
    (Metrics.support_f1 ~truth:[| 2; 5; 9 |] ~estimate:[| 2; 9; 11; 14 |]);
  check_float ~tol:1e-12 "perfect" 1.0
    (Metrics.support_f1 ~truth:[| 1; 2 |] ~estimate:[| 2; 1 |]);
  check_float ~tol:1e-12 "disjoint" 0.0
    (Metrics.support_f1 ~truth:[| 1 |] ~estimate:[| 2 |]);
  check_float ~tol:1e-12 "empty estimate" 0.0
    (Metrics.support_f1 ~truth:[| 1 |] ~estimate:[||])

let test_posterior_path_crossover () =
  (* Auto picks primal iff aK < NK strictly: with a=4, K=12 the active
     block is 48 — 3 samples/state (NK=36) must go dual, 6 (NK=72)
     primal.  The same crossover the scaling bench records per cell. *)
  let t = Synthetic.truth spec in
  let d3 = Synthetic.dataset t ~n_per_state:3 in
  let d6 = Synthetic.dataset t ~n_per_state:6 in
  check_true "aK >= NK goes dual" (Recovery.posterior_path t d3 = "dual");
  check_true "aK < NK goes primal" (Recovery.posterior_path t d6 = "primal")

let test_cbmf_beats_uncorrelated () =
  (* The acceptance criterion: on the rho = 0.9 low-budget grid, C-BMF
     support-recovery F1 is at least the uncorrelated baseline's. *)
  let cells =
    Recovery.run_grid ~n_test:25
      ~methods:[ `Cbmf; `Uncorrelated ]
      ~specs:[| spec |] ~budgets:[| 4; 6 |] ()
  in
  check_int "grid size" 4 (Array.length cells);
  let f1_cbmf = mean (Array.map (fun c -> c.Recovery.f1) (cells_of `Cbmf cells)) in
  let f1_unc =
    mean (Array.map (fun c -> c.Recovery.f1) (cells_of `Uncorrelated cells))
  in
  check_true
    (Printf.sprintf "cbmf F1 %.3f >= uncorrelated F1 %.3f" f1_cbmf f1_unc)
    (f1_cbmf >= f1_unc);
  check_true "cbmf recovers most of the support" (f1_cbmf >= 0.6);
  Array.iter
    (fun c ->
      check_true "f1 in [0,1]" (c.Recovery.f1 >= 0.0 && c.Recovery.f1 <= 1.0);
      check_true "precision in [0,1]"
        (c.Recovery.precision >= 0.0 && c.Recovery.precision <= 1.0);
      check_true "recall in [0,1]"
        (c.Recovery.recall >= 0.0 && c.Recovery.recall <= 1.0);
      check_true "coeff_rmse finite" (Float.is_finite c.Recovery.coeff_rmse);
      check_true "test_error finite" (Float.is_finite c.Recovery.test_error);
      check_true "path recorded"
        (c.Recovery.path = "dual" || c.Recovery.path = "primal"))
    cells

let test_budget_improves_recovery () =
  (* More simulations can only help: at a generous budget the C-BMF
     fit nails the support and the held-out error approaches the
     planted noise floor. *)
  let t = Synthetic.truth spec in
  let train = Synthetic.dataset t ~n_per_state:24 in
  let test = Synthetic.test_dataset t ~n_per_state:25 in
  let c = Recovery.run_method ~truth:t ~train ~test `Cbmf in
  check_true
    (Printf.sprintf "high budget F1 %.3f" c.Recovery.f1)
    (c.Recovery.f1 >= 0.85);
  check_true
    (Printf.sprintf "high budget test error %.3f" c.Recovery.test_error)
    (c.Recovery.test_error < 0.15)

let test_somp_baseline () =
  let t = Synthetic.truth spec in
  let train = Synthetic.dataset t ~n_per_state:8 in
  let test = Synthetic.test_dataset t ~n_per_state:25 in
  let c = Recovery.run_method ~truth:t ~train ~test `Somp_ols in
  check_true "somp path unset" (c.Recovery.path = "-");
  check_true "somp f1 sane" (c.Recovery.f1 >= 0.0 && c.Recovery.f1 <= 1.0);
  check_true "somp test error finite" (Float.is_finite c.Recovery.test_error);
  check_int "budget recorded" 8 c.Recovery.n_per_state

let test_deterministic () =
  let t = Synthetic.truth spec in
  let train = Synthetic.dataset t ~n_per_state:5 in
  let test = Synthetic.test_dataset t ~n_per_state:10 in
  let a = Recovery.run_method ~truth:t ~train ~test `Cbmf in
  let b = Recovery.run_method ~truth:t ~train ~test `Cbmf in
  check_true "recovery cells deterministic"
    (Int64.equal (Int64.bits_of_float a.Recovery.f1) (Int64.bits_of_float b.Recovery.f1)
    && Int64.equal
         (Int64.bits_of_float a.Recovery.coeff_rmse)
         (Int64.bits_of_float b.Recovery.coeff_rmse)
    && a.Recovery.path = b.Recovery.path)

let suite =
  [ ( "recovery",
      [ case "metrics" test_metrics;
        case "posterior_path_crossover" test_posterior_path_crossover;
        slow_case "cbmf_beats_uncorrelated" test_cbmf_beats_uncorrelated;
        slow_case "budget_improves_recovery" test_budget_improves_recovery;
        case "somp_baseline" test_somp_baseline;
        case "deterministic" test_deterministic ] ) ]
