(* Shared test utilities.

   The seeded corpus (deterministic random inputs) and the FNV-1a
   bit-pattern hashes live in [Cbmf_testkit.Seeded] so the smoke
   executables and the bench harness share one implementation; this
   module re-exports them alongside the Alcotest wrappers. *)

module Seeded = Cbmf_testkit.Seeded

let check_float ?(tol = 1e-9) name expected actual =
  Alcotest.(check (float tol)) name expected actual

let check_true name b = Alcotest.(check bool) name true b

let check_int name expected actual = Alcotest.(check int) name expected actual

let check_raises_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let case name f = Alcotest.test_case name `Quick f

let slow_case name f = Alcotest.test_case name `Slow f

let qcase ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Deterministic random matrices/vectors for tests (one shared stream,
   same historical seed, so existing suites keep their exact inputs). *)
let rng = Seeded.default_rng ()

let random_vec n = Seeded.random_vec rng n

let random_mat r c = Seeded.random_mat rng r c

let random_spd n = Seeded.random_spd rng n

(* FNV-1a over IEEE-754 bit patterns: any single-ulp difference changes
   the hash, so these make exact determinism goldens. *)
let hash_floats_acc = Seeded.hash_floats_acc

let hash_floats = Seeded.hash_floats

let hash_mats = Seeded.hash_mats

let montecarlo_lna_seed42_n3_hash = Seeded.montecarlo_lna_seed42_n3_hash

let mat_close ?(tol = 1e-8) name a b =
  let open Cbmf_linalg in
  if not (Mat.approx_equal ~tol a b) then
    Alcotest.failf "%s: matrices differ (max delta %g)" name
      (Mat.max_abs (Mat.sub a b))

let vec_close ?(tol = 1e-8) name a b =
  let open Cbmf_linalg in
  if not (Vec.approx_equal ~tol a b) then
    Alcotest.failf "%s: vectors differ (max delta %g)" name
      (Vec.norm_inf (Vec.sub a b))
