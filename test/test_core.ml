open Cbmf_linalg
open Cbmf_model
open Cbmf_core
open Helpers

(* Planted correlated multi-state problem (constant column at 0). *)
let planted ?(k = 8) ?(n = 10) ?(m = 30) ?(noise = 0.05) ?(seed = 3)
    ?(smooth = 0.15) () =
  let rng = Cbmf_prob.Rng.create seed in
  let coef s j =
    match j with
    | 0 -> 4.0
    | 5 -> 1.5 *. (1.0 +. (smooth *. sin (0.3 *. float_of_int s)))
    | 12 -> -1.0 *. (1.0 +. (smooth *. cos (0.25 *. float_of_int s)))
    | 21 -> 0.6
    | _ -> 0.0
  in
  let design =
    Array.init k (fun _ ->
        Mat.init n m (fun _ j -> if j = 0 then 1.0 else Cbmf_prob.Rng.gaussian rng))
  in
  let response =
    Array.init k (fun s ->
        Array.init n (fun i ->
            let acc = ref (noise *. Cbmf_prob.Rng.gaussian rng) in
            for j = 0 to m - 1 do
              let c = coef s j in
              if c <> 0.0 then acc := !acc +. (c *. Mat.get design.(s) i j)
            done;
            !acc))
  in
  Dataset.create ~design ~response

(* --- Standardize --- *)

let test_standardize_roundtrip_stats () =
  let d = planted () in
  let tr, std = Standardize.fit d in
  (* Standardized responses: zero mean per state, unit pooled variance. *)
  Array.iter
    (fun y -> check_true "centered" (abs_float (Vec.mean y) < 1e-10))
    std.Dataset.response;
  let pooled = ref 0.0 and count = ref 0 in
  Array.iter
    (fun y ->
      Array.iter (fun v -> pooled := !pooled +. (v *. v)) y;
      count := !count + Array.length y)
    std.Dataset.response;
  check_true "unit variance"
    (abs_float ((!pooled /. float_of_int (!count - d.Dataset.n_states)) -. 1.0) < 0.05);
  check_true "scale positive" (Standardize.response_scale tr > 0.0)

let test_standardize_drops_constant () =
  let d = planted ~m:10 () in
  let tr, std = Standardize.fit d in
  check_int "constant dropped" 9 std.Dataset.n_basis;
  check_true "kept excludes 0"
    (not (Array.exists (fun c -> c = 0) (Standardize.kept_columns tr)))

let test_standardize_coeff_roundtrip () =
  (* Fit OLS on standardized data, map back, and check raw predictions. *)
  let d = planted ~n:40 ~noise:0.0 () in
  let tr, std = Standardize.fit d in
  let coeffs_std = Ols.fit std in
  let coeffs = Standardize.unstandardize_coeffs tr coeffs_std in
  check_float ~tol:1e-7 "raw-unit error" 0.0 (Metrics.coeffs_error_pooled ~coeffs d)

let test_standardize_apply_consistent () =
  let d = planted () in
  let tr, std = Standardize.fit d in
  let again = Standardize.apply tr d in
  check_float "idempotent transform"
    (Mat.get std.Dataset.design.(2) 3 4)
    (Mat.get again.Dataset.design.(2) 3 4)

(* --- Prior --- *)

let test_r_of_r0 () =
  let r = Prior.r_of_r0 ~n_states:4 ~r0:0.5 in
  check_float "diag" 1.0 (Mat.get r 0 0);
  check_float "adjacent" 0.5 (Mat.get r 0 1);
  check_float "distance 3" 0.125 (Mat.get r 0 3);
  check_true "PD" (Chol.is_positive_definite r);
  let i = Prior.r_of_r0 ~n_states:3 ~r0:0.0 in
  mat_close "r0=0 is identity" (Mat.identity 3) i

let test_prior_validation () =
  let lambda = Vec.make 5 1.0 in
  let r = Prior.r_of_r0 ~n_states:3 ~r0:0.9 in
  let p = Prior.create ~lambda ~r ~sigma0:0.1 in
  check_int "n_basis" 5 (Prior.n_basis p);
  check_int "n_states" 3 (Prior.n_states p);
  (match Prior.create ~lambda ~r ~sigma0:0.0 with
  | _ -> Alcotest.fail "expected assert"
  | exception Assert_failure _ -> ())

let test_active_set () =
  let lambda = [| 1.0; 1e-9; 0.5; 0.0 |] in
  let p =
    Prior.create ~lambda ~r:(Prior.r_of_r0 ~n_states:2 ~r0:0.5) ~sigma0:0.1
  in
  check_true "active" (Prior.active_set p ~tol:1e-6 = [| 0; 2 |])

(* --- Posterior: structured vs dense reference --- *)

let test_posterior_matches_naive () =
  (* Tiny instance where the (M·K)-dense path is affordable. *)
  let d = planted ~k:3 ~n:6 ~m:5 ~noise:0.1 () in
  let lambda = [| 0.8; 0.3; 1.2; 0.05; 0.6 |] in
  let r = Prior.r_of_r0 ~n_states:3 ~r0:0.7 in
  let prior = Prior.create ~lambda ~r ~sigma0:0.3 in
  let post =
    Posterior.compute d prior ~active:(Array.init 5 Fun.id)
  in
  let mu_naive, sigma_naive, nlml_naive = Posterior.naive_dense d prior in
  mat_close ~tol:1e-7 "posterior mean" mu_naive post.Posterior.mu;
  check_float ~tol:1e-6 "marginal likelihood" nlml_naive post.Posterior.nlml;
  (* Diagonal blocks of the dense Σp must match the structured blocks. *)
  Array.iter
    (fun (m, block) ->
      let dense_block =
        Mat.submatrix sigma_naive ~row0:(m * 3) ~col0:(m * 3) ~rows:3 ~cols:3
      in
      mat_close ~tol:1e-7 (Printf.sprintf "sigma block %d" m) dense_block block)
    post.Posterior.sigma_blocks

let test_posterior_zero_lambda_inactive () =
  let d = planted ~k:3 ~n:6 ~m:5 () in
  let lambda = [| 1.0; 0.0; 1.0; 0.0; 1.0 |] in
  let prior =
    Prior.create ~lambda ~r:(Prior.r_of_r0 ~n_states:3 ~r0:0.5) ~sigma0:0.2
  in
  let post = Posterior.compute d prior ~active:[| 0; 2; 4 |] in
  check_float "inactive mu zero" 0.0 (Mat.get post.Posterior.mu 1 0);
  check_int "blocks only active" 3 (Array.length post.Posterior.sigma_blocks)

let test_posterior_shrinks_with_small_lambda () =
  let d = planted ~k:3 ~n:8 ~m:5 () in
  let mk lam =
    let prior =
      Prior.create ~lambda:(Vec.make 5 lam)
        ~r:(Prior.r_of_r0 ~n_states:3 ~r0:0.5)
        ~sigma0:0.3
    in
    let p = Posterior.compute ~need_sigma:false d prior ~active:(Array.init 5 Fun.id) in
    Mat.frobenius p.Posterior.mu
  in
  check_true "tighter prior shrinks harder" (mk 1e-4 < 0.05 *. mk 10.0)

let test_posterior_interpolates_as_sigma_to_zero () =
  (* With a huge prior and tiny noise, training residual goes to ~0. *)
  let d = planted ~k:2 ~n:6 ~m:8 ~noise:0.0 () in
  let prior =
    Prior.create ~lambda:(Vec.make 8 100.0)
      ~r:(Prior.r_of_r0 ~n_states:2 ~r0:0.5)
      ~sigma0:1e-3
  in
  let p = Posterior.compute ~need_sigma:false d prior ~active:(Array.init 8 Fun.id) in
  check_true "near interpolation" (p.Posterior.resid_sq < 1e-4)

let test_coefficients_layout () =
  let d = planted ~k:3 ~n:6 ~m:5 () in
  let prior =
    Prior.create ~lambda:(Vec.make 5 1.0)
      ~r:(Prior.r_of_r0 ~n_states:3 ~r0:0.5)
      ~sigma0:0.2
  in
  let p = Posterior.compute ~need_sigma:false d prior ~active:(Array.init 5 Fun.id) in
  let c = Posterior.coefficients p in
  check_int "K rows" 3 (fst (Mat.dim c));
  check_int "M cols" 5 (snd (Mat.dim c));
  check_float "transpose consistency" (Mat.get p.Posterior.mu 2 1) (Mat.get c 1 2)

(* --- EM --- *)

let std_planted ?smooth ?noise ?seed () =
  let d = planted ?smooth ?noise ?seed ~n:12 () in
  let _, std = Standardize.fit d in
  std

let uniform_prior std =
  Prior.create
    ~lambda:(Vec.make std.Dataset.n_basis 0.5)
    ~r:(Prior.r_of_r0 ~n_states:std.Dataset.n_states ~r0:0.5)
    ~sigma0:0.3

let test_em_nlml_decreases () =
  let std = std_planted () in
  let _, _, trace = Em.run std (uniform_prior std) in
  let h = trace.Em.nlml_history in
  check_true "history nonempty" (Array.length h >= 2);
  for i = 1 to Array.length h - 1 do
    (* EM guarantees non-increase; allow tiny numerical slack plus the
       effect of R renormalization. *)
    check_true "nlml non-increasing" (h.(i) <= h.(i - 1) +. 0.5)
  done

let test_em_prunes_to_support () =
  (* Seed λ the way the initializer does: 1 on a support guess that
     includes two junk columns, tiny elsewhere.  EM must keep the
     planted columns and prune the junk after the warm iteration. *)
  let std = std_planted ~noise:0.02 () in
  let lambda = Array.make std.Dataset.n_basis 1e-7 in
  List.iter (fun j -> lambda.(j) <- 1.0) [ 4; 11; 20; 2; 17 ];
  let prior0 =
    Prior.create ~lambda
      ~r:(Prior.r_of_r0 ~n_states:std.Dataset.n_states ~r0:0.5)
      ~sigma0:0.1
  in
  let prior, post, _ = Em.run std prior0 in
  check_true "pruned substantially"
    (Array.length post.Posterior.active <= 8);
  let lam = prior.Prior.lambda in
  check_true "kept the signal columns"
    (lam.(4) > 0.0 && lam.(11) > 0.0 && lam.(20) > 0.0);
  (* The three planted columns must carry the largest lambdas. *)
  let order = Array.init (Array.length lam) Fun.id in
  Array.sort (fun i j -> compare lam.(j) lam.(i)) order;
  let top3 = Array.sub order 0 3 in
  Array.sort compare top3;
  check_true "top-3 lambda = planted support" (top3 = [| 4; 11; 20 |])

let test_em_fixed_r () =
  let std = std_planted () in
  let r0 = Prior.r_of_r0 ~n_states:std.Dataset.n_states ~r0:0.5 in
  let prior, _, _ =
    Em.run ~config:{ Em.default_config with update_r = false } std
      (uniform_prior std)
  in
  mat_close ~tol:1e-12 "R frozen" r0 prior.Prior.r

let test_em_sigma_update_floor () =
  let std = std_planted () in
  let cfg = { Em.default_config with update_sigma0 = true; min_sigma0 = 0.25 } in
  let prior, _, _ = Em.run ~config:cfg std (uniform_prior std) in
  check_true "floor respected" (prior.Prior.sigma0 >= 0.25)

let test_em_r_stays_pd () =
  let std = std_planted ~smooth:0.4 () in
  let prior, _, _ = Em.run std (uniform_prior std) in
  check_true "R PD" (Chol.is_positive_definite prior.Prior.r);
  check_true "R symmetric" (Mat.is_symmetric ~tol:1e-8 prior.Prior.r)

let test_em_min_active () =
  let std = std_planted () in
  let cfg = { Em.default_config with prune_tol = 1.0; min_active = 3 } in
  let _, post, _ = Em.run ~config:cfg std (uniform_prior std) in
  check_true "min_active respected" (Array.length post.Posterior.active >= 3)

let test_prune_all_zero_lambda () =
  (* Every λ = 0 ⇒ nothing clears the relative floor and the fallback
     must pick the lowest-indexed columns deterministically. *)
  let cfg = { Em.default_config with min_active = 2 } in
  let kept = Em.prune cfg ~iter:5 (Array.make 6 0.0) in
  check_int "kept count" 2 (Array.length kept);
  check_int "first column" 0 kept.(0);
  check_int "second column" 1 kept.(1);
  (* Warm iterations hit the same fallback (tol·lmax = 0 either way). *)
  let warm = Em.prune cfg ~iter:1 (Array.make 6 0.0) in
  check_true "warm identical" (warm = kept)

let test_prune_tied_lambda_deterministic () =
  (* All-equal λ also ties the sort keys: the kept set must still be
     the smallest column indices, independent of sort internals. *)
  let cfg = { Em.default_config with min_active = 3; prune_tol = 2.0 } in
  let kept = Em.prune cfg ~iter:5 (Array.make 8 0.7) in
  check_true "ties broken by index" (kept = [| 0; 1; 2 |])

let test_prune_single_column () =
  let cfg = { Em.default_config with min_active = 1 } in
  check_true "single zero column kept"
    (Em.prune cfg ~iter:5 [| 0.0 |] = [| 0 |]);
  check_true "single positive column kept"
    (Em.prune cfg ~iter:5 [| 0.3 |] = [| 0 |]);
  (* min_active larger than M must clamp, not crash. *)
  let cfg3 = { Em.default_config with min_active = 3 } in
  check_true "clamped to M" (Em.prune cfg3 ~iter:5 [| 0.0 |] = [| 0 |])

(* --- Init --- *)

let test_init_finds_support () =
  let d = planted ~n:14 ~noise:0.02 () in
  let _, std = Standardize.fit d in
  let res = Init.run std in
  let sorted = Array.copy res.Init.support in
  Array.sort compare sorted;
  (* std columns are raw minus the constant: {5,12,21} → {4,11,20} *)
  Array.iter
    (fun want ->
      check_true
        (Printf.sprintf "support contains %d" want)
        (Array.exists (fun s -> s = want) sorted))
    [| 4; 11; 20 |]

let test_init_prior_shape () =
  let d = planted ~n:14 () in
  let _, std = Standardize.fit d in
  let res = Init.run std in
  let lam = res.Init.prior.Prior.lambda in
  check_int "lambda size" std.Dataset.n_basis (Array.length lam);
  Array.iter (fun s -> check_float "on-support lambda" 1.0 lam.(s)) res.Init.support;
  check_true "cv error sane" (res.Init.cv_error > 0.0 && res.Init.cv_error < 1.0)

let test_greedy_pass_errors_shape () =
  let d = planted ~n:14 () in
  let _, std = Standardize.fit d in
  let train, test = Dataset.split_fold std ~n_folds:3 ~fold:0 in
  let support, errs =
    Init.greedy_pass ~train ~test:(Some test) ~r0:0.8 ~sigma0:0.2 ~theta_max:6
  in
  check_int "one error per step" (Array.length support) (Array.length errs);
  check_true "improves over first step" (errs.(Array.length errs - 1) < errs.(0))

let test_greedy_pass_incremental_matches_posterior () =
  (* The incremental rank-1-updated solve must agree with a from-scratch
     structured posterior on the selected support. *)
  let d = planted ~k:4 ~n:8 ~m:12 ~noise:0.05 () in
  let _, std = Standardize.fit d in
  let r0 = 0.7 and sigma0 = 0.25 in
  let support, _ =
    Init.greedy_pass ~train:std ~test:None ~r0 ~sigma0 ~theta_max:3
  in
  let lambda = Array.make std.Dataset.n_basis 0.0 in
  Array.iter (fun s -> lambda.(s) <- 1.0) support;
  let prior =
    Prior.create ~lambda
      ~r:(Prior.r_of_r0 ~n_states:std.Dataset.n_states ~r0)
      ~sigma0
  in
  let post = Posterior.compute ~need_sigma:false std prior ~active:support in
  (* Rebuild the greedy pass's final residual norm from the posterior μ
     and check it is consistent (same coefficients → same residual). *)
  let coeffs = Posterior.coefficients post in
  let err = Metrics.coeffs_error_pooled ~coeffs std in
  check_true "consistent residual" (err < 0.2)

(* --- Cbmf end-to-end --- *)

let test_cbmf_beats_somp_small_n () =
  let d = planted ~k:12 ~n:8 ~m:40 ~noise:0.05 ~seed:21 () in
  let test_data = planted ~k:12 ~n:60 ~m:40 ~noise:0.05 ~seed:22 () in
  let model = Cbmf.fit ~config:Cbmf.fast_config d in
  let cbmf_err = Cbmf.test_error model test_data in
  let somp, _ = Somp.fit_cv d ~n_folds:3 ~candidate_terms:[| 2; 3; 5; 7 |] in
  let somp_err = Metrics.coeffs_error_pooled ~coeffs:somp.Somp.coeffs test_data in
  check_true
    (Printf.sprintf "cbmf (%.4f) <= somp (%.4f)" cbmf_err somp_err)
    (cbmf_err <= somp_err +. 0.002)

let test_cbmf_info_populated () =
  let d = planted ~n:10 () in
  let model = Cbmf.fit ~config:Cbmf.fast_config d in
  let info = model.Cbmf.info in
  check_true "theta > 0" (info.Cbmf.theta > 0);
  check_true "iterations > 0" (info.Cbmf.em_iterations > 0);
  check_true "fit time recorded" (info.Cbmf.fit_seconds >= 0.0);
  check_true "active > 0" (info.Cbmf.final_active > 0);
  check_int "R is KxK" d.Dataset.n_states (fst (Mat.dim info.Cbmf.final_r))

let test_cbmf_predict_state () =
  let d = planted ~n:20 ~noise:0.0 () in
  let model = Cbmf.fit ~config:Cbmf.fast_config d in
  let pred = Cbmf.predict_state model ~design:d.Dataset.design.(3) ~state:3 in
  check_true "near-exact on noiseless data"
    (Metrics.relative_rms ~predicted:pred ~actual:d.Dataset.response.(3) < 0.02)

let test_cbmf_independent_config_runs () =
  let d = planted ~n:10 () in
  let model = Cbmf.fit ~config:Cbmf.independent_config d in
  check_float "r0 forced to 0" 0.0 model.Cbmf.info.Cbmf.r0;
  check_true "still fits" (Cbmf.test_error model d < 0.2)

let test_cbmf_correlation_helps () =
  (* Strongly correlated coefficients: the correlated prior should do at
     least as well as the independent one on held-out data. *)
  let d = planted ~k:12 ~n:7 ~m:40 ~noise:0.08 ~smooth:0.1 ~seed:31 () in
  let test_data = planted ~k:12 ~n:60 ~m:40 ~noise:0.08 ~smooth:0.1 ~seed:32 () in
  let full = Cbmf.fit d in
  let indep = Cbmf.fit ~config:Cbmf.independent_config d in
  let e_full = Cbmf.test_error full test_data in
  let e_indep = Cbmf.test_error indep test_data in
  check_true
    (Printf.sprintf "correlated (%.4f) <= independent (%.4f) + slack" e_full e_indep)
    (e_full <= e_indep +. 0.005)

(* --- Predictive uncertainty --- *)

let test_uncertainty_mean_matches_coeffs () =
  let d = planted ~n:15 () in
  let model = Cbmf.fit ~config:Cbmf.fast_config d in
  let row = Mat.row d.Dataset.design.(2) 0 in
  let mean, sd = model.Cbmf.uncertainty ~state:2 row in
  let direct = Vec.dot row (Mat.row model.Cbmf.coeffs 2) in
  check_float ~tol:1e-6 "predictive mean = coefficient dot" direct mean;
  check_true "sd positive" (sd > 0.0)

let test_uncertainty_shrinks_with_data () =
  let small = planted ~n:6 ~seed:71 () in
  let large = planted ~n:30 ~seed:71 () in
  let m_small = Cbmf.fit ~config:Cbmf.fast_config small in
  let m_large = Cbmf.fit ~config:Cbmf.fast_config large in
  let probe = planted ~n:1 ~seed:72 () in
  let row = Mat.row probe.Dataset.design.(0) 0 in
  let _, sd_small = m_small.Cbmf.uncertainty ~state:0 row in
  let _, sd_large = m_large.Cbmf.uncertainty ~state:0 row in
  check_true
    (Printf.sprintf "sd shrinks (%.4f -> %.4f)" sd_small sd_large)
    (sd_large <= sd_small +. 1e-9)

let test_uncertainty_calibration () =
  (* At least ~2/3 of held-out residuals inside ±2 sd (loose sanity —
     exact calibration is not expected from a misspecified prior). *)
  let train = planted ~n:12 ~seed:73 () in
  let test_data = planted ~n:40 ~seed:74 () in
  let model = Cbmf.fit ~config:Cbmf.fast_config train in
  let inside = ref 0 and total = ref 0 in
  for s = 0 to test_data.Dataset.n_states - 1 do
    for i = 0 to test_data.Dataset.n_samples - 1 do
      let row = Mat.row test_data.Dataset.design.(s) i in
      let mean, sd = model.Cbmf.uncertainty ~state:s row in
      incr total;
      if abs_float (test_data.Dataset.response.(s).(i) -. mean) <= 2.0 *. sd
      then incr inside
    done
  done;
  let frac = float_of_int !inside /. float_of_int !total in
  check_true (Printf.sprintf "coverage %.2f >= 0.66" frac) (frac >= 0.66)

let test_posterior_predictive_consistency () =
  (* The posterior's predictive mean on a training row must equal the
     model prediction assembled from μ. *)
  let d = planted ~k:4 ~n:8 ~m:12 () in
  let _, std = Standardize.fit d in
  let prior =
    Prior.create
      ~lambda:(Vec.make std.Dataset.n_basis 1.0)
      ~r:(Prior.r_of_r0 ~n_states:4 ~r0:0.6)
      ~sigma0:0.2
  in
  let post =
    Posterior.compute ~need_sigma:false std prior
      ~active:(Array.init std.Dataset.n_basis Fun.id)
  in
  let row = Mat.row std.Dataset.design.(1) 3 in
  let mean, var = post.Posterior.predictive ~state:1 row in
  let direct = Vec.dot row (Mat.col post.Posterior.mu 1) in
  check_float ~tol:1e-8 "mean consistency" direct mean;
  check_true "variance nonnegative" (var >= 0.0);
  (* Prior-only sanity: variance cannot exceed aᵀAa. *)
  let a_aa =
    Mat.get prior.Prior.r 1 1
    *. Array.fold_left ( +. ) 0.0 (Array.map (fun b -> b *. b) row)
  in
  check_true "posterior tighter than prior" (var <= a_aa +. 1e-9)

let suite_uncertainty =
  [ ( "core.uncertainty",
      [ case "mean matches coefficients" test_uncertainty_mean_matches_coeffs;
        case "sd shrinks with data" test_uncertainty_shrinks_with_data;
        slow_case "2-sigma coverage" test_uncertainty_calibration;
        case "posterior predictive consistency" test_posterior_predictive_consistency ] ) ]

let suite =
  suite_uncertainty
  @ [ ( "core.standardize",
      [ case "centering and scaling" test_standardize_roundtrip_stats;
        case "constant column dropped" test_standardize_drops_constant;
        case "coefficient roundtrip" test_standardize_coeff_roundtrip;
        case "apply consistent" test_standardize_apply_consistent ] );
    ( "core.prior",
      [ case "R(r0)" test_r_of_r0;
        case "validation" test_prior_validation;
        case "active set" test_active_set ] );
    ( "core.posterior",
      [ case "matches dense reference" test_posterior_matches_naive;
        case "zero lambda inactive" test_posterior_zero_lambda_inactive;
        case "prior shrinkage" test_posterior_shrinks_with_small_lambda;
        case "interpolation limit" test_posterior_interpolates_as_sigma_to_zero;
        case "coefficients layout" test_coefficients_layout ] );
    ( "core.em",
      [ case "nlml decreases" test_em_nlml_decreases;
        case "prunes to support" test_em_prunes_to_support;
        case "fixed R ablation" test_em_fixed_r;
        case "sigma floor" test_em_sigma_update_floor;
        case "R stays PD" test_em_r_stays_pd;
        case "min_active" test_em_min_active;
        case "prune: all-zero lambda deterministic" test_prune_all_zero_lambda;
        case "prune: tied lambda deterministic" test_prune_tied_lambda_deterministic;
        case "prune: single column" test_prune_single_column ] );
    ( "core.init",
      [ case "finds support" test_init_finds_support;
        case "prior shape" test_init_prior_shape;
        case "greedy pass errors" test_greedy_pass_errors_shape;
        case "incremental consistency" test_greedy_pass_incremental_matches_posterior ] );
    ( "core.cbmf",
      [ slow_case "beats S-OMP at small N" test_cbmf_beats_somp_small_n;
        case "info populated" test_cbmf_info_populated;
        case "predict_state" test_cbmf_predict_state;
        case "independent config" test_cbmf_independent_config_runs;
        slow_case "correlation helps" test_cbmf_correlation_helps ] ) ]
