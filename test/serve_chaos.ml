(* Serving-tier chaos smoke.

   Run by the `serve-chaos` dune alias with all four serve fault sites
   armed through the environment (CBMF_FAULT_SITES=serve.accept_drop,
   serve.slow_reply,serve.torn_frame,serve.worker_crash): an open-loop
   burst of concurrent predict connections against a live server while
   connections are being dropped post-accept, replies delayed, reply
   frames torn mid-write and workers "crashing" mid-request.

   Asserted invariants:
   - every request resolves to a typed outcome (success, Overloaded,
     Connection_lost) — nothing hangs, nothing escapes as a raw
     exception, and the harness itself terminating proves the acceptor
     never wedged;
   - successful replies are bit-identical to the local engine even
     while chaos is firing;
   - counters balance: client-side outcomes partition the request
     total, the server saw at least every successful predict, and it
     shed at least every Overloaded the clients observed;
   - after disarming, a fresh connection gets bit-identical
     predictions and a clean shutdown works — chaos leaves no residue.

   Exits nonzero on any failure. *)

open Cbmf_linalg
open Cbmf_basis
open Cbmf_serve

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "serve-chaos FAIL: %s\n%!" name
  end

let bits_eq xs ys =
  Array.length xs = Array.length ys
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       xs ys

(* A structurally valid serving model (same construction the serve unit
   tests use), independent of the fitting pipeline. *)
let srng = Cbmf_prob.Rng.create 424242

let g () = Cbmf_prob.Rng.gaussian srng

let synth_model ~dim ~k ~a =
  let spd n =
    let m = Mat.init n n (fun _ _ -> g ()) in
    let gram = Mat.gram m in
    Mat.add_diag_inplace gram (float_of_int n *. 0.5);
    Mat.symmetrize_inplace gram;
    gram
  in
  let terms =
    Array.init a (fun j ->
        match j mod 4 with
        | 0 -> Term.Constant
        | 1 -> Term.Linear (j mod dim)
        | 2 -> Term.Square (j mod dim)
        | _ ->
            let i = j mod (dim - 1) in
            Term.Cross (i, i + 1))
  in
  {
    Model.input_dim = dim;
    n_states = k;
    terms;
    col_means = Mat.init k a (fun _ _ -> g ());
    col_scales = Array.init a (fun _ -> 0.5 +. Float.abs (g ()));
    y_means = Array.init k (fun _ -> g ());
    y_scale = 1.0 +. Float.abs (g ());
    mu = Mat.init a k (fun _ _ -> g ());
    lambda = Array.init a (fun _ -> Float.abs (g ()));
    r = Mat.init k k (fun _ _ -> g ());
    sigma0 = 0.05;
    cov = Array.init k (fun _ -> spd a);
  }

(* Pull an integer counter out of the hand-rolled stats JSON. *)
let json_int json key =
  let needle = Printf.sprintf "%S:" key in
  let nl = String.length needle and bl = String.length json in
  let rec find i =
    if i + nl > bl then None
    else if String.sub json i nl = needle then begin
      let stop = ref (i + nl) in
      while !stop < bl && json.[!stop] >= '0' && json.[!stop] <= '9' do
        incr stop
      done;
      if !stop = i + nl then None
      else Some (int_of_string (String.sub json (i + nl) (!stop - (i + nl))))
    end
    else find (i + 1)
  in
  find 0

let () =
  check "fault injection armed via environment" (Cbmf_robust.Inject.armed ());

  let model = synth_model ~dim:6 ~k:4 ~a:10 in
  check "model validates" (Model.validate model = Ok ());
  let dim = model.Model.input_dim and k = model.Model.n_states in
  let n = 24 in
  let xs = Mat.init n dim (fun _ _ -> g ()) in
  let states = Array.init n (fun i -> i mod k) in
  let exp_means, exp_sds = Engine.predict_batch model ~states ~xs in

  let dir = Filename.temp_file "cbmf_serve_chaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "chaos.sock" in
  let registry = Registry.create () in
  Registry.put registry ~name:"m" model;
  let server =
    Server.start
      ~config:
        { Server.default_config with workers = 2; queue_cap = 4; timeout = 2.0 }
      ~registry (Unix.ADDR_UNIX sock)
  in
  let addr = Server.addr server in

  (* --- Open-loop chaos load ----------------------------------------- *)
  let n_threads = 8 and per_thread = 40 in
  let total = n_threads * per_thread in
  let lock = Mutex.create () in
  let ok = ref 0 and shed = ref 0 and lost = ref 0 in
  let server_said_no = ref 0 and wrong_bits = ref 0 and escaped = ref 0 in
  let bump r =
    Mutex.lock lock;
    incr r;
    Mutex.unlock lock
  in
  let one_request () =
    match Client.connect ~timeout:2.0 addr with
    | exception _ -> bump lost (* accept backlog / raced drop *)
    | c ->
        Fun.protect
          ~finally:(fun () -> try Client.close c with _ -> ())
          (fun () ->
            match Client.predict_typed c ~name:"m" ~states ~xs with
            | Ok (rm, rs) ->
                if bits_eq exp_means rm && bits_eq exp_sds rs then bump ok
                else bump wrong_bits
            | Error (Client.Overloaded _) -> bump shed
            | Error (Client.Connection_lost _) -> bump lost
            | Error (Client.Server_error _) -> bump server_said_no
            | Error (Client.Unexpected _) -> bump server_said_no
            | exception _ -> bump escaped)
  in
  let threads =
    List.init n_threads (fun _ ->
        Thread.create
          (fun () ->
            for _ = 1 to per_thread do
              one_request ()
            done)
          ())
  in
  List.iter Thread.join threads;

  (* Every request resolved to a typed outcome; nothing raised, nothing
     hung (we got here), and chaos demonstrably fired. *)
  check "outcomes partition the request total"
    (!ok + !shed + !lost + !server_said_no + !wrong_bits + !escaped = total);
  check "no raw exceptions escaped the typed client" (!escaped = 0);
  check "no unexpected server error replies" (!server_said_no = 0);
  check "successes bit-identical under chaos" (!wrong_bits = 0);
  check "some requests succeeded" (!ok > 0);
  check "chaos actually fired (lost connections)" (!lost > 0);

  (* --- Counters balance --------------------------------------------- *)
  Cbmf_robust.Inject.disarm ();
  (match Client.connect ~timeout:5.0 addr with
  | exception e ->
      check
        (Printf.sprintf "post-chaos connect (acceptor alive): %s"
           (Printexc.to_string e))
        false
  | c ->
      (match Client.stats c with
      | Ok json ->
          let counter key =
            match json_int json key with
            | Some v -> v
            | None ->
                check (Printf.sprintf "stats has %S" key) false;
                0
          in
          let srv_predicts = counter "predict" in
          let srv_sheds = counter "sheds" in
          check "server saw at least every client success"
            (srv_predicts >= !ok);
          check "server shed at least every Overloaded observed"
            (srv_sheds >= !shed);
          check "queue depth gauge settled to zero"
            (counter "queue_depth" = 0);
          check "queue peak stayed within the cap" (counter "queue_peak" <= 4)
      | Error e -> check ("post-chaos stats: " ^ e) false);
      (* Post-chaos predictions are bit-identical to the fault-free
         engine — the harness left no residue in the serving path. *)
      (match Client.predict_typed c ~name:"m" ~states ~xs with
      | Ok (rm, rs) ->
          check "post-chaos predict bit-identical"
            (bits_eq exp_means rm && bits_eq exp_sds rs)
      | Error f ->
          check ("post-chaos predict: " ^ Client.failure_to_string f) false);
      Client.shutdown c;
      Client.close c);

  Server.wait server;
  check "socket file removed on stop" (not (Sys.file_exists sock));
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());

  if !failures > 0 then begin
    Printf.eprintf "serve-chaos: %d failure(s)\n%!" !failures;
    exit 1
  end;
  Printf.printf
    "serve-chaos: %d requests -> %d ok, %d shed, %d lost; all typed, \
     successes bit-identical, clean shutdown\n%!"
    total !ok !shed !lost
