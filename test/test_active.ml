(* Active-learning subsystem (lib/active): Woodbury rank-one parity
   against the from-scratch [`Primal] posterior over random shapes
   (including a = 1 and the aK ≷ NK crossover), incremental dataset
   caches bitwise-equal to a rebuild, EM warm-start plumbing,
   acquisition policy determinism, per-sample simulator nesting and
   the full loop's budget accounting / prefix / domain invariants. *)

open Cbmf_linalg
open Cbmf_model
open Helpers
module Pool = Cbmf_parallel.Pool
module Syn = Cbmf_circuit.Synthetic
module Update = Cbmf_active.Update
module Acquire = Cbmf_active.Acquire
module Stream = Cbmf_active.Stream
module Sim = Cbmf_active.Sim
module Loop = Cbmf_active.Loop

(* Same construction as the posterior oracle: random dense design,
   random all-positive hypers. *)
let build_case ~k ~n ~m ~seed =
  let rng = Cbmf_prob.Rng.create seed in
  let design =
    Array.init k (fun _ ->
        Mat.init n m (fun _ _ -> Cbmf_prob.Rng.gaussian rng))
  in
  let response = Array.init k (fun _ -> Cbmf_prob.Rng.gaussian_vector rng n) in
  let d = Dataset.create ~design ~response in
  let lambda = Array.init m (fun _ -> 0.05 +. Cbmf_prob.Rng.float rng) in
  let r0 = 0.9 *. Cbmf_prob.Rng.float rng in
  let sigma0 = 0.5 +. Cbmf_prob.Rng.float rng in
  let prior =
    Cbmf_core.Prior.create ~lambda
      ~r:(Cbmf_core.Prior.r_of_r0 ~n_states:k ~r0)
      ~sigma0
  in
  (d, prior)

let close ~tol reference delta = delta <= tol *. (1.0 +. reference)

(* {1 Satellite 1: incremental dataset caches} *)

(* Growing [base] by append must leave every cache bitwise identical
   (ssq, norms, Bᵀy — same accumulation order as a cold rebuild) or
   within round-off (Gram, whose blocked kernel sums differently) to
   the caches of a from-scratch dataset over the same rows. *)
let prop_append_cache_parity (k, n0, m, seed) =
  let extra = 3 in
  let full, _ = build_case ~k ~n:(n0 + extra) ~m ~seed in
  let base = Dataset.truncate_samples full ~n:n0 in
  Dataset.warm_caches base;
  let tail_design =
    Array.init k (fun s ->
        let d = Dataset.state_design full s in
        Mat.init extra m (fun i j -> Mat.get d (n0 + i) j))
  in
  let tail_response =
    Array.init k (fun s ->
        let y = Dataset.state_response full s in
        Array.init extra (fun i -> Vec.get y (n0 + i)))
  in
  let grown = Dataset.append_rows base ~design:tail_design ~response:tail_response in
  Dataset.warm_caches full;
  let ok = ref true in
  for s = 0 to k - 1 do
    let bits v = hash_floats v in
    ok := !ok && bits (Dataset.ssq grown s) = bits (Dataset.ssq full s);
    ok :=
      !ok
      && bits (Dataset.column_norms grown s) = bits (Dataset.column_norms full s);
    ok := !ok && bits (Dataset.bty grown s) = bits (Dataset.bty full s);
    let g = Dataset.gram grown s and g' = Dataset.gram full s in
    ok :=
      !ok
      && close ~tol:1e-12 (Mat.max_abs g') (Mat.max_abs (Mat.sub g g'));
    (* the rows themselves must be the full dataset's rows, exactly *)
    ok :=
      !ok
      && (Dataset.state_design grown s).Mat.data
         = (Dataset.state_design full s).Mat.data
      && Dataset.state_response grown s = Dataset.state_response full s
  done;
  !ok

let gen_grow =
  QCheck2.Gen.(
    quad (int_range 1 4) (int_range 1 4) (int_range 2 8) (int_range 0 100_000))

let test_append_row_single () =
  let full, _ = build_case ~k:2 ~n:5 ~m:3 ~seed:7 in
  let base = Dataset.truncate_samples full ~n:4 in
  let rows =
    Array.init 2 (fun s -> Mat.row (Dataset.state_design full s) 4)
  in
  let ys = Array.init 2 (fun s -> Vec.get (Dataset.state_response full s) 4) in
  let grown = Dataset.append_row base ~rows ~ys in
  check_int "n_samples" 5 grown.Dataset.n_samples;
  Array.iteri
    (fun s _ ->
      check_true "rows equal"
        ((Dataset.state_design grown s).Mat.data
        = (Dataset.state_design full s).Mat.data))
    rows

let test_append_shape_mismatch () =
  let full, _ = build_case ~k:2 ~n:4 ~m:3 ~seed:9 in
  check_raises_invalid "wrong state count" (fun () ->
      Dataset.append_row full
        ~rows:[| Vec.create 3 |]
        ~ys:[| 0.0 |]);
  check_raises_invalid "wrong row width" (fun () ->
      Dataset.append_row full
        ~rows:[| Vec.create 4; Vec.create 4 |]
        ~ys:[| 0.0; 0.0 |])

(* {1 Tentpole: Woodbury rank-one parity} *)

(* Seed an updater on a truncated dataset, stream the remaining rows in
   one at a time, and demand agreement with the from-scratch [`Primal]
   posterior on the grown dataset: μ, NLML and predictive variance all
   ≤ 1e-8.  n0 runs down to 1 and a = m up to 8, so the aK > NK
   crossover (more unknowns than samples at seed time) is exercised. *)
let woodbury_parity ~active (k, n0, m, seed) =
  let extra = 5 in
  let n = n0 + extra in
  let full, prior = build_case ~k ~n ~m ~seed in
  let base = Dataset.truncate_samples full ~n:n0 in
  let upd = Update.create base prior ~active in
  for i = n0 to n - 1 do
    for s = 0 to k - 1 do
      Update.append upd ~state:s
        ~row:(Mat.row (Dataset.state_design full s) i)
        ~y:(Vec.get (Dataset.state_response full s) i)
    done
  done;
  let reference =
    Cbmf_core.Posterior.compute ~need_sigma:false ~path:`Primal full prior
      ~active
  in
  let tol = 1e-8 in
  let mu_ok =
    close ~tol
      (Mat.max_abs reference.Cbmf_core.Posterior.mu)
      (Mat.max_abs (Mat.sub reference.Cbmf_core.Posterior.mu (Update.mean upd)))
  in
  let nlml_ok =
    close ~tol
      (abs_float reference.Cbmf_core.Posterior.nlml)
      (abs_float (reference.Cbmf_core.Posterior.nlml -. Update.nlml upd))
  in
  let rng = Cbmf_prob.Rng.create (seed + 7919) in
  let var_ok = ref true in
  for _ = 1 to 3 do
    let b = Array.init m (fun _ -> Cbmf_prob.Rng.gaussian rng) in
    for s = 0 to k - 1 do
      let _, v_ref = reference.Cbmf_core.Posterior.predictive ~state:s b in
      let v = Update.variance upd ~state:s b in
      var_ok := !var_ok && close ~tol (abs_float v_ref) (abs_float (v_ref -. v))
    done
  done;
  mu_ok && nlml_ok && !var_ok && Update.nk upd = n * k
  && Update.appended upd = extra * k

let prop_woodbury_full_active (k, n0, m, seed) =
  woodbury_parity ~active:(Array.init m Fun.id) (k, n0, m, seed)

let prop_woodbury_sparse_active (k, n0, m, seed) =
  let active = Array.init ((m + 1) / 2) (fun i -> 2 * i) in
  woodbury_parity ~active (k, n0, m, seed)

let prop_woodbury_single_active (k, n0, _m, seed) =
  woodbury_parity ~active:[| 0 |] (k, n0, 2, seed)

(* Ragged appends (states grown unevenly, any order): P is a sum of
   rank-one terms, so the final posterior must not depend on the append
   order beyond round-off. *)
let test_ragged_order_invariance () =
  let full, prior = build_case ~k:3 ~n:6 ~m:5 ~seed:42 in
  let base = Dataset.truncate_samples full ~n:3 in
  let active = Array.init 5 Fun.id in
  let row s i = Mat.row (Dataset.state_design full s) i in
  let y s i = Vec.get (Dataset.state_response full s) i in
  let samples = [ (0, 3); (0, 4); (2, 3); (0, 5); (2, 4) ] in
  let run order =
    let upd = Update.create base prior ~active in
    List.iter
      (fun (s, i) -> Update.append upd ~state:s ~row:(row s i) ~y:(y s i))
      order;
    (Update.mean upd, Update.nlml upd)
  in
  let mu_a, nlml_a = run samples in
  let mu_b, nlml_b = run (List.rev samples) in
  mat_close ~tol:1e-9 "ragged mean order-invariant" mu_a mu_b;
  check_float ~tol:1e-8 "ragged nlml order-invariant" nlml_a nlml_b

let test_update_validation () =
  let d, prior = build_case ~k:2 ~n:4 ~m:3 ~seed:3 in
  let upd = Update.create d prior ~active:[| 0; 2 |] in
  check_raises_invalid "bad state" (fun () ->
      Update.append upd ~state:5 ~row:(Vec.create 3) ~y:0.0);
  check_raises_invalid "bad row width" (fun () ->
      Update.append upd ~state:0 ~row:(Vec.create 7) ~y:0.0);
  let zero_lambda =
    Cbmf_core.Prior.create
      ~lambda:[| 1.0; 0.0; 1.0 |]
      ~r:(Cbmf_core.Prior.identity_r ~n_states:2)
      ~sigma0:0.5
  in
  check_raises_invalid "zero lambda on active set" (fun () ->
      Update.create d zero_lambda ~active:[| 0; 1 |])

(* {1 Satellite 2: EM warm start} *)

let test_em_warm_start () =
  let d, prior0 = build_case ~k:3 ~n:8 ~m:5 ~seed:11 in
  let fitted, _, cold = Cbmf_core.Em.run d prior0 in
  check_true "cold trace" (not cold.Cbmf_core.Em.warm_start);
  let _, _, warm = Cbmf_core.Em.run ~init_hypers:fitted d prior0 in
  check_true "warm trace" warm.Cbmf_core.Em.warm_start;
  (* the warm run starts where the cold run converged, so its first
     E-step can never be worse than the cold run's first *)
  check_true "warm first iterate no worse than cold first"
    (warm.Cbmf_core.Em.nlml_history.(0)
    <= cold.Cbmf_core.Em.nlml_history.(0) +. 1e-6);
  let bad =
    Cbmf_core.Prior.create
      ~lambda:(Array.make 7 1.0)
      ~r:(Cbmf_core.Prior.identity_r ~n_states:3)
      ~sigma0:0.5
  in
  check_raises_invalid "init_hypers shape mismatch" (fun () ->
      Cbmf_core.Em.run ~init_hypers:bad d prior0)

let test_cbmf_fit_warm_start () =
  let spec =
    { Syn.default_spec with k = 3; m = 9; d = 6; active_per_state = 3; seed = 5 }
  in
  let t = Syn.truth spec in
  let data = Syn.dataset t ~n_per_state:12 in
  let model = Cbmf_core.Cbmf.fit data in
  (* init_hypers lives in the standardized space: one λ per kept
     column, not per raw dictionary column *)
  let v = Lazy.force model.Cbmf_core.Cbmf.view in
  let m_std = Array.length v.Cbmf_core.Cbmf.std.Cbmf_core.Standardize.kept in
  let hypers =
    Cbmf_core.Prior.create
      ~lambda:(Array.make m_std 1.0)
      ~r:(Cbmf_core.Prior.r_of_r0 ~n_states:3 ~r0:0.5)
      ~sigma0:0.3
  in
  check_raises_invalid "raw-sized init_hypers rejected" (fun () ->
      Cbmf_core.Cbmf.fit
        ~init_hypers:
          (Cbmf_core.Prior.create
             ~lambda:(Array.make (m_std + 1) 1.0)
             ~r:(Cbmf_core.Prior.r_of_r0 ~n_states:3 ~r0:0.5)
             ~sigma0:0.3)
        data);
  let warm = Cbmf_core.Cbmf.fit ~init_hypers:hypers data in
  check_float ~tol:0.0 "init grid skipped: r0 = 0"
    0.0 warm.Cbmf_core.Cbmf.info.Cbmf_core.Cbmf.r0;
  check_float ~tol:0.0 "init grid skipped: cv_error = 0"
    0.0 warm.Cbmf_core.Cbmf.info.Cbmf_core.Cbmf.init_cv_error;
  check_true "coeffs finite"
    (Array.for_all Float.is_finite warm.Cbmf_core.Cbmf.coeffs.Mat.data)

(* {1 Acquisition policies} *)

let acquire_fixture () =
  let d, prior = build_case ~k:2 ~n:6 ~m:4 ~seed:5 in
  let upd = Update.create d prior ~active:(Array.init 4 Fun.id) in
  let rng = Cbmf_prob.Rng.create 77 in
  let rows =
    Array.init 5 (fun i ->
        let scale = if i = 3 then 50.0 else 1.0 in
        Array.init 4 (fun _ -> scale *. Cbmf_prob.Rng.gaussian rng))
  in
  (upd, rows)

let test_acquire_variance_picks_extreme () =
  let upd, rows = acquire_fixture () in
  let choice, score =
    Acquire.select upd ~policy:Acquire.Variance ~round:1
      ~cost:(fun _ -> 1.0)
      ~rows
  in
  Array.iter (fun c -> check_int "extreme row wins" 3 c) choice;
  Array.iter (fun s -> check_true "positive score" (s > 0.0)) score

let test_acquire_round_robin () =
  let upd, rows = acquire_fixture () in
  let pick round =
    let choice, score =
      Acquire.select upd ~policy:Acquire.Round_robin ~round
        ~cost:(fun _ -> 1.0)
        ~rows
    in
    Array.iter (fun s -> check_float ~tol:0.0 "no score" 0.0 s) score;
    check_int "all states same pick" choice.(0) choice.(1);
    choice.(0)
  in
  check_int "round 1" 0 (pick 1);
  check_int "round 2" 1 (pick 2);
  check_int "round 6 wraps" 0 (pick 6)

let test_acquire_select_top_cost () =
  let upd, rows = acquire_fixture () in
  let expensive s = if s = 0 then 1.0 else 1e6 in
  let picks =
    Acquire.select_top upd ~policy:Acquire.Cost_weighted ~round:1
      ~cost:expensive ~rows ~n:3
  in
  check_int "three picks" 3 (Array.length picks);
  Array.iter
    (fun (s, _) -> check_int "cheap state wins every slot" 0 s)
    picks;
  let rr1 =
    Acquire.select_top upd ~policy:Acquire.Round_robin ~round:1
      ~cost:expensive ~rows ~n:4
  in
  let rr1' =
    Acquire.select_top upd ~policy:Acquire.Round_robin ~round:1
      ~cost:expensive ~rows ~n:4
  in
  check_true "round-robin deterministic" (rr1 = rr1')

let test_acquire_domain_invariance () =
  let upd, rows = acquire_fixture () in
  let grid () =
    let g = Acquire.variances upd ~rows in
    hash_floats (Array.concat (Array.to_list g))
  in
  Pool.set_default_size 1;
  let h1 = grid () in
  Pool.set_default_size 4;
  let h4 = grid () in
  Pool.set_default_size (Pool.env_domains ());
  check_true "variance grid bit-identical at 1 vs 4 domains" (h1 = h4)

(* {1 Satellite 6: per-sample simulator oracle} *)

let sim_spec =
  { Syn.default_spec with
    k = 3;
    m = 9;
    d = 6;
    active_per_state = 3;
    noise_sigma = 0.05;
    seed = 21 }

let test_simulate_deterministic () =
  let t = Syn.truth sim_spec in
  let x = Array.make 6 0.3 in
  let a = Syn.simulate t ~state:1 ~index:4 x in
  (* interleave other draws: addressed streams must not care *)
  let _ = Syn.simulate t ~state:0 ~index:0 x in
  let _ = Syn.simulate t ~state:2 ~index:9 x in
  let b = Syn.simulate t ~state:1 ~index:4 x in
  check_true "bitwise repeatable"
    (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b));
  let c = Syn.simulate t ~state:1 ~index:5 x in
  check_true "index moves the noise stream" (a <> c)

let test_simulate_noiseless_is_mean () =
  let t = Syn.truth { sim_spec with noise_sigma = 0.0 } in
  let rng = Cbmf_prob.Rng.create 123 in
  for _ = 1 to 5 do
    let x = Array.init 6 (fun _ -> Cbmf_prob.Rng.gaussian rng) in
    let s = Cbmf_prob.Rng.int rng 3 in
    check_float ~tol:0.0 "sigma = 0 gives the exact mean"
      (Syn.mean_at t ~state:s x)
      (Syn.simulate t ~state:s ~index:0 x)
  done

let test_candidate_prefix_nesting () =
  let t = Syn.truth sim_spec in
  let small = Syn.candidate_xs t ~round:2 ~n:3 in
  let big = Syn.candidate_xs t ~round:2 ~n:7 in
  for i = 0 to 2 do
    check_true "pool prefix bitwise" (hash_floats small.(i) = hash_floats big.(i))
  done;
  let other = Syn.candidate_xs t ~round:3 ~n:3 in
  check_true "rounds never share draws"
    (hash_floats small.(0) <> hash_floats other.(0))

let test_seed_dataset_prefix () =
  let sim = Sim.of_synthetic (Syn.truth sim_spec) in
  let d2 = Sim.seed_dataset sim ~n0:2 in
  let d4 = Sim.seed_dataset sim ~n0:4 in
  let d4' = Dataset.truncate_samples d4 ~n:2 in
  check_int "rows" 2 d2.Dataset.n_samples;
  for s = 0 to 2 do
    check_true "seed grids nest as prefixes"
      ((Dataset.state_design d2 s).Mat.data
      = (Dataset.state_design d4' s).Mat.data
      && Dataset.state_response d2 s = Dataset.state_response d4' s)
  done

(* {1 Stream} *)

let test_stream_counts_and_rows () =
  let sim = Sim.of_synthetic (Syn.truth sim_spec) in
  let st = Stream.create (Sim.seed_dataset sim ~n0:3) in
  check_int "n0" 3 (Stream.n0 st);
  let rng = Cbmf_prob.Rng.create 9 in
  for _ = 1 to 2 do
    let rows =
      Array.init 3 (fun _ -> Array.init 9 (fun _ -> Cbmf_prob.Rng.gaussian rng))
    in
    let ys = Array.init 3 (fun _ -> Cbmf_prob.Rng.gaussian rng) in
    Stream.append st ~rows ~ys
  done;
  check_int "appended" 2 (Stream.appended st);
  check_int "n_per_state" 5 (Stream.n_per_state st);
  check_int "dataset grew" 5 (Stream.dataset st).Dataset.n_samples;
  Dataset.validate_exn (Stream.dataset st)

(* {1 The loop} *)

let loop_spec =
  { Syn.default_spec with
    k = 3;
    m = 7;
    d = 5;
    active_per_state = 3;
    noise_sigma = 0.05;
    seed = 33 }

let loop_prior0 =
  lazy
    (Cbmf_core.Prior.create
       ~lambda:(Array.make 7 1.0)
       ~r:(Cbmf_core.Prior.r_of_r0 ~n_states:3 ~r0:0.5)
       ~sigma0:0.2)

let loop_config ~rounds =
  { Loop.default_config with
    n0 = 4;
    rounds;
    pool_size = 6;
    resync_every = 2;
    em = { Cbmf_core.Em.default_config with max_iter = 5; tol = 1e-3 };
    checkpoints = [| 18 |] }

let run_loop ?policy ?budget ~rounds () =
  let config = loop_config ~rounds in
  let config =
    match budget with None -> config | Some b -> { config with budget = b }
  in
  let config =
    match policy with None -> config | Some p -> { config with policy = p }
  in
  Loop.run ~config
    ~sim:(Sim.of_synthetic (Syn.truth loop_spec))
    ~prior0:(Lazy.force loop_prior0) ()

let test_loop_accounting () =
  let res = run_loop ~rounds:5 () in
  check_int "simulated = seed + rounds·K" ((4 * 3) + (5 * 3)) res.Loop.simulated;
  check_float ~tol:1e-12 "unit-cost accounting" 27.0 res.Loop.sim_cost;
  check_int "one log per round" 5 (Array.length res.Loop.logs);
  Array.iteri
    (fun i l -> check_int "rounds in order" (i + 1) l.Loop.round)
    res.Loop.logs;
  check_true "resyncs at 2 and 4"
    (Array.for_all
       (fun l -> l.Loop.resync = (l.Loop.round mod 2 = 0))
       res.Loop.logs);
  check_int "em runs: cold + 2 resyncs" 3 res.Loop.em_runs;
  check_int "one checkpoint" 1 (Array.length res.Loop.checkpoints);
  check_int "checkpoint at 18 samples" 18
    res.Loop.checkpoints.(0).Loop.at_samples;
  check_int "dataset rows" 9 res.Loop.data.Dataset.n_samples;
  check_true "nlml finite"
    (Array.for_all (fun l -> Float.is_finite l.Loop.nlml) res.Loop.logs);
  check_int "coeff rows = K" 3 res.Loop.coeffs.Mat.rows;
  check_int "coeff cols = M" 7 res.Loop.coeffs.Mat.cols

let test_loop_budget_cap () =
  let res = run_loop ~rounds:10 ~budget:20 () in
  (* seed 12, +3 per round, next round only if simulated + K ≤ budget:
     12 → 15 → 18, then 21 > 20 stops *)
  check_int "stops under budget" 18 res.Loop.simulated;
  check_int "two rounds ran" 2 (Array.length res.Loop.logs)

let test_loop_prefix_nesting () =
  let short = run_loop ~rounds:2 () in
  let long = run_loop ~rounds:5 () in
  let cut = Dataset.truncate_samples long.Loop.data ~n:6 in
  for s = 0 to 2 do
    check_true "short run's data is a prefix of the long run's"
      ((Dataset.state_design short.Loop.data s).Mat.data
      = (Dataset.state_design cut s).Mat.data
      && Dataset.state_response short.Loop.data s
         = Dataset.state_response cut s)
  done;
  for i = 0 to 1 do
    check_true "shared rounds log identical NLML"
      (Int64.equal
         (Int64.bits_of_float short.Loop.logs.(i).Loop.nlml)
         (Int64.bits_of_float long.Loop.logs.(i).Loop.nlml))
  done

let loop_hash res =
  let acc = hash_floats_acc Seeded.fnv_offset res.Loop.coeffs.Mat.data in
  hash_floats_acc acc
    (Array.map (fun l -> l.Loop.nlml) res.Loop.logs)

let test_loop_domain_invariance () =
  Pool.set_default_size 1;
  let h1 = loop_hash (run_loop ~rounds:4 ()) in
  Pool.set_default_size 2;
  let h2 = loop_hash (run_loop ~rounds:4 ()) in
  Pool.set_default_size 4;
  let h4 = loop_hash (run_loop ~rounds:4 ()) in
  Pool.set_default_size (Pool.env_domains ());
  check_true "bit-identical at 1 vs 2 domains" (Int64.equal h1 h2);
  check_true "bit-identical at 1 vs 4 domains" (Int64.equal h1 h4)

let test_loop_round_robin_policy () =
  let res = run_loop ~policy:Acquire.Round_robin ~rounds:3 () in
  check_int "same budget accounting" ((4 * 3) + (3 * 3)) res.Loop.simulated;
  Array.iter
    (fun l -> check_float ~tol:0.0 "round robin never scores" 0.0 l.Loop.max_score)
    res.Loop.logs

let gen_parity =
  QCheck2.Gen.(
    quad (int_range 1 4) (int_range 1 3) (int_range 2 8) (int_range 0 100_000))

let suite =
  [ ( "active",
      [ qcase ~count:30 "Dataset.append caches = rebuild (bitwise/1e-12)"
          gen_grow prop_append_cache_parity;
        case "append_row single sample" test_append_row_single;
        case "append shape validation" test_append_shape_mismatch;
        qcase ~count:40 "Woodbury stream = `Primal refit @ 1e-8 (full active)"
          gen_parity prop_woodbury_full_active;
        qcase ~count:25 "Woodbury stream = `Primal refit @ 1e-8 (sparse active)"
          gen_parity prop_woodbury_sparse_active;
        qcase ~count:15 "Woodbury stream = `Primal refit @ a = 1" gen_parity
          prop_woodbury_single_active;
        case "ragged appends are order-invariant" test_ragged_order_invariance;
        case "update validation" test_update_validation;
        case "Em.run warm start" test_em_warm_start;
        case "Cbmf.fit ?init_hypers skips the init grid"
          test_cbmf_fit_warm_start;
        case "variance policy picks the extreme candidate"
          test_acquire_variance_picks_extreme;
        case "round-robin rotation" test_acquire_round_robin;
        case "select_top cost weighting" test_acquire_select_top_cost;
        case "variance grid domain-invariant" test_acquire_domain_invariance;
        case "Synthetic.simulate addressed streams" test_simulate_deterministic;
        case "Synthetic.simulate sigma=0 = mean_at"
          test_simulate_noiseless_is_mean;
        case "candidate pools nest as prefixes" test_candidate_prefix_nesting;
        case "seed grids nest as prefixes" test_seed_dataset_prefix;
        case "stream counts and growth" test_stream_counts_and_rows;
        slow_case "loop budget accounting" test_loop_accounting;
        case "loop stops at the budget" test_loop_budget_cap;
        slow_case "loop runs nest as prefixes" test_loop_prefix_nesting;
        slow_case "loop bit-identical at 1/2/4 domains"
          test_loop_domain_invariance;
        case "round-robin loop policy" test_loop_round_robin_policy ] ) ]
