(* Oracles for the front-end hot paths: the incremental S-OMP refit
   must match the naive per-step QR path (identical supports, coeffs
   to 1e-10, including rank-deficient designs where both must degrade
   and early-stop identically), the split-stamp [Mna.ac_sweep] must be
   bit-identical to a per-frequency [Mna.ac] loop (directly and
   through the LNA/mixer curve testbenches), and the shared-grid
   [Init.run] must be bit-identical at any domain count. *)

open Cbmf_linalg
open Cbmf_model
open Cbmf_circuit
open Helpers
module Pool = Cbmf_parallel.Pool

(* --- S-OMP: incremental vs naive ----------------------------------- *)

let build_dataset ~k ~n ~m ~seed =
  let rng = Cbmf_prob.Rng.create seed in
  let design =
    Array.init k (fun _ ->
        Mat.init n m (fun _ _ -> Cbmf_prob.Rng.gaussian rng))
  in
  let response = Array.init k (fun _ -> Cbmf_prob.Rng.gaussian_vector rng n) in
  Dataset.create ~design ~response

let coeffs_close ?(tol = 1e-10) (a : Mat.t) (b : Mat.t) =
  let maxd = ref 0.0 and maxa = ref 0.0 in
  Array.iteri
    (fun i x ->
      maxd := Float.max !maxd (abs_float (x -. b.Mat.data.(i)));
      maxa := Float.max !maxa (abs_float x))
    a.Mat.data;
  !maxd <= tol *. (1.0 +. !maxa)

let gen_somp_case =
  QCheck2.Gen.(
    quad (int_range 1 4) (int_range 4 8) (int_range 4 12) (int_range 0 100_000))

let prop_somp_matches_naive (k, n, m, seed) =
  let d = build_dataset ~k ~n ~m ~seed in
  let n_terms = Stdlib.min 3 (Stdlib.min n m) in
  let inc = Somp.fit d ~n_terms in
  let naive = Somp.fit_naive d ~n_terms in
  inc.Somp.support = naive.Somp.support
  && coeffs_close inc.Somp.coeffs naive.Somp.coeffs

(* A design whose 4th selection is an exact duplicate of the first:
   both paths must select it, fail the refit, early-stop with the
   failed column in the support and the previous step's coefficients —
   and note the stop in the ambient Diag. *)
let duplicate_column_dataset () =
  let k = 2 and n = 6 and m = 4 in
  let rng = Cbmf_prob.Rng.create 99 in
  let base =
    Array.init k (fun _ ->
        Mat.init n m (fun _ _ -> Cbmf_prob.Rng.gaussian rng))
  in
  let design =
    Array.map
      (fun b ->
        Mat.init n m (fun i j -> Mat.get b i (if j = 1 then 0 else j)))
      base
  in
  let response =
    Array.map
      (fun (b : Mat.t) ->
        Array.init n (fun i ->
            (3.0 *. Mat.get b i 0)
            +. (2.0 *. Mat.get b i 2)
            +. Mat.get b i 3))
      design
  in
  Dataset.create ~design ~response

let test_somp_rank_deficient () =
  let d = duplicate_column_dataset () in
  let diag_inc = Cbmf_robust.Diag.create () in
  let inc =
    Cbmf_robust.Diag.with_current diag_inc (fun () -> Somp.fit d ~n_terms:4)
  in
  let diag_naive = Cbmf_robust.Diag.create () in
  let naive =
    Cbmf_robust.Diag.with_current diag_naive (fun () ->
        Somp.fit_naive d ~n_terms:4)
  in
  check_true "support includes the failed duplicate"
    (Array.length inc.Somp.support = 4 && Array.exists (( = ) 1) inc.Somp.support);
  check_true "supports identical" (inc.Somp.support = naive.Somp.support);
  check_true "coeffs match naive @1e-10"
    (coeffs_close inc.Somp.coeffs naive.Somp.coeffs);
  let has_early_stop diag =
    Array.exists
      (function
        | Cbmf_robust.Fault.Early_stop { site = "somp.fit"; _ } -> true
        | _ -> false)
      (Cbmf_robust.Diag.faults diag)
  in
  check_true "incremental path noted Early_stop" (has_early_stop diag_inc);
  check_true "naive path noted Early_stop" (has_early_stop diag_naive)

let prop_omp_with_norms_identical (k, n, m, seed) =
  ignore k;
  let d = build_dataset ~k:1 ~n ~m ~seed in
  let design = d.Dataset.design.(0) and response = d.Dataset.response.(0) in
  let n_terms = Stdlib.min 3 (Stdlib.min n m) in
  let plain = Omp.fit ~design ~response ~n_terms in
  let with_norms =
    Omp.fit_with_norms
      ~norms:(Cbmf_basis.Dictionary.column_norms design)
      ~design ~response ~n_terms
  in
  plain.Omp.support = with_norms.Omp.support
  && plain.Omp.coeffs = with_norms.Omp.coeffs

let test_dataset_norm_cache () =
  let d = build_dataset ~k:3 ~n:5 ~m:7 ~seed:4 in
  let n0 = Dataset.column_norms d 1 in
  let n1 = Dataset.column_norms d 1 in
  check_true "cache returns the same array" (n0 == n1);
  check_true "cached norms match a fresh computation"
    (n0 = Cbmf_basis.Dictionary.column_norms d.Dataset.design.(1));
  Dataset.warm_caches d;
  check_true "warm_caches keeps the pointer" (Dataset.column_norms d 1 == n0)

(* --- MNA sweep: split-stamp vs per-frequency rebuild --------------- *)

let rc_circuit () =
  let ckt = Mna.create () in
  let a = Mna.fresh_node ckt "a" in
  let b = Mna.fresh_node ckt "b" in
  Mna.resistor ckt a b 1.0e3;
  Mna.resistor ckt b Mna.ground 2.0e3;
  Mna.capacitor ckt b Mna.ground 1.0e-12;
  Mna.inductor ckt a Mna.ground 1.0e-9;
  Mna.vccs ckt ~out_pos:b ~out_neg:Mna.ground ~ctrl_pos:a ~ctrl_neg:Mna.ground
    ~gm:1.0e-3;
  (ckt, a, b)

let complex_bits_eq (x : Complex.t array) (y : Complex.t array) =
  Array.for_all2
    (fun (a : Complex.t) (b : Complex.t) ->
      Int64.equal (Int64.bits_of_float a.Complex.re) (Int64.bits_of_float b.Complex.re)
      && Int64.equal (Int64.bits_of_float a.Complex.im) (Int64.bits_of_float b.Complex.im))
    x y

let test_ac_sweep_bit_identical () =
  let ckt, a, b = rc_circuit () in
  let freqs = Array.init 12 (fun i -> 1.0e8 *. float_of_int (i + 1)) in
  let swept = Mna.ac_sweep ckt ~freqs in
  check_int "one analysis per frequency" (Array.length freqs)
    (Array.length swept);
  Array.iteri
    (fun i freq ->
      let direct = Mna.ac ckt ~freq in
      let vd = Mna.solve_injection direct ~pos:a ~neg:Mna.ground in
      let vs = Mna.solve_injection swept.(i) ~pos:a ~neg:Mna.ground in
      check_true
        (Printf.sprintf "sweep = ac at %.3e Hz" freq)
        (complex_bits_eq vd vs);
      let td = Mna.differential vd b Mna.ground in
      let ts = Mna.differential vs b Mna.ground in
      check_true
        (Printf.sprintf "sensed voltage bits at %.3e Hz" freq)
        (Int64.equal (Int64.bits_of_float td.Complex.re)
           (Int64.bits_of_float ts.Complex.re)
        && Int64.equal (Int64.bits_of_float td.Complex.im)
             (Int64.bits_of_float ts.Complex.im)))
    freqs

let test_ac_sweep_validation () =
  let ckt, _, _ = rc_circuit () in
  check_raises_invalid "empty sweep" (fun () ->
      Mna.ac_sweep ckt ~freqs:[||]);
  check_raises_invalid "zero frequency" (fun () ->
      Mna.ac_sweep ckt ~freqs:[| 0.0; 1.0e9 |]);
  check_raises_invalid "negative frequency" (fun () ->
      Mna.ac_sweep ckt ~freqs:[| -1.0e9 |]);
  check_raises_invalid "non-finite frequency" (fun () ->
      Mna.ac_sweep ckt ~freqs:[| 1.0e9; Float.nan |]);
  check_raises_invalid "infinite frequency" (fun () ->
      Mna.ac_sweep ckt ~freqs:[| 1.0e9; Float.infinity |]);
  check_raises_invalid "non-increasing sweep" (fun () ->
      Mna.ac_sweep ckt ~freqs:[| 1.0e9; 1.0e9; 2.0e9 |])

let float_bits_eq (x : float array) (y : float array) =
  Array.for_all2
    (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
    x y

let test_lna_curve_matches_naive () =
  let tb = Lna.create () in
  let rng = Cbmf_prob.Rng.create 31 in
  let freqs = Array.init 7 (fun i -> 0.8e9 +. (0.4e9 *. float_of_int i)) in
  for case = 0 to 2 do
    let state = case * 11 mod Testbench.n_states tb in
    let x = Cbmf_prob.Rng.gaussian_vector rng (Testbench.dim tb) in
    check_true
      (Printf.sprintf "lna curve bits, state %d" state)
      (float_bits_eq
         (Lna.gain_curve tb ~state x ~freqs)
         (Lna.gain_curve_naive tb ~state x ~freqs))
  done;
  let x = Cbmf_prob.Rng.gaussian_vector rng (Testbench.dim tb) in
  check_true "testbench curve field = gain_curve"
    (float_bits_eq
       (Testbench.evaluate_curve tb ~state:3 ~freqs x)
       (Lna.gain_curve tb ~state:3 x ~freqs))

let test_mixer_curve_matches_naive () =
  let tb = Mixer.create () in
  let rng = Cbmf_prob.Rng.create 37 in
  let freqs = Array.init 6 (fun i -> 1.0e9 +. (0.5e9 *. float_of_int i)) in
  for case = 0 to 2 do
    let state = case * 13 mod Testbench.n_states tb in
    let x = Cbmf_prob.Rng.gaussian_vector rng (Testbench.dim tb) in
    check_true
      (Printf.sprintf "mixer curve bits, state %d" state)
      (float_bits_eq
         (Mixer.rf_gain_curve tb ~state x ~freqs)
         (Mixer.rf_gain_curve_naive tb ~state x ~freqs))
  done

let test_montecarlo_curves () =
  let tb = Lna.create () in
  let freqs = Array.init 5 (fun i -> 1.0e9 +. (0.5e9 *. float_of_int i)) in
  let mc = Montecarlo.generate tb (Cbmf_prob.Rng.create 42) ~n_per_state:2 in
  Pool.set_default_size 1;
  let c1 = Montecarlo.curves mc ~freqs in
  Pool.set_default_size 2;
  let c2 = Montecarlo.curves mc ~freqs in
  Pool.set_default_size (Pool.env_domains ());
  check_true "curves bit-identical at 1 vs 2 domains"
    (Int64.equal (hash_mats c1) (hash_mats c2));
  check_true "curve row = direct gain_curve"
    (float_bits_eq
       (Mat.row c1.(5) 1)
       (Lna.gain_curve tb ~state:5 (Mat.row mc.Montecarlo.states.(5).Montecarlo.xs 1) ~freqs));
  let no_curve = { tb with Testbench.curve = None } in
  let mc_nc = { mc with Montecarlo.testbench = no_curve } in
  check_raises_invalid "curves on a sweep-less testbench" (fun () ->
      Montecarlo.curves mc_nc ~freqs);
  check_raises_invalid "evaluate_curve on a sweep-less testbench" (fun () ->
      Testbench.evaluate_curve no_curve ~state:0 ~freqs
        (Array.make (Testbench.dim tb) 0.0))

(* --- Init: shared-grid precompute, domain invariance --------------- *)

let planted_dataset () =
  let rng = Cbmf_prob.Rng.create 17 in
  let k = 3 and n = 9 and m = 20 in
  let support = [| 2; 7; 13 |] in
  let design =
    Array.init k (fun _ ->
        Mat.init n m (fun _ j ->
            if j = 0 then 1.0 else Cbmf_prob.Rng.gaussian rng))
  in
  let response =
    Array.init k (fun s ->
        Array.init n (fun i ->
            let acc = ref (0.05 *. Cbmf_prob.Rng.gaussian rng) in
            Array.iteri
              (fun si col ->
                let c = 1.0 /. float_of_int (si + 1) in
                let c = c *. (1.0 +. (0.2 *. sin (0.3 *. float_of_int s))) in
                acc := !acc +. (c *. Mat.get design.(s) i col))
              support;
            !acc))
  in
  Dataset.create ~design ~response

let init_config =
  {
    Cbmf_core.Init.r0_grid = [| 0.6; 0.9 |];
    sigma0_grid = [| 0.1; 0.3 |];
    theta_max = 4;
    n_folds = 3;
    lambda_off = 1e-7;
  }

let test_init_domain_invariant () =
  let d = planted_dataset () in
  let run () = Cbmf_core.Init.run ~config:init_config d in
  let results =
    List.map
      (fun domains ->
        Pool.set_default_size domains;
        run ())
      [ 1; 2; 4 ]
  in
  Pool.set_default_size (Pool.env_domains ());
  match results with
  | r1 :: rest ->
      check_true "selected a non-empty support"
        (Array.length r1.Cbmf_core.Init.support > 0);
      List.iteri
        (fun i r ->
          let tag = Printf.sprintf "domains case %d" (i + 1) in
          check_true (tag ^ ": support") (r.Cbmf_core.Init.support = r1.Cbmf_core.Init.support);
          check_true (tag ^ ": theta") (r.Cbmf_core.Init.theta = r1.Cbmf_core.Init.theta);
          check_true (tag ^ ": r0 bits")
            (Int64.equal
               (Int64.bits_of_float r.Cbmf_core.Init.r0)
               (Int64.bits_of_float r1.Cbmf_core.Init.r0));
          check_true (tag ^ ": sigma0 bits")
            (Int64.equal
               (Int64.bits_of_float r.Cbmf_core.Init.sigma0)
               (Int64.bits_of_float r1.Cbmf_core.Init.sigma0));
          check_true (tag ^ ": cv_error bits")
            (Int64.equal
               (Int64.bits_of_float r.Cbmf_core.Init.cv_error)
               (Int64.bits_of_float r1.Cbmf_core.Init.cv_error));
          check_true (tag ^ ": prior lambda bits")
            (Int64.equal
               (hash_floats r.Cbmf_core.Init.prior.Cbmf_core.Prior.lambda)
               (hash_floats r1.Cbmf_core.Init.prior.Cbmf_core.Prior.lambda));
          check_true (tag ^ ": prior R bits")
            (Int64.equal
               (hash_floats r.Cbmf_core.Init.prior.Cbmf_core.Prior.r.Mat.data)
               (hash_floats r1.Cbmf_core.Init.prior.Cbmf_core.Prior.r.Mat.data)))
        rest
  | [] -> assert false

let suite =
  [ ( "frontend-oracle",
      [ qcase ~count:40 "Somp.fit = fit_naive (support, coeffs @1e-10)"
          gen_somp_case prop_somp_matches_naive;
        case "rank-deficient design: identical degradation + Early_stop"
          test_somp_rank_deficient;
        qcase ~count:25 "Omp.fit_with_norms = Omp.fit bitwise" gen_somp_case
          prop_omp_with_norms_identical;
        case "Dataset.column_norms is cached and exact"
          test_dataset_norm_cache;
        case "Mna.ac_sweep = per-frequency Mna.ac bitwise"
          test_ac_sweep_bit_identical;
        case "Mna.ac_sweep input validation" test_ac_sweep_validation;
        slow_case "LNA gain_curve = naive per-frequency path bitwise"
          test_lna_curve_matches_naive;
        slow_case "Mixer rf_gain_curve = naive per-frequency path bitwise"
          test_mixer_curve_matches_naive;
        slow_case "Montecarlo.curves: domain-invariant, validated"
          test_montecarlo_curves;
        case "Init.run bit-identical at 1/2/4 domains"
          test_init_domain_invariant ] ) ]
