(* Oracle/property tests for the domain pool: map_reduce must be
   bit-identical to the sequential fold at every pool size and for any
   chunking, exceptions must propagate deterministically, and a pool
   must survive reuse (including reuse after a failed job).  Also the
   Monte-Carlo determinism regression: fixed seed ⇒ bit-identical data
   at CBMF_DOMAINS = 1, 2 and 4, pinned by a golden hash. *)

open Helpers
module Pool = Cbmf_parallel.Pool

let with_pool n f =
  let pool = Pool.create n in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* A deliberately non-associative, non-commutative float reduction:
   any regrouping or reordering of the fold changes the low bits. *)
let seq_fold xs =
  Array.fold_left (fun acc x -> (acc *. 0.993) +. (x *. x *. 0.25)) 1.0 xs

let gen_case =
  QCheck2.Gen.(
    triple (int_range 1 257) (int_range 1 64) (int_range 0 10_000))

let prop_map_reduce_matches_fold (n, chunk, seed) =
  let rng = Cbmf_prob.Rng.create seed in
  let xs = Array.init n (fun _ -> Cbmf_prob.Rng.gaussian rng) in
  let expected = seq_fold xs in
  List.for_all
    (fun size ->
      with_pool size (fun pool ->
          let got =
            Pool.map_reduce ~chunk pool ~n
              ~map:(fun i -> xs.(i) *. xs.(i) *. 0.25)
              ~init:1.0
              ~reduce:(fun acc x -> (acc *. 0.993) +. x)
          in
          Int64.equal (Int64.bits_of_float got) (Int64.bits_of_float expected)))
    [ 1; 2; 4; 8 ]

(* Adversarial chunkings: a single chunk spanning everything, one item
   per chunk, and a ragged chunk that leaves a short tail — all must
   reproduce the sequential fold bit-for-bit at every pool size. *)
let prop_adversarial_chunks (n, _, seed) =
  let rng = Cbmf_prob.Rng.create seed in
  let xs = Array.init n (fun _ -> Cbmf_prob.Rng.gaussian rng) in
  let expected = seq_fold xs in
  List.for_all
    (fun chunk ->
      List.for_all
        (fun size ->
          with_pool size (fun pool ->
              let got =
                Pool.map_reduce ~chunk pool ~n
                  ~map:(fun i -> xs.(i) *. xs.(i) *. 0.25)
                  ~init:1.0
                  ~reduce:(fun acc x -> (acc *. 0.993) +. x)
              in
              Int64.equal (Int64.bits_of_float got)
                (Int64.bits_of_float expected)))
        [ 1; 4 ])
    [ 1; n; n + 7 ]

let prop_parallel_for_covers (n, chunk, seed) =
  ignore seed;
  List.for_all
    (fun size ->
      with_pool size (fun pool ->
          let hits = Array.make n 0 in
          Pool.parallel_for ~chunk pool ~n (fun i -> hits.(i) <- hits.(i) + 1);
          Array.for_all (fun h -> h = 1) hits))
    [ 1; 2; 4 ]

let test_map_order () =
  with_pool 4 (fun pool ->
      let out = Pool.map ~chunk:3 pool ~n:100 (fun i -> i * i) in
      check_int "length" 100 (Array.length out);
      Array.iteri (fun i v -> check_int "slot" (i * i) v) out)

exception Boom of int

let test_exception_propagation () =
  List.iter
    (fun size ->
      with_pool size (fun pool ->
          (match
             Pool.parallel_for ~chunk:2 pool ~n:64 (fun i ->
                 if i mod 13 = 5 then raise (Boom i))
           with
          | () -> Alcotest.fail "expected Boom"
          | exception Boom i ->
              (* Lowest-index failure, regardless of schedule. *)
              check_int "first failing index" 5 i);
          (* The pool must stay usable after a failed job. *)
          let s =
            Pool.map_reduce pool ~n:10
              ~map:(fun i -> i)
              ~init:0 ~reduce:( + )
          in
          check_int "reuse after failure" 45 s))
    [ 1; 2; 4 ]

let test_pool_reuse () =
  with_pool 4 (fun pool ->
      for round = 1 to 20 do
        let s =
          Pool.map_reduce ~chunk:1 pool ~n:round ~map:Fun.id ~init:0
            ~reduce:( + )
        in
        check_int "round sum" (round * (round - 1) / 2) s
      done)

let test_nested_calls_fall_back () =
  with_pool 4 (fun pool ->
      let out =
        Pool.map ~chunk:1 pool ~n:8 (fun i ->
            (* Nested fan-out must run sequentially, not deadlock. *)
            Pool.map_reduce pool ~n:(i + 1) ~map:Fun.id ~init:0 ~reduce:( + ))
      in
      Array.iteri (fun i v -> check_int "nested sum" (i * (i + 1) / 2) v) out)

let test_size_one_sequential () =
  with_pool 1 (fun pool ->
      check_int "size" 1 (Pool.size pool);
      (* Tasks must run on the calling domain, in index order. *)
      let self = Domain.self () in
      let order = ref [] in
      Pool.parallel_for ~chunk:2 pool ~n:7 (fun i ->
          check_true "same domain" (Domain.self () = self);
          order := i :: !order);
      check_true "index order" (List.rev !order = [ 0; 1; 2; 3; 4; 5; 6 ]))

let test_env_parsing () =
  check_true "env or recommended >= 1" (Pool.env_domains () >= 1)

(* --- Shutdown race hardening ---------------------------------------- *)

(* Shutdown landing while a job is in flight must neither wedge the
   submitter nor lose chunks: workers only observe [stopped] at the
   parking gate, so claimed chunks always complete, and the submitter
   can drain the cursor alone.  The interleaving is timing-dependent —
   every outcome (shutdown before, during, or after the job) must pass
   the same assertions. *)
let test_shutdown_during_job () =
  let pool = Pool.create 4 in
  let n = 4000 in
  let hits = Array.make n 0 in
  let killer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.002;
        Pool.shutdown pool)
  in
  Pool.parallel_for ~chunk:1 pool ~n (fun i ->
      ignore (Sys.opaque_identity (sqrt (float_of_int (i + 1))));
      hits.(i) <- hits.(i) + 1);
  Domain.join killer;
  check_true "every index ran exactly once"
    (Array.for_all (fun h -> h = 1) hits);
  (* A shut-down pool stays usable: the submitter drains everything. *)
  let s = Pool.map_reduce pool ~n:10 ~map:Fun.id ~init:0 ~reduce:( + ) in
  check_int "usable after shutdown" 45 s;
  Pool.shutdown pool

let test_double_and_concurrent_shutdown () =
  let pool = Pool.create 4 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* Concurrent shutdowns: exactly one caller owns the join, the rest
     return immediately; none may crash or deadlock. *)
  let pool2 = Pool.create 4 in
  let callers =
    Array.init 3 (fun _ -> Domain.spawn (fun () -> Pool.shutdown pool2))
  in
  Array.iter Domain.join callers;
  Pool.shutdown pool2;
  List.iter
    (fun p ->
      check_int "post-shutdown sum" 45
        (Pool.map_reduce p ~n:10 ~map:Fun.id ~init:0 ~reduce:( + )))
    [ pool; pool2 ]

(* The failure in the very last chunk — the one that wakes the
   submitter — must still be re-raised, with the backtrace captured at
   the raise site (not at the re-raise). *)
let test_last_chunk_exception () =
  Printexc.record_backtrace true;
  List.iter
    (fun size ->
      with_pool size (fun pool ->
          match
            Pool.parallel_for ~chunk:3 pool ~n:64 (fun i ->
                if i = 63 then raise (Boom i))
          with
          | () -> Alcotest.fail "expected Boom from last chunk"
          | exception Boom i ->
              check_int "last index" 63 i;
              check_true "backtrace preserved"
                (String.length (Printexc.get_backtrace ()) > 0)))
    [ 1; 2; 4 ]

(* --- Monte-Carlo determinism across domain counts ------------------ *)

let montecarlo_hash () =
  let tb = Cbmf_circuit.Lna.create () in
  let rng = Cbmf_prob.Rng.create 42 in
  let mc = Cbmf_circuit.Montecarlo.generate tb rng ~n_per_state:3 in
  let xs =
    Array.map (fun s -> s.Cbmf_circuit.Montecarlo.xs) mc.Cbmf_circuit.Montecarlo.states
  in
  let ys =
    Array.map (fun s -> s.Cbmf_circuit.Montecarlo.ys) mc.Cbmf_circuit.Montecarlo.states
  in
  Int64.logxor (hash_mats xs) (Int64.mul 0x9E3779B97F4A7C15L (hash_mats ys))

let test_montecarlo_domain_invariance () =
  let hashes =
    List.map
      (fun domains ->
        Pool.set_default_size domains;
        montecarlo_hash ())
      [ 1; 2; 4 ]
  in
  Pool.set_default_size (Pool.env_domains ());
  (match hashes with
  | [ h1; h2; h4 ] ->
      check_true "1 vs 2 domains" (Int64.equal h1 h2);
      check_true "1 vs 4 domains" (Int64.equal h1 h4);
      Alcotest.(check int64)
        "pinned golden" montecarlo_lna_seed42_n3_hash h1
  | _ -> assert false)

let suite =
  [ ( "parallel.pool",
      [ qcase ~count:60 "map_reduce = sequential fold (1/2/4/8 domains)"
          gen_case prop_map_reduce_matches_fold;
        qcase ~count:20 "adversarial chunkings (1, n, n+7) = sequential fold"
          gen_case prop_adversarial_chunks;
        qcase ~count:40 "parallel_for covers each index once" gen_case
          prop_parallel_for_covers;
        case "map preserves index order" test_map_order;
        case "exception propagation + reuse after failure"
          test_exception_propagation;
        case "pool reuse across jobs" test_pool_reuse;
        case "nested calls fall back to sequential"
          test_nested_calls_fall_back;
        case "size-1 pool is strictly sequential" test_size_one_sequential;
        case "env override parsing" test_env_parsing ] );
    ( "parallel.shutdown",
      [ case "shutdown during in-flight job" test_shutdown_during_job;
        case "double + concurrent shutdown" test_double_and_concurrent_shutdown;
        case "last-chunk exception propagates with backtrace"
          test_last_chunk_exception ] );
    ( "parallel.montecarlo",
      [ slow_case "bit-identical at CBMF_DOMAINS=1,2,4 (pinned)"
          test_montecarlo_domain_invariance ] ) ]
