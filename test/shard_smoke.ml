(* Sharded-serving smoke test.

   Run by the `shard-smoke` dune alias with CBMF_DOMAINS=1: forks a
   real 3-shard cluster (one Server per child process, Unix-domain
   sockets "<base>.shard-<i>"), waits for every shard to answer a
   ping, then drives the consistent-hash router end to end — models
   loaded through the router land only on their hash owner, routed
   predicts are bit-identical to the local engine, pipelined
   [predict_many] agrees slot for slot, a hot reload bumps the slot
   generation without moving the model, and a graceful stop reaps
   every child and removes the socket files.  Exits nonzero on any
   failure.

   CBMF_DOMAINS=1 is load-bearing: the parent must not have spawned
   pool domains when [Shard.start] forks (fork clones only the calling
   domain, so a multi-domain parent could deadlock the child runtime).
   At size 1 the pool runs inline and spawns nothing; the children
   build their own state fresh after the fork. *)

open Cbmf_linalg
open Cbmf_serve

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "shard-smoke FAIL: %s\n%!" name
  end

let bits_eq xs ys =
  Array.length xs = Array.length ys
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       xs ys

let srng = Cbmf_prob.Rng.create 24680

let g () = Cbmf_prob.Rng.gaussian srng

let spd n =
  let a = Mat.init n n (fun _ _ -> g ()) in
  let m = Mat.gram a in
  Mat.add_diag_inplace m (float_of_int n *. 0.5);
  Mat.symmetrize_inplace m;
  m

(* A structurally valid serving model — pure construction, no fitting,
   no pool use (see the fork-safety note above). *)
let synth_model ?(dim = 5) ?(k = 3) ?(a = 8) () =
  let terms =
    Array.init a (fun j ->
        match j mod 4 with
        | 0 -> Cbmf_basis.Term.Constant
        | 1 -> Cbmf_basis.Term.Linear (j mod dim)
        | 2 -> Cbmf_basis.Term.Square (j mod dim)
        | _ ->
            let i = j mod (dim - 1) in
            Cbmf_basis.Term.Cross (i, i + 1))
  in
  {
    Model.input_dim = dim;
    n_states = k;
    terms;
    col_means = Mat.init k a (fun _ _ -> g ());
    col_scales = Array.init a (fun _ -> 0.5 +. Float.abs (g ()));
    y_means = Array.init k (fun _ -> g ());
    y_scale = 1.0 +. Float.abs (g ());
    mu = Mat.init a k (fun _ _ -> g ());
    lambda = Array.init a (fun _ -> Float.abs (g ()));
    r = Mat.init k k (fun _ _ -> g ());
    sigma0 = 0.05;
    cov = Array.init k (fun _ -> spd a);
  }

let () =
  check "CBMF_DOMAINS=1 honored" (Cbmf_parallel.Pool.env_domains () = 1);

  let n_shards = 3 in
  let n_models = 6 in
  let dir = Filename.temp_file "cbmf_shard_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let base = Filename.concat dir "cluster.sock" in

  let cluster =
    Shard.start
      ~config:{ Server.default_config with workers = 2; timeout = 30.0 }
      ~shards:n_shards ~base_path:base ()
  in
  Shard.wait_ready cluster;
  let router = Shard.connect cluster in

  let models = Array.init n_models (fun _ -> synth_model ()) in
  let name j = Printf.sprintf "smoke-%d" j in

  (* Load through the router: each model lands on its hash owner. *)
  Array.iteri
    (fun j m ->
      match Shard.load_inline router ~name:(name j) ~image:(Snapshot.encode m) with
      | Ok (n_active, n_states, _) ->
          check "load reports shape"
            (n_active = Model.n_active m && n_states = m.Model.n_states)
      | Error e -> check (Printf.sprintf "load %s: %s" (name j) e) false)
    models;

  (* The namespace spread over more than one shard. *)
  let owners = Array.init n_models (fun j -> Shard.route router ~name:(name j)) in
  check "several shards in use"
    (Array.exists (fun o -> o <> owners.(0)) owners);

  (* A shard that does NOT own a name must not know it: dial each
     non-owner directly and expect model-not-found. *)
  let misplaced = ref false in
  for i = 0 to n_shards - 1 do
    if i <> owners.(0) then begin
      let c = Client.connect (Shard.shard_addr ~base_path:base i) in
      (match
         Client.predict_typed c ~name:(name 0)
           ~states:[| 0 |]
           ~xs:(Mat.create 1 models.(0).Model.input_dim)
       with
      | Error (Client.Server_error { code = Protocol.Model_not_found; _ }) -> ()
      | _ -> misplaced := true);
      Client.close c
    end
  done;
  check "model lives only on its hash owner" (not !misplaced);

  (* Routed predicts: bit-identical to the local engine. *)
  Array.iteri
    (fun j m ->
      let xs = Mat.init 6 m.Model.input_dim (fun _ _ -> g ()) in
      let states = Array.init 6 (fun s -> s mod m.Model.n_states) in
      let em, es = Engine.predict_batch m ~states ~xs in
      match Shard.predict_typed router ~name:(name j) ~states ~xs with
      | Ok (rm, rs) ->
          check "routed predict bit-identical" (bits_eq em rm && bits_eq es rs)
      | Error f ->
          check
            (Printf.sprintf "routed predict %s: %s" (name j)
               (Client.failure_to_string f))
            false)
    models;

  (* Pipelined predict_many through the router, one shard. *)
  let m0 = models.(0) in
  let reqs =
    List.init 5 (fun r ->
        let b = 2 + r in
        ( Array.init b (fun s -> s mod m0.Model.n_states),
          Mat.init b m0.Model.input_dim (fun _ _ -> g ()) ))
  in
  let many_ok = ref true in
  List.iter2
    (fun (states, xs) res ->
      let em, es = Engine.predict_batch m0 ~states ~xs in
      match res with
      | Ok (rm, rs) -> if not (bits_eq em rm && bits_eq es rs) then many_ok := false
      | Error _ -> many_ok := false)
    reqs
    (Shard.predict_many router ~name:(name 0) reqs);
  check "predict_many bit-identical slot for slot" !many_ok;

  (* Hot reload: slot generation bumps, placement does not move, the
     new model serves bit-identically. *)
  let m2 =
    { m0 with Model.y_means = Array.map (fun v -> v +. 1.0) m0.Model.y_means }
  in
  (match Shard.reload_inline router ~name:(name 0) ~image:(Snapshot.encode m2) with
  | Ok (generation, _, _, _) ->
      check "reload bumped the slot generation" (generation = 2)
  | Error f -> check ("reload: " ^ Client.failure_to_string f) false);
  check "reload did not move the model"
    (Shard.route router ~name:(name 0) = owners.(0));
  let xs = Mat.init 4 m2.Model.input_dim (fun _ _ -> g ()) in
  let states = Array.init 4 (fun s -> s mod m2.Model.n_states) in
  let em, es = Engine.predict_batch m2 ~states ~xs in
  (match Shard.predict_typed router ~name:(name 0) ~states ~xs with
  | Ok (rm, rs) ->
      check "serving the reloaded model bitwise" (bits_eq em rm && bits_eq es rs)
  | Error f -> check ("post-reload predict: " ^ Client.failure_to_string f) false);

  (* Graceful stop: children reaped, socket files gone. *)
  Shard.close_router router;
  Shard.stop cluster;
  let leftover = ref false in
  for i = 0 to n_shards - 1 do
    if Sys.file_exists (Printf.sprintf "%s.shard-%d" base i) then leftover := true
  done;
  check "socket files removed on stop" (not !leftover);

  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  if !failures > 0 then begin
    Printf.eprintf "shard-smoke: %d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline
    "shard-smoke: 3-shard cluster served routed predicts bit-identically; \
     reload stayed on its owner; graceful stop reaped every child"
