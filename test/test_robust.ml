(* Fault taxonomy, deterministic injection, and self-healing pipelines.

   One property per injected fault class: with injection armed at a
   named site, the EM / Monte-Carlo pipelines must complete without
   raising, produce finite results, record the recovery in the run's
   [Diag], and — because every injection decision is a pure hash of
   (seed, site, scope, ordinal) — behave bit-identically at 1, 2 and 4
   pool domains. *)

open Cbmf_linalg
open Cbmf_model
open Cbmf_core
open Cbmf_robust
open Helpers

let with_injection ?seed ?prob ~sites f =
  Inject.arm ?seed ?prob ~sites ();
  Fun.protect ~finally:Inject.disarm f

(* --- Fault ---------------------------------------------------------- *)

let test_fault_strings () =
  let f1 = Fault.Not_pd { site = "chol.factorize"; dim = 5; tries = 3 } in
  let f2 = Fault.Em_divergence { iteration = 4; nlml_prev = 1.0; nlml = 9.0 } in
  let s1 = Fault.to_string f1 in
  check_true "renders site" (String.length s1 > 0);
  check_true "class names distinct"
    (Fault.class_name (Fault.class_of f1) <> Fault.class_name (Fault.class_of f2));
  check_int "total order reflexive" 0 (Fault.compare f1 f1);
  check_true "site of divergence" (String.length (Fault.site f2) > 0);
  (* Identical faults must render identically (the sort key for
     deterministic reports). *)
  let f1' = Fault.Not_pd { site = "chol.factorize"; dim = 5; tries = 3 } in
  check_int "equal faults compare equal" 0 (Fault.compare f1 f1')

let test_diag_basic () =
  let d = Diag.create () in
  check_true "fresh empty" (Diag.is_empty d);
  let f = Fault.Singular { site = "mna.solve"; dim = 7 } in
  Diag.record d f;
  Diag.record d f;
  Diag.record d (Fault.Non_finite { site = "mc.sample"; what = "poi"; index = 2 });
  check_int "count" 3 (Diag.count d);
  check_int "count_class singular" 2 (Diag.count_class d Fault.C_singular);
  check_int "count_class non_finite" 1 (Diag.count_class d Fault.C_non_finite);
  check_int "faults sorted & complete" 3 (Array.length (Diag.faults d));
  let sorted = Diag.faults d in
  check_true "sorted order"
    (Array.for_all Fun.id
       (Array.init (Array.length sorted - 1) (fun i ->
            Fault.compare sorted.(i) sorted.(i + 1) <= 0)));
  check_true "summary mentions repeat"
    (String.length (Diag.summary d) > 0);
  Diag.clear d;
  check_true "cleared" (Diag.is_empty d)

let test_diag_ambient () =
  (* Without an installed recorder, [note] is a no-op... *)
  Diag.note (Fault.Singular { site = "nowhere"; dim = 1 });
  let d = Diag.create () in
  Diag.with_current d (fun () ->
      Diag.note (Fault.Singular { site = "somewhere"; dim = 1 });
      (* ...and nesting restores the outer recorder on exit. *)
      let inner = Diag.create () in
      Diag.with_current inner (fun () ->
          Diag.note (Fault.Singular { site = "inner"; dim = 2 }));
      check_int "inner captured separately" 1 (Diag.count inner);
      Diag.note (Fault.Singular { site = "somewhere"; dim = 3 }));
  check_int "outer saw only its own" 2 (Diag.count d)

(* --- Inject --------------------------------------------------------- *)

let decisions ~seed ~prob ~site n =
  with_injection ~seed ~prob ~sites:[ site ] (fun () ->
      Array.init n (fun i ->
          Inject.with_scope ~key:i (fun () -> Inject.fire ~site)))

let test_inject_deterministic () =
  check_true "disarmed by default" (not (Inject.armed ()));
  check_true "disarmed never fires" (not (Inject.fire ~site:"chol.factorize"));
  let a = decisions ~seed:5 ~prob:0.5 ~site:"x" 64 in
  let b = decisions ~seed:5 ~prob:0.5 ~site:"x" 64 in
  check_true "same seed reproduces exactly" (a = b);
  let c = decisions ~seed:6 ~prob:0.5 ~site:"x" 64 in
  check_true "different seed differs" (a <> c);
  check_true "fires sometimes" (Array.exists Fun.id a);
  check_true "not always" (not (Array.for_all Fun.id a));
  (* An unarmed site never fires even while the harness is armed. *)
  with_injection ~seed:5 ~prob:1.0 ~sites:[ "x" ] (fun () ->
      check_true "other site silent" (not (Inject.fire ~site:"y")))

let test_inject_scope_restores () =
  (* Scoped work interleaved on the same domain must not perturb the
     enclosing decision stream. *)
  let run interleave =
    with_injection ~seed:11 ~prob:0.5 ~sites:[ "x" ] (fun () ->
        Inject.with_scope ~key:0 (fun () ->
            Array.init 8 (fun _ ->
                if interleave then
                  Inject.with_scope ~key:99 (fun () ->
                      ignore (Inject.fire ~site:"x"));
                Inject.fire ~site:"x")))
  in
  check_true "interleaved scopes transparent" (run false = run true)

(* --- Chol retry ----------------------------------------------------- *)

let test_chol_retry_clean () =
  let a = random_spd 6 in
  let f = Chol.factorize_with_retry a in
  check_float "no jitter on healthy matrix" 0.0 (Chol.jitter f)

let test_chol_retry_repairs_and_records () =
  (* Rank-deficient PSD: [1 1; 1 1] fails exact Cholesky but a tiny
     diagonal boost repairs it.  The recovery must land in the ambient
     recorder and the applied jitter must be exposed. *)
  let a = Mat.init 2 2 (fun _ _ -> 1.0) in
  let d = Diag.create () in
  let f = Diag.with_current d (fun () -> Chol.factorize_with_retry a) in
  check_true "jitter applied" (Chol.jitter f > 0.0);
  check_int "recovery recorded" 1 (Diag.count_class d Fault.C_not_pd)

let test_chol_retry_cap_raises_typed () =
  (* Indefinite [1 2; 2 1] (eigenvalues 3, −1): the jitter cap — 1e-2 of
     the mean diagonal — is far below the 1.0 boost a repair would
     need, so the retry loop must give up with a typed fault rather
     than jitter the matrix beyond recognition. *)
  let a = Mat.init 2 2 (fun i j -> if i = j then 1.0 else 2.0) in
  match Chol.factorize_with_retry a with
  | _ -> Alcotest.fail "expected Fault.Error (Not_pd _)"
  | exception Fault.Error (Fault.Not_pd { site; dim; tries }) ->
      check_true "site" (site = "chol.factorize");
      check_int "dim" 2 dim;
      check_true "tries counted" (tries > 0)

let test_chol_injection_site () =
  (* With the site armed at probability 1 every attempt fails, so even a
     perfectly healthy matrix must exhaust retries into a typed fault. *)
  let a = random_spd 4 in
  with_injection ~seed:1 ~prob:1.0 ~sites:[ "chol.factorize" ] (fun () ->
      match Chol.factorize_with_retry a with
      | _ -> Alcotest.fail "expected injected failure"
      | exception Fault.Error (Fault.Not_pd _) -> ());
  (* Disarmed again: same matrix factorizes with zero jitter. *)
  check_float "clean after disarm" 0.0 (Chol.jitter (Chol.factorize_with_retry a))

(* --- MNA validation ------------------------------------------------- *)

let test_mna_invalid_args () =
  let mk () =
    let ckt = Cbmf_circuit.Mna.create () in
    let n1 = Cbmf_circuit.Mna.fresh_node ckt "a" in
    (ckt, n1)
  in
  check_raises_invalid "negative resistance" (fun () ->
      let ckt, n1 = mk () in
      Cbmf_circuit.Mna.resistor ckt 0 n1 (-50.0));
  check_raises_invalid "NaN resistance" (fun () ->
      let ckt, n1 = mk () in
      Cbmf_circuit.Mna.resistor ckt 0 n1 Float.nan);
  check_raises_invalid "out-of-range node" (fun () ->
      let ckt, _ = mk () in
      Cbmf_circuit.Mna.resistor ckt 0 99 50.0);
  check_raises_invalid "negative capacitance" (fun () ->
      let ckt, n1 = mk () in
      Cbmf_circuit.Mna.capacitor ckt 0 n1 (-1e-12));
  check_raises_invalid "infinite gm" (fun () ->
      let ckt, n1 = mk () in
      Cbmf_circuit.Mna.vccs ckt ~out_pos:0 ~out_neg:n1 ~ctrl_pos:n1 ~ctrl_neg:0
        ~gm:Float.infinity);
  check_raises_invalid "zero frequency" (fun () ->
      let ckt, n1 = mk () in
      Cbmf_circuit.Mna.resistor ckt 0 n1 50.0;
      ignore (Cbmf_circuit.Mna.ac ckt ~freq:0.0))

(* --- Pool ----------------------------------------------------------- *)

let test_pool_shutdown_idempotent () =
  let p = Cbmf_parallel.Pool.create 2 in
  Cbmf_parallel.Pool.parallel_for p ~n:8 (fun _ -> ());
  Cbmf_parallel.Pool.shutdown p;
  Cbmf_parallel.Pool.shutdown p (* second call must be a no-op *)

let test_pool_worker_exception_identity () =
  let p = Cbmf_parallel.Pool.create 2 in
  Fun.protect ~finally:(fun () -> Cbmf_parallel.Pool.shutdown p) @@ fun () ->
  match Cbmf_parallel.Pool.parallel_for p ~n:16 (fun i ->
      if i = 7 then failwith "synthetic worker fault")
  with
  | () -> Alcotest.fail "expected the worker exception to propagate"
  | exception Failure msg ->
      check_true "exception payload preserved" (msg = "synthetic worker fault")

(* --- Dataset validation --------------------------------------------- *)

let test_dataset_validate () =
  let d = Test_core.planted ~k:4 ~n:6 ~m:8 () in
  (match Dataset.validate d with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "clean dataset must validate");
  Mat.set d.Dataset.design.(1) 2 3 Float.nan;
  d.Dataset.response.(3).(0) <- Float.infinity;
  (match Dataset.validate d with
  | Ok () -> Alcotest.fail "NaN dataset must be rejected"
  | Error r ->
      check_int "two invalid rows" 2 (Array.length r.Dataset.invalid);
      let a = r.Dataset.invalid.(0) and b = r.Dataset.invalid.(1) in
      check_int "design state" 1 a.Dataset.state;
      check_int "design row" 2 a.Dataset.row;
      check_int "design col" 3 a.Dataset.col;
      check_int "response state" 3 b.Dataset.state;
      check_int "response row" 0 b.Dataset.row;
      check_int "response marker" (-1) b.Dataset.col);
  (match Dataset.validate_exn d with
  | () -> Alcotest.fail "validate_exn must raise"
  | exception Fault.Error (Fault.Non_finite _) -> ());
  (* Em.run must reject the poisoned dataset up front, as a typed
     fault — not crash in the middle of a factorization. *)
  let prior =
    Prior.create
      ~lambda:(Vec.make d.Dataset.n_basis 0.5)
      ~r:(Prior.r_of_r0 ~n_states:d.Dataset.n_states ~r0:0.5)
      ~sigma0:0.3
  in
  match Em.run d prior with
  | _ -> Alcotest.fail "Em.run must reject NaN data"
  | exception Fault.Error (Fault.Non_finite _) -> ()

(* --- Self-healing EM under injected faults -------------------------- *)

let em_problem () =
  let std = Test_core.std_planted () in
  (std, Test_core.uniform_prior std)

let check_em_healthy what (prior, post, trace) =
  check_true (what ^ ": lambda finite")
    (Array.for_all Float.is_finite prior.Prior.lambda);
  check_true (what ^ ": R finite")
    (Array.for_all Float.is_finite prior.Prior.r.Mat.data);
  check_true (what ^ ": sigma0 finite") (Float.is_finite prior.Prior.sigma0);
  check_true (what ^ ": nlml finite") (Float.is_finite post.Posterior.nlml);
  check_true (what ^ ": iterations ran") (trace.Em.iterations >= 1)

let em_fit_hash (prior, _post, trace) =
  Int64.logxor
    (hash_floats prior.Prior.lambda)
    (Int64.logxor
       (hash_floats prior.Prior.r.Mat.data)
       (Int64.logxor
          (hash_floats [| prior.Prior.sigma0 |])
          (Int64.of_int (Hashtbl.hash (Diag.summary trace.Em.diag)))))

let em_under_injection ~sites ~seed ~prob () =
  let std, prior0 = em_problem () in
  with_injection ~seed ~prob ~sites (fun () -> Em.run std prior0)

let test_em_chol_injection () =
  let result = em_under_injection ~sites:[ "chol.factorize" ] ~seed:1 ~prob:0.3 () in
  check_em_healthy "chol inject" result;
  let _, _, trace = result in
  check_true "Not_pd recovery recorded"
    (Diag.count_class trace.Em.diag Fault.C_not_pd > 0)

let test_em_posterior_injection () =
  let result =
    em_under_injection ~sites:[ "posterior.compute" ] ~seed:2 ~prob:0.2 ()
  in
  check_em_healthy "posterior inject" result;
  let _, _, trace = result in
  check_true "Non_finite recovery recorded"
    (Diag.count_class trace.Em.diag Fault.C_non_finite > 0);
  check_true "recoveries counted" (trace.Em.recoveries > 0)

let test_em_injection_domain_invariance () =
  (* The whole self-healing story — which faults fire, which fallbacks
     run, what the repaired numbers are — must be bit-identical at any
     domain count. *)
  let hashes =
    List.map
      (fun domains ->
        Cbmf_parallel.Pool.set_default_size domains;
        em_fit_hash
          (em_under_injection ~sites:[ "chol.factorize" ] ~seed:1 ~prob:0.3 ()))
      [ 1; 2; 4 ]
  in
  Cbmf_parallel.Pool.set_default_size (Cbmf_parallel.Pool.env_domains ());
  match hashes with
  | [ h1; h2; h4 ] ->
      check_true "1 vs 2 domains" (Int64.equal h1 h2);
      check_true "1 vs 4 domains" (Int64.equal h1 h4)
  | _ -> assert false

let test_em_divergence_rollback () =
  let std, prior0 = em_problem () in
  let calls = ref 0 in
  let ws = Posterior.make_workspace () in
  let posterior ?(need_sigma = true) d prior ~active =
    incr calls;
    let t = Posterior.compute ~need_sigma ~ws d prior ~active in
    (* Doctor one E-step to report a wildly worse objective: the
       watchdog must flag it and roll back to the checkpoint. *)
    if !calls = 3 then { t with Posterior.nlml = abs_float t.Posterior.nlml +. 1e4 }
    else t
  in
  let result = Em.run ~posterior std prior0 in
  check_em_healthy "divergence" result;
  let _, _, trace = result in
  check_true "divergence recorded"
    (Diag.count_class trace.Em.diag Fault.C_em_divergence > 0);
  check_true "rollback counted" (trace.Em.recoveries > 0)

let test_em_worker_error_recovery () =
  let std, prior0 = em_problem () in
  let calls = ref 0 in
  let ws = Posterior.make_workspace () in
  let posterior ?(need_sigma = true) d prior ~active =
    incr calls;
    if !calls = 2 then failwith "synthetic solver crash";
    Posterior.compute ~need_sigma ~ws d prior ~active
  in
  let result = Em.run ~posterior std prior0 in
  check_em_healthy "worker error" result;
  let _, _, trace = result in
  check_true "Worker_error recorded"
    (Diag.count_class trace.Em.diag Fault.C_worker_error > 0)

let test_em_clean_run_empty_diag () =
  let std, prior0 = em_problem () in
  let _, _, trace = Em.run std prior0 in
  check_true "no faults on a clean run" (Diag.is_empty trace.Em.diag);
  check_int "no recoveries on a clean run" 0 trace.Em.recoveries

(* --- Resilient Monte Carlo ------------------------------------------ *)

let mc_under_injection ~sites ~seed ~prob () =
  let tb = Cbmf_circuit.Lna.create () in
  let rng = Cbmf_prob.Rng.create 42 in
  let d = Diag.create () in
  let mc =
    with_injection ~seed ~prob ~sites (fun () ->
        Cbmf_circuit.Montecarlo.generate ~diag:d tb rng ~n_per_state:3)
  in
  (mc, d)

let mc_hash (mc : Cbmf_circuit.Montecarlo.t) d =
  let xs = Array.map (fun s -> s.Cbmf_circuit.Montecarlo.xs) mc.Cbmf_circuit.Montecarlo.states in
  let ys = Array.map (fun s -> s.Cbmf_circuit.Montecarlo.ys) mc.Cbmf_circuit.Montecarlo.states in
  Int64.logxor
    (Int64.logxor (hash_mats xs) (Int64.mul 0x9E3779B97F4A7C15L (hash_mats ys)))
    (Int64.of_int
       (Hashtbl.hash (Diag.summary d, mc.Cbmf_circuit.Montecarlo.dropped)))

let check_mc_finite what (mc : Cbmf_circuit.Montecarlo.t) =
  Array.iter
    (fun s ->
      check_true (what ^ ": ys finite")
        (Array.for_all Float.is_finite s.Cbmf_circuit.Montecarlo.ys.Mat.data);
      check_true (what ^ ": xs finite")
        (Array.for_all Float.is_finite s.Cbmf_circuit.Montecarlo.xs.Mat.data))
    mc.Cbmf_circuit.Montecarlo.states

let test_mc_mna_injection () =
  let mc, d = mc_under_injection ~sites:[ "mna.solve" ] ~seed:3 ~prob:0.15 () in
  check_mc_finite "mna inject" mc;
  check_true "Singular faults recorded" (Diag.count_class d Fault.C_singular > 0);
  check_true "kept a usable sample set"
    (mc.Cbmf_circuit.Montecarlo.n_per_state >= 1)

let test_mc_sample_injection_domain_invariance () =
  let run domains =
    Cbmf_parallel.Pool.set_default_size domains;
    let mc, d = mc_under_injection ~sites:[ "mc.sample" ] ~seed:4 ~prob:0.3 () in
    check_mc_finite "mc inject" mc;
    (mc_hash mc d, Diag.count_class d Fault.C_non_finite)
  in
  let results = List.map run [ 1; 2; 4 ] in
  Cbmf_parallel.Pool.set_default_size (Cbmf_parallel.Pool.env_domains ());
  match results with
  | [ (h1, nf1); (h2, _); (h4, _) ] ->
      check_true "injected NaN PoIs recorded" (nf1 > 0);
      check_true "1 vs 2 domains" (Int64.equal h1 h2);
      check_true "1 vs 4 domains" (Int64.equal h1 h4)
  | _ -> assert false

let test_mc_drop_accounting () =
  (* Probability 1 on mc.sample: every attempt of every sample fails, so
     the generator must give up with a typed Sim_failure — not loop or
     return garbage. *)
  let tb = Cbmf_circuit.Lna.create () in
  let rng = Cbmf_prob.Rng.create 42 in
  let d = Diag.create () in
  (match
     with_injection ~seed:5 ~prob:1.0 ~sites:[ "mc.sample" ] (fun () ->
         Cbmf_circuit.Montecarlo.generate ~diag:d ~max_retries:1 tb rng
           ~n_per_state:2)
   with
  | _ -> Alcotest.fail "expected total failure to raise"
  | exception Fault.Error (Fault.Sim_failure _) -> ());
  check_true "every drop recorded" (Diag.count_class d Fault.C_sim_failure > 0)

let suite =
  [ ( "robust.taxonomy",
      [ case "fault rendering and order" test_fault_strings;
        case "diag recorder" test_diag_basic;
        case "ambient recorder" test_diag_ambient ] );
    ( "robust.inject",
      [ case "seeded determinism" test_inject_deterministic;
        case "scope save/restore" test_inject_scope_restores ] );
    ( "robust.chol",
      [ case "clean factorization, zero jitter" test_chol_retry_clean;
        case "repair recorded with jitter" test_chol_retry_repairs_and_records;
        case "jitter cap raises typed fault" test_chol_retry_cap_raises_typed;
        case "injection site honored" test_chol_injection_site ] );
    ( "robust.mna",
      [ case "invalid_arg validation" test_mna_invalid_args ] );
    ( "robust.pool",
      [ case "idempotent shutdown" test_pool_shutdown_idempotent;
        case "worker exception identity" test_pool_worker_exception_identity ] );
    ( "robust.dataset",
      [ case "validate structured report" test_dataset_validate ] );
    ( "robust.em",
      [ case "clean run records nothing" test_em_clean_run_empty_diag;
        case "survives chol faults" test_em_chol_injection;
        case "survives posterior faults" test_em_posterior_injection;
        slow_case "recovery domain-invariant (1/2/4)"
          test_em_injection_domain_invariance;
        case "divergence rollback" test_em_divergence_rollback;
        case "worker error recovery" test_em_worker_error_recovery ] );
    ( "robust.montecarlo",
      [ case "survives solver faults" test_mc_mna_injection;
        slow_case "retry stream domain-invariant (1/2/4)"
          test_mc_sample_injection_domain_invariance;
        case "total failure raises typed fault" test_mc_drop_accounting ] ) ]
