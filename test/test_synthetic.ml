(* The synthetic workload generator: spec validation, the SPD
   covariance factory, ground-truth determinism, dataset views
   (pool-invariance, prefix nesting, corruption knobs feeding
   Dataset.validate), and the serving-side inputs. *)

open Helpers
open Cbmf_linalg
open Cbmf_model
module Synthetic = Cbmf_circuit.Synthetic
module Pool = Cbmf_parallel.Pool
module Rng = Cbmf_prob.Rng

let spec = Synthetic.default_spec

(* A tiny spec for the cheap structural cases. *)
let small =
  { spec with Synthetic.k = 4; m = 13; d = 6; active_per_state = 3; seed = 7 }

let hash_dataset (d : Dataset.t) =
  let acc = ref Seeded.fnv_offset in
  for s = 0 to d.Dataset.n_states - 1 do
    acc := Seeded.hash_floats_acc !acc d.Dataset.design.(s).Mat.data;
    acc := Seeded.hash_floats_acc !acc d.Dataset.response.(s)
  done;
  !acc

let test_validate_spec () =
  check_true "default ok" (Result.is_ok (Synthetic.validate_spec spec));
  let bad s = check_true "rejected" (Result.is_error (Synthetic.validate_spec s)) in
  bad { spec with Synthetic.k = 0 };
  bad { spec with Synthetic.d = 0 };
  bad { spec with Synthetic.m = 1 };
  bad { spec with Synthetic.m = (2 * spec.Synthetic.d) + 2 };
  bad { spec with Synthetic.active_per_state = 0 };
  bad { spec with Synthetic.active_per_state = spec.Synthetic.m };
  bad { spec with Synthetic.rho = 1.0 };
  bad { spec with Synthetic.rho = -0.1 };
  bad { spec with Synthetic.noise_sigma = -1.0 };
  bad { spec with Synthetic.density = 1.5 };
  check_raises_invalid "truth rejects invalid spec" (fun () ->
      Synthetic.truth { spec with Synthetic.k = 0 })

let test_spec_round_trip () =
  (* Hex floats make the round-trip exact even for 0.1-like values. *)
  let awkward =
    { spec with Synthetic.rho = 0.1 +. 0.2; noise_sigma = 1.0 /. 3.0 }
  in
  List.iter
    (fun s ->
      let s' = Synthetic.spec_of_string (Synthetic.spec_to_string s) in
      check_true "round-trip exact" (s' = s))
    [ spec; small; awkward ];
  check_raises_invalid "malformed rejected" (fun () ->
      Synthetic.spec_of_string "k=banana");
  check_raises_invalid "invalid spec rejected" (fun () ->
      Synthetic.spec_of_string
        (Synthetic.spec_to_string { spec with Synthetic.k = 0 }))

let test_rand_cov () =
  let rng = Rng.create 99 in
  let c = Synthetic.rand_cov ~rng ~dim:12 ~density:0.3 ~shape:2.0 in
  check_true "symmetric" (Mat.is_symmetric ~tol:1e-12 c);
  for i = 0 to 11 do
    check_float ~tol:1e-12 "unit diagonal" 1.0 (Mat.get c i i)
  done;
  check_true "positive definite" (Chol.is_positive_definite c);
  (* Density moves off-diagonal mass. *)
  let off m =
    let acc = ref 0.0 in
    let n = m.Mat.rows in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then acc := !acc +. Float.abs (Mat.get m i j)
      done
    done;
    !acc
  in
  let dense =
    Synthetic.rand_cov ~rng:(Rng.create 5) ~dim:12 ~density:0.9 ~shape:0.5
  in
  check_true "denser factor, more correlation" (off dense > off c);
  let id = Synthetic.rand_cov ~rng:(Rng.create 5) ~dim:7 ~density:0.0 ~shape:1.0 in
  mat_close ~tol:0.0 "density 0 is identity" (Mat.identity 7) id;
  let c1 = Synthetic.rand_cov ~rng:(Rng.create 42) ~dim:9 ~density:0.4 ~shape:1.0 in
  let c2 = Synthetic.rand_cov ~rng:(Rng.create 42) ~dim:9 ~density:0.4 ~shape:1.0 in
  check_true "deterministic in rng"
    (Int64.equal (hash_floats c1.Mat.data) (hash_floats c2.Mat.data));
  check_raises_invalid "bad density" (fun () ->
      Synthetic.rand_cov ~rng ~dim:3 ~density:1.5 ~shape:1.0);
  check_raises_invalid "bad shape" (fun () ->
      Synthetic.rand_cov ~rng ~dim:3 ~density:0.5 ~shape:0.0)

let test_device_cov () =
  (match Synthetic.device_cov_of_spec small with
  | Synthetic.Dense l ->
      check_int "dense factor rows" small.Synthetic.d l.Mat.rows
  | _ -> Alcotest.fail "expected Dense at small d");
  (match
     Synthetic.device_cov_of_spec { small with Synthetic.density = 0.0 }
   with
  | Synthetic.Diagonal v -> check_int "diagonal length" small.Synthetic.d (Array.length v)
  | _ -> Alcotest.fail "expected Diagonal at density 0");
  let big = { spec with Synthetic.d = 2000; m = 101 } in
  (match Synthetic.device_cov_of_spec big with
  | Synthetic.Low_rank { factor; noise } ->
      check_int "low-rank rows" 2000 factor.Mat.rows;
      check_true "low-rank narrow" (factor.Mat.cols < 64);
      check_int "noise length" 2000 (Array.length noise)
  | _ -> Alcotest.fail "expected Low_rank at large d");
  List.iter
    (fun s ->
      let dev = Synthetic.device_cov_of_spec s in
      let x = Synthetic.draw_x dev (Rng.create 3) in
      check_int "draw length" s.Synthetic.d (Array.length x);
      check_true "draw finite" (Array.for_all Float.is_finite x);
      let y = Synthetic.draw_x dev (Rng.create 3) in
      check_true "draw deterministic"
        (Int64.equal (hash_floats x) (hash_floats y)))
    [ small; { small with Synthetic.density = 0.0 };
      { spec with Synthetic.d = 600; m = 61 } ]

let test_truth_structure () =
  let t = Synthetic.truth small in
  let a = small.Synthetic.active_per_state in
  check_int "terms" small.Synthetic.m (Array.length t.Synthetic.terms);
  check_int "support size" a (Array.length t.Synthetic.support);
  let sorted = Array.copy t.Synthetic.support in
  Array.sort compare sorted;
  check_true "support sorted" (sorted = t.Synthetic.support);
  check_true "support excludes constant"
    (Array.for_all (fun j -> j >= 1 && j < small.Synthetic.m) t.Synthetic.support);
  check_true "support distinct"
    (Array.length (Array.of_seq (Hashtbl.to_seq_keys (
         let h = Hashtbl.create 8 in
         Array.iter (fun j -> Hashtbl.replace h j ()) t.Synthetic.support;
         h))) = a);
  (* Off-support coefficients are exactly zero; on-support nonzero. *)
  let on = Hashtbl.create 8 in
  Array.iter (fun j -> Hashtbl.replace on j ()) t.Synthetic.support;
  for s = 0 to small.Synthetic.k - 1 do
    for j = 0 to small.Synthetic.m - 1 do
      let c = Mat.get t.Synthetic.coeffs s j in
      if not (Hashtbl.mem on j) then
        check_float ~tol:0.0 "zero off support" 0.0 c
    done
  done;
  (* R is the eq.-32 decay matrix of the spec's rho. *)
  for i = 0 to small.Synthetic.k - 1 do
    for j = 0 to small.Synthetic.k - 1 do
      check_float ~tol:1e-15 "R decay"
        (small.Synthetic.rho ** float_of_int (abs (i - j)))
        (Mat.get t.Synthetic.r i j)
    done
  done;
  (* Deterministic: a second construction is bit-identical. *)
  let t2 = Synthetic.truth small in
  check_true "truth deterministic"
    (Int64.equal
       (hash_floats t.Synthetic.coeffs.Mat.data)
       (hash_floats t2.Synthetic.coeffs.Mat.data)
    && t.Synthetic.support = t2.Synthetic.support)

let test_truth_correlation () =
  (* With rho -> 0.95 adjacent states' active coefficients track each
     other; with rho = 0 they are independent.  Compare the empirical
     adjacent-state correlation of the planted coefficients over many
     seeds — a direct check that the Kronecker-style draw really
     responds to the knob. *)
  let corr rho =
    let num = ref 0.0 and den_a = ref 0.0 and den_b = ref 0.0 in
    for seed = 1 to 40 do
      let s =
        { small with Synthetic.k = 6; rho; seed; noise_sigma = 0.0 }
      in
      let t = Synthetic.truth s in
      Array.iter
        (fun col ->
          for st = 0 to 4 do
            let a = Mat.get t.Synthetic.coeffs st col in
            let b = Mat.get t.Synthetic.coeffs (st + 1) col in
            num := !num +. (a *. b);
            den_a := !den_a +. (a *. a);
            den_b := !den_b +. (b *. b)
          done)
        t.Synthetic.support
    done;
    !num /. sqrt (!den_a *. !den_b)
  in
  let high = corr 0.95 and low = corr 0.0 in
  check_true "rho=0.95 strongly correlated" (high > 0.8);
  check_true "rho=0 near-uncorrelated" (Float.abs low < 0.25);
  check_true "ordering" (high > low +. 0.5)

let test_per_state_drop () =
  let t =
    Synthetic.truth ~per_state_drop:0.4
      { small with Synthetic.k = 16; seed = 11 }
  in
  (* Effective per-state supports must differ: some (state, active col)
     entries are zeroed, others are not. *)
  let zeros = ref 0 and nonzeros = ref 0 in
  Array.iter
    (fun col ->
      for s = 0 to 15 do
        if Mat.get t.Synthetic.coeffs s col = 0.0 then incr zeros
        else incr nonzeros
      done)
    t.Synthetic.support;
  check_true "some dropped" (!zeros > 0);
  check_true "some kept" (!nonzeros > 0);
  check_raises_invalid "bad drop" (fun () ->
      Synthetic.truth ~per_state_drop:1.0 small)

let test_dataset_shapes_and_noise () =
  let t = Synthetic.truth small in
  let d = Synthetic.dataset t ~n_per_state:5 in
  check_int "states" small.Synthetic.k d.Dataset.n_states;
  check_int "samples" 5 d.Dataset.n_samples;
  check_int "basis" small.Synthetic.m d.Dataset.n_basis;
  (* Noise-free responses are exactly the oracle mean of the drawn x:
     column 1..d of the design holds x itself (linear terms), so the
     response can be recomputed through [mean_at]. *)
  let t0 = Synthetic.truth { small with Synthetic.noise_sigma = 0.0 } in
  let d0 = Synthetic.dataset t0 ~n_per_state:4 in
  for s = 0 to small.Synthetic.k - 1 do
    for i = 0 to 3 do
      let x =
        Array.init small.Synthetic.d (fun v ->
            Mat.get d0.Dataset.design.(s) i (v + 1))
      in
      check_true "sigma=0 response is the oracle mean"
        (Int64.equal
           (Int64.bits_of_float (Synthetic.mean_at t0 ~state:s x))
           (Int64.bits_of_float d0.Dataset.response.(s).(i)))
    done
  done

let test_dataset_pool_invariance () =
  let t = Synthetic.truth small in
  let h_at size =
    let p = Pool.create size in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown p)
      (fun () -> hash_dataset (Synthetic.dataset ~pool:p t ~n_per_state:6))
  in
  let h1 = h_at 1 and h2 = h_at 2 and h4 = h_at 4 in
  check_true "1 = 2 domains" (Int64.equal h1 h2);
  check_true "1 = 4 domains" (Int64.equal h1 h4)

let test_dataset_prefix_nesting () =
  let t = Synthetic.truth small in
  let big = Synthetic.dataset t ~n_per_state:8 in
  let small_d = Synthetic.dataset t ~n_per_state:3 in
  let truncated = Dataset.truncate_samples big ~n:3 in
  check_true "n=3 is the prefix of n=8"
    (Int64.equal (hash_dataset small_d) (hash_dataset truncated));
  let test_d = Synthetic.test_dataset t ~n_per_state:3 in
  check_true "test stream independent of train"
    (not (Int64.equal (hash_dataset small_d) (hash_dataset test_d)))

let test_dataset_golden () =
  (* Pin the generator's exact output: any change to stream derivation,
     draw order or term evaluation shows up here as a hash mismatch. *)
  let t = Synthetic.truth small in
  let d = Synthetic.dataset t ~n_per_state:4 in
  let h = hash_dataset d in
  if not (Int64.equal h 0xfd51658a0a931efbL) then
    Alcotest.failf "golden hash drifted: got 0x%LxL" h

let test_corruption_validate () =
  let t = Synthetic.truth small in
  let corrupt =
    [ { Synthetic.bad_state = 0; bad_row = 1; bad_col = -1; bad_value = Float.nan };
      { Synthetic.bad_state = 2; bad_row = 3; bad_col = 5;
        bad_value = Float.infinity };
      { Synthetic.bad_state = 2; bad_row = 0; bad_col = 7;
        bad_value = Float.neg_infinity } ]
  in
  let d = Synthetic.dataset ~corrupt t ~n_per_state:5 in
  (match Dataset.validate d with
  | Ok () -> Alcotest.fail "corruption not detected"
  | Error r ->
      check_int "total rows" (small.Synthetic.k * 5) r.Dataset.n_rows;
      check_int "three invalid rows" 3 (Array.length r.Dataset.invalid);
      (* Row-granular, (state, row)-ordered, with the exact column (or
         -1 for the response) pinpointed. *)
      let expect =
        [| { Dataset.state = 0; row = 1; col = -1 };
           { Dataset.state = 2; row = 0; col = 7 };
           { Dataset.state = 2; row = 3; col = 5 } |]
      in
      check_true "report pinpoints the planted entries" (r.Dataset.invalid = expect));
  (* The clean dataset from the same truth still validates. *)
  check_true "clean dataset validates"
    (Result.is_ok (Dataset.validate (Synthetic.dataset t ~n_per_state:5)));
  check_raises_invalid "out-of-range corruption state" (fun () ->
      Synthetic.dataset
        ~corrupt:[ { Synthetic.bad_state = 99; bad_row = 0; bad_col = 0;
                     bad_value = Float.nan } ]
        t ~n_per_state:2);
  check_raises_invalid "out-of-range corruption column" (fun () ->
      Synthetic.dataset
        ~corrupt:[ { Synthetic.bad_state = 0; bad_row = 0; bad_col = -2;
                     bad_value = Float.nan } ]
        t ~n_per_state:2)

let test_fit_plumbing () =
  (* The dataset view plugs into the real front end: Init.run selects a
     support on a synthetic workload and Cbmf.fit returns a model whose
     held-out error beats the trivial zero predictor by a wide margin. *)
  let s =
    { small with Synthetic.k = 4; m = 11; d = 5; active_per_state = 2;
      noise_sigma = 0.02; seed = 3 }
  in
  let t = Synthetic.truth s in
  let train = Synthetic.dataset t ~n_per_state:12 in
  let model =
    Cbmf_core.Cbmf.fit ~config:(Cbmf_experiments.Recovery.cbmf_config s) train
  in
  let err = Cbmf_core.Cbmf.test_error model (Synthetic.test_dataset t ~n_per_state:20) in
  check_true "held-out error small" (err < 0.3)

let test_batch_inputs () =
  let t = Synthetic.truth small in
  let xs, states = Synthetic.batch_inputs t ~salt:0 ~n:10 in
  check_int "rows" 10 xs.Mat.rows;
  check_int "cols" small.Synthetic.d xs.Mat.cols;
  check_int "states length" 10 (Array.length states);
  Array.iteri
    (fun i st -> check_int "round-robin" (i mod small.Synthetic.k) st)
    states;
  let xs2, _ = Synthetic.batch_inputs t ~salt:0 ~n:10 in
  check_true "deterministic"
    (Int64.equal (hash_floats xs.Mat.data) (hash_floats xs2.Mat.data));
  let xs3, _ = Synthetic.batch_inputs t ~salt:1 ~n:10 in
  check_true "salts independent"
    (not (Int64.equal (hash_floats xs.Mat.data) (hash_floats xs3.Mat.data)))

let test_posterior_cov_blocks () =
  let t = Synthetic.truth small in
  let blocks = Synthetic.posterior_cov_blocks t in
  check_int "K blocks" small.Synthetic.k (Array.length blocks);
  Array.iter
    (fun b ->
      check_int "a rows" small.Synthetic.active_per_state b.Mat.rows;
      check_true "SPD" (Chol.is_positive_definite b))
    blocks

let suite =
  [ ( "synthetic",
      [ case "validate_spec" test_validate_spec;
        case "spec_round_trip" test_spec_round_trip;
        case "rand_cov" test_rand_cov;
        case "device_cov" test_device_cov;
        case "truth_structure" test_truth_structure;
        case "truth_correlation" test_truth_correlation;
        case "per_state_drop" test_per_state_drop;
        case "dataset_shapes_and_noise" test_dataset_shapes_and_noise;
        case "dataset_pool_invariance" test_dataset_pool_invariance;
        case "dataset_prefix_nesting" test_dataset_prefix_nesting;
        case "dataset_golden" test_dataset_golden;
        case "corruption_validate" test_corruption_validate;
        case "fit_plumbing" test_fit_plumbing;
        case "batch_inputs" test_batch_inputs;
        case "posterior_cov_blocks" test_posterior_cov_blocks ] ) ]
