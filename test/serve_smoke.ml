(* Serving smoke test.

   Run by the `serve-smoke` dune alias with CBMF_DOMAINS=2: fits a
   tiny LNA model, saves and reloads its snapshot (bit-identical),
   checks the batch engine against the scalar path and across domain
   counts, then drives a real server over a temp Unix socket — 100
   batched predict requests, a malformed frame, an unknown model, an
   injection-armed decode failure — validates the stats-JSON schema,
   and hot-reloads the model under concurrent predict load (zero
   dropped requests, no torn model, generation accounting exact).
   Exits nonzero on any failure. *)

open Cbmf_linalg
open Cbmf_serve

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "serve-smoke FAIL: %s\n%!" name
  end

let bits_eq xs ys =
  Array.length xs = Array.length ys
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       xs ys

let () =
  check "CBMF_DOMAINS=2 honored" (Cbmf_parallel.Pool.env_domains () = 2);

  (* --- Tiny LNA fit -> serving model ------------------------------- *)
  let w = Cbmf_experiments.Workload.lna () in
  let data =
    Cbmf_experiments.Workload.generate w ~seed:3 ~n_train_max:4
      ~n_test_per_state:2
  in
  let train =
    Cbmf_experiments.Workload.train_dataset data ~poi:0 ~n_per_state:4
  in
  let fitted = Cbmf_core.Cbmf.fit ~config:Cbmf_core.Cbmf.fast_config train in
  let model =
    Model.of_fit
      ~dict:w.Cbmf_experiments.Workload.dictionary
      (Cbmf_core.Cbmf.fitted_view fitted)
  in
  check "model validates" (Model.validate model = Ok ());
  check "model has active terms" (Model.n_active model > 0);

  (* --- Snapshot round-trip ------------------------------------------ *)
  let dir = Filename.temp_file "cbmf_serve_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let snap = Filename.concat dir "lna.snap" in
  Snapshot.save ~path:snap model;
  let loaded = Snapshot.load ~path:snap in
  check "save/load bit-identical" (Model.equal loaded model);
  check "re-encode byte-identical"
    (String.equal (Snapshot.encode loaded) (Snapshot.encode model));

  (* --- Batch engine: scalar path and domain invariance -------------- *)
  let dim = model.Model.input_dim in
  let k = model.Model.n_states in
  let points =
    Array.concat
      (Array.to_list
         (Array.map
            (fun (s : Cbmf_circuit.Montecarlo.per_state) ->
              Array.init s.Cbmf_circuit.Montecarlo.xs.Mat.rows (fun i ->
                  Mat.row s.Cbmf_circuit.Montecarlo.xs i))
            data.Cbmf_experiments.Workload.test.Cbmf_circuit.Montecarlo.states))
  in
  let n = 130 (* spans three fan-out chunks *) in
  let xs =
    Mat.init n dim (fun i j -> points.(i mod Array.length points).(j))
  in
  let states = Array.init n (fun i -> i mod k) in
  let means2, sds2 = Engine.predict_batch model ~states ~xs in
  check "predictions finite"
    (Array.for_all Float.is_finite means2 && Array.for_all Float.is_finite sds2);
  Cbmf_parallel.Pool.set_default_size 1;
  let means1, sds1 = Engine.predict_batch model ~states ~xs in
  Cbmf_parallel.Pool.set_default_size 2;
  check "1 vs 2 domains bit-identical"
    (bits_eq means1 means2 && bits_eq sds1 sds2);
  let scalar_ok = ref true in
  for i = 0 to 19 do
    let x = Mat.row xs i in
    let m_s, s_s = Model.predict model ~state:states.(i) x in
    let m_b, s_b = Engine.predict model ~state:states.(i) x in
    if
      not
        (Int64.equal (Int64.bits_of_float m_s) (Int64.bits_of_float means2.(i))
        && Int64.equal (Int64.bits_of_float s_s) (Int64.bits_of_float sds2.(i))
        && Int64.equal (Int64.bits_of_float m_s) (Int64.bits_of_float m_b)
        && Int64.equal (Int64.bits_of_float s_s) (Int64.bits_of_float s_b))
    then scalar_ok := false
  done;
  check "batch = batch-of-1 = scalar predict bitwise" !scalar_ok;

  (* --- Server over a temp Unix socket ------------------------------- *)
  let sock = Filename.concat dir "serve.sock" in
  let server =
    Server.start
      ~config:{ Server.default_config with workers = 2; timeout = 30.0 }
      (Unix.ADDR_UNIX sock)
  in
  let c = Client.connect (Unix.ADDR_UNIX sock) in
  (match Client.load_path c ~name:"lna" ~path:snap with
  | Ok (n_active, n_states, _) ->
      check "server load reports shape"
        (n_active = Model.n_active model && n_states = k)
  | Error e -> check ("server load: " ^ e) false);

  (* 100 batched predict requests; every reply bit-identical to the
     local engine. *)
  let served_ok = ref true in
  for req = 0 to 99 do
    let b = 1 + (req mod 13) in
    let off = req mod (n - b) in
    let bxs = Mat.init b dim (fun i j -> Mat.get xs (off + i) j) in
    let bstates = Array.sub states off b in
    let lm, ls = Engine.predict_batch model ~states:bstates ~xs:bxs in
    match Client.predict c ~name:"lna" ~states:bstates ~xs:bxs with
    | Ok (rm, rs) -> if not (bits_eq lm rm && bits_eq ls rs) then served_ok := false
    | Error _ -> served_ok := false
  done;
  check "100 batched requests served bit-identically" !served_ok;

  (* Unknown model: typed error, connection stays up. *)
  (match Client.predict c ~name:"nope" ~states:[| 0 |] ~xs:(Mat.create 1 dim) with
  | Error msg ->
      check "unknown model -> model-not-found"
        (String.length msg >= 15 && String.sub msg 0 15 = "model-not-found")
  | Ok _ -> check "unknown model rejected" false);

  (* Injection-armed decode: typed error reply, server stays alive. *)
  Cbmf_robust.Inject.arm ~prob:1.0 ~sites:[ "serve.decode" ] ();
  let image = Snapshot.encode model in
  (match Client.load_inline c ~name:"injected" ~image with
  | Error msg ->
      check "injected decode fault -> bad-snapshot reply"
        (String.length msg >= 12 && String.sub msg 0 12 = "bad-snapshot")
  | Ok _ -> check "injected decode fault rejected" false);
  Cbmf_robust.Inject.disarm ();
  (match Client.load_inline c ~name:"inline" ~image with
  | Ok _ -> ()
  | Error e -> check ("inline load after disarm: " ^ e) false);

  (* Malformed frame (well-delimited, garbage body): typed error. *)
  (match Client.send_raw c "\xDE\xAD\xBE\xEF" with
  | Protocol.Error { code = Protocol.Bad_frame; _ } -> ()
  | _ -> check "malformed frame -> bad-frame reply" false);

  (* The same connection still serves after the bad frame. *)
  (match Client.predict c ~name:"lna" ~states:[| 0 |]
           ~xs:(Mat.init 1 dim (fun _ j -> points.(0).(j)))
  with
  | Ok _ -> ()
  | Error e -> check ("connection survives bad frame: " ^ e) false);

  (* Stats JSON: schema spot-checks. *)
  (match Client.stats c with
  | Ok json ->
      let has needle =
        let nl = String.length needle and bl = String.length json in
        let rec scan i =
          if i + nl > bl then false
          else if String.sub json i nl = needle then true
          else scan (i + 1)
        in
        scan 0
      in
      List.iter
        (fun key -> check (Printf.sprintf "stats has %s" key) (has key))
        [ "\"requests\""; "\"predict\":102"; "\"load\":3"; "\"errors\"";
          "\"points\""; "\"max_batch\""; "\"latency_us\""; "\"p50\"";
          "\"p99\""; "\"buckets\""; "\"registry\""; "\"hits\"";
          "\"misses\""; "\"phases\""; "\"queue_wait_us\"";
          "\"batch_wait_us\""; "\"compute_us\""; "\"batch_occupancy\"";
          "\"flushes\""; "\"coalesced_requests\"" ]
  | Error e -> check ("stats: " ^ e) false);

  (* --- Hot reload under load ---------------------------------------- *)
  (* A hammer thread predicts continuously on its own connection while
     this thread atomically swaps the model back and forth.  Zero
     requests may be dropped, and every reply must be bit-identical to
     exactly one of the two swapped models — never a torn mix. *)
  let model_b =
    { model with Model.y_means = Array.map (fun v -> v +. 1.0) model.Model.y_means }
  in
  check "perturbed model validates" (Model.validate model_b = Ok ());
  let hxs = Mat.init 8 dim (fun i j -> Mat.get xs i j) in
  let hstates = Array.sub states 0 8 in
  let exp_a = Engine.predict_batch model ~states:hstates ~xs:hxs in
  let exp_b = Engine.predict_batch model_b ~states:hstates ~xs:hxs in
  let matches (em, es) (rm, rs) = bits_eq em rm && bits_eq es rs in
  let gen_before =
    match Client.ping c with
    | Ok gen -> gen
    | Error f ->
        check ("ping before reload: " ^ Client.failure_to_string f) false;
        0
  in
  let stop_hammer = ref false in
  let dropped = ref 0 and torn = ref 0 and served = ref 0 in
  let hammer =
    Thread.create
      (fun () ->
        let hc = Client.connect (Unix.ADDR_UNIX sock) in
        while not !stop_hammer do
          (match Client.predict_typed hc ~name:"lna" ~states:hstates ~xs:hxs with
          | Ok reply ->
              incr served;
              if not (matches exp_a reply || matches exp_b reply) then incr torn
          | Error _ -> incr dropped);
          Thread.yield ()
        done;
        Client.close hc)
      ()
  in
  let swaps = 6 in
  let reload_failures = ref 0 in
  for i = 1 to swaps do
    let next = if i land 1 = 1 then model_b else model in
    (match Client.reload_inline c ~name:"lna" ~image:(Snapshot.encode next) with
    | Ok _ -> ()
    | Error _ -> incr reload_failures);
    Thread.delay 0.01
  done;
  (* A corrupt image must roll back: typed refusal, old model serves on. *)
  (match Client.reload_inline c ~name:"lna" ~image:"garbage" with
  | Error (Client.Server_error { code = Protocol.Bad_snapshot; _ }) -> ()
  | _ -> check "corrupt reload refused with bad-snapshot" false);
  Thread.delay 0.02;
  stop_hammer := true;
  Thread.join hammer;
  check "reloads all succeeded" (!reload_failures = 0);
  check "hammer saw traffic during reloads" (!served > 0);
  check "zero in-flight requests dropped across reloads" (!dropped = 0);
  check "no torn model ever served" (!torn = 0);
  (match Client.ping c with
  | Ok gen ->
      check "generation advanced by exactly the successful swaps"
        (gen = gen_before + swaps)
  | Error f -> check ("ping after reload: " ^ Client.failure_to_string f) false);
  (* Back on the original model: replies bit-identical to pre-reload. *)
  (match Client.predict_typed c ~name:"lna" ~states:hstates ~xs:hxs with
  | Ok reply -> check "final model bit-identical to original" (matches exp_a reply)
  | Error f -> check ("post-reload predict: " ^ Client.failure_to_string f) false);

  Client.shutdown c;
  Client.close c;
  Server.wait server;
  check "socket file removed on stop" (not (Sys.file_exists sock));

  Sys.remove snap;
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  if !failures > 0 then begin
    Printf.eprintf "serve-smoke: %d failure(s)\n%!" !failures;
    exit 1
  end;
  print_endline
    "serve-smoke: snapshot round-trip bit-identical; 100 batched requests \
     served; faults answered with typed errors"
