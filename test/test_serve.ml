(* Serving subsystem tests: codec primitives, snapshot persistence
   (round-trip bit-identity, truncation, bit flips, version/reserved
   fields), registry LRU behavior, batch engine vs the scalar path and
   across domain counts, wire protocol round-trips, and a client/server
   loopback over a socketpair — no listener, no ports. *)

open Cbmf_linalg
open Cbmf_basis
open Cbmf_robust
open Cbmf_serve
open Helpers

(* Own RNG so this file never perturbs the shared Helpers stream other
   suites draw from. *)
let srng = Cbmf_prob.Rng.create 987654

let g () = Cbmf_prob.Rng.gaussian srng

let bits_eq_f x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)

let bits_eq xs ys =
  Array.length xs = Array.length ys && Array.for_all2 bits_eq_f xs ys

let spd n =
  let a = Mat.init n n (fun _ _ -> g ()) in
  let m = Mat.gram a in
  Mat.add_diag_inplace m (float_of_int n *. 0.5);
  Mat.symmetrize_inplace m;
  m

(* A structurally valid serving model with every term kind present. *)
let synth_model ?(dim = 6) ?(k = 4) ?(a = 10) () =
  let terms =
    Array.init a (fun j ->
        match j mod 4 with
        | 0 -> Term.Constant
        | 1 -> Term.Linear (j mod dim)
        | 2 -> Term.Square (j mod dim)
        | _ ->
            let i = j mod (dim - 1) in
            Term.Cross (i, i + 1))
  in
  {
    Model.input_dim = dim;
    n_states = k;
    terms;
    col_means = Mat.init k a (fun _ _ -> g ());
    col_scales = Array.init a (fun _ -> 0.5 +. Float.abs (g ()));
    y_means = Array.init k (fun _ -> g ());
    y_scale = 1.0 +. Float.abs (g ());
    mu = Mat.init a k (fun _ _ -> g ());
    lambda = Array.init a (fun _ -> Float.abs (g ()));
    r = Mat.init k k (fun _ _ -> g ());
    sigma0 = 0.05;
    cov = Array.init k (fun _ -> spd a);
  }

let with_temp_dir f =
  let dir = Filename.temp_file "cbmf_test_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let expect_bad name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Bad_snapshot" name
  | exception Fault.Error (Fault.Bad_snapshot _) -> ()

(* --- Codec ----------------------------------------------------------- *)

let test_codec_roundtrip () =
  let w = Codec.writer () in
  Codec.w_u8 w 0;
  Codec.w_u8 w 255;
  Codec.w_u32 w 0;
  Codec.w_u32 w 0x7FFFFFFF;
  Codec.w_i64 w Int64.min_int;
  Codec.w_string w "";
  Codec.w_string w "payload \x00\xff bytes";
  Codec.w_u32_array w [| 3; 0; 71 |];
  let specials =
    [| 0.0; -0.0; Float.nan; infinity; neg_infinity; Int64.float_of_bits 1L;
       Int64.float_of_bits 0x7FF8DEADBEEF0001L; 1.5e-310; Float.pi |]
  in
  Codec.w_f64_array w specials;
  let m = Mat.init 3 2 (fun i j -> g () +. float_of_int ((i * 2) + j)) in
  Codec.w_mat w m;
  let r = Codec.reader (Codec.contents w) in
  check_int "u8 lo" 0 (Codec.r_u8 r);
  check_int "u8 hi" 255 (Codec.r_u8 r);
  check_int "u32 lo" 0 (Codec.r_u32 r);
  check_int "u32 hi" 0x7FFFFFFF (Codec.r_u32 r);
  check_true "i64" (Int64.equal Int64.min_int (Codec.r_i64 r));
  check_true "empty string" (String.equal "" (Codec.r_string r));
  check_true "binary string"
    (String.equal "payload \x00\xff bytes" (Codec.r_string r));
  check_true "u32 array" ([| 3; 0; 71 |] = Codec.r_u32_array r);
  check_true "f64 specials bit-identical" (bits_eq specials (Codec.r_f64_array r));
  let m' = Codec.r_mat r in
  check_true "mat shape" (m'.Mat.rows = 3 && m'.Mat.cols = 2);
  check_true "mat bits" (bits_eq m.Mat.data m'.Mat.data);
  Codec.expect_end r

let test_codec_rejects () =
  let w = Codec.writer () in
  Codec.w_string w "hello";
  let s = Codec.contents w in
  (* Every strict prefix must fail, never read garbage. *)
  for len = 0 to String.length s - 1 do
    let r = Codec.reader (String.sub s 0 len) in
    match Codec.r_string r with
    | _ -> Alcotest.failf "prefix %d decoded" len
    | exception Codec.Corrupt _ -> ()
  done;
  (* Trailing bytes are an error too. *)
  let r = Codec.reader (s ^ "\x00") in
  ignore (Codec.r_string r);
  (match Codec.expect_end r with
  | _ -> Alcotest.fail "trailing byte accepted"
  | exception Codec.Corrupt _ -> ());
  (* A u32 with the sign bit set is hostile, not a negative count. *)
  let r = Codec.reader "\xff\xff\xff\xff" in
  (match Codec.r_u32 r with
  | _ -> Alcotest.fail "sign-bit u32 accepted"
  | exception Codec.Corrupt _ -> ());
  (* A length field larger than the remaining bytes must not allocate. *)
  let w = Codec.writer () in
  Codec.w_u32 w 0x10000000;
  let r = Codec.reader (Codec.contents w ^ "ab") in
  match Codec.r_string r with
  | _ -> Alcotest.fail "oversized length accepted"
  | exception Codec.Corrupt _ -> ()

let test_codec_fnv64 () =
  (* Reference FNV-1a 64-bit vectors. *)
  check_true "fnv64 empty"
    (Int64.equal 0xcbf29ce484222325L (Codec.fnv64 ""));
  check_true "fnv64 'a'" (Int64.equal 0xaf63dc4c8601ec8cL (Codec.fnv64 "a"));
  check_true "fnv64 'foobar'"
    (Int64.equal 0x85944171f73967e8L (Codec.fnv64 "foobar"));
  check_true "fnv64 range = fnv64 slice"
    (Int64.equal (Codec.fnv64 ~pos:1 ~len:3 "xfoox") (Codec.fnv64 "foo"))

(* --- Snapshot -------------------------------------------------------- *)

let test_snapshot_roundtrip () =
  List.iter
    (fun (dim, k, a) ->
      let m = synth_model ~dim ~k ~a () in
      check_true "synthetic model validates" (Model.validate m = Ok ());
      let img = Snapshot.encode m in
      let m' = Snapshot.decode img in
      check_true "decode(encode m) bit-identical" (Model.equal m' m);
      check_true "re-encode byte-identical"
        (String.equal (Snapshot.encode m') img))
    [ (2, 1, 1); (6, 4, 10); (9, 7, 23) ]

let test_snapshot_special_floats () =
  let m = synth_model () in
  let plant (d : float array) =
    d.(0) <- Float.nan;
    d.(1) <- -0.0;
    d.(2) <- Int64.float_of_bits 1L (* smallest subnormal *);
    d.(3) <- infinity;
    d.(4) <- neg_infinity;
    d.(5) <- Int64.float_of_bits 0x7FF8DEADBEEF0001L (* NaN payload *)
  in
  plant m.Model.mu.Mat.data;
  plant m.Model.cov.(0).Mat.data;
  plant m.Model.r.Mat.data;
  let img = Snapshot.encode m in
  let m' = Snapshot.decode img in
  check_true "NaN/−0/subnormal payloads round-trip bitwise" (Model.equal m' m);
  check_true "and re-encode byte-identically"
    (String.equal (Snapshot.encode m') img)

let test_snapshot_truncation () =
  let img = Snapshot.encode (synth_model ()) in
  let n = String.length img in
  (* Every header cut, then payload cuts sampled across the image. *)
  let cuts = ref [] in
  for len = 0 to 32 do cuts := len :: !cuts done;
  let step = max 1 ((n - 33) / 19) in
  let len = ref 33 in
  while !len < n do
    cuts := !len :: !cuts;
    len := !len + step
  done;
  List.iter
    (fun len ->
      expect_bad
        (Printf.sprintf "truncated at %d/%d" len n)
        (fun () -> Snapshot.decode (String.sub img 0 len)))
    !cuts

let flip_bit s bit =
  let b = Bytes.of_string s in
  let i = bit / 8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
  Bytes.to_string b

let test_snapshot_bit_flips () =
  let img = Snapshot.encode (synth_model ()) in
  let n = String.length img in
  (* Header bytes exhaustively (rotating bit), payload bytes sampled:
     magic/version/reserved/length flips hit the field checks, payload
     flips the checksum. *)
  for byte = 0 to 31 do
    expect_bad
      (Printf.sprintf "header flip @%d" byte)
      (fun () -> Snapshot.decode (flip_bit img ((byte * 8) + (byte mod 8))))
  done;
  let step = max 1 ((n - 32) / 37) in
  let byte = ref 32 in
  while !byte < n do
    expect_bad
      (Printf.sprintf "payload flip @%d" !byte)
      (fun () -> Snapshot.decode (flip_bit img ((!byte * 8) + (!byte mod 8))));
    byte := !byte + step
  done

let test_snapshot_versioning () =
  let img = Snapshot.encode (synth_model ()) in
  let patch_byte i c =
    let b = Bytes.of_string img in
    Bytes.set b i c;
    Bytes.to_string b
  in
  (* The version field is not covered by the payload checksum, so a
     future-version file is structurally pristine — it must still be
     refused, with the version named in the reason. *)
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec scan i =
      i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1))
    in
    scan 0
  in
  (match Snapshot.decode (patch_byte 8 '\x02') with
  | _ -> Alcotest.fail "future version accepted"
  | exception Fault.Error (Fault.Bad_snapshot { reason; _ }) ->
      check_true "reason names the version" (contains reason "version"));
  expect_bad "version 0" (fun () -> Snapshot.decode (patch_byte 8 '\x00'));
  expect_bad "reserved field nonzero" (fun () ->
      Snapshot.decode (patch_byte 12 '\x01'));
  expect_bad "trailing garbage" (fun () -> Snapshot.decode (img ^ "x"));
  expect_bad "empty image" (fun () -> Snapshot.decode "");
  expect_bad "foreign magic" (fun () ->
      Snapshot.decode ("NOTASNAP" ^ String.sub img 8 (String.length img - 8)))

let test_snapshot_file_io () =
  with_temp_dir (fun dir ->
      let m = synth_model () in
      let path = Filename.concat dir "m.snap" in
      Snapshot.save ~path m;
      check_true "no torn temp file left"
        (not (Sys.file_exists (path ^ ".tmp")));
      let m' = Snapshot.load ~path in
      check_true "file round-trip bit-identical" (Model.equal m' m);
      expect_bad "missing file" (fun () ->
          Snapshot.load ~path:(Filename.concat dir "absent.snap")))

let test_snapshot_injected_fault () =
  let m = synth_model () in
  let img = Snapshot.encode m in
  Inject.arm ~seed:11 ~prob:1.0 ~sites:[ "serve.decode" ] ();
  Fun.protect ~finally:Inject.disarm (fun () ->
      expect_bad "armed serve.decode" (fun () ->
          Snapshot.decode ~site:"serve.decode" img));
  check_true "decodes again once disarmed" (Model.equal (Snapshot.decode img) m)

(* --- Model ----------------------------------------------------------- *)

let test_model_validate_rejects () =
  let m = synth_model () in
  let bad name m' =
    match Model.validate m' with
    | Ok () -> Alcotest.failf "%s: validate accepted" name
    | Error _ -> ()
  in
  bad "col_scales length" { m with Model.col_scales = [| 1.0 |] };
  (let scales = Array.copy m.Model.col_scales in
   scales.(0) <- 0.0;
   bad "zero column scale" { m with Model.col_scales = scales });
  (let terms = Array.copy m.Model.terms in
   terms.(0) <- Term.Linear m.Model.input_dim;
   bad "term variable out of range" { m with Model.terms = terms });
  (let cov = Array.copy m.Model.cov in
   cov.(0) <- Mat.create 1 1;
   bad "cov block shape" { m with Model.cov = cov });
  bad "NaN sigma0" { m with Model.sigma0 = Float.nan };
  bad "zero y_scale" { m with Model.y_scale = 0.0 };
  bad "zero states" { m with Model.n_states = 0 }

let test_model_equal_is_bitwise () =
  let m = synth_model () in
  let img = Snapshot.encode m in
  let m' = Snapshot.decode img in
  check_true "copies equal" (Model.equal m m');
  m'.Model.mu.Mat.data.(0) <-
    Int64.float_of_bits
      (Int64.logxor 1L (Int64.bits_of_float m'.Model.mu.Mat.data.(0)));
  check_true "one flipped mantissa bit detected" (not (Model.equal m m'))

let test_model_invalid_args () =
  let m = synth_model () in
  check_raises_invalid "bad state" (fun () ->
      Model.predict m ~state:m.Model.n_states (Array.make m.Model.input_dim 0.0));
  check_raises_invalid "bad input length" (fun () ->
      Model.predict m ~state:0 (Array.make (m.Model.input_dim + 1) 0.0))

(* --- Registry -------------------------------------------------------- *)

let test_registry_basics () =
  let reg = Registry.create () in
  let m = synth_model () in
  Registry.put reg ~name:"b" m;
  Registry.put reg ~name:"a" m;
  check_true "names sorted" (Registry.names reg = [ "a"; "b" ]);
  check_true "get hits" (Model.equal (Registry.get reg ~name:"a") m);
  (match Registry.get reg ~name:"zzz" with
  | _ -> Alcotest.fail "unknown name returned a model"
  | exception Not_found -> ());
  check_true "find on unknown"
    (match Registry.find reg ~name:"zzz" with None -> true | Some _ -> false);
  Registry.remove reg ~name:"a";
  check_true "removed" (Registry.names reg = [ "b" ]);
  let s = Registry.stats reg in
  check_int "one resident left" 1 s.Registry.resident_models;
  check_true "hit counted" (s.Registry.hits >= 1)

let test_registry_lazy_and_lru () =
  with_temp_dir (fun dir ->
      let m = synth_model () in
      let b = Model.byte_size m in
      let path i =
        let p = Filename.concat dir (Printf.sprintf "m%d.snap" i) in
        Snapshot.save ~path:p m;
        p
      in
      (* Budget fits two residents, never three. *)
      let reg = Registry.create ~max_bytes:((2 * b) + (b / 2)) () in
      Registry.add_path reg ~name:"m1" (path 1);
      Registry.add_path reg ~name:"m2" (path 2);
      Registry.add_path reg ~name:"m3" (path 3);
      check_int "lazy slots are not resident" 0
        (Registry.stats reg).Registry.resident_models;
      ignore (Registry.get reg ~name:"m1") (* miss + load *);
      ignore (Registry.get reg ~name:"m1") (* hit *);
      ignore (Registry.get reg ~name:"m2") (* miss + load *);
      let s = Registry.stats reg in
      check_int "two resident" 2 s.Registry.resident_models;
      check_int "one hit" 1 s.Registry.hits;
      check_int "two misses" 2 s.Registry.misses;
      check_int "two loads" 2 s.Registry.loads;
      check_int "no evictions yet" 0 s.Registry.evictions;
      (* Loading m3 busts the budget: m1 (least recently used) demotes. *)
      ignore (Registry.get reg ~name:"m3");
      let s = Registry.stats reg in
      check_int "still two resident" 2 s.Registry.resident_models;
      check_int "one eviction" 1 s.Registry.evictions;
      check_true "budget respected" (s.Registry.resident_bytes <= (2 * b) + (b / 2));
      (* The demoted slot is lazy again, not gone: a hit reloads it. *)
      check_true "demoted slot still registered"
        (Registry.names reg = [ "m1"; "m2"; "m3" ]);
      let loads0 = s.Registry.loads in
      ignore (Registry.get reg ~name:"m1");
      check_int "demoted slot reloaded" (loads0 + 1)
        (Registry.stats reg).Registry.loads)

let test_registry_put_only_eviction () =
  with_temp_dir (fun dir ->
      let m = synth_model () in
      let b = Model.byte_size m in
      let p = Filename.concat dir "q.snap" in
      Snapshot.save ~path:p m;
      let reg = Registry.create ~max_bytes:(b + (b / 2)) () in
      Registry.put reg ~name:"p" m;
      Registry.add_path reg ~name:"q" p;
      (* Loading q evicts p; with no backing path, p is gone for good. *)
      ignore (Registry.get reg ~name:"q");
      check_true "path-less slot dropped on eviction"
        (match Registry.find reg ~name:"p" with
        | None -> true
        | Some _ -> false);
      check_true "only the path-backed slot survives"
        (Registry.names reg = [ "q" ]))

(* --- Engine ---------------------------------------------------------- *)

let check_batch_matches_scalar m n =
  let dim = m.Model.input_dim and k = m.Model.n_states in
  let xs = Mat.init n dim (fun _ _ -> g ()) in
  let states = Array.init n (fun i -> i * 7 mod k) in
  let means, sds = Engine.predict_batch m ~states ~xs in
  for i = 0 to n - 1 do
    let mean, sd = Model.predict m ~state:states.(i) (Mat.row xs i) in
    if not (bits_eq_f mean means.(i) && bits_eq_f sd sds.(i)) then
      Alcotest.failf "batch/scalar mismatch at point %d of %d" i n
  done

let test_engine_matches_scalar () =
  List.iter
    (fun (dim, k, a, n) -> check_batch_matches_scalar (synth_model ~dim ~k ~a ()) n)
    [ (4, 3, 6, 1); (6, 4, 10, 64) (* exactly one chunk *);
      (6, 4, 10, 130) (* spans three chunks *); (5, 2, 7, 200) ]

let test_engine_batch_of_one () =
  let m = synth_model () in
  let x = Array.init m.Model.input_dim (fun _ -> g ()) in
  let m1, s1 = Engine.predict m ~state:1 x in
  let m2, s2 = Model.predict m ~state:1 x in
  check_true "Engine.predict = Model.predict bitwise"
    (bits_eq_f m1 m2 && bits_eq_f s1 s2)

let test_engine_domain_invariance () =
  let m = synth_model ~dim:6 ~k:4 ~a:12 () in
  let n = 150 in
  let xs = Mat.init n m.Model.input_dim (fun _ _ -> g ()) in
  let states = Array.init n (fun i -> i mod m.Model.n_states) in
  let run d =
    Cbmf_parallel.Pool.set_default_size d;
    Engine.predict_batch m ~states ~xs
  in
  Fun.protect
    ~finally:(fun () ->
      Cbmf_parallel.Pool.set_default_size (Cbmf_parallel.Pool.env_domains ()))
    (fun () ->
      let m1, s1 = run 1 in
      let m2, s2 = run 2 in
      let m4, s4 = run 4 in
      check_true "1 vs 2 domains bit-identical" (bits_eq m1 m2 && bits_eq s1 s2);
      check_true "1 vs 4 domains bit-identical" (bits_eq m1 m4 && bits_eq s1 s4))

let test_engine_invalid_args () =
  let m = synth_model () in
  let dim = m.Model.input_dim in
  check_raises_invalid "states length mismatch" (fun () ->
      Engine.predict_batch m ~states:[| 0 |] ~xs:(Mat.create 2 dim));
  check_raises_invalid "wrong input dim" (fun () ->
      Engine.predict_batch m ~states:[| 0 |] ~xs:(Mat.create 1 (dim + 1)));
  check_raises_invalid "state out of range" (fun () ->
      Engine.predict_batch m ~states:[| m.Model.n_states |] ~xs:(Mat.create 1 dim))

(* --- Protocol -------------------------------------------------------- *)

let test_protocol_roundtrip () =
  let reqs =
    [ Protocol.Load { name = "m"; source = Protocol.Path "/tmp/m.snap" };
      Protocol.Load { name = ""; source = Protocol.Inline "raw \x00\xff bytes" };
      Protocol.Predict
        {
          name = "lna";
          states = [| 0; 3; 1 |];
          xs = Mat.init 3 2 (fun i j -> float_of_int ((10 * i) + j));
        };
      Protocol.Stats; Protocol.Shutdown ]
  in
  List.iter
    (fun req ->
      check_true "request round-trips"
        (Protocol.decode_request (Protocol.encode_request req) = req))
    reqs;
  let reps =
    [ Protocol.Loaded { n_active = 12; n_states = 4; bytes = 34_000 };
      Protocol.Predicted { means = [| 1.5; -2.25 |]; sds = [| 0.5; 0.125 |] };
      Protocol.Stats_json "{\"requests\":{}}"; Protocol.Shutting_down ]
    @ List.map
        (fun code -> Protocol.Error { code; message = "m" })
        [ Protocol.Bad_frame; Protocol.Unknown_op; Protocol.Bad_snapshot;
          Protocol.Model_not_found; Protocol.Bad_request; Protocol.Internal ]
  in
  List.iter
    (fun rep ->
      check_true "reply round-trips"
        (Protocol.decode_reply (Protocol.encode_reply rep) = rep))
    reps

let test_protocol_rejects () =
  let corrupt name f =
    match f () with
    | _ -> Alcotest.failf "%s: decoded" name
    | exception Codec.Corrupt _ -> ()
  in
  corrupt "garbage request" (fun () -> Protocol.decode_request "\xde\xad\xbe\xef");
  corrupt "empty request" (fun () -> Protocol.decode_request "");
  corrupt "unknown opcode" (fun () -> Protocol.decode_request "\x63");
  corrupt "trailing bytes" (fun () ->
      Protocol.decode_request (Protocol.encode_request Protocol.Stats ^ "\x00"));
  corrupt "truncated predict" (fun () ->
      let enc =
        Protocol.encode_request
          (Protocol.Predict
             { name = "m"; states = [| 0 |]; xs = Mat.create 1 3 })
      in
      Protocol.decode_request (String.sub enc 0 (String.length enc - 5)));
  corrupt "garbage reply" (fun () -> Protocol.decode_reply "\x7f\x00")

let test_protocol_framed_writer () =
  (* The zero-copy framed send paths must put byte-identical frames on
     the wire to the encode-then-frame path — read each frame back
     through the normal reader and compare with the string encoder. *)
  let xs = Mat.init 3 4 (fun i j -> float_of_int ((5 * i) - j) /. 7.0) in
  let reqs =
    [ Protocol.Stats;
      Protocol.Predict { name = "m"; states = [| 0; 2; 1 |]; xs };
      Protocol.Predict_deadline
        { name = "m"; states = [| 1; 1; 0 |]; xs; deadline_ms = 42 };
      Protocol.Load { name = "w"; source = Protocol.Inline "img \x00\xff" } ]
  in
  List.iter
    (fun req ->
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Protocol.write_request a req;
      let body = Protocol.read_frame b in
      Unix.close a;
      Unix.close b;
      check_true "framed request bytes identical"
        (String.equal body (Protocol.encode_request req)))
    reqs;
  let reps =
    [ Protocol.Predicted
        { means = [| 1.5; nan; infinity |]; sds = [| 0.25; 0.5; 1.0 |] };
      Protocol.Overloaded { queue_depth = 3; retry_after_ms = 17 };
      Protocol.Error { code = Protocol.Bad_request; message = "shape" } ]
  in
  List.iter
    (fun rep ->
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Protocol.write_reply a rep;
      let body = Protocol.read_frame b in
      Unix.close a;
      Unix.close b;
      check_true "framed reply bytes identical"
        (String.equal body (Protocol.encode_reply rep)))
    reps

let test_protocol_roundtrip_v2 () =
  (* The additive messages: ping/reload/deadline ops and their replies. *)
  let xs = Mat.init 2 3 (fun i j -> float_of_int ((7 * i) - j)) in
  let reqs =
    [ Protocol.Ping;
      Protocol.Reload { name = "m"; source = Protocol.Path "/tmp/m.snap" };
      Protocol.Reload { name = "m"; source = Protocol.Inline "img \x00\xff" };
      Protocol.Predict_deadline
        { name = "lna"; states = [| 1; 0 |]; xs; deadline_ms = 250 } ]
  in
  List.iter
    (fun req ->
      check_true "v2 request round-trips"
        (Protocol.decode_request (Protocol.encode_request req) = req))
    reqs;
  let reps =
    [ Protocol.Pong { generation = 7 };
      Protocol.Reloaded { generation = 3; n_active = 9; n_states = 4; bytes = 512 };
      Protocol.Overloaded { queue_depth = 12; retry_after_ms = 50 };
      Protocol.Error { code = Protocol.Deadline_exceeded; message = "late" } ]
  in
  List.iter
    (fun rep ->
      check_true "v2 reply round-trips"
        (Protocol.decode_reply (Protocol.encode_reply rep) = rep))
    reps

let test_protocol_wire_compat () =
  (* The pre-deadline/reload wire encoding is frozen.  A request body
     hand-rolled exactly as the old encoder wrote it must decode to the
     same value, and the old messages must keep claiming their old
     opcode/tag bytes — additive versioning means old clients never see
     a byte they don't know. *)
  let xs = Mat.init 2 3 (fun i j -> float_of_int ((5 * i) + j) +. 0.25) in
  let old_predict_body =
    let w = Codec.writer () in
    Codec.w_u8 w 2 (* frozen op_predict *);
    Codec.w_string w "m";
    Codec.w_u32_array w [| 0; 1 |];
    Codec.w_mat w xs;
    Codec.contents w
  in
  (match Protocol.decode_request old_predict_body with
  | Protocol.Predict { name; states; xs = xs' } ->
      check_true "old predict decodes intact"
        (name = "m" && states = [| 0; 1 |] && bits_eq xs.Mat.data xs'.Mat.data)
  | _ -> Alcotest.fail "old predict bytes decoded to something else");
  let first_byte s = Char.code s.[0] in
  List.iter
    (fun (req, op) ->
      check_int "frozen opcode" op (first_byte (Protocol.encode_request req)))
    [ (Protocol.Load { name = "m"; source = Protocol.Path "p" }, 1);
      (Protocol.Predict { name = "m"; states = [| 0 |]; xs = Mat.create 1 1 }, 2);
      (Protocol.Stats, 3); (Protocol.Shutdown, 4);
      (* ...and the new ops only ever claim fresh numbers. *)
      (Protocol.Ping, 5);
      (Protocol.Reload { name = "m"; source = Protocol.Path "p" }, 6);
      (Protocol.Predict_deadline
         { name = "m"; states = [| 0 |]; xs = Mat.create 1 1; deadline_ms = 1 },
       7) ];
  List.iter
    (fun (rep, tag) ->
      check_int "frozen reply tag" tag (first_byte (Protocol.encode_reply rep)))
    [ (Protocol.Loaded { n_active = 1; n_states = 1; bytes = 1 }, 1);
      (Protocol.Predicted { means = [||]; sds = [||] }, 2);
      (Protocol.Stats_json "{}", 3); (Protocol.Shutting_down, 4);
      (Protocol.Pong { generation = 0 }, 5);
      (Protocol.Reloaded { generation = 1; n_active = 1; n_states = 1; bytes = 1 },
       6);
      (Protocol.Overloaded { queue_depth = 0; retry_after_ms = 0 }, 7);
      (Protocol.Error { code = Protocol.Bad_frame; message = "" }, 255) ];
  (* Frozen error-code bytes, including the new code on a fresh number. *)
  List.iter
    (fun (code, n) ->
      let body = Protocol.encode_reply (Protocol.Error { code; message = "" }) in
      check_int "frozen error code" n (Char.code body.[1]))
    [ (Protocol.Bad_frame, 1); (Protocol.Unknown_op, 2);
      (Protocol.Bad_snapshot, 3); (Protocol.Model_not_found, 4);
      (Protocol.Bad_request, 5); (Protocol.Internal, 6);
      (Protocol.Deadline_exceeded, 7) ]

(* --- Registry generations -------------------------------------------- *)

let test_registry_reload_generation () =
  with_temp_dir (fun dir ->
      let m1 = synth_model ~dim:5 ~k:3 ~a:8 () in
      let m2 = synth_model ~dim:6 ~k:2 ~a:7 () in
      let reg = Registry.create () in
      check_int "unknown name is generation 0" 0
        (Registry.generation reg ~name:"x");
      Registry.put reg ~name:"x" m1;
      check_int "put is generation 1" 1 (Registry.generation reg ~name:"x");
      let gen = Registry.reload reg ~name:"x" m2 in
      check_int "reload bumps to 2" 2 gen;
      check_true "new model visible immediately"
        (Model.equal (Registry.get reg ~name:"x") m2);
      (* A corrupt snapshot must not touch the slot: typed fault out,
         old model keeps serving, generation unchanged. *)
      let bad = Filename.concat dir "bad.snap" in
      let oc = open_out_bin bad in
      output_string oc "not a snapshot";
      close_out oc;
      expect_bad "corrupt reload_path" (fun () ->
          Registry.reload_path reg ~name:"x" bad);
      check_true "old model still serving after failed reload"
        (Model.equal (Registry.get reg ~name:"x") m2);
      check_int "generation unchanged by failed reload" 2
        (Registry.generation reg ~name:"x");
      (* A good snapshot swaps in and re-binds the slot to the path. *)
      let good = Filename.concat dir "good.snap" in
      Snapshot.save ~path:good m1;
      let m', gen = Registry.reload_path reg ~name:"x" good in
      check_int "path reload bumps to 3" 3 gen;
      check_true "decoded model returned" (Model.equal m' m1);
      check_true "swapped model visible"
        (Model.equal (Registry.get reg ~name:"x") m1);
      let s = Registry.stats reg in
      check_int "two successful reloads counted" 2 s.Registry.reloads;
      check_int "global generation counts every swap" 3 s.Registry.generation)

let test_registry_concurrent () =
  (* Parallel readers, a reload writer and a put/remove churner on one
     registry: no reader may ever observe a torn model (anything other
     than bit-exactly one of the two swapped values), and the final
     accounting must balance. *)
  let m_a = synth_model ~dim:5 ~k:3 ~a:8 () in
  let m_b = synth_model ~dim:7 ~k:2 ~a:6 () in
  let reg = Registry.create () in
  Registry.put reg ~name:"hot" m_a;
  let swaps = 200 in
  let writer_done = ref false in
  let torn = ref 0 in
  let writer =
    Thread.create
      (fun () ->
        for i = 1 to swaps do
          ignore (Registry.reload reg ~name:"hot" (if i land 1 = 0 then m_a else m_b))
        done;
        writer_done := true)
      ()
  in
  let readers =
    List.init 4 (fun _ ->
        Thread.create
          (fun () ->
            let last_gen = ref 0 in
            while not !writer_done do
              (match Registry.find reg ~name:"hot" with
              | Some m ->
                  if not (Model.equal m m_a || Model.equal m m_b) then incr torn
              | None -> incr torn);
              (* The per-slot generation is monotone under swaps. *)
              let g = Registry.generation reg ~name:"hot" in
              if g < !last_gen then incr torn;
              last_gen := g;
              Thread.yield ()
            done)
          ())
  in
  let churner =
    Thread.create
      (fun () ->
        for i = 0 to 99 do
          let name = Printf.sprintf "tmp%d" (i mod 7) in
          Registry.put reg ~name m_a;
          if i mod 3 = 0 then Registry.remove reg ~name
        done)
      ()
  in
  Thread.join writer;
  List.iter Thread.join readers;
  Thread.join churner;
  check_int "no torn reads" 0 !torn;
  check_int "slot generation = put + every swap" (swaps + 1)
    (Registry.generation reg ~name:"hot");
  let s = Registry.stats reg in
  check_int "every swap counted as a reload" swaps s.Registry.reloads;
  (* Resident accounting balances: stats vs a fresh walk of the slots. *)
  let names = Registry.names reg in
  let bytes =
    List.fold_left
      (fun acc name ->
        match Registry.find reg ~name with
        | Some m -> acc + Model.byte_size m
        | None -> acc)
      0 names
  in
  check_int "resident model count balances" (List.length names)
    s.Registry.resident_models;
  check_int "resident byte accounting balances" bytes s.Registry.resident_bytes

(* --- Engine deadlines ------------------------------------------------- *)

let test_engine_deadline () =
  let m = synth_model ~dim:6 ~k:4 ~a:10 () in
  let n = 150 in
  let xs = Mat.init n m.Model.input_dim (fun _ _ -> g ()) in
  let states = Array.init n (fun i -> i mod m.Model.n_states) in
  (* A generous budget changes nothing, bit for bit. *)
  let m0, s0 = Engine.predict_batch m ~states ~xs in
  let m1, s1 =
    Engine.predict_batch ~deadline:(Unix.gettimeofday () +. 60.0) m ~states ~xs
  in
  check_true "generous deadline bit-identical" (bits_eq m0 m1 && bits_eq s0 s1);
  (* An already-expired budget raises the typed fault, site-tagged. *)
  match Engine.predict_batch ~deadline:(Unix.gettimeofday () -. 1.0) m ~states ~xs with
  | _ -> Alcotest.fail "expired deadline completed"
  | exception Fault.Error (Fault.Early_stop { site; _ }) ->
      check_true "fault carries the serve.deadline site"
        (String.equal site Engine.deadline_site)

(* --- Client/server loopback over a socketpair ------------------------ *)

let with_loopback registry f =
  let srv_fd, cl_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let th = Thread.create (fun () -> Server.serve_fd ~registry srv_fd) () in
  let client = Client.of_fd cl_fd in
  Fun.protect
    ~finally:(fun () ->
      (try Client.close client with Unix.Unix_error _ -> ());
      Thread.join th)
    (fun () -> f client)

let test_loopback_serving () =
  let m = synth_model ~dim:5 ~k:3 ~a:8 () in
  let registry = Registry.create () in
  Registry.put registry ~name:"m" m;
  with_loopback registry (fun c ->
      (* Predictions over the wire match the local engine bitwise. *)
      let n = 17 in
      let xs = Mat.init n m.Model.input_dim (fun _ _ -> g ()) in
      let states = Array.init n (fun i -> i mod m.Model.n_states) in
      let lm, ls = Engine.predict_batch m ~states ~xs in
      (match Client.predict c ~name:"m" ~states ~xs with
      | Ok (rm, rs) ->
          check_true "served predictions bit-identical"
            (bits_eq lm rm && bits_eq ls rs)
      | Error e -> Alcotest.failf "predict: %s" e);
      (* Inline load, then predict against the shipped model. *)
      (match Client.load_inline c ~name:"w" ~image:(Snapshot.encode m) with
      | Ok (n_active, n_states, _) ->
          check_true "loaded shape"
            (n_active = Model.n_active m && n_states = m.Model.n_states)
      | Error e -> Alcotest.failf "load_inline: %s" e);
      (match Client.predict c ~name:"w" ~states ~xs with
      | Ok (rm, rs) ->
          check_true "inline-loaded model serves identically"
            (bits_eq lm rm && bits_eq ls rs)
      | Error e -> Alcotest.failf "predict after load: %s" e);
      Client.shutdown c)

let test_loopback_errors () =
  let m = synth_model ~dim:4 ~k:2 ~a:5 () in
  let registry = Registry.create () in
  Registry.put registry ~name:"m" m;
  with_loopback registry (fun c ->
      let expect_code name code reply =
        match reply with
        | Protocol.Error { code = got; _ } when got = code -> ()
        | _ -> Alcotest.failf "%s: expected %s" name (Protocol.error_code_name code)
      in
      (* Unknown model. *)
      expect_code "unknown model" Protocol.Model_not_found
        (Client.call c
           (Protocol.Predict
              { name = "nope"; states = [| 0 |]; xs = Mat.create 1 4 }));
      (* Shape mismatch from the engine. *)
      expect_code "bad shape" Protocol.Bad_request
        (Client.call c
           (Protocol.Predict { name = "m"; states = [| 0 |]; xs = Mat.create 1 9 }));
      (* Corrupt inline snapshot. *)
      expect_code "corrupt image" Protocol.Bad_snapshot
        (Client.call c
           (Protocol.Load { name = "x"; source = Protocol.Inline "garbage" }));
      (* Injected decode fault: same typed reply as real corruption. *)
      Inject.arm ~seed:5 ~prob:1.0 ~sites:[ "serve.decode" ] ();
      Fun.protect ~finally:Inject.disarm (fun () ->
          expect_code "injected decode fault" Protocol.Bad_snapshot
            (Client.call c
               (Protocol.Load
                  { name = "x"; source = Protocol.Inline (Snapshot.encode m) })));
      (* Malformed frame: typed error, connection survives. *)
      expect_code "malformed frame" Protocol.Bad_frame
        (Client.send_raw c "\xde\xad\xbe\xef");
      (match Client.predict c ~name:"m" ~states:[| 1 |] ~xs:(Mat.create 1 4) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "connection died after bad frame: %s" e);
      (* Stats blob reaches the client. *)
      (match Client.stats c with
      | Ok json ->
          check_true "stats is json" (String.length json > 2 && json.[0] = '{')
      | Error e -> Alcotest.failf "stats: %s" e);
      Client.shutdown c)

let test_loopback_wire_compat () =
  (* A client built before ping/reload/deadlines existed: its predict
     frames are hand-rolled with the frozen pre-extension encoding and
     must keep getting byte-correct predict replies. *)
  let m = synth_model ~dim:5 ~k:3 ~a:8 () in
  let registry = Registry.create () in
  Registry.put registry ~name:"m" m;
  with_loopback registry (fun c ->
      let n = 9 in
      let xs = Mat.init n m.Model.input_dim (fun _ _ -> g ()) in
      let states = Array.init n (fun i -> i mod m.Model.n_states) in
      let lm, ls = Engine.predict_batch m ~states ~xs in
      let old_body =
        let w = Codec.writer () in
        Codec.w_u8 w 2 (* frozen op_predict *);
        Codec.w_string w "m";
        Codec.w_u32_array w states;
        Codec.w_mat w xs;
        Codec.contents w
      in
      (match Client.send_raw c old_body with
      | Protocol.Predicted { means; sds } ->
          check_true "old-wire predict answered bit-identically"
            (bits_eq lm means && bits_eq ls sds)
      | _ -> Alcotest.fail "old-wire predict got a non-predict reply");
      Client.shutdown c)

let test_loopback_deadline () =
  let m = synth_model ~dim:5 ~k:3 ~a:8 () in
  let registry = Registry.create () in
  Registry.put registry ~name:"m" m;
  with_loopback registry (fun c ->
      let n = 20 in
      let xs = Mat.init n m.Model.input_dim (fun _ _ -> g ()) in
      let states = Array.init n (fun i -> i mod m.Model.n_states) in
      let lm, ls = Engine.predict_batch m ~states ~xs in
      (* Generous client budget: identical answer. *)
      (match Client.predict_deadline c ~name:"m" ~states ~xs ~deadline_ms:60_000 with
      | Ok (rm, rs) ->
          check_true "deadline predict bit-identical" (bits_eq lm rm && bits_eq ls rs)
      | Error f -> Alcotest.failf "deadline predict: %s" (Client.failure_to_string f));
      (* Zero budget: typed Deadline_exceeded, not a hang or a hangup. *)
      (match Client.predict_deadline c ~name:"m" ~states ~xs ~deadline_ms:0 with
      | Error (Client.Server_error { code = Protocol.Deadline_exceeded; _ }) -> ()
      | Ok _ -> Alcotest.fail "zero deadline succeeded"
      | Error f ->
          Alcotest.failf "zero deadline: %s" (Client.failure_to_string f));
      (* The connection survives a deadline miss. *)
      (match Client.predict_typed c ~name:"m" ~states ~xs with
      | Ok (rm, rs) ->
          check_true "connection healthy after deadline miss"
            (bits_eq lm rm && bits_eq ls rs)
      | Error f -> Alcotest.failf "after miss: %s" (Client.failure_to_string f));
      Client.shutdown c)

let test_loopback_reload () =
  (* Hot swap over the wire: predicts before and after must match the
     respective models bitwise, the generation must advance, and a
     corrupt image must leave the old model serving. *)
  let m1 = synth_model ~dim:5 ~k:3 ~a:8 () in
  let m2 = synth_model ~dim:5 ~k:3 ~a:8 () in
  let registry = Registry.create () in
  Registry.put registry ~name:"m" m1;
  with_loopback registry (fun c ->
      let n = 11 in
      let xs = Mat.init n m1.Model.input_dim (fun _ _ -> g ()) in
      let states = Array.init n (fun i -> i mod m1.Model.n_states) in
      let expect model tag =
        let lm, ls = Engine.predict_batch model ~states ~xs in
        match Client.predict_typed c ~name:"m" ~states ~xs with
        | Ok (rm, rs) ->
            check_true tag (bits_eq lm rm && bits_eq ls rs)
        | Error f -> Alcotest.failf "%s: %s" tag (Client.failure_to_string f)
      in
      expect m1 "serving m1 before reload";
      (match Client.ping c with
      | Ok gen -> check_int "generation before reload" 1 gen
      | Error f -> Alcotest.failf "ping: %s" (Client.failure_to_string f));
      (match Client.reload_inline c ~name:"m" ~image:(Snapshot.encode m2) with
      | Ok (generation, n_active, n_states, _) ->
          check_int "slot generation bumped" 2 generation;
          check_true "reloaded shape"
            (n_active = Model.n_active m2 && n_states = m2.Model.n_states)
      | Error f -> Alcotest.failf "reload: %s" (Client.failure_to_string f));
      expect m2 "serving m2 after reload";
      (* Bad image: typed error, m2 keeps serving, generation frozen. *)
      (match Client.reload_inline c ~name:"m" ~image:"garbage" with
      | Error (Client.Server_error { code = Protocol.Bad_snapshot; _ }) -> ()
      | Ok _ -> Alcotest.fail "corrupt reload accepted"
      | Error f -> Alcotest.failf "corrupt reload: %s" (Client.failure_to_string f));
      expect m2 "old model survives failed reload";
      (match Client.ping c with
      | Ok gen -> check_int "generation frozen by failed reload" 2 gen
      | Error f -> Alcotest.failf "ping: %s" (Client.failure_to_string f));
      Client.shutdown c)

let test_client_connection_lost () =
  (* Every transport death folds into the typed retryable constructor —
     never a raw exception out of the _typed entry points. *)
  let xs = Mat.create 1 4 in
  (* Peer closed before the request: the write or the reply read dies. *)
  let srv_fd, cl_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close srv_fd;
  let c = Client.of_fd cl_fd in
  (match Client.predict_typed c ~name:"m" ~states:[| 0 |] ~xs with
  | Error (Client.Connection_lost _) -> ()
  | Ok _ -> Alcotest.fail "predict against closed peer succeeded"
  | Error f -> Alcotest.failf "expected Connection_lost, got %s"
      (Client.failure_to_string f));
  Client.close c;
  (* Peer hangs up after reading the request (a crashed worker). *)
  let srv_fd, cl_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let th =
    Thread.create
      (fun () ->
        (try ignore (Protocol.read_frame srv_fd) with _ -> ());
        Unix.close srv_fd)
      ()
  in
  let c = Client.of_fd cl_fd in
  (match Client.predict_typed c ~name:"m" ~states:[| 0 |] ~xs with
  | Error (Client.Connection_lost _) -> ()
  | Ok _ -> Alcotest.fail "predict against hangup succeeded"
  | Error f -> Alcotest.failf "expected Connection_lost, got %s"
      (Client.failure_to_string f));
  Thread.join th;
  Client.close c;
  check_true "retryable taxonomy"
    (Client.retryable (Client.Connection_lost "x")
    && Client.retryable (Client.Overloaded { queue_depth = 1; retry_after_ms = 1 })
    && (not
          (Client.retryable
             (Client.Server_error
                { code = Protocol.Model_not_found; message = "" })))
    && not (Client.retryable (Client.Unexpected "x")))

(* --- Full server: admission control, drain, failover ------------------ *)

let with_server_dir f =
  with_temp_dir (fun dir -> f dir)

let start_server ?(config = Server.default_config) ~dir ~name model =
  let registry = Registry.create () in
  Registry.put registry ~name model;
  let path = Filename.concat dir (Printf.sprintf "srv-%d.sock" (Unix.getpid ())) in
  Server.start ~config ~registry (Unix.ADDR_UNIX path)

let test_server_shed_overload () =
  let m = synth_model ~dim:4 ~k:2 ~a:5 () in
  with_server_dir (fun dir ->
      let config =
        { Server.default_config with
          workers = 1;
          queue_cap = 1;
          timeout = 5.0;
          retry_after_ms = 17;
        }
      in
      let srv = start_server ~config ~dir ~name:"m" m in
      let addr = Server.addr srv in
      let conn () =
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd addr;
        fd
      in
      (* Wedge the single worker with an idle connection, then fill the
         one queue slot with another; the third arrival must be shed
         with a typed Overloaded reply — the acceptor never blocks. *)
      let c0 = conn () in
      Thread.delay 0.05;
      let c1 = conn () in
      Thread.delay 0.05;
      let c2 = conn () in
      (match Protocol.decode_reply (Protocol.read_frame c2) with
      | Protocol.Overloaded { queue_depth; retry_after_ms } ->
          check_int "shed reply reports the queue depth" 1 queue_depth;
          check_int "shed reply carries the retry hint" 17 retry_after_ms
      | _ -> Alcotest.fail "third connection was not shed");
      (* The shed socket is closed server-side: EOF next. *)
      (match Protocol.read_frame c2 with
      | _ -> Alcotest.fail "shed connection stayed open"
      | exception Protocol.Closed -> ());
      Unix.close c2;
      check_true "shed counted" (Stats.sheds (Server.stats srv) >= 1);
      (* Accepted connections still serve normally. *)
      let cl = Client.of_fd c0 in
      (match Client.predict_typed cl ~name:"m" ~states:[| 0 |]
               ~xs:(Mat.init 1 4 (fun _ _ -> g ()))
       with
      | Ok _ -> ()
      | Error f -> Alcotest.failf "wedged conn predict: %s"
          (Client.failure_to_string f));
      Client.close cl;
      Unix.close c1;
      Server.stop srv)

let test_server_graceful_drain () =
  let m = synth_model ~dim:5 ~k:3 ~a:8 () in
  with_server_dir (fun dir ->
      let config =
        { Server.default_config with workers = 1; drain_timeout = 2.0 }
      in
      let srv = start_server ~config ~dir ~name:"m" m in
      let addr = Server.addr srv in
      let n = 40 in
      let xs = Mat.init n m.Model.input_dim (fun _ _ -> g ()) in
      let states = Array.init n (fun i -> i mod m.Model.n_states) in
      let lm, ls = Engine.predict_batch m ~states ~xs in
      (* Slow the reply down so the stop request provably lands while
         the request is in flight. *)
      Inject.arm ~seed:3 ~prob:1.0 ~sites:[ "serve.slow_reply" ] ();
      Fun.protect ~finally:Inject.disarm (fun () ->
          let c = Client.connect addr in
          let result = ref (Error (Client.Unexpected "not run")) in
          let th =
            Thread.create
              (fun () -> result := Client.predict_typed c ~name:"m" ~states ~xs)
              ()
          in
          Thread.delay 0.005;
          Server.request_stop srv;
          Thread.join th;
          (match !result with
          | Ok (rm, rs) ->
              check_true "in-flight predict survived stop bit-identically"
                (bits_eq lm rm && bits_eq ls rs)
          | Error f ->
              Alcotest.failf "in-flight predict dropped by stop: %s"
                (Client.failure_to_string f));
          Client.close c;
          Server.wait srv))

let test_server_drain_cutoff () =
  (* A connection that is idle (wedging its worker) must not block
     shutdown forever: past drain_timeout it is cut off cleanly and
     stop returns. *)
  let m = synth_model ~dim:4 ~k:2 ~a:5 () in
  with_server_dir (fun dir ->
      let config =
        { Server.default_config with workers = 1; drain_timeout = 0.2 }
      in
      let srv = start_server ~config ~dir ~name:"m" m in
      let addr = Server.addr srv in
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd addr;
      Thread.delay 0.05 (* let the worker pick it up *);
      let t0 = Unix.gettimeofday () in
      Server.stop srv;
      let elapsed = Unix.gettimeofday () -. t0 in
      check_true "stop bounded by the drain window" (elapsed < 2.0);
      (* The wedged client sees a clean close, not garbage. *)
      (match Protocol.read_frame fd with
      | _ -> Alcotest.fail "cut-off connection produced a frame"
      | exception Protocol.Closed -> ()
      | exception Codec.Corrupt _ -> ()
      | exception Unix.Unix_error _ -> ());
      Unix.close fd)

let test_with_failover () =
  let m = synth_model ~dim:5 ~k:3 ~a:8 () in
  with_server_dir (fun dir ->
      let srv = start_server ~dir ~name:"m" m in
      let live = Server.addr srv in
      let dead = Unix.ADDR_UNIX (Filename.concat dir "nobody-home.sock") in
      let n = 7 in
      let xs = Mat.init n m.Model.input_dim (fun _ _ -> g ()) in
      let states = Array.init n (fun i -> i mod m.Model.n_states) in
      let lm, ls = Engine.predict_batch m ~states ~xs in
      (* First replica dead: failover lands on the second. *)
      (match
         Client.with_failover ~base_backoff:0.001 [ dead; live ] (fun c ->
             Client.predict_typed c ~name:"m" ~states ~xs)
       with
      | Ok (rm, rs) ->
          check_true "failover answer bit-identical" (bits_eq lm rm && bits_eq ls rs)
      | Error f -> Alcotest.failf "failover: %s" (Client.failure_to_string f));
      (* Typed server answers are final — no retry storm on user error. *)
      (match
         Client.with_failover ~base_backoff:0.001 [ live ] (fun c ->
             Client.predict_typed c ~name:"nope" ~states ~xs)
       with
      | Error (Client.Server_error { code = Protocol.Model_not_found; _ }) -> ()
      | Ok _ -> Alcotest.fail "predict of unknown model succeeded"
      | Error f -> Alcotest.failf "expected Model_not_found: %s"
          (Client.failure_to_string f));
      (* All replicas dead: attempts exhaust into the last failure. *)
      (match
         Client.with_failover ~attempts:3 ~base_backoff:0.001 [ dead ] (fun c ->
             Client.predict_typed c ~name:"m" ~states ~xs)
       with
      | Error (Client.Connection_lost _) -> ()
      | Ok _ -> Alcotest.fail "dead replica answered"
      | Error f -> Alcotest.failf "expected Connection_lost: %s"
          (Client.failure_to_string f));
      Server.stop srv)

let test_supervisor_failover () =
  let m = synth_model ~dim:5 ~k:3 ~a:8 () in
  with_server_dir (fun dir ->
      let make index =
        let registry = Registry.create () in
        Registry.put registry ~name:"m" m;
        let path = Filename.concat dir (Printf.sprintf "repl-%d.sock" index) in
        Server.start
          ~config:{ Server.default_config with workers = 2 }
          ~registry (Unix.ADDR_UNIX path)
      in
      let sup =
        Supervisor.start ~health_interval:0.02 ~base_backoff:0.02
          ~ping_timeout:0.3 ~n:2 make
      in
      Fun.protect ~finally:(fun () -> Supervisor.stop sup) (fun () ->
          let addrs = Supervisor.addrs sup in
          check_int "two replicas up" 2 (List.length addrs);
          let n = 7 in
          let xs = Mat.init n m.Model.input_dim (fun _ _ -> g ()) in
          let states = Array.init n (fun i -> i mod m.Model.n_states) in
          let lm, ls = Engine.predict_batch m ~states ~xs in
          let check_serving tag =
            match
              Client.with_failover ~base_backoff:0.005 ~timeout:0.5
                (Supervisor.addrs sup)
                (fun c -> Client.predict_typed c ~name:"m" ~states ~xs)
            with
            | Ok (rm, rs) -> check_true tag (bits_eq lm rm && bits_eq ls rs)
            | Error f -> Alcotest.failf "%s: %s" tag (Client.failure_to_string f)
          in
          check_serving "both replicas serving";
          (* Kill replica 0 out from under the supervisor. *)
          let victim = List.hd addrs in
          let c = Client.connect victim in
          Client.shutdown c;
          Client.close c;
          (* The fleet keeps answering throughout via failover... *)
          check_serving "serving through the crash";
          (* ...and the supervisor restarts the victim. *)
          let deadline = Unix.gettimeofday () +. 10.0 in
          let rec await () =
            if Supervisor.restarts sup >= 1 then ()
            else if Unix.gettimeofday () > deadline then
              Alcotest.fail "supervisor never restarted the dead replica"
            else begin
              Thread.delay 0.02;
              await ()
            end
          in
          await ();
          (* The restarted replica itself answers again (poll: it may
             still be mid-spawn for a moment). *)
          let deadline = Unix.gettimeofday () +. 10.0 in
          let rec await_serving () =
            let answered =
              match
                Client.with_failover ~attempts:2 ~base_backoff:0.005
                  ~timeout:0.5 [ victim ]
                  (fun c -> Client.predict_typed c ~name:"m" ~states ~xs)
              with
              | Ok (rm, rs) -> bits_eq lm rm && bits_eq ls rs
              | Error _ -> false
            in
            if answered then ()
            else if Unix.gettimeofday () > deadline then
              Alcotest.fail "restarted replica never answered"
            else begin
              Thread.delay 0.05;
              await_serving ()
            end
          in
          await_serving ()))

(* --- Fault taxonomy integration -------------------------------------- *)

let test_bad_snapshot_fault () =
  let f = Fault.Bad_snapshot { site = "snapshot.load"; reason = "short header" } in
  check_true "rendering"
    (String.equal "bad-snapshot @snapshot.load: short header" (Fault.to_string f));
  check_true "class" (Fault.class_of f = Fault.C_bad_snapshot);
  check_true "class name"
    (String.equal "bad-snapshot" (Fault.class_name Fault.C_bad_snapshot));
  check_true "site" (String.equal "snapshot.load" (Fault.site f));
  (* Diag sorts deterministically by rendering: bad-snapshot sorts
     ahead of not-pd and worker-error. *)
  let d = Diag.create () in
  Diag.record d (Fault.Worker_error { site = "pool"; message = "boom" });
  Diag.record d f;
  Diag.record d (Fault.Not_pd { site = "chol.factorize"; dim = 3; tries = 2 });
  let faults = Diag.faults d in
  check_int "all recorded" 3 (Array.length faults);
  check_true "deterministic order" (faults.(0) = f);
  check_int "counted by class" 1 (Diag.count_class d Fault.C_bad_snapshot)

(* --- Dynamic batcher -------------------------------------------------- *)

(* A request set with uneven shapes, plus each request's solo engine
   answer for bitwise comparison. *)
let batch_requests m n_reqs =
  Array.init n_reqs (fun i ->
      let n = 3 + (i mod 5) in
      let xs = Mat.init n m.Model.input_dim (fun _ _ -> g ()) in
      let states = Array.init n (fun j -> (i + j) mod m.Model.n_states) in
      let expect = Engine.predict_batch m ~states ~xs in
      (states, xs, expect))

(* Submit every request from its own thread; returns each thread's
   outcome (result or exception). *)
let submit_all b m reqs =
  let out = Array.make (Array.length reqs) None in
  let ths =
    Array.mapi
      (fun i (states, xs, _) ->
        Thread.create
          (fun () ->
            out.(i) <-
              Some
                (match Batcher.submit b ~model:m ~states ~xs () with
                | r -> Ok r
                | exception e -> Error e))
          ())
      reqs
  in
  Array.iter Thread.join ths;
  Array.map Option.get out

let check_all_bit_identical tag reqs out =
  Array.iteri
    (fun i (_, _, (em, es)) ->
      match out.(i) with
      | Ok (rm, rs) ->
          check_true tag (bits_eq em rm && bits_eq es rs)
      | Error e -> Alcotest.failf "%s: request %d raised %s" tag i
                     (Printexc.to_string e))
    reqs

let test_batcher_bit_identity () =
  (* Concurrent submits from 8 threads against one model coalesce into
     merged engine calls; every reply must equal its solo engine
     answer bit for bit.  The window is generous so every thread's
     request lands in the first flush, making the coalescing (not just
     the fallback solo path) the thing under test. *)
  let m = synth_model ~dim:5 ~k:3 ~a:8 () in
  let stats = Stats.create () in
  let b = Batcher.create ~stats ~window_us:100_000 ~max_points:100_000 () in
  let reqs = batch_requests m 8 in
  let out = submit_all b m reqs in
  Batcher.stop b;
  check_all_bit_identical "coalesced replies bit-identical" reqs out;
  (* Requests were 3-7 points each; an occupancy median above that
     proves at least two requests actually merged. *)
  check_true "requests coalesced across submitters"
    (Stats.phase_quantile stats `Occupancy 0.5 > 7.0)

let test_batcher_two_models () =
  (* Same window, two distinct models: merging must group by physical
     model, and both groups answer bit-identically. *)
  let m1 = synth_model ~dim:5 ~k:3 ~a:8 () in
  let m2 = synth_model ~dim:4 ~k:2 ~a:6 () in
  let b = Batcher.create ~window_us:50_000 ~max_points:100_000 () in
  let r1 = batch_requests m1 3 and r2 = batch_requests m2 3 in
  let out = Array.make 6 None in
  let spawn off m reqs =
    Array.mapi
      (fun i (states, xs, _) ->
        Thread.create
          (fun () ->
            out.(off + i) <-
              Some
                (match Batcher.submit b ~model:m ~states ~xs () with
                | r -> Ok r
                | exception e -> Error e))
          ())
      reqs
  in
  let ths = Array.append (spawn 0 m1 r1) (spawn 3 m2 r2) in
  Array.iter Thread.join ths;
  Batcher.stop b;
  let out = Array.map Option.get out in
  check_all_bit_identical "model-1 replies" r1 (Array.sub out 0 3);
  check_all_bit_identical "model-2 replies" r2 (Array.sub out 3 3)

let test_batcher_window_zero () =
  (* window = 0 degenerates to per-request serving: the engine is
     called inline (no drainer), answers are bit-identical, and no
     merged flush is ever recorded. *)
  let m = synth_model ~dim:5 ~k:3 ~a:8 () in
  let stats = Stats.create () in
  let b = Batcher.create ~stats ~window_us:0 () in
  let reqs = batch_requests m 4 in
  Array.iter
    (fun (states, xs, (em, es)) ->
      let rm, rs = Batcher.submit b ~model:m ~states ~xs () in
      check_true "window=0 bit-identical" (bits_eq em rm && bits_eq es rs))
    reqs;
  Batcher.stop b;
  check_true "window=0 records no merged flushes"
    (Stats.phase_quantile stats `Occupancy 0.99 = 0.0)

let test_batcher_early_flush () =
  (* A full batch flushes immediately: with a 5 s window but an
     8-point cap, two 4-point submits must come back far sooner than
     the window. *)
  let m = synth_model ~dim:5 ~k:3 ~a:8 () in
  let b = Batcher.create ~window_us:5_000_000 ~max_points:8 () in
  let xs () = Mat.init 4 m.Model.input_dim (fun _ _ -> g ()) in
  let states = Array.init 4 (fun j -> j mod m.Model.n_states) in
  let mk_req () =
    let x = xs () in
    (states, x, Engine.predict_batch m ~states ~xs:x)
  in
  let reqs = [| mk_req (); mk_req () |] in
  let t0 = Unix.gettimeofday () in
  let out = submit_all b m reqs in
  let elapsed = Unix.gettimeofday () -. t0 in
  Batcher.stop b;
  check_all_bit_identical "early-flush replies bit-identical" reqs out;
  check_true "full batch flushed well before the window"
    (elapsed < 2.0)

let test_batcher_deadline_anchor () =
  (* Budgets are absolute and anchored at enqueue: a request whose
     budget is shorter than the batching window must come back as a
     typed deadline fault, never as a late success — parking cannot
     silently extend a budget. *)
  let m = synth_model ~dim:5 ~k:3 ~a:8 () in
  let b = Batcher.create ~window_us:150_000 ~max_points:100_000 () in
  let xs = Mat.init 5 m.Model.input_dim (fun _ _ -> g ()) in
  let states = Array.init 5 (fun j -> j mod m.Model.n_states) in
  let expect_deadline tag deadline =
    match Batcher.submit b ~deadline ~model:m ~states ~xs () with
    | _ -> Alcotest.failf "%s: expired request completed" tag
    | exception Fault.Error (Fault.Early_stop { site; _ }) ->
        check_true (tag ^ " carries the serve.deadline site")
          (String.equal site Engine.deadline_site)
  in
  expect_deadline "budget shorter than window"
    (Unix.gettimeofday () +. 0.02);
  expect_deadline "already-expired budget" (Unix.gettimeofday () -. 1.0);
  (* A budget comfortably past the window parks, merges and succeeds. *)
  let em, es = Engine.predict_batch m ~states ~xs in
  let rm, rs =
    Batcher.submit b
      ~deadline:(Unix.gettimeofday () +. 30.0)
      ~model:m ~states ~xs ()
  in
  check_true "generous budget bit-identical through the batcher"
    (bits_eq em rm && bits_eq es rs);
  Batcher.stop b

let test_batcher_validation_isolation () =
  (* One malformed request in the window must fail alone with the
     engine's own Invalid_argument while its window-mates succeed. *)
  let m = synth_model ~dim:5 ~k:3 ~a:8 () in
  let b = Batcher.create ~window_us:50_000 ~max_points:100_000 () in
  let good = batch_requests m 2 in
  let bad_xs = Mat.init 2 (m.Model.input_dim + 3) (fun _ _ -> g ()) in
  let bad_states = [| 0; 1 |] in
  let bad_out = ref None in
  let bad_th =
    Thread.create
      (fun () ->
        bad_out :=
          Some
            (match
               Batcher.submit b ~model:m ~states:bad_states ~xs:bad_xs ()
             with
            | r -> Ok r
            | exception e -> Error e))
      ()
  in
  let out = submit_all b m good in
  Thread.join bad_th;
  Batcher.stop b;
  check_all_bit_identical "window-mates unaffected" good out;
  match Option.get !bad_out with
  | Error (Invalid_argument _) -> ()
  | Error e ->
      Alcotest.failf "bad request: expected Invalid_argument, got %s"
        (Printexc.to_string e)
  | Ok _ -> Alcotest.fail "bad request succeeded"

let test_batcher_cross_connection () =
  (* The server-level contract: several serve_fd connections sharing
     one batcher coalesce across descriptors, and every wire reply is
     bit-identical to the solo engine answer.  (The full Server.start
     wires the same pieces; serve_fd keeps the test socketpair-local.) *)
  let m = synth_model ~dim:5 ~k:3 ~a:8 () in
  let registry = Registry.create () in
  Registry.put registry ~name:"m" m;
  let stats = Stats.create () in
  let batcher =
    Batcher.create ~stats ~window_us:100_000 ~max_points:100_000 ()
  in
  let n_conns = 4 in
  let pairs =
    Array.init n_conns (fun _ ->
        Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0)
  in
  let servers =
    Array.map
      (fun (srv_fd, _) ->
        Thread.create
          (fun () -> Server.serve_fd ~stats ~batcher ~registry srv_fd)
          ())
      pairs
  in
  let reqs = batch_requests m n_conns in
  let out = Array.make n_conns None in
  let clients =
    Array.init n_conns (fun i ->
        Thread.create
          (fun () ->
            let c = Client.of_fd (snd pairs.(i)) in
            let states, xs, _ = reqs.(i) in
            out.(i) <- Some (Client.predict_typed c ~name:"m" ~states ~xs);
            Client.close c)
          ())
  in
  Array.iter Thread.join clients;
  Array.iter Thread.join servers;
  Batcher.stop batcher;
  Array.iteri
    (fun i (_, _, (em, es)) ->
      match Option.get out.(i) with
      | Ok (rm, rs) ->
          check_true "cross-connection reply bit-identical"
            (bits_eq em rm && bits_eq es rs)
      | Error f ->
          Alcotest.failf "connection %d: %s" i (Client.failure_to_string f))
    reqs;
  check_true "connections coalesced into merged calls"
    (Stats.phase_quantile stats `Occupancy 0.5 > 7.0)

(* --- Pipelined client ------------------------------------------------- *)

let test_predict_many () =
  let m = synth_model ~dim:5 ~k:3 ~a:8 () in
  let registry = Registry.create () in
  Registry.put registry ~name:"m" m;
  with_loopback registry (fun c ->
      let reqs =
        List.init 5 (fun i ->
            let n = 2 + i in
            let xs = Mat.init n m.Model.input_dim (fun _ _ -> g ()) in
            let states = Array.init n (fun j -> j mod m.Model.n_states) in
            (states, xs))
      in
      let expected =
        List.map
          (fun (states, xs) -> Engine.predict_batch m ~states ~xs)
          reqs
      in
      let results = Client.predict_many c ~name:"m" reqs in
      check_int "one result per request" (List.length reqs)
        (List.length results);
      List.iter2
        (fun (em, es) r ->
          match r with
          | Ok (rm, rs) ->
              check_true "pipelined reply bit-identical"
                (bits_eq em rm && bits_eq es rs)
          | Error f ->
              Alcotest.failf "pipelined predict: %s"
                (Client.failure_to_string f))
        expected results;
      (* A typed server error fails only its own slot. *)
      let good_xs = Mat.init 2 m.Model.input_dim (fun _ _ -> g ()) in
      let good = ([| 0; 1 |], good_xs) in
      let bad = ([| 0 |], Mat.create 1 (m.Model.input_dim + 1)) in
      (match Client.predict_many c ~name:"m" [ good; bad; good ] with
      | [ Ok _; Error (Client.Server_error { code = Protocol.Bad_request; _ });
          Ok _ ] ->
          ()
      | rs ->
          Alcotest.failf "mixed pipeline: got %s"
            (String.concat ";"
               (List.map
                  (function
                    | Ok _ -> "ok"
                    | Error f -> Client.failure_to_string f)
                  rs)));
      (* Unknown model: every slot answered, connection alive. *)
      let all_missing = Client.predict_many c ~name:"nope" [ good; good ] in
      check_true "unknown model fails every slot, typed"
        (List.for_all
           (function
             | Error (Client.Server_error { code = Protocol.Model_not_found; _ })
               ->
                 true
             | _ -> false)
           all_missing);
      (match Client.predict_typed c ~name:"m" ~states:(fst good)
               ~xs:(snd good)
       with
      | Ok _ -> ()
      | Error f ->
          Alcotest.failf "connection died after pipeline: %s"
            (Client.failure_to_string f));
      Client.shutdown c)

(* --- Consistent-hash sharding ----------------------------------------- *)

let test_shard_ring () =
  let names = Array.init 200 (fun i -> Printf.sprintf "model-%d" i) in
  let r4 = Shard.ring ~vnodes:64 4 in
  check_int "ring shard count" 4 (Shard.shards r4);
  let p1 = Array.map (Shard.place r4) names in
  (* Deterministic: an independently built identical ring places every
     name the same way — this is what lets clients route with no
     coordination. *)
  let p2 = Array.map (Shard.place (Shard.ring ~vnodes:64 4)) names in
  check_true "placement deterministic" (p1 = p2);
  check_true "placement in range"
    (Array.for_all (fun s -> s >= 0 && s < 4) p1);
  let counts = Array.make 4 0 in
  Array.iter (fun s -> counts.(s) <- counts.(s) + 1) p1;
  check_true "every shard owns part of the namespace"
    (Array.for_all (fun c -> c > 0) counts);
  check_true "no shard dominates"
    (Array.for_all (fun c -> c < 150) counts);
  (* Growing 4 -> 5 shards moves roughly 1/5 of the names, never most
     of them (mod-N hashing would move ~4/5). *)
  let p5 = Array.map (Shard.place (Shard.ring ~vnodes:64 5)) names in
  let moved = ref 0 in
  Array.iteri (fun i s -> if s <> p5.(i) then incr moved) p1;
  check_true "minimal movement on reshard"
    (!moved > 0 && !moved < Array.length names / 2);
  (match Shard.ring 0 with
  | _ -> Alcotest.fail "ring accepted 0 shards"
  | exception Invalid_argument _ -> ());
  match Shard.ring ~vnodes:0 2 with
  | _ -> Alcotest.fail "ring accepted 0 vnodes"
  | exception Invalid_argument _ -> ()

(* N in-process shards: one registry + serve_fd thread per socketpair —
   the generalized loopback-smoke pattern the shard router rides in
   tests. *)
let with_inproc_shards n f =
  let regs = Array.init n (fun _ -> Registry.create ()) in
  let pairs =
    Array.init n (fun _ -> Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0)
  in
  let servers =
    Array.init n (fun i ->
        Thread.create
          (fun () -> Server.serve_fd ~registry:regs.(i) (fst pairs.(i)))
          ())
  in
  let router = Shard.router ~shards:n (fun i -> Client.of_fd (snd pairs.(i))) in
  Fun.protect
    ~finally:(fun () ->
      Shard.close_router router;
      (* The router dials lazily: a shard no test request landed on was
         never connected, so [close_router] alone would leave its
         serve_fd thread blocked on a live peer fd forever. *)
      Array.iter
        (fun (_, cl) -> try Unix.close cl with Unix.Unix_error _ -> ())
        pairs;
      Array.iter Thread.join servers)
    (fun () -> f router regs)

let test_shard_routing_inproc () =
  let n_shards = 3 in
  let n_models = 8 in
  let models = Array.init n_models (fun _ -> synth_model ~dim:5 ~k:3 ~a:8 ()) in
  with_inproc_shards n_shards (fun router regs ->
      Array.iteri
        (fun j m ->
          let name = Printf.sprintf "model-%d" j in
          (match
             Shard.load_inline router ~name ~image:(Snapshot.encode m)
           with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "load %s: %s" name e);
          (* The model must live exactly on its hash owner. *)
          let owner = Shard.route router ~name in
          Array.iteri
            (fun i reg ->
              let here = Registry.find reg ~name <> None in
              check_true "model on its hash owner only" (here = (i = owner)))
            regs;
          let xs = Mat.init 6 m.Model.input_dim (fun _ _ -> g ()) in
          let states = Array.init 6 (fun s -> s mod m.Model.n_states) in
          let em, es = Engine.predict_batch m ~states ~xs in
          match Shard.predict_typed router ~name ~states ~xs with
          | Ok (rm, rs) ->
              check_true "routed predict bit-identical"
                (bits_eq em rm && bits_eq es rs)
          | Error f ->
              Alcotest.failf "routed predict %s: %s" name
                (Client.failure_to_string f))
        models;
      (* The namespace actually spread over several shards. *)
      let used =
        Array.init n_models (fun j ->
            Shard.route router ~name:(Printf.sprintf "model-%d" j))
      in
      check_true "several shards in use"
        (Array.exists (fun s -> s <> used.(0)) used))

let test_shard_reload_stable () =
  (* Placement is generation-independent: a hot reload swaps the model
     behind a name without moving it to another shard, and routed
     predicts flip to the new model bit-identically. *)
  let m1 = synth_model ~dim:5 ~k:3 ~a:8 () in
  let m2 = synth_model ~dim:5 ~k:3 ~a:8 () in
  with_inproc_shards 2 (fun router regs ->
      let name = "hot-model" in
      (match Shard.load_inline router ~name ~image:(Snapshot.encode m1) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "load: %s" e);
      let owner = Shard.route router ~name in
      let xs = Mat.init 5 m1.Model.input_dim (fun _ _ -> g ()) in
      let states = Array.init 5 (fun s -> s mod m1.Model.n_states) in
      let check_serving tag m =
        let em, es = Engine.predict_batch m ~states ~xs in
        match Shard.predict_typed router ~name ~states ~xs with
        | Ok (rm, rs) -> check_true tag (bits_eq em rm && bits_eq es rs)
        | Error f -> Alcotest.failf "%s: %s" tag (Client.failure_to_string f)
      in
      check_serving "serving m1 before reload" m1;
      (match Shard.reload_inline router ~name ~image:(Snapshot.encode m2) with
      | Ok (generation, _, _, _) ->
          check_int "reload bumped the slot generation" 2 generation
      | Error f -> Alcotest.failf "reload: %s" (Client.failure_to_string f));
      check_int "reload did not move the model" owner
        (Shard.route router ~name);
      Array.iteri
        (fun i reg ->
          check_true "model still on its owner only"
            ((Registry.find reg ~name <> None) = (i = owner)))
        regs;
      check_serving "serving m2 after reload" m2)

let suite =
  [ ( "serve.codec",
      [ case "primitive round-trips (incl. NaN payloads)" test_codec_roundtrip;
        case "truncation and hostile lengths rejected" test_codec_rejects;
        case "fnv64 reference vectors" test_codec_fnv64 ] );
    ( "serve.snapshot",
      [ case "round-trip bit-identity" test_snapshot_roundtrip;
        case "special-float payloads round-trip" test_snapshot_special_floats;
        case "every truncation rejected" test_snapshot_truncation;
        case "every sampled bit flip rejected" test_snapshot_bit_flips;
        case "version/reserved/magic/trailing rejected" test_snapshot_versioning;
        case "atomic save + load, missing file typed" test_snapshot_file_io;
        case "injected decode fault" test_snapshot_injected_fault ] );
    ( "serve.model",
      [ case "validate rejects inconsistencies" test_model_validate_rejects;
        case "equal is bitwise" test_model_equal_is_bitwise;
        case "invalid_arg validation" test_model_invalid_args ] );
    ( "serve.registry",
      [ case "put/get/find/remove/names" test_registry_basics;
        case "lazy load + LRU demotion" test_registry_lazy_and_lru;
        case "path-less slots dropped on eviction" test_registry_put_only_eviction;
        case "generation swap + rollback on bad image" test_registry_reload_generation;
        case "parallel get/put/reload: no torn reads" test_registry_concurrent ] );
    ( "serve.engine",
      [ case "batch = scalar bitwise across shapes" test_engine_matches_scalar;
        case "batch of one = Model.predict" test_engine_batch_of_one;
        case "1/2/4 domains bit-identical" test_engine_domain_invariance;
        case "invalid_arg validation" test_engine_invalid_args;
        case "deadline: typed fault, else bit-identical" test_engine_deadline ] );
    ( "serve.protocol",
      [ case "request/reply round-trips" test_protocol_roundtrip;
        case "v2 messages round-trip" test_protocol_roundtrip_v2;
        case "frozen wire bytes (additive versioning)" test_protocol_wire_compat;
        case "zero-copy framed writes byte-identical" test_protocol_framed_writer;
        case "malformed bodies rejected" test_protocol_rejects ] );
    ( "serve.batcher",
      [ case "concurrent submits bit-identical" test_batcher_bit_identity;
        case "two models merge separately" test_batcher_two_models;
        case "window=0 degenerates to per-request" test_batcher_window_zero;
        case "full batch flushes early" test_batcher_early_flush;
        case "deadlines anchored at enqueue" test_batcher_deadline_anchor;
        case "bad request fails alone" test_batcher_validation_isolation;
        case "serve_fd connections coalesce" test_batcher_cross_connection ] );
    ( "serve.shard",
      [ case "ring: deterministic, spread, minimal movement" test_shard_ring;
        case "in-process multi-shard routing" test_shard_routing_inproc;
        case "reload keeps placement stable" test_shard_reload_stable ] );
    ( "serve.server",
      [ case "socketpair loopback serving" test_loopback_serving;
        case "typed errors, connection survives" test_loopback_errors;
        case "pre-extension clients keep working" test_loopback_wire_compat;
        case "deadline replies, connection survives" test_loopback_deadline;
        case "hot reload over the wire" test_loopback_reload;
        case "pipelined predict_many" test_predict_many;
        case "typed Connection_lost" test_client_connection_lost;
        case "overload sheds with typed reply" test_server_shed_overload;
        case "in-flight request survives stop" test_server_graceful_drain;
        case "drain cutoff bounds stop" test_server_drain_cutoff;
        case "with_failover across replicas" test_with_failover;
        case "supervisor restarts a dead replica" test_supervisor_failover ] );
    ( "serve.fault",
      [ case "Bad_snapshot taxonomy integration" test_bad_snapshot_fault ] ) ]
