(* Serving subsystem tests: codec primitives, snapshot persistence
   (round-trip bit-identity, truncation, bit flips, version/reserved
   fields), registry LRU behavior, batch engine vs the scalar path and
   across domain counts, wire protocol round-trips, and a client/server
   loopback over a socketpair — no listener, no ports. *)

open Cbmf_linalg
open Cbmf_basis
open Cbmf_robust
open Cbmf_serve
open Helpers

(* Own RNG so this file never perturbs the shared Helpers stream other
   suites draw from. *)
let srng = Cbmf_prob.Rng.create 987654

let g () = Cbmf_prob.Rng.gaussian srng

let bits_eq_f x y = Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)

let bits_eq xs ys =
  Array.length xs = Array.length ys && Array.for_all2 bits_eq_f xs ys

let spd n =
  let a = Mat.init n n (fun _ _ -> g ()) in
  let m = Mat.gram a in
  Mat.add_diag_inplace m (float_of_int n *. 0.5);
  Mat.symmetrize_inplace m;
  m

(* A structurally valid serving model with every term kind present. *)
let synth_model ?(dim = 6) ?(k = 4) ?(a = 10) () =
  let terms =
    Array.init a (fun j ->
        match j mod 4 with
        | 0 -> Term.Constant
        | 1 -> Term.Linear (j mod dim)
        | 2 -> Term.Square (j mod dim)
        | _ ->
            let i = j mod (dim - 1) in
            Term.Cross (i, i + 1))
  in
  {
    Model.input_dim = dim;
    n_states = k;
    terms;
    col_means = Mat.init k a (fun _ _ -> g ());
    col_scales = Array.init a (fun _ -> 0.5 +. Float.abs (g ()));
    y_means = Array.init k (fun _ -> g ());
    y_scale = 1.0 +. Float.abs (g ());
    mu = Mat.init a k (fun _ _ -> g ());
    lambda = Array.init a (fun _ -> Float.abs (g ()));
    r = Mat.init k k (fun _ _ -> g ());
    sigma0 = 0.05;
    cov = Array.init k (fun _ -> spd a);
  }

let with_temp_dir f =
  let dir = Filename.temp_file "cbmf_test_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let expect_bad name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Bad_snapshot" name
  | exception Fault.Error (Fault.Bad_snapshot _) -> ()

(* --- Codec ----------------------------------------------------------- *)

let test_codec_roundtrip () =
  let w = Codec.writer () in
  Codec.w_u8 w 0;
  Codec.w_u8 w 255;
  Codec.w_u32 w 0;
  Codec.w_u32 w 0x7FFFFFFF;
  Codec.w_i64 w Int64.min_int;
  Codec.w_string w "";
  Codec.w_string w "payload \x00\xff bytes";
  Codec.w_u32_array w [| 3; 0; 71 |];
  let specials =
    [| 0.0; -0.0; Float.nan; infinity; neg_infinity; Int64.float_of_bits 1L;
       Int64.float_of_bits 0x7FF8DEADBEEF0001L; 1.5e-310; Float.pi |]
  in
  Codec.w_f64_array w specials;
  let m = Mat.init 3 2 (fun i j -> g () +. float_of_int ((i * 2) + j)) in
  Codec.w_mat w m;
  let r = Codec.reader (Codec.contents w) in
  check_int "u8 lo" 0 (Codec.r_u8 r);
  check_int "u8 hi" 255 (Codec.r_u8 r);
  check_int "u32 lo" 0 (Codec.r_u32 r);
  check_int "u32 hi" 0x7FFFFFFF (Codec.r_u32 r);
  check_true "i64" (Int64.equal Int64.min_int (Codec.r_i64 r));
  check_true "empty string" (String.equal "" (Codec.r_string r));
  check_true "binary string"
    (String.equal "payload \x00\xff bytes" (Codec.r_string r));
  check_true "u32 array" ([| 3; 0; 71 |] = Codec.r_u32_array r);
  check_true "f64 specials bit-identical" (bits_eq specials (Codec.r_f64_array r));
  let m' = Codec.r_mat r in
  check_true "mat shape" (m'.Mat.rows = 3 && m'.Mat.cols = 2);
  check_true "mat bits" (bits_eq m.Mat.data m'.Mat.data);
  Codec.expect_end r

let test_codec_rejects () =
  let w = Codec.writer () in
  Codec.w_string w "hello";
  let s = Codec.contents w in
  (* Every strict prefix must fail, never read garbage. *)
  for len = 0 to String.length s - 1 do
    let r = Codec.reader (String.sub s 0 len) in
    match Codec.r_string r with
    | _ -> Alcotest.failf "prefix %d decoded" len
    | exception Codec.Corrupt _ -> ()
  done;
  (* Trailing bytes are an error too. *)
  let r = Codec.reader (s ^ "\x00") in
  ignore (Codec.r_string r);
  (match Codec.expect_end r with
  | _ -> Alcotest.fail "trailing byte accepted"
  | exception Codec.Corrupt _ -> ());
  (* A u32 with the sign bit set is hostile, not a negative count. *)
  let r = Codec.reader "\xff\xff\xff\xff" in
  (match Codec.r_u32 r with
  | _ -> Alcotest.fail "sign-bit u32 accepted"
  | exception Codec.Corrupt _ -> ());
  (* A length field larger than the remaining bytes must not allocate. *)
  let w = Codec.writer () in
  Codec.w_u32 w 0x10000000;
  let r = Codec.reader (Codec.contents w ^ "ab") in
  match Codec.r_string r with
  | _ -> Alcotest.fail "oversized length accepted"
  | exception Codec.Corrupt _ -> ()

let test_codec_fnv64 () =
  (* Reference FNV-1a 64-bit vectors. *)
  check_true "fnv64 empty"
    (Int64.equal 0xcbf29ce484222325L (Codec.fnv64 ""));
  check_true "fnv64 'a'" (Int64.equal 0xaf63dc4c8601ec8cL (Codec.fnv64 "a"));
  check_true "fnv64 'foobar'"
    (Int64.equal 0x85944171f73967e8L (Codec.fnv64 "foobar"));
  check_true "fnv64 range = fnv64 slice"
    (Int64.equal (Codec.fnv64 ~pos:1 ~len:3 "xfoox") (Codec.fnv64 "foo"))

(* --- Snapshot -------------------------------------------------------- *)

let test_snapshot_roundtrip () =
  List.iter
    (fun (dim, k, a) ->
      let m = synth_model ~dim ~k ~a () in
      check_true "synthetic model validates" (Model.validate m = Ok ());
      let img = Snapshot.encode m in
      let m' = Snapshot.decode img in
      check_true "decode(encode m) bit-identical" (Model.equal m' m);
      check_true "re-encode byte-identical"
        (String.equal (Snapshot.encode m') img))
    [ (2, 1, 1); (6, 4, 10); (9, 7, 23) ]

let test_snapshot_special_floats () =
  let m = synth_model () in
  let plant (d : float array) =
    d.(0) <- Float.nan;
    d.(1) <- -0.0;
    d.(2) <- Int64.float_of_bits 1L (* smallest subnormal *);
    d.(3) <- infinity;
    d.(4) <- neg_infinity;
    d.(5) <- Int64.float_of_bits 0x7FF8DEADBEEF0001L (* NaN payload *)
  in
  plant m.Model.mu.Mat.data;
  plant m.Model.cov.(0).Mat.data;
  plant m.Model.r.Mat.data;
  let img = Snapshot.encode m in
  let m' = Snapshot.decode img in
  check_true "NaN/−0/subnormal payloads round-trip bitwise" (Model.equal m' m);
  check_true "and re-encode byte-identically"
    (String.equal (Snapshot.encode m') img)

let test_snapshot_truncation () =
  let img = Snapshot.encode (synth_model ()) in
  let n = String.length img in
  (* Every header cut, then payload cuts sampled across the image. *)
  let cuts = ref [] in
  for len = 0 to 32 do cuts := len :: !cuts done;
  let step = max 1 ((n - 33) / 19) in
  let len = ref 33 in
  while !len < n do
    cuts := !len :: !cuts;
    len := !len + step
  done;
  List.iter
    (fun len ->
      expect_bad
        (Printf.sprintf "truncated at %d/%d" len n)
        (fun () -> Snapshot.decode (String.sub img 0 len)))
    !cuts

let flip_bit s bit =
  let b = Bytes.of_string s in
  let i = bit / 8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
  Bytes.to_string b

let test_snapshot_bit_flips () =
  let img = Snapshot.encode (synth_model ()) in
  let n = String.length img in
  (* Header bytes exhaustively (rotating bit), payload bytes sampled:
     magic/version/reserved/length flips hit the field checks, payload
     flips the checksum. *)
  for byte = 0 to 31 do
    expect_bad
      (Printf.sprintf "header flip @%d" byte)
      (fun () -> Snapshot.decode (flip_bit img ((byte * 8) + (byte mod 8))))
  done;
  let step = max 1 ((n - 32) / 37) in
  let byte = ref 32 in
  while !byte < n do
    expect_bad
      (Printf.sprintf "payload flip @%d" !byte)
      (fun () -> Snapshot.decode (flip_bit img ((!byte * 8) + (!byte mod 8))));
    byte := !byte + step
  done

let test_snapshot_versioning () =
  let img = Snapshot.encode (synth_model ()) in
  let patch_byte i c =
    let b = Bytes.of_string img in
    Bytes.set b i c;
    Bytes.to_string b
  in
  (* The version field is not covered by the payload checksum, so a
     future-version file is structurally pristine — it must still be
     refused, with the version named in the reason. *)
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec scan i =
      i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1))
    in
    scan 0
  in
  (match Snapshot.decode (patch_byte 8 '\x02') with
  | _ -> Alcotest.fail "future version accepted"
  | exception Fault.Error (Fault.Bad_snapshot { reason; _ }) ->
      check_true "reason names the version" (contains reason "version"));
  expect_bad "version 0" (fun () -> Snapshot.decode (patch_byte 8 '\x00'));
  expect_bad "reserved field nonzero" (fun () ->
      Snapshot.decode (patch_byte 12 '\x01'));
  expect_bad "trailing garbage" (fun () -> Snapshot.decode (img ^ "x"));
  expect_bad "empty image" (fun () -> Snapshot.decode "");
  expect_bad "foreign magic" (fun () ->
      Snapshot.decode ("NOTASNAP" ^ String.sub img 8 (String.length img - 8)))

let test_snapshot_file_io () =
  with_temp_dir (fun dir ->
      let m = synth_model () in
      let path = Filename.concat dir "m.snap" in
      Snapshot.save ~path m;
      check_true "no torn temp file left"
        (not (Sys.file_exists (path ^ ".tmp")));
      let m' = Snapshot.load ~path in
      check_true "file round-trip bit-identical" (Model.equal m' m);
      expect_bad "missing file" (fun () ->
          Snapshot.load ~path:(Filename.concat dir "absent.snap")))

let test_snapshot_injected_fault () =
  let m = synth_model () in
  let img = Snapshot.encode m in
  Inject.arm ~seed:11 ~prob:1.0 ~sites:[ "serve.decode" ] ();
  Fun.protect ~finally:Inject.disarm (fun () ->
      expect_bad "armed serve.decode" (fun () ->
          Snapshot.decode ~site:"serve.decode" img));
  check_true "decodes again once disarmed" (Model.equal (Snapshot.decode img) m)

(* --- Model ----------------------------------------------------------- *)

let test_model_validate_rejects () =
  let m = synth_model () in
  let bad name m' =
    match Model.validate m' with
    | Ok () -> Alcotest.failf "%s: validate accepted" name
    | Error _ -> ()
  in
  bad "col_scales length" { m with Model.col_scales = [| 1.0 |] };
  (let scales = Array.copy m.Model.col_scales in
   scales.(0) <- 0.0;
   bad "zero column scale" { m with Model.col_scales = scales });
  (let terms = Array.copy m.Model.terms in
   terms.(0) <- Term.Linear m.Model.input_dim;
   bad "term variable out of range" { m with Model.terms = terms });
  (let cov = Array.copy m.Model.cov in
   cov.(0) <- Mat.create 1 1;
   bad "cov block shape" { m with Model.cov = cov });
  bad "NaN sigma0" { m with Model.sigma0 = Float.nan };
  bad "zero y_scale" { m with Model.y_scale = 0.0 };
  bad "zero states" { m with Model.n_states = 0 }

let test_model_equal_is_bitwise () =
  let m = synth_model () in
  let img = Snapshot.encode m in
  let m' = Snapshot.decode img in
  check_true "copies equal" (Model.equal m m');
  m'.Model.mu.Mat.data.(0) <-
    Int64.float_of_bits
      (Int64.logxor 1L (Int64.bits_of_float m'.Model.mu.Mat.data.(0)));
  check_true "one flipped mantissa bit detected" (not (Model.equal m m'))

let test_model_invalid_args () =
  let m = synth_model () in
  check_raises_invalid "bad state" (fun () ->
      Model.predict m ~state:m.Model.n_states (Array.make m.Model.input_dim 0.0));
  check_raises_invalid "bad input length" (fun () ->
      Model.predict m ~state:0 (Array.make (m.Model.input_dim + 1) 0.0))

(* --- Registry -------------------------------------------------------- *)

let test_registry_basics () =
  let reg = Registry.create () in
  let m = synth_model () in
  Registry.put reg ~name:"b" m;
  Registry.put reg ~name:"a" m;
  check_true "names sorted" (Registry.names reg = [ "a"; "b" ]);
  check_true "get hits" (Model.equal (Registry.get reg ~name:"a") m);
  (match Registry.get reg ~name:"zzz" with
  | _ -> Alcotest.fail "unknown name returned a model"
  | exception Not_found -> ());
  check_true "find on unknown"
    (match Registry.find reg ~name:"zzz" with None -> true | Some _ -> false);
  Registry.remove reg ~name:"a";
  check_true "removed" (Registry.names reg = [ "b" ]);
  let s = Registry.stats reg in
  check_int "one resident left" 1 s.Registry.resident_models;
  check_true "hit counted" (s.Registry.hits >= 1)

let test_registry_lazy_and_lru () =
  with_temp_dir (fun dir ->
      let m = synth_model () in
      let b = Model.byte_size m in
      let path i =
        let p = Filename.concat dir (Printf.sprintf "m%d.snap" i) in
        Snapshot.save ~path:p m;
        p
      in
      (* Budget fits two residents, never three. *)
      let reg = Registry.create ~max_bytes:((2 * b) + (b / 2)) () in
      Registry.add_path reg ~name:"m1" (path 1);
      Registry.add_path reg ~name:"m2" (path 2);
      Registry.add_path reg ~name:"m3" (path 3);
      check_int "lazy slots are not resident" 0
        (Registry.stats reg).Registry.resident_models;
      ignore (Registry.get reg ~name:"m1") (* miss + load *);
      ignore (Registry.get reg ~name:"m1") (* hit *);
      ignore (Registry.get reg ~name:"m2") (* miss + load *);
      let s = Registry.stats reg in
      check_int "two resident" 2 s.Registry.resident_models;
      check_int "one hit" 1 s.Registry.hits;
      check_int "two misses" 2 s.Registry.misses;
      check_int "two loads" 2 s.Registry.loads;
      check_int "no evictions yet" 0 s.Registry.evictions;
      (* Loading m3 busts the budget: m1 (least recently used) demotes. *)
      ignore (Registry.get reg ~name:"m3");
      let s = Registry.stats reg in
      check_int "still two resident" 2 s.Registry.resident_models;
      check_int "one eviction" 1 s.Registry.evictions;
      check_true "budget respected" (s.Registry.resident_bytes <= (2 * b) + (b / 2));
      (* The demoted slot is lazy again, not gone: a hit reloads it. *)
      check_true "demoted slot still registered"
        (Registry.names reg = [ "m1"; "m2"; "m3" ]);
      let loads0 = s.Registry.loads in
      ignore (Registry.get reg ~name:"m1");
      check_int "demoted slot reloaded" (loads0 + 1)
        (Registry.stats reg).Registry.loads)

let test_registry_put_only_eviction () =
  with_temp_dir (fun dir ->
      let m = synth_model () in
      let b = Model.byte_size m in
      let p = Filename.concat dir "q.snap" in
      Snapshot.save ~path:p m;
      let reg = Registry.create ~max_bytes:(b + (b / 2)) () in
      Registry.put reg ~name:"p" m;
      Registry.add_path reg ~name:"q" p;
      (* Loading q evicts p; with no backing path, p is gone for good. *)
      ignore (Registry.get reg ~name:"q");
      check_true "path-less slot dropped on eviction"
        (match Registry.find reg ~name:"p" with
        | None -> true
        | Some _ -> false);
      check_true "only the path-backed slot survives"
        (Registry.names reg = [ "q" ]))

(* --- Engine ---------------------------------------------------------- *)

let check_batch_matches_scalar m n =
  let dim = m.Model.input_dim and k = m.Model.n_states in
  let xs = Mat.init n dim (fun _ _ -> g ()) in
  let states = Array.init n (fun i -> i * 7 mod k) in
  let means, sds = Engine.predict_batch m ~states ~xs in
  for i = 0 to n - 1 do
    let mean, sd = Model.predict m ~state:states.(i) (Mat.row xs i) in
    if not (bits_eq_f mean means.(i) && bits_eq_f sd sds.(i)) then
      Alcotest.failf "batch/scalar mismatch at point %d of %d" i n
  done

let test_engine_matches_scalar () =
  List.iter
    (fun (dim, k, a, n) -> check_batch_matches_scalar (synth_model ~dim ~k ~a ()) n)
    [ (4, 3, 6, 1); (6, 4, 10, 64) (* exactly one chunk *);
      (6, 4, 10, 130) (* spans three chunks *); (5, 2, 7, 200) ]

let test_engine_batch_of_one () =
  let m = synth_model () in
  let x = Array.init m.Model.input_dim (fun _ -> g ()) in
  let m1, s1 = Engine.predict m ~state:1 x in
  let m2, s2 = Model.predict m ~state:1 x in
  check_true "Engine.predict = Model.predict bitwise"
    (bits_eq_f m1 m2 && bits_eq_f s1 s2)

let test_engine_domain_invariance () =
  let m = synth_model ~dim:6 ~k:4 ~a:12 () in
  let n = 150 in
  let xs = Mat.init n m.Model.input_dim (fun _ _ -> g ()) in
  let states = Array.init n (fun i -> i mod m.Model.n_states) in
  let run d =
    Cbmf_parallel.Pool.set_default_size d;
    Engine.predict_batch m ~states ~xs
  in
  Fun.protect
    ~finally:(fun () ->
      Cbmf_parallel.Pool.set_default_size (Cbmf_parallel.Pool.env_domains ()))
    (fun () ->
      let m1, s1 = run 1 in
      let m2, s2 = run 2 in
      let m4, s4 = run 4 in
      check_true "1 vs 2 domains bit-identical" (bits_eq m1 m2 && bits_eq s1 s2);
      check_true "1 vs 4 domains bit-identical" (bits_eq m1 m4 && bits_eq s1 s4))

let test_engine_invalid_args () =
  let m = synth_model () in
  let dim = m.Model.input_dim in
  check_raises_invalid "states length mismatch" (fun () ->
      Engine.predict_batch m ~states:[| 0 |] ~xs:(Mat.create 2 dim));
  check_raises_invalid "wrong input dim" (fun () ->
      Engine.predict_batch m ~states:[| 0 |] ~xs:(Mat.create 1 (dim + 1)));
  check_raises_invalid "state out of range" (fun () ->
      Engine.predict_batch m ~states:[| m.Model.n_states |] ~xs:(Mat.create 1 dim))

(* --- Protocol -------------------------------------------------------- *)

let test_protocol_roundtrip () =
  let reqs =
    [ Protocol.Load { name = "m"; source = Protocol.Path "/tmp/m.snap" };
      Protocol.Load { name = ""; source = Protocol.Inline "raw \x00\xff bytes" };
      Protocol.Predict
        {
          name = "lna";
          states = [| 0; 3; 1 |];
          xs = Mat.init 3 2 (fun i j -> float_of_int ((10 * i) + j));
        };
      Protocol.Stats; Protocol.Shutdown ]
  in
  List.iter
    (fun req ->
      check_true "request round-trips"
        (Protocol.decode_request (Protocol.encode_request req) = req))
    reqs;
  let reps =
    [ Protocol.Loaded { n_active = 12; n_states = 4; bytes = 34_000 };
      Protocol.Predicted { means = [| 1.5; -2.25 |]; sds = [| 0.5; 0.125 |] };
      Protocol.Stats_json "{\"requests\":{}}"; Protocol.Shutting_down ]
    @ List.map
        (fun code -> Protocol.Error { code; message = "m" })
        [ Protocol.Bad_frame; Protocol.Unknown_op; Protocol.Bad_snapshot;
          Protocol.Model_not_found; Protocol.Bad_request; Protocol.Internal ]
  in
  List.iter
    (fun rep ->
      check_true "reply round-trips"
        (Protocol.decode_reply (Protocol.encode_reply rep) = rep))
    reps

let test_protocol_rejects () =
  let corrupt name f =
    match f () with
    | _ -> Alcotest.failf "%s: decoded" name
    | exception Codec.Corrupt _ -> ()
  in
  corrupt "garbage request" (fun () -> Protocol.decode_request "\xde\xad\xbe\xef");
  corrupt "empty request" (fun () -> Protocol.decode_request "");
  corrupt "unknown opcode" (fun () -> Protocol.decode_request "\x63");
  corrupt "trailing bytes" (fun () ->
      Protocol.decode_request (Protocol.encode_request Protocol.Stats ^ "\x00"));
  corrupt "truncated predict" (fun () ->
      let enc =
        Protocol.encode_request
          (Protocol.Predict
             { name = "m"; states = [| 0 |]; xs = Mat.create 1 3 })
      in
      Protocol.decode_request (String.sub enc 0 (String.length enc - 5)));
  corrupt "garbage reply" (fun () -> Protocol.decode_reply "\x7f\x00")

(* --- Client/server loopback over a socketpair ------------------------ *)

let with_loopback registry f =
  let srv_fd, cl_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let th = Thread.create (fun () -> Server.serve_fd ~registry srv_fd) () in
  let client = Client.of_fd cl_fd in
  Fun.protect
    ~finally:(fun () ->
      (try Client.close client with Unix.Unix_error _ -> ());
      Thread.join th)
    (fun () -> f client)

let test_loopback_serving () =
  let m = synth_model ~dim:5 ~k:3 ~a:8 () in
  let registry = Registry.create () in
  Registry.put registry ~name:"m" m;
  with_loopback registry (fun c ->
      (* Predictions over the wire match the local engine bitwise. *)
      let n = 17 in
      let xs = Mat.init n m.Model.input_dim (fun _ _ -> g ()) in
      let states = Array.init n (fun i -> i mod m.Model.n_states) in
      let lm, ls = Engine.predict_batch m ~states ~xs in
      (match Client.predict c ~name:"m" ~states ~xs with
      | Ok (rm, rs) ->
          check_true "served predictions bit-identical"
            (bits_eq lm rm && bits_eq ls rs)
      | Error e -> Alcotest.failf "predict: %s" e);
      (* Inline load, then predict against the shipped model. *)
      (match Client.load_inline c ~name:"w" ~image:(Snapshot.encode m) with
      | Ok (n_active, n_states, _) ->
          check_true "loaded shape"
            (n_active = Model.n_active m && n_states = m.Model.n_states)
      | Error e -> Alcotest.failf "load_inline: %s" e);
      (match Client.predict c ~name:"w" ~states ~xs with
      | Ok (rm, rs) ->
          check_true "inline-loaded model serves identically"
            (bits_eq lm rm && bits_eq ls rs)
      | Error e -> Alcotest.failf "predict after load: %s" e);
      Client.shutdown c)

let test_loopback_errors () =
  let m = synth_model ~dim:4 ~k:2 ~a:5 () in
  let registry = Registry.create () in
  Registry.put registry ~name:"m" m;
  with_loopback registry (fun c ->
      let expect_code name code reply =
        match reply with
        | Protocol.Error { code = got; _ } when got = code -> ()
        | _ -> Alcotest.failf "%s: expected %s" name (Protocol.error_code_name code)
      in
      (* Unknown model. *)
      expect_code "unknown model" Protocol.Model_not_found
        (Client.call c
           (Protocol.Predict
              { name = "nope"; states = [| 0 |]; xs = Mat.create 1 4 }));
      (* Shape mismatch from the engine. *)
      expect_code "bad shape" Protocol.Bad_request
        (Client.call c
           (Protocol.Predict { name = "m"; states = [| 0 |]; xs = Mat.create 1 9 }));
      (* Corrupt inline snapshot. *)
      expect_code "corrupt image" Protocol.Bad_snapshot
        (Client.call c
           (Protocol.Load { name = "x"; source = Protocol.Inline "garbage" }));
      (* Injected decode fault: same typed reply as real corruption. *)
      Inject.arm ~seed:5 ~prob:1.0 ~sites:[ "serve.decode" ] ();
      Fun.protect ~finally:Inject.disarm (fun () ->
          expect_code "injected decode fault" Protocol.Bad_snapshot
            (Client.call c
               (Protocol.Load
                  { name = "x"; source = Protocol.Inline (Snapshot.encode m) })));
      (* Malformed frame: typed error, connection survives. *)
      expect_code "malformed frame" Protocol.Bad_frame
        (Client.send_raw c "\xde\xad\xbe\xef");
      (match Client.predict c ~name:"m" ~states:[| 1 |] ~xs:(Mat.create 1 4) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "connection died after bad frame: %s" e);
      (* Stats blob reaches the client. *)
      (match Client.stats c with
      | Ok json ->
          check_true "stats is json" (String.length json > 2 && json.[0] = '{')
      | Error e -> Alcotest.failf "stats: %s" e);
      Client.shutdown c)

(* --- Fault taxonomy integration -------------------------------------- *)

let test_bad_snapshot_fault () =
  let f = Fault.Bad_snapshot { site = "snapshot.load"; reason = "short header" } in
  check_true "rendering"
    (String.equal "bad-snapshot @snapshot.load: short header" (Fault.to_string f));
  check_true "class" (Fault.class_of f = Fault.C_bad_snapshot);
  check_true "class name"
    (String.equal "bad-snapshot" (Fault.class_name Fault.C_bad_snapshot));
  check_true "site" (String.equal "snapshot.load" (Fault.site f));
  (* Diag sorts deterministically by rendering: bad-snapshot sorts
     ahead of not-pd and worker-error. *)
  let d = Diag.create () in
  Diag.record d (Fault.Worker_error { site = "pool"; message = "boom" });
  Diag.record d f;
  Diag.record d (Fault.Not_pd { site = "chol.factorize"; dim = 3; tries = 2 });
  let faults = Diag.faults d in
  check_int "all recorded" 3 (Array.length faults);
  check_true "deterministic order" (faults.(0) = f);
  check_int "counted by class" 1 (Diag.count_class d Fault.C_bad_snapshot)

let suite =
  [ ( "serve.codec",
      [ case "primitive round-trips (incl. NaN payloads)" test_codec_roundtrip;
        case "truncation and hostile lengths rejected" test_codec_rejects;
        case "fnv64 reference vectors" test_codec_fnv64 ] );
    ( "serve.snapshot",
      [ case "round-trip bit-identity" test_snapshot_roundtrip;
        case "special-float payloads round-trip" test_snapshot_special_floats;
        case "every truncation rejected" test_snapshot_truncation;
        case "every sampled bit flip rejected" test_snapshot_bit_flips;
        case "version/reserved/magic/trailing rejected" test_snapshot_versioning;
        case "atomic save + load, missing file typed" test_snapshot_file_io;
        case "injected decode fault" test_snapshot_injected_fault ] );
    ( "serve.model",
      [ case "validate rejects inconsistencies" test_model_validate_rejects;
        case "equal is bitwise" test_model_equal_is_bitwise;
        case "invalid_arg validation" test_model_invalid_args ] );
    ( "serve.registry",
      [ case "put/get/find/remove/names" test_registry_basics;
        case "lazy load + LRU demotion" test_registry_lazy_and_lru;
        case "path-less slots dropped on eviction" test_registry_put_only_eviction ] );
    ( "serve.engine",
      [ case "batch = scalar bitwise across shapes" test_engine_matches_scalar;
        case "batch of one = Model.predict" test_engine_batch_of_one;
        case "1/2/4 domains bit-identical" test_engine_domain_invariance;
        case "invalid_arg validation" test_engine_invalid_args ] );
    ( "serve.protocol",
      [ case "request/reply round-trips" test_protocol_roundtrip;
        case "malformed bodies rejected" test_protocol_rejects ] );
    ( "serve.server",
      [ case "socketpair loopback serving" test_loopback_serving;
        case "typed errors, connection survives" test_loopback_errors ] );
    ( "serve.fault",
      [ case "Bad_snapshot taxonomy integration" test_bad_snapshot_fault ] ) ]
