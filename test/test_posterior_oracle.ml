(* Property-based oracle for the structured posterior: on random small
   (K, N, M) instances with every basis function active, the blocked
   O((NK)²·a) path of [Posterior.compute] — including its domain-pool
   fan-out — must agree with the literal dense reference
   [Posterior.naive_dense] (eqs. 19–21) on μ, every Σ-block and the
   NLML to 1e-8, and must be bit-identical across pool sizes. *)

open Cbmf_linalg
open Cbmf_model
open Helpers
module Pool = Cbmf_parallel.Pool

let build_case ~k ~n ~m ~seed =
  let rng = Cbmf_prob.Rng.create seed in
  let design =
    Array.init k (fun _ ->
        Mat.init n m (fun _ _ -> Cbmf_prob.Rng.gaussian rng))
  in
  let response = Array.init k (fun _ -> Cbmf_prob.Rng.gaussian_vector rng n) in
  let d = Dataset.create ~design ~response in
  let lambda = Array.init m (fun _ -> 0.05 +. Cbmf_prob.Rng.float rng) in
  let r0 = 0.9 *. Cbmf_prob.Rng.float rng in
  let sigma0 = 0.5 +. Cbmf_prob.Rng.float rng in
  let prior =
    Cbmf_core.Prior.create ~lambda
      ~r:(Cbmf_core.Prior.r_of_r0 ~n_states:k ~r0)
      ~sigma0
  in
  (d, prior)

(* |a − b| ≤ tol·(1 + max |naive|), elementwise. *)
let close ~tol reference delta = delta <= tol *. (1.0 +. reference)

let mat_scale (a : Mat.t) = Mat.max_abs a

let compute_all (d : Dataset.t) prior =
  let active = Array.init d.Dataset.n_basis Fun.id in
  Cbmf_core.Posterior.compute ~need_sigma:true d prior ~active

let gen_case =
  QCheck2.Gen.(
    quad (int_range 1 4) (int_range 2 6) (int_range 2 8) (int_range 0 100_000))

let prop_matches_dense_oracle (k, n, m, seed) =
  let d, prior = build_case ~k ~n ~m ~seed in
  let post = compute_all d prior in
  let mu_naive, sigma_naive, nlml_naive = Cbmf_core.Posterior.naive_dense d prior in
  let tol = 1e-8 in
  let mu_ok =
    close ~tol (mat_scale mu_naive)
      (Mat.max_abs (Mat.sub mu_naive post.Cbmf_core.Posterior.mu))
  in
  let nlml_ok =
    close ~tol (abs_float nlml_naive)
      (abs_float (nlml_naive -. post.Cbmf_core.Posterior.nlml))
  in
  let blocks_ok =
    Array.for_all
      (fun (col, block) ->
        let naive_block =
          Mat.init k k (fun s1 s2 ->
              Mat.get sigma_naive ((col * k) + s1) ((col * k) + s2))
        in
        close ~tol (mat_scale naive_block)
          (Mat.max_abs (Mat.sub naive_block block)))
      post.Cbmf_core.Posterior.sigma_blocks
  in
  mu_ok && nlml_ok && blocks_ok

let prop_bit_identical_across_domains (k, n, m, seed) =
  let d, prior = build_case ~k ~n ~m ~seed in
  Pool.set_default_size 1;
  let p1 = compute_all d prior in
  let others =
    List.map
      (fun size ->
        Pool.set_default_size size;
        compute_all d prior)
      [ 4; 8 ]
  in
  Pool.set_default_size (Pool.env_domains ());
  let mats_equal (a : Mat.t) (b : Mat.t) = a.Mat.data = b.Mat.data in
  List.for_all
    (fun p4 ->
      mats_equal p1.Cbmf_core.Posterior.mu p4.Cbmf_core.Posterior.mu
      && Int64.equal
           (Int64.bits_of_float p1.Cbmf_core.Posterior.nlml)
           (Int64.bits_of_float p4.Cbmf_core.Posterior.nlml)
      && Array.for_all2
           (fun (c1, b1) (c4, b4) -> c1 = c4 && mats_equal b1 b4)
           p1.Cbmf_core.Posterior.sigma_blocks
           p4.Cbmf_core.Posterior.sigma_blocks)
    others

(* Sparse active sets exercise the a < M corner of the pair loops. *)
let prop_active_subset_matches (k, n, m, seed) =
  let d, prior = build_case ~k ~n ~m ~seed in
  let active = Array.init ((m + 1) / 2) (fun i -> 2 * i) in
  Pool.set_default_size 1;
  let p1 = Cbmf_core.Posterior.compute ~need_sigma:true d prior ~active in
  Pool.set_default_size 4;
  let p4 = Cbmf_core.Posterior.compute ~need_sigma:true d prior ~active in
  Pool.set_default_size (Pool.env_domains ());
  p1.Cbmf_core.Posterior.mu.Mat.data = p4.Cbmf_core.Posterior.mu.Mat.data
  && Int64.equal
       (Int64.bits_of_float p1.Cbmf_core.Posterior.nlml)
       (Int64.bits_of_float p4.Cbmf_core.Posterior.nlml)

(* [need_sigma:false] must agree exactly with the full path on
   everything it claims to compute (μ, NLML, residual), return no
   Σ-blocks and a zero trace — on whichever solver path [`Auto]
   picks. *)
let prop_need_sigma_false_parity (k, n, m, seed) =
  let d, prior = build_case ~k ~n ~m ~seed in
  let active = Array.init d.Dataset.n_basis Fun.id in
  let full = Cbmf_core.Posterior.compute ~need_sigma:true d prior ~active in
  let lean = Cbmf_core.Posterior.compute ~need_sigma:false d prior ~active in
  lean.Cbmf_core.Posterior.mu.Mat.data = full.Cbmf_core.Posterior.mu.Mat.data
  && Int64.equal
       (Int64.bits_of_float lean.Cbmf_core.Posterior.nlml)
       (Int64.bits_of_float full.Cbmf_core.Posterior.nlml)
  && Int64.equal
       (Int64.bits_of_float lean.Cbmf_core.Posterior.resid_sq)
       (Int64.bits_of_float full.Cbmf_core.Posterior.resid_sq)
  && lean.Cbmf_core.Posterior.sigma_blocks = [||]
  && lean.Cbmf_core.Posterior.trace_ginv = 0.0
  && lean.Cbmf_core.Posterior.path = full.Cbmf_core.Posterior.path

(* Predictive (mean, variance) vs the dense Σp of [naive_dense]: for a
   random basis row b and state st the functional a selects entries
   (j, st), so var = Σ_{j1,j2} b_{j1} b_{j2} Σp[(j1·K+st),(j2·K+st)]. *)
let prop_predictive_matches_dense (k, n, m, seed) =
  let d, prior = build_case ~k ~n ~m ~seed in
  let rng = Cbmf_prob.Rng.create (seed + 7) in
  let b = Cbmf_prob.Rng.gaussian_vector rng m in
  let st = Cbmf_prob.Rng.int rng k in
  let mu_naive, sigma_naive, _ = Cbmf_core.Posterior.naive_dense d prior in
  let mean_naive = ref 0.0 and var_naive = ref 0.0 in
  for j = 0 to m - 1 do
    mean_naive := !mean_naive +. (b.(j) *. Mat.get mu_naive j st);
    for j2 = 0 to m - 1 do
      var_naive :=
        !var_naive
        +. (b.(j) *. b.(j2) *. Mat.get sigma_naive ((j * k) + st) ((j2 * k) + st))
    done
  done;
  let tol = 1e-8 in
  List.for_all
    (fun path ->
      let post =
        Cbmf_core.Posterior.compute ~need_sigma:false ~path d prior
          ~active:(Array.init m Fun.id)
      in
      let mean, var = post.Cbmf_core.Posterior.predictive ~state:st b in
      close ~tol (abs_float !mean_naive) (abs_float (mean -. !mean_naive))
      && close ~tol (abs_float !var_naive)
           (abs_float (var -. Float.max !var_naive 0.0)))
    [ `Dual; `Primal ]

(* Woodbury (primal) vs dual on randomized (N, K, a) shapes, forcing
   both solvers on the same instance — including a = 1 and aK > NK
   (the regime where [`Auto] would pick dual). *)
let gen_woodbury_case =
  QCheck2.Gen.(
    pair gen_case (int_range 1 100))

let prop_woodbury_matches_dual ((k, n, m, seed), apick) =
  let d, prior = build_case ~k ~n ~m ~seed in
  let a = 1 + (apick mod m) in
  (* a ≤ m, so the strided picks i·m/a are strictly increasing. *)
  let active = Array.init a (fun i -> i * m / a) in
  let dual =
    Cbmf_core.Posterior.compute ~need_sigma:true ~path:`Dual d prior ~active
  in
  let primal =
    Cbmf_core.Posterior.compute ~need_sigma:true ~path:`Primal d prior ~active
  in
  let tol = 1e-8 in
  let rng = Cbmf_prob.Rng.create (seed + 13) in
  let b = Cbmf_prob.Rng.gaussian_vector rng m in
  let st = Cbmf_prob.Rng.int rng k in
  let mean_d, var_d = dual.Cbmf_core.Posterior.predictive ~state:st b in
  let mean_p, var_p = primal.Cbmf_core.Posterior.predictive ~state:st b in
  dual.Cbmf_core.Posterior.path = `Dual
  && primal.Cbmf_core.Posterior.path = `Primal
  && close ~tol
       (mat_scale dual.Cbmf_core.Posterior.mu)
       (Mat.max_abs
          (Mat.sub dual.Cbmf_core.Posterior.mu primal.Cbmf_core.Posterior.mu))
  && close ~tol
       (abs_float dual.Cbmf_core.Posterior.nlml)
       (abs_float
          (dual.Cbmf_core.Posterior.nlml -. primal.Cbmf_core.Posterior.nlml))
  && close ~tol
       (abs_float dual.Cbmf_core.Posterior.resid_sq)
       (abs_float
          (dual.Cbmf_core.Posterior.resid_sq
          -. primal.Cbmf_core.Posterior.resid_sq))
  && close ~tol
       (abs_float dual.Cbmf_core.Posterior.trace_ginv)
       (abs_float
          (dual.Cbmf_core.Posterior.trace_ginv
          -. primal.Cbmf_core.Posterior.trace_ginv))
  && Array.for_all2
       (fun (c1, b1) (c2, b2) ->
         c1 = c2 && close ~tol (mat_scale b1) (Mat.max_abs (Mat.sub b1 b2)))
       dual.Cbmf_core.Posterior.sigma_blocks
       primal.Cbmf_core.Posterior.sigma_blocks
  && close ~tol (abs_float mean_d) (abs_float (mean_d -. mean_p))
  && close ~tol (abs_float var_d) (abs_float (var_d -. var_p))

(* a = 1 pinned explicitly (the thinnest possible primal system). *)
let prop_woodbury_single_active (k, n, m, seed) =
  prop_woodbury_matches_dual ((k, n, m, seed), 0)

let suite =
  [ ( "parallel.posterior-oracle",
      [ qcase ~count:40 "compute = naive_dense (mu, Sigma, NLML) @ 1e-8"
          gen_case prop_matches_dense_oracle;
        qcase ~count:15 "bit-identical at 1 vs 4 vs 8 domains" gen_case
          prop_bit_identical_across_domains;
        qcase ~count:15 "sparse active set, 1 vs 4 domains" gen_case
          prop_active_subset_matches;
        qcase ~count:25 "need_sigma:false = full path (mu, NLML, resid)"
          gen_case prop_need_sigma_false_parity;
        qcase ~count:25 "predictive (mean, var) = dense Sigma_p @ 1e-8"
          gen_case prop_predictive_matches_dense;
        qcase ~count:40 "Woodbury primal = dual @ 1e-8 (random shapes)"
          gen_woodbury_case prop_woodbury_matches_dual;
        qcase ~count:15 "Woodbury primal = dual @ a = 1" gen_case
          prop_woodbury_single_active ] ) ]
