(* Serving-engine stress at state counts no physical testbench reaches:
   spec-driven snapshots with K > 64 states whose effective active
   support differs per state (per_state_drop), checked bit-identical
   against the scalar Model.predict reference at 1, 2 and 4 domains. *)

open Helpers
open Cbmf_linalg
module Synthetic = Cbmf_circuit.Synthetic
module Model = Cbmf_serve.Model
module Engine = Cbmf_serve.Engine
module Pool = Cbmf_parallel.Pool

let big_spec k =
  { Synthetic.default_spec with
    Synthetic.k;
    m = 51;
    d = 25;
    active_per_state = 6;
    rho = 0.8;
    noise_sigma = 0.03;
    density = 0.3;
    seed = 17 }

let snapshot ?(drop = 0.35) k =
  let t = Synthetic.truth ~per_state_drop:drop (big_spec k) in
  (t, Model.of_synthetic t)

let row (xs : Mat.t) i = Array.init xs.Mat.cols (fun j -> Mat.get xs i j)

let with_default_size size f =
  let prev = Pool.env_domains () in
  Pool.set_default_size size;
  Fun.protect ~finally:(fun () -> Pool.set_default_size prev) f

let test_snapshot_valid () =
  let t, m = snapshot 96 in
  (match Model.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid synthetic snapshot: %s" e);
  check_int "96 states" 96 m.Model.n_states;
  check_int "active" 6 (Model.n_active m);
  (* per_state_drop really produced per-state-differing support: the
     posterior-mean matrix has zeroed entries in some states only. *)
  let zero_pattern s =
    Array.init (Model.n_active m) (fun j -> Mat.get m.Model.mu j s = 0.0)
  in
  let p0 = zero_pattern 0 in
  check_true "support differs across states"
    (Array.exists
       (fun s -> zero_pattern s <> p0)
       (Array.init 95 (fun s -> s + 1)));
  (* Predictive mean is the oracle: identity standardization makes the
     serving model exact, bit for bit. *)
  let xs, states = Synthetic.batch_inputs t ~salt:2 ~n:10 in
  for i = 0 to 9 do
    let x = row xs i in
    let mean, sd = Model.predict m ~state:states.(i) x in
    check_true "mean is the oracle"
      (Int64.equal
         (Int64.bits_of_float mean)
         (Int64.bits_of_float (Synthetic.mean_at t ~state:states.(i) x)));
    check_true "sd positive" (sd > 0.0)
  done

let check_batch_matches_scalar ~k ~n =
  let t, m = snapshot k in
  let xs, states = Synthetic.batch_inputs t ~salt:1 ~n in
  (* Scalar reference, computed once outside any pool influence. *)
  let ref_means = Array.make n 0.0 and ref_sds = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let mean, sd = Model.predict m ~state:states.(i) (row xs i) in
    ref_means.(i) <- mean;
    ref_sds.(i) <- sd
  done;
  let hashes =
    List.map
      (fun size ->
        with_default_size size (fun () ->
            let means, sds = Engine.predict_batch m ~states ~xs in
            check_int "means length" n (Array.length means);
            for i = 0 to n - 1 do
              if not (Int64.equal (Int64.bits_of_float means.(i))
                        (Int64.bits_of_float ref_means.(i)))
              then
                Alcotest.failf
                  "K=%d domains=%d: mean[%d] %.17g <> scalar %.17g" k size i
                  means.(i) ref_means.(i);
              if not (Int64.equal (Int64.bits_of_float sds.(i))
                        (Int64.bits_of_float ref_sds.(i)))
              then
                Alcotest.failf "K=%d domains=%d: sd[%d] differs from scalar" k
                  size i
            done;
            Int64.logxor (hash_floats means) (hash_floats sds)))
      [ 1; 2; 4 ]
  in
  match hashes with
  | [ h1; h2; h4 ] ->
      check_true "1 = 2 domains" (Int64.equal h1 h2);
      check_true "1 = 4 domains" (Int64.equal h1 h4)
  | _ -> assert false

let test_batch_96_states () =
  (* n > chunk_size forces multi-chunk fan-out; 96 states guarantees
     states beyond the 64 mark are exercised (round-robin hits all). *)
  check_batch_matches_scalar ~k:96 ~n:(Engine.chunk_size + 37)

let test_batch_130_states () = check_batch_matches_scalar ~k:130 ~n:260

let test_every_state_covered () =
  let t, m = snapshot 96 in
  let xs, states = Synthetic.batch_inputs t ~salt:3 ~n:192 in
  let seen = Array.make 96 false in
  Array.iter (fun s -> seen.(s) <- true) states;
  check_true "all 96 states exercised" (Array.for_all Fun.id seen);
  let means, _ = Engine.predict_batch m ~states ~xs in
  check_true "all finite" (Array.for_all Float.is_finite means)

let suite =
  [ ( "engine-stress",
      [ case "snapshot_valid" test_snapshot_valid;
        slow_case "batch_96_states" test_batch_96_states;
        slow_case "batch_130_states" test_batch_130_states;
        case "every_state_covered" test_every_state_covered ] ) ]
