open Cbmf_linalg
open Helpers

let test_reconstruct () =
  let a = random_spd 6 in
  let f = Chol.factorize a in
  let l = Chol.lower f in
  mat_close ~tol:1e-9 "l·lᵀ = a" a (Mat.matmul_nt l l)

let test_solve () =
  let a = random_spd 8 in
  let x = random_vec 8 in
  let b = Mat.mat_vec a x in
  let f = Chol.factorize a in
  vec_close ~tol:1e-7 "solve" x (Chol.solve_vec f b)

let test_solve_mat () =
  let a = random_spd 5 in
  let f = Chol.factorize a in
  let x = random_mat 5 3 in
  let b = Mat.matmul a x in
  mat_close ~tol:1e-7 "solve_mat" x (Chol.solve_mat f b)

let test_solve_lower_mat () =
  (* Sizes straddle the 32-column panel width. *)
  List.iter
    (fun (n, nc) ->
      let a = random_spd n in
      let f = Chol.factorize a in
      let b = random_mat n nc in
      let x = Chol.solve_lower_mat f b in
      let l = Chol.lower f in
      mat_close ~tol:1e-7
        (Printf.sprintf "l·x = b (%dx%d)" n nc)
        b (Mat.matmul l x);
      (* Column-wise reference. *)
      for j = 0 to nc - 1 do
        vec_close ~tol:1e-9
          (Printf.sprintf "col %d = solve_lower" j)
          (Chol.solve_lower f (Mat.col b j))
          (Mat.col x j)
      done)
    [ (6, 3); (9, 33); (5, 64) ]

let test_solve_lower_mat_sparse_rhs () =
  (* Leading zero rows (a stacked block-diagonal RHS) must give the
     exact column-wise solution — the panel skip starts mid-matrix. *)
  let n = 8 in
  let a = random_spd n in
  let f = Chol.factorize a in
  let b = Mat.init n 4 (fun i j -> if i >= 5 then float_of_int (i + j) else 0.0) in
  let x = Chol.solve_lower_mat f b in
  for j = 0 to 3 do
    vec_close ~tol:1e-9 "sparse rhs col"
      (Chol.solve_lower f (Mat.col b j))
      (Mat.col x j)
  done;
  (* Rows above the first nonzero stay exactly zero. *)
  for i = 0 to 4 do
    for j = 0 to 3 do
      check_float "leading zero rows" 0.0 (Mat.get x i j)
    done
  done

let test_lower_inverse_t () =
  let a = random_spd 7 in
  let f = Chol.factorize a in
  let linv_t = Chol.lower_inverse_t f in
  let l = Chol.lower f in
  (* Rows of linv_t are the columns of l⁻¹: l·(linv_t)ᵀ = I. *)
  mat_close ~tol:1e-8 "l·(linv_t)ᵀ = I" (Mat.identity 7)
    (Mat.matmul_nt l linv_t);
  (* a⁻¹ = (linv_t)·(linv_t)ᵀ, and ‖linv_t‖_F² = Tr(a⁻¹). *)
  mat_close ~tol:1e-8 "linv_t·linv_tᵀ = a⁻¹" (Chol.inverse f)
    (Mat.syrk_nt linv_t);
  check_float ~tol:1e-8 "frobenius² = trace_inverse" (Chol.trace_inverse f)
    (Mat.frobenius linv_t ** 2.0)

let test_inverse () =
  let a = random_spd 5 in
  let inv = Chol.inverse (Chol.factorize a) in
  mat_close ~tol:1e-8 "a·a⁻¹ = I" (Mat.identity 5) (Mat.matmul a inv);
  check_true "inverse symmetric" (Mat.is_symmetric ~tol:1e-8 inv)

let test_logdet () =
  let d = Mat.diag (Vec.of_list [ 2.0; 3.0; 4.0 ]) in
  check_float ~tol:1e-10 "logdet diag" (log 24.0) (Chol.log_det (Chol.factorize d));
  check_float ~tol:1e-8 "det diag" 24.0 (Chol.det (Chol.factorize d))

let test_quad_inv () =
  let a = random_spd 6 in
  let f = Chol.factorize a in
  let b = random_vec 6 in
  check_float ~tol:1e-8 "quad_inv = bᵀa⁻¹b"
    (Vec.dot b (Chol.solve_vec f b))
    (Chol.quad_inv f b)

let test_trace_inverse () =
  let a = random_spd 7 in
  let f = Chol.factorize a in
  check_float ~tol:1e-8 "trace_inverse"
    (Mat.trace (Chol.inverse f))
    (Chol.trace_inverse f)

let test_not_pd () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  (match Chol.factorize a with
  | _ -> Alcotest.fail "expected Not_positive_definite"
  | exception Chol.Not_positive_definite _ -> ());
  check_true "is_positive_definite false" (not (Chol.is_positive_definite a));
  check_true "retry repairs"
    (let _ = Chol.factorize_with_retry (Mat.scalar 3 1e-18) in
     true)

let test_rank1_update () =
  let a = random_spd 6 in
  let v = random_vec 6 in
  let f = Chol.factorize a in
  Chol.rank1_update f (Vec.copy v);
  let updated = Mat.copy a in
  Mat.add_outer_inplace updated 1.0 v v;
  mat_close ~tol:1e-8 "cholupdate"
    updated
    (let l = Chol.lower f in
     Mat.matmul_nt l l)

let test_rank1_sequence () =
  (* Build a + Σ v_i v_iᵀ by repeated updates; compare against direct. *)
  let n = 5 in
  let a = Mat.scalar n 0.5 in
  let f = Chol.of_scaled_identity n 0.5 in
  let acc = Mat.copy a in
  for _ = 1 to 8 do
    let v = random_vec n in
    Mat.add_outer_inplace acc 1.0 v v;
    Chol.rank1_update f v
  done;
  let direct = Chol.factorize acc in
  check_float ~tol:1e-7 "logdet after updates" (Chol.log_det direct) (Chol.log_det f);
  let b = random_vec n in
  vec_close ~tol:1e-7 "solve after updates" (Chol.solve_vec direct b)
    (Chol.solve_vec f b)

let test_copy_independent () =
  let f = Chol.factorize (random_spd 4) in
  let g = Chol.copy f in
  Chol.rank1_update g (random_vec 4);
  (* The original must be unchanged: logdet of copy differs. *)
  check_true "copy independent" (Chol.log_det f < Chol.log_det g)

let test_nearest_pd () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Chol.nearest_pd_inplace a;
  check_true "repaired PD" (Chol.is_positive_definite a)

let test_sample_transform () =
  let a = random_spd 4 in
  let f = Chol.factorize a in
  let z = random_vec 4 in
  vec_close ~tol:1e-10 "l·z" (Mat.mat_vec (Chol.lower f) z) (Chol.sample_transform f z)

let prop_solve_residual =
  qcase ~count:40 "‖a·solve(b) − b‖ small"
    QCheck2.Gen.(int_range 1 10)
    (fun n ->
      let a = random_spd n in
      let b = random_vec n in
      let x = Chol.solve_vec (Chol.factorize a) b in
      Vec.dist (Mat.mat_vec a x) b <= 1e-6 *. Float.max 1.0 (Vec.norm2 b))

let prop_logdet_scaling =
  qcase ~count:40 "logdet(c·a) = n·log c + logdet a"
    QCheck2.Gen.(pair (int_range 1 8) (float_range 0.5 4.0))
    (fun (n, c) ->
      let a = random_spd n in
      let ld = Chol.log_det (Chol.factorize a) in
      let ldc = Chol.log_det (Chol.factorize (Mat.scale c a)) in
      abs_float (ldc -. (ld +. (float_of_int n *. log c))) <= 1e-7)

let suite =
  [ ( "linalg.chol",
      [ case "reconstruct" test_reconstruct;
        case "solve" test_solve;
        case "solve_mat" test_solve_mat;
        case "solve_lower_mat" test_solve_lower_mat;
        case "solve_lower_mat sparse rhs" test_solve_lower_mat_sparse_rhs;
        case "inverse" test_inverse;
        case "lower_inverse_t" test_lower_inverse_t;
        case "logdet/det" test_logdet;
        case "quad_inv" test_quad_inv;
        case "trace_inverse" test_trace_inverse;
        case "non-PD detection" test_not_pd;
        case "rank1 update" test_rank1_update;
        case "rank1 sequence" test_rank1_sequence;
        case "copy independence" test_copy_independent;
        case "nearest_pd repair" test_nearest_pd;
        case "sample_transform" test_sample_transform;
        prop_solve_residual;
        prop_logdet_scaling ] ) ]
