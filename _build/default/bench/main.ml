(* Benchmark harness.

   Regenerates every table and figure of the paper's evaluation
   (Tables 1-2, Figures 2(b)-(d), 3(b)-(d)), runs the ablation studies
   from DESIGN.md, and closes with Bechamel micro-benchmarks of the
   fitting kernels behind each table/figure (on a dimension-reduced
   instance so Bechamel can afford many repetitions; the harness above
   reports the true paper-scale fitting costs).

   Usage: main.exe [tab1] [tab2] [fig2] [fig3] [ablation] [micro] [par] [quick|full]
   With no arguments everything runs at paper scale with a 4-point
   sample-budget grid for the figures; [full] uses the paper's 6-point
   grid, [quick] reduced (non-paper) settings. *)

open Cbmf_experiments

let fmt = Format.std_formatter

let section title = Format.fprintf fmt "@.=== %s ===@.@." title

(* Monte-Carlo data is generated once per circuit and shared. *)
let data_cache : (string, Workload.data) Hashtbl.t = Hashtbl.create 4

let data_for name =
  match Hashtbl.find_opt data_cache name with
  | Some d -> d
  | None ->
      let w = match name with "lna" -> Workload.lna () | _ -> Workload.mixer () in
      Format.fprintf fmt "[generating Monte-Carlo data: %s]@." name;
      let d = Workload.generate w ~seed:1 ~n_train_max:35 ~n_test_per_state:50 in
      Hashtbl.add data_cache name d;
      d

let cbmf_config ~quick =
  if quick then Cbmf_core.Cbmf.fast_config else Cbmf_core.Cbmf.default_config

let run_table ~quick id name =
  section (Printf.sprintf "%s (paper Table %s: %s)" id (String.sub id 3 1) name);
  let t = Tables.run ~cbmf_config:(cbmf_config ~quick) (data_for name) in
  Format.fprintf fmt "%a@." Tables.pp t;
  Format.fprintf fmt "Accuracy preserved (<=10%% relative): %b@."
    (Tables.accuracy_preserved t)

let run_figure ~quick ~full id name =
  section
    (Printf.sprintf "%s (paper Figure %s(b)-(d): %s error vs samples)" id
       (String.sub id 3 1) name);
  let n_grid =
    if quick then [| 10; 20; 35 |]
    else if full then [| 10; 15; 20; 25; 30; 35 |]
    else [| 10; 15; 25; 35 |]
  in
  let series =
    Sweep.run_all ~cbmf_config:(cbmf_config ~quick) ~n_grid (data_for name)
  in
  Array.iter (fun s -> Format.fprintf fmt "%a@.@." Sweep.pp s) series

let run_ablation () =
  section "Ablations (DESIGN.md: ablation-r / ablation-em / ablation-r0)";
  List.iter
    (fun name ->
      let data = data_for name in
      let a = Ablation.run data ~poi:0 ~n_per_state:15 in
      Format.fprintf fmt "%a@.@." Ablation.pp a)
    [ "lna"; "mixer" ]

(* --- Domain-parallel EM fit ---------------------------------------- *)

let run_par ~quick =
  section "par (domain-parallel EM fit: 1 vs 4 domains, LNA workload)";
  let module Pool = Cbmf_parallel.Pool in
  let data = data_for "lna" in
  let train = Workload.train_dataset data ~poi:0 ~n_per_state:15 in
  let config = cbmf_config ~quick in
  let time_fit domains =
    Pool.set_default_size domains;
    ignore (Cbmf_core.Cbmf.fit ~config train);
    (* warm *)
    let t0 = Unix.gettimeofday () in
    ignore (Cbmf_core.Cbmf.fit ~config train);
    Unix.gettimeofday () -. t0
  in
  let domains_par = 4 in
  let seconds_base = time_fit 1 in
  let seconds_par = time_fit domains_par in
  Pool.set_default_size (Pool.env_domains ());
  let speedup = seconds_base /. seconds_par in
  Format.fprintf fmt "  EM fit, 1 domain:  %8.3f s@." seconds_base;
  Format.fprintf fmt "  EM fit, %d domains: %8.3f s@." domains_par seconds_par;
  Format.fprintf fmt "  speedup: %.2fx  (recommended_domain_count = %d)@."
    speedup
    (Domain.recommended_domain_count ());
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"lna\",\n\
    \  \"kernel\": \"em-fit\",\n\
    \  \"n_per_state\": 15,\n\
    \  \"domains_base\": 1,\n\
    \  \"domains_par\": %d,\n\
    \  \"seconds_base\": %.6f,\n\
    \  \"seconds_par\": %.6f,\n\
    \  \"speedup\": %.4f,\n\
    \  \"recommended_domain_count\": %d\n\
     }\n"
    domains_par seconds_base seconds_par speedup
    (Domain.recommended_domain_count ());
  close_out oc;
  Format.fprintf fmt "  [wrote BENCH_parallel.json]@."

(* --- Bechamel micro-benchmarks ------------------------------------- *)

let micro_dataset () =
  (* Dimension-reduced C-BMF instance: K = 32 states, N = 15 samples,
     M = 200 basis functions, planted sparse/correlated truth. *)
  let open Cbmf_linalg in
  let rng = Cbmf_prob.Rng.create 11 in
  let k = 32 and n = 15 and m = 200 in
  let support = [| 3; 20; 57; 101; 160 |] in
  let design =
    Array.init k (fun _ ->
        Mat.init n m (fun _ j ->
            if j = 0 then 1.0 else Cbmf_prob.Rng.gaussian rng))
  in
  let response =
    Array.init k (fun s ->
        Array.init n (fun i ->
            let acc = ref (2.0 +. (0.05 *. Cbmf_prob.Rng.gaussian rng)) in
            Array.iteri
              (fun si col ->
                let c = 1.0 /. float_of_int (si + 1) in
                let c = c *. (1.0 +. (0.2 *. sin (0.2 *. float_of_int s))) in
                acc := !acc +. (c *. Mat.get design.(s) i col))
              support;
            !acc))
  in
  Cbmf_model.Dataset.create ~design ~response

let micro () =
  section "Bechamel micro-benchmarks (dimension-reduced instances)";
  let open Bechamel in
  let open Toolkit in
  let d = micro_dataset () in
  let _, std = Cbmf_core.Standardize.fit d in
  let prior =
    let lambda = Array.make std.Cbmf_model.Dataset.n_basis 1e-7 in
    Array.iter (fun j -> lambda.(j) <- 1.0) [| 2; 19; 56; 100; 159 |];
    Cbmf_core.Prior.create ~lambda
      ~r:(Cbmf_core.Prior.r_of_r0 ~n_states:32 ~r0:0.9)
      ~sigma0:0.1
  in
  let fast = Cbmf_core.Cbmf.fast_config in
  let tests =
    Test.make_grouped ~name:"cbmf"
      [ (* Kernels behind Tables 1 & 2: one full fit per method. *)
        Test.make ~name:"tab1-tab2.somp-fit"
          (Staged.stage (fun () -> ignore (Cbmf_model.Somp.fit d ~n_terms:10)));
        Test.make ~name:"tab1-tab2.cbmf-fit"
          (Staged.stage (fun () -> ignore (Cbmf_core.Cbmf.fit ~config:fast d)));
        (* Kernels behind Figures 2 & 3: one sweep point = posterior
           solves + EM refinement + greedy initialization. *)
        Test.make ~name:"fig2-fig3.posterior"
          (Staged.stage (fun () ->
               ignore
                 (Cbmf_core.Posterior.compute ~need_sigma:true std prior
                    ~active:(Array.init std.Cbmf_model.Dataset.n_basis Fun.id))));
        Test.make ~name:"fig2-fig3.em-refine"
          (Staged.stage (fun () ->
               ignore
                 (Cbmf_core.Em.run
                    ~config:{ Cbmf_core.Em.default_config with max_iter = 2 }
                    std prior)));
        Test.make ~name:"fig2-fig3.init-pass"
          (Staged.stage (fun () ->
               ignore
                 (Cbmf_core.Init.greedy_pass ~train:std ~test:None ~r0:0.9
                    ~sigma0:0.1 ~theta_max:10)))
      ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 3.0) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ t ] -> Format.fprintf fmt "  %-30s %12.3f ms/run@." name (t /. 1e6)
      | _ -> Format.fprintf fmt "  %-30s (no estimate)@." name)
    rows

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let full = List.mem "full" args in
  let args = List.filter (fun a -> a <> "quick" && a <> "full") args in
  let all = args = [] in
  let want x = all || List.mem x args in
  let t0 = Unix.gettimeofday () in
  if want "tab1" then run_table ~quick "tab1" "lna";
  if want "tab2" then run_table ~quick "tab2" "mixer";
  if want "fig2" then run_figure ~quick ~full "fig2" "lna";
  if want "fig3" then run_figure ~quick ~full "fig3" "mixer";
  if want "ablation" then run_ablation ();
  if want "micro" then micro ();
  if want "par" then run_par ~quick;
  Format.fprintf fmt "@.[bench complete in %.1f s wall clock]@."
    (Unix.gettimeofday () -. t0)
