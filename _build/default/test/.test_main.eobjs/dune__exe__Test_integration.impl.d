test/test_integration.ml: Array Cbmf_circuit Cbmf_core Cbmf_experiments Cbmf_model Dataset Helpers Lazy Metrics Printf Somp Sweep Tables Workload
