test/test_circuit.ml: Array Cbmf_circuit Cbmf_prob Float Helpers Knob List Mosfet Process String Units
