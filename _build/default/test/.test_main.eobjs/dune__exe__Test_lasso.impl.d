test/test_lasso.ml: Array Cbmf_linalg Cbmf_model Cbmf_prob Dataset Float Helpers Lasso Mat Metrics Qr Vec
