test/test_prob.ml: Array Cbmf_linalg Cbmf_prob Float Fun Gaussian Helpers Lhs List Mat Mvn Rng Stats Vec
