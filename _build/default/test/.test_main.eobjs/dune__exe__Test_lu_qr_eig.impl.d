test/test_lu_qr_eig.ml: Alcotest Array Cbmf_linalg Chol Eig Fun Helpers Lu Mat QCheck2 Qr Vec
