test/test_mat.ml: Array Cbmf_linalg Helpers Mat QCheck2 Vec
