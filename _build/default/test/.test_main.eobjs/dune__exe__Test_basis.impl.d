test/test_basis.ml: Array Cbmf_basis Cbmf_linalg Dictionary Helpers Mat QCheck2 Term Vec
