test/test_core.ml: Alcotest Array Cbmf Cbmf_core Cbmf_linalg Cbmf_model Cbmf_prob Chol Dataset Em Fun Helpers Init List Mat Metrics Ols Posterior Printf Prior Somp Standardize Vec
