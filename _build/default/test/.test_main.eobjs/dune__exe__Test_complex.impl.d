test/test_complex.ml: Alcotest Array Cbmf_linalg Cbmf_prob Clu Cmat Complex Helpers QCheck2
