test/test_chol.ml: Alcotest Cbmf_linalg Chol Float Helpers Mat QCheck2 Vec
