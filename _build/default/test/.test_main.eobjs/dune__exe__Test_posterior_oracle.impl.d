test/test_posterior_oracle.ml: Array Cbmf_core Cbmf_linalg Cbmf_model Cbmf_parallel Cbmf_prob Dataset Fun Helpers Int64 Mat QCheck2
