test/test_parallel.ml: Alcotest Array Cbmf_circuit Cbmf_parallel Cbmf_prob Domain Fun Helpers Int64 List QCheck2
