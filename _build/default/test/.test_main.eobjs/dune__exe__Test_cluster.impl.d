test/test_cluster.ml: Array Cbmf Cbmf_core Cbmf_linalg Cbmf_model Cbmf_prob Cluster Dataset Helpers Mat Printf Vec
