test/test_group_lasso.ml: Array Cbmf_linalg Cbmf_model Cbmf_prob Dataset Group_lasso Helpers Mat Metrics Ols Vec
