test/helpers.ml: Alcotest Array Cbmf_linalg Cbmf_prob Int64 Mat QCheck2 QCheck_alcotest Vec
