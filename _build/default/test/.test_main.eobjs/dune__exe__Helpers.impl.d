test/helpers.ml: Alcotest Cbmf_linalg Cbmf_prob Mat QCheck2 QCheck_alcotest Vec
