test/test_vec.ml: Array Cbmf_linalg Helpers List QCheck2 Stdlib Vec
