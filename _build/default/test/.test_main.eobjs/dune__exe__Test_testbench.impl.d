test/test_testbench.ml: Array Cbmf_circuit Cbmf_linalg Cbmf_prob Float Helpers Lazy Lna Mat Mixer Montecarlo Process Testbench
