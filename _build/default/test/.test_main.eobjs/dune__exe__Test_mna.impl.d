test/test_mna.ml: Alcotest Cbmf_circuit Complex Float Helpers Mna Noise Nonlin String Units
