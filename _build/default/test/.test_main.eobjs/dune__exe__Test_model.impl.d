test/test_model.ml: Alcotest Array Cbmf_linalg Cbmf_model Cbmf_prob Crossval Dataset Helpers Mat Metrics Ols Omp Ridge Somp Vec
