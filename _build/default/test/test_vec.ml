open Cbmf_linalg
open Helpers

let test_create () =
  let v = Vec.create 5 in
  check_int "dim" 5 (Vec.dim v);
  Array.iter (fun x -> check_float "zero" 0.0 x) v

let test_init_make () =
  let v = Vec.init 4 (fun i -> float_of_int (i * i)) in
  check_float "init" 9.0 (Vec.get v 3);
  let w = Vec.make 3 2.5 in
  check_float "make" 7.5 (Vec.sum w)

let test_basis () =
  let e = Vec.basis 4 2 in
  check_float "one" 1.0 e.(2);
  check_float "sum" 1.0 (Vec.sum e)

let test_linspace () =
  let v = Vec.linspace 0.0 1.0 5 in
  check_float "first" 0.0 v.(0);
  check_float "last" 1.0 v.(4);
  check_float "step" 0.25 v.(1)

let test_add_sub () =
  let x = Vec.of_list [ 1.0; 2.0; 3.0 ] and y = Vec.of_list [ 4.0; 5.0; 6.0 ] in
  vec_close "add" (Vec.of_list [ 5.0; 7.0; 9.0 ]) (Vec.add x y);
  vec_close "sub" (Vec.of_list [ -3.0; -3.0; -3.0 ]) (Vec.sub x y)

let test_inplace () =
  let x = Vec.of_list [ 1.0; 2.0 ] in
  Vec.scale_inplace x 3.0;
  vec_close "scale_inplace" (Vec.of_list [ 3.0; 6.0 ]) x;
  let y = Vec.of_list [ 1.0; 1.0 ] in
  Vec.add_inplace x y;
  vec_close "add_inplace" (Vec.of_list [ 4.0; 7.0 ]) x;
  Vec.sub_inplace x y;
  vec_close "sub_inplace" (Vec.of_list [ 3.0; 6.0 ]) x;
  Vec.axpy 2.0 y x;
  vec_close "axpy" (Vec.of_list [ 5.0; 8.0 ]) x

let test_dot_norms () =
  let x = Vec.of_list [ 3.0; 4.0 ] in
  check_float "dot" 25.0 (Vec.dot x x);
  check_float "norm2" 5.0 (Vec.norm2 x);
  check_float "norm1" 7.0 (Vec.norm1 x);
  check_float "norm_inf" 4.0 (Vec.norm_inf x);
  check_float "dist" 5.0 (Vec.dist x (Vec.create 2))

let test_argmax_argmin () =
  let v = Vec.of_list [ 1.0; 9.0; -3.0; 9.0 ] in
  check_int "argmax first" 1 (Vec.argmax v);
  check_int "argmin" 2 (Vec.argmin v);
  check_float "max" 9.0 (Vec.max v);
  check_float "min" (-3.0) (Vec.min v)

let test_mean () =
  check_float "mean" 2.0 (Vec.mean (Vec.of_list [ 1.0; 2.0; 3.0 ]))

let test_map () =
  vec_close "map" (Vec.of_list [ 1.0; 4.0 ])
    (Vec.map (fun x -> x *. x) (Vec.of_list [ 1.0; 2.0 ]));
  vec_close "mul" (Vec.of_list [ 2.0; 6.0 ])
    (Vec.mul (Vec.of_list [ 1.0; 2.0 ]) (Vec.of_list [ 2.0; 3.0 ]))

let test_approx_equal () =
  check_true "equal" (Vec.approx_equal (Vec.of_list [ 1.0 ]) (Vec.of_list [ 1.0 +. 1e-12 ]));
  check_true "not equal"
    (not (Vec.approx_equal (Vec.of_list [ 1.0 ]) (Vec.of_list [ 1.1 ])));
  check_true "dim mismatch"
    (not (Vec.approx_equal (Vec.of_list [ 1.0 ]) (Vec.of_list [ 1.0; 2.0 ])))

let prop_triangle =
  qcase "norm triangle inequality"
    QCheck2.Gen.(pair (list_size (int_range 1 20) (float_range (-100.) 100.))
                   (list_size (int_range 1 20) (float_range (-100.) 100.)))
    (fun (a, b) ->
      let n = Stdlib.min (List.length a) (List.length b) in
      let x = Array.of_list (List.filteri (fun i _ -> i < n) a) in
      let y = Array.of_list (List.filteri (fun i _ -> i < n) b) in
      Vec.norm2 (Vec.add x y) <= Vec.norm2 x +. Vec.norm2 y +. 1e-6)

let prop_cauchy_schwarz =
  qcase "Cauchy-Schwarz"
    QCheck2.Gen.(list_size (int_range 2 20) (float_range (-10.) 10.))
    (fun l ->
      let x = Array.of_list l in
      let y = Vec.map (fun v -> (2.0 *. v) -. 1.0) x in
      abs_float (Vec.dot x y) <= (Vec.norm2 x *. Vec.norm2 y) +. 1e-6)

let suite =
  [ ( "linalg.vec",
      [ case "create" test_create;
        case "init/make" test_init_make;
        case "basis" test_basis;
        case "linspace" test_linspace;
        case "add/sub" test_add_sub;
        case "inplace ops" test_inplace;
        case "dot and norms" test_dot_norms;
        case "argmax/argmin" test_argmax_argmin;
        case "mean" test_mean;
        case "map/mul" test_map;
        case "approx_equal" test_approx_equal;
        prop_triangle;
        prop_cauchy_schwarz ] ) ]
