open Cbmf_prob
open Helpers

(* --- Rng --- *)

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_true "same stream" (Rng.uint64 a = Rng.uint64 b)
  done

let test_copy_stream () =
  let a = Rng.create 7 in
  let _ = Rng.uint64 a in
  let b = Rng.copy a in
  for _ = 1 to 50 do
    check_true "copy equal" (Rng.float a = Rng.float b)
  done

let test_split_independent () =
  let a = Rng.create 9 in
  let child = Rng.split a in
  (* Different seeds give different streams with overwhelming probability. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.uint64 a = Rng.uint64 child then incr same
  done;
  check_true "split diverges" (!same = 0)

let test_float_range () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.float r in
    check_true "in [0,1)" (x >= 0.0 && x < 1.0)
  done

let test_int_uniform () =
  let r = Rng.create 5 in
  let counts = Array.make 7 0 in
  let n = 70_000 in
  for _ = 1 to n do
    let k = Rng.int r 7 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c ->
      (* Expected 10000; 5σ ≈ 480. *)
      check_true "uniform cell" (abs (c - 10_000) < 500))
    counts

let test_gaussian_moments () =
  let r = Rng.create 11 in
  let n = 200_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian r) in
  check_true "mean ~ 0" (abs_float (Stats.mean xs) < 0.01);
  check_true "var ~ 1" (abs_float (Stats.variance xs -. 1.0) < 0.02);
  check_true "skew ~ 0" (abs_float (Stats.skewness xs) < 0.05);
  check_true "kurtosis ~ 0" (abs_float (Stats.kurtosis_excess xs) < 0.1)

let test_shuffle_permutation () =
  let r = Rng.create 13 in
  let p = Rng.permutation r 50 in
  let seen = Array.make 50 false in
  Array.iter (fun i -> seen.(i) <- true) p;
  check_true "is permutation" (Array.for_all Fun.id seen)

(* --- Gaussian distribution functions --- *)

let test_erf_values () =
  check_float ~tol:1e-6 "erf 0" 0.0 (Gaussian.erf 0.0);
  check_float ~tol:2e-7 "erf 1" 0.8427007929 (Gaussian.erf 1.0);
  check_float ~tol:2e-7 "erf -1" (-0.8427007929) (Gaussian.erf (-1.0));
  check_float ~tol:1e-6 "erf 3" 0.9999779095 (Gaussian.erf 3.0)

let test_cdf_values () =
  check_float ~tol:1e-7 "cdf 0" 0.5 (Gaussian.cdf 0.0);
  check_float ~tol:5e-6 "cdf 1.96" 0.9750021 (Gaussian.cdf 1.959964);
  check_float ~tol:5e-6 "cdf -1.96" 0.0249979 (Gaussian.cdf (-1.959964));
  check_float ~tol:1e-7 "mu/sigma shift" 0.5 (Gaussian.cdf ~mu:3.0 ~sigma:2.0 3.0)

let test_quantile_roundtrip () =
  List.iter
    (fun p ->
      check_float ~tol:1e-6 "cdf∘quantile" p (Gaussian.cdf (Gaussian.quantile p)))
    [ 0.001; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ]

let test_quantile_known () =
  check_float ~tol:2e-5 "q(0.975)" 1.959964 (Gaussian.quantile 0.975);
  check_float ~tol:1e-6 "q(0.5)" 0.0 (Gaussian.quantile 0.5);
  check_raises_invalid "q(0)" (fun () -> Gaussian.quantile 0.0)

let test_pdf () =
  check_float ~tol:1e-10 "pdf peak" (1.0 /. sqrt (2.0 *. Float.pi)) (Gaussian.pdf 0.0);
  check_float ~tol:1e-10 "log_pdf consistent" (log (Gaussian.pdf 1.3))
    (Gaussian.log_pdf 1.3)

(* --- Mvn --- *)

let test_mvn_moments () =
  let open Cbmf_linalg in
  let cov = Mat.of_arrays [| [| 2.0; 0.8 |]; [| 0.8; 1.0 |] |] in
  let d = Mvn.create ~mu:(Vec.of_list [ 1.0; -2.0 ]) ~cov in
  let r = Rng.create 17 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Mvn.sample d r) in
  let col j = Array.map (fun v -> v.(j)) xs in
  check_true "mean0" (abs_float (Stats.mean (col 0) -. 1.0) < 0.05);
  check_true "mean1" (abs_float (Stats.mean (col 1) +. 2.0) < 0.05);
  check_true "var0" (abs_float (Stats.variance (col 0) -. 2.0) < 0.1);
  check_true "cov01" (abs_float (Stats.covariance (col 0) (col 1) -. 0.8) < 0.05)

let test_mvn_logpdf () =
  (* Standard normal: log pdf at 0 = −(n/2)·log(2π). *)
  let d = Mvn.standard 3 in
  check_float ~tol:1e-9 "logpdf origin"
    (-1.5 *. log (2.0 *. Float.pi))
    (Mvn.log_pdf d (Cbmf_linalg.Vec.create 3))

let test_mvn_conditional () =
  let open Cbmf_linalg in
  let cov = Mat.of_arrays [| [| 1.0; 0.9 |]; [| 0.9; 1.0 |] |] in
  let d = Mvn.create ~mu:(Vec.create 2) ~cov in
  let c = Mvn.conditional d ~indices:[| 1 |] ~values:(Vec.of_list [ 2.0 ]) in
  check_int "dim" 1 (Mvn.dim c);
  check_float ~tol:1e-9 "cond mean" 1.8 (Mvn.mean c).(0);
  check_float ~tol:1e-9 "cond var" 0.19 (Mat.get (Mvn.covariance c) 0 0)

(* --- Lhs --- *)

let test_lhs_stratified () =
  let r = Rng.create 23 in
  let m = Lhs.uniform r ~n:16 ~dim:3 in
  (* Each column must hit every stratum exactly once. *)
  for j = 0 to 2 do
    let seen = Array.make 16 false in
    for i = 0 to 15 do
      let s = int_of_float (Cbmf_linalg.Mat.get m i j *. 16.0) in
      check_true "stratum bounds" (s >= 0 && s < 16);
      check_true "stratum unique" (not seen.(s));
      seen.(s) <- true
    done
  done

let test_lhs_gaussian_moments () =
  let r = Rng.create 29 in
  let m = Lhs.gaussian r ~n:2000 ~dim:2 in
  let col = Cbmf_linalg.Mat.col m 0 in
  check_true "lhs mean" (abs_float (Stats.mean col) < 0.05);
  check_true "lhs var" (abs_float (Stats.variance col -. 1.0) < 0.05)

(* --- Stats --- *)

let test_stats_basics () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "mean" 5.0 (Stats.mean xs);
  check_float ~tol:1e-9 "variance" (32.0 /. 7.0) (Stats.variance xs);
  check_float "median" 4.5 (Stats.median xs);
  check_float "min" 2.0 (Stats.minimum xs);
  check_float "max" 9.0 (Stats.maximum xs)

let test_quantile_interp () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "q0" 1.0 (Stats.quantile xs 0.0);
  check_float "q1" 4.0 (Stats.quantile xs 1.0);
  check_float ~tol:1e-12 "q0.5" 2.5 (Stats.quantile xs 0.5)

let test_pearson () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  check_float ~tol:1e-12 "perfect corr" 1.0 (Stats.pearson xs ys);
  let zs = Array.map (fun x -> -.x) xs in
  check_float ~tol:1e-12 "anti corr" (-1.0) (Stats.pearson xs zs);
  check_float "const corr" 0.0 (Stats.pearson xs (Array.make 4 1.0))

let test_histogram () =
  let xs = [| 0.0; 0.1; 0.2; 0.9; 1.0 |] in
  let h = Stats.histogram ~bins:2 xs in
  check_int "bins" 2 (Array.length h);
  check_int "counts total" 5 (Array.fold_left (fun a (_, c) -> a + c) 0 h)

let suite =
  [ ( "prob.rng",
      [ case "determinism" test_determinism;
        case "copy" test_copy_stream;
        case "split" test_split_independent;
        case "float range" test_float_range;
        slow_case "int uniformity" test_int_uniform;
        slow_case "gaussian moments" test_gaussian_moments;
        case "permutation" test_shuffle_permutation ] );
    ( "prob.gaussian",
      [ case "erf values" test_erf_values;
        case "cdf values" test_cdf_values;
        case "quantile roundtrip" test_quantile_roundtrip;
        case "quantile known values" test_quantile_known;
        case "pdf" test_pdf ] );
    ( "prob.mvn",
      [ slow_case "sample moments" test_mvn_moments;
        case "log_pdf" test_mvn_logpdf;
        case "conditional" test_mvn_conditional ] );
    ( "prob.lhs",
      [ case "stratification" test_lhs_stratified;
        case "gaussian moments" test_lhs_gaussian_moments ] );
    ( "prob.stats",
      [ case "basics" test_stats_basics;
        case "quantile interpolation" test_quantile_interp;
        case "pearson" test_pearson;
        case "histogram" test_histogram ] ) ]
