open Cbmf_linalg
open Helpers

(* --- LU --- *)

let test_lu_solve () =
  let a = random_mat 7 7 in
  let x = random_vec 7 in
  let b = Mat.mat_vec a x in
  vec_close ~tol:1e-7 "lu solve" x (Lu.solve a b)

let test_lu_det () =
  let d = Mat.diag (Vec.of_list [ 2.0; -3.0; 4.0 ]) in
  check_float ~tol:1e-10 "det diag" (-24.0) (Lu.det (Lu.factorize d));
  (* Permutation changes the sign correctly. *)
  let p = Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  check_float ~tol:1e-12 "det swap" (-1.0) (Lu.det (Lu.factorize p))

let test_lu_inverse () =
  let a = random_mat 5 5 in
  let inv = Lu.inverse (Lu.factorize a) in
  mat_close ~tol:1e-7 "a·a⁻¹" (Mat.identity 5) (Mat.matmul a inv)

let test_lu_singular () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  match Lu.factorize a with
  | _ -> Alcotest.fail "expected Singular"
  | exception Lu.Singular _ -> ()

let test_lu_pivoting () =
  (* Zero on the initial pivot demands row exchange. *)
  let a = Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Lu.solve a (Vec.of_list [ 3.0; 5.0 |> Fun.id ]) in
  vec_close "pivot solve" (Vec.of_list [ 5.0; 3.0 ]) x

let test_rcond () =
  check_true "well conditioned" (Lu.rcond_estimate (Mat.identity 4) > 0.5);
  let near_sing = Mat.of_arrays [| [| 1.0; 1.0 |]; [| 1.0; 1.0 +. 1e-12 |] |] in
  check_true "near singular" (Lu.rcond_estimate near_sing < 1e-10)

(* --- QR --- *)

let test_qr_reconstruct () =
  let a = random_mat 8 5 in
  let f = Qr.factorize a in
  mat_close ~tol:1e-8 "q·r = a" a (Mat.matmul (Qr.q f) (Qr.r f))

let test_qr_orthonormal () =
  let a = random_mat 9 4 in
  let q = Qr.q (Qr.factorize a) in
  mat_close ~tol:1e-9 "qᵀq = I" (Mat.identity 4) (Mat.gram q)

let test_qr_lstsq_exact () =
  let a = random_mat 6 6 in
  let x = random_vec 6 in
  vec_close ~tol:1e-7 "square solve" x (Qr.lstsq a (Mat.mat_vec a x))

let test_qr_lstsq_overdetermined () =
  (* Residual of the LS solution must be orthogonal to the columns. *)
  let a = random_mat 12 4 in
  let b = random_vec 12 in
  let x = Qr.lstsq a b in
  let r = Vec.sub (Mat.mat_vec a x) b in
  let proj = Mat.mat_tvec a r in
  check_true "normal equations" (Vec.norm_inf proj < 1e-8)

let test_qr_rank_deficient () =
  let a = Mat.init 5 3 (fun i _ -> float_of_int i) in
  (* All columns identical → rank 1. *)
  match Qr.lstsq a (random_vec 5) with
  | _ -> Alcotest.fail "expected Rank_deficient"
  | exception Qr.Rank_deficient _ -> ()

(* --- Eig --- *)

let test_eig_diag () =
  let d = Mat.diag (Vec.of_list [ 3.0; 1.0; 2.0 ]) in
  let { Eig.values; _ } = Eig.symmetric d in
  vec_close ~tol:1e-10 "sorted eigenvalues" (Vec.of_list [ 3.0; 2.0; 1.0 ]) values

let test_eig_reconstruct () =
  let a = random_spd 6 in
  let { Eig.values; vectors } = Eig.symmetric a in
  let scaled = Mat.init 6 6 (fun i j -> Mat.get vectors i j *. values.(j)) in
  mat_close ~tol:1e-7 "v·diag(λ)·vᵀ = a" a (Mat.matmul_nt scaled vectors)

let test_eig_orthogonal () =
  let a = random_spd 5 in
  let { Eig.vectors; _ } = Eig.symmetric a in
  mat_close ~tol:1e-8 "vᵀv = I" (Mat.identity 5) (Mat.gram vectors)

let test_eig_trace_sum () =
  let a = random_spd 7 in
  let values = Eig.eigenvalues a in
  check_float ~tol:1e-7 "Σλ = trace" (Mat.trace a) (Vec.sum values)

let test_condition () =
  let d = Mat.diag (Vec.of_list [ 10.0; 1.0 ]) in
  check_float ~tol:1e-8 "condition" 10.0 (Eig.condition_number d);
  check_true "indefinite -> inf"
    (Eig.condition_number (Mat.diag (Vec.of_list [ 1.0; -1.0 ])) = infinity)

let test_pd_projection () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  let p = Eig.pd_projection a in
  check_true "projection PD" (Chol.is_positive_definite p);
  (* Already-PD input passes through (up to clipping tolerance). *)
  let b = random_spd 4 in
  mat_close ~tol:1e-7 "PD passthrough" b (Eig.pd_projection b)

let prop_eig_pd_positive =
  qcase ~count:30 "SPD eigenvalues positive"
    QCheck2.Gen.(int_range 2 8)
    (fun n -> Eig.min_eigenvalue (random_spd n) > 0.0)

let suite =
  [ ( "linalg.lu",
      [ case "solve" test_lu_solve;
        case "det" test_lu_det;
        case "inverse" test_lu_inverse;
        case "singular detection" test_lu_singular;
        case "pivoting" test_lu_pivoting;
        case "rcond" test_rcond ] );
    ( "linalg.qr",
      [ case "reconstruct" test_qr_reconstruct;
        case "orthonormal q" test_qr_orthonormal;
        case "exact solve" test_qr_lstsq_exact;
        case "least squares orthogonality" test_qr_lstsq_overdetermined;
        case "rank deficiency" test_qr_rank_deficient ] );
    ( "linalg.eig",
      [ case "diagonal" test_eig_diag;
        case "reconstruct" test_eig_reconstruct;
        case "orthogonal vectors" test_eig_orthogonal;
        case "trace = sum" test_eig_trace_sum;
        case "condition number" test_condition;
        case "pd projection" test_pd_projection;
        prop_eig_pd_positive ] ) ]
