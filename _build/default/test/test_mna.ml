open Cbmf_circuit
open Helpers

(* Voltage divider: unit current into two series resistors. *)
let test_resistor_divider () =
  let ckt = Mna.create () in
  let a = Mna.fresh_node ckt "a" in
  let b = Mna.fresh_node ckt "b" in
  Mna.resistor ckt a b 100.0;
  Mna.resistor ckt b Mna.ground 50.0;
  let an = Mna.ac ckt ~freq:1e6 in
  let sol = Mna.solve_injection an ~pos:a ~neg:Mna.ground in
  (* 1 A through 150 Ω total: V(a) = 150, V(b) = 50. *)
  check_float ~tol:1e-9 "V(a)" 150.0 (Complex.norm (Mna.voltage sol a));
  check_float ~tol:1e-9 "V(b)" 50.0 (Complex.norm (Mna.voltage sol b));
  check_float "ground" 0.0 (Complex.norm (Mna.voltage sol Mna.ground))

let test_capacitor_impedance () =
  let ckt = Mna.create () in
  let a = Mna.fresh_node ckt "a" in
  let c = 1e-9 in
  Mna.capacitor ckt a Mna.ground c;
  let f = 1e6 in
  let an = Mna.ac ckt ~freq:f in
  let sol = Mna.solve_injection an ~pos:a ~neg:Mna.ground in
  let expected = 1.0 /. (2.0 *. Float.pi *. f *. c) in
  let v = Mna.voltage sol a in
  check_float ~tol:1e-6 "|Z_C|" expected (Complex.norm v);
  (* Current leads voltage: V = I/(jωC) has phase −90°. *)
  check_true "capacitive phase" (v.Complex.im < 0.0 && abs_float v.Complex.re < 1e-9)

let test_inductor_impedance () =
  let ckt = Mna.create () in
  let a = Mna.fresh_node ckt "a" in
  let l = 1e-6 in
  Mna.inductor ckt a Mna.ground l;
  let f = 1e7 in
  let an = Mna.ac ckt ~freq:f in
  let sol = Mna.solve_injection an ~pos:a ~neg:Mna.ground in
  let v = Mna.voltage sol a in
  check_float ~tol:1e-6 "|Z_L|" (2.0 *. Float.pi *. f *. l) (Complex.norm v);
  check_true "inductive phase" (v.Complex.im > 0.0)

let test_lc_resonance () =
  (* Parallel RLC driven by a current source peaks at f0 with |Z| = R. *)
  let l = 10e-9 and c = 1e-12 and r = 500.0 in
  let f0 = 1.0 /. (2.0 *. Float.pi *. sqrt (l *. c)) in
  let z_at f =
    let ckt = Mna.create () in
    let a = Mna.fresh_node ckt "a" in
    Mna.inductor ckt a Mna.ground l;
    Mna.capacitor ckt a Mna.ground c;
    Mna.resistor ckt a Mna.ground r;
    let sol = Mna.solve_injection (Mna.ac ckt ~freq:f) ~pos:a ~neg:Mna.ground in
    Complex.norm (Mna.voltage sol a)
  in
  check_float ~tol:1e-3 "|Z| = R at resonance" r (z_at f0);
  check_true "below resonance smaller" (z_at (0.5 *. f0) < 0.5 *. r);
  check_true "above resonance smaller" (z_at (2.0 *. f0) < 0.5 *. r)

let test_vccs_amplifier () =
  (* Common-source stage: gm = 10 mS into RL = 1 kΩ → gain −10. *)
  let ckt = Mna.create () in
  let g = Mna.fresh_node ckt "g" in
  let d = Mna.fresh_node ckt "d" in
  Mna.resistor ckt g Mna.ground 1e6;
  (* bias the controlling node *)
  Mna.resistor ckt d Mna.ground 1e3;
  Mna.vccs ckt ~out_pos:d ~out_neg:Mna.ground ~ctrl_pos:g ~ctrl_neg:Mna.ground
    ~gm:0.01;
  let an = Mna.ac ckt ~freq:1e6 in
  (* 1 µA into the gate node: V(g) = 1 V; output = −gm·V(g)·RL = −10 V. *)
  let sol = Mna.solve_injection an ~pos:g ~neg:Mna.ground in
  let vg = Mna.voltage sol g and vd = Mna.voltage sol d in
  check_float ~tol:1e-6 "gain magnitude" 10.0
    (Complex.norm vd /. Complex.norm vg *. 1e6 /. 1e6);
  check_true "inverting" (vd.Complex.re < 0.0)

let test_floating_node_singular () =
  let ckt = Mna.create () in
  let a = Mna.fresh_node ckt "a" in
  let b = Mna.fresh_node ckt "b" in
  Mna.resistor ckt a Mna.ground 100.0;
  ignore b;
  (* b touches nothing → singular nodal matrix *)
  match Mna.ac ckt ~freq:1e6 with
  | _ -> Alcotest.fail "expected Singular_circuit"
  | exception Mna.Singular_circuit -> ()

let test_node_names () =
  let ckt = Mna.create () in
  let a = Mna.fresh_node ckt "alpha" in
  let b = Mna.fresh_node ckt "beta" in
  check_true "gnd" (String.equal (Mna.node_name ckt Mna.ground) "gnd");
  check_true "alpha" (String.equal (Mna.node_name ckt a) "alpha");
  check_true "beta" (String.equal (Mna.node_name ckt b) "beta");
  check_int "count" 3 (Mna.node_count ckt)

(* --- Noise --- *)

let test_resistor_noise_psd () =
  let s = Noise.resistor_source ~label:"R" 1 0 ~r:1000.0 in
  check_float ~tol:1e-26 "4kT/R" (Units.four_kt /. 1000.0) s.Noise.psd

let test_single_resistor_nf () =
  (* A source resistor alone has NF = 0 dB (all noise comes from it). *)
  let ckt = Mna.create () in
  let a = Mna.fresh_node ckt "a" in
  Mna.resistor ckt a Mna.ground 50.0;
  let an = Mna.ac ckt ~freq:1e9 in
  let input_source = Noise.resistor_source ~label:"Rs" a Mna.ground ~r:50.0 in
  let nf =
    Noise.noise_figure_db an ~out_pos:a ~out_neg:Mna.ground ~input_source []
  in
  check_float ~tol:1e-9 "NF = 0 dB" 0.0 nf

let test_matched_attenuator_nf () =
  (* Source 50 Ω into a 50 Ω shunt load: the load adds equal noise at
     the output → F = 1 + (Rs ∥ contribution): transfers are equal, so
     NF = 3 dB. *)
  let ckt = Mna.create () in
  let a = Mna.fresh_node ckt "a" in
  Mna.resistor ckt a Mna.ground 50.0;
  (* source resistance *)
  Mna.resistor ckt a Mna.ground 50.0;
  (* matched shunt load *)
  let an = Mna.ac ckt ~freq:1e9 in
  let input_source = Noise.resistor_source ~label:"Rs" a Mna.ground ~r:50.0 in
  let load = Noise.resistor_source ~label:"RL" a Mna.ground ~r:50.0 in
  let nf =
    Noise.noise_figure_db an ~out_pos:a ~out_neg:Mna.ground ~input_source
      [ load ]
  in
  check_float ~tol:1e-9 "NF = 3 dB" (10.0 *. log10 2.0) nf

let test_noise_report_sorted () =
  let ckt = Mna.create () in
  let a = Mna.fresh_node ckt "a" in
  Mna.resistor ckt a Mna.ground 100.0;
  let an = Mna.ac ckt ~freq:1e9 in
  let big = Noise.resistor_source ~label:"big" a Mna.ground ~r:10.0 in
  let small = Noise.resistor_source ~label:"small" a Mna.ground ~r:1e6 in
  let r = Noise.output_noise an ~out_pos:a ~out_neg:Mna.ground [ small; big ] in
  (match r.Noise.contributions with
  | (label, _) :: _ -> check_true "descending" (String.equal label "big")
  | [] -> Alcotest.fail "no contributions");
  check_true "total positive" (r.Noise.total_psd > 0.0)

(* --- Nonlin --- *)

let test_iip3_formula () =
  check_float ~tol:1e-12 "iip3 amplitude"
    (sqrt (4.0 /. 3.0 *. 2.0))
    (Nonlin.iip3_vamp ~gm:2.0 ~gm3:1.0);
  check_true "linear device -> inf"
    (Nonlin.iip3_vamp ~gm:1.0 ~gm3:0.0 = infinity)

let test_degeneration_improves () =
  let base =
    Nonlin.iip3_dbm ~gm:0.02 ~gm3:(-0.5) ~zs_mag:0.0 ~vgs_per_vsource:1.0
      ~rsource:50.0
  in
  let degenerated =
    Nonlin.iip3_dbm ~gm:0.02 ~gm3:(-0.5) ~zs_mag:50.0 ~vgs_per_vsource:1.0
      ~rsource:50.0
  in
  check_true "degeneration improves IIP3" (degenerated > base)

let test_effective_gm3_no_null () =
  (* Where the bare gm3 crosses zero, the interaction term keeps the
     effective coefficient away from zero. *)
  let g = Nonlin.effective_gm3 ~gm:0.02 ~gm2:0.05 ~gm3:0.0 ~zs_mag:10.0 in
  check_true "no null" (abs_float g > 1e-4)

let test_p1db_backoff () =
  check_float ~tol:1e-6 "9.64 dB" (-9.6383) (Nonlin.p1db_from_iip3_dbm 0.0)

let test_compression_limited () =
  let p1 =
    Nonlin.compression_limited_p1db_dbm ~vlimit:1.0 ~gain_v:10.0 ~rsource:50.0
  in
  let p2 =
    Nonlin.compression_limited_p1db_dbm ~vlimit:1.0 ~gain_v:20.0 ~rsource:50.0
  in
  (* Doubling the gain halves the input swing: 20·log10 2 dB lower. *)
  check_float ~tol:1e-9 "gain tradeoff" (20.0 *. log10 2.0) (p1 -. p2)

let suite =
  [ ( "circuit.mna",
      [ case "resistor divider" test_resistor_divider;
        case "capacitor impedance" test_capacitor_impedance;
        case "inductor impedance" test_inductor_impedance;
        case "LC resonance" test_lc_resonance;
        case "vccs amplifier" test_vccs_amplifier;
        case "floating node" test_floating_node_singular;
        case "node names" test_node_names ] );
    ( "circuit.noise",
      [ case "resistor psd" test_resistor_noise_psd;
        case "lone source NF = 0 dB" test_single_resistor_nf;
        case "matched shunt NF = 3 dB" test_matched_attenuator_nf;
        case "report sorted" test_noise_report_sorted ] );
    ( "circuit.nonlin",
      [ case "iip3 formula" test_iip3_formula;
        case "degeneration improves" test_degeneration_improves;
        case "no IM3 null" test_effective_gm3_no_null;
        case "p1db backoff" test_p1db_backoff;
        case "compression limited" test_compression_limited ] ) ]
