open Cbmf_linalg
open Cbmf_model
open Helpers

(* Single-state planted problem with intercept. *)
let planted_single ?(n = 40) ?(m = 25) ?(noise = 0.02) ?(seed = 51) () =
  let rng = Cbmf_prob.Rng.create seed in
  let design =
    Mat.init n m (fun _ j -> if j = 0 then 1.0 else Cbmf_prob.Rng.gaussian rng)
  in
  let truth = Vec.create m in
  truth.(0) <- 2.0;
  truth.(6) <- 1.5;
  truth.(13) <- -0.8;
  let response =
    Array.init n (fun i ->
        Vec.dot (Mat.row design i) truth +. (noise *. Cbmf_prob.Rng.gaussian rng))
  in
  (design, response, truth)

let test_lasso_zero_lambda_is_ols () =
  let design, response, _ = planted_single () in
  let r = Lasso.fit_vec ~design ~response ~lambda:0.0 () in
  let ols = Qr.lstsq design response in
  check_true "converged" r.Lasso.converged;
  vec_close ~tol:1e-5 "matches OLS" ols r.Lasso.coeffs

let test_lasso_sparsifies () =
  let design, response, _ = planted_single () in
  let r = Lasso.fit_vec ~design ~response ~lambda:3.0 () in
  let nonzero = Array.fold_left (fun a c -> if c <> 0.0 then a + 1 else a) 0 r.Lasso.coeffs in
  check_true "sparse" (nonzero <= 6);
  (* The planted support must survive. *)
  check_true "signal kept" (r.Lasso.coeffs.(6) > 0.5 && r.Lasso.coeffs.(13) < -0.2)

let test_lasso_intercept_unpenalized () =
  let design, response, _ = planted_single () in
  (* Even at λ beyond lambda_max the intercept survives. *)
  let lmax = Lasso.lambda_max ~design ~response in
  let r = Lasso.fit_vec ~design ~response ~lambda:(1.5 *. lmax) () in
  check_true "intercept kept" (abs_float r.Lasso.coeffs.(0) > 1.0);
  let others = Array.sub r.Lasso.coeffs 1 (Array.length r.Lasso.coeffs - 1) in
  check_float "all penalized zero" 0.0 (Vec.norm1 others)

let test_lambda_max_boundary () =
  let design, response, _ = planted_single () in
  let lmax = Lasso.lambda_max ~design ~response in
  (* Slightly below lambda_max at least one coefficient activates. *)
  let r = Lasso.fit_vec ~design ~response ~lambda:(0.8 *. lmax) () in
  let others = Array.sub r.Lasso.coeffs 1 (Array.length r.Lasso.coeffs - 1) in
  check_true "active below lmax" (Vec.norm1 others > 0.0)

let test_lasso_kkt () =
  (* KKT: for active β_j, x_jᵀ(y − Bβ) = λ·sign(β_j); for inactive,
     |x_jᵀ(y − Bβ)| ≤ λ. *)
  let design, response, _ = planted_single () in
  let lambda = 1.0 in
  let r = Lasso.fit_vec ~tol:1e-12 ~design ~response ~lambda () in
  let resid = Vec.sub response (Mat.mat_vec design r.Lasso.coeffs) in
  for j = 1 to design.Mat.cols - 1 do
    let g = Vec.dot (Mat.col design j) resid in
    if r.Lasso.coeffs.(j) <> 0.0 then
      check_float ~tol:1e-6 "active KKT"
        (lambda *. Float.of_int (compare r.Lasso.coeffs.(j) 0.0))
        g
    else check_true "inactive KKT" (abs_float g <= lambda +. 1e-6)
  done

let test_lasso_multistate_cv () =
  let rng = Cbmf_prob.Rng.create 53 in
  let k = 4 and n = 25 and m = 20 in
  let design =
    Array.init k (fun _ ->
        Mat.init n m (fun _ j -> if j = 0 then 1.0 else Cbmf_prob.Rng.gaussian rng))
  in
  let response =
    Array.init k (fun s ->
        Array.init n (fun i ->
            (2.0 *. Mat.get design.(s) i 3)
            +. (0.5 *. float_of_int s)
            +. (0.05 *. Cbmf_prob.Rng.gaussian rng)))
  in
  let d = Dataset.create ~design ~response in
  let coeffs, lambda = Lasso.fit_cv d ~n_folds:3 () in
  check_true "lambda positive" (lambda > 0.0);
  check_true "generalizes" (Metrics.coeffs_error_pooled ~coeffs d < 0.1)

let suite =
  [ ( "model.lasso",
      [ case "lambda 0 = OLS" test_lasso_zero_lambda_is_ols;
        case "sparsifies" test_lasso_sparsifies;
        case "intercept unpenalized" test_lasso_intercept_unpenalized;
        case "lambda_max boundary" test_lambda_max_boundary;
        case "KKT conditions" test_lasso_kkt;
        case "multistate cv" test_lasso_multistate_cv ] ) ]
