open Cbmf_linalg
open Cbmf_model
open Helpers

let planted ?(k = 5) ?(n = 20) ?(m = 18) ?(noise = 0.02) ?(seed = 61) () =
  let rng = Cbmf_prob.Rng.create seed in
  let coef s j =
    match j with
    | 0 -> 1.0 +. (0.3 *. float_of_int s)
    | 4 -> 2.0 -. (0.1 *. float_of_int s)
    | 9 -> -1.0
    | _ -> 0.0
  in
  let design =
    Array.init k (fun _ ->
        Mat.init n m (fun _ j -> if j = 0 then 1.0 else Cbmf_prob.Rng.gaussian rng))
  in
  let response =
    Array.init k (fun s ->
        Array.init n (fun i ->
            let acc = ref (noise *. Cbmf_prob.Rng.gaussian rng) in
            for j = 0 to m - 1 do
              let c = coef s j in
              if c <> 0.0 then acc := !acc +. (c *. Mat.get design.(s) i j)
            done;
            !acc))
  in
  Dataset.create ~design ~response

let test_zero_lambda_is_ols () =
  let d = planted () in
  let r = Group_lasso.fit ~max_iter:5000 ~tol:1e-9 d ~lambda:0.0 in
  let ols = Ols.fit d in
  check_true "converged" r.Group_lasso.converged;
  mat_close ~tol:1e-4 "matches per-state OLS" ols r.Group_lasso.coeffs

let test_group_sparsity_pattern () =
  let d = planted () in
  let r = Group_lasso.fit d ~lambda:4.0 in
  (* Shared template: a basis is active in all states or none. *)
  for j = 1 to d.Dataset.n_basis - 1 do
    let col = Mat.col r.Group_lasso.coeffs j in
    let nz = Array.fold_left (fun a v -> if v <> 0.0 then a + 1 else a) 0 col in
    check_true "all-or-none" (nz = 0 || nz = Array.length col)
  done;
  check_true "found support"
    (Array.exists (fun j -> j = 4) r.Group_lasso.active
    && Array.exists (fun j -> j = 9) r.Group_lasso.active)

let test_lambda_max_kills_all () =
  let d = planted () in
  let lmax = Group_lasso.lambda_max d in
  let r = Group_lasso.fit d ~lambda:(1.2 *. lmax) in
  (* Only the unpenalized intercept group may survive. *)
  Array.iter (fun j -> check_int "only intercept" 0 j) r.Group_lasso.active;
  let below = Group_lasso.fit d ~lambda:(0.5 *. lmax) in
  check_true "groups activate below lmax"
    (Array.exists (fun j -> j > 0) below.Group_lasso.active)

let test_shrinkage_monotone () =
  let d = planted () in
  let norm_at lambda =
    let r = Group_lasso.fit d ~lambda in
    (* Exclude the unpenalized intercept column. *)
    let acc = ref 0.0 in
    for j = 1 to d.Dataset.n_basis - 1 do
      acc := !acc +. Vec.norm2_sq (Mat.col r.Group_lasso.coeffs j)
    done;
    sqrt !acc
  in
  check_true "monotone shrinkage" (norm_at 8.0 < norm_at 1.0 +. 1e-9)

let test_cv_generalizes () =
  let d = planted ~n:15 () in
  let test_data = planted ~n:60 ~seed:62 () in
  let r, lambda = Group_lasso.fit_cv d ~n_folds:3 () in
  check_true "lambda positive" (lambda > 0.0);
  check_true "generalizes"
    (Metrics.coeffs_error_pooled ~coeffs:r.Group_lasso.coeffs test_data < 0.1)

let test_magnitude_freedom () =
  (* Group lasso recovers per-state magnitudes (coefficients differ
     across states within an active group). *)
  let d = planted ~n:40 ~noise:0.005 () in
  let r = Group_lasso.fit d ~lambda:0.5 in
  let c0 = Mat.get r.Group_lasso.coeffs 0 4 and c4 = Mat.get r.Group_lasso.coeffs 4 4 in
  check_true "state trend tracked" (c0 > c4 +. 0.2)

let suite =
  [ ( "model.group_lasso",
      [ case "lambda 0 = OLS" test_zero_lambda_is_ols;
        case "shared template (all-or-none)" test_group_sparsity_pattern;
        case "lambda_max boundary" test_lambda_max_kills_all;
        case "monotone shrinkage" test_shrinkage_monotone;
        case "cv generalizes" test_cv_generalizes;
        case "per-state magnitudes free" test_magnitude_freedom ] ) ]
