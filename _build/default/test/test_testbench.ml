open Cbmf_circuit
open Helpers

let lna = lazy (Lna.create ())

let mixer = lazy (Mixer.create ())

let zeros tb = Array.make (Testbench.dim tb) 0.0

(* --- LNA --- *)

let test_lna_dimensions () =
  let tb = Lazy.force lna in
  check_int "1264 variables" 1264 (Testbench.dim tb);
  check_int "paper constant" 1264 Lna.n_process_variables;
  check_int "32 states" 32 (Testbench.n_states tb);
  check_int "3 PoIs" 3 (Testbench.n_pois tb);
  check_int "NF index" 0 (Testbench.poi_index tb "NF");
  check_int "IIP3 index" 2 (Testbench.poi_index tb "IIP3")

let test_lna_nominal_sanity () =
  let tb = Lazy.force lna in
  let pois = tb.Testbench.evaluate ~state:16 (zeros tb) in
  let nf = pois.(0) and vg = pois.(1) and iip3 = pois.(2) in
  check_true "NF positive" (nf > 0.0 && nf < 6.0);
  check_true "gain sensible" (vg > 15.0 && vg < 45.0);
  check_true "IIP3 sensible" (iip3 > -30.0 && iip3 < 20.0)

let test_lna_deterministic () =
  let tb = Lazy.force lna in
  let rng = Cbmf_prob.Rng.create 99 in
  let x = Process.sample tb.Testbench.process rng in
  let a = tb.Testbench.evaluate ~state:5 x in
  let b = tb.Testbench.evaluate ~state:5 x in
  check_true "deterministic" (a = b)

let test_lna_knob_monotonicity () =
  (* More bias current → more gm → lower NF and higher gain. *)
  let tb = Lazy.force lna in
  let x = zeros tb in
  let prev_nf = ref infinity and prev_vg = ref neg_infinity in
  for state = 0 to 31 do
    let p = tb.Testbench.evaluate ~state x in
    check_true "NF decreases" (p.(0) < !prev_nf);
    check_true "VG increases" (p.(1) > !prev_vg);
    prev_nf := p.(0);
    prev_vg := p.(1)
  done

let test_lna_smooth_in_knob () =
  (* Adjacent states differ by a small step: smoothness is the physical
     basis of the C-BMF correlation assumption. *)
  let tb = Lazy.force lna in
  let rng = Cbmf_prob.Rng.create 4 in
  let x = Process.sample tb.Testbench.process rng in
  for state = 0 to 30 do
    let a = tb.Testbench.evaluate ~state x in
    let b = tb.Testbench.evaluate ~state:(state + 1) x in
    check_true "NF smooth" (abs_float (a.(0) -. b.(0)) < 0.1);
    check_true "VG smooth" (abs_float (a.(1) -. b.(1)) < 0.5)
  done

let test_lna_vth_sensitivity () =
  (* Global Vth shift changes the mirrored current hence NF. *)
  let tb = Lazy.force lna in
  let x = zeros tb in
  let base = (tb.Testbench.evaluate ~state:10 x).(0) in
  let x2 = zeros tb in
  x2.(5) <- 2.0;
  (* g:drsheet perturbs the bias reference *)
  let shifted = (tb.Testbench.evaluate ~state:10 x2).(0) in
  check_true "rsheet affects NF" (abs_float (base -. shifted) > 1e-4)

let test_lna_internals () =
  let tb = Lazy.force lna in
  let r = Lna.evaluate_internals tb ~state:0 (zeros tb) in
  check_float ~tol:1e-9 "bias = knob" 2.5e-3 r.Lna.bias_current;
  check_true "gm1 positive" (r.Lna.gm1 > 0.0);
  let r31 = Lna.evaluate_internals tb ~state:31 (zeros tb) in
  check_float ~tol:1e-9 "top bias" 10e-3 r31.Lna.bias_current

let test_lna_periphery_weak () =
  (* A single decap device's mismatch must have a tiny (but defined)
     effect compared with the input device's. *)
  let tb = Lazy.force lna in
  let x = zeros tb in
  let base = (tb.Testbench.evaluate ~state:10 x).(1) in
  let x_m1 = zeros tb in
  x_m1.(8) <- 3.0;
  (* M1 dvth *)
  let x_cap = zeros tb in
  x_cap.(8 + (4 * 200)) <- 3.0;
  (* some decap device's dvth *)
  let d_m1 = abs_float ((tb.Testbench.evaluate ~state:10 x_m1).(1) -. base) in
  let d_cap = abs_float ((tb.Testbench.evaluate ~state:10 x_cap).(1) -. base) in
  check_true "M1 dominates" (d_m1 > 100.0 *. Float.max d_cap 1e-12)

(* --- Mixer --- *)

let test_mixer_dimensions () =
  let tb = Lazy.force mixer in
  check_int "1303 variables" 1303 (Testbench.dim tb);
  check_int "paper constant" 1303 Mixer.n_process_variables;
  check_int "32 states" 32 (Testbench.n_states tb);
  check_int "I1dBCP index" 2 (Testbench.poi_index tb "I1dBCP")

let test_mixer_nominal_sanity () =
  let tb = Lazy.force mixer in
  let p = tb.Testbench.evaluate ~state:16 (zeros tb) in
  check_true "NF" (p.(0) > 3.0 && p.(0) < 20.0);
  check_true "VG" (p.(1) > 5.0 && p.(1) < 35.0);
  check_true "I1dB" (p.(2) > -40.0 && p.(2) < 0.0)

let test_mixer_knob_direction () =
  (* Larger load resistor: more gain, lower input 1 dB point. *)
  let tb = Lazy.force mixer in
  let x = zeros tb in
  let lo = tb.Testbench.evaluate ~state:0 x in
  let hi = tb.Testbench.evaluate ~state:31 x in
  check_true "gain up with RL" (hi.(1) > lo.(1) +. 3.0);
  check_true "I1dB down with RL" (hi.(2) < lo.(2));
  check_true "NF down with RL" (hi.(0) < lo.(0))

let test_mixer_load_mismatch () =
  let tb = Lazy.force mixer in
  let x = zeros tb in
  let base = Mixer.evaluate_internals tb ~state:8 x in
  let x2 = zeros tb in
  (* First resistor variable = RL1 mismatch. *)
  x2.(Testbench.dim tb - 11) <- 2.0;
  let pert = Mixer.evaluate_internals tb ~state:8 x2 in
  check_true "load shifts" (pert.Mixer.load_ohms > base.Mixer.load_ohms)

let test_mixer_smooth_in_knob () =
  let tb = Lazy.force mixer in
  let rng = Cbmf_prob.Rng.create 31 in
  let x = Process.sample tb.Testbench.process rng in
  for state = 0 to 30 do
    let a = tb.Testbench.evaluate ~state x in
    let b = tb.Testbench.evaluate ~state:(state + 1) x in
    check_true "VG smooth" (abs_float (a.(1) -. b.(1)) < 1.0)
  done

let test_mixer_internals () =
  let tb = Lazy.force mixer in
  let r = Mixer.evaluate_internals tb ~state:0 (zeros tb) in
  check_float ~tol:1e-9 "nominal tail" 4e-3 r.Mixer.tail_current;
  check_float ~tol:1e-9 "nominal load" 300.0 r.Mixer.load_ohms;
  check_true "conversion gain linear > 1" (r.Mixer.conversion_gain > 1.0)

(* --- Cost model + Monte Carlo --- *)

let test_cost_model () =
  let tb = Lazy.force lna in
  (* Calibrated so 1120 samples = 2.72 h, as in Table 1. *)
  check_float ~tol:1e-9 "LNA table cost" 2.72
    (Testbench.simulation_cost_hours tb ~n_samples:1120);
  let tbm = Lazy.force mixer in
  check_float ~tol:1e-9 "mixer table cost" 17.20
    (Testbench.simulation_cost_hours tbm ~n_samples:1120)

let test_montecarlo_shapes () =
  let tb = Lazy.force lna in
  let rng = Cbmf_prob.Rng.create 2 in
  let mc = Montecarlo.generate tb rng ~n_per_state:4 in
  check_int "total" (4 * 32) (Montecarlo.total_samples mc);
  let open Cbmf_linalg in
  check_int "xs rows" 4 mc.Montecarlo.states.(0).Montecarlo.xs.Mat.rows;
  check_int "xs cols" 1264 mc.Montecarlo.states.(0).Montecarlo.xs.Mat.cols;
  check_int "ys cols" 3 mc.Montecarlo.states.(0).Montecarlo.ys.Mat.cols;
  let y = Montecarlo.poi_column mc ~state:3 ~poi:1 in
  check_int "poi col" 4 (Array.length y)

let test_montecarlo_truncate () =
  let tb = Lazy.force lna in
  let rng = Cbmf_prob.Rng.create 2 in
  let mc = Montecarlo.generate tb rng ~n_per_state:5 in
  let cut = Montecarlo.truncate mc ~n:2 in
  check_int "truncated" (2 * 32) (Montecarlo.total_samples cut);
  (* Prefix property: the first rows are identical. *)
  let open Cbmf_linalg in
  check_float "prefix"
    (Mat.get mc.Montecarlo.states.(7).Montecarlo.ys 1 0)
    (Mat.get cut.Montecarlo.states.(7).Montecarlo.ys 1 0)

let test_montecarlo_shared () =
  let tb = Lazy.force lna in
  let rng = Cbmf_prob.Rng.create 3 in
  let mc = Montecarlo.generate ~shared_samples:true tb rng ~n_per_state:2 in
  let open Cbmf_linalg in
  check_float "same x across states"
    (Mat.get mc.Montecarlo.states.(0).Montecarlo.xs 0 17)
    (Mat.get mc.Montecarlo.states.(9).Montecarlo.xs 0 17)

let suite =
  [ ( "circuit.lna",
      [ case "dimensions" test_lna_dimensions;
        case "nominal sanity" test_lna_nominal_sanity;
        case "deterministic" test_lna_deterministic;
        case "knob monotonicity" test_lna_knob_monotonicity;
        case "knob smoothness" test_lna_smooth_in_knob;
        case "process sensitivity" test_lna_vth_sensitivity;
        case "internals" test_lna_internals;
        case "periphery is weak" test_lna_periphery_weak ] );
    ( "circuit.mixer",
      [ case "dimensions" test_mixer_dimensions;
        case "nominal sanity" test_mixer_nominal_sanity;
        case "knob directions" test_mixer_knob_direction;
        case "load mismatch" test_mixer_load_mismatch;
        case "knob smoothness" test_mixer_smooth_in_knob;
        case "internals" test_mixer_internals ] );
    ( "circuit.montecarlo",
      [ case "cost model" test_cost_model;
        case "shapes" test_montecarlo_shapes;
        case "truncate prefix" test_montecarlo_truncate;
        case "shared samples" test_montecarlo_shared ] ) ]
