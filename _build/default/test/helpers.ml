(* Shared test utilities. *)

open Cbmf_linalg

let check_float ?(tol = 1e-9) name expected actual =
  Alcotest.(check (float tol)) name expected actual

let check_true name b = Alcotest.(check bool) name true b

let check_int name expected actual = Alcotest.(check int) name expected actual

let check_raises_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let case name f = Alcotest.test_case name `Quick f

let slow_case name f = Alcotest.test_case name `Slow f

let qcase ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Deterministic random matrices/vectors for tests. *)
let rng = Cbmf_prob.Rng.create 20260704

let random_vec n = Cbmf_prob.Rng.gaussian_vector rng n

let random_mat r c = Mat.init r c (fun _ _ -> Cbmf_prob.Rng.gaussian rng)

let random_spd n =
  (* aᵀa + n·I is comfortably positive definite. *)
  let a = random_mat n n in
  let g = Mat.gram a in
  Mat.add_diag_inplace g (float_of_int n *. 0.5);
  Mat.symmetrize_inplace g;
  g

(* FNV-1a over IEEE-754 bit patterns: any single-ulp difference changes
   the hash, so these make exact determinism goldens. *)
let hash_floats_acc acc (xs : float array) =
  Array.fold_left
    (fun acc x ->
      Int64.mul (Int64.logxor acc (Int64.bits_of_float x)) 0x100000001B3L)
    acc xs

let hash_floats xs = hash_floats_acc 0xCBF29CE484222325L xs

let hash_mats (ms : Mat.t array) =
  Array.fold_left
    (fun acc (m : Mat.t) -> hash_floats_acc acc m.Mat.data)
    0xCBF29CE484222325L ms

(* Pinned golden: FNV-1a hash of all xs then ys matrices of
   [Montecarlo.generate] on the LNA testbench, seed 42, n_per_state 3.
   Guards the per-sample RNG-splitting contract — the stream must stay
   bit-identical at any CBMF_DOMAINS and across refactors. *)
let montecarlo_lna_seed42_n3_hash = -1015624154674765274L

let mat_close ?(tol = 1e-8) name a b =
  if not (Mat.approx_equal ~tol a b) then
    Alcotest.failf "%s: matrices differ (max delta %g)" name
      (Mat.max_abs (Mat.sub a b))

let vec_close ?(tol = 1e-8) name a b =
  if not (Vec.approx_equal ~tol a b) then
    Alcotest.failf "%s: vectors differ (max delta %g)" name
      (Vec.norm_inf (Vec.sub a b))
