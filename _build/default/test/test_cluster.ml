open Cbmf_linalg
open Cbmf_model
open Cbmf_core
open Helpers

(* Two-regime tunable circuit: states 0..5 follow one coefficient
   pattern, states 6..11 an unrelated one — the situation the paper's
   conclusion flags as breaking the unified correlation model. *)
let two_regime ?(k = 12) ?(n = 8) ?(m = 30) ?(noise = 0.05) ?(seed = 41) () =
  let rng = Cbmf_prob.Rng.create seed in
  let split = k / 2 in
  let coef s j =
    if s < split then
      match j with 0 -> 3.0 | 4 -> 2.0 | 11 -> -1.0 | _ -> 0.0
    else
      match j with 0 -> -1.0 | 7 -> 1.5 | 19 -> 2.5 | _ -> 0.0
  in
  let design =
    Array.init k (fun _ ->
        Mat.init n m (fun _ j -> if j = 0 then 1.0 else Cbmf_prob.Rng.gaussian rng))
  in
  let response =
    Array.init k (fun s ->
        Array.init n (fun i ->
            let acc = ref (noise *. Cbmf_prob.Rng.gaussian rng) in
            for j = 0 to m - 1 do
              let c = coef s j in
              if c <> 0.0 then acc := !acc +. (c *. Mat.get design.(s) i j)
            done;
            !acc))
  in
  Dataset.create ~design ~response

let test_select_states () =
  let d = two_regime () in
  let sub = Dataset.select_states d [| 2; 7; 11 |] in
  check_int "states" 3 sub.Dataset.n_states;
  check_float "copied response" d.Dataset.response.(7).(3) sub.Dataset.response.(1).(3)

let test_profiles_shape () =
  let d = two_regime () in
  let p = Cluster.profile_states d in
  check_int "K rows" 12 (fst (Mat.dim p))

let test_segment_finds_boundary () =
  let d = two_regime ~n:20 () in
  let a = Cluster.segment d ~n_clusters:2 in
  check_int "two clusters" 2 (Array.length a.Cluster.clusters);
  check_int "first cluster ends at 5" 6 (Array.length a.Cluster.clusters.(0));
  check_int "gap count" 11 (Array.length a.Cluster.gaps);
  (* The regime boundary (between states 5 and 6) has the largest gap. *)
  check_int "largest gap at boundary" 5 (Vec.argmax a.Cluster.gaps)

let test_auto_segment () =
  let d = two_regime ~n:20 () in
  let a = Cluster.auto_segment d in
  check_int "auto finds two" 2 (Array.length a.Cluster.clusters);
  (* A single-regime problem must stay a single cluster (same
     profiling budget as above; clustering needs enough samples for
     stable profiles). *)
  let uniform = two_regime ~k:8 ~n:20 ~seed:43 () in
  (* make it single-regime by selecting only the first half *)
  let single = Dataset.select_states uniform [| 0; 1; 2; 3 |] in
  let a1 = Cluster.auto_segment single in
  check_int "single regime, one cluster" 1 (Array.length a1.Cluster.clusters)

let test_clusters_cover_all_states () =
  let d = two_regime () in
  let a = Cluster.segment d ~n_clusters:3 in
  let seen = Array.make 12 0 in
  Array.iter (Array.iter (fun s -> seen.(s) <- seen.(s) + 1)) a.Cluster.clusters;
  Array.iter (fun c -> check_int "covered once" 1 c) seen

let test_clustered_beats_unified () =
  let train = two_regime ~n:8 ~seed:41 () in
  let test_data = two_regime ~n:60 ~seed:42 () in
  let cfg = Cbmf.fast_config in
  let unified = Cbmf.fit ~config:cfg train in
  let e_unified = Cbmf.test_error unified test_data in
  let a = Cluster.segment train ~n_clusters:2 in
  let _, coeffs = Cluster.fit_clustered ~config:cfg train a in
  let e_clustered = Cluster.test_error ~coeffs test_data in
  check_true
    (Printf.sprintf "clustered (%.4f) <= unified (%.4f)" e_clustered e_unified)
    (e_clustered <= e_unified +. 1e-9)

let test_singleton_cluster () =
  let d = two_regime ~k:5 ~n:10 () in
  let a = { Cluster.clusters = [| [| 0 |]; [| 1; 2; 3; 4 |] |]; gaps = [||] } in
  let models, coeffs = Cluster.fit_clustered ~config:Cbmf.fast_config d a in
  check_int "two models" 2 (Array.length models);
  check_int "rows" 5 (fst (Mat.dim coeffs))

let suite =
  [ ( "core.cluster",
      [ case "select_states" test_select_states;
        case "profiles shape" test_profiles_shape;
        case "segment finds regime boundary" test_segment_finds_boundary;
        case "auto segment" test_auto_segment;
        case "clusters cover states" test_clusters_cover_all_states;
        slow_case "clustered beats unified on two regimes" test_clustered_beats_unified;
        case "singleton cluster fallback" test_singleton_cluster ] ) ]
