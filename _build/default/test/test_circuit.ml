open Cbmf_circuit
open Helpers

(* --- Units --- *)

let test_db_conversions () =
  check_float ~tol:1e-12 "10 dB" 10.0 (Units.db_of_power_ratio 10.0);
  check_float ~tol:1e-12 "20 dB" 20.0 (Units.db_of_voltage_ratio 10.0);
  check_float ~tol:1e-12 "roundtrip power" 3.7
    (Units.db_of_power_ratio (Units.power_ratio_of_db 3.7));
  check_float ~tol:1e-12 "roundtrip voltage" (-2.5)
    (Units.db_of_voltage_ratio (Units.voltage_ratio_of_db (-2.5)))

let test_dbm () =
  check_float ~tol:1e-12 "0 dBm = 1 mW" 0.0 (Units.dbm_of_watts 1e-3);
  check_float ~tol:1e-12 "30 dBm = 1 W" 30.0 (Units.dbm_of_watts 1.0);
  check_float ~tol:1e-9 "watts roundtrip" 2e-3 (Units.watts_of_dbm (Units.dbm_of_watts 2e-3));
  (* 1 V amplitude across 50 Ω: P = 1/(100) W = 10 dBm. *)
  check_float ~tol:1e-9 "vamp" 10.0 (Units.dbm_of_vamp 1.0 ~r:50.0)

let test_thermal () =
  check_float ~tol:1e-4 "Ut at 300K" 0.02585 Units.thermal_voltage;
  check_true "4kT" (Units.four_kt > 1.6e-20 && Units.four_kt < 1.7e-20)

(* --- Process --- *)

let specs =
  [| { Process.dev_name = "M1"; dev_w = 10e-6; dev_l = 100e-9 };
     { Process.dev_name = "M2"; dev_w = 1e-6; dev_l = 100e-9 } |]

let test_process_dim () =
  let p = Process.create specs in
  check_int "dim" (8 + 8) (Process.dim p);
  let p2 = Process.create ~n_resistor_vars:3 specs in
  check_int "dim with resistors" (8 + 8 + 3) (Process.dim p2);
  check_int "n_devices" 2 (Process.n_devices p)

let test_process_decode () =
  let p = Process.create specs in
  let x = Array.make (Process.dim p) 0.0 in
  x.(0) <- 2.0;
  (* global dvth, sigma 15 mV *)
  let g = Process.global_of p x in
  check_float ~tol:1e-12 "global dvth" 0.030 g.Process.dvth;
  check_float "other globals zero" 0.0 g.Process.dbeta_rel;
  x.(8) <- 1.0;
  (* M1 local dvth *)
  let m1 = Process.mismatch_of p x 0 in
  let area = 10e-6 *. 100e-9 in
  check_float ~tol:1e-9 "pelgrom sigma" (2.5e-9 /. sqrt area) m1.Process.m_dvth;
  let m2 = Process.mismatch_of p x 1 in
  check_float "m2 unaffected" 0.0 m2.Process.m_dvth

let test_pelgrom_scaling () =
  let p = Process.create specs in
  let x = Array.make (Process.dim p) 0.0 in
  x.(8) <- 1.0;
  x.(12) <- 1.0;
  let m1 = Process.mismatch_of p x 0 and m2 = Process.mismatch_of p x 1 in
  (* M2 is 10× smaller area → √10 larger sigma. *)
  check_float ~tol:1e-9 "area scaling" (sqrt 10.0)
    (m2.Process.m_dvth /. m1.Process.m_dvth)

let test_resistor_vars () =
  let p = Process.create ~n_resistor_vars:2 specs in
  let x = Array.make (Process.dim p) 0.0 in
  x.(Process.dim p - 1) <- 3.0;
  check_float ~tol:1e-12 "resistor var" 0.03 (Process.resistor_var p x 1);
  check_float "other zero" 0.0 (Process.resistor_var p x 0)

let test_variable_names () =
  let p = Process.create ~n_resistor_vars:1 specs in
  check_true "global name" (String.equal (Process.variable_name p 0) "g:dvth");
  check_true "device name" (String.equal (Process.variable_name p 8) "M1:dvth");
  check_true "resistor name" (String.equal (Process.variable_name p 16) "r:0");
  check_int "device_index" 1 (Process.device_index p "M2")

let test_sample_dim () =
  let p = Process.create specs in
  let r = Cbmf_prob.Rng.create 1 in
  check_int "sample dim" (Process.dim p) (Array.length (Process.sample p r))

(* --- Mosfet --- *)

let geom = { Mosfet.w = 20e-6; l = 100e-9 }

let inst = Mosfet.nominal Mosfet.nmos_32nm geom

let test_id_monotone () =
  let prev = ref 0.0 in
  List.iter
    (fun vgs ->
      let id = Mosfet.drain_current inst ~vgs in
      check_true "monotone in vgs" (id > !prev);
      prev := id)
    [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.7; 0.9 ]

let test_gm_matches_derivative () =
  List.iter
    (fun vgs ->
      let h = 1e-6 in
      let num =
        (Mosfet.drain_current inst ~vgs:(vgs +. h)
        -. Mosfet.drain_current inst ~vgs:(vgs -. h))
        /. (2.0 *. h)
      in
      let gm = Mosfet.transconductance inst ~vgs in
      check_true "gm = dId/dVgs"
        (abs_float (num -. gm) <= 1e-5 *. Float.max gm 1e-9))
    [ 0.2; 0.35; 0.5; 0.8 ]

let test_bias_at_current () =
  List.iter
    (fun id ->
      let op = Mosfet.op_at_current inst ~id in
      check_true "id matches" (abs_float (op.Mosfet.id -. id) <= 1e-9 *. id);
      check_true "gm positive" (op.Mosfet.gm > 0.0))
    [ 1e-5; 1e-4; 1e-3; 5e-3 ]

let test_subthreshold_exponential () =
  (* Below threshold the current is ~exponential: equal Vgs steps give
     equal current ratios. *)
  let i1 = Mosfet.drain_current inst ~vgs:0.15 in
  let i2 = Mosfet.drain_current inst ~vgs:0.20 in
  let i3 = Mosfet.drain_current inst ~vgs:0.25 in
  let r1 = i2 /. i1 and r2 = i3 /. i2 in
  check_true "exponential region" (abs_float (r1 -. r2) /. r1 < 0.15)

let test_vth_shift () =
  (* A +10 mV Vth shift at fixed Vgs is a −10 mV Vgs shift. *)
  let g = Mosfet.nominal Mosfet.nmos_32nm geom in
  let shifted =
    Mosfet.instantiate Mosfet.nmos_32nm geom
      { Process.dvth = 0.01; dbeta_rel = 0.0; dl_rel = 0.0; dw_rel = 0.0;
        dcox_rel = 0.0; drsheet_rel = 0.0; dcpar_rel = 0.0; dgamma_rel = 0.0 }
      { Process.m_dvth = 0.0; m_dbeta_rel = 0.0; m_dl_rel = 0.0; m_dw_rel = 0.0 }
  in
  check_float ~tol:1e-15 "vth shift"
    (Mosfet.drain_current g ~vgs:0.49)
    (Mosfet.drain_current shifted ~vgs:0.50)

let test_gm_over_id_bounds () =
  (* gm/Id must fall between the weak-inversion limit 1/(n·Ut) and 0. *)
  List.iter
    (fun id ->
      let op = Mosfet.op_at_current inst ~id in
      let gm_id = op.Mosfet.gm /. op.Mosfet.id in
      check_true "gm/Id < weak limit"
        (gm_id < 1.0 /. (Mosfet.nmos_32nm.Mosfet.n_slope *. Units.thermal_voltage));
      check_true "gm/Id positive" (gm_id > 0.0))
    [ 1e-6; 1e-4; 1e-2 ]

let test_gm3_sign_change () =
  (* gm3 > 0 in weak inversion, < 0 deep in strong inversion. *)
  let weak = Mosfet.op_at_vgs inst ~vgs:0.25 in
  let strong = Mosfet.op_at_vgs inst ~vgs:0.9 in
  check_true "gm3 weak positive" (weak.Mosfet.gm3 > 0.0);
  check_true "gm3 strong negative" (strong.Mosfet.gm3 < 0.0)

let test_noise_psd () =
  let op = Mosfet.op_at_current inst ~id:1e-3 in
  check_float ~tol:1e-30 "thermal psd"
    (Units.four_kt *. op.Mosfet.gamma *. op.Mosfet.gm)
    (Mosfet.thermal_noise_psd op);
  let f1 = Mosfet.flicker_noise_psd inst op ~freq:1e3 in
  let f2 = Mosfet.flicker_noise_psd inst op ~freq:1e6 in
  check_float ~tol:1e-3 "1/f slope" 1000.0 (f1 /. f2);
  check_true "flicker negligible at RF"
    (Mosfet.flicker_noise_psd inst op ~freq:2.4e9 < 0.01 *. Mosfet.thermal_noise_psd op)

let test_capacitances () =
  let op = Mosfet.op_at_current inst ~id:1e-3 in
  check_true "cgs > cgd" (op.Mosfet.cgs > op.Mosfet.cgd);
  check_true "cgs reasonable" (op.Mosfet.cgs > 1e-15 && op.Mosfet.cgs < 1e-12)

(* --- Knob --- *)

let test_knob_sweep () =
  let k = Knob.sweep ~n_states:5 ~lo:100.0 ~hi:500.0 in
  check_int "count" 5 (Knob.n_states k);
  check_float "first" 100.0 (Knob.value k 0);
  check_float "last" 500.0 (Knob.value k 4);
  check_float "step" 200.0 (Knob.value k 1 -. Knob.value k 0 +. Knob.value k 0)

let test_knob_geometric () =
  let k = Knob.geometric_sweep ~n_states:4 ~lo:1.0 ~hi:8.0 in
  check_float ~tol:1e-12 "geometric ratio" 2.0 (Knob.value k 1 /. Knob.value k 0);
  check_float ~tol:1e-9 "endpoint" 8.0 (Knob.value k 3)

let suite =
  [ ( "circuit.units",
      [ case "db conversions" test_db_conversions;
        case "dbm" test_dbm;
        case "thermal constants" test_thermal ] );
    ( "circuit.process",
      [ case "dimensions" test_process_dim;
        case "decode" test_process_decode;
        case "pelgrom scaling" test_pelgrom_scaling;
        case "resistor vars" test_resistor_vars;
        case "variable names" test_variable_names;
        case "sample dim" test_sample_dim ] );
    ( "circuit.mosfet",
      [ case "id monotone" test_id_monotone;
        case "gm = numeric derivative" test_gm_matches_derivative;
        case "bias at current" test_bias_at_current;
        case "subthreshold exponential" test_subthreshold_exponential;
        case "vth shift equivalence" test_vth_shift;
        case "gm/Id bounds" test_gm_over_id_bounds;
        case "gm3 sign change" test_gm3_sign_change;
        case "noise PSDs" test_noise_psd;
        case "capacitances" test_capacitances ] );
    ( "circuit.knob",
      [ case "linear sweep" test_knob_sweep;
        case "geometric sweep" test_knob_geometric ] ) ]
