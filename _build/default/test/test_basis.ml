open Cbmf_basis
open Cbmf_linalg
open Helpers

let test_term_eval () =
  let x = Vec.of_list [ 2.0; 3.0; -1.0 ] in
  check_float "constant" 1.0 (Term.eval Term.Constant x);
  check_float "linear" 3.0 (Term.eval (Term.Linear 1) x);
  check_float "square" 4.0 (Term.eval (Term.Square 0) x);
  check_float "cross" (-3.0) (Term.eval (Term.Cross (1, 2)) x)

let test_term_degree_vars () =
  check_int "deg const" 0 (Term.degree Term.Constant);
  check_int "deg linear" 1 (Term.degree (Term.Linear 4));
  check_int "deg cross" 2 (Term.degree (Term.Cross (1, 2)));
  check_true "vars cross" (Term.variables (Term.Cross (3, 5)) = [ 3; 5 ]);
  check_int "max_var const" (-1) (Term.max_variable Term.Constant)

let test_term_order () =
  check_true "const < linear" (Term.compare Term.Constant (Term.Linear 0) < 0);
  check_true "linear order" (Term.compare (Term.Linear 1) (Term.Linear 2) < 0);
  check_true "linear < square" (Term.compare (Term.Linear 9) (Term.Square 0) < 0);
  check_true "equal" (Term.equal (Term.Cross (1, 2)) (Term.Cross (1, 2)))

let test_linear_dictionary () =
  let d = Dictionary.linear 4 in
  check_int "size" 5 (Dictionary.size d);
  check_int "input_dim" 4 (Dictionary.input_dim d);
  check_true "term 0 constant" (Term.equal (Dictionary.term d 0) Term.Constant);
  let x = Vec.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  vec_close "eval" (Vec.of_list [ 1.0; 1.0; 2.0; 3.0; 4.0 ]) (Dictionary.eval d x)

let test_quadratic_dictionaries () =
  let d = Dictionary.quadratic_diagonal 3 in
  check_int "diag size" 7 (Dictionary.size d);
  let q = Dictionary.quadratic 3 in
  (* 1 + 3 linear + 3 squares + 3 crosses. *)
  check_int "full size" 10 (Dictionary.size q);
  let x = Vec.of_list [ 1.0; 2.0; 3.0 ] in
  let row = Dictionary.eval q x in
  check_float "sum of quadratic row"
    (1.0 +. 6.0 +. 14.0 +. (2.0 +. 3.0 +. 6.0))
    (Vec.sum row)

let test_duplicate_rejected () =
  check_raises_invalid "duplicate" (fun () ->
      Dictionary.of_terms [ Term.Linear 0; Term.Linear 0 ])

let test_index_of () =
  let d = Dictionary.linear 3 in
  check_true "found" (Dictionary.index_of d (Term.Linear 1) = Some 2);
  check_true "missing" (Dictionary.index_of d (Term.Square 0) = None)

let test_design_matrix () =
  let d = Dictionary.linear 2 in
  let xs = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Dictionary.design_matrix d xs in
  check_int "rows" 2 (fst (Mat.dim b));
  check_int "cols" 3 (snd (Mat.dim b));
  check_float "b[1,2]" 4.0 (Mat.get b 1 2);
  check_float "constant col" 1.0 (Mat.get b 1 0)

let test_column_norms () =
  let b = Mat.of_arrays [| [| 3.0; 0.0 |]; [| 4.0; 0.0 |] |] in
  let norms = Dictionary.column_norms b in
  check_float "norm" 5.0 norms.(0);
  check_float "zero column -> 1" 1.0 norms.(1)

let prop_eval_matches_design =
  qcase ~count:30 "design rows = eval"
    QCheck2.Gen.(int_range 1 6)
    (fun dim ->
      let d = Dictionary.quadratic_diagonal dim in
      let xs = random_mat 4 dim in
      let b = Dictionary.design_matrix d xs in
      let ok = ref true in
      for i = 0 to 3 do
        if not (Vec.approx_equal ~tol:1e-12 (Mat.row b i) (Dictionary.eval d (Mat.row xs i)))
        then ok := false
      done;
      !ok)

let suite =
  [ ( "basis",
      [ case "term eval" test_term_eval;
        case "term degree/vars" test_term_degree_vars;
        case "term ordering" test_term_order;
        case "linear dictionary" test_linear_dictionary;
        case "quadratic dictionaries" test_quadratic_dictionaries;
        case "duplicate rejection" test_duplicate_rejected;
        case "index_of" test_index_of;
        case "design matrix" test_design_matrix;
        case "column norms" test_column_norms;
        prop_eval_matches_design ] ) ]
