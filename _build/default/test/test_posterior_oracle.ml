(* Property-based oracle for the structured posterior: on random small
   (K, N, M) instances with every basis function active, the blocked
   O((NK)²·a) path of [Posterior.compute] — including its domain-pool
   fan-out — must agree with the literal dense reference
   [Posterior.naive_dense] (eqs. 19–21) on μ, every Σ-block and the
   NLML to 1e-8, and must be bit-identical across pool sizes. *)

open Cbmf_linalg
open Cbmf_model
open Helpers
module Pool = Cbmf_parallel.Pool

let build_case ~k ~n ~m ~seed =
  let rng = Cbmf_prob.Rng.create seed in
  let design =
    Array.init k (fun _ ->
        Mat.init n m (fun _ _ -> Cbmf_prob.Rng.gaussian rng))
  in
  let response = Array.init k (fun _ -> Cbmf_prob.Rng.gaussian_vector rng n) in
  let d = Dataset.create ~design ~response in
  let lambda = Array.init m (fun _ -> 0.05 +. Cbmf_prob.Rng.float rng) in
  let r0 = 0.9 *. Cbmf_prob.Rng.float rng in
  let sigma0 = 0.5 +. Cbmf_prob.Rng.float rng in
  let prior =
    Cbmf_core.Prior.create ~lambda
      ~r:(Cbmf_core.Prior.r_of_r0 ~n_states:k ~r0)
      ~sigma0
  in
  (d, prior)

(* |a − b| ≤ tol·(1 + max |naive|), elementwise. *)
let close ~tol reference delta = delta <= tol *. (1.0 +. reference)

let mat_scale (a : Mat.t) = Mat.max_abs a

let compute_all (d : Dataset.t) prior =
  let active = Array.init d.Dataset.n_basis Fun.id in
  Cbmf_core.Posterior.compute ~need_sigma:true d prior ~active

let gen_case =
  QCheck2.Gen.(
    quad (int_range 1 4) (int_range 2 6) (int_range 2 8) (int_range 0 100_000))

let prop_matches_dense_oracle (k, n, m, seed) =
  let d, prior = build_case ~k ~n ~m ~seed in
  let post = compute_all d prior in
  let mu_naive, sigma_naive, nlml_naive = Cbmf_core.Posterior.naive_dense d prior in
  let tol = 1e-8 in
  let mu_ok =
    close ~tol (mat_scale mu_naive)
      (Mat.max_abs (Mat.sub mu_naive post.Cbmf_core.Posterior.mu))
  in
  let nlml_ok =
    close ~tol (abs_float nlml_naive)
      (abs_float (nlml_naive -. post.Cbmf_core.Posterior.nlml))
  in
  let blocks_ok =
    Array.for_all
      (fun (col, block) ->
        let naive_block =
          Mat.init k k (fun s1 s2 ->
              Mat.get sigma_naive ((col * k) + s1) ((col * k) + s2))
        in
        close ~tol (mat_scale naive_block)
          (Mat.max_abs (Mat.sub naive_block block)))
      post.Cbmf_core.Posterior.sigma_blocks
  in
  mu_ok && nlml_ok && blocks_ok

let prop_bit_identical_across_domains (k, n, m, seed) =
  let d, prior = build_case ~k ~n ~m ~seed in
  Pool.set_default_size 1;
  let p1 = compute_all d prior in
  Pool.set_default_size 4;
  let p4 = compute_all d prior in
  Pool.set_default_size (Pool.env_domains ());
  let mats_equal (a : Mat.t) (b : Mat.t) = a.Mat.data = b.Mat.data in
  mats_equal p1.Cbmf_core.Posterior.mu p4.Cbmf_core.Posterior.mu
  && Int64.equal
       (Int64.bits_of_float p1.Cbmf_core.Posterior.nlml)
       (Int64.bits_of_float p4.Cbmf_core.Posterior.nlml)
  && Array.for_all2
       (fun (c1, b1) (c4, b4) -> c1 = c4 && mats_equal b1 b4)
       p1.Cbmf_core.Posterior.sigma_blocks p4.Cbmf_core.Posterior.sigma_blocks

(* Sparse active sets exercise the a < M corner of the pair loops. *)
let prop_active_subset_matches (k, n, m, seed) =
  let d, prior = build_case ~k ~n ~m ~seed in
  let active = Array.init ((m + 1) / 2) (fun i -> 2 * i) in
  Pool.set_default_size 1;
  let p1 = Cbmf_core.Posterior.compute ~need_sigma:true d prior ~active in
  Pool.set_default_size 4;
  let p4 = Cbmf_core.Posterior.compute ~need_sigma:true d prior ~active in
  Pool.set_default_size (Pool.env_domains ());
  p1.Cbmf_core.Posterior.mu.Mat.data = p4.Cbmf_core.Posterior.mu.Mat.data
  && Int64.equal
       (Int64.bits_of_float p1.Cbmf_core.Posterior.nlml)
       (Int64.bits_of_float p4.Cbmf_core.Posterior.nlml)

let suite =
  [ ( "parallel.posterior-oracle",
      [ qcase ~count:40 "compute = naive_dense (mu, Sigma, NLML) @ 1e-8"
          gen_case prop_matches_dense_oracle;
        qcase ~count:15 "bit-identical at 1 vs 4 domains" gen_case
          prop_bit_identical_across_domains;
        qcase ~count:15 "sparse active set, 1 vs 4 domains" gen_case
          prop_active_subset_matches ] ) ]
