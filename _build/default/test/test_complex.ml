open Cbmf_linalg
open Helpers

let c re im = { Complex.re; im }

let random_cmat n m =
  Cmat.init n m (fun _ _ ->
      c (Cbmf_prob.Rng.gaussian rng) (Cbmf_prob.Rng.gaussian rng))

let random_cvec n =
  Cmat.vec_of_array
    (Array.init n (fun _ ->
         c (Cbmf_prob.Rng.gaussian rng) (Cbmf_prob.Rng.gaussian rng)))

let test_vec_roundtrip () =
  let a = Array.init 5 (fun i -> c (float_of_int i) (-.float_of_int i)) in
  let v = Cmat.vec_of_array a in
  let b = Cmat.vec_to_array v in
  check_true "roundtrip" (a = b)

let test_vec_accumulate () =
  let v = Cmat.vec_create 3 in
  Cmat.vec_add_at v 1 (c 1.0 2.0);
  Cmat.vec_add_at v 1 (c 0.5 (-1.0));
  let got = Cmat.vec_get v 1 in
  check_float "re" 1.5 got.Complex.re;
  check_float "im" 1.0 got.Complex.im

let test_identity_matvec () =
  let i = Cmat.identity 4 in
  let v = random_cvec 4 in
  check_true "I·v = v" (Cmat.vec_approx_equal ~tol:1e-12 v (Cmat.mat_vec i v))

let test_add_at () =
  let m = Cmat.create 2 2 in
  Cmat.add_at m 0 1 (c 1.0 1.0);
  Cmat.add_at m 0 1 (c 2.0 (-0.5));
  let got = Cmat.get m 0 1 in
  check_float "re" 3.0 got.Complex.re;
  check_float "im" 0.5 got.Complex.im

let test_scale () =
  let m = Cmat.identity 2 in
  let s = Cmat.scale (c 0.0 1.0) m in
  let got = Cmat.get s 0 0 in
  check_float "j·1 re" 0.0 got.Complex.re;
  check_float "j·1 im" 1.0 got.Complex.im

let test_clu_solve () =
  let a = random_cmat 6 6 in
  let x = random_cvec 6 in
  let b = Cmat.mat_vec a x in
  let got = Clu.solve a b in
  check_true "clu solve" (Cmat.vec_approx_equal ~tol:1e-8 x got)

let test_clu_reuse () =
  let a = random_cmat 5 5 in
  let f = Clu.factorize a in
  for _ = 1 to 3 do
    let x = random_cvec 5 in
    let b = Cmat.mat_vec a x in
    check_true "reused factorization" (Cmat.vec_approx_equal ~tol:1e-8 x (Clu.solve_vec f b))
  done

let test_clu_pivoting () =
  (* Leading zero pivot requires a row exchange. *)
  let a =
    Cmat.init 2 2 (fun i j ->
        if i = 0 && j = 0 then Complex.zero
        else if i = 0 then c 1.0 0.0
        else if j = 0 then c 1.0 0.0
        else c 2.0 0.0)
  in
  let b = Cmat.vec_of_array [| c 1.0 0.0; c 3.0 0.0 |] in
  let x = Clu.solve a b in
  (* x1 = 1 (from row 0), x0 = 3 − 2·1 = 1. *)
  let x0 = Cmat.vec_get x 0 and x1 = Cmat.vec_get x 1 in
  check_float ~tol:1e-12 "x0" 1.0 x0.Complex.re;
  check_float ~tol:1e-12 "x1" 1.0 x1.Complex.re

let test_clu_singular () =
  let a = Cmat.create 3 3 in
  match Clu.factorize a with
  | _ -> Alcotest.fail "expected Singular"
  | exception Clu.Singular _ -> ()

let test_reactive_solve () =
  (* 1Ω resistor in series with 1 H inductor at ω = 1: z = 1 + j. *)
  let a = Cmat.init 1 1 (fun _ _ -> c 1.0 1.0) in
  let b = Cmat.vec_of_array [| c 1.0 0.0 |] in
  let x = Clu.solve a b in
  let v = Cmat.vec_get x 0 in
  check_float ~tol:1e-12 "re" 0.5 v.Complex.re;
  check_float ~tol:1e-12 "im" (-0.5) v.Complex.im

let prop_clu_residual =
  qcase ~count:30 "‖a·x − b‖ small"
    QCheck2.Gen.(int_range 1 8)
    (fun n ->
      let a = random_cmat n n in
      let x = random_cvec n in
      let b = Cmat.mat_vec a x in
      let got = Clu.solve a b in
      Cmat.vec_approx_equal ~tol:1e-6 x got)

let suite =
  [ ( "linalg.complex",
      [ case "vec roundtrip" test_vec_roundtrip;
        case "vec accumulate" test_vec_accumulate;
        case "identity matvec" test_identity_matvec;
        case "add_at" test_add_at;
        case "scale by j" test_scale;
        case "clu solve" test_clu_solve;
        case "clu factorization reuse" test_clu_reuse;
        case "clu pivoting" test_clu_pivoting;
        case "clu singular" test_clu_singular;
        case "reactive solve" test_reactive_solve;
        prop_clu_residual ] ) ]
