open Cbmf_linalg
open Cbmf_model
open Helpers

(* Small synthetic multi-state dataset with planted sparse truth. *)
let planted ?(k = 6) ?(n = 30) ?(m = 40) ?(noise = 0.01) ?(seed = 5) () =
  let rng = Cbmf_prob.Rng.create seed in
  let support = [| 0; 7; 19 |] in
  (* column 0 is constant *)
  let coef s j =
    match j with
    | 0 -> 3.0
    | 7 -> 1.0 +. (0.1 *. float_of_int s)
    | 19 -> -0.5
    | _ -> 0.0
  in
  ignore support;
  let design =
    Array.init k (fun _ ->
        Mat.init n m (fun _ j -> if j = 0 then 1.0 else Cbmf_prob.Rng.gaussian rng))
  in
  let response =
    Array.init k (fun s ->
        Array.init n (fun i ->
            let acc = ref (noise *. Cbmf_prob.Rng.gaussian rng) in
            for j = 0 to m - 1 do
              let c = coef s j in
              if c <> 0.0 then acc := !acc +. (c *. Mat.get design.(s) i j)
            done;
            !acc))
  in
  Dataset.create ~design ~response

(* --- Dataset --- *)

let test_dataset_shapes () =
  let d = planted () in
  check_int "states" 6 d.Dataset.n_states;
  check_int "samples" 30 d.Dataset.n_samples;
  check_int "basis" 40 d.Dataset.n_basis;
  check_int "total" 180 (Dataset.total_samples d)

let test_dataset_truncate () =
  let d = planted () in
  let t = Dataset.truncate_samples d ~n:10 in
  check_int "truncated" 10 t.Dataset.n_samples;
  check_float "prefix" d.Dataset.response.(2).(3) t.Dataset.response.(2).(3)

let test_dataset_fold_split () =
  let d = planted ~n:10 () in
  let train, test = Dataset.split_fold d ~n_folds:5 ~fold:0 in
  check_int "train" 8 train.Dataset.n_samples;
  check_int "test" 2 test.Dataset.n_samples;
  (* Folds partition the rows: over all folds each row appears once. *)
  let seen = Array.make 10 0 in
  for fold = 0 to 4 do
    let _, te = Dataset.split_fold d ~n_folds:5 ~fold in
    for i = 0 to te.Dataset.n_samples - 1 do
      (* identify original row by its response value *)
      let y = te.Dataset.response.(0).(i) in
      Array.iteri
        (fun orig v -> if v = y then seen.(orig) <- seen.(orig) + 1)
        d.Dataset.response.(0)
    done
  done;
  Array.iter (fun c -> check_int "row covered once" 1 c) seen

let test_dataset_select_rows () =
  let d = planted ~n:5 () in
  let sel = Dataset.select_rows d (Array.make 6 [| 4; 0 |]) in
  check_int "rows" 2 sel.Dataset.n_samples;
  check_float "reorder" d.Dataset.response.(1).(4) sel.Dataset.response.(1).(0)

let test_dataset_mismatch_rejected () =
  let d = planted ~n:5 () in
  match
    Dataset.create
      ~design:d.Dataset.design
      ~response:(Array.map (fun y -> Array.sub y 0 3) d.Dataset.response)
  with
  | _ -> Alcotest.fail "expected assert failure"
  | exception Assert_failure _ -> ()

(* --- Metrics --- *)

let test_metrics_rmse () =
  let p = Vec.of_list [ 1.0; 2.0 ] and a = Vec.of_list [ 1.0; 4.0 ] in
  check_float ~tol:1e-12 "rmse" (sqrt 2.0) (Metrics.rmse ~predicted:p ~actual:a)

let test_metrics_relative () =
  let a = Vec.of_list [ 3.0; 4.0 ] in
  check_float ~tol:1e-12 "relative zero" 0.0
    (Metrics.relative_rms ~predicted:(Vec.copy a) ~actual:a);
  check_float ~tol:1e-12 "relative" 1.0
    (Metrics.relative_rms ~predicted:(Vec.create 2) ~actual:a);
  check_float "percent" 12.5 (Metrics.percent 0.125)

let test_metrics_pooled () =
  let a1 = Vec.of_list [ 1.0; 0.0 ] and a2 = Vec.of_list [ 0.0; 2.0 ] in
  let p1 = Vec.of_list [ 0.0; 0.0 ] and p2 = Vec.of_list [ 0.0; 2.0 ] in
  (* pooled = sqrt(1/(1+4)) *)
  check_float ~tol:1e-12 "pooled" (sqrt 0.2)
    (Metrics.relative_rms_pooled [| (p1, a1); (p2, a2) |])

let test_metrics_r2 () =
  let a = Vec.of_list [ 1.0; 2.0; 3.0 ] in
  check_float ~tol:1e-12 "perfect" 1.0 (Metrics.r_squared ~predicted:(Vec.copy a) ~actual:a);
  check_float ~tol:1e-12 "mean model" 0.0
    (Metrics.r_squared ~predicted:(Vec.make 3 2.0) ~actual:a)

(* --- OLS --- *)

let test_ols_recovers () =
  let d = planted ~n:50 ~noise:0.0 () in
  let coeffs = Ols.fit d in
  check_float ~tol:1e-8 "exact recovery" 0.0 (Metrics.coeffs_error_pooled ~coeffs d);
  check_float ~tol:1e-6 "known coefficient" 1.2 (Mat.get coeffs 2 7)

let test_ols_on_support () =
  let d = planted ~noise:0.0 () in
  let coeffs = Ols.fit_on_support d ~support:[| 0; 7; 19 |] in
  check_float ~tol:1e-8 "support recovery" 0.0 (Metrics.coeffs_error_pooled ~coeffs d);
  check_float "off support zero" 0.0 (Mat.get coeffs 0 3)

(* --- Ridge --- *)

let test_ridge_shrinks () =
  let d = planted () in
  let small = Ridge.fit d ~lambda:1e-8 in
  let large = Ridge.fit d ~lambda:1e4 in
  check_true "shrinkage"
    (Mat.frobenius large < 0.1 *. Mat.frobenius small)

let test_ridge_dual_matches_primal () =
  (* N > M exercises the primal branch, N < M the dual; both must agree
     with the normal equations on a common instance. *)
  let rng = Cbmf_prob.Rng.create 8 in
  let design = Mat.init 10 10 (fun _ _ -> Cbmf_prob.Rng.gaussian rng) in
  let response = Array.init 10 (fun _ -> Cbmf_prob.Rng.gaussian rng) in
  let lambda = 0.37 in
  let primal = Ridge.fit_vec ~design ~response ~lambda in
  (* Dual path via a fat copy (add zero columns changes nothing). *)
  let fat = Mat.init 10 20 (fun i j -> if j < 10 then Mat.get design i j else 0.0) in
  let dual = Ridge.fit_vec ~design:fat ~response ~lambda in
  vec_close ~tol:1e-8 "dual = primal on shared columns" primal (Array.sub dual 0 10)

let test_ridge_cv () =
  let d = planted ~noise:0.05 () in
  let _, lambda = Ridge.fit_cv d ~lambdas:[| 1e-6; 1e-2; 1e2 |] ~n_folds:3 in
  check_true "sane lambda" (lambda < 1e2)

(* --- OMP --- *)

let test_omp_exact_recovery () =
  let d = planted ~noise:0.0 () in
  let r =
    Omp.fit ~design:d.Dataset.design.(0) ~response:d.Dataset.response.(0)
      ~n_terms:3
  in
  let sorted = Array.copy r.Omp.support in
  Array.sort compare sorted;
  check_true "support found" (sorted = [| 0; 7; 19 |]);
  check_float ~tol:1e-8 "coefficient" (-0.5) r.Omp.coeffs.(19)

let test_omp_prediction () =
  let d = planted ~noise:0.01 () in
  let r =
    Omp.fit ~design:d.Dataset.design.(1) ~response:d.Dataset.response.(1)
      ~n_terms:3
  in
  let pred = Omp.predict r d.Dataset.design.(1) in
  check_true "fit quality"
    (Metrics.relative_rms ~predicted:pred ~actual:d.Dataset.response.(1) < 0.05)

let test_omp_cv_selects_sparsity () =
  let d = planted ~noise:0.02 ~n:40 () in
  let _, chosen =
    Omp.fit_cv ~design:d.Dataset.design.(0) ~response:d.Dataset.response.(0)
      ~n_folds:4 ~candidate_terms:[| 1; 3; 10; 20 |]
  in
  check_true "neither extreme" (chosen >= 3 && chosen <= 10)

(* --- S-OMP --- *)

let test_somp_shared_support () =
  let d = planted ~noise:0.01 () in
  let r = Somp.fit d ~n_terms:3 in
  let sorted = Array.copy r.Somp.support in
  Array.sort compare sorted;
  check_true "shared support" (sorted = [| 0; 7; 19 |])

let test_somp_beats_per_state_at_small_n () =
  (* With few samples per state, pooling the selection across states
     finds the true support more reliably than per-state OMP. *)
  let d = planted ~k:8 ~n:8 ~m:60 ~noise:0.05 ~seed:11 () in
  let test_data = planted ~k:8 ~n:50 ~m:60 ~noise:0.05 ~seed:12 () in
  let r = Somp.fit d ~n_terms:3 in
  let somp_err = Metrics.coeffs_error_pooled ~coeffs:r.Somp.coeffs test_data in
  let per_state_err =
    let coeffs = Mat.create 8 60 in
    for s = 0 to 7 do
      let o =
        Omp.fit ~design:d.Dataset.design.(s) ~response:d.Dataset.response.(s)
          ~n_terms:3
      in
      Mat.set_row coeffs s o.Omp.coeffs
    done;
    Metrics.coeffs_error_pooled ~coeffs test_data
  in
  check_true "somp <= per-state omp" (somp_err <= per_state_err +. 1e-6)

let test_somp_select_next_excludes () =
  let d = planted ~noise:0.0 () in
  let residual = Array.map Vec.copy d.Dataset.response in
  let exclude = Array.make d.Dataset.n_basis false in
  let first = Somp.select_next d ~residual ~exclude in
  exclude.(first) <- true;
  let second = Somp.select_next d ~residual ~exclude in
  check_true "different" (first <> second)

let test_somp_cv () =
  let d = planted ~noise:0.02 ~n:20 () in
  let r, chosen = Somp.fit_cv d ~n_folds:4 ~candidate_terms:[| 1; 3; 8 |] in
  check_true "chosen sane" (chosen = 3 || chosen = 8);
  check_true "support size" (Array.length r.Somp.support >= 3)

(* --- Crossval --- *)

let test_folds_partition () =
  let folds = Crossval.interleaved_folds ~n:13 ~n_folds:4 in
  check_int "count" 4 (Array.length folds);
  let seen = Array.make 13 0 in
  Array.iter
    (fun (train, test) ->
      check_int "sizes" 13 (Array.length train + Array.length test);
      Array.iter (fun i -> seen.(i) <- seen.(i) + 1) test)
    folds;
  Array.iter (fun c -> check_int "each row tested once" 1 c) seen

let test_select () =
  let grid = [| 1.0; 2.0; 3.0 |] in
  let best, score, all = Crossval.select ~grid ~score:(fun x -> abs_float (x -. 2.2)) in
  check_float "winner" 2.0 best;
  check_true "score" (score < 0.3);
  check_int "all" 3 (Array.length all)

let test_grid3 () =
  let g = Crossval.grid3 [| 1; 2 |] [| 'a' |] [| true; false |] in
  check_int "size" 4 (Array.length g)

let test_log_grid () =
  let g = Crossval.log_grid ~lo:1.0 ~hi:100.0 ~n:3 in
  check_float ~tol:1e-9 "mid" 10.0 g.(1);
  check_float ~tol:1e-9 "hi" 100.0 g.(2)

let suite =
  [ ( "model.dataset",
      [ case "shapes" test_dataset_shapes;
        case "truncate" test_dataset_truncate;
        case "fold split partitions" test_dataset_fold_split;
        case "select_rows" test_dataset_select_rows;
        case "shape mismatch rejected" test_dataset_mismatch_rejected ] );
    ( "model.metrics",
      [ case "rmse" test_metrics_rmse;
        case "relative" test_metrics_relative;
        case "pooled" test_metrics_pooled;
        case "r-squared" test_metrics_r2 ] );
    ( "model.ols",
      [ case "recovers planted model" test_ols_recovers;
        case "fit on support" test_ols_on_support ] );
    ( "model.ridge",
      [ case "shrinkage" test_ridge_shrinks;
        case "dual = primal" test_ridge_dual_matches_primal;
        case "cv" test_ridge_cv ] );
    ( "model.omp",
      [ case "exact recovery" test_omp_exact_recovery;
        case "prediction" test_omp_prediction;
        case "cv sparsity" test_omp_cv_selects_sparsity ] );
    ( "model.somp",
      [ case "shared support" test_somp_shared_support;
        case "beats per-state at small N" test_somp_beats_per_state_at_small_n;
        case "select_next exclusion" test_somp_select_next_excludes;
        case "cv" test_somp_cv ] );
    ( "model.crossval",
      [ case "fold partition" test_folds_partition;
        case "select" test_select;
        case "grid3" test_grid3;
        case "log grid" test_log_grid ] ) ]
