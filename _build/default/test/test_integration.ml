(* End-to-end integration: circuit → Monte-Carlo → datasets → both
   fitters → held-out validation, on miniature budgets so the suite
   stays fast.  Fixed seeds keep the assertions stable. *)

open Cbmf_model
open Cbmf_experiments
open Helpers

let lna_data =
  lazy (Workload.generate (Workload.lna ()) ~seed:7 ~n_train_max:12 ~n_test_per_state:20)

let mixer_data =
  lazy
    (Workload.generate (Workload.mixer ()) ~seed:7 ~n_train_max:12
       ~n_test_per_state:20)

let test_workload_shapes () =
  let d = Lazy.force lna_data in
  let train = Workload.train_dataset d ~poi:0 ~n_per_state:12 in
  check_int "states" 32 train.Dataset.n_states;
  check_int "samples" 12 train.Dataset.n_samples;
  check_int "basis = dim + 1" 1265 train.Dataset.n_basis;
  let test = Workload.test_dataset d ~poi:0 in
  check_int "test samples" 20 test.Dataset.n_samples

let test_lna_nf_end_to_end () =
  let d = Lazy.force lna_data in
  let train = Workload.train_dataset d ~poi:0 ~n_per_state:12 in
  let test = Workload.test_dataset d ~poi:0 in
  let model = Cbmf_core.Cbmf.fit ~config:Cbmf_core.Cbmf.fast_config train in
  let err = Cbmf_core.Cbmf.test_error model test in
  check_true (Printf.sprintf "NF error %.3f%% < 4%%" (100. *. err)) (err < 0.04)

let test_lna_cbmf_vs_somp () =
  let d = Lazy.force lna_data in
  let train = Workload.train_dataset d ~poi:0 ~n_per_state:12 in
  let test = Workload.test_dataset d ~poi:0 in
  let model = Cbmf_core.Cbmf.fit ~config:Cbmf_core.Cbmf.fast_config train in
  let somp, _ = Somp.fit_cv train ~n_folds:3 ~candidate_terms:[| 4; 8 |] in
  let cbmf_err = Cbmf_core.Cbmf.test_error model test in
  let somp_err = Metrics.coeffs_error_pooled ~coeffs:somp.Somp.coeffs test in
  check_true
    (Printf.sprintf "C-BMF %.3f%% <= S-OMP %.3f%% + slack" (100. *. cbmf_err)
       (100. *. somp_err))
    (cbmf_err <= somp_err *. 1.15)

let test_mixer_vg_end_to_end () =
  let d = Lazy.force mixer_data in
  let train = Workload.train_dataset d ~poi:1 ~n_per_state:12 in
  let test = Workload.test_dataset d ~poi:1 in
  let model = Cbmf_core.Cbmf.fit ~config:Cbmf_core.Cbmf.fast_config train in
  let err = Cbmf_core.Cbmf.test_error model test in
  check_true (Printf.sprintf "VG error %.3f%% < 2%%" (100. *. err)) (err < 0.02)

let test_sweep_point () =
  let d = Lazy.force lna_data in
  let s =
    Sweep.run ~cbmf_config:Cbmf_core.Cbmf.fast_config
      ~somp_terms:[| 4; 8 |] d ~poi:0 ~n_grid:[| 8; 12 |]
  in
  check_int "two points" 2 (Array.length s.Sweep.points);
  let p0 = s.Sweep.points.(0) and p1 = s.Sweep.points.(1) in
  check_int "total samples" (8 * 32) p0.Sweep.n_total;
  check_true "errors recorded" (p0.Sweep.somp_error > 0.0 && p1.Sweep.cbmf_error > 0.0)

let test_table_runner () =
  let d = Lazy.force lna_data in
  let t =
    Tables.run ~cbmf_config:Cbmf_core.Cbmf.fast_config ~somp_n_per_state:12
      ~cbmf_n_per_state:6 d
  in
  check_int "rows" 3 (Array.length t.Tables.rows);
  check_int "somp samples" (12 * 32) t.Tables.somp_samples;
  check_int "cbmf samples" (6 * 32) t.Tables.cbmf_samples;
  check_true "sim cost halves+"
    (t.Tables.cbmf_sim_hours < 0.6 *. t.Tables.somp_sim_hours);
  check_true "cost reduction computed" (t.Tables.cost_reduction > 1.0)

let test_simulation_cost_consistency () =
  let d = Lazy.force lna_data in
  let tb = d.Workload.workload.Workload.testbench in
  let h1120 = Cbmf_circuit.Testbench.simulation_cost_hours tb ~n_samples:1120 in
  let h480 = Cbmf_circuit.Testbench.simulation_cost_hours tb ~n_samples:480 in
  check_true "paper ratio > 2x" (h1120 /. h480 > 2.0)

let suite =
  [ ( "integration",
      [ case "workload shapes" test_workload_shapes;
        slow_case "LNA NF end-to-end" test_lna_nf_end_to_end;
        slow_case "LNA C-BMF vs S-OMP" test_lna_cbmf_vs_somp;
        slow_case "mixer VG end-to-end" test_mixer_vg_end_to_end;
        slow_case "sweep runner" test_sweep_point;
        slow_case "table runner" test_table_runner;
        case "cost consistency" test_simulation_cost_consistency ] ) ]
