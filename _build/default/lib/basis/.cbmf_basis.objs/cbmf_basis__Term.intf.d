lib/basis/term.mli: Cbmf_linalg Format
