lib/basis/dictionary.ml: Array Cbmf_linalg Format List Mat Stdlib Term
