lib/basis/dictionary.mli: Cbmf_linalg Format Mat Term Vec
