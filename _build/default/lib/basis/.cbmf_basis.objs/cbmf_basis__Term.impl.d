lib/basis/term.ml: Array Cbmf_linalg Format Printf Stdlib
