open Cbmf_linalg

type t = { terms : Term.t array; input_dim : int }

let of_terms list =
  let terms = Array.of_list list in
  let n = Array.length terms in
  let sorted = Array.copy terms in
  Array.sort Term.compare sorted;
  for i = 1 to n - 1 do
    if Term.equal sorted.(i - 1) sorted.(i) then
      invalid_arg "Dictionary.of_terms: duplicate term"
  done;
  let input_dim =
    1 + Array.fold_left (fun acc t -> Stdlib.max acc (Term.max_variable t)) (-1) terms
  in
  { terms; input_dim }

let linear dim =
  assert (dim >= 0);
  of_terms (Term.Constant :: List.init dim (fun i -> Term.Linear i))

let quadratic_diagonal dim =
  of_terms
    (Term.Constant
    :: (List.init dim (fun i -> Term.Linear i)
       @ List.init dim (fun i -> Term.Square i)))

let quadratic dim =
  let crosses = ref [] in
  for i = dim - 1 downto 0 do
    for j = dim - 1 downto i + 1 do
      crosses := Term.Cross (i, j) :: !crosses
    done
  done;
  of_terms
    (Term.Constant
    :: (List.init dim (fun i -> Term.Linear i)
       @ List.init dim (fun i -> Term.Square i)
       @ !crosses))

let size d = Array.length d.terms

let input_dim d = d.input_dim

let term d m = d.terms.(m)

let terms d = Array.copy d.terms

let index_of d t =
  let rec go i =
    if i >= Array.length d.terms then None
    else if Term.equal d.terms.(i) t then Some i
    else go (i + 1)
  in
  go 0

let eval d x =
  assert (Array.length x >= d.input_dim);
  Array.map (fun t -> Term.eval t x) d.terms

let design_matrix d xs =
  assert (xs.Mat.cols >= d.input_dim);
  let n = xs.Mat.rows and m = size d in
  let b = Mat.create n m in
  for i = 0 to n - 1 do
    let x = Mat.row xs i in
    Mat.set_row b i (eval d x)
  done;
  b

let column_norms (b : Mat.t) =
  let norms = Array.make b.Mat.cols 0.0 in
  for i = 0 to b.Mat.rows - 1 do
    for j = 0 to b.Mat.cols - 1 do
      let v = Mat.get b i j in
      norms.(j) <- norms.(j) +. (v *. v)
    done
  done;
  Array.map (fun s -> if s > 0.0 then sqrt s else 1.0) norms

let pp ppf d =
  Format.fprintf ppf "@[<hov 2>dictionary(M=%d, dim=%d):" (size d) d.input_dim;
  Array.iteri
    (fun i t ->
      if i < 8 then Format.fprintf ppf "@ %a" Term.pp t
      else if i = 8 then Format.fprintf ppf "@ ...")
    d.terms;
  Format.fprintf ppf "@]"
