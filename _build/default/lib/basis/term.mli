(** A single polynomial basis function over the variation vector [x].

    Terms are at most quadratic — the standard dictionary for analog
    performance modeling (constant, linear, squares and cross products
    of the device-level variations). *)

type t =
  | Constant
  | Linear of int  (** [Linear i] is x_i *)
  | Square of int  (** [Square i] is x_i² *)
  | Cross of int * int  (** [Cross (i, j)], i < j, is x_i·x_j *)

val eval : t -> Cbmf_linalg.Vec.t -> float

val degree : t -> int

val variables : t -> int list
(** Variables the term touches, ascending. *)

val max_variable : t -> int
(** Largest variable index used; [-1] for [Constant]. *)

val compare : t -> t -> int
(** Total order: by degree, then lexicographically by indices. *)

val equal : t -> t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit
