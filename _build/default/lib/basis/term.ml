type t = Constant | Linear of int | Square of int | Cross of int * int

let eval t (x : Cbmf_linalg.Vec.t) =
  match t with
  | Constant -> 1.0
  | Linear i -> x.(i)
  | Square i -> x.(i) *. x.(i)
  | Cross (i, j) -> x.(i) *. x.(j)

let degree = function
  | Constant -> 0
  | Linear _ -> 1
  | Square _ | Cross _ -> 2

let variables = function
  | Constant -> []
  | Linear i | Square i -> [ i ]
  | Cross (i, j) -> [ i; j ]

let max_variable = function
  | Constant -> -1
  | Linear i | Square i -> i
  | Cross (i, j) -> Stdlib.max i j

let rank = function
  | Constant -> (0, 0, 0)
  | Linear i -> (1, i, 0)
  | Square i -> (2, i, i)
  | Cross (i, j) -> (2, Stdlib.min i j, Stdlib.max i j)

let compare a b = Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let to_string = function
  | Constant -> "1"
  | Linear i -> Printf.sprintf "x%d" i
  | Square i -> Printf.sprintf "x%d^2" i
  | Cross (i, j) -> Printf.sprintf "x%d*x%d" i j

let pp ppf t = Format.pp_print_string ppf (to_string t)
