(** An ordered dictionary of basis functions shared by all knob states,
    plus the design-matrix machinery built on it. *)

open Cbmf_linalg

type t

val of_terms : Term.t list -> t
(** Keeps the given order; duplicates are rejected. *)

val linear : int -> t
(** Constant + all first-order terms over [dim] variables
    (M = dim + 1) — the dictionary used in the paper's examples. *)

val quadratic_diagonal : int -> t
(** Constant + linear + squares (M = 2·dim + 1). *)

val quadratic : int -> t
(** Full quadratic including cross terms — O(dim²); only sensible for
    small [dim]. *)

val size : t -> int
(** Number of basis functions M. *)

val input_dim : t -> int
(** Smallest x-dimension the dictionary can be evaluated on. *)

val term : t -> int -> Term.t

val terms : t -> Term.t array
(** Fresh copy of the term array, in dictionary order. *)

val index_of : t -> Term.t -> int option

val eval : t -> Vec.t -> Vec.t
(** Row of basis-function values [b_1(x) … b_M(x)]. *)

val design_matrix : t -> Mat.t -> Mat.t
(** [design_matrix d xs] evaluates the dictionary on every row of [xs]
    (N×dim), producing the N×M matrix B of eq. (3). *)

val column_norms : Mat.t -> Vec.t
(** Euclidean norm of every column of a design matrix (zero-safe:
    returns 1 for all-zero columns so that normalization divides are
    harmless). *)

val pp : Format.formatter -> t -> unit
