(** Simultaneous orthogonal matching pursuit (S-OMP) [19] — the
    state-of-the-art baseline the paper compares against.

    S-OMP assumes all states share one sparse model template: at every
    greedy step the basis function maximizing the {e summed} residual
    correlation over all states (paper eq. 33) joins the shared
    support, and each state's coefficients are re-solved independently
    by least squares on that support. *)

open Cbmf_linalg

type result = {
  support : int array;  (** shared template, in selection order *)
  coeffs : Mat.t;  (** K×M, zeros off the support *)
}

val select_next : Dataset.t -> residual:Vec.t array -> exclude:bool array -> int
(** One greedy selection step (eq. 33, with per-state column
    normalization); returns the winning column.  Raises [Not_found] if
    every column is excluded. *)

val fit : Dataset.t -> n_terms:int -> result
(** Greedy fit with a fixed support size (capped at N and M). *)

val fit_cv :
  Dataset.t -> n_folds:int -> candidate_terms:int array -> result * int
(** Sparsity level chosen by pooled cross-validation, refit on all
    samples.  This is the full baseline configuration used in the
    experiments. *)
