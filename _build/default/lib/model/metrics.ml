open Cbmf_linalg

let rmse ~predicted ~actual =
  assert (Array.length predicted = Array.length actual);
  assert (Array.length actual > 0);
  Vec.dist predicted actual /. sqrt (float_of_int (Array.length actual))

let relative_rms ~predicted ~actual =
  let denom = Vec.norm2 actual in
  if denom <= 0.0 then invalid_arg "Metrics.relative_rms: zero actual";
  Vec.dist predicted actual /. denom

let relative_rms_pooled pairs =
  assert (Array.length pairs > 0);
  let num = ref 0.0 and den = ref 0.0 in
  Array.iter
    (fun (predicted, actual) ->
      let d = Vec.dist predicted actual in
      num := !num +. (d *. d);
      den := !den +. Vec.norm2_sq actual)
    pairs;
  if !den <= 0.0 then invalid_arg "Metrics.relative_rms_pooled: zero actual";
  sqrt (!num /. !den)

let percent x = 100.0 *. x

let r_squared ~predicted ~actual =
  let n = Array.length actual in
  assert (n > 0 && Array.length predicted = n);
  let mean = Vec.mean actual in
  let ss_tot = ref 0.0 and ss_res = ref 0.0 in
  for i = 0 to n - 1 do
    let dt = actual.(i) -. mean in
    let dr = actual.(i) -. predicted.(i) in
    ss_tot := !ss_tot +. (dt *. dt);
    ss_res := !ss_res +. (dr *. dr)
  done;
  if !ss_tot <= 0.0 then 0.0 else 1.0 -. (!ss_res /. !ss_tot)

let max_abs_error ~predicted ~actual =
  assert (Array.length predicted = Array.length actual);
  let worst = ref 0.0 in
  for i = 0 to Array.length actual - 1 do
    worst := Float.max !worst (abs_float (predicted.(i) -. actual.(i)))
  done;
  !worst

let predict_state ~coeffs (d : Dataset.t) k =
  assert (coeffs.Mat.rows = d.Dataset.n_states);
  assert (coeffs.Mat.cols = d.Dataset.n_basis);
  Mat.mat_vec d.Dataset.design.(k) (Mat.row coeffs k)

let coeffs_error_pooled ~coeffs (d : Dataset.t) =
  let pairs =
    Array.init d.Dataset.n_states (fun k ->
        (predict_state ~coeffs d k, d.Dataset.response.(k)))
  in
  relative_rms_pooled pairs
