lib/model/ridge.mli: Cbmf_linalg Dataset Mat Vec
