lib/model/somp.mli: Cbmf_linalg Dataset Mat Vec
