lib/model/metrics.mli: Cbmf_linalg Dataset Mat Vec
