lib/model/dataset.ml: Array Cbmf_linalg Mat Vec
