lib/model/omp.ml: Array Cbmf_basis Cbmf_linalg List Mat Metrics Qr Stdlib Vec
