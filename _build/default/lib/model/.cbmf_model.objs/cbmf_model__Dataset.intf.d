lib/model/dataset.mli: Cbmf_linalg Mat Vec
