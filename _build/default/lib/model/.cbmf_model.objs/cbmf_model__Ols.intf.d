lib/model/ols.mli: Cbmf_linalg Dataset Mat Vec
