lib/model/group_lasso.mli: Cbmf_linalg Dataset Mat
