lib/model/ridge.ml: Array Cbmf_linalg Chol Dataset Mat Metrics Vec
