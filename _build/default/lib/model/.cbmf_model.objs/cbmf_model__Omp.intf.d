lib/model/omp.mli: Cbmf_linalg Mat Vec
