lib/model/metrics.ml: Array Cbmf_linalg Dataset Float Mat Vec
