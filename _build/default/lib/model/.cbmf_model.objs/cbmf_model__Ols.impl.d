lib/model/ols.ml: Array Cbmf_linalg Dataset Mat Qr
