lib/model/crossval.ml: Array
