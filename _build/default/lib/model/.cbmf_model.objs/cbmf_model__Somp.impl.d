lib/model/somp.ml: Array Cbmf_basis Cbmf_linalg Dataset List Mat Metrics Ols Qr Stdlib Vec
