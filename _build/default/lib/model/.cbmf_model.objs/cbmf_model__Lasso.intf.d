lib/model/lasso.mli: Cbmf_linalg Dataset Mat Vec
