lib/model/crossval.mli:
