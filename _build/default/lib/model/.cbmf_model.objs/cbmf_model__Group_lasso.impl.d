lib/model/group_lasso.ml: Array Cbmf_linalg Crossval Dataset Float Mat Metrics Vec
