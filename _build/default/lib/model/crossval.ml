let interleaved_folds ~n ~n_folds =
  assert (n_folds >= 2 && n >= n_folds);
  Array.init n_folds (fun fold ->
      let train = ref [] and test = ref [] in
      for i = n - 1 downto 0 do
        if i mod n_folds = fold then test := i :: !test
        else train := i :: !train
      done;
      (Array.of_list !train, Array.of_list !test))

let select ~grid ~score =
  assert (Array.length grid > 0);
  let scores = Array.map score grid in
  let best = ref 0 in
  for i = 1 to Array.length scores - 1 do
    if scores.(i) < scores.(!best) then best := i
  done;
  (grid.(!best), scores.(!best), scores)

let grid3 a b c =
  let out = ref [] in
  for i = Array.length a - 1 downto 0 do
    for j = Array.length b - 1 downto 0 do
      for k = Array.length c - 1 downto 0 do
        out := (a.(i), b.(j), c.(k)) :: !out
      done
    done
  done;
  Array.of_list !out

let log_grid ~lo ~hi ~n =
  assert (lo > 0.0 && hi > lo && n >= 2);
  let ratio = log (hi /. lo) /. float_of_int (n - 1) in
  Array.init n (fun i -> lo *. exp (ratio *. float_of_int i))
