(** Generic grid-search cross-validation helpers. *)

val interleaved_folds : n:int -> n_folds:int -> (int array * int array) array
(** [(train_rows, test_rows)] per fold; row [i] tests in fold
    [i mod n_folds]. *)

val select : grid:'a array -> score:('a -> float) -> 'a * float * float array
(** Evaluate [score] (lower is better) on every grid point; return the
    winner, its score, and all scores (grid order). *)

val grid3 : 'a array -> 'b array -> 'c array -> ('a * 'b * 'c) array
(** Cartesian product — the (r0, σ0, θ) candidate sets of
    Algorithm 1. *)

val log_grid : lo:float -> hi:float -> n:int -> float array
(** n logarithmically spaced points in [lo, hi]; requires positives. *)
