(** Group lasso across knob states — the convex representative of the
    shared-template family the paper cites ([20], [21]): each basis
    function's coefficients over all K states form one group, penalized
    by the L2,1 norm

    ½ Σ_k ‖y_k − B_k α_k‖² + λ Σ_m ‖(α_{1,m} … α_{K,m})‖₂

    so a basis function is either active in {e every} state or in none —
    the shared sparse template — while coefficient magnitudes remain
    free (no magnitude-correlation modeling, which is exactly the gap
    C-BMF fills).  Solved by block coordinate descent. *)

open Cbmf_linalg

type result = {
  coeffs : Mat.t;  (** K×M *)
  active : int array;  (** basis functions with a nonzero group *)
  iterations : int;
  converged : bool;
}

val fit :
  ?max_iter:int -> ?tol:float -> Dataset.t -> lambda:float -> result
(** Constant (intercept) columns are left unpenalized. *)

val lambda_max : Dataset.t -> float
(** Smallest λ for which every penalized group is zero. *)

val fit_cv :
  Dataset.t -> ?n_lambdas:int -> n_folds:int -> unit -> result * float
(** λ selected by pooled cross-validation on a log grid anchored at
    {!lambda_max}. *)
