open Cbmf_linalg

type result = {
  coeffs : Mat.t;
  active : int array;
  iterations : int;
  converged : bool;
}

let is_constant_column (b : Mat.t) j =
  let v0 = Mat.get b 0 j in
  let ok = ref (v0 <> 0.0) in
  for i = 1 to b.Mat.rows - 1 do
    if Mat.get b i j <> v0 then ok := false
  done;
  !ok

(* Block coordinate descent.  For group m the stacked subproblem is
   separable over states: minimizing over the group vector g (length K)
   ½ Σ_k ‖r_k + x_{k,m} g_k_old... ‖, with per-state curvature
   c_k = ‖x_{k,m}‖² and gradient point ρ_k = x_{k,m}ᵀ r_k + c_k·g_k.
   The stationarity condition gives g_k = ρ_k/(c_k + λ/‖g‖); we solve
   the scalar secular equation for s = ‖g‖ by a few Newton/bisection
   steps, which is exact for this diagonal case. *)
let solve_group ~rho ~curv ~lambda =
  let k = Array.length rho in
  (* If ‖(ρ_k/1)‖ scaled: group is zero iff ‖ρ‖ ≤ λ. *)
  let rho_norm = Vec.norm2 rho in
  if rho_norm <= lambda then Array.make k 0.0
  else begin
    (* Solve f(s) = Σ_k (ρ_k/(c_k + λ/s))² − s² = 0 for s > 0. *)
    let g_of s = Array.init k (fun i -> rho.(i) /. (curv.(i) +. (lambda /. s))) in
    let f s = Vec.norm2 (g_of s) -. s in
    (* f is decreasing in... bracket: lo where f > 0, hi where f < 0. *)
    let cmax = Array.fold_left Float.max 1e-12 curv in
    let cmin =
      Array.fold_left (fun a c -> if c > 0.0 then Float.min a c else a) cmax curv
    in
    let lo = ref (Float.max 1e-15 ((rho_norm -. lambda) /. cmax)) in
    let hi = ref ((rho_norm -. lambda) /. Float.max cmin 1e-12 +. 1e-12) in
    (* Guard the bracket. *)
    for _ = 1 to 60 do
      if f !lo < 0.0 then lo := !lo /. 2.0;
      if f !hi > 0.0 then hi := !hi *. 2.0
    done;
    for _ = 1 to 80 do
      let mid = 0.5 *. (!lo +. !hi) in
      if f mid >= 0.0 then lo := mid else hi := mid
    done;
    g_of (0.5 *. (!lo +. !hi))
  end

let fit ?(max_iter = 500) ?(tol = 1e-6) (d : Dataset.t) ~lambda =
  assert (lambda >= 0.0);
  let k = d.Dataset.n_states
  and n = d.Dataset.n_samples
  and m = d.Dataset.n_basis in
  ignore n;
  let cols =
    Array.init k (fun s -> Array.init m (fun j -> Mat.col d.Dataset.design.(s) j))
  in
  let curv = Array.init m (fun j -> Array.init k (fun s -> Vec.norm2_sq cols.(s).(j))) in
  let penalized =
    Array.init m (fun j -> not (is_constant_column d.Dataset.design.(0) j))
  in
  let beta = Mat.create k m in
  let residual = Array.map Vec.copy d.Dataset.response in
  let scale =
    Array.fold_left (fun a y -> Float.max a (Vec.norm_inf y)) 1e-12
      d.Dataset.response
  in
  let iterations = ref 0 and converged = ref false in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    let biggest_move = ref 0.0 in
    for j = 0 to m - 1 do
      let old_g = Array.init k (fun s -> Mat.get beta s j) in
      let rho =
        Array.init k (fun s ->
            Vec.dot cols.(s).(j) residual.(s) +. (curv.(j).(s) *. old_g.(s)))
      in
      let new_g =
        if penalized.(j) then solve_group ~rho ~curv:curv.(j) ~lambda
        else
          Array.init k (fun s ->
              if curv.(j).(s) > 0.0 then rho.(s) /. curv.(j).(s) else 0.0)
      in
      for s = 0 to k - 1 do
        if new_g.(s) <> old_g.(s) then begin
          Vec.axpy (old_g.(s) -. new_g.(s)) cols.(s).(j) residual.(s);
          Mat.set beta s j new_g.(s);
          biggest_move := Float.max !biggest_move (abs_float (new_g.(s) -. old_g.(s)))
        end
      done
    done;
    if !biggest_move <= tol *. scale then converged := true
  done;
  let active = ref [] in
  for j = m - 1 downto 0 do
    if Vec.norm2 (Mat.col beta j) > 0.0 then active := j :: !active
  done;
  {
    coeffs = beta;
    active = Array.of_list !active;
    iterations = !iterations;
    converged = !converged;
  }

let lambda_max (d : Dataset.t) =
  let k = d.Dataset.n_states and m = d.Dataset.n_basis in
  (* Center responses if an intercept column exists (it absorbs means). *)
  let has_intercept = is_constant_column d.Dataset.design.(0) 0 in
  let ys =
    Array.map
      (fun y ->
        if has_intercept then begin
          let mu = Vec.mean y in
          Array.map (fun v -> v -. mu) y
        end
        else y)
      d.Dataset.response
  in
  let worst = ref 0.0 in
  for j = 0 to m - 1 do
    if not (is_constant_column d.Dataset.design.(0) j) then begin
      let g =
        Array.init k (fun s -> Vec.dot (Mat.col d.Dataset.design.(s) j) ys.(s))
      in
      worst := Float.max !worst (Vec.norm2 g)
    end
  done;
  Float.max !worst 1e-12

let fit_cv (d : Dataset.t) ?(n_lambdas = 8) ~n_folds () =
  let lmax = lambda_max d in
  let lambdas = Crossval.log_grid ~lo:(1e-3 *. lmax) ~hi:lmax ~n:n_lambdas in
  let cv_error lambda =
    let acc = ref 0.0 in
    for fold = 0 to n_folds - 1 do
      let train, test = Dataset.split_fold d ~n_folds ~fold in
      let r = fit train ~lambda in
      acc := !acc +. Metrics.coeffs_error_pooled ~coeffs:r.coeffs test
    done;
    !acc /. float_of_int n_folds
  in
  let best, _, _ = Crossval.select ~grid:lambdas ~score:cv_error in
  (fit d ~lambda:best, best)
