open Cbmf_linalg

let fit_vec ~design ~response = Qr.lstsq design response

let fit (d : Dataset.t) =
  assert (d.Dataset.n_samples >= d.Dataset.n_basis);
  let coeffs = Mat.create d.Dataset.n_states d.Dataset.n_basis in
  for k = 0 to d.Dataset.n_states - 1 do
    Mat.set_row coeffs k
      (fit_vec ~design:d.Dataset.design.(k) ~response:d.Dataset.response.(k))
  done;
  coeffs

let fit_on_support (d : Dataset.t) ~support =
  assert (Array.length support > 0);
  assert (d.Dataset.n_samples >= Array.length support);
  let coeffs = Mat.create d.Dataset.n_states d.Dataset.n_basis in
  for k = 0 to d.Dataset.n_states - 1 do
    let sub = Mat.select_cols d.Dataset.design.(k) support in
    let c = fit_vec ~design:sub ~response:d.Dataset.response.(k) in
    Array.iteri (fun j m -> Mat.set coeffs k m c.(j)) support
  done;
  coeffs
