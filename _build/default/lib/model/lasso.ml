open Cbmf_linalg

type result = { coeffs : Vec.t; iterations : int; converged : bool }

let soft_threshold x t =
  if x > t then x -. t else if x < -.t then x +. t else 0.0

(* A column is intercept-like when all its entries are equal (and
   nonzero). *)
let is_constant_column (b : Mat.t) j =
  let v0 = Mat.get b 0 j in
  let ok = ref (v0 <> 0.0) in
  for i = 1 to b.Mat.rows - 1 do
    if Mat.get b i j <> v0 then ok := false
  done;
  !ok

let fit_vec ?(max_iter = 1000) ?(tol = 1e-7) ~design ~response ~lambda () =
  assert (lambda >= 0.0);
  let n = design.Mat.rows and m = design.Mat.cols in
  assert (Array.length response = n);
  let cols = Array.init m (fun j -> Mat.col design j) in
  let col_sq = Array.map Vec.norm2_sq cols in
  let penalized = Array.init m (fun j -> not (is_constant_column design j)) in
  let beta = Vec.create m in
  let residual = Vec.copy response in
  let scale = Float.max 1e-12 (Vec.norm_inf response) in
  let iterations = ref 0 and converged = ref false in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    let biggest_move = ref 0.0 in
    for j = 0 to m - 1 do
      if col_sq.(j) > 0.0 then begin
        let old = beta.(j) in
        (* rho = x_jᵀ(residual + x_j·β_j) without materializing it. *)
        let rho = Vec.dot cols.(j) residual +. (col_sq.(j) *. old) in
        let updated =
          if penalized.(j) then soft_threshold rho lambda /. col_sq.(j)
          else rho /. col_sq.(j)
        in
        if updated <> old then begin
          Vec.axpy (old -. updated) cols.(j) residual;
          beta.(j) <- updated;
          biggest_move := Float.max !biggest_move (abs_float (updated -. old))
        end
      end
    done;
    if !biggest_move <= tol *. scale then converged := true
  done;
  { coeffs = beta; iterations = !iterations; converged = !converged }

let lambda_max ~design ~response =
  (* After projecting out unpenalized (intercept) columns, the usual
     max_j |x_jᵀ y| bound; we approximate the projection by centering
     y when an intercept column exists. *)
  let m = design.Mat.cols in
  let has_intercept = ref false in
  for j = 0 to m - 1 do
    if is_constant_column design j then has_intercept := true
  done;
  let y =
    if !has_intercept then begin
      let mu = Vec.mean response in
      Array.map (fun v -> v -. mu) response
    end
    else response
  in
  let worst = ref 0.0 in
  for j = 0 to m - 1 do
    if not (is_constant_column design j) then
      worst := Float.max !worst (abs_float (Vec.dot (Mat.col design j) y))
  done;
  Float.max !worst 1e-12

let fit (d : Dataset.t) ~lambda =
  let coeffs = Mat.create d.Dataset.n_states d.Dataset.n_basis in
  for k = 0 to d.Dataset.n_states - 1 do
    let r =
      fit_vec ~design:d.Dataset.design.(k) ~response:d.Dataset.response.(k)
        ~lambda ()
    in
    Mat.set_row coeffs k r.coeffs
  done;
  coeffs

let fit_cv (d : Dataset.t) ?(n_lambdas = 8) ~n_folds () =
  (* Anchor the grid at the largest per-state lambda_max. *)
  let lmax =
    let worst = ref 0.0 in
    for k = 0 to d.Dataset.n_states - 1 do
      worst :=
        Float.max !worst
          (lambda_max ~design:d.Dataset.design.(k)
             ~response:d.Dataset.response.(k))
    done;
    !worst
  in
  let lambdas = Crossval.log_grid ~lo:(1e-3 *. lmax) ~hi:lmax ~n:n_lambdas in
  let cv_error lambda =
    let acc = ref 0.0 in
    for fold = 0 to n_folds - 1 do
      let train, test = Dataset.split_fold d ~n_folds ~fold in
      let coeffs = fit train ~lambda in
      acc := !acc +. Metrics.coeffs_error_pooled ~coeffs test
    done;
    !acc /. float_of_int n_folds
  in
  let best, _, _ = Crossval.select ~grid:lambdas ~score:cv_error in
  (fit d ~lambda:best, best)
