(** Ridge (L2-regularized) regression — a dense baseline usable when
    N < M, and the independent-prior special case of Bayesian fitting. *)

open Cbmf_linalg

val fit_vec : design:Mat.t -> response:Vec.t -> lambda:float -> Vec.t
(** Solves (BᵀB + λI) α = Bᵀy via Cholesky.  Uses the dual (N×N)
    formulation automatically when N < M, which keeps the solve cheap
    for the high-dimensional dictionaries. *)

val fit : Dataset.t -> lambda:float -> Mat.t
(** Independent per-state ridge; K×M coefficients. *)

val fit_cv : Dataset.t -> lambdas:float array -> n_folds:int -> Mat.t * float
(** Select λ by pooled cross-validation error, then refit on all data.
    Returns the coefficients and the chosen λ. *)
