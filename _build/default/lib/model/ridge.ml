open Cbmf_linalg

let fit_vec ~design ~response ~lambda =
  assert (lambda > 0.0);
  let n = design.Mat.rows and m = design.Mat.cols in
  if n >= m then begin
    let gram = Mat.gram design in
    Mat.add_diag_inplace gram lambda;
    let rhs = Mat.mat_tvec design response in
    Chol.solve_vec (Chol.factorize_with_retry gram) rhs
  end
  else begin
    (* Dual form: α = Bᵀ (B Bᵀ + λI)⁻¹ y. *)
    let outer = Mat.matmul_nt design design in
    Mat.add_diag_inplace outer lambda;
    let w = Chol.solve_vec (Chol.factorize_with_retry outer) response in
    Mat.mat_tvec design w
  end

let fit (d : Dataset.t) ~lambda =
  let coeffs = Mat.create d.Dataset.n_states d.Dataset.n_basis in
  for k = 0 to d.Dataset.n_states - 1 do
    Mat.set_row coeffs k
      (fit_vec ~design:d.Dataset.design.(k) ~response:d.Dataset.response.(k)
         ~lambda)
  done;
  coeffs

let fit_cv (d : Dataset.t) ~lambdas ~n_folds =
  assert (Array.length lambdas > 0);
  let cv_error lambda =
    let acc = ref 0.0 in
    for fold = 0 to n_folds - 1 do
      let train, test = Dataset.split_fold d ~n_folds ~fold in
      let coeffs = fit train ~lambda in
      acc := !acc +. Metrics.coeffs_error_pooled ~coeffs test
    done;
    !acc /. float_of_int n_folds
  in
  let errors = Array.map cv_error lambdas in
  let best = Vec.argmin errors in
  (fit d ~lambda:lambdas.(best), lambdas.(best))
