open Cbmf_linalg

type result = { support : int array; coeffs : Mat.t }

let select_next (d : Dataset.t) ~residual ~exclude =
  let m = d.Dataset.n_basis in
  let scores = Array.make m 0.0 in
  for k = 0 to d.Dataset.n_states - 1 do
    let b = d.Dataset.design.(k) in
    let norms = Cbmf_basis.Dictionary.column_norms b in
    let corr = Mat.mat_tvec b residual.(k) in
    for j = 0 to m - 1 do
      scores.(j) <- scores.(j) +. (abs_float corr.(j) /. norms.(j))
    done
  done;
  let best = ref (-1) and best_score = ref neg_infinity in
  for j = 0 to m - 1 do
    if (not exclude.(j)) && scores.(j) > !best_score then begin
      best := j;
      best_score := scores.(j)
    end
  done;
  if !best < 0 then raise Not_found;
  !best

let fit (d : Dataset.t) ~n_terms =
  let m = d.Dataset.n_basis in
  let n_terms = Stdlib.min n_terms (Stdlib.min d.Dataset.n_samples m) in
  assert (n_terms > 0);
  let exclude = Array.make m false in
  let support = ref [] in
  let residual = Array.map Vec.copy d.Dataset.response in
  let refit sup =
    let coeffs = Ols.fit_on_support d ~support:sup in
    for k = 0 to d.Dataset.n_states - 1 do
      residual.(k) <-
        Vec.sub d.Dataset.response.(k) (Metrics.predict_state ~coeffs d k)
    done;
    coeffs
  in
  let coeffs = ref (Mat.create d.Dataset.n_states m) in
  (try
     for _ = 1 to n_terms do
       let j = select_next d ~residual ~exclude in
       exclude.(j) <- true;
       support := j :: !support;
       coeffs := refit (Array.of_list (List.rev !support))
     done
   with Not_found | Qr.Rank_deficient _ -> ());
  { support = Array.of_list (List.rev !support); coeffs = !coeffs }

let fit_cv (d : Dataset.t) ~n_folds ~candidate_terms =
  assert (Array.length candidate_terms > 0);
  let cv_error terms =
    let acc = ref 0.0 in
    for fold = 0 to n_folds - 1 do
      let train, test = Dataset.split_fold d ~n_folds ~fold in
      let r = fit train ~n_terms:terms in
      acc := !acc +. Metrics.coeffs_error_pooled ~coeffs:r.coeffs test
    done;
    !acc /. float_of_int n_folds
  in
  let errors = Array.map cv_error candidate_terms in
  let best = Vec.argmin errors in
  let chosen = candidate_terms.(best) in
  (fit d ~n_terms:chosen, chosen)
