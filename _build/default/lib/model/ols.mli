(** Ordinary least squares — the paper's eq. (2) reference method. *)

open Cbmf_linalg

val fit_vec : design:Mat.t -> response:Vec.t -> Vec.t
(** Minimum-residual coefficients via QR.  Requires at least as many
    rows as columns and full column rank. *)

val fit : Dataset.t -> Mat.t
(** Independent per-state least squares; returns the K×M coefficient
    matrix.  Requires N ≥ M. *)

val fit_on_support : Dataset.t -> support:int array -> Mat.t
(** Per-state least squares restricted to the given columns; the
    result is K×M with zeros off the support. *)
