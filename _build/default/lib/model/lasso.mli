(** L1-regularized least squares (lasso) by cyclic coordinate descent —
    the classic single-response sparse-regression baseline the paper's
    related work builds on [16]-[17].

    Constant (intercept-like) columns are detected and left
    unpenalized, so datasets carrying an explicit constant basis
    function can be fitted directly. *)

open Cbmf_linalg

type result = {
  coeffs : Vec.t;
  iterations : int;
  converged : bool;
}

val fit_vec :
  ?max_iter:int ->
  ?tol:float ->
  design:Mat.t ->
  response:Vec.t ->
  lambda:float ->
  unit ->
  result
(** Minimize ½‖y − Bα‖² + λ·Σ|α_j| (intercept columns excluded from
    the penalty).  [tol] (default 1e-7) bounds the largest coefficient
    change per sweep relative to the response scale; [max_iter]
    defaults to 1000 sweeps. *)

val lambda_max : design:Mat.t -> response:Vec.t -> float
(** Smallest λ for which every penalized coefficient is zero —
    the standard anchor for λ grids. *)

val fit : Dataset.t -> lambda:float -> Mat.t
(** Independent per-state lasso; K×M coefficients. *)

val fit_cv : Dataset.t -> ?n_lambdas:int -> n_folds:int -> unit -> Mat.t * float
(** Select λ on a logarithmic grid anchored at {!lambda_max} by pooled
    cross-validation, then refit.  Returns coefficients and the chosen
    λ. *)
