open Cbmf_linalg

type t = { lambda : Vec.t; r : Mat.t; sigma0 : float }

let create ~lambda ~r ~sigma0 =
  assert (sigma0 > 0.0);
  assert (Mat.is_square r);
  assert (Mat.is_symmetric ~tol:1e-8 r);
  Array.iter (fun l -> assert (l >= 0.0)) lambda;
  assert (Chol.is_positive_definite r);
  { lambda; r; sigma0 }

let r_of_r0 ~n_states ~r0 =
  assert (r0 >= 0.0 && r0 < 1.0);
  Mat.init n_states n_states (fun i j -> r0 ** float_of_int (abs (i - j)))

let identity_r ~n_states = Mat.identity n_states

let active_set p ~tol =
  let lmax = Array.fold_left Float.max 0.0 p.lambda in
  if lmax <= 0.0 then Array.init (Array.length p.lambda) (fun i -> i)
  else begin
    let keep = ref [] in
    for m = Array.length p.lambda - 1 downto 0 do
      if p.lambda.(m) > tol *. lmax then keep := m :: !keep
    done;
    Array.of_list !keep
  end

let n_basis p = Array.length p.lambda

let n_states p = p.r.Mat.rows
