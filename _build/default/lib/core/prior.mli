(** The C-BMF prior (paper §3.1).

    Coefficients of basis function m across the K states form the
    column vector α_m with prior N(0, λ_m·R): one sparsity
    hyper-parameter per basis function (shared template) and one K×K
    correlation matrix shared by all basis functions (eq. 9),
    capturing coefficient-magnitude correlation between states. *)

open Cbmf_linalg

type t = {
  lambda : Vec.t;  (** length M, all ≥ 0 *)
  r : Mat.t;  (** K×K symmetric positive definite *)
  sigma0 : float;  (** noise standard deviation, > 0 *)
}

val create : lambda:Vec.t -> r:Mat.t -> sigma0:float -> t
(** Validates shapes, positivity of [sigma0], symmetry and positive
    definiteness of [r]. *)

val r_of_r0 : n_states:int -> r0:float -> Mat.t
(** The parameterized correlation matrix of eq. 32:
    R[i,j] = r0^|i−j| with 0 ≤ r0 < 1 — nearby knob states are
    strongly correlated, distant ones weakly. *)

val identity_r : n_states:int -> Mat.t

val active_set : t -> tol:float -> int array
(** Indices with λ_m > tol · max λ (all indices when max λ = 0). *)

val n_basis : t -> int

val n_states : t -> int
