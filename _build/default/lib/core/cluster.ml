open Cbmf_linalg
open Cbmf_model

type assignment = { clusters : int array array; gaps : float array }

let profile_states (d : Dataset.t) =
  (* Matched-filter profile p_k = B_kᵀ y_k / N on standardized data:
     far more robust than a per-state regression at small N (its signal
     components concentrate at the true support while the noise spreads
     thinly over all M columns), and deliberately per-state so that no
     cross-state assumption leaks into the clustering decision. *)
  let _, std = Standardize.fit d in
  let k = std.Dataset.n_states in
  let profiles = Mat.create k std.Dataset.n_basis in
  for s = 0 to k - 1 do
    let p = Mat.mat_tvec std.Dataset.design.(s) std.Dataset.response.(s) in
    Vec.scale_inplace p (1.0 /. float_of_int std.Dataset.n_samples);
    Mat.set_row profiles s p
  done;
  profiles

(* Columns of a profile that rise above the noise floor: 2.5 robust
   sigmas, with the noise level estimated as median |entry| × 1.4826. *)
let support_of (p : Vec.t) =
  let sigma = 1.4826 *. Cbmf_prob.Stats.median (Array.map abs_float p) in
  let cutoff = 2.5 *. Float.max sigma 1e-12 in
  let sup = ref [] in
  Array.iteri (fun j v -> if abs_float v >= cutoff then sup := j :: !sup) p;
  if !sup = [] then [ Vec.argmax (Array.map abs_float p) ] else !sup

let adjacent_gaps (profiles : Mat.t) =
  let k = profiles.Mat.rows in
  (* Angular distance of the raw profiles restricted to the union of
     the two states' detected supports: a marginal signal that clears
     the threshold on only one side still contributes its raw value
     from both sides, while pure-noise columns are excluded. *)
  Array.init (k - 1) (fun i ->
      let a = Mat.row profiles i and b = Mat.row profiles (i + 1) in
      let union =
        List.sort_uniq compare (support_of a @ support_of b)
      in
      let pick (v : Vec.t) = Array.of_list (List.map (fun j -> v.(j)) union) in
      let ar = pick a and br = pick b in
      let denom = Float.max 1e-12 (Vec.norm2 ar *. Vec.norm2 br) in
      1.0 -. (Vec.dot ar br /. denom))

let cut_at d gap_idx =
  let k = d.Dataset.n_states in
  let cuts = List.sort compare gap_idx in
  let clusters = ref [] and start = ref 0 in
  List.iter
    (fun c ->
      clusters := Array.init (c + 1 - !start) (fun i -> !start + i) :: !clusters;
      start := c + 1)
    cuts;
  clusters := Array.init (k - !start) (fun i -> !start + i) :: !clusters;
  Array.of_list (List.rev !clusters)

let segment (d : Dataset.t) ~n_clusters =
  assert (n_clusters >= 1 && n_clusters <= d.Dataset.n_states);
  let gaps = adjacent_gaps (profile_states d) in
  let order = Array.init (Array.length gaps) Fun.id in
  Array.sort (fun i j -> compare gaps.(j) gaps.(i)) order;
  let cuts = Array.to_list (Array.sub order 0 (n_clusters - 1)) in
  { clusters = cut_at d cuts; gaps }

let auto_segment ?(threshold = 5.0) (d : Dataset.t) =
  let gaps = adjacent_gaps (profile_states d) in
  let median = Cbmf_prob.Stats.median gaps in
  let cuts = ref [] in
  Array.iteri
    (fun i g ->
      (* Relative test against the typical gap, plus an absolute floor:
         an angular distance below 0.5 means the profiles are clearly
         correlated, so never cut there regardless of the median. *)
      if g > threshold *. Float.max median 1e-12 && g > 0.5 then
        cuts := i :: !cuts)
    gaps;
  { clusters = cut_at d !cuts; gaps }

let fit_clustered ?(config = Cbmf.default_config) (d : Dataset.t) a =
  let coeffs = Mat.create d.Dataset.n_states d.Dataset.n_basis in
  let models =
    Array.map
      (fun states ->
        let sub = Dataset.select_states d states in
        let model =
          (* A singleton cluster cannot carry cross-state correlation:
             fall back to the independent prior. *)
          if Array.length states = 1 then Cbmf.fit ~config:Cbmf.independent_config sub
          else Cbmf.fit ~config sub
        in
        Array.iteri
          (fun local global ->
            Mat.set_row coeffs global (Mat.row model.Cbmf.coeffs local))
          states;
        model)
      a.clusters
  in
  (models, coeffs)

let test_error ~coeffs d = Metrics.coeffs_error_pooled ~coeffs d
