(** Hyper-parameter initialization: the modified S-OMP of Algorithm 1,
    steps 1–17.

    The hyper-parameter space is reduced to (r0, σ0, θ): R follows the
    single-parameter decay model of eq. 32, λ is inferred implicitly by
    greedy basis selection, and the triple is chosen by C-fold
    cross-validation.  Inside the greedy loop the coefficients are
    solved by the {e Bayesian} inference (eqs. 20–22 restricted to the
    current support with λ = 1 and R = R(r0)) — the difference from
    plain S-OMP — implemented incrementally with rank-K Cholesky
    updates so that one pass over θ = 1…θ_max prices every θ candidate
    at once.

    Expects a standardized dataset (see {!Standardize}). *)

open Cbmf_linalg
open Cbmf_model

type config = {
  r0_grid : float array;
  sigma0_grid : float array;  (** absolute, on standardized responses *)
  theta_max : int;  (** greedy pass length (capped by train rows − 1) *)
  n_folds : int;
  lambda_off : float;  (** λ for off-support bases in the EM seed *)
}

val default_config : config

type result = {
  support : int array;  (** selected template, in selection order *)
  r0 : float;
  sigma0 : float;
  theta : int;
  cv_error : float;  (** CV error of the winning triple *)
  prior : Prior.t;  (** Algorithm 1 step 17: the EM starting point *)
}

val greedy_pass :
  train:Dataset.t ->
  test:Dataset.t option ->
  r0:float ->
  sigma0:float ->
  theta_max:int ->
  int array * float array
(** One incremental modified-S-OMP pass: returns the selected columns
    (selection order) and, when [test] is given, the pooled test error
    after each step (length = number of steps actually taken). *)

val run : ?config:config -> Dataset.t -> result
