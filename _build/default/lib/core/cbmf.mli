(** Correlated Bayesian Model Fusion — Algorithm 1, end to end.

    [fit] standardizes the dataset, runs the modified-S-OMP
    cross-validated initialization (steps 1–17), refines the
    hyper-parameters by EM (steps 18–20), and maps the MAP coefficients
    back to raw units.  The result predicts any state's performance
    from a design-matrix row. *)

open Cbmf_linalg
open Cbmf_model

type config = {
  init : Init.config;
  em : Em.config;
}

val default_config : config

val fast_config : config
(** Smaller grids and iteration caps — for tests and quick sweeps. *)

val independent_config : config
(** Ablation: magnitude correlation disabled (R frozen at identity,
    r0 grid = {0}) — isolates the paper's claimed contribution over
    shared-template-only methods. *)

val init_only_config : config
(** Ablation: skip the EM refinement (steps 18–20). *)

type info = {
  r0 : float;  (** initializer's winning correlation decay *)
  sigma0_init : float;
  theta : int;  (** initializer's winning support size *)
  init_cv_error : float;
  em_iterations : int;
  em_converged : bool;
  nlml_history : float array;
  final_active : int;  (** basis functions surviving EM pruning *)
  final_sigma0 : float;  (** standardized units *)
  final_r : Mat.t;  (** K×K learned correlation *)
  fit_seconds : float;  (** CPU time of the whole fit *)
}

type model = {
  coeffs : Mat.t;  (** K×M, raw units — eq. (1)'s α *)
  info : info;
  uncertainty : state:int -> Vec.t -> float * float;
      (** [(mean, sd)] in raw units for one raw dictionary row,
          including both posterior coefficient uncertainty and the
          observation-noise level σ0 — what the MAP-only paper does not
          expose but the Bayesian posterior provides for free. *)
}

val fit : ?config:config -> Dataset.t -> model

val predict_state : model -> design:Mat.t -> state:int -> Vec.t
(** ŷ_k = B_k α_k. *)

val test_error : model -> Dataset.t -> float
(** Pooled relative RMS on an independent dataset. *)
