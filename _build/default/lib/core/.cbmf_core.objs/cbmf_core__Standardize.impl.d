lib/core/standardize.ml: Array Cbmf_linalg Cbmf_model Dataset Float Mat Stdlib Vec
