lib/core/prior.mli: Cbmf_linalg Mat Vec
