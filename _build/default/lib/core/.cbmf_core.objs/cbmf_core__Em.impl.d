lib/core/em.ml: Array Cbmf_linalg Cbmf_model Chol Dataset Float List Mat Posterior Prior Stdlib Vec
