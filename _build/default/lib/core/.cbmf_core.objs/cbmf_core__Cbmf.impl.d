lib/core/cbmf.ml: Array Cbmf_linalg Cbmf_model Dataset Em Float Init Mat Metrics Posterior Prior Standardize Sys Vec
