lib/core/cbmf.mli: Cbmf_linalg Cbmf_model Dataset Em Init Mat Vec
