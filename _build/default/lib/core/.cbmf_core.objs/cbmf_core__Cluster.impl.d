lib/core/cluster.ml: Array Cbmf Cbmf_linalg Cbmf_model Cbmf_prob Dataset Float Fun List Mat Metrics Standardize Vec
