lib/core/posterior.ml: Array Cbmf_linalg Cbmf_model Chol Dataset Float Mat Prior Vec
