lib/core/posterior.ml: Array Cbmf_linalg Cbmf_model Cbmf_parallel Chol Dataset Float Mat Prior Vec
