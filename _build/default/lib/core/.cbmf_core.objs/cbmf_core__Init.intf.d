lib/core/init.mli: Cbmf_linalg Cbmf_model Dataset Prior
