lib/core/prior.ml: Array Cbmf_linalg Chol Float Mat Vec
