lib/core/cluster.mli: Cbmf Cbmf_linalg Cbmf_model Dataset Mat
