lib/core/posterior.mli: Cbmf_linalg Cbmf_model Dataset Mat Prior Vec
