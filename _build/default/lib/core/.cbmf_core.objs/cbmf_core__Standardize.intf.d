lib/core/standardize.mli: Cbmf_linalg Cbmf_model Dataset Mat Vec
