lib/core/em.mli: Cbmf_linalg Cbmf_model Dataset Posterior Prior Vec
