lib/core/init.ml: Array Cbmf_linalg Cbmf_model Cbmf_parallel Chol Dataset List Mat Metrics Prior Somp Stdlib Vec
