(** Standardization of a multi-state dataset for Bayesian fitting.

    The Gaussian prior of C-BMF is only meaningful when the regression
    problem is dimensionless: responses are centered per state and
    scaled by their pooled standard deviation; every non-constant basis
    column is centered per state and scaled by a pooled (shared across
    states, so template sharing is preserved) column norm; constant
    columns are dropped from the Bayesian problem and their per-state
    intercepts reconstructed when mapping coefficients back to raw
    units. *)

open Cbmf_linalg
open Cbmf_model

type t
(** The fitted transform (means, scales, dropped columns). *)

val fit : Dataset.t -> t * Dataset.t
(** Learn the transform on a training dataset and return the
    standardized dataset (columns = kept basis functions only). *)

val apply : t -> Dataset.t -> Dataset.t
(** Standardize another dataset (e.g. a CV fold) with an existing
    transform. *)

val kept_columns : t -> int array
(** Original column indices of the standardized columns. *)

val standardize_row : t -> state:int -> Vec.t -> Vec.t
(** Map one raw dictionary row (length M) into the standardized basis
    (length M′ = kept columns), using state [state]'s centering. *)

val unstandardize_coeffs : t -> Mat.t -> Mat.t
(** Map a K×M′ coefficient matrix on the standardized problem back to
    a K×M matrix on the raw problem, filling per-state intercepts into
    the constant column (the first detected constant column, if any). *)

val response_scale : t -> float

val response_mean : t -> int -> float
(** Training mean of state [k]'s response. *)
