(** State clustering — the extension the paper's conclusion calls for:

    "C-BMF assumes a unified correlation model across all states.  If
    the states are mutually different, such an assumption will no
    longer hold.  In this case, a clustering algorithm is needed to
    group similar states into clusters before applying the proposed
    C-BMF algorithm."

    Knob states are ordered (they come from a monotone physical
    control), so clusters are contiguous ranges of codes.  States are
    profiled by a cheap per-state matched filter; the cluster
    boundaries are placed at the largest adjacent-state angular
    profile jumps.
    C-BMF then runs independently inside each cluster and the per-state
    coefficient rows are reassembled. *)

open Cbmf_linalg
open Cbmf_model

type assignment = {
  clusters : int array array;
      (** contiguous state-index groups, ascending, covering 0..K−1 *)
  gaps : float array;
      (** adjacent-state profile distances (length K−1), for diagnostics *)
}

val profile_states : Dataset.t -> Mat.t
(** K×M per-state matched-filter profiles (B_kᵀ y_k / N on standardized
    data) — cheap, prior-free and robust at small N. *)

val segment : Dataset.t -> n_clusters:int -> assignment
(** Cut the ordered states at the [n_clusters − 1] largest adjacent
    profile gaps. *)

val auto_segment : ?threshold:float -> Dataset.t -> assignment
(** Data-driven cluster count: cut wherever the adjacent gap exceeds
    [threshold] (default 5.0) times the median gap. *)

val fit_clustered :
  ?config:Cbmf.config -> Dataset.t -> assignment -> Cbmf.model array * Mat.t
(** Run C-BMF independently per cluster; returns the per-cluster models
    and the reassembled K×M coefficient matrix (rows in original state
    order). *)

val test_error : coeffs:Mat.t -> Dataset.t -> float
(** Pooled relative RMS of reassembled coefficients on a dataset. *)
