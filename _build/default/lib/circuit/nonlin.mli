(** Weakly-nonlinear distortion estimates.

    Linear MNA cannot produce IIP3/P1dB, so these metrics come from the
    classic power-series analysis of the dominant transconductor:
    [i = gm·v + gm2·v² + gm3·v³].  Series (inductive/resistive)
    degeneration improves IM3 by the loop-gain factor; the final
    figures are referred to the source through the measured linear
    transfer. *)

val effective_gm3 : gm:float -> gm2:float -> gm3:float -> zs_mag:float -> float
(** Third-order coefficient including the second-order interaction
    through the source impedance, [gm3 − 2·gm2²·Zs/(1 + gm·Zs)].  The
    interaction term prevents the unphysical IM3 null where the bare
    [gm3] crosses zero. *)

val iip3_vamp : gm:float -> gm3:float -> float
(** Input-referred third-order intercept, as the amplitude (V) of the
    control voltage: sqrt(4/3·|gm/gm3|).  Requires [gm > 0]; returns
    [infinity] for vanishing [gm3] (perfectly linear device). *)

val degeneration_factor : gm:float -> zs_mag:float -> float
(** Loop-gain improvement [(1 + gm·|Zs|)] applied to the IM3-referred
    amplitude for a series-degenerated stage. *)

val iip3_dbm :
  gm:float ->
  gm3:float ->
  zs_mag:float ->
  vgs_per_vsource:float ->
  rsource:float ->
  float
(** Source-referred IIP3 in dBm: the device-level intercept amplitude,
    improved by degeneration, divided by the linear transfer from
    source EMF to the device control voltage, converted to available
    power at [rsource]. *)

val p1db_from_iip3_dbm : float -> float
(** The classic 9.64 dB back-off. *)

val compression_limited_p1db_dbm :
  vlimit:float -> gain_v:float -> rsource:float -> float
(** Input power at which the output swing reaches [vlimit] (1 dB point
    of a hard-limiting stage, using the 0.89 empirical swing factor),
    for small-signal voltage gain [gain_v] from source EMF to output. *)
