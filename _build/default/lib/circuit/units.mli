(** Physical constants and RF unit conversions. *)

val boltzmann : float
(** k, J/K. *)

val temperature : float
(** Nominal analysis temperature, K (300). *)

val kt : float
(** k·T at the nominal temperature. *)

val four_kt : float

val thermal_voltage : float
(** kT/q at the nominal temperature (≈25.9 mV). *)

val electron_charge : float

val db_of_power_ratio : float -> float
(** 10·log10. *)

val db_of_voltage_ratio : float -> float
(** 20·log10 of the magnitude. *)

val power_ratio_of_db : float -> float

val voltage_ratio_of_db : float -> float

val dbm_of_watts : float -> float

val watts_of_dbm : float -> float

val dbm_of_vamp : float -> r:float -> float
(** Available/delivered power of a sine of amplitude [v] across [r],
    in dBm: P = v²/(2r). *)

val mega : float
val giga : float
val milli : float
val micro : float
val nano : float
val pico : float
val femto : float
