(** Statistical process-variation model.

    A circuit's variation space is a normalized vector [x] of iid
    standard-normal variables: first a fixed block of {e inter-die}
    (global) parameters shared by every device, then four {e local
    mismatch} parameters per device (threshold voltage, current factor,
    length, width), Pelgrom-scaled by device area, and finally optional
    extra groups (e.g. per-resistor mismatch).  The model maps
    normalized [x] into the physical deltas consumed by the device
    models. *)

open Cbmf_linalg

(** Inter-die (global) physical deltas. *)
type global = {
  dvth : float;  (** threshold shift, V *)
  dbeta_rel : float;  (** relative current-factor (µCox) shift *)
  dl_rel : float;  (** relative channel-length bias *)
  dw_rel : float;  (** relative width bias *)
  dcox_rel : float;  (** relative gate-capacitance shift *)
  drsheet_rel : float;  (** relative sheet-resistance shift *)
  dcpar_rel : float;  (** relative parasitic-capacitance shift *)
  dgamma_rel : float;  (** relative thermal-noise-coefficient shift *)
}

(** Per-device local mismatch (already in physical units). *)
type mismatch = {
  m_dvth : float;  (** V *)
  m_dbeta_rel : float;
  m_dl_rel : float;
  m_dw_rel : float;
}

(** Declared device: name and gate area (m²) for Pelgrom scaling. *)
type device_spec = { dev_name : string; dev_w : float; dev_l : float }

type t

val n_globals : int
(** Number of inter-die variables (8). *)

val params_per_device : int
(** Local variables per device (4). *)

val create :
  ?sigma_vth_global:float ->
  ?avt:float ->
  ?abeta:float ->
  ?n_resistor_vars:int ->
  device_spec array ->
  t
(** [create devices] builds the variation model.  [sigma_vth_global]
    (default 15 mV) is the inter-die Vth sigma; [avt] (default
    2.5 mV·µm) and [abeta] (default 1 %·µm) are Pelgrom coefficients;
    [n_resistor_vars] (default 0) appends that many standalone
    resistor-mismatch variables at the end of the vector. *)

val dim : t -> int
(** Total number of variation variables. *)

val n_devices : t -> int

val device_name : t -> int -> string

val device_index : t -> string -> int
(** Raises [Not_found] for unknown names. *)

val global_of : t -> Vec.t -> global
(** Decode the inter-die block of a normalized sample. *)

val mismatch_of : t -> Vec.t -> int -> mismatch
(** [mismatch_of p x d] decodes device [d]'s local block, with
    Pelgrom area scaling from its declared geometry. *)

val resistor_var : t -> Vec.t -> int -> float
(** [resistor_var p x i] is the [i]-th standalone resistor-mismatch
    variable as a {e relative} resistance delta (sigma 1 %). *)

val n_resistor_vars : t -> int

val sample : t -> Cbmf_prob.Rng.t -> Vec.t
(** Draw a normalized variation vector (iid standard normal). *)

val variable_name : t -> int -> string
(** Human-readable name of coordinate [i] ("g:dvth", "M1:dvth",
    "r:3", …). *)
