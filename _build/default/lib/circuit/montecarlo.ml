open Cbmf_linalg
open Cbmf_prob

type per_state = { xs : Mat.t; ys : Mat.t }

type t = {
  testbench : Testbench.t;
  states : per_state array;
  n_per_state : int;
}

let draw_points ~lhs rng ~n ~dim =
  if lhs then Lhs.gaussian rng ~n ~dim
  else Mat.init n dim (fun _ _ -> Rng.gaussian rng)

let run_state tb ~state (xs : Mat.t) =
  let n = xs.Mat.rows in
  let p = Testbench.n_pois tb in
  let ys = Mat.create n p in
  for i = 0 to n - 1 do
    let pois = tb.Testbench.evaluate ~state (Mat.row xs i) in
    assert (Array.length pois = p);
    Mat.set_row ys i pois
  done;
  { xs; ys }

let generate ?(shared_samples = false) ?(lhs = false) tb rng ~n_per_state =
  assert (n_per_state > 0);
  let dim = Testbench.dim tb in
  let k = Testbench.n_states tb in
  let n = n_per_state in
  (* One draw from the caller's stream keys the whole dataset: every
     per-state / per-sample RNG below derives from (base, index), so
     generation order — and hence the domain count — cannot change the
     result, while successive [generate] calls on one rng still see
     fresh data. *)
  let base = Rng.seed_of rng in
  let pool = Cbmf_parallel.Pool.default () in
  let draw_xs ~stream =
    if lhs then
      (* LHS strata are coupled along the sample axis, so the whole
         matrix is one stream. *)
      Lhs.gaussian (Rng.derive base ~index:stream) ~n ~dim
    else begin
      (* Row i of [xs] comes from its own stream (base, stream·n + i). *)
      let xs = Mat.create n dim in
      Cbmf_parallel.Pool.parallel_for pool ~n (fun i ->
          let r = Rng.derive base ~index:((stream * n) + i) in
          for j = 0 to dim - 1 do
            Mat.set xs i j (Rng.gaussian r)
          done);
      xs
    end
  in
  let xs_all =
    if shared_samples then begin
      let shared = draw_xs ~stream:0 in
      Array.init k (fun s -> if s = 0 then shared else Mat.copy shared)
    end
    else Array.init k (fun s -> draw_xs ~stream:s)
  in
  let p = Testbench.n_pois tb in
  let ys_all = Array.init k (fun _ -> Mat.create n p) in
  Cbmf_parallel.Pool.parallel_for pool ~n:(k * n) (fun idx ->
      let s = idx / n and i = idx mod n in
      let pois = tb.Testbench.evaluate ~state:s (Mat.row xs_all.(s) i) in
      assert (Array.length pois = p);
      Mat.set_row ys_all.(s) i pois);
  let states = Array.init k (fun s -> { xs = xs_all.(s); ys = ys_all.(s) }) in
  { testbench = tb; states; n_per_state }

let total_samples mc = Array.length mc.states * mc.n_per_state

let poi_column mc ~state ~poi = Mat.col mc.states.(state).ys poi

let truncate mc ~n =
  assert (n > 0 && n <= mc.n_per_state);
  let cut (s : per_state) =
    {
      xs = Mat.submatrix s.xs ~row0:0 ~col0:0 ~rows:n ~cols:s.xs.Mat.cols;
      ys = Mat.submatrix s.ys ~row0:0 ~col0:0 ~rows:n ~cols:s.ys.Mat.cols;
    }
  in
  { mc with states = Array.map cut mc.states; n_per_state = n }

let simulation_hours mc =
  Testbench.simulation_cost_hours mc.testbench ~n_samples:(total_samples mc)
