open Cbmf_linalg
open Cbmf_prob

type per_state = { xs : Mat.t; ys : Mat.t }

type t = {
  testbench : Testbench.t;
  states : per_state array;
  n_per_state : int;
}

let draw_points ~lhs rng ~n ~dim =
  if lhs then Lhs.gaussian rng ~n ~dim
  else Mat.init n dim (fun _ _ -> Rng.gaussian rng)

let run_state tb ~state (xs : Mat.t) =
  let n = xs.Mat.rows in
  let p = Testbench.n_pois tb in
  let ys = Mat.create n p in
  for i = 0 to n - 1 do
    let pois = tb.Testbench.evaluate ~state (Mat.row xs i) in
    assert (Array.length pois = p);
    Mat.set_row ys i pois
  done;
  { xs; ys }

let generate ?(shared_samples = false) ?(lhs = false) tb rng ~n_per_state =
  assert (n_per_state > 0);
  let dim = Testbench.dim tb in
  let k = Testbench.n_states tb in
  let shared =
    if shared_samples then Some (draw_points ~lhs rng ~n:n_per_state ~dim)
    else None
  in
  let states =
    Array.init k (fun state ->
        let xs =
          match shared with
          | Some m -> Mat.copy m
          | None -> draw_points ~lhs rng ~n:n_per_state ~dim
        in
        run_state tb ~state xs)
  in
  { testbench = tb; states; n_per_state }

let total_samples mc = Array.length mc.states * mc.n_per_state

let poi_column mc ~state ~poi = Mat.col mc.states.(state).ys poi

let truncate mc ~n =
  assert (n > 0 && n <= mc.n_per_state);
  let cut (s : per_state) =
    {
      xs = Mat.submatrix s.xs ~row0:0 ~col0:0 ~rows:n ~cols:s.xs.Mat.cols;
      ys = Mat.submatrix s.ys ~row0:0 ~col0:0 ~rows:n ~cols:s.ys.Mat.cols;
    }
  in
  { mc with states = Array.map cut mc.states; n_per_state = n }

let simulation_hours mc =
  Testbench.simulation_cost_hours mc.testbench ~n_samples:(total_samples mc)
