(** Monte-Carlo sample generation over a testbench.

    Produces the raw per-state sample sets the modeling flow consumes:
    an N×dim matrix of variation points and an N×P matrix of PoI
    values for every state.  Samples are drawn independently per state
    (as in the paper's transistor-level Monte Carlo), with an optional
    shared-sample mode and optional Latin-hypercube stratification. *)

open Cbmf_linalg

type per_state = {
  xs : Mat.t;  (** N × dim variation samples *)
  ys : Mat.t;  (** N × n_pois performance values *)
}

type t = {
  testbench : Testbench.t;
  states : per_state array;
  n_per_state : int;
}

val generate :
  ?shared_samples:bool ->
  ?lhs:bool ->
  Testbench.t ->
  Cbmf_prob.Rng.t ->
  n_per_state:int ->
  t
(** [generate tb rng ~n_per_state] runs [n_per_state] samples for each
    state.  [shared_samples] (default false) reuses the same variation
    points across states; [lhs] (default false) stratifies the draw. *)

val total_samples : t -> int
(** Number of simulated (state, sample) pairs — the unit of the cost
    model. *)

val poi_column : t -> state:int -> poi:int -> Vec.t
(** Response vector y_k for one PoI. *)

val truncate : t -> n:int -> t
(** First [n] samples of every state — lets one generation serve a
    whole sample-size sweep without re-simulating. *)

val simulation_hours : t -> float
