let boltzmann = 1.380649e-23

let temperature = 300.0

let kt = boltzmann *. temperature

let four_kt = 4.0 *. kt

let electron_charge = 1.602176634e-19

let thermal_voltage = kt /. electron_charge

let db_of_power_ratio r =
  assert (r > 0.0);
  10.0 *. log10 r

let db_of_voltage_ratio r =
  assert (r > 0.0);
  20.0 *. log10 r

let power_ratio_of_db db = 10.0 ** (db /. 10.0)

let voltage_ratio_of_db db = 10.0 ** (db /. 20.0)

let dbm_of_watts w =
  assert (w > 0.0);
  10.0 *. log10 (w /. 1e-3)

let watts_of_dbm dbm = 1e-3 *. (10.0 ** (dbm /. 10.0))

let dbm_of_vamp v ~r =
  assert (r > 0.0);
  dbm_of_watts (v *. v /. (2.0 *. r))

let mega = 1e6
let giga = 1e9
let milli = 1e-3
let micro = 1e-6
let nano = 1e-9
let pico = 1e-12
let femto = 1e-15
