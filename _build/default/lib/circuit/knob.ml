type t = { code : int; value : float }

let sweep ~n_states ~lo ~hi =
  assert (n_states >= 2);
  let step = (hi -. lo) /. float_of_int (n_states - 1) in
  Array.init n_states (fun i ->
      { code = i; value = lo +. (step *. float_of_int i) })

let geometric_sweep ~n_states ~lo ~hi =
  assert (n_states >= 2 && lo > 0.0 && hi > lo);
  let ratio = (hi /. lo) ** (1.0 /. float_of_int (n_states - 1)) in
  Array.init n_states (fun i ->
      { code = i; value = lo *. (ratio ** float_of_int i) })

let value knobs k = knobs.(k).value

let n_states = Array.length
