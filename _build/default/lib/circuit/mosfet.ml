type params = {
  vth0 : float;
  kp : float;
  n_slope : float;
  theta : float;
  lambda_ch : float;
  cox_area : float;
  cov_width : float;
  gamma_noise : float;
}

let nmos_32nm =
  {
    vth0 = 0.35;
    kp = 450e-6;
    n_slope = 1.35;
    theta = 0.9;
    lambda_ch = 0.15;
    cox_area = 0.02;
    cov_width = 0.3e-9;
    gamma_noise = 1.1;
  }

type geometry = { w : float; l : float }

type op_point = {
  id : float;
  vgs : float;
  vov : float;
  gm : float;
  gm2 : float;
  gm3 : float;
  gds : float;
  cgs : float;
  cgd : float;
  gamma : float;
}

type instance = {
  p : params;
  w_eff : float;
  l_eff : float;
  vth : float;
  beta : float; (* kp_eff · w_eff / l_eff *)
  cox_eff : float;
  gamma_eff : float;
}

let zero_global =
  {
    Process.dvth = 0.0;
    dbeta_rel = 0.0;
    dl_rel = 0.0;
    dw_rel = 0.0;
    dcox_rel = 0.0;
    drsheet_rel = 0.0;
    dcpar_rel = 0.0;
    dgamma_rel = 0.0;
  }

let zero_mismatch =
  { Process.m_dvth = 0.0; m_dbeta_rel = 0.0; m_dl_rel = 0.0; m_dw_rel = 0.0 }

let instantiate p (g : geometry) (gl : Process.global) (mm : Process.mismatch)
    =
  assert (g.w > 0.0 && g.l > 0.0);
  let w_eff = g.w *. (1.0 +. gl.Process.dw_rel +. mm.Process.m_dw_rel) in
  let l_eff = g.l *. (1.0 +. gl.Process.dl_rel +. mm.Process.m_dl_rel) in
  let vth = p.vth0 +. gl.Process.dvth +. mm.Process.m_dvth in
  let kp_eff =
    p.kp *. (1.0 +. gl.Process.dbeta_rel +. mm.Process.m_dbeta_rel)
  in
  {
    p;
    w_eff;
    l_eff;
    vth;
    beta = kp_eff *. w_eff /. l_eff;
    cox_eff = p.cox_area *. (1.0 +. gl.Process.dcox_rel);
    gamma_eff = p.gamma_noise *. (1.0 +. gl.Process.dgamma_rel);
  }

let nominal p g = instantiate p g zero_global zero_mismatch

let effective_vth inst = inst.vth

let effective_beta inst = inst.beta

let ut = Units.thermal_voltage

(* Numerically-safe softplus. *)
let softplus x = if x > 40.0 then x else log1p (exp x)

let sigmoid x =
  if x > 40.0 then 1.0
  else if x < -40.0 then exp x
  else 1.0 /. (1.0 +. exp (-.x))

let overdrive inst ~vgs =
  let a = 2.0 *. inst.p.n_slope *. ut in
  a *. softplus ((vgs -. inst.vth) /. a)

let drain_current inst ~vgs =
  let vov = overdrive inst ~vgs in
  0.5 *. inst.beta *. vov *. vov /. (1.0 +. (inst.p.theta *. vov))

let transconductance inst ~vgs =
  let a = 2.0 *. inst.p.n_slope *. ut in
  let vov = overdrive inst ~vgs in
  let dvov = sigmoid ((vgs -. inst.vth) /. a) in
  let den = 1.0 +. (inst.p.theta *. vov) in
  (* d/dvov of ½β·vov²/(1+θ·vov), times dvov/dvgs. *)
  0.5 *. inst.beta
  *. (vov *. (2.0 +. (inst.p.theta *. vov)) /. (den *. den))
  *. dvov

let op_at_vgs inst ~vgs =
  let id = drain_current inst ~vgs in
  let gm = transconductance inst ~vgs in
  (* gm2/gm3 by central differences on the analytic gm: h = 1 mV keeps
     truncation and roundoff balanced for these magnitudes. *)
  let h = 1e-3 in
  let gm_p = transconductance inst ~vgs:(vgs +. h) in
  let gm_m = transconductance inst ~vgs:(vgs -. h) in
  let gm2 = (gm_p -. gm_m) /. (2.0 *. h) in
  let gm3 = (gm_p -. (2.0 *. gm) +. gm_m) /. (h *. h) in
  let vov = overdrive inst ~vgs in
  let cgs =
    ((2.0 /. 3.0) *. inst.cox_eff *. inst.w_eff *. inst.l_eff)
    +. (inst.p.cov_width *. inst.w_eff)
  in
  let cgd = inst.p.cov_width *. inst.w_eff in
  {
    id;
    vgs;
    vov;
    gm;
    gm2;
    gm3;
    gds = (inst.p.lambda_ch *. id) +. 1e-9;
    cgs;
    cgd;
    gamma = inst.gamma_eff;
  }

let op_at_current inst ~id =
  assert (id > 0.0);
  (* Newton on vgs, seeded by the strong-inversion estimate. *)
  let guess = inst.vth +. sqrt (2.0 *. id /. inst.beta) in
  let rec go vgs iter =
    let f = drain_current inst ~vgs -. id in
    if abs_float f <= 1e-12 *. id || iter >= 80 then vgs
    else begin
      let gm = transconductance inst ~vgs in
      let step = f /. Float.max gm 1e-12 in
      (* Damp big steps to stay within the model's sane region. *)
      let step = Float.max (-0.2) (Float.min 0.2 step) in
      go (vgs -. step) (iter + 1)
    end
  in
  let vgs = go guess 0 in
  op_at_vgs inst ~vgs

let thermal_noise_psd (op : op_point) = Units.four_kt *. op.gamma *. op.gm

(* Flicker coefficient: representative 32 nm value. *)
let kf = 1e-25

let flicker_noise_psd inst (op : op_point) ~freq =
  assert (freq > 0.0);
  let cox_wl = inst.cox_eff *. inst.w_eff *. inst.l_eff in
  kf *. op.gm *. op.gm /. (Float.max cox_wl 1e-20 *. freq)
