(** Tuning-knob configurations ("states").

    A tunable circuit exposes [K] discrete knob codes; each maps to a
    physical control value (bias current, load resistance, …).  State
    indices are 0-based internally and 1-based in reports, matching the
    paper's k = 1…K. *)

type t = { code : int; value : float }

val sweep : n_states:int -> lo:float -> hi:float -> t array
(** Linear mapping of codes [0 … n_states−1] onto [lo, hi]
    (both endpoints included). *)

val geometric_sweep : n_states:int -> lo:float -> hi:float -> t array
(** Logarithmic spacing — natural for bias currents. *)

val value : t array -> int -> float

val n_states : t array -> int
