lib/circuit/montecarlo.mli: Cbmf_linalg Cbmf_prob Mat Testbench Vec
