lib/circuit/testbench.mli: Cbmf_linalg Knob Process Vec
