lib/circuit/noise.ml: Complex List Mna Mosfet Units
