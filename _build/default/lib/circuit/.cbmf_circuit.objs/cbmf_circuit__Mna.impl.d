lib/circuit/mna.ml: Array Cbmf_linalg Clu Cmat Complex Float List
