lib/circuit/montecarlo.ml: Array Cbmf_linalg Cbmf_parallel Cbmf_prob Lhs Mat Rng Testbench
