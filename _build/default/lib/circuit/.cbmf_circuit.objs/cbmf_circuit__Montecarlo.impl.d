lib/circuit/montecarlo.ml: Array Cbmf_linalg Cbmf_prob Lhs Mat Rng Testbench
