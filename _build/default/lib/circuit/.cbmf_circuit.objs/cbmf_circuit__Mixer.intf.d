lib/circuit/mixer.mli: Cbmf_linalg Testbench
