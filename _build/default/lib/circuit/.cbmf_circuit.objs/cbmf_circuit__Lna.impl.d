lib/circuit/lna.ml: Array Cbmf_linalg Complex Float Knob Mna Mosfet Noise Nonlin Printf Process Testbench Units Vec
