lib/circuit/mosfet.mli: Process
