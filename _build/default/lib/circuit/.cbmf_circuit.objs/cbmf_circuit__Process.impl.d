lib/circuit/process.ml: Array Cbmf_linalg Cbmf_prob Float Printf Rng String Vec
