lib/circuit/nonlin.mli:
