lib/circuit/units.ml:
