lib/circuit/nonlin.ml: Units
