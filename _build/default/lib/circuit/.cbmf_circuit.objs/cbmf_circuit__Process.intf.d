lib/circuit/process.mli: Cbmf_linalg Cbmf_prob Vec
