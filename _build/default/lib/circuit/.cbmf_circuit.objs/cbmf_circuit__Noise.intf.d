lib/circuit/noise.mli: Mna Mosfet
