lib/circuit/mna.mli: Complex
