lib/circuit/lna.mli: Cbmf_linalg Testbench
