lib/circuit/testbench.ml: Array Cbmf_linalg Knob Process String Vec
