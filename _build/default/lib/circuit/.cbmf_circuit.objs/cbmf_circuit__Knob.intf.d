lib/circuit/knob.mli:
