lib/circuit/units.mli:
