lib/circuit/knob.ml: Array
