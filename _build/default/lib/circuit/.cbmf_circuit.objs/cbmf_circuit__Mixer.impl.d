lib/circuit/mixer.ml: Array Cbmf_linalg Float Knob Mosfet Nonlin Printf Process Testbench Units Vec
