open Cbmf_linalg
open Cbmf_prob

type global = {
  dvth : float;
  dbeta_rel : float;
  dl_rel : float;
  dw_rel : float;
  dcox_rel : float;
  drsheet_rel : float;
  dcpar_rel : float;
  dgamma_rel : float;
}

type mismatch = {
  m_dvth : float;
  m_dbeta_rel : float;
  m_dl_rel : float;
  m_dw_rel : float;
}

type device_spec = { dev_name : string; dev_w : float; dev_l : float }

type t = {
  devices : device_spec array;
  sigma_vth_global : float;
  avt : float; (* V·m: Pelgrom Vth coefficient *)
  abeta : float; (* relative·m: Pelgrom beta coefficient *)
  n_res : int;
  (* Per-device precomputed mismatch sigmas. *)
  sigma_vth_local : float array;
  sigma_beta_local : float array;
}

let n_globals = 8

let params_per_device = 4

(* Inter-die sigmas for the non-Vth globals (relative). *)
let sigma_beta_g = 0.03
let sigma_l_g = 0.02
let sigma_w_g = 0.01
let sigma_cox_g = 0.02
let sigma_rsheet_g = 0.05
let sigma_cpar_g = 0.03
let sigma_gamma_g = 0.05

(* Local geometry mismatch sigmas (relative, before area scaling they
   are given at a 1 µm² reference area). *)
let sigma_l_local_ref = 0.01
let sigma_w_local_ref = 0.005
let sigma_res_local = 0.01

let create ?(sigma_vth_global = 0.015) ?(avt = 2.5e-3 *. 1e-6)
    ?(abeta = 0.01 *. 1e-6) ?(n_resistor_vars = 0) devices =
  assert (Array.length devices > 0);
  let area d = Float.max (d.dev_w *. d.dev_l) 1e-18 in
  let sigma_vth_local = Array.map (fun d -> avt /. sqrt (area d)) devices in
  let sigma_beta_local = Array.map (fun d -> abeta /. sqrt (area d)) devices in
  {
    devices;
    sigma_vth_global;
    avt;
    abeta;
    n_res = n_resistor_vars;
    sigma_vth_local;
    sigma_beta_local;
  }

let n_devices p = Array.length p.devices

let dim p = n_globals + (params_per_device * n_devices p) + p.n_res

let device_name p d = p.devices.(d).dev_name

let device_index p name =
  let rec go i =
    if i >= Array.length p.devices then raise Not_found
    else if String.equal p.devices.(i).dev_name name then i
    else go (i + 1)
  in
  go 0

let global_of p (x : Vec.t) =
  assert (Array.length x >= dim p);
  {
    dvth = p.sigma_vth_global *. x.(0);
    dbeta_rel = sigma_beta_g *. x.(1);
    dl_rel = sigma_l_g *. x.(2);
    dw_rel = sigma_w_g *. x.(3);
    dcox_rel = sigma_cox_g *. x.(4);
    drsheet_rel = sigma_rsheet_g *. x.(5);
    dcpar_rel = sigma_cpar_g *. x.(6);
    dgamma_rel = sigma_gamma_g *. x.(7);
  }

let mismatch_of p (x : Vec.t) d =
  assert (d >= 0 && d < n_devices p);
  assert (Array.length x >= dim p);
  let base = n_globals + (params_per_device * d) in
  let area_scale =
    (* Geometry mismatch scales like 1/sqrt(area) relative to 1 µm². *)
    1e-6 /. sqrt (Float.max (p.devices.(d).dev_w *. p.devices.(d).dev_l) 1e-18)
  in
  {
    m_dvth = p.sigma_vth_local.(d) *. x.(base);
    m_dbeta_rel = p.sigma_beta_local.(d) *. x.(base + 1);
    m_dl_rel = sigma_l_local_ref *. area_scale *. x.(base + 2);
    m_dw_rel = sigma_w_local_ref *. area_scale *. x.(base + 3);
  }

let n_resistor_vars p = p.n_res

let resistor_var p (x : Vec.t) i =
  assert (i >= 0 && i < p.n_res);
  sigma_res_local *. x.(n_globals + (params_per_device * n_devices p) + i)

let sample p r = Rng.gaussian_vector r (dim p)

let global_names =
  [| "g:dvth"; "g:dbeta"; "g:dl"; "g:dw"; "g:dcox"; "g:drsheet"; "g:dcpar";
     "g:dgamma" |]

let variable_name p i =
  assert (i >= 0 && i < dim p);
  if i < n_globals then global_names.(i)
  else begin
    let j = i - n_globals in
    let d = j / params_per_device in
    if d < n_devices p then begin
      let field =
        match j mod params_per_device with
        | 0 -> "dvth"
        | 1 -> "dbeta"
        | 2 -> "dl"
        | _ -> "dw"
      in
      Printf.sprintf "%s:%s" p.devices.(d).dev_name field
    end
    else
      Printf.sprintf "r:%d" (i - n_globals - (params_per_device * n_devices p))
  end
