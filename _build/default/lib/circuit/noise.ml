type source = { label : string; n_pos : Mna.node; n_neg : Mna.node; psd : float }

let resistor_source ~label a b ~r =
  assert (r > 0.0);
  { label; n_pos = a; n_neg = b; psd = Units.four_kt /. r }

let channel_source ~label ~drain ~source (op : Mosfet.op_point) =
  { label; n_pos = drain; n_neg = source; psd = Mosfet.thermal_noise_psd op }

type report = { total_psd : float; contributions : (string * float) list }

let transfer_mag_sq analysis ~out_pos ~out_neg src =
  let sol = Mna.solve_injection analysis ~pos:src.n_pos ~neg:src.n_neg in
  let h = Mna.differential sol out_pos out_neg in
  (* Complex.norm2 is |h|² already. *)
  Complex.norm2 h

let output_noise analysis ~out_pos ~out_neg sources =
  let contributions =
    List.map
      (fun src ->
        (src.label, src.psd *. transfer_mag_sq analysis ~out_pos ~out_neg src))
      sources
  in
  let total_psd = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 contributions in
  let contributions =
    List.sort (fun (_, a) (_, b) -> compare b a) contributions
  in
  { total_psd; contributions }

let noise_figure_db analysis ~out_pos ~out_neg ~input_source others =
  let from_input =
    input_source.psd *. transfer_mag_sq analysis ~out_pos ~out_neg input_source
  in
  assert (from_input > 0.0);
  let { total_psd; _ } =
    output_noise analysis ~out_pos ~out_neg (input_source :: others)
  in
  10.0 *. log10 (total_psd /. from_input)
