(** Small-signal noise analysis on top of {!Mna}.

    Every noise generator is an equivalent current source (pair of
    nodes) with a one-sided PSD in A²/Hz.  Output noise accumulates the
    squared magnitude of each source's transfer to the designated
    output, reusing the single matrix factorization. *)

type source = {
  label : string;
  n_pos : Mna.node;
  n_neg : Mna.node;
  psd : float;  (** A²/Hz *)
}

val resistor_source :
  label:string -> Mna.node -> Mna.node -> r:float -> source
(** Thermal noise of a resistor: PSD 4kT/R. *)

val channel_source :
  label:string -> drain:Mna.node -> source:Mna.node -> Mosfet.op_point ->
  source
(** MOSFET channel thermal noise: PSD 4kT·γ·gm between drain and
    source. *)

type report = {
  total_psd : float;  (** total output noise voltage PSD, V²/Hz *)
  contributions : (string * float) list;  (** per-source, descending *)
}

val output_noise :
  Mna.analysis -> out_pos:Mna.node -> out_neg:Mna.node -> source list ->
  report

val noise_figure_db :
  Mna.analysis ->
  out_pos:Mna.node ->
  out_neg:Mna.node ->
  input_source:source ->
  source list ->
  float
(** [noise_figure_db a ~out_pos ~out_neg ~input_source others] is
    10·log10(F) with F = (noise from input source + others) / (noise
    from input source alone) at the differential output.  The input
    source (the Norton equivalent of the driving resistance) must not
    be repeated in [others]. *)
