let effective_gm3 ~gm ~gm2 ~gm3 ~zs_mag =
  assert (zs_mag >= 0.0);
  gm3 -. (2.0 *. gm2 *. gm2 *. zs_mag /. (1.0 +. (gm *. zs_mag)))

let iip3_vamp ~gm ~gm3 =
  assert (gm > 0.0);
  if abs_float gm3 < 1e-30 then infinity
  else sqrt (4.0 /. 3.0 *. (gm /. abs_float gm3))

let degeneration_factor ~gm ~zs_mag =
  assert (zs_mag >= 0.0);
  1.0 +. (gm *. zs_mag)

let iip3_dbm ~gm ~gm3 ~zs_mag ~vgs_per_vsource ~rsource =
  assert (vgs_per_vsource > 0.0);
  let a_dev = iip3_vamp ~gm ~gm3 in
  let a_dev = a_dev *. degeneration_factor ~gm ~zs_mag in
  let a_src = a_dev /. vgs_per_vsource in
  (* Available power from a source with EMF amplitude a: a²/(8·Rs). *)
  Units.dbm_of_watts (a_src *. a_src /. (8.0 *. rsource))

let p1db_from_iip3_dbm iip3 = iip3 -. 9.6383

let compression_limited_p1db_dbm ~vlimit ~gain_v ~rsource =
  assert (vlimit > 0.0 && gain_v > 0.0);
  (* At the 1 dB point the fundamental has dropped by 0.89×; the input
     amplitude then satisfies 0.89·gain·a = vlimit. *)
  let a = vlimit /. (0.89 *. gain_v) in
  Units.dbm_of_watts (a *. a /. (8.0 *. rsource))
