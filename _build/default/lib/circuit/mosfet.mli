(** Compact MOSFET model for behavioral RF simulation.

    The large-signal current uses a softplus-smoothed overdrive with
    first-order mobility reduction:

    {v
      vov(vgs)  = 2·n·Ut · ln(1 + exp((vgs − vth) / (2·n·Ut)))
      id(vgs)   = ½·β · vov² / (1 + θ·vov)
    v}

    which is smooth from weak to strong inversion, has an analytic gm,
    and a physically-shaped gm3 (sign change near moderate inversion —
    the mechanism behind bias-dependent IIP3 in real devices).  Process
    variations enter through [Process.global] and [Process.mismatch]. *)

type params = {
  vth0 : float;  (** nominal threshold, V *)
  kp : float;  (** µ₀·Cox process transconductance, A/V² *)
  n_slope : float;  (** subthreshold slope factor *)
  theta : float;  (** mobility-reduction coefficient, 1/V *)
  lambda_ch : float;  (** channel-length modulation, 1/V *)
  cox_area : float;  (** gate capacitance per area, F/m² *)
  cov_width : float;  (** overlap capacitance per width, F/m *)
  gamma_noise : float;  (** channel thermal-noise coefficient *)
}

val nmos_32nm : params
(** Representative 32 nm SOI NMOS parameter set. *)

type geometry = { w : float; l : float }

(** Small-signal operating point. *)
type op_point = {
  id : float;  (** drain current, A *)
  vgs : float;
  vov : float;  (** smoothed overdrive, V *)
  gm : float;  (** S *)
  gm2 : float;  (** A/V² *)
  gm3 : float;  (** A/V³ *)
  gds : float;  (** S *)
  cgs : float;  (** F *)
  cgd : float;  (** F *)
  gamma : float;  (** effective noise coefficient *)
}

type instance
(** A device with its geometry and the process deltas applied. *)

val instantiate :
  params -> geometry -> Process.global -> Process.mismatch -> instance

val nominal : params -> geometry -> instance
(** Instance with all variations zero. *)

val effective_vth : instance -> float

val effective_beta : instance -> float

val drain_current : instance -> vgs:float -> float

val transconductance : instance -> vgs:float -> float
(** Analytic ∂id/∂vgs. *)

val op_at_vgs : instance -> vgs:float -> op_point

val op_at_current : instance -> id:float -> op_point
(** Solve the bias point for a forced drain current (Newton with an
    analytic derivative; the current must be positive). *)

val thermal_noise_psd : op_point -> float
(** Channel thermal noise current PSD, A²/Hz: 4kT·γ·gm. *)

val flicker_noise_psd : instance -> op_point -> freq:float -> float
(** Flicker noise current PSD at [freq] (negligible at RF; exposed for
    completeness and tests). *)
