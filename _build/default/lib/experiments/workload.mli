(** Experiment workloads: a circuit testbench + basis dictionary +
    Monte-Carlo data, packaged for the modeling experiments.

    One Monte-Carlo generation at the maximum sample budget serves a
    whole sample-size sweep (smaller budgets are prefixes), exactly as
    one would reuse stored transistor-level simulations. *)

open Cbmf_prob
open Cbmf_circuit
open Cbmf_model

type t = {
  name : string;
  testbench : Testbench.t;
  dictionary : Cbmf_basis.Dictionary.t;
}

val lna : unit -> t
(** Paper §4.1: tunable LNA, 1264 variables, linear dictionary
    (M = 1265). *)

val mixer : unit -> t
(** Paper §4.2: tunable mixer, 1303 variables, linear dictionary
    (M = 1304). *)

type data = {
  workload : t;
  train_pool : Montecarlo.t;  (** max-budget training samples *)
  test : Montecarlo.t;  (** held-out testing samples *)
}

val generate :
  t -> seed:int -> n_train_max:int -> n_test_per_state:int -> data
(** Run the Monte-Carlo "simulations" once.  The paper uses 50 testing
    samples per state. *)

val train_dataset : data -> poi:int -> n_per_state:int -> Dataset.t
(** Design/response dataset for the first [n_per_state] training
    samples of every state. *)

val test_dataset : data -> poi:int -> Dataset.t

val poi_name : t -> int -> string
