lib/experiments/tables.ml: Array Cbmf_circuit Cbmf_core Cbmf_model Float Format Metrics Printf Somp String Sys Testbench Workload
