lib/experiments/tables.ml: Array Cbmf_circuit Cbmf_core Cbmf_model Cbmf_parallel Float Format Metrics Printf Somp String Testbench Unix Workload
