lib/experiments/ablation.ml: Array Cbmf_core Cbmf_model Format Metrics Somp String Sys Workload
