lib/experiments/tables.mli: Cbmf_core Format Workload
