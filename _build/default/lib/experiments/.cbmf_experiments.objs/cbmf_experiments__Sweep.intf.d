lib/experiments/sweep.mli: Cbmf_core Format Workload
