lib/experiments/sweep.ml: Array Cbmf_circuit Cbmf_core Cbmf_model Dataset Format List Metrics Somp Stdlib String Sys Workload
