lib/experiments/sweep.ml: Array Cbmf_circuit Cbmf_core Cbmf_model Cbmf_parallel Dataset Format List Metrics Somp Stdlib String Unix Workload
