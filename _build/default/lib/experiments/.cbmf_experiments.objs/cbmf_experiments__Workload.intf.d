lib/experiments/workload.mli: Cbmf_basis Cbmf_circuit Cbmf_model Cbmf_prob Dataset Montecarlo Testbench
