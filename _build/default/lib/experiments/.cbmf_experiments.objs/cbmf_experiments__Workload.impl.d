lib/experiments/workload.ml: Array Cbmf_basis Cbmf_circuit Cbmf_model Cbmf_prob Dataset Lna Mixer Montecarlo Rng Testbench
