(** Ablation studies on the design choices C-BMF stacks on top of
    S-OMP: magnitude correlation (R), EM refinement, and the r0
    initialization grid. *)

type entry = {
  label : string;
  error : float;  (** relative RMS on the testing set *)
  seconds : float;
}

type t = {
  workload_name : string;
  poi : string;
  n_per_state : int;
  entries : entry array;
}

val run : Workload.data -> poi:int -> n_per_state:int -> t
(** Compares: S-OMP (baseline), C-BMF full, C-BMF with R ≡ I (no
    magnitude correlation), C-BMF init-only (no EM), and C-BMF with a
    single-point r0 grid (no r0 cross-validation). *)

val pp : Format.formatter -> t -> unit
