(** Sample-size sweeps: the experiment behind Figures 2(b)–(d) and
    3(b)–(d) — modeling error vs number of training samples, S-OMP vs
    C-BMF, for every performance of interest. *)

type point = {
  n_per_state : int;
  n_total : int;
  somp_error : float;  (** relative RMS on the testing set *)
  somp_theta : int;
  somp_seconds : float;
  cbmf_error : float;
  cbmf_theta : int;
  cbmf_r0 : float;
  cbmf_seconds : float;
}

type series = {
  workload_name : string;
  poi : string;
  points : point array;
}

val run :
  ?cbmf_config:Cbmf_core.Cbmf.config ->
  ?somp_terms:int array ->
  Workload.data ->
  poi:int ->
  n_grid:int array ->
  series
(** Fit both methods at every budget in [n_grid] (samples per state)
    and score them on the held-out testing set. *)

val run_all :
  ?cbmf_config:Cbmf_core.Cbmf.config ->
  ?n_grid:int array ->
  Workload.data ->
  series array
(** One series per PoI; default grid {10, 15, 20, 25, 30, 35}. *)

val pp : Format.formatter -> series -> unit
(** Render as the text analogue of the paper's figure: one row per
    sample budget, columns for both methods. *)
