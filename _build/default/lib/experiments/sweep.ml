open Cbmf_model

type point = {
  n_per_state : int;
  n_total : int;
  somp_error : float;
  somp_theta : int;
  somp_seconds : float;
  cbmf_error : float;
  cbmf_theta : int;
  cbmf_r0 : float;
  cbmf_seconds : float;
}

type series = { workload_name : string; poi : string; points : point array }

let default_somp_terms = [| 5; 10; 15; 20; 25; 30 |]

let run ?(cbmf_config = Cbmf_core.Cbmf.default_config)
    ?(somp_terms = default_somp_terms) (data : Workload.data) ~poi ~n_grid =
  let test = Workload.test_dataset data ~poi in
  let k = data.Workload.train_pool.Cbmf_circuit.Montecarlo.n_per_state in
  (* Sample-budget points are independent fits: fan them out across the
     domain pool.  Each point only writes its own slot, so the series
     is identical to the sequential map. *)
  let pool = Cbmf_parallel.Pool.default () in
  let points =
    Cbmf_parallel.Pool.map_array ~chunk:1 pool
      (fun n ->
        assert (n <= k);
        let train = Workload.train_dataset data ~poi ~n_per_state:n in
        let terms = Array.of_list (List.filter (fun t -> t < n) (Array.to_list somp_terms)) in
        let terms = if Array.length terms = 0 then [| Stdlib.max 1 (n - 1) |] else terms in
        (* Wall clock, not Sys.time: CPU time pools across domains. *)
        let t0 = Unix.gettimeofday () in
        let somp, somp_theta = Somp.fit_cv train ~n_folds:4 ~candidate_terms:terms in
        let somp_seconds = Unix.gettimeofday () -. t0 in
        let somp_error =
          Metrics.coeffs_error_pooled ~coeffs:somp.Somp.coeffs test
        in
        let model = Cbmf_core.Cbmf.fit ~config:cbmf_config train in
        let cbmf_error = Cbmf_core.Cbmf.test_error model test in
        {
          n_per_state = n;
          n_total = n * train.Dataset.n_states;
          somp_error;
          somp_theta;
          somp_seconds;
          cbmf_error;
          cbmf_theta = model.Cbmf_core.Cbmf.info.Cbmf_core.Cbmf.theta;
          cbmf_r0 = model.Cbmf_core.Cbmf.info.Cbmf_core.Cbmf.r0;
          cbmf_seconds = model.Cbmf_core.Cbmf.info.Cbmf_core.Cbmf.fit_seconds;
        })
      n_grid
  in
  {
    workload_name = data.Workload.workload.Workload.name;
    poi = Workload.poi_name data.Workload.workload poi;
    points;
  }

let run_all ?cbmf_config ?(n_grid = [| 10; 15; 20; 25; 30; 35 |]) data =
  let n_pois =
    Cbmf_circuit.Testbench.n_pois
      data.Workload.workload.Workload.testbench
  in
  Array.init n_pois (fun poi -> run ?cbmf_config data ~poi ~n_grid)

let pp ppf s =
  Format.fprintf ppf "@[<v 0>";
  Format.fprintf ppf "%s / %s: modeling error vs training samples@,"
    (String.uppercase_ascii s.workload_name)
    s.poi;
  Format.fprintf ppf "  %8s %8s | %10s %6s | %10s %6s %6s@," "N/state" "total"
    "S-OMP err" "theta" "C-BMF err" "theta" "r0";
  Array.iter
    (fun p ->
      Format.fprintf ppf "  %8d %8d | %9.3f%% %6d | %9.3f%% %6d %6.3f@,"
        p.n_per_state p.n_total
        (100.0 *. p.somp_error)
        p.somp_theta
        (100.0 *. p.cbmf_error)
        p.cbmf_theta p.cbmf_r0)
    s.points;
  Format.fprintf ppf "@]"
