(** The paper's Tables 1 and 2: error and cost comparison at the
    paper's sample budgets — S-OMP with 1120 training samples (35 per
    state) vs C-BMF with 480 (15 per state). *)

type row = {
  poi : string;
  somp_error : float;
  cbmf_error : float;
}

type t = {
  workload_name : string;
  somp_samples : int;  (** total *)
  cbmf_samples : int;
  rows : row array;
  somp_sim_hours : float;
  cbmf_sim_hours : float;
  somp_fit_seconds : float;  (** summed over PoIs, measured *)
  cbmf_fit_seconds : float;
  somp_overall_hours : float;
  cbmf_overall_hours : float;
  cost_reduction : float;  (** S-OMP overall / C-BMF overall *)
}

val run :
  ?cbmf_config:Cbmf_core.Cbmf.config ->
  ?somp_n_per_state:int ->
  ?cbmf_n_per_state:int ->
  Workload.data ->
  t
(** Defaults: 35 vs 15 samples per state, matching the paper. *)

val pp : Format.formatter -> t -> unit

val accuracy_preserved : t -> bool
(** True when C-BMF's error is within 10 % (relative) — or 0.05
    percentage points (absolute), whichever is looser — of S-OMP's on
    every PoI: the paper's "without surrendering any accuracy". *)
