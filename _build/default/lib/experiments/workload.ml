open Cbmf_prob
open Cbmf_circuit
open Cbmf_model

type t = {
  name : string;
  testbench : Testbench.t;
  dictionary : Cbmf_basis.Dictionary.t;
}

let lna () =
  let testbench = Lna.create () in
  {
    name = "lna";
    testbench;
    dictionary = Cbmf_basis.Dictionary.linear (Testbench.dim testbench);
  }

let mixer () =
  let testbench = Mixer.create () in
  {
    name = "mixer";
    testbench;
    dictionary = Cbmf_basis.Dictionary.linear (Testbench.dim testbench);
  }

type data = {
  workload : t;
  train_pool : Montecarlo.t;
  test : Montecarlo.t;
}

let generate w ~seed ~n_train_max ~n_test_per_state =
  let rng = Rng.create seed in
  let train_pool = Montecarlo.generate w.testbench rng ~n_per_state:n_train_max in
  let test = Montecarlo.generate w.testbench rng ~n_per_state:n_test_per_state in
  { workload = w; train_pool; test }

let to_dataset w (mc : Montecarlo.t) ~poi =
  let k = Testbench.n_states w.testbench in
  let design =
    Array.init k (fun s ->
        Cbmf_basis.Dictionary.design_matrix w.dictionary
          mc.Montecarlo.states.(s).Montecarlo.xs)
  in
  let response =
    Array.init k (fun s -> Montecarlo.poi_column mc ~state:s ~poi)
  in
  Dataset.create ~design ~response

let train_dataset d ~poi ~n_per_state =
  to_dataset d.workload (Montecarlo.truncate d.train_pool ~n:n_per_state) ~poi

let test_dataset d ~poi = to_dataset d.workload d.test ~poi

let poi_name w i = w.testbench.Testbench.poi_names.(i)
