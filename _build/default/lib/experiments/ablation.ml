open Cbmf_model

type entry = { label : string; error : float; seconds : float }

type t = {
  workload_name : string;
  poi : string;
  n_per_state : int;
  entries : entry array;
}

let run (data : Workload.data) ~poi ~n_per_state =
  let test = Workload.test_dataset data ~poi in
  let train = Workload.train_dataset data ~poi ~n_per_state in
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  let cbmf label config =
    let model, seconds = time (fun () -> Cbmf_core.Cbmf.fit ~config train) in
    { label; error = Cbmf_core.Cbmf.test_error model test; seconds }
  in
  let somp_entry =
    let (r, _), seconds =
      time (fun () ->
          Somp.fit_cv train ~n_folds:4 ~candidate_terms:[| 5; 10; 15; 20; 25 |])
    in
    {
      label = "S-OMP";
      error = Metrics.coeffs_error_pooled ~coeffs:r.Somp.coeffs test;
      seconds;
    }
  in
  let open Cbmf_core.Cbmf in
  let single_r0 =
    {
      default_config with
      init = { Cbmf_core.Init.default_config with r0_grid = [| 0.9 |] };
    }
  in
  let entries =
    [| somp_entry;
       cbmf "C-BMF (full)" default_config;
       cbmf "C-BMF, R = I (no magnitude corr.)" independent_config;
       cbmf "C-BMF, init only (no EM)" init_only_config;
       cbmf "C-BMF, fixed r0 = 0.9 (no r0 CV)" single_r0 |]
  in
  {
    workload_name = data.Workload.workload.Workload.name;
    poi = Workload.poi_name data.Workload.workload poi;
    n_per_state;
    entries;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v 0>Ablation: %s / %s at N = %d samples/state@,"
    (String.uppercase_ascii t.workload_name)
    t.poi t.n_per_state;
  Array.iter
    (fun e ->
      Format.fprintf ppf "  %-38s %8.3f%%  (%.1f s)@," e.label
        (100.0 *. e.error) e.seconds)
    t.entries;
  Format.fprintf ppf "@]"
