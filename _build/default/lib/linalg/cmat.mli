(** Dense complex matrices and vectors for AC circuit analysis.

    Storage is split re/im flat arrays (structure-of-arrays), which keeps
    the LU hot loops free of boxed [Complex.t] values.  The API uses
    [Complex.t] at the boundaries. *)

type t = private {
  rows : int;
  cols : int;
  re : float array;
  im : float array;
}

type vec = { vre : float array; vim : float array }

(** {1 Vectors} *)

val vec_create : int -> vec

val vec_dim : vec -> int

val vec_get : vec -> int -> Complex.t

val vec_set : vec -> int -> Complex.t -> unit

val vec_add_at : vec -> int -> Complex.t -> unit
(** Accumulate into component [i]. *)

val vec_of_array : Complex.t array -> vec

val vec_to_array : vec -> Complex.t array

val vec_norm2 : vec -> float

val vec_approx_equal : ?tol:float -> vec -> vec -> bool

(** {1 Matrices} *)

val create : int -> int -> t

val init : int -> int -> (int -> int -> Complex.t) -> t

val identity : int -> t

val copy : t -> t

val dim : t -> int * int

val get : t -> int -> int -> Complex.t

val set : t -> int -> int -> Complex.t -> unit

val add_at : t -> int -> int -> Complex.t -> unit
(** Accumulate into element [(i, j)] — the MNA stamping primitive. *)

val mat_vec : t -> vec -> vec

val add : t -> t -> t

val scale : Complex.t -> t -> t

val max_abs : t -> float

val approx_equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
