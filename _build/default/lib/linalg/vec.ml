type t = float array

let create n = Array.make n 0.0

let init = Array.init

let make = Array.make

let copy = Array.copy

let of_list = Array.of_list

let basis n i =
  let v = Array.make n 0.0 in
  v.(i) <- 1.0;
  v

let linspace a b n =
  assert (n >= 2);
  let h = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (h *. float_of_int i))

let dim = Array.length

let get (v : t) i = v.(i)

let set (v : t) i x = v.(i) <- x

let fill v c = Array.fill v 0 (Array.length v) c

let blit ~src ~dst =
  assert (Array.length src = Array.length dst);
  Array.blit src 0 dst 0 (Array.length src)

let scale_inplace v a =
  for i = 0 to Array.length v - 1 do
    Array.unsafe_set v i (a *. Array.unsafe_get v i)
  done

let add_inplace x y =
  assert (Array.length x = Array.length y);
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set x i (Array.unsafe_get x i +. Array.unsafe_get y i)
  done

let sub_inplace x y =
  assert (Array.length x = Array.length y);
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set x i (Array.unsafe_get x i -. Array.unsafe_get y i)
  done

let axpy a x y =
  assert (Array.length x = Array.length y);
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set y i ((a *. Array.unsafe_get x i) +. Array.unsafe_get y i)
  done

let map2 f x y =
  assert (Array.length x = Array.length y);
  Array.init (Array.length x) (fun i ->
      f (Array.unsafe_get x i) (Array.unsafe_get y i))

let add x y = map2 ( +. ) x y

let sub x y = map2 ( -. ) x y

let scale a v = Array.map (fun x -> a *. x) v

let neg v = Array.map (fun x -> -.x) v

let map = Array.map

let mul x y = map2 ( *. ) x y

let dot x y =
  assert (Array.length x = Array.length y);
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (Array.unsafe_get x i *. Array.unsafe_get y i)
  done;
  !acc

let norm2_sq v = dot v v

let norm2 v = sqrt (norm2_sq v)

let norm1 v = Array.fold_left (fun acc x -> acc +. abs_float x) 0.0 v

let norm_inf v = Array.fold_left (fun acc x -> Float.max acc (abs_float x)) 0.0 v

let sum v = Array.fold_left ( +. ) 0.0 v

let mean v =
  assert (Array.length v > 0);
  sum v /. float_of_int (Array.length v)

let min v =
  assert (Array.length v > 0);
  Array.fold_left Float.min v.(0) v

let max v =
  assert (Array.length v > 0);
  Array.fold_left Float.max v.(0) v

let argmax v =
  assert (Array.length v > 0);
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if v.(i) > v.(!best) then best := i
  done;
  !best

let argmin v =
  assert (Array.length v > 0);
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if v.(i) < v.(!best) then best := i
  done;
  !best

let fold = Array.fold_left

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if abs_float (x.(i) -. y.(i)) > tol then ok := false
  done;
  !ok

let dist x y =
  assert (Array.length x = Array.length y);
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let pp ppf v =
  Format.fprintf ppf "@[<hov 1>[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ";@ ";
      Format.fprintf ppf "%.6g" x)
    v;
  Format.fprintf ppf "]@]"

let to_string v = Format.asprintf "%a" pp v
