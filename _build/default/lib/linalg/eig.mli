(** Symmetric eigendecomposition via the cyclic Jacobi method.

    Intended for the moderate sizes appearing in this code base
    (K×K correlation matrices, K ≈ 32), where Jacobi's simplicity and
    high relative accuracy outweigh its O(n³) sweeps. *)

type decomposition = {
  values : Vec.t;  (** Eigenvalues in descending order. *)
  vectors : Mat.t;  (** Column [j] is the eigenvector for [values.(j)]. *)
}

val symmetric : ?tol:float -> ?max_sweeps:int -> Mat.t -> decomposition
(** [symmetric a] diagonalizes symmetric [a].  [tol] (default [1e-12])
    is the off-diagonal Frobenius threshold relative to the matrix
    scale; [max_sweeps] defaults to 64. *)

val eigenvalues : Mat.t -> Vec.t
(** Just the (descending) eigenvalues. *)

val min_eigenvalue : Mat.t -> float

val condition_number : Mat.t -> float
(** λ_max / λ_min for symmetric PD input; [infinity] when λ_min ≤ 0. *)

val pd_projection : ?floor:float -> Mat.t -> Mat.t
(** Eigenvalue clipping: reconstruct with eigenvalues clamped to at
    least [floor · λ_max] (default floor [1e-12]).  Returns a symmetric
    positive definite matrix close to the input. *)
