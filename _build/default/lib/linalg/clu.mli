(** Complex LU factorization with partial pivoting — the kernel behind
    every MNA AC solve. *)

type t

exception Singular of int

val factorize : Cmat.t -> t
(** Requires a square matrix; raises {!Singular} on a zero pivot. *)

val dim : t -> int

val solve_vec : t -> Cmat.vec -> Cmat.vec
(** Solve [a x = b].  The factorization can be reused across many
    right-hand sides (one AC solve per excitation/noise source). *)

val solve : Cmat.t -> Cmat.vec -> Cmat.vec
(** One-shot [factorize] + [solve_vec]. *)
