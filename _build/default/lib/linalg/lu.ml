type t = {
  n : int;
  lu : float array; (* packed L (unit diagonal, below) and U (on/above) *)
  piv : int array; (* row permutation: solves use row piv.(i) of b *)
  sign : float; (* permutation parity, for det *)
}

exception Singular of int

let factorize (a : Mat.t) =
  assert (Mat.is_square a);
  let n = a.Mat.rows in
  let lu = Array.copy a.Mat.data in
  let piv = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  for j = 0 to n - 1 do
    (* Find pivot in column j at or below row j. *)
    let pivot_row = ref j in
    let pivot_mag = ref (abs_float lu.((j * n) + j)) in
    for i = j + 1 to n - 1 do
      let m = abs_float lu.((i * n) + j) in
      if m > !pivot_mag then begin
        pivot_mag := m;
        pivot_row := i
      end
    done;
    if !pivot_mag = 0.0 || Float.is_nan !pivot_mag then raise (Singular j);
    if !pivot_row <> j then begin
      (* Swap rows j and pivot_row. *)
      let p = !pivot_row in
      for k = 0 to n - 1 do
        let tmp = lu.((j * n) + k) in
        lu.((j * n) + k) <- lu.((p * n) + k);
        lu.((p * n) + k) <- tmp
      done;
      let tmp = piv.(j) in
      piv.(j) <- piv.(p);
      piv.(p) <- tmp;
      sign := -. !sign
    end;
    let d = lu.((j * n) + j) in
    for i = j + 1 to n - 1 do
      let m = lu.((i * n) + j) /. d in
      lu.((i * n) + j) <- m;
      if m <> 0.0 then
        for k = j + 1 to n - 1 do
          lu.((i * n) + k) <- lu.((i * n) + k) -. (m *. lu.((j * n) + k))
        done
    done
  done;
  { n; lu; piv; sign = !sign }

let dim f = f.n

let solve_vec f (b : Vec.t) =
  let n = f.n in
  assert (Array.length b = n);
  (* Apply permutation, then forward (unit L), then backward (U). *)
  let x = Array.init n (fun i -> b.(f.piv.(i))) in
  for i = 1 to n - 1 do
    let s = ref x.(i) in
    for k = 0 to i - 1 do
      s := !s -. (f.lu.((i * n) + k) *. x.(k))
    done;
    x.(i) <- !s
  done;
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (f.lu.((i * n) + k) *. x.(k))
    done;
    x.(i) <- !s /. f.lu.((i * n) + i)
  done;
  x

let solve_mat f (b : Mat.t) =
  assert (b.Mat.rows = f.n);
  let x = Mat.create f.n b.Mat.cols in
  for j = 0 to b.Mat.cols - 1 do
    Mat.set_col x j (solve_vec f (Mat.col b j))
  done;
  x

let inverse f = solve_mat f (Mat.identity f.n)

let det f =
  let acc = ref f.sign in
  for i = 0 to f.n - 1 do
    acc := !acc *. f.lu.((i * f.n) + i)
  done;
  !acc

let solve a b = solve_vec (factorize a) b

let rcond_estimate a =
  match factorize a with
  | exception Singular _ -> 0.0
  | f ->
      let norm_a = Mat.norm_inf a in
      let norm_inv = Mat.norm_inf (inverse f) in
      if norm_a = 0.0 || norm_inv = 0.0 then 0.0
      else 1.0 /. (norm_a *. norm_inv)
