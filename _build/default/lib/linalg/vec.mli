(** Dense real vectors backed by [float array].

    The representation is transparent so that hot loops elsewhere in the
    code base can index directly; all functions here treat the array as a
    mathematical vector and never retain their arguments unless
    documented. *)

type t = float array

(** {1 Construction} *)

val create : int -> t
(** [create n] is a fresh zero vector of length [n]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val make : int -> float -> t
(** [make n c] is a length-[n] vector filled with [c]. *)

val copy : t -> t
(** Fresh copy. *)

val of_list : float list -> t

val basis : int -> int -> t
(** [basis n i] is the [i]-th canonical basis vector of length [n]. *)

val linspace : float -> float -> int -> t
(** [linspace a b n] is [n] points evenly spaced from [a] to [b]
    inclusive. Requires [n >= 2]. *)

(** {1 Size and access} *)

val dim : t -> int

val get : t -> int -> float

val set : t -> int -> float -> unit

(** {1 In-place updates} *)

val fill : t -> float -> unit

val blit : src:t -> dst:t -> unit
(** Copy [src] into [dst]; dimensions must match. *)

val scale_inplace : t -> float -> unit

val add_inplace : t -> t -> unit
(** [add_inplace x y] sets [x <- x + y]. *)

val sub_inplace : t -> t -> unit
(** [sub_inplace x y] sets [x <- x - y]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] sets [y <- a*x + y]. *)

(** {1 Functional operations} *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val neg : t -> t

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t

val mul : t -> t -> t
(** Element-wise (Hadamard) product. *)

(** {1 Reductions} *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm2_sq : t -> float
(** Squared Euclidean norm. *)

val norm1 : t -> float

val norm_inf : t -> float

val sum : t -> float

val mean : t -> float

val min : t -> float

val max : t -> float

val argmax : t -> int
(** Index of the (first) maximum element. Requires a non-empty vector. *)

val argmin : t -> int

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

(** {1 Comparisons} *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Component-wise comparison with absolute tolerance [tol]
    (default [1e-9]); [false] if dimensions differ. *)

val dist : t -> t -> float
(** Euclidean distance. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
