(** LU factorization with partial pivoting for general square systems. *)

type t

exception Singular of int
(** Raised with the failing column when a zero (or NaN) pivot occurs. *)

val factorize : Mat.t -> t
(** [factorize a] computes [p a = l u] with partial pivoting.
    Raises {!Singular} if [a] is numerically singular. *)

val dim : t -> int

val solve_vec : t -> Vec.t -> Vec.t
(** Solve [a x = b]. *)

val solve_mat : t -> Mat.t -> Mat.t

val inverse : t -> Mat.t

val det : t -> float
(** Determinant of the original matrix (sign included). *)

val solve : Mat.t -> Vec.t -> Vec.t
(** One-shot [factorize] + [solve_vec]. *)

val rcond_estimate : Mat.t -> float
(** Crude reciprocal-condition estimate [1 / (‖a‖∞ ‖a⁻¹‖∞)];
    returns [0.] for singular input. *)
