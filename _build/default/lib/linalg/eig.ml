type decomposition = { values : Vec.t; vectors : Mat.t }

let off_diagonal_norm (a : Mat.t) =
  let n = a.Mat.rows in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let x = Mat.get a i j in
      acc := !acc +. (2.0 *. x *. x)
    done
  done;
  sqrt !acc

let symmetric ?(tol = 1e-12) ?(max_sweeps = 64) a0 =
  assert (Mat.is_square a0);
  let n = a0.Mat.rows in
  let a = Mat.copy a0 in
  Mat.symmetrize_inplace a;
  let v = Mat.identity n in
  let scale = Float.max 1e-300 (Mat.max_abs a) in
  let threshold = tol *. scale *. float_of_int n in
  let sweep = ref 0 in
  while off_diagonal_norm a > threshold && !sweep < max_sweeps do
    incr sweep;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Mat.get a p q in
        if abs_float apq > 1e-300 then begin
          let app = Mat.get a p p and aqq = Mat.get a q q in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let sign = if theta >= 0.0 then 1.0 else -1.0 in
            sign /. (abs_float theta +. sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          (* Rotate rows/columns p and q of [a]. *)
          for k = 0 to n - 1 do
            let akp = Mat.get a k p and akq = Mat.get a k q in
            Mat.set a k p ((c *. akp) -. (s *. akq));
            Mat.set a k q ((s *. akp) +. (c *. akq))
          done;
          for k = 0 to n - 1 do
            let apk = Mat.get a p k and aqk = Mat.get a q k in
            Mat.set a p k ((c *. apk) -. (s *. aqk));
            Mat.set a q k ((s *. apk) +. (c *. aqk))
          done;
          (* Accumulate the rotation into the eigenvector matrix. *)
          for k = 0 to n - 1 do
            let vkp = Mat.get v k p and vkq = Mat.get v k q in
            Mat.set v k p ((c *. vkp) -. (s *. vkq));
            Mat.set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done;
  (* Extract and sort descending. *)
  let order = Array.init n (fun i -> i) in
  let diag = Mat.diagonal a in
  Array.sort (fun i j -> compare diag.(j) diag.(i)) order;
  let values = Array.map (fun i -> diag.(i)) order in
  let vectors = Mat.init n n (fun i j -> Mat.get v i order.(j)) in
  { values; vectors }

let eigenvalues a = (symmetric a).values

let min_eigenvalue a =
  let ev = eigenvalues a in
  ev.(Array.length ev - 1)

let condition_number a =
  let ev = eigenvalues a in
  let lmax = ev.(0) and lmin = ev.(Array.length ev - 1) in
  if lmin <= 0.0 then infinity else lmax /. lmin

let pd_projection ?(floor = 1e-12) a =
  let { values; vectors } = symmetric a in
  let n = Array.length values in
  let lmax = Float.max values.(0) 1e-300 in
  let clipped = Array.map (fun l -> Float.max l (floor *. lmax)) values in
  (* Reconstruct v · diag(clipped) · vᵀ. *)
  let scaled = Mat.init n n (fun i j -> Mat.get vectors i j *. clipped.(j)) in
  let out = Mat.matmul_nt scaled vectors in
  Mat.symmetrize_inplace out;
  out
