(** Householder QR factorization and least-squares solves.

    For an m×n matrix with m ≥ n, [a = q r] with orthonormal [q]
    (m×n, thin) and upper-triangular [r] (n×n).  Least squares via QR is
    the numerically preferred path for the OMP/S-OMP baselines. *)

type t

exception Rank_deficient of int
(** Raised with the failing column index when a diagonal of [r] is
    (numerically) zero. *)

val factorize : Mat.t -> t
(** Requires [rows >= cols]. *)

val q : t -> Mat.t
(** Thin orthonormal factor (m×n), materialized. *)

val r : t -> Mat.t
(** Upper-triangular factor (n×n). *)

val solve_least_squares : t -> Vec.t -> Vec.t
(** [solve_least_squares f b] minimizes [‖a x − b‖₂]; raises
    {!Rank_deficient} when [a] lacks full column rank. *)

val lstsq : Mat.t -> Vec.t -> Vec.t
(** One-shot least-squares solve. *)

val residual_norm : Mat.t -> Vec.t -> Vec.t -> float
(** [residual_norm a x b] is [‖a x − b‖₂] — a convenience for tests. *)
