lib/linalg/mat.ml: Array Format Stdlib Vec
