lib/linalg/clu.mli: Cmat
