lib/linalg/clu.ml: Array Cmat Float
