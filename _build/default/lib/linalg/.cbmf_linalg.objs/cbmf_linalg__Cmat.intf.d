lib/linalg/cmat.mli: Complex Format
