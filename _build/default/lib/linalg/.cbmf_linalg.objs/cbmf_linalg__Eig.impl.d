lib/linalg/eig.ml: Array Float Mat Vec
