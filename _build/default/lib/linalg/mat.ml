type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let make rows cols c = { rows; cols; data = Array.make (rows * cols) c }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let diag v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.0)

let scalar n c = init n n (fun i j -> if i = j then c else 0.0)

let of_arrays rows_arr =
  let rows = Array.length rows_arr in
  assert (rows > 0);
  let cols = Array.length rows_arr.(0) in
  Array.iter (fun r -> assert (Array.length r = cols)) rows_arr;
  init rows cols (fun i j -> rows_arr.(i).(j))

let of_rows rows_list = of_arrays (Array.of_list rows_list)

let copy a = { a with data = Array.copy a.data }

let unsafe_of_flat ~rows ~cols data =
  assert (Array.length data = rows * cols);
  { rows; cols; data }

let dim a = (a.rows, a.cols)

let get a i j =
  assert (i >= 0 && i < a.rows && j >= 0 && j < a.cols);
  a.data.((i * a.cols) + j)

let set a i j x =
  assert (i >= 0 && i < a.rows && j >= 0 && j < a.cols);
  a.data.((i * a.cols) + j) <- x

let update a i j f = set a i j (f (get a i j))

let row a i =
  assert (i >= 0 && i < a.rows);
  Array.sub a.data (i * a.cols) a.cols

let col a j =
  assert (j >= 0 && j < a.cols);
  Array.init a.rows (fun i -> a.data.((i * a.cols) + j))

let set_row a i v =
  assert (Array.length v = a.cols);
  Array.blit v 0 a.data (i * a.cols) a.cols

let set_col a j v =
  assert (Array.length v = a.rows);
  for i = 0 to a.rows - 1 do
    a.data.((i * a.cols) + j) <- v.(i)
  done

let diagonal a =
  let n = Stdlib.min a.rows a.cols in
  Array.init n (fun i -> a.data.((i * a.cols) + i))

let submatrix a ~row0 ~col0 ~rows ~cols =
  assert (row0 >= 0 && col0 >= 0);
  assert (row0 + rows <= a.rows && col0 + cols <= a.cols);
  init rows cols (fun i j -> a.data.(((row0 + i) * a.cols) + (col0 + j)))

let select_cols a idx =
  Array.iter (fun j -> assert (j >= 0 && j < a.cols)) idx;
  init a.rows (Array.length idx) (fun i j -> a.data.((i * a.cols) + idx.(j)))

let transpose a = init a.cols a.rows (fun i j -> a.data.((j * a.cols) + i))

let add a b =
  assert (a.rows = b.rows && a.cols = b.cols);
  { a with data = Array.init (Array.length a.data) (fun i -> a.data.(i) +. b.data.(i)) }

let sub a b =
  assert (a.rows = b.rows && a.cols = b.cols);
  { a with data = Array.init (Array.length a.data) (fun i -> a.data.(i) -. b.data.(i)) }

let scale c a = { a with data = Array.map (fun x -> c *. x) a.data }

let add_inplace a b =
  assert (a.rows = b.rows && a.cols = b.cols);
  for i = 0 to Array.length a.data - 1 do
    Array.unsafe_set a.data i
      (Array.unsafe_get a.data i +. Array.unsafe_get b.data i)
  done

let scale_inplace a c =
  for i = 0 to Array.length a.data - 1 do
    Array.unsafe_set a.data i (c *. Array.unsafe_get a.data i)
  done

let add_scaled_inplace a c b =
  assert (a.rows = b.rows && a.cols = b.cols);
  for i = 0 to Array.length a.data - 1 do
    Array.unsafe_set a.data i
      (Array.unsafe_get a.data i +. (c *. Array.unsafe_get b.data i))
  done

let add_diag_inplace a c =
  let n = Stdlib.min a.rows a.cols in
  for i = 0 to n - 1 do
    a.data.((i * a.cols) + i) <- a.data.((i * a.cols) + i) +. c
  done

(* Triple-loop matmul in i-k-j order so the inner loop streams rows of
   both the accumulator and [b]: cache-friendly without blocking. *)
let matmul a b =
  assert (a.cols = b.rows);
  let m = a.rows and n = b.cols and p = a.cols in
  let c = Array.make (m * n) 0.0 in
  let ad = a.data and bd = b.data in
  for i = 0 to m - 1 do
    let arow = i * p in
    let crow = i * n in
    for k = 0 to p - 1 do
      let aik = Array.unsafe_get ad (arow + k) in
      if aik <> 0.0 then begin
        let brow = k * n in
        for j = 0 to n - 1 do
          Array.unsafe_set c (crow + j)
            (Array.unsafe_get c (crow + j)
            +. (aik *. Array.unsafe_get bd (brow + j)))
        done
      end
    done
  done;
  { rows = m; cols = n; data = c }

let matmul_nt a b =
  assert (a.cols = b.cols);
  let m = a.rows and n = b.rows and p = a.cols in
  let c = Array.make (m * n) 0.0 in
  let ad = a.data and bd = b.data in
  for i = 0 to m - 1 do
    let arow = i * p in
    for j = 0 to n - 1 do
      let brow = j * p in
      let acc = ref 0.0 in
      for k = 0 to p - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get ad (arow + k) *. Array.unsafe_get bd (brow + k))
      done;
      Array.unsafe_set c ((i * n) + j) !acc
    done
  done;
  { rows = m; cols = n; data = c }

let matmul_tn a b =
  assert (a.rows = b.rows);
  let m = a.cols and n = b.cols and p = a.rows in
  let c = Array.make (m * n) 0.0 in
  let ad = a.data and bd = b.data in
  for k = 0 to p - 1 do
    let arow = k * m in
    let brow = k * n in
    for i = 0 to m - 1 do
      let aki = Array.unsafe_get ad (arow + i) in
      if aki <> 0.0 then begin
        let crow = i * n in
        for j = 0 to n - 1 do
          Array.unsafe_set c (crow + j)
            (Array.unsafe_get c (crow + j)
            +. (aki *. Array.unsafe_get bd (brow + j)))
        done
      end
    done
  done;
  { rows = m; cols = n; data = c }

let mat_vec a x =
  assert (a.cols = Array.length x);
  let y = Array.make a.rows 0.0 in
  let ad = a.data in
  for i = 0 to a.rows - 1 do
    let arow = i * a.cols in
    let acc = ref 0.0 in
    for j = 0 to a.cols - 1 do
      acc := !acc +. (Array.unsafe_get ad (arow + j) *. Array.unsafe_get x j)
    done;
    y.(i) <- !acc
  done;
  y

let mat_tvec a x =
  assert (a.rows = Array.length x);
  let y = Array.make a.cols 0.0 in
  let ad = a.data in
  for i = 0 to a.rows - 1 do
    let arow = i * a.cols in
    let xi = Array.unsafe_get x i in
    if xi <> 0.0 then
      for j = 0 to a.cols - 1 do
        Array.unsafe_set y j
          (Array.unsafe_get y j +. (xi *. Array.unsafe_get ad (arow + j)))
      done
  done;
  y

let gram a = matmul_tn a a

let outer x y =
  init (Array.length x) (Array.length y) (fun i j -> x.(i) *. y.(j))

let add_outer_inplace a c x y =
  assert (a.rows = Array.length x && a.cols = Array.length y);
  for i = 0 to a.rows - 1 do
    let cxi = c *. x.(i) in
    if cxi <> 0.0 then begin
      let arow = i * a.cols in
      for j = 0 to a.cols - 1 do
        Array.unsafe_set a.data (arow + j)
          (Array.unsafe_get a.data (arow + j) +. (cxi *. Array.unsafe_get y j))
      done
    end
  done

let quadratic_form a x =
  assert (a.rows = a.cols && a.rows = Array.length x);
  Vec.dot x (mat_vec a x)

let trace a =
  let n = Stdlib.min a.rows a.cols in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. a.data.((i * a.cols) + i)
  done;
  !acc

let frobenius a = Vec.norm2 a.data

let norm_inf a =
  let worst = ref 0.0 in
  for i = 0 to a.rows - 1 do
    let acc = ref 0.0 in
    for j = 0 to a.cols - 1 do
      acc := !acc +. abs_float a.data.((i * a.cols) + j)
    done;
    if !acc > !worst then worst := !acc
  done;
  !worst

let max_abs a = Vec.norm_inf a.data

let is_square a = a.rows = a.cols

let is_symmetric ?(tol = 1e-9) a =
  is_square a
  &&
  let ok = ref true in
  for i = 0 to a.rows - 1 do
    for j = i + 1 to a.cols - 1 do
      if abs_float (get a i j -. get a j i) > tol then ok := false
    done
  done;
  !ok

let symmetrize_inplace a =
  assert (is_square a);
  for i = 0 to a.rows - 1 do
    for j = i + 1 to a.cols - 1 do
      let m = 0.5 *. (get a i j +. get a j i) in
      set a i j m;
      set a j i m
    done
  done

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Vec.approx_equal ~tol a.data b.data

let map f a = { a with data = Array.map f a.data }

let mapi f a = init a.rows a.cols (fun i j -> f i j (get a i j))

let pp ppf a =
  Format.fprintf ppf "@[<v 0>";
  for i = 0 to a.rows - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    Format.fprintf ppf "[";
    for j = 0 to a.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" (get a i j)
    done;
    Format.fprintf ppf "]"
  done;
  Format.fprintf ppf "@]"

let to_string a = Format.asprintf "%a" pp a
