type t = {
  n : int;
  lre : float array;
  lim : float array;
  piv : int array;
}

exception Singular of int

let mag2 re im = (re *. re) +. (im *. im)

let factorize (a : Cmat.t) =
  let rows, cols = Cmat.dim a in
  assert (rows = cols);
  let n = rows in
  let a = Cmat.copy a in
  let lre = (a : Cmat.t).Cmat.re and lim = (a : Cmat.t).Cmat.im in
  let piv = Array.init n (fun i -> i) in
  for j = 0 to n - 1 do
    let pivot_row = ref j in
    let pivot_mag = ref (mag2 lre.((j * n) + j) lim.((j * n) + j)) in
    for i = j + 1 to n - 1 do
      let m = mag2 lre.((i * n) + j) lim.((i * n) + j) in
      if m > !pivot_mag then begin
        pivot_mag := m;
        pivot_row := i
      end
    done;
    if !pivot_mag = 0.0 || Float.is_nan !pivot_mag then raise (Singular j);
    if !pivot_row <> j then begin
      let p = !pivot_row in
      for k = 0 to n - 1 do
        let tr = lre.((j * n) + k) and ti = lim.((j * n) + k) in
        lre.((j * n) + k) <- lre.((p * n) + k);
        lim.((j * n) + k) <- lim.((p * n) + k);
        lre.((p * n) + k) <- tr;
        lim.((p * n) + k) <- ti
      done;
      let tmp = piv.(j) in
      piv.(j) <- piv.(p);
      piv.(p) <- tmp
    end;
    let dre = lre.((j * n) + j) and dim_ = lim.((j * n) + j) in
    let dmag = mag2 dre dim_ in
    for i = j + 1 to n - 1 do
      let xre = lre.((i * n) + j) and xim = lim.((i * n) + j) in
      (* m = x / d *)
      let mre = ((xre *. dre) +. (xim *. dim_)) /. dmag in
      let mim = ((xim *. dre) -. (xre *. dim_)) /. dmag in
      lre.((i * n) + j) <- mre;
      lim.((i * n) + j) <- mim;
      if mre <> 0.0 || mim <> 0.0 then
        for k = j + 1 to n - 1 do
          let ure = lre.((j * n) + k) and uim = lim.((j * n) + k) in
          lre.((i * n) + k) <-
            lre.((i * n) + k) -. ((mre *. ure) -. (mim *. uim));
          lim.((i * n) + k) <-
            lim.((i * n) + k) -. ((mre *. uim) +. (mim *. ure))
        done
    done
  done;
  { n; lre; lim; piv }

let dim f = f.n

let solve_vec f (b : Cmat.vec) =
  let n = f.n in
  assert (Cmat.vec_dim b = n);
  let xre = Array.init n (fun i -> b.Cmat.vre.(f.piv.(i))) in
  let xim = Array.init n (fun i -> b.Cmat.vim.(f.piv.(i))) in
  for i = 1 to n - 1 do
    let sre = ref xre.(i) and sim = ref xim.(i) in
    for k = 0 to i - 1 do
      let lr = f.lre.((i * n) + k) and li = f.lim.((i * n) + k) in
      sre := !sre -. ((lr *. xre.(k)) -. (li *. xim.(k)));
      sim := !sim -. ((lr *. xim.(k)) +. (li *. xre.(k)))
    done;
    xre.(i) <- !sre;
    xim.(i) <- !sim
  done;
  for i = n - 1 downto 0 do
    let sre = ref xre.(i) and sim = ref xim.(i) in
    for k = i + 1 to n - 1 do
      let ur = f.lre.((i * n) + k) and ui = f.lim.((i * n) + k) in
      sre := !sre -. ((ur *. xre.(k)) -. (ui *. xim.(k)));
      sim := !sim -. ((ur *. xim.(k)) +. (ui *. xre.(k)))
    done;
    let dre = f.lre.((i * n) + i) and dim_ = f.lim.((i * n) + i) in
    let dmag = mag2 dre dim_ in
    xre.(i) <- ((!sre *. dre) +. (!sim *. dim_)) /. dmag;
    xim.(i) <- ((!sim *. dre) -. (!sre *. dim_)) /. dmag
  done;
  { Cmat.vre = xre; vim = xim }

let solve a b = solve_vec (factorize a) b
