type t = { rows : int; cols : int; re : float array; im : float array }

type vec = { vre : float array; vim : float array }

let vec_create n = { vre = Array.make n 0.0; vim = Array.make n 0.0 }

let vec_dim v = Array.length v.vre

let vec_get v i = { Complex.re = v.vre.(i); im = v.vim.(i) }

let vec_set v i (c : Complex.t) =
  v.vre.(i) <- c.Complex.re;
  v.vim.(i) <- c.Complex.im

let vec_add_at v i (c : Complex.t) =
  v.vre.(i) <- v.vre.(i) +. c.Complex.re;
  v.vim.(i) <- v.vim.(i) +. c.Complex.im

let vec_of_array a =
  {
    vre = Array.map (fun (c : Complex.t) -> c.Complex.re) a;
    vim = Array.map (fun (c : Complex.t) -> c.Complex.im) a;
  }

let vec_to_array v = Array.init (vec_dim v) (vec_get v)

let vec_norm2 v =
  let acc = ref 0.0 in
  for i = 0 to vec_dim v - 1 do
    acc := !acc +. (v.vre.(i) *. v.vre.(i)) +. (v.vim.(i) *. v.vim.(i))
  done;
  sqrt !acc

let vec_approx_equal ?(tol = 1e-9) a b =
  vec_dim a = vec_dim b
  &&
  let ok = ref true in
  for i = 0 to vec_dim a - 1 do
    if
      abs_float (a.vre.(i) -. b.vre.(i)) > tol
      || abs_float (a.vim.(i) -. b.vim.(i)) > tol
    then ok := false
  done;
  !ok

let create rows cols =
  {
    rows;
    cols;
    re = Array.make (rows * cols) 0.0;
    im = Array.make (rows * cols) 0.0;
  }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let c = f i j in
      m.re.((i * cols) + j) <- c.Complex.re;
      m.im.((i * cols) + j) <- c.Complex.im
    done
  done;
  m

let identity n =
  init n n (fun i j -> if i = j then Complex.one else Complex.zero)

let copy m = { m with re = Array.copy m.re; im = Array.copy m.im }

let dim m = (m.rows, m.cols)

let get m i j =
  { Complex.re = m.re.((i * m.cols) + j); im = m.im.((i * m.cols) + j) }

let set m i j (c : Complex.t) =
  m.re.((i * m.cols) + j) <- c.Complex.re;
  m.im.((i * m.cols) + j) <- c.Complex.im

let add_at m i j (c : Complex.t) =
  let k = (i * m.cols) + j in
  m.re.(k) <- m.re.(k) +. c.Complex.re;
  m.im.(k) <- m.im.(k) +. c.Complex.im

let mat_vec m v =
  assert (m.cols = vec_dim v);
  let out = vec_create m.rows in
  for i = 0 to m.rows - 1 do
    let row = i * m.cols in
    let sre = ref 0.0 and sim = ref 0.0 in
    for j = 0 to m.cols - 1 do
      let ar = m.re.(row + j) and ai = m.im.(row + j) in
      let xr = v.vre.(j) and xi = v.vim.(j) in
      sre := !sre +. ((ar *. xr) -. (ai *. xi));
      sim := !sim +. ((ar *. xi) +. (ai *. xr))
    done;
    out.vre.(i) <- !sre;
    out.vim.(i) <- !sim
  done;
  out

let add a b =
  assert (a.rows = b.rows && a.cols = b.cols);
  {
    a with
    re = Array.init (Array.length a.re) (fun i -> a.re.(i) +. b.re.(i));
    im = Array.init (Array.length a.im) (fun i -> a.im.(i) +. b.im.(i));
  }

let scale (c : Complex.t) a =
  let cr = c.Complex.re and ci = c.Complex.im in
  {
    a with
    re = Array.init (Array.length a.re) (fun i -> (cr *. a.re.(i)) -. (ci *. a.im.(i)));
    im = Array.init (Array.length a.im) (fun i -> (cr *. a.im.(i)) +. (ci *. a.re.(i)));
  }

let max_abs a =
  let worst = ref 0.0 in
  for i = 0 to Array.length a.re - 1 do
    let m = sqrt ((a.re.(i) *. a.re.(i)) +. (a.im.(i) *. a.im.(i))) in
    if m > !worst then worst := m
  done;
  !worst

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for i = 0 to Array.length a.re - 1 do
    if abs_float (a.re.(i) -. b.re.(i)) > tol
       || abs_float (a.im.(i) -. b.im.(i)) > tol
    then ok := false
  done;
  !ok

let pp ppf m =
  Format.fprintf ppf "@[<v 0>";
  for i = 0 to m.rows - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      let c = get m i j in
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%.3g%+.3gi" c.Complex.re c.Complex.im
    done;
    Format.fprintf ppf "]"
  done;
  Format.fprintf ppf "@]"
