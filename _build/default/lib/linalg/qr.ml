type t = {
  m : int;
  n : int;
  qr : float array; (* Householder vectors below diagonal, R on/above *)
  tau : float array; (* Householder scalar factors *)
}

exception Rank_deficient of int

let factorize (a : Mat.t) =
  let m = a.Mat.rows and n = a.Mat.cols in
  assert (m >= n);
  let qr = Array.copy a.Mat.data in
  let tau = Array.make n 0.0 in
  for j = 0 to n - 1 do
    (* Householder vector for column j, rows j..m-1. *)
    let norm = ref 0.0 in
    for i = j to m - 1 do
      let x = qr.((i * n) + j) in
      norm := !norm +. (x *. x)
    done;
    let norm = sqrt !norm in
    if norm > 0.0 then begin
      let alpha = if qr.((j * n) + j) >= 0.0 then -.norm else norm in
      (* v = x - alpha e1, stored with v.(j) implicit as 1 after scaling *)
      let v0 = qr.((j * n) + j) -. alpha in
      tau.(j) <- -.v0 /. alpha;
      for i = j + 1 to m - 1 do
        qr.((i * n) + j) <- qr.((i * n) + j) /. v0
      done;
      qr.((j * n) + j) <- alpha;
      (* Apply H = I - tau v vᵀ to remaining columns. *)
      for k = j + 1 to n - 1 do
        let s = ref qr.((j * n) + k) in
        for i = j + 1 to m - 1 do
          s := !s +. (qr.((i * n) + j) *. qr.((i * n) + k))
        done;
        let s = tau.(j) *. !s in
        qr.((j * n) + k) <- qr.((j * n) + k) -. s;
        for i = j + 1 to m - 1 do
          qr.((i * n) + k) <- qr.((i * n) + k) -. (s *. qr.((i * n) + j))
        done
      done
    end
    else tau.(j) <- 0.0
  done;
  { m; n; qr; tau }

let r f =
  Mat.init f.n f.n (fun i j -> if j >= i then f.qr.((i * f.n) + j) else 0.0)

(* Apply qᵀ to a length-m vector in place (Householder reflections in
   order). *)
let apply_qt f (b : float array) =
  for j = 0 to f.n - 1 do
    if f.tau.(j) <> 0.0 then begin
      let s = ref b.(j) in
      for i = j + 1 to f.m - 1 do
        s := !s +. (f.qr.((i * f.n) + j) *. b.(i))
      done;
      let s = f.tau.(j) *. !s in
      b.(j) <- b.(j) -. s;
      for i = j + 1 to f.m - 1 do
        b.(i) <- b.(i) -. (s *. f.qr.((i * f.n) + j))
      done
    end
  done

(* Apply q to a length-m vector in place (reflections in reverse). *)
let apply_q f (b : float array) =
  for j = f.n - 1 downto 0 do
    if f.tau.(j) <> 0.0 then begin
      let s = ref b.(j) in
      for i = j + 1 to f.m - 1 do
        s := !s +. (f.qr.((i * f.n) + j) *. b.(i))
      done;
      let s = f.tau.(j) *. !s in
      b.(j) <- b.(j) -. s;
      for i = j + 1 to f.m - 1 do
        b.(i) <- b.(i) -. (s *. f.qr.((i * f.n) + j))
      done
    end
  done

let q f =
  let qmat = Mat.create f.m f.n in
  for j = 0 to f.n - 1 do
    let e = Array.make f.m 0.0 in
    e.(j) <- 1.0;
    apply_q f e;
    Mat.set_col qmat j e
  done;
  qmat

let solve_least_squares f (b : Vec.t) =
  assert (Array.length b = f.m);
  let c = Array.copy b in
  apply_qt f c;
  (* Back-substitute on the n×n upper triangle. *)
  let x = Array.make f.n 0.0 in
  for i = f.n - 1 downto 0 do
    let d = f.qr.((i * f.n) + i) in
    if abs_float d < 1e-300 || Float.is_nan d then raise (Rank_deficient i);
    let s = ref c.(i) in
    for k = i + 1 to f.n - 1 do
      s := !s -. (f.qr.((i * f.n) + k) *. x.(k))
    done;
    x.(i) <- !s /. d
  done;
  x

let lstsq a b = solve_least_squares (factorize a) b

let residual_norm a x b = Vec.dist (Mat.mat_vec a x) b
