open Cbmf_linalg

let uniform r ~n ~dim =
  assert (n > 0 && dim > 0);
  let out = Mat.create n dim in
  for j = 0 to dim - 1 do
    let perm = Rng.permutation r n in
    for i = 0 to n - 1 do
      let stratum = float_of_int perm.(i) in
      Mat.set out i j ((stratum +. Rng.float r) /. float_of_int n)
    done
  done;
  out

let gaussian r ~n ~dim =
  let u = uniform r ~n ~dim in
  (* Clamp away from {0,1} to keep the quantile finite. *)
  Mat.map
    (fun p -> Gaussian.quantile (Float.min (Float.max p 1e-12) (1.0 -. 1e-12)))
    u
