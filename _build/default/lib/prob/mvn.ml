open Cbmf_linalg

type t = { mu : Vec.t; cov : Mat.t; chol : Chol.t }

let create ~mu ~cov =
  assert (Mat.is_square cov);
  assert (Array.length mu = cov.Mat.rows);
  let chol = Chol.factorize_with_retry cov in
  { mu; cov; chol }

let standard n = create ~mu:(Vec.create n) ~cov:(Mat.identity n)

let dim d = Array.length d.mu

let mean d = Vec.copy d.mu

let covariance d = Mat.copy d.cov

let sample d r =
  let z = Rng.gaussian_vector r (dim d) in
  let x = Chol.sample_transform d.chol z in
  Vec.add_inplace x d.mu;
  x

let sample_n d r n =
  let k = dim d in
  let out = Mat.create n k in
  for i = 0 to n - 1 do
    Mat.set_row out i (sample d r)
  done;
  out

let log_pdf d x =
  let n = float_of_int (dim d) in
  let m2 = Chol.mahalanobis_sq d.chol x d.mu in
  -0.5 *. (m2 +. Chol.log_det d.chol +. (n *. log (2.0 *. Float.pi)))

let mahalanobis_sq d x = Chol.mahalanobis_sq d.chol x d.mu

let conditional d ~indices ~values =
  let n = dim d in
  let given = Array.make n false in
  Array.iter
    (fun i ->
      assert (i >= 0 && i < n);
      given.(i) <- true)
    indices;
  assert (Array.length indices = Array.length values);
  let rest = ref [] in
  for i = n - 1 downto 0 do
    if not given.(i) then rest := i :: !rest
  done;
  let rest = Array.of_list !rest in
  let nr = Array.length rest and ng = Array.length indices in
  assert (nr > 0);
  let s_rr = Mat.init nr nr (fun i j -> Mat.get d.cov rest.(i) rest.(j)) in
  let s_rg = Mat.init nr ng (fun i j -> Mat.get d.cov rest.(i) indices.(j)) in
  let s_gg = Mat.init ng ng (fun i j -> Mat.get d.cov indices.(i) indices.(j)) in
  let delta = Array.init ng (fun j -> values.(j) -. d.mu.(indices.(j))) in
  let gg = Chol.factorize_with_retry s_gg in
  (* mu' = mu_r + S_rg S_gg⁻¹ delta;  S' = S_rr − S_rg S_gg⁻¹ S_gr *)
  let w = Chol.solve_vec gg delta in
  let mu' =
    Array.init nr (fun i -> d.mu.(rest.(i)) +. Vec.dot (Mat.row s_rg i) w)
  in
  let sginv_sgr = Chol.solve_mat gg (Mat.transpose s_rg) in
  let cov' = Mat.sub s_rr (Mat.matmul s_rg sginv_sgr) in
  Mat.symmetrize_inplace cov';
  create ~mu:mu' ~cov:cov'
