(** Descriptive statistics used by the experiment harness and tests. *)

val mean : float array -> float

val variance : float array -> float
(** Unbiased (n−1) sample variance; 0 for singletons. *)

val stddev : float array -> float

val skewness : float array -> float
(** Sample skewness (biased, moment-based). *)

val kurtosis_excess : float array -> float

val quantile : float array -> float -> float
(** [quantile xs p] with linear interpolation between order statistics;
    [p] in [0, 1].  Does not modify its argument. *)

val median : float array -> float

val minimum : float array -> float

val maximum : float array -> float

val pearson : float array -> float array -> float
(** Pearson correlation coefficient; 0 when either side is constant. *)

val covariance : float array -> float array -> float
(** Unbiased sample covariance. *)

val histogram : ?bins:int -> float array -> (float * int) array
(** [histogram xs] returns [(left_edge, count)] pairs over equal-width
    bins (default 20) spanning the data range. *)

val summary : float array -> string
(** One-line human-readable summary (n/mean/sd/min/median/max). *)
