let mean xs =
  assert (Array.length xs > 0);
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let central_moment xs k =
  let m = mean xs in
  let acc = ref 0.0 in
  Array.iter (fun x -> acc := !acc +. ((x -. m) ** float_of_int k)) xs;
  !acc /. float_of_int (Array.length xs)

let skewness xs =
  let m2 = central_moment xs 2 and m3 = central_moment xs 3 in
  if m2 <= 0.0 then 0.0 else m3 /. (m2 ** 1.5)

let kurtosis_excess xs =
  let m2 = central_moment xs 2 and m4 = central_moment xs 4 in
  if m2 <= 0.0 then 0.0 else (m4 /. (m2 *. m2)) -. 3.0

let quantile xs p =
  assert (Array.length xs > 0);
  assert (p >= 0.0 && p <= 1.0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))
  end

let median xs = quantile xs 0.5

let minimum xs =
  assert (Array.length xs > 0);
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  assert (Array.length xs > 0);
  Array.fold_left Float.max xs.(0) xs

let covariance xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys);
  if n < 2 then 0.0
  else begin
    let mx = mean xs and my = mean ys in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. ((xs.(i) -. mx) *. (ys.(i) -. my))
    done;
    !acc /. float_of_int (n - 1)
  end

let pearson xs ys =
  let sx = stddev xs and sy = stddev ys in
  if sx <= 0.0 || sy <= 0.0 then 0.0 else covariance xs ys /. (sx *. sy)

let histogram ?(bins = 20) xs =
  assert (bins > 0 && Array.length xs > 0);
  let lo = minimum xs and hi = maximum xs in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = Stdlib.min (Stdlib.max b 0) (bins - 1) in
      counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts

let summary xs =
  Printf.sprintf "n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g"
    (Array.length xs) (mean xs) (stddev xs) (minimum xs) (median xs)
    (maximum xs)
