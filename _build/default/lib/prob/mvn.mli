(** Multivariate normal distributions with dense covariance. *)

open Cbmf_linalg

type t

val create : mu:Vec.t -> cov:Mat.t -> t
(** The covariance must be symmetric positive definite (a small retry
    jitter is applied automatically for borderline matrices). *)

val standard : int -> t
(** N(0, I_n). *)

val dim : t -> int

val mean : t -> Vec.t

val covariance : t -> Mat.t

val sample : t -> Rng.t -> Vec.t

val sample_n : t -> Rng.t -> int -> Mat.t
(** [sample_n d r n] stacks [n] draws as rows. *)

val log_pdf : t -> Vec.t -> float

val mahalanobis_sq : t -> Vec.t -> float

val conditional : t -> indices:int array -> values:Vec.t -> t
(** [conditional d ~indices ~values] is the distribution of the
    remaining coordinates given that the coordinates in [indices] equal
    [values] — the classic Gaussian conditioning formula. *)
