type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable spare : float;
  mutable has_spare : bool;
}

(* splitmix64 — used only for seeding and splitting. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed64 =
  let state = ref seed64 in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3; spare = 0.0; has_spare = false }

let create seed = of_seed64 (Int64.of_int seed)

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let uint64 r =
  let open Int64 in
  let result = mul (rotl (mul r.s1 5L) 7) 9L in
  let t = shift_left r.s1 17 in
  r.s2 <- logxor r.s2 r.s0;
  r.s3 <- logxor r.s3 r.s1;
  r.s1 <- logxor r.s1 r.s2;
  r.s0 <- logxor r.s0 r.s3;
  r.s2 <- logxor r.s2 t;
  r.s3 <- rotl r.s3 45;
  result

let split r = of_seed64 (uint64 r)

(* Independent stream addressed by (base, index): the index is hashed
   through splitmix64 before mixing so that adjacent indices land far
   apart in seed space.  Pure in both arguments — the backbone of the
   deterministic parallel Monte-Carlo path, where stream [i] must not
   depend on how many domains generated streams [0..i-1]. *)
let derive base ~index =
  let st = ref (Int64.of_int index) in
  let h = splitmix64_next st in
  of_seed64 (Int64.logxor base h)

let seed_of r = uint64 r

let copy r = { r with s0 = r.s0 }

let float r =
  (* Use the top 53 bits. *)
  let bits = Int64.shift_right_logical (uint64 r) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform r a b = a +. ((b -. a) *. float r)

let int r n =
  assert (n > 0);
  (* Rejection sampling on 62 usable non-negative bits. *)
  let bound = Int64.of_int n in
  let limit = Int64.sub (Int64.div Int64.max_int bound) 1L in
  let rec go () =
    let raw = Int64.shift_right_logical (uint64 r) 1 in
    let q = Int64.div raw bound in
    if Int64.compare q limit <= 0 then Int64.to_int (Int64.rem raw bound)
    else go ()
  in
  go ()

let bool r = Int64.compare (Int64.logand (uint64 r) 1L) 0L <> 0

let gaussian r =
  if r.has_spare then begin
    r.has_spare <- false;
    r.spare
  end
  else begin
    let rec draw () =
      let u = (2.0 *. float r) -. 1.0 in
      let v = (2.0 *. float r) -. 1.0 in
      let s = (u *. u) +. (v *. v) in
      if s >= 1.0 || s = 0.0 then draw () else (u, v, s)
    in
    let u, v, s = draw () in
    let m = sqrt (-2.0 *. log s /. s) in
    r.spare <- v *. m;
    r.has_spare <- true;
    u *. m
  end

let gaussian_mu_sigma r ~mu ~sigma = mu +. (sigma *. gaussian r)

let gaussian_vector r n = Array.init n (fun _ -> gaussian r)

let shuffle_inplace r a =
  for i = Array.length a - 1 downto 1 do
    let j = int r (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation r n =
  let a = Array.init n (fun i -> i) in
  shuffle_inplace r a;
  a
