(** Latin hypercube sampling — the usual space-filling design for
    simulation-budget-constrained Monte Carlo. *)

open Cbmf_linalg

val uniform : Rng.t -> n:int -> dim:int -> Mat.t
(** [uniform r ~n ~dim] returns an n×dim matrix of LHS points in
    [0, 1)^dim: each column is a random permutation of jittered strata. *)

val gaussian : Rng.t -> n:int -> dim:int -> Mat.t
(** LHS pushed through the standard normal quantile — stratified
    standard-normal samples, one row per point. *)
