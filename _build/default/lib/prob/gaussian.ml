let sqrt2 = sqrt 2.0

let sqrt_2pi = sqrt (2.0 *. Float.pi)

(* Chebyshev-fit erfc (Numerical Recipes erfcc), accurate to ~1.2e-7. *)
let erfc_raw x =
  let z = abs_float x in
  let t = 1.0 /. (1.0 +. (0.5 *. z)) in
  (* Horner evaluation of the Chebyshev fit. *)
  let coeffs =
    [| 0.17087277; -0.82215223; 1.48851587; -1.13520398; 0.27886807;
       -0.18628806; 0.09678418; 0.37409196; 1.00002368; -1.26551223 |]
  in
  let poly = Array.fold_left (fun acc c -> (acc *. t) +. c) 0.0 coeffs in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0.0 then ans else 2.0 -. ans

let erfc = erfc_raw

let erf x = 1.0 -. erfc_raw x

let pdf ?(mu = 0.0) ?(sigma = 1.0) x =
  assert (sigma > 0.0);
  let z = (x -. mu) /. sigma in
  exp (-0.5 *. z *. z) /. (sigma *. sqrt_2pi)

let log_pdf ?(mu = 0.0) ?(sigma = 1.0) x =
  assert (sigma > 0.0);
  let z = (x -. mu) /. sigma in
  (-0.5 *. z *. z) -. log (sigma *. sqrt_2pi)

let cdf ?(mu = 0.0) ?(sigma = 1.0) x =
  assert (sigma > 0.0);
  0.5 *. erfc ((mu -. x) /. (sigma *. sqrt2))

(* Acklam's inverse-normal rational approximation + one Halley step. *)
let quantile p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Gaussian.quantile: p must be in (0, 1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2.0 *. log p) in
      ((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
       *. q
      +. c.(5))
      /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
    else if p <= 1.0 -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
       *. r
      +. a.(5))
      *. q
      /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
          *. r
         +. 1.0)
    end
    else begin
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.(((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q
          +. c.(4))
         *. q
        +. c.(5))
        /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0))
    end
  in
  (* One Halley refinement using the (accurate enough) cdf/pdf pair. *)
  let e = cdf x -. p in
  let u = e *. sqrt_2pi *. exp (0.5 *. x *. x) in
  x -. (u /. (1.0 +. (0.5 *. x *. u)))

let quantile_mu_sigma ~mu ~sigma p = mu +. (sigma *. quantile p)

let log_likelihood ~mu ~sigma xs =
  Array.fold_left (fun acc x -> acc +. log_pdf ~mu ~sigma x) 0.0 xs
