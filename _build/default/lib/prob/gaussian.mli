(** Scalar Gaussian distribution functions: density, CDF, quantile and
    the error-function family they are built on. *)

val erf : float -> float
(** Error function, |error| < 5e-6 (Numerical-Recipes-style
    Chebyshev fit refined by one Newton step where it matters). *)

val erfc : float -> float

val pdf : ?mu:float -> ?sigma:float -> float -> float

val log_pdf : ?mu:float -> ?sigma:float -> float -> float

val cdf : ?mu:float -> ?sigma:float -> float -> float

val quantile : float -> float
(** Inverse standard normal CDF (Acklam's rational approximation with a
    Halley refinement step; |error| < 1e-5 over (0, 1)).
    Raises [Invalid_argument] outside (0, 1). *)

val quantile_mu_sigma : mu:float -> sigma:float -> float -> float

val log_likelihood : mu:float -> sigma:float -> float array -> float
(** Sum of [log_pdf] over the sample. *)
