lib/prob/gaussian.mli:
