lib/prob/lhs.ml: Array Cbmf_linalg Float Gaussian Mat Rng
