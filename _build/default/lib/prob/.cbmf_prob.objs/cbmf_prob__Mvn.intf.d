lib/prob/mvn.mli: Cbmf_linalg Mat Rng Vec
