lib/prob/rng.mli: Cbmf_linalg
