lib/prob/mvn.ml: Array Cbmf_linalg Chol Float Mat Rng Vec
