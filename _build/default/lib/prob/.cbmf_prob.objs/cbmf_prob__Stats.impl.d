lib/prob/stats.ml: Array Float Printf Stdlib
