lib/prob/gaussian.ml: Array Float
