lib/prob/stats.mli:
