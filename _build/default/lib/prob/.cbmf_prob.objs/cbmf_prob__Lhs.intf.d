lib/prob/lhs.mli: Cbmf_linalg Mat Rng
