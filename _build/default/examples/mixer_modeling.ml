(* Paper §4.2 in miniature: the tunable down-conversion mixer with its
   two switched load resistors (32 codes), 1303 process variables.

     dune exec examples/mixer_modeling.exe

   Demonstrates the sample-budget tradeoff the paper's Table 2 reports:
   C-BMF fitted on fewer samples vs S-OMP fitted on more. *)

open Cbmf_model
open Cbmf_circuit
open Cbmf_experiments

let () =
  let w = Workload.mixer () in
  let tb = w.Workload.testbench in
  Printf.printf "Circuit: %s — %d variables, %d states\n" tb.Testbench.name
    (Testbench.dim tb) (Testbench.n_states tb);

  let data = Workload.generate w ~seed:5 ~n_train_max:14 ~n_test_per_state:25 in

  (* Budgets: S-OMP gets 14 samples/state, C-BMF only 7. *)
  let n_somp = 14 and n_cbmf = 7 in
  Printf.printf "S-OMP budget: %d samples (%.1f h simulated), C-BMF: %d (%.1f h)\n\n"
    (n_somp * 32)
    (Testbench.simulation_cost_hours tb ~n_samples:(n_somp * 32))
    (n_cbmf * 32)
    (Testbench.simulation_cost_hours tb ~n_samples:(n_cbmf * 32));

  Array.iteri
    (fun poi name ->
      let test = Workload.test_dataset data ~poi in
      let train_somp = Workload.train_dataset data ~poi ~n_per_state:n_somp in
      let train_cbmf = Workload.train_dataset data ~poi ~n_per_state:n_cbmf in
      let somp, _ =
        Somp.fit_cv train_somp ~n_folds:4 ~candidate_terms:[| 4; 8; 12 |]
      in
      let model =
        Cbmf_core.Cbmf.fit ~config:Cbmf_core.Cbmf.fast_config train_cbmf
      in
      Printf.printf
        "%-7s S-OMP@%d: %.3f%%   C-BMF@%d: %.3f%%\n%!" name (n_somp * 32)
        (100.0 *. Metrics.coeffs_error_pooled ~coeffs:somp.Somp.coeffs test)
        (n_cbmf * 32)
        (100.0 *. Cbmf_core.Cbmf.test_error model test))
    tb.Testbench.poi_names;

  (* Behavioural check: which mechanism limits compression per state? *)
  let proc = tb.Testbench.process in
  let x0 = Array.make (Process.dim proc) 0.0 in
  Printf.printf "\nNominal mixer across the load DAC:\n";
  List.iter
    (fun state ->
      let r = Mixer.evaluate_internals tb ~state x0 in
      Printf.printf
        "  code %2d: RL = %3.0f ohm, VG = %5.2f dB, NF = %.2f dB, I1dB = %6.2f dBm\n"
        state r.Mixer.load_ohms r.Mixer.vg_db r.Mixer.nf_db r.Mixer.i1dbcp_dbm)
    [ 0; 10; 21; 31 ]
