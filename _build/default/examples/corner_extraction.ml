(* Design-specific worst-case corner extraction with a fitted model —
   another application from the paper's introduction (ref. [14]).

     dune exec examples/corner_extraction.exe

   For a linear model y = alpha0 + aᵀx with x ~ N(0, I), the worst-case
   corner at probability level p lies along the gradient:
   x* = ±q(p)·a/‖a‖.  We extract per-state 3-sigma corners for the
   mixer's conversion gain and verify them against the "simulator". *)

open Cbmf_linalg
open Cbmf_circuit
open Cbmf_experiments

let sigma_level = 3.0

let () =
  let w = Workload.mixer () in
  let tb = w.Workload.testbench in
  let data = Workload.generate w ~seed:13 ~n_train_max:12 ~n_test_per_state:10 in
  let poi = Testbench.poi_index tb "VG" in
  let train = Workload.train_dataset data ~poi ~n_per_state:12 in
  let model = Cbmf_core.Cbmf.fit ~config:Cbmf_core.Cbmf.fast_config train in
  Printf.printf "Fitted mixer VG model (%d basis functions kept)\n\n"
    model.Cbmf_core.Cbmf.info.Cbmf_core.Cbmf.final_active;

  Printf.printf
    " state | nominal VG | model 3s worst | simulated at corner | corner variables\n";
  List.iter
    (fun state ->
      let coeffs = Mat.row model.Cbmf_core.Cbmf.coeffs state in
      (* Column 0 is the constant term; the rest map 1:1 to variables. *)
      let a = Array.sub coeffs 1 (Array.length coeffs - 1) in
      let alpha0 = coeffs.(0) in
      let norm = Vec.norm2 a in
      (* Worst case = lowest gain: step against the gradient. *)
      let corner = Vec.scale (-.sigma_level /. norm) a in
      let model_wc = alpha0 -. (sigma_level *. norm) in
      let simulated = (tb.Testbench.evaluate ~state corner).(poi) in
      let nominal =
        (tb.Testbench.evaluate ~state (Vec.create (Testbench.dim tb))).(poi)
      in
      (* Name the two most influential variables of this state's corner. *)
      let idx = Array.init (Array.length a) Fun.id in
      Array.sort (fun i j -> compare (abs_float a.(j)) (abs_float a.(i))) idx;
      Printf.printf "  %4d |   %6.2f dB |      %6.2f dB |           %6.2f dB | %s, %s\n%!"
        state nominal model_wc simulated
        (Process.variable_name tb.Testbench.process idx.(0))
        (Process.variable_name tb.Testbench.process idx.(1)))
    [ 0; 8; 16; 24; 31 ];

  Printf.printf
    "\nModel-predicted corners match re-simulation to within the model's\n\
     error, while costing one dot product instead of one SPICE run each.\n"
