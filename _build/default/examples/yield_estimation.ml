(* Yield estimation with a fitted performance model — one of the
   downstream applications motivating performance modeling in the
   paper's introduction.

     dune exec examples/yield_estimation.exe

   Once C-BMF has produced cheap analytical models y_k(x), Monte-Carlo
   yield analysis needs no further circuit simulation: we draw 10^5
   virtual process samples, evaluate every state's model, and count how
   often at least one knob setting meets all specs — the parametric
   yield a tunable circuit is designed to maximize. *)

open Cbmf_linalg
open Cbmf_circuit
open Cbmf_experiments

(* Specs for the LNA: NF below limit and gain inside an AGC window.
   The window makes the optimal knob code die-dependent — fast dies
   need a lower bias code than slow dies — which is exactly where
   post-silicon tuning pays. *)
let nf_max = 0.36

let vg_min = 34.4

let vg_max = 35.1

let n_virtual = 20_000

let () =
  let w = Workload.lna () in
  let tb = w.Workload.testbench in
  let data = Workload.generate w ~seed:9 ~n_train_max:12 ~n_test_per_state:10 in

  (* Fit NF and VG models from 384 "simulations" total. *)
  let fit poi =
    Cbmf_core.Cbmf.fit ~config:Cbmf_core.Cbmf.fast_config
      (Workload.train_dataset data ~poi ~n_per_state:12)
  in
  let nf_model = fit 0 and vg_model = fit 1 in
  Printf.printf "Models fitted from %d simulated samples (%.2f h of SPICE time)\n"
    (12 * 32)
    (Testbench.simulation_cost_hours tb ~n_samples:(12 * 32));

  (* Virtual Monte Carlo on the models only. *)
  let rng = Cbmf_prob.Rng.create 77 in
  let dict = w.Workload.dictionary in
  let k = Testbench.n_states tb in
  let fixed_yield = Array.make k 0 in
  let tunable_yield = ref 0 in
  let t0 = Sys.time () in
  for _ = 1 to n_virtual do
    let x = Process.sample tb.Testbench.process rng in
    let basis_row = Cbmf_basis.Dictionary.eval dict x in
    let any_pass = ref false in
    for state = 0 to k - 1 do
      let nf = Vec.dot basis_row (Mat.row nf_model.Cbmf_core.Cbmf.coeffs state) in
      let vg = Vec.dot basis_row (Mat.row vg_model.Cbmf_core.Cbmf.coeffs state) in
      let pass = nf <= nf_max && vg >= vg_min && vg <= vg_max in
      if pass then begin
        fixed_yield.(state) <- fixed_yield.(state) + 1;
        any_pass := true
      end
    done;
    if !any_pass then incr tunable_yield
  done;
  let pct c = 100.0 *. float_of_int c /. float_of_int n_virtual in
  Printf.printf "Virtual Monte Carlo: %d samples x %d states in %.2f s (no SPICE)\n\n"
    n_virtual k (Sys.time () -. t0);
  Printf.printf "Spec: NF <= %.2f dB and %.1f <= VG <= %.1f dB\n" nf_max vg_min vg_max;
  Printf.printf "Yield with the knob frozen at selected codes:\n";
  List.iter
    (fun s -> Printf.printf "  code %2d: %5.1f%%\n" s (pct fixed_yield.(s)))
    [ 0; 8; 16; 24; 31 ];
  let best = ref 0 in
  Array.iteri (fun i c -> if c > fixed_yield.(!best) then best := i) fixed_yield;
  Printf.printf "Best fixed code:   %5.1f%% (code %d)\n" (pct fixed_yield.(!best)) !best;
  Printf.printf "Post-silicon tuning (best knob per die): %5.1f%%\n" (pct !tunable_yield);
  Printf.printf
    "\nThe tuning headroom (%+.1f points) is the benefit the tunable-circuit\n\
     methodology buys — computed entirely from the C-BMF models.\n"
    (pct !tunable_yield -. pct fixed_yield.(!best))
