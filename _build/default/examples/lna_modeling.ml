(* Paper §4.1 in miniature: model the tunable 2.4 GHz LNA's noise
   figure over its 1264 process variables and 32 knob states.

     dune exec examples/lna_modeling.exe

   Uses reduced sample budgets so the example finishes in ~a minute;
   `bench/main.exe tab1 fig2` runs the full paper-scale version. *)

open Cbmf_circuit
open Cbmf_experiments

let () =
  let w = Workload.lna () in
  let tb = w.Workload.testbench in
  Printf.printf "Circuit: %s — %d process variables, %d states, PoIs:"
    tb.Testbench.name (Testbench.dim tb) (Testbench.n_states tb);
  Array.iter (Printf.printf " %s") tb.Testbench.poi_names;
  print_newline ();

  (* "Transistor-level Monte Carlo" (behavioural simulator underneath). *)
  let data = Workload.generate w ~seed:3 ~n_train_max:12 ~n_test_per_state:25 in
  Printf.printf "Simulated %d training and %d testing samples (modeled cost %.2f h)\n\n"
    (Montecarlo.total_samples data.Workload.train_pool)
    (Montecarlo.total_samples data.Workload.test)
    (Montecarlo.simulation_hours data.Workload.train_pool);

  (* Fit every PoI with C-BMF and report held-out accuracy. *)
  Array.iteri
    (fun poi name ->
      let train = Workload.train_dataset data ~poi ~n_per_state:12 in
      let test = Workload.test_dataset data ~poi in
      let model = Cbmf_core.Cbmf.fit ~config:Cbmf_core.Cbmf.fast_config train in
      let info = model.Cbmf_core.Cbmf.info in
      Printf.printf
        "%-5s error %.3f%%  (r0 = %.2f, %d basis functions kept, %.1f s)\n%!"
        name
        (100.0 *. Cbmf_core.Cbmf.test_error model test)
        info.Cbmf_core.Cbmf.r0 info.Cbmf_core.Cbmf.final_active
        info.Cbmf_core.Cbmf.fit_seconds)
    tb.Testbench.poi_names;

  (* Show what the learned state-correlation matrix looks like. *)
  let train = Workload.train_dataset data ~poi:0 ~n_per_state:12 in
  let model = Cbmf_core.Cbmf.fit ~config:Cbmf_core.Cbmf.fast_config train in
  let r = model.Cbmf_core.Cbmf.info.Cbmf_core.Cbmf.final_r in
  Printf.printf "\nLearned R (state-correlation) near the diagonal:\n";
  List.iter
    (fun lag ->
      let acc = ref 0.0 and n = ref 0 in
      for k = 0 to 31 - lag do
        acc := !acc +. Cbmf_linalg.Mat.get r k (k + lag);
        incr n
      done;
      Printf.printf "  lag %2d: mean correlation %+.3f\n" lag
        (!acc /. float_of_int !n))
    [ 0; 1; 2; 4; 8; 16; 31 ]
