examples/mixer_modeling.ml: Array Cbmf_circuit Cbmf_core Cbmf_experiments Cbmf_model List Metrics Mixer Printf Process Somp Testbench Workload
