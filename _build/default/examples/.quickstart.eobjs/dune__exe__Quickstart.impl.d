examples/quickstart.ml: Array Cbmf_basis Cbmf_core Cbmf_linalg Cbmf_model Cbmf_prob Dataset List Mat Metrics Printf Somp
