examples/lna_modeling.ml: Array Cbmf_circuit Cbmf_core Cbmf_experiments Cbmf_linalg List Montecarlo Printf Testbench Workload
