examples/corner_extraction.mli:
