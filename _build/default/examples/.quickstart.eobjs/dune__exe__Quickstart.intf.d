examples/quickstart.mli:
