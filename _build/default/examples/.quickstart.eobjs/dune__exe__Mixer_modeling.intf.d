examples/mixer_modeling.mli:
