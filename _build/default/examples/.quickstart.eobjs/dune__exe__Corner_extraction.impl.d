examples/corner_extraction.ml: Array Cbmf_circuit Cbmf_core Cbmf_experiments Cbmf_linalg Fun List Mat Printf Process Testbench Vec Workload
