examples/lna_modeling.mli:
