examples/yield_estimation.ml: Array Cbmf_basis Cbmf_circuit Cbmf_core Cbmf_experiments Cbmf_linalg Cbmf_prob List Mat Printf Process Sys Testbench Vec Workload
