(** Deterministic, splittable pseudo-random number generation.

    The generator is xoshiro256** seeded through splitmix64, giving
    high-quality streams with a tiny state.  Every stochastic component
    of the code base takes an explicit [Rng.t] so that experiments are
    reproducible from a single integer seed. *)

type t

val create : int -> t
(** [create seed] builds a generator from any integer seed (including 0). *)

val split : t -> t
(** Derive an independent child stream; the parent advances. *)

val derive : int64 -> index:int -> t
(** [derive base ~index] is an independent stream addressed by the pair
    [(base, index)].  Pure in both arguments: unlike [split], it does
    not advance any parent state, so a family of streams indexed by
    sample number can be materialized in any order — or in parallel —
    with bit-identical results. *)

val seed_of : t -> int64
(** Draw a 64-bit base seed for [derive] (advances the generator). *)

val copy : t -> t
(** Duplicate the current state (the two copies then produce identical
    streams — useful in tests). *)

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1) with 53-bit resolution. *)

val uniform : t -> float -> float -> float
(** [uniform r a b] is uniform in [a, b). *)

val int : t -> int -> int
(** [int r n] is uniform in [0, n); requires [n > 0].  Uses rejection
    sampling, so it is exactly uniform. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal via the polar (Marsaglia) method; caches the spare
    deviate. *)

val gaussian_mu_sigma : t -> mu:float -> sigma:float -> float

val gaussian_vector : t -> int -> Cbmf_linalg.Vec.t
(** iid standard normal vector. *)

val shuffle_inplace : t -> 'a array -> unit
(** Fisher–Yates. *)

val permutation : t -> int -> int array
(** Random permutation of [0..n-1]. *)
