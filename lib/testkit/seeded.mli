(** Seeded test corpus: exact-determinism hashing and deterministic
    random inputs, shared by the unit tests, the smoke executables and
    the bench harness (one implementation instead of per-target
    copies).

    The FNV-1a hashes fold IEEE-754 {e bit patterns}, so any single-ulp
    difference changes the hash — they make exact determinism goldens
    for "bit-identical at any domain count / across refactors"
    contracts.  {!Cbmf_serve.Codec.fnv1a64} is the byte-level sibling
    used for snapshot checksums; this module hashes float payloads
    directly. *)

open Cbmf_linalg

(** {1 FNV-1a over float bit patterns} *)

val fnv_offset : int64
(** The FNV-1a 64-bit offset basis (the accumulator seed). *)

val hash_floats_acc : int64 -> float array -> int64
(** Fold an array into a running hash (chain for multi-array hashes). *)

val hash_floats : float array -> int64

val hash_vec : Vec.t -> int64

val hash_mat : Mat.t -> int64

val hash_mats : Mat.t array -> int64
(** All matrices chained in order under one accumulator. *)

(** {1 Deterministic random inputs}

    All take an explicit generator so call sites control the stream;
    {!default_rng} reproduces the seed the historical test corpus used. *)

val default_seed : int

val default_rng : unit -> Cbmf_prob.Rng.t
(** A fresh generator seeded with {!default_seed}. *)

val random_vec : Cbmf_prob.Rng.t -> int -> Vec.t

val random_mat : Cbmf_prob.Rng.t -> int -> int -> Mat.t

val random_spd : Cbmf_prob.Rng.t -> int -> Mat.t
(** [aᵀa + (n/2)·I] for a random [n×n] [a] — comfortably positive
    definite at any size. *)

(** {1 Pinned goldens} *)

val montecarlo_lna_seed42_n3_hash : int64
(** FNV-1a hash of all xs then ys matrices of [Montecarlo.generate] on
    the LNA testbench, seed 42, n_per_state 3.  Guards the per-sample
    RNG-splitting contract — the stream must stay bit-identical at any
    CBMF_DOMAINS and across refactors. *)
