open Cbmf_linalg

let fnv_offset = 0xCBF29CE484222325L

let fnv_prime = 0x100000001B3L

let hash_floats_acc acc (xs : float array) =
  Array.fold_left
    (fun acc x -> Int64.mul (Int64.logxor acc (Int64.bits_of_float x)) fnv_prime)
    acc xs

let hash_floats xs = hash_floats_acc fnv_offset xs

let hash_vec (v : Vec.t) = hash_floats v

let hash_mat (m : Mat.t) = hash_floats m.Mat.data

let hash_mats (ms : Mat.t array) =
  Array.fold_left (fun acc (m : Mat.t) -> hash_floats_acc acc m.Mat.data)
    fnv_offset ms

let default_seed = 20260704

let default_rng () = Cbmf_prob.Rng.create default_seed

let random_vec rng n = Cbmf_prob.Rng.gaussian_vector rng n

let random_mat rng r c = Mat.init r c (fun _ _ -> Cbmf_prob.Rng.gaussian rng)

let random_spd rng n =
  let a = random_mat rng n n in
  let g = Mat.gram a in
  Mat.add_diag_inplace g (float_of_int n *. 0.5);
  Mat.symmetrize_inplace g;
  g

let montecarlo_lna_seed42_n3_hash = -1015624154674765274L
