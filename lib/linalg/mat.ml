module Pool = Cbmf_parallel.Pool
module Tune = Cbmf_parallel.Tune
module Arena = Cbmf_parallel.Arena

type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let make rows cols c = { rows; cols; data = Array.make (rows * cols) c }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let diag v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.0)

let scalar n c = init n n (fun i j -> if i = j then c else 0.0)

let of_arrays rows_arr =
  let rows = Array.length rows_arr in
  assert (rows > 0);
  let cols = Array.length rows_arr.(0) in
  Array.iter (fun r -> assert (Array.length r = cols)) rows_arr;
  init rows cols (fun i j -> rows_arr.(i).(j))

let of_rows rows_list = of_arrays (Array.of_list rows_list)

let copy a = { a with data = Array.copy a.data }

let unsafe_of_flat ~rows ~cols data =
  assert (Array.length data = rows * cols);
  { rows; cols; data }

let dim a = (a.rows, a.cols)

let get a i j =
  assert (i >= 0 && i < a.rows && j >= 0 && j < a.cols);
  a.data.((i * a.cols) + j)

let set a i j x =
  assert (i >= 0 && i < a.rows && j >= 0 && j < a.cols);
  a.data.((i * a.cols) + j) <- x

let update a i j f = set a i j (f (get a i j))

let row a i =
  assert (i >= 0 && i < a.rows);
  Array.sub a.data (i * a.cols) a.cols

let col a j =
  assert (j >= 0 && j < a.cols);
  Array.init a.rows (fun i -> a.data.((i * a.cols) + j))

let set_row a i v =
  assert (Array.length v = a.cols);
  Array.blit v 0 a.data (i * a.cols) a.cols

let set_col a j v =
  assert (Array.length v = a.rows);
  for i = 0 to a.rows - 1 do
    a.data.((i * a.cols) + j) <- v.(i)
  done

let diagonal a =
  let n = Stdlib.min a.rows a.cols in
  Array.init n (fun i -> a.data.((i * a.cols) + i))

let submatrix a ~row0 ~col0 ~rows ~cols =
  assert (row0 >= 0 && col0 >= 0);
  assert (row0 + rows <= a.rows && col0 + cols <= a.cols);
  init rows cols (fun i j -> a.data.(((row0 + i) * a.cols) + (col0 + j)))

let submatrix_into a ~row0 ~col0 ~dst =
  assert (row0 >= 0 && col0 >= 0);
  assert (row0 + dst.rows <= a.rows && col0 + dst.cols <= a.cols);
  for i = 0 to dst.rows - 1 do
    Array.blit a.data (((row0 + i) * a.cols) + col0) dst.data (i * dst.cols)
      dst.cols
  done

let select_cols a idx =
  Array.iter (fun j -> assert (j >= 0 && j < a.cols)) idx;
  init a.rows (Array.length idx) (fun i j -> a.data.((i * a.cols) + idx.(j)))

let transpose a = init a.cols a.rows (fun i j -> a.data.((j * a.cols) + i))

let add a b =
  assert (a.rows = b.rows && a.cols = b.cols);
  { a with data = Array.init (Array.length a.data) (fun i -> a.data.(i) +. b.data.(i)) }

let sub a b =
  assert (a.rows = b.rows && a.cols = b.cols);
  { a with data = Array.init (Array.length a.data) (fun i -> a.data.(i) -. b.data.(i)) }

let scale c a = { a with data = Array.map (fun x -> c *. x) a.data }

let add_inplace a b =
  assert (a.rows = b.rows && a.cols = b.cols);
  for i = 0 to Array.length a.data - 1 do
    Array.unsafe_set a.data i
      (Array.unsafe_get a.data i +. Array.unsafe_get b.data i)
  done

let scale_inplace a c =
  for i = 0 to Array.length a.data - 1 do
    Array.unsafe_set a.data i (c *. Array.unsafe_get a.data i)
  done

let add_scaled_inplace a c b =
  assert (a.rows = b.rows && a.cols = b.cols);
  for i = 0 to Array.length a.data - 1 do
    Array.unsafe_set a.data i
      (Array.unsafe_get a.data i +. (c *. Array.unsafe_get b.data i))
  done

let add_diag_inplace a c =
  let n = Stdlib.min a.rows a.cols in
  for i = 0 to n - 1 do
    a.data.((i * a.cols) + i) <- a.data.((i * a.cols) + i) +. c
  done

(* --- GEMM kernels --------------------------------------------------
   Cache-blocked / register-blocked triple loops.  The naive variants
   are kept (suffix [_naive]) as oracles for the kernel tests and as
   "before" baselines for the bench harness; they must stay
   numerically equivalent (same sums, possibly different rounding).

   Panel parallelism: each blocked kernel is factored into a core that
   computes an output row panel (or column panel for the T·N shapes);
   the sequential path runs the core once over the full range, the
   parallel path fans panels out across [Pool.default ()].  Because
   every output element's accumulation order, unroll grouping and
   zero-skip expression are shared between the two paths, results are
   bit-identical at any domain count.  The parallel path is taken only
   when the pool has >1 domain, the call is not already inside a pool
   task, and the estimated work clears [Tune.gemm_fanout] — so a 1-core
   run (or a nested call) never pays for packing or gate traffic.

   Pack-once buffers: the parallel [matmul] packs [b] into
   tile-contiguous panels once per call (every row panel re-sweeps all
   of [b], so the pack cost O(p·n) amortizes over m rows and turns the
   tile sweep into pure streaming); the parallel [matmul_tn] packs each
   task's column slab of [b] into a per-slot arena buffer (stride-n row
   segments become stride-w).  Packing relocates values without
   touching them, so it cannot affect bits. *)

let matmul_naive a b =
  assert (a.cols = b.rows);
  let m = a.rows and n = b.cols and p = a.cols in
  let c = Array.make (m * n) 0.0 in
  let ad = a.data and bd = b.data in
  for i = 0 to m - 1 do
    let arow = i * p in
    let crow = i * n in
    for k = 0 to p - 1 do
      let aik = Array.unsafe_get ad (arow + k) in
      if aik <> 0.0 then begin
        let brow = k * n in
        for j = 0 to n - 1 do
          Array.unsafe_set c (crow + j)
            (Array.unsafe_get c (crow + j)
            +. (aik *. Array.unsafe_get bd (brow + j)))
        done
      end
    done
  done;
  { rows = m; cols = n; data = c }

let matmul_nt_naive a b =
  assert (a.cols = b.cols);
  let m = a.rows and n = b.rows and p = a.cols in
  let c = Array.make (m * n) 0.0 in
  let ad = a.data and bd = b.data in
  for i = 0 to m - 1 do
    let arow = i * p in
    for j = 0 to n - 1 do
      let brow = j * p in
      let acc = ref 0.0 in
      for k = 0 to p - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get ad (arow + k) *. Array.unsafe_get bd (brow + k))
      done;
      Array.unsafe_set c ((i * n) + j) !acc
    done
  done;
  { rows = m; cols = n; data = c }

(* Tile sizes: a [tile_k]×[tile_j] panel of [b] (8·64·256 = 128 KB)
   stays L2-resident while a full sweep of [a]'s rows streams over
   it; within a panel the k loop is unrolled 4× so each accumulator
   row element is loaded/stored once per four multiply-adds. *)
let tile_k = 64

let tile_j = 256

(* Per-slot scratch for the parallel kernels (column-slab packs, the
   weighted-row stage).  Ids are globally fresh, so no other subsystem
   sharing a slot can collide with them. *)
let scratch = Arena.create ()

let id_tn_slab = Arena.fresh_id ()

let id_w_row = Arena.fresh_id ()

(* Fan-out guard.  The cheap flop pre-check sits below the smallest
   possible calibrated threshold (32 × the 500 ns wakeup floor), so
   small products never even look the default pool up. *)
let par_pool ~flops =
  if flops < 16_000.0 || Pool.in_parallel () then None
  else
    let pool = Pool.default () in
    let size = Pool.size pool in
    if size > 1 && Tune.gemm_fanout ~size ~flops then Some pool else None

(* Row panel [ilo, ihi) of c += a·b, reading [b] in place.  The
   sequential [matmul] is exactly this over [0, m). *)
let matmul_rows ad bd c ~n ~p ~ilo ~ihi =
  let k0 = ref 0 in
  while !k0 < p do
    let k1 = Stdlib.min p (!k0 + tile_k) in
    let j0 = ref 0 in
    while !j0 < n do
      let j1 = Stdlib.min n (!j0 + tile_j) in
      let jlo = !j0 and jhi = j1 - 1 in
      for i = ilo to ihi - 1 do
        let arow = i * p in
        let crow = i * n in
        let k = ref !k0 in
        while !k + 3 < k1 do
          let kk = !k in
          let a0 = Array.unsafe_get ad (arow + kk)
          and a1 = Array.unsafe_get ad (arow + kk + 1)
          and a2 = Array.unsafe_get ad (arow + kk + 2)
          and a3 = Array.unsafe_get ad (arow + kk + 3) in
          if a0 <> 0.0 || a1 <> 0.0 || a2 <> 0.0 || a3 <> 0.0 then begin
            let b0 = kk * n
            and b1 = (kk + 1) * n
            and b2 = (kk + 2) * n
            and b3 = (kk + 3) * n in
            for j = jlo to jhi do
              Array.unsafe_set c (crow + j)
                (Array.unsafe_get c (crow + j)
                +. (a0 *. Array.unsafe_get bd (b0 + j))
                +. (a1 *. Array.unsafe_get bd (b1 + j))
                +. (a2 *. Array.unsafe_get bd (b2 + j))
                +. (a3 *. Array.unsafe_get bd (b3 + j)))
            done
          end;
          k := kk + 4
        done;
        while !k < k1 do
          let kk = !k in
          let aik = Array.unsafe_get ad (arow + kk) in
          if aik <> 0.0 then begin
            let brow = kk * n in
            for j = jlo to jhi do
              Array.unsafe_set c (crow + j)
                (Array.unsafe_get c (crow + j)
                +. (aik *. Array.unsafe_get bd (brow + j)))
            done
          end;
          k := kk + 1
        done
      done;
      j0 := j1
    done;
    k0 := k1
  done

(* Pack [b] (p×n) into tile-major layout: for each (k-tile, j-tile)
   the tile's rows are stored contiguously at [offsets.(kt·njt + jt)],
   each of width (j1 - j0).  Pure relocation — no arithmetic. *)
let pack_b bd ~n ~p =
  let njt = (n + tile_j - 1) / tile_j in
  let nkt = (p + tile_k - 1) / tile_k in
  let packed = Array.make (p * n) 0.0 in
  let offsets = Array.make (nkt * njt) 0 in
  let pos = ref 0 in
  for kt = 0 to nkt - 1 do
    let k0 = kt * tile_k in
    let k1 = Stdlib.min p (k0 + tile_k) in
    for jt = 0 to njt - 1 do
      let j0 = jt * tile_j in
      let j1 = Stdlib.min n (j0 + tile_j) in
      let w = j1 - j0 in
      offsets.((kt * njt) + jt) <- !pos;
      for kk = k0 to k1 - 1 do
        Array.blit bd ((kk * n) + j0) packed (!pos + ((kk - k0) * w)) w
      done;
      pos := !pos + ((k1 - k0) * w)
    done
  done;
  (packed, offsets, njt)

(* [matmul_rows] against the packed layout: same loop structure, same
   unrolling, same zero-skip, same per-element accumulation order —
   only the addresses of [b]'s values differ. *)
let matmul_rows_packed ad packed offsets njt c ~n ~p ~ilo ~ihi =
  let k0 = ref 0 in
  let kt = ref 0 in
  while !k0 < p do
    let k1 = Stdlib.min p (!k0 + tile_k) in
    let j0 = ref 0 in
    let jt = ref 0 in
    while !j0 < n do
      let j1 = Stdlib.min n (!j0 + tile_j) in
      let jlo = !j0 in
      let w = j1 - jlo in
      let base = offsets.((!kt * njt) + !jt) in
      let kbase = !k0 in
      for i = ilo to ihi - 1 do
        let arow = i * p in
        let crow = (i * n) + jlo in
        let k = ref kbase in
        while !k + 3 < k1 do
          let kk = !k in
          let a0 = Array.unsafe_get ad (arow + kk)
          and a1 = Array.unsafe_get ad (arow + kk + 1)
          and a2 = Array.unsafe_get ad (arow + kk + 2)
          and a3 = Array.unsafe_get ad (arow + kk + 3) in
          if a0 <> 0.0 || a1 <> 0.0 || a2 <> 0.0 || a3 <> 0.0 then begin
            let b0 = base + ((kk - kbase) * w) in
            let b1 = b0 + w and b2 = b0 + (2 * w) and b3 = b0 + (3 * w) in
            for j = 0 to w - 1 do
              Array.unsafe_set c (crow + j)
                (Array.unsafe_get c (crow + j)
                +. (a0 *. Array.unsafe_get packed (b0 + j))
                +. (a1 *. Array.unsafe_get packed (b1 + j))
                +. (a2 *. Array.unsafe_get packed (b2 + j))
                +. (a3 *. Array.unsafe_get packed (b3 + j)))
            done
          end;
          k := kk + 4
        done;
        while !k < k1 do
          let kk = !k in
          let aik = Array.unsafe_get ad (arow + kk) in
          if aik <> 0.0 then begin
            let brow = base + ((kk - kbase) * w) in
            for j = 0 to w - 1 do
              Array.unsafe_set c (crow + j)
                (Array.unsafe_get c (crow + j)
                +. (aik *. Array.unsafe_get packed (brow + j)))
            done
          end;
          k := kk + 1
        done
      done;
      j0 := j1;
      incr jt
    done;
    k0 := k1;
    incr kt
  done

(* Fan row panels of [0, m) across [pool], chunk = one panel so the
   cursor balances stragglers.  [panel_cost_ns] prices one index. *)
let fan_rows pool ~m ~row_cost_ns body =
  let panel =
    Tune.chunk ~cost_hint_ns:row_cost_ns ~size:(Pool.size pool) ~n:m ()
  in
  let n_panels = (m + panel - 1) / panel in
  Pool.parallel_for ~chunk:1 pool ~n:n_panels (fun pi ->
      let ilo = pi * panel in
      body ~ilo ~ihi:(Stdlib.min m (ilo + panel)))

let matmul_into_data a b c =
  let m = a.rows and n = b.cols and p = a.cols in
  let ad = a.data and bd = b.data in
  let flops = float_of_int m *. float_of_int n *. float_of_int p in
  match par_pool ~flops with
  | Some pool when m >= 2 ->
      let packed, offsets, njt = pack_b bd ~n ~p in
      fan_rows pool ~m ~row_cost_ns:(float_of_int (n * p))
        (fun ~ilo ~ihi ->
          matmul_rows_packed ad packed offsets njt c ~n ~p ~ilo ~ihi)
  | _ -> matmul_rows ad bd c ~n ~p ~ilo:0 ~ihi:m

let matmul a b =
  assert (a.cols = b.rows);
  let c = Array.make (a.rows * b.cols) 0.0 in
  matmul_into_data a b c;
  { rows = a.rows; cols = b.cols; data = c }

let matmul_into a b ~dst =
  assert (a.cols = b.rows && dst.rows = a.rows && dst.cols = b.cols);
  Array.fill dst.data 0 (Array.length dst.data) 0.0;
  matmul_into_data a b dst.data

(* Dot-product kernel with 2×2 register blocking: each loaded element
   of [a] (resp. [b]) feeds two accumulators, halving the loads per
   multiply-add relative to the naive row-dot.  Parallel fan-out is
   over row *pairs* (plus the odd tail row as its own item), so the
   pairing alignment — hence the accumulator structure per element —
   is identical at any domain count. *)
let nt_dot ad bd ~p arow brow =
  let acc = ref 0.0 in
  for k = 0 to p - 1 do
    acc :=
      !acc +. (Array.unsafe_get ad (arow + k) *. Array.unsafe_get bd (brow + k))
  done;
  !acc

let nt_pair ad bd c ~n ~p i0 =
  let ar0 = i0 * p and ar1 = (i0 + 1) * p in
  let cr0 = i0 * n and cr1 = (i0 + 1) * n in
  let j = ref 0 in
  while !j + 1 < n do
    let jj = !j in
    let br0 = jj * p and br1 = (jj + 1) * p in
    let s00 = ref 0.0 and s01 = ref 0.0 and s10 = ref 0.0 and s11 = ref 0.0 in
    for k = 0 to p - 1 do
      let a0 = Array.unsafe_get ad (ar0 + k)
      and a1 = Array.unsafe_get ad (ar1 + k)
      and b0 = Array.unsafe_get bd (br0 + k)
      and b1 = Array.unsafe_get bd (br1 + k) in
      s00 := !s00 +. (a0 *. b0);
      s01 := !s01 +. (a0 *. b1);
      s10 := !s10 +. (a1 *. b0);
      s11 := !s11 +. (a1 *. b1)
    done;
    Array.unsafe_set c (cr0 + jj) !s00;
    Array.unsafe_set c (cr0 + jj + 1) !s01;
    Array.unsafe_set c (cr1 + jj) !s10;
    Array.unsafe_set c (cr1 + jj + 1) !s11;
    j := jj + 2
  done;
  if !j < n then begin
    let br = !j * p in
    Array.unsafe_set c (cr0 + !j) (nt_dot ad bd ~p ar0 br);
    Array.unsafe_set c (cr1 + !j) (nt_dot ad bd ~p ar1 br)
  end

let nt_row ad bd c ~n ~p i =
  let ar = i * p and cr = i * n in
  for j = 0 to n - 1 do
    Array.unsafe_set c (cr + j) (nt_dot ad bd ~p ar (j * p))
  done

let matmul_nt_into_data a b c =
  let m = a.rows and n = b.rows and p = a.cols in
  let ad = a.data and bd = b.data in
  let n_pairs = m / 2 in
  let items = n_pairs + (m land 1) in
  let body idx =
    if idx < n_pairs then nt_pair ad bd c ~n ~p (2 * idx)
    else nt_row ad bd c ~n ~p (m - 1)
  in
  let flops = float_of_int m *. float_of_int n *. float_of_int p in
  match par_pool ~flops with
  | Some pool when items >= 2 ->
      let chunk =
        Tune.chunk
          ~cost_hint_ns:(2.0 *. float_of_int (n * p))
          ~size:(Pool.size pool) ~n:items ()
      in
      Pool.parallel_for ~chunk pool ~n:items body
  | _ ->
      for idx = 0 to items - 1 do
        body idx
      done

let matmul_nt a b =
  assert (a.cols = b.cols);
  let c = Array.make (a.rows * b.rows) 0.0 in
  matmul_nt_into_data a b c;
  { rows = a.rows; cols = b.rows; data = c }

let matmul_nt_into a b ~dst =
  assert (a.cols = b.cols && dst.rows = a.rows && dst.cols = b.rows);
  matmul_nt_into_data a b dst.data

(* Column slab [jlo, jlo+w) of c = aᵀ·b.  [bsl] holds that slab of [b]
   packed contiguously (p rows of width [w]); the sequential caller
   passes [b]'s own data with [w = n] and no pack.  axpy kernel, k
   (shared rows) unrolled 2× so each accumulator row element is
   touched once per two multiply-adds. *)
let tn_slab ad bsl c ~m ~n ~p ~jlo ~w =
  let k = ref 0 in
  while !k + 1 < p do
    let kk = !k in
    let ar0 = kk * m and ar1 = (kk + 1) * m in
    let br0 = kk * w and br1 = (kk + 1) * w in
    for i = 0 to m - 1 do
      let a0 = Array.unsafe_get ad (ar0 + i)
      and a1 = Array.unsafe_get ad (ar1 + i) in
      if a0 <> 0.0 || a1 <> 0.0 then begin
        let crow = (i * n) + jlo in
        for j = 0 to w - 1 do
          Array.unsafe_set c (crow + j)
            (Array.unsafe_get c (crow + j)
            +. (a0 *. Array.unsafe_get bsl (br0 + j))
            +. (a1 *. Array.unsafe_get bsl (br1 + j)))
        done
      end
    done;
    k := kk + 2
  done;
  if !k < p then begin
    let arow = !k * m and brow = !k * w in
    for i = 0 to m - 1 do
      let aki = Array.unsafe_get ad (arow + i) in
      if aki <> 0.0 then begin
        let crow = (i * n) + jlo in
        for j = 0 to w - 1 do
          Array.unsafe_set c (crow + j)
            (Array.unsafe_get c (crow + j)
            +. (aki *. Array.unsafe_get bsl (brow + j)))
        done
      end
    done
  end

let matmul_tn a b =
  assert (a.rows = b.rows);
  let m = a.cols and n = b.cols and p = a.rows in
  let c = Array.make (m * n) 0.0 in
  let ad = a.data and bd = b.data in
  let flops = float_of_int m *. float_of_int n *. float_of_int p in
  (match par_pool ~flops with
  | Some pool when n >= 2 ->
      (* Column panels; each task packs its slab of [b] into per-slot
         scratch so the stride-n row segments become stride-w. *)
      let size = Pool.size pool in
      let panel =
        Stdlib.min n
          (Tune.chunk ~cost_hint_ns:(float_of_int (m * p)) ~size ~n ())
      in
      let n_panels = (n + panel - 1) / panel in
      Pool.parallel_for ~chunk:1 pool ~n:n_panels (fun pi ->
          let jlo = pi * panel in
          let w = Stdlib.min n (jlo + panel) - jlo in
          let bsl = Arena.grab scratch id_tn_slab (p * panel) in
          for k = 0 to p - 1 do
            Array.blit bd ((k * n) + jlo) bsl (k * w) w
          done;
          tn_slab ad bsl c ~m ~n ~p ~jlo ~w)
  | _ -> tn_slab ad bd c ~m ~n ~p ~jlo:0 ~w:n);
  { rows = m; cols = n; data = c }

(* Symmetric rank-k updates: only the upper triangle is accumulated,
   then mirrored — half the multiply-adds of the general product.
   Parallel fan-out is over row panels of the triangle (each index
   owns rows [ilo, ihi) of the upper part and, for [syrk_nt], the
   matching column of the lower part); the mirror stays sequential. *)
let syrk_tn_rows ad c ~n ~p ~ilo ~ihi =
  for k = 0 to p - 1 do
    let arow = k * n in
    for i = ilo to ihi - 1 do
      let aki = Array.unsafe_get ad (arow + i) in
      if aki <> 0.0 then begin
        let crow = i * n in
        for j = i to n - 1 do
          Array.unsafe_set c (crow + j)
            (Array.unsafe_get c (crow + j)
            +. (aki *. Array.unsafe_get ad (arow + j)))
        done
      end
    done
  done

let syrk_tn a =
  let p = a.rows and n = a.cols in
  let c = Array.make (n * n) 0.0 in
  let ad = a.data in
  let flops = 0.5 *. float_of_int (n * n) *. float_of_int p in
  (match par_pool ~flops with
  | Some pool when n >= 2 ->
      (* Row cost shrinks with i (triangle); the average n·p/2 with
         one-panel chunks lets the cursor balance the skew. *)
      fan_rows pool ~m:n
        ~row_cost_ns:(0.5 *. float_of_int (n * p))
        (fun ~ilo ~ihi -> syrk_tn_rows ad c ~n ~p ~ilo ~ihi)
  | _ -> syrk_tn_rows ad c ~n ~p ~ilo:0 ~ihi:n);
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Array.unsafe_set c ((j * n) + i) (Array.unsafe_get c ((i * n) + j))
    done
  done;
  { rows = n; cols = n; data = c }

let syrk_nt_rows ad c ~m ~p ~ilo ~ihi =
  for i = ilo to ihi - 1 do
    let arow = i * p in
    for j = i to m - 1 do
      let brow = j * p in
      let acc = ref 0.0 in
      for k = 0 to p - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get ad (arow + k) *. Array.unsafe_get ad (brow + k))
      done;
      Array.unsafe_set c ((i * m) + j) !acc;
      Array.unsafe_set c ((j * m) + i) !acc
    done
  done

let syrk_nt a =
  let m = a.rows and p = a.cols in
  let c = Array.make (m * m) 0.0 in
  let ad = a.data in
  let flops = 0.5 *. float_of_int (m * m) *. float_of_int p in
  (match par_pool ~flops with
  | Some pool when m >= 2 ->
      fan_rows pool ~m
        ~row_cost_ns:(0.5 *. float_of_int (m * p))
        (fun ~ilo ~ihi -> syrk_nt_rows ad c ~m ~p ~ilo ~ihi)
  | _ -> syrk_nt_rows ad c ~m ~p ~ilo:0 ~ihi:m);
  { rows = m; cols = m; data = c }

(* Fused weighted product a·diag(w)·bᵀ.  The weighted row of [a] is
   staged once per i into a scratch panel, so no sqrt/scaled copy of
   either operand is ever materialized (this is what lets the G
   assembly drop its scaled design copies).  When [a] and [b] are
   physically the same matrix the result is symmetric and only the
   upper triangle is computed.  The stage buffer comes from the
   per-slot arena — one allocation per slot per size, not per call —
   and in the parallel path each row panel stages into its own slot's
   buffer. *)
let ntw_rows ad bd wv t c ~n ~p ~symmetric ~ilo ~ihi =
  for i = ilo to ihi - 1 do
    let arow = i * p in
    for k = 0 to p - 1 do
      Array.unsafe_set t k
        (Array.unsafe_get ad (arow + k) *. Array.unsafe_get wv k)
    done;
    let crow = i * n in
    let jlo = if symmetric then i else 0 in
    for j = jlo to n - 1 do
      let brow = j * p in
      let acc = ref 0.0 in
      for k = 0 to p - 1 do
        acc := !acc +. (Array.unsafe_get t k *. Array.unsafe_get bd (brow + k))
      done;
      Array.unsafe_set c (crow + j) !acc
    done
  done

let matmul_nt_weighted_into_data a w b c =
  let m = a.rows and n = b.rows and p = a.cols in
  let ad = a.data and bd = b.data in
  let symmetric = ad == bd && m = n in
  let flops =
    (if symmetric then 0.5 else 1.0)
    *. float_of_int m *. float_of_int n *. float_of_int p
  in
  (match par_pool ~flops with
  | Some pool when m >= 2 ->
      let row_cost =
        (if symmetric then 0.5 else 1.0) *. float_of_int (n * p)
      in
      fan_rows pool ~m ~row_cost_ns:row_cost (fun ~ilo ~ihi ->
          let t = Arena.grab scratch id_w_row p in
          ntw_rows ad bd w t c ~n ~p ~symmetric ~ilo ~ihi)
  | _ ->
      (* Arena scratch is safe exactly when this domain's slot is
         exclusively ours — inside a pool task.  A plain caller domain
         may host concurrent systhreads sharing slot 0, so it stages
         into a fresh local buffer instead. *)
      let t =
        if Pool.in_parallel () then Arena.grab scratch id_w_row p
        else Array.make p 0.0
      in
      ntw_rows ad bd w t c ~n ~p ~symmetric ~ilo:0 ~ihi:m);
  if symmetric then
    for i = 0 to m - 1 do
      for j = i + 1 to n - 1 do
        Array.unsafe_set c ((j * n) + i) (Array.unsafe_get c ((i * n) + j))
      done
    done

let matmul_nt_weighted a w b =
  assert (a.cols = b.cols && Array.length w = a.cols);
  let c = Array.make (a.rows * b.rows) 0.0 in
  matmul_nt_weighted_into_data a w b c;
  { rows = a.rows; cols = b.rows; data = c }

let matmul_nt_weighted_into a w b ~dst =
  assert (a.cols = b.cols && Array.length w = a.cols);
  assert (dst.rows = a.rows && dst.cols = b.rows);
  matmul_nt_weighted_into_data a w b dst.data

let mat_vec a x =
  assert (a.cols = Array.length x);
  let y = Array.make a.rows 0.0 in
  let ad = a.data in
  for i = 0 to a.rows - 1 do
    let arow = i * a.cols in
    let acc = ref 0.0 in
    for j = 0 to a.cols - 1 do
      acc := !acc +. (Array.unsafe_get ad (arow + j) *. Array.unsafe_get x j)
    done;
    y.(i) <- !acc
  done;
  y

let mat_tvec a x =
  assert (a.rows = Array.length x);
  let y = Array.make a.cols 0.0 in
  let ad = a.data in
  for i = 0 to a.rows - 1 do
    let arow = i * a.cols in
    let xi = Array.unsafe_get x i in
    if xi <> 0.0 then
      for j = 0 to a.cols - 1 do
        Array.unsafe_set y j
          (Array.unsafe_get y j +. (xi *. Array.unsafe_get ad (arow + j)))
      done
  done;
  y

let gram a = syrk_tn a

let outer x y =
  init (Array.length x) (Array.length y) (fun i j -> x.(i) *. y.(j))

let add_outer_inplace a c x y =
  assert (a.rows = Array.length x && a.cols = Array.length y);
  for i = 0 to a.rows - 1 do
    let cxi = c *. x.(i) in
    if cxi <> 0.0 then begin
      let arow = i * a.cols in
      for j = 0 to a.cols - 1 do
        Array.unsafe_set a.data (arow + j)
          (Array.unsafe_get a.data (arow + j) +. (cxi *. Array.unsafe_get y j))
      done
    end
  done

let quadratic_form a x =
  assert (a.rows = a.cols && a.rows = Array.length x);
  Vec.dot x (mat_vec a x)

let trace a =
  let n = Stdlib.min a.rows a.cols in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. a.data.((i * a.cols) + i)
  done;
  !acc

let frobenius a = Vec.norm2 a.data

let norm_inf a =
  let worst = ref 0.0 in
  for i = 0 to a.rows - 1 do
    let acc = ref 0.0 in
    for j = 0 to a.cols - 1 do
      acc := !acc +. abs_float a.data.((i * a.cols) + j)
    done;
    if !acc > !worst then worst := !acc
  done;
  !worst

let max_abs a = Vec.norm_inf a.data

let is_square a = a.rows = a.cols

let is_symmetric ?(tol = 1e-9) a =
  is_square a
  &&
  let ok = ref true in
  for i = 0 to a.rows - 1 do
    for j = i + 1 to a.cols - 1 do
      if abs_float (get a i j -. get a j i) > tol then ok := false
    done
  done;
  !ok

let symmetrize_inplace a =
  assert (is_square a);
  for i = 0 to a.rows - 1 do
    for j = i + 1 to a.cols - 1 do
      let m = 0.5 *. (get a i j +. get a j i) in
      set a i j m;
      set a j i m
    done
  done

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Vec.approx_equal ~tol a.data b.data

let map f a = { a with data = Array.map f a.data }

let mapi f a = init a.rows a.cols (fun i j -> f i j (get a i j))

let pp ppf a =
  Format.fprintf ppf "@[<v 0>";
  for i = 0 to a.rows - 1 do
    if i > 0 then Format.fprintf ppf "@,";
    Format.fprintf ppf "[";
    for j = 0 to a.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" (get a i j)
    done;
    Format.fprintf ppf "]"
  done;
  Format.fprintf ppf "@]"

let to_string a = Format.asprintf "%a" pp a
