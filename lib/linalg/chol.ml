type t = {
  n : int;
  l : float array; (* row-major lower triangle, full n×n *)
  jitter : float; (* diagonal boost that was applied before factorizing *)
}

exception Not_positive_definite of int

let factorize ?(jitter = 0.0) (a : Mat.t) =
  assert (Mat.is_square a);
  let n = a.Mat.rows in
  let l = Array.make (n * n) 0.0 in
  (* Copy the lower triangle (with jitter on the diagonal). *)
  for i = 0 to n - 1 do
    for j = 0 to i do
      l.((i * n) + j) <-
        (a.Mat.data.((i * n) + j) +. if i = j then jitter else 0.0)
    done
  done;
  (* Left-looking Cholesky on the packed copy. *)
  for j = 0 to n - 1 do
    let jj = (j * n) + j in
    let s = ref l.(jj) in
    for k = 0 to j - 1 do
      let ljk = l.((j * n) + k) in
      s := !s -. (ljk *. ljk)
    done;
    if !s <= 0.0 || Float.is_nan !s then raise (Not_positive_definite j);
    let d = sqrt !s in
    l.(jj) <- d;
    for i = j + 1 to n - 1 do
      let s = ref l.((i * n) + j) in
      for k = 0 to j - 1 do
        s := !s -. (l.((i * n) + k) *. l.((j * n) + k))
      done;
      l.((i * n) + j) <- !s /. d
    done
  done;
  { n; l; jitter }

(* Escalating jitter is capped relative to the matrix's mean absolute
   diagonal: past that point the "repair" would swamp the matrix itself,
   so the failure is reported as a typed fault instead of silently
   returning a factorization of mostly-jitter. *)
let jitter_cap_rel = 1e-2

let factorize_with_retry ?(max_tries = 8) a =
  let n = a.Mat.rows in
  let base = 1e-12 *. Float.max 1.0 (Mat.max_abs a) in
  let mean_diag =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. abs_float a.Mat.data.((i * n) + i)
    done;
    !s /. float_of_int (Stdlib.max n 1)
  in
  let cap = Float.max base (jitter_cap_rel *. mean_diag) in
  let site = "chol.factorize" in
  let rec go tries jitter =
    let attempt () =
      if Cbmf_robust.Inject.fire ~site then raise (Not_positive_definite 0)
      else factorize ~jitter a
    in
    match attempt () with
    | f ->
        (* A nonzero jitter means at least one attempt failed and was
           recovered; surface that to the ambient recorder. *)
        if jitter > 0.0 then
          Cbmf_robust.Diag.note
            (Cbmf_robust.Fault.Not_pd { site; dim = n; tries });
        f
    | exception Not_positive_definite _ when tries < max_tries ->
        let jitter =
          if jitter = 0.0 then base else Float.min (jitter *. 100.0) cap
        in
        go (tries + 1) jitter
    | exception Not_positive_definite _ ->
        raise
          (Cbmf_robust.Fault.Error
             (Cbmf_robust.Fault.Not_pd { site; dim = n; tries }))
  in
  go 0 0.0

let jitter f = f.jitter

let dim f = f.n

let lower f =
  Mat.init f.n f.n (fun i j -> if j <= i then f.l.((i * f.n) + j) else 0.0)

let forward_sub f (b : Vec.t) =
  let n = f.n in
  assert (Array.length b = n);
  let z = Array.copy b in
  for i = 0 to n - 1 do
    let s = ref z.(i) in
    for k = 0 to i - 1 do
      s := !s -. (f.l.((i * n) + k) *. z.(k))
    done;
    z.(i) <- !s /. f.l.((i * n) + i)
  done;
  z

let backward_sub_t f (z : Vec.t) =
  (* Solve lᵀ x = z. *)
  let n = f.n in
  let x = Array.copy z in
  for i = n - 1 downto 0 do
    let s = ref x.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (f.l.((k * n) + i) *. x.(k))
    done;
    x.(i) <- !s /. f.l.((i * n) + i)
  done;
  x

let solve_vec f b = backward_sub_t f (forward_sub f b)

let solve_lower = forward_sub

(* Multi-RHS triangular solves (TRSM).  Columns are processed in
   panels so the substitution streams whole rows of the panel —
   contiguous in the row-major layout — instead of strided single
   columns.  The forward solve skips every row above the first nonzero
   of the panel: for an RHS whose column [c] starts at row [r] (e.g. a
   block-diagonal stacked design, or an identity) rows [< r] of the
   solution are exactly zero and never touched. *)
let panel_cols = 32

let solve_lower_mat_inplace f (x : Mat.t) =
  assert (x.Mat.rows = f.n);
  let n = f.n and nc = x.Mat.cols in
  let xd = x.Mat.data and l = f.l in
  let c0 = ref 0 in
  while !c0 < nc do
    let c1 = Stdlib.min nc (!c0 + panel_cols) in
    let lo = !c0 and hi = c1 - 1 in
    (* First row with a nonzero entry in this panel. *)
    let start = ref 0 in
    (let continue_ = ref true in
     while !continue_ && !start < n do
       let row = !start * nc in
       let nonzero = ref false in
       for c = lo to hi do
         if Array.unsafe_get xd (row + c) <> 0.0 then nonzero := true
       done;
       if !nonzero then continue_ := false else incr start
     done);
    for r = !start to n - 1 do
      let lrow = r * n in
      let xrow = r * nc in
      for k = !start to r - 1 do
        let lrk = Array.unsafe_get l (lrow + k) in
        if lrk <> 0.0 then begin
          let krow = k * nc in
          for c = lo to hi do
            Array.unsafe_set xd (xrow + c)
              (Array.unsafe_get xd (xrow + c)
              -. (lrk *. Array.unsafe_get xd (krow + c)))
          done
        end
      done;
      let d = Array.unsafe_get l (lrow + r) in
      for c = lo to hi do
        Array.unsafe_set xd (xrow + c) (Array.unsafe_get xd (xrow + c) /. d)
      done
    done;
    c0 := c1
  done

let solve_lower_mat f b =
  let x = Mat.copy b in
  solve_lower_mat_inplace f x;
  x

(* Backward panel solve lᵀ X = Z, in place. *)
let solve_upper_t_mat_inplace f (x : Mat.t) =
  assert (x.Mat.rows = f.n);
  let n = f.n and nc = x.Mat.cols in
  let xd = x.Mat.data and l = f.l in
  let c0 = ref 0 in
  while !c0 < nc do
    let c1 = Stdlib.min nc (!c0 + panel_cols) in
    let lo = !c0 and hi = c1 - 1 in
    for r = n - 1 downto 0 do
      let xrow = r * nc in
      for k = r + 1 to n - 1 do
        let lkr = Array.unsafe_get l ((k * n) + r) in
        if lkr <> 0.0 then begin
          let krow = k * nc in
          for c = lo to hi do
            Array.unsafe_set xd (xrow + c)
              (Array.unsafe_get xd (xrow + c)
              -. (lkr *. Array.unsafe_get xd (krow + c)))
          done
        end
      done;
      let d = Array.unsafe_get l ((r * n) + r) in
      for c = lo to hi do
        Array.unsafe_set xd (xrow + c) (Array.unsafe_get xd (xrow + c) /. d)
      done
    done;
    c0 := c1
  done

let solve_mat f (b : Mat.t) =
  assert (b.Mat.rows = f.n);
  let x = Mat.copy b in
  solve_lower_mat_inplace f x;
  solve_upper_t_mat_inplace f x;
  x

let inverse f =
  let inv = solve_mat f (Mat.identity f.n) in
  Mat.symmetrize_inplace inv;
  inv

let log_det f =
  let acc = ref 0.0 in
  for i = 0 to f.n - 1 do
    acc := !acc +. log f.l.((i * f.n) + i)
  done;
  2.0 *. !acc

let det f = exp (log_det f)

let quad_inv f b =
  let z = forward_sub f b in
  Vec.norm2_sq z

let trace_inverse f =
  (* Tr(a⁻¹) = ‖l⁻¹‖_F²: solve l z = e_i for each i and accumulate. *)
  let n = f.n in
  let acc = ref 0.0 in
  let e = Array.make n 0.0 in
  for i = 0 to n - 1 do
    Array.fill e 0 n 0.0;
    e.(i) <- 1.0;
    (* Only components ≥ i of l⁻¹ e_i are nonzero; exploit that. *)
    let z = Array.make n 0.0 in
    for r = i to n - 1 do
      let s = ref e.(r) in
      for k = i to r - 1 do
        s := !s -. (f.l.((r * n) + k) *. z.(k))
      done;
      z.(r) <- !s /. f.l.((r * n) + r);
      acc := !acc +. (z.(r) *. z.(r))
    done
  done;
  !acc

let lower_inverse_t f =
  (* Row u of the result is l⁻¹·e_u, i.e. the result is (l⁻¹)ᵀ.  The
     solve for e_u only touches components ≥ u, so each row write is
     contiguous and the total cost is Σ_u (n−u)²/2 = n³/6. *)
  let n = f.n in
  let out = Mat.create n n in
  let od = out.Mat.data in
  for u = 0 to n - 1 do
    let row = u * n in
    od.(row + u) <- 1.0 /. f.l.((u * n) + u);
    for r = u + 1 to n - 1 do
      let lrow = r * n in
      let s = ref 0.0 in
      for w = u to r - 1 do
        s := !s -. (f.l.(lrow + w) *. od.(row + w))
      done;
      od.(row + r) <- !s /. f.l.(lrow + r)
    done
  done;
  out

let mahalanobis_sq f x mu = quad_inv f (Vec.sub x mu)

let sample_transform f z =
  let n = f.n in
  assert (Array.length z = n);
  Array.init n (fun i ->
      let s = ref 0.0 in
      for k = 0 to i do
        s := !s +. (f.l.((i * n) + k) *. z.(k))
      done;
      !s)

let rank1_update f (v : Vec.t) =
  let n = f.n in
  assert (Array.length v = n);
  for j = 0 to n - 1 do
    let ljj = f.l.((j * n) + j) in
    let r = sqrt ((ljj *. ljj) +. (v.(j) *. v.(j))) in
    let c = r /. ljj in
    let s = v.(j) /. ljj in
    f.l.((j * n) + j) <- r;
    for i = j + 1 to n - 1 do
      let lij = (f.l.((i * n) + j) +. (s *. v.(i))) /. c in
      f.l.((i * n) + j) <- lij;
      v.(i) <- (c *. v.(i)) -. (s *. lij)
    done
  done

let copy f = { f with l = Array.copy f.l }

let of_scaled_identity n c =
  assert (n > 0 && c > 0.0);
  let l = Array.make (n * n) 0.0 in
  let d = sqrt c in
  for i = 0 to n - 1 do
    l.((i * n) + i) <- d
  done;
  { n; l; jitter = 0.0 }

let is_positive_definite a =
  match factorize a with
  | _ -> true
  | exception Not_positive_definite _ -> false

let nearest_pd_inplace ?(floor = 1e-10) a =
  Mat.symmetrize_inplace a;
  let scale = Float.max 1.0 (Mat.max_abs a) in
  let rec go boost tries =
    if tries > 60 then invalid_arg "Chol.nearest_pd_inplace: cannot repair"
    else if is_positive_definite a then ()
    else begin
      Mat.add_diag_inplace a boost;
      go (boost *. 10.0) (tries + 1)
    end
  in
  go (floor *. scale) 0
