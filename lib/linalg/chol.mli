(** Cholesky factorization of symmetric positive definite matrices and
    the solves, inverses and determinants built on it.

    A factorization holds the lower-triangular factor [l] with
    [a = l lᵀ].  All solve routines are O(n²) once the factor exists. *)

type t

exception Not_positive_definite of int
(** Raised with the failing pivot index when a matrix is not (numerically)
    positive definite. *)

val factorize : ?jitter:float -> Mat.t -> t
(** [factorize a] computes the lower Cholesky factor of symmetric
    positive definite [a].  [jitter] (default [0.]) is added to the
    diagonal before factorizing — useful for nearly-singular PD
    matrices.  Raises {!Not_positive_definite} on failure.  Only the
    lower triangle of [a] is read. *)

val factorize_with_retry : ?max_tries:int -> Mat.t -> t
(** Like {!factorize} but on failure retries with exponentially growing
    jitter, starting from [1e-12 · max_abs a] and capped at
    [1e-2 · mean |diag a|] — past that scale the repaired matrix would
    be mostly jitter.  The jitter that was finally applied is recorded
    in the result (see {!jitter}); a recovery that needed jitter is
    noted in the ambient {!Cbmf_robust.Diag} recorder.  Raises a typed
    [Cbmf_robust.Fault.Error (Not_pd _)] after [max_tries] (default 8)
    failed retries.  Honors the ["chol.factorize"] injection site. *)

val jitter : t -> float
(** Diagonal boost that was applied before the successful
    factorization ([0.] when the first attempt succeeded). *)

val dim : t -> int

val lower : t -> Mat.t
(** The lower-triangular factor [l] (fresh copy). *)

val solve_vec : t -> Vec.t -> Vec.t
(** [solve_vec f b] solves [a x = b]. *)

val solve_mat : t -> Mat.t -> Mat.t
(** [solve_mat f b] solves [a x = b] for all columns at once via
    panel-blocked forward + backward substitution. *)

val solve_lower : t -> Vec.t -> Vec.t
(** [solve_lower f b] solves [l z = b] (forward substitution only);
    useful for whitening since [zᵀz = bᵀ a⁻¹ b]. *)

val solve_lower_mat : t -> Mat.t -> Mat.t
(** [solve_lower_mat f b] solves [l x = b] for all columns at once
    (multi-RHS TRSM).  Columns are processed in panels that stream
    contiguous rows; leading all-zero rows of a panel are skipped, so
    sparse stacked right-hand sides (block-diagonal designs, identity
    columns) pay only for their nonzero row range. *)

val solve_lower_mat_inplace : t -> Mat.t -> unit
(** In-place variant of {!solve_lower_mat}: overwrites [b] with the
    solution (no allocation — for workspace-reusing hot paths). *)

val inverse : t -> Mat.t
(** [a⁻¹] (symmetric). *)

val log_det : t -> float
(** [log det a]. *)

val det : t -> float

val quad_inv : t -> Vec.t -> float
(** [quad_inv f b] is [bᵀ a⁻¹ b], computed stably via {!solve_lower}. *)

val trace_inverse : t -> float
(** [Tr(a⁻¹)] in O(n³/3) without forming the inverse. *)

val lower_inverse_t : t -> Mat.t
(** [(l⁻¹)ᵀ] as a dense matrix: row [u] holds [l⁻¹·e_u] (supported on
    columns ≥ u), computed in O(n³/6).  Selected entries of [a⁻¹] are
    then contiguous row dots, [a⁻¹[u,v] = Σ_w out[u,w]·out[v,w]] —
    cheaper than a full inverse when only a few entries are needed. *)

val mahalanobis_sq : t -> Vec.t -> Vec.t -> float
(** [mahalanobis_sq f x mu] is [(x-mu)ᵀ a⁻¹ (x-mu)]. *)

val sample_transform : t -> Vec.t -> Vec.t
(** [sample_transform f z] is [l z]; maps iid standard normals to
    draws with covariance [a]. *)

val rank1_update : t -> Vec.t -> unit
(** [rank1_update f v] updates the factorization in place so that it
    factors [a + v·vᵀ] (classic "cholupdate", O(n²)).  [v] is
    destroyed. *)

val copy : t -> t
(** Independent copy of the factorization (for snapshot/rollback
    around {!rank1_update} sequences). *)

val of_scaled_identity : int -> float -> t
(** Factorization of [c·I] ([c > 0]) without building the matrix —
    the natural seed for incremental rank-1 construction. *)

val is_positive_definite : Mat.t -> bool
(** Whether symmetric [a] admits a Cholesky factorization. *)

val nearest_pd_inplace : ?floor:float -> Mat.t -> unit
(** Project a symmetric matrix onto the PD cone (approximately) by
    symmetrizing and raising the diagonal until {!factorize} succeeds;
    [floor] (default [1e-10]) scales the initial diagonal boost.  Cheap
    guard used by EM updates. *)
