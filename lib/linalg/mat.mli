(** Dense real matrices, row-major, backed by a flat [float array].

    The record fields are exposed so that performance-critical code can
    index [data] directly ([data.(i * cols + j)] is element [(i, j)]).
    All functions check dimensions with assertions. *)

type t = private { rows : int; cols : int; data : float array }

(** {1 Construction} *)

val create : int -> int -> t
(** [create r c] is a fresh zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init r c f] has element [(i, j)] equal to [f i j]. *)

val make : int -> int -> float -> t

val identity : int -> t

val diag : Vec.t -> t
(** Square matrix with the given diagonal. *)

val scalar : int -> float -> t
(** [scalar n c] is [c] times the [n]-identity. *)

val of_arrays : float array array -> t
(** Rows given as arrays; all rows must have equal length. *)

val of_rows : Vec.t list -> t

val copy : t -> t

val unsafe_of_flat : rows:int -> cols:int -> float array -> t
(** Wrap an existing flat row-major array without copying.  The array
    length must be [rows * cols]; the caller must not alias it in ways
    that violate matrix invariants. *)

(** {1 Size and access} *)

val dim : t -> int * int
(** [(rows, cols)]. *)

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val update : t -> int -> int -> (float -> float) -> unit

val row : t -> int -> Vec.t
(** Fresh copy of a row. *)

val col : t -> int -> Vec.t
(** Fresh copy of a column. *)

val set_row : t -> int -> Vec.t -> unit

val set_col : t -> int -> Vec.t -> unit

val diagonal : t -> Vec.t
(** Fresh copy of the main diagonal (square not required; length is
    [min rows cols]). *)

val submatrix : t -> row0:int -> col0:int -> rows:int -> cols:int -> t

val submatrix_into : t -> row0:int -> col0:int -> dst:t -> unit
(** Copy the [dim dst]-shaped block of [a] at [(row0, col0)] into
    [dst], overwriting it — the allocation-free {!submatrix}. *)

val select_cols : t -> int array -> t
(** [select_cols a idx] is the matrix whose [j]-th column is column
    [idx.(j)] of [a]. *)

val transpose : t -> t

(** {1 Arithmetic} *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val add_inplace : t -> t -> unit
(** [add_inplace a b] sets [a <- a + b]. *)

val scale_inplace : t -> float -> unit

val add_scaled_inplace : t -> float -> t -> unit
(** [add_scaled_inplace a c b] sets [a <- a + c*b]. *)

val add_diag_inplace : t -> float -> unit
(** Add a constant to the main diagonal (ridge/jitter). *)

(** {2 GEMM}

    The blocked kernels fan output panels across the shared
    {!Cbmf_parallel.Pool.default} pool when it has more than one
    domain, the call is not already inside a pool task, and the
    estimated work clears {!Cbmf_parallel.Tune.gemm_fanout}.  The
    parallel paths share their per-element accumulation order, unroll
    grouping and zero-skip expressions with the sequential kernels, so
    results are bit-identical at any [CBMF_DOMAINS]; a 1-domain pool
    pays nothing (no packing, no gate traffic).  The [_into] variants
    write into a caller-owned destination (fully overwriting it) so
    hot loops can reuse arena buffers instead of allocating. *)

val matmul : t -> t -> t
(** [matmul a b] is [a * b] (cache-blocked, k-unrolled kernel; the
    parallel path packs [b] into tile-contiguous panels once per
    call). *)

val matmul_into : t -> t -> dst:t -> unit

val matmul_nt : t -> t -> t
(** [matmul_nt a b] is [a * bᵀ] (2×2 register-blocked dot kernel;
    parallel fan-out is over row pairs so the pairing alignment is
    domain-count-invariant). *)

val matmul_nt_into : t -> t -> dst:t -> unit

val matmul_tn : t -> t -> t
(** [matmul_tn a b] is [aᵀ * b] (2×-unrolled axpy kernel; the parallel
    path packs each task's column slab of [b] into per-worker arena
    scratch). *)

val matmul_naive : t -> t -> t
(** Reference triple-loop [a * b]: oracle for the blocked kernels and
    "before" baseline for the bench harness. *)

val matmul_nt_naive : t -> t -> t
(** Reference row-dot [a * bᵀ] (see {!matmul_naive}). *)

val syrk_tn : t -> t
(** [syrk_tn a] is the symmetric rank-k update [aᵀ a], computing only
    the upper triangle and mirroring — half the work of {!matmul_tn}. *)

val syrk_nt : t -> t
(** [syrk_nt a] is [a aᵀ], upper triangle only then mirrored. *)

val matmul_nt_weighted : t -> Vec.t -> t -> t
(** [matmul_nt_weighted a w b] is [a · diag(w) · bᵀ] with the weighting
    fused into the kernel (no scaled copy of [a] or [b] is formed).
    When [a] and [b] are physically the same matrix only the upper
    triangle is computed and mirrored.  The staged row lives in
    per-worker arena scratch, so repeated calls allocate nothing. *)

val matmul_nt_weighted_into : t -> Vec.t -> t -> dst:t -> unit

val mat_vec : t -> Vec.t -> Vec.t
(** [mat_vec a x] is [a x]. *)

val mat_tvec : t -> Vec.t -> Vec.t
(** [mat_tvec a x] is [aᵀ x]. *)

val gram : t -> t
(** [gram a] is [aᵀ a] (symmetric). *)

val outer : Vec.t -> Vec.t -> t
(** [outer x y] is [x yᵀ]. *)

val add_outer_inplace : t -> float -> Vec.t -> Vec.t -> unit
(** [add_outer_inplace a c x y] sets [a <- a + c · x yᵀ]. *)

val quadratic_form : t -> Vec.t -> float
(** [quadratic_form a x] is [xᵀ a x] (square [a]). *)

(** {1 Reductions and predicates} *)

val trace : t -> float

val frobenius : t -> float

val norm_inf : t -> float
(** Max absolute row sum. *)

val max_abs : t -> float
(** Largest absolute entry. *)

val is_square : t -> bool

val is_symmetric : ?tol:float -> t -> bool

val symmetrize_inplace : t -> unit
(** Replace [a] with [(a + aᵀ)/2] (square [a]). *)

val approx_equal : ?tol:float -> t -> t -> bool

(** {1 Maps} *)

val map : (float -> float) -> t -> t

val mapi : (int -> int -> float -> float) -> t -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
