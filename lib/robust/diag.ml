type t = { mutex : Mutex.t; mutable faults : Fault.t list; mutable n : int }

let create () = { mutex = Mutex.create (); faults = []; n = 0 }

let record d f =
  Mutex.lock d.mutex;
  d.faults <- f :: d.faults;
  d.n <- d.n + 1;
  Mutex.unlock d.mutex

let snapshot d =
  Mutex.lock d.mutex;
  let fs = d.faults in
  Mutex.unlock d.mutex;
  fs

let faults d =
  let fs = Array.of_list (snapshot d) in
  Array.sort Fault.compare fs;
  fs

let count d =
  Mutex.lock d.mutex;
  let n = d.n in
  Mutex.unlock d.mutex;
  n

let count_class d c =
  List.fold_left
    (fun acc f -> if Fault.class_of f = c then acc + 1 else acc)
    0 (snapshot d)

let is_empty d = count d = 0

let clear d =
  Mutex.lock d.mutex;
  d.faults <- [];
  d.n <- 0;
  Mutex.unlock d.mutex

let summary d =
  let fs = faults d in
  if Array.length fs = 0 then "no faults recorded"
  else begin
    let buf = Buffer.create 256 in
    let i = ref 0 in
    let n = Array.length fs in
    while !i < n do
      let s = Fault.to_string fs.(!i) in
      let j = ref (!i + 1) in
      while !j < n && String.equal (Fault.to_string fs.(!j)) s do
        incr j
      done;
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      if !j - !i > 1 then Buffer.add_string buf (Printf.sprintf "%s (x%d)" s (!j - !i))
      else Buffer.add_string buf s;
      i := !j
    done;
    Buffer.contents buf
  end

(* Ambient recorder: a single word read, so checking it from worker
   domains is cheap and race-free. *)
let current : t option Atomic.t = Atomic.make None

let with_current d f =
  let prev = Atomic.get current in
  Atomic.set current (Some d);
  Fun.protect ~finally:(fun () -> Atomic.set current prev) f

let note f = match Atomic.get current with Some d -> record d f | None -> ()
