type config = { seed : int64; prob : float; sites : string list; all : bool }

(* Flat ref checked first by [fire]: the disarmed cost is one load. *)
let on = ref false

let cfg = ref { seed = 0L; prob = 0.0; sites = []; all = false }

type scope = { mutable key : int; mutable ord : int }

let scope : scope Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { key = 0; ord = 0 })

let armed () = !on

let arm ?(seed = 0) ?(prob = 0.05) ~sites () =
  cfg :=
    {
      seed = Int64.of_int seed;
      prob;
      sites;
      all = List.exists (String.equal "all") sites;
    };
  (* Restart the arming domain's sequential decision stream, so each
     armed experiment is reproducible regardless of what ran before it
     in the same process. *)
  let s = Domain.DLS.get scope in
  s.key <- 0;
  s.ord <- 0;
  on := true

let disarm () = on := false

(* splitmix64 finalizer — the same mixer Rng uses, duplicated here so
   cbmf_robust stays dependency-free. *)
let mix z =
  let open Int64 in
  let z = add z 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let decision c site key ord =
  let h = mix (Int64.add c.seed (Int64.of_int (Hashtbl.hash site))) in
  let h = mix (Int64.add h (Int64.of_int key)) in
  let h = mix (Int64.add h (Int64.of_int ord)) in
  let bits = Int64.shift_right_logical h 11 in
  Int64.to_float bits *. 0x1.0p-53 < c.prob

let fire ~site =
  !on
  &&
  let c = !cfg in
  (c.all || List.exists (String.equal site) c.sites)
  &&
  (* The ordinal advances only for armed sites, so the decision stream
     of one site does not depend on unarmed guards being crossed. *)
  let s = Domain.DLS.get scope in
  let ord = s.ord in
  s.ord <- ord + 1;
  decision c site s.key ord

let with_scope ~key f =
  let s = Domain.DLS.get scope in
  let saved_key = s.key and saved_ord = s.ord in
  s.key <- key;
  s.ord <- 0;
  Fun.protect
    ~finally:(fun () ->
      s.key <- saved_key;
      s.ord <- saved_ord)
    f

(* Environment arming, read once at load: lets `dune` rules and CI turn
   injection on for a whole executable without code changes. *)
let () =
  match Sys.getenv_opt "CBMF_FAULT_SITES" with
  | Some s when String.trim s <> "" ->
      let sites =
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun x -> x <> "")
      in
      let geti v d =
        match Sys.getenv_opt v with
        | Some x -> ( match int_of_string_opt (String.trim x) with Some i -> i | None -> d)
        | None -> d
      in
      let getf v d =
        match Sys.getenv_opt v with
        | Some x -> (
            match float_of_string_opt (String.trim x) with Some f -> f | None -> d)
        | None -> d
      in
      arm ~seed:(geti "CBMF_FAULT_SEED" 0)
        ~prob:(getf "CBMF_FAULT_PROB" 0.05)
        ~sites ()
  | _ -> ()
