type t =
  | Not_pd of { site : string; dim : int; tries : int }
  | Singular of { site : string; dim : int }
  | Non_finite of { site : string; what : string; index : int }
  | Em_divergence of { iteration : int; nlml_prev : float; nlml : float }
  | Sim_failure of { site : string; state : int; sample : int; tries : int }
  | Worker_error of { site : string; message : string }
  | Bad_snapshot of { site : string; reason : string }
  | Early_stop of { site : string; step : int; reason : string }

exception Error of t

type class_ =
  | C_not_pd
  | C_singular
  | C_non_finite
  | C_em_divergence
  | C_sim_failure
  | C_worker_error
  | C_bad_snapshot
  | C_early_stop

let class_of = function
  | Not_pd _ -> C_not_pd
  | Singular _ -> C_singular
  | Non_finite _ -> C_non_finite
  | Em_divergence _ -> C_em_divergence
  | Sim_failure _ -> C_sim_failure
  | Worker_error _ -> C_worker_error
  | Bad_snapshot _ -> C_bad_snapshot
  | Early_stop _ -> C_early_stop

let class_name = function
  | C_not_pd -> "not-pd"
  | C_singular -> "singular"
  | C_non_finite -> "non-finite"
  | C_em_divergence -> "em-divergence"
  | C_sim_failure -> "sim-failure"
  | C_worker_error -> "worker-error"
  | C_bad_snapshot -> "bad-snapshot"
  | C_early_stop -> "early-stop"

let site = function
  | Not_pd { site; _ }
  | Singular { site; _ }
  | Non_finite { site; _ }
  | Sim_failure { site; _ }
  | Worker_error { site; _ }
  | Bad_snapshot { site; _ }
  | Early_stop { site; _ } ->
      site
  | Em_divergence _ -> "em"

let to_string = function
  | Not_pd { site; dim; tries } ->
      Printf.sprintf "not-pd @%s: %dx%d matrix left the PD cone (%d tries)"
        site dim dim tries
  | Singular { site; dim } ->
      Printf.sprintf "singular @%s: singular system (dim %d)" site dim
  | Non_finite { site; what; index } ->
      Printf.sprintf "non-finite @%s: NaN/Inf in %s (index %d)" site what index
  | Em_divergence { iteration; nlml_prev; nlml } ->
      Printf.sprintf "em-divergence @iter %d: NLML %.6g -> %.6g" iteration
        nlml_prev nlml
  | Sim_failure { site; state; sample; tries } ->
      Printf.sprintf "sim-failure @%s: state %d sample %d failed %d times" site
        state sample tries
  | Worker_error { site; message } ->
      Printf.sprintf "worker-error @%s: %s" site message
  | Bad_snapshot { site; reason } ->
      Printf.sprintf "bad-snapshot @%s: %s" site reason
  | Early_stop { site; step; reason } ->
      Printf.sprintf "early-stop @%s: stopped at step %d (%s)" site step reason

let () =
  Printexc.register_printer (function
    | Error f -> Some (Printf.sprintf "Cbmf_robust.Fault.Error(%s)" (to_string f))
    | _ -> None)

let compare a b = Stdlib.compare (to_string a) (to_string b)
