(** Per-run fault recorder.

    A [Diag.t] accumulates every {!Fault.t} observed (and recovered
    from) during one pipeline run — an EM fit, a Monte-Carlo
    generation.  Recording is thread-safe (faults may arrive from pool
    worker domains) and reading is deterministic: {!faults} returns the
    recorded set sorted by {!Fault.compare}, so reports are identical
    at any domain count.

    An optional process-wide "current" recorder lets deeply nested code
    (e.g. jitter recovery inside [Chol.factorize_with_retry]) note
    faults without threading a recorder through every signature:
    {!Em.run} installs its per-run recorder for the duration of the
    fit via {!with_current}. *)

type t

val create : unit -> t

val record : t -> Fault.t -> unit
(** Append a fault (thread-safe). *)

val faults : t -> Fault.t array
(** All recorded faults, sorted deterministically. *)

val count : t -> int

val count_class : t -> Fault.class_ -> int

val is_empty : t -> bool

val clear : t -> unit

val summary : t -> string
(** Multi-line report: one line per distinct fault with a repeat
    count, deterministic order. *)

val with_current : t -> (unit -> 'a) -> 'a
(** [with_current d f] installs [d] as the ambient recorder while [f]
    runs (restoring the previous one on exit, exception-safe). *)

val note : Fault.t -> unit
(** Record into the ambient recorder if one is installed; otherwise a
    no-op.  Safe to call from any domain. *)
