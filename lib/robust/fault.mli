(** Typed fault taxonomy for the C-BMF pipeline.

    Every recoverable numerical or simulation failure in the system is
    described by one {!t} value carrying enough context (site name,
    iteration / sample index, dimension) to diagnose it after the fact.
    Recovery code records faults in a {!Diag} recorder; unrecoverable
    failures raise {!Error} instead of ad-hoc exceptions, so callers can
    match on the taxonomy rather than on module-private exceptions. *)

type t =
  | Not_pd of { site : string; dim : int; tries : int }
      (** A matrix left the positive-definite cone at [site]; [tries]
          is the number of failed (jittered) factorization attempts. *)
  | Singular of { site : string; dim : int }
      (** A linear solve met a numerically singular system. *)
  | Non_finite of { site : string; what : string; index : int }
      (** A NaN/Inf appeared in [what] at [site]; [index] is the EM
          iteration or sample index, whichever applies. *)
  | Em_divergence of { iteration : int; nlml_prev : float; nlml : float }
      (** The EM objective increased sharply instead of decreasing. *)
  | Sim_failure of { site : string; state : int; sample : int; tries : int }
      (** A Monte-Carlo sample's simulation failed [tries] times. *)
  | Worker_error of { site : string; message : string }
      (** An unclassified exception escaped a pipeline stage. *)
  | Bad_snapshot of { site : string; reason : string }
      (** A persisted model snapshot could not be decoded at [site]
          (truncated file, checksum mismatch, unknown format version,
          malformed payload).  Loading never crashes on bad bytes — it
          raises this typed fault instead. *)
  | Early_stop of { site : string; step : int; reason : string }
      (** An iterative front-end pass (greedy S-OMP selection, a CV
          fold) terminated before its requested length at [step] —
          e.g. every candidate column was exhausted, or a refit went
          rank-deficient.  Recoverable by construction (the pass
          returns its prefix), but a silently truncated pass skews
          model selection, so the truncation is recorded instead of
          being swallowed. *)

exception Error of t
(** Raised when a fault cannot be recovered locally. *)

type class_ =
  | C_not_pd
  | C_singular
  | C_non_finite
  | C_em_divergence
  | C_sim_failure
  | C_worker_error
  | C_bad_snapshot
  | C_early_stop

val class_of : t -> class_

val class_name : class_ -> string

val site : t -> string
(** The named site the fault was observed at ("em" for
    {!Em_divergence}, which has no site of its own). *)

val to_string : t -> string
(** One-line human-readable rendering, stable across runs for identical
    faults (used to sort {!Diag} reports deterministically). *)

val compare : t -> t -> int
(** Deterministic total order (by rendered string). *)
