(** Deterministic, seeded fault injection.

    Production code guards its failure-prone operations with named
    sites — ["chol.factorize"], ["mna.solve"], ["mc.sample"],
    ["posterior.compute"], plus the serving tier's ["serve.decode"],
    ["serve.deadline"] and the chaos sites ["serve.accept_drop"],
    ["serve.slow_reply"], ["serve.torn_frame"], ["serve.worker_crash"]
    (see [Cbmf_serve.Server]) — by asking {!fire} whether the operation
    should be made to fail.  When the harness is disarmed (the default)
    {!fire} is a single flat-ref read returning [false]; there is no
    hashing, no allocation and no site lookup, so shipping the guards
    in the hot paths is free.

    When armed (programmatically via {!arm}, or through the
    [CBMF_FAULT_SITES] / [CBMF_FAULT_SEED] / [CBMF_FAULT_PROB]
    environment variables at load time), each {!fire} call decides
    pseudo-randomly — but {e deterministically} — whether to inject a
    fault.  The decision is a pure hash of
    [(seed, site, scope key, ordinal)]:

    - the {e scope key} is set with {!with_scope} (e.g. the global
      Monte-Carlo sample index), making decisions independent of which
      pool domain executes the work and of execution order;
    - the {e ordinal} counts armed {!fire} calls inside the current
      scope, so repeated attempts (retries) draw fresh decisions.

    Code that runs sequentially on one domain (the EM loop) may call
    {!fire} without a scope; the ordinal then advances monotonically on
    that domain, which is deterministic for a fixed call sequence.
    Parallel code MUST wrap each unit of work in {!with_scope} keyed by
    a stable index, or injected faults will depend on the domain
    count. *)

val armed : unit -> bool

val arm : ?seed:int -> ?prob:float -> sites:string list -> unit -> unit
(** Enable injection at the named [sites] (["all"] matches every site)
    with per-call probability [prob] (default [0.05]) and the given
    [seed] (default [0]).  Resets the arming domain's sequential
    decision stream (scope key and ordinal), so each armed experiment
    reproduces regardless of what ran earlier in the process. *)

val disarm : unit -> unit

val fire : site:string -> bool
(** [fire ~site] is [true] when an injected fault should be raised at
    [site] now.  Always [false] while disarmed (one flat-ref read). *)

val with_scope : key:int -> (unit -> 'a) -> 'a
(** [with_scope ~key f] runs [f] with injection decisions keyed by
    [key] (ordinal reset to 0), restoring the enclosing scope after —
    including the enclosing ordinal, so scoped work interleaved on the
    main domain does not perturb the sequential stream. *)
