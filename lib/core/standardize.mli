(** Standardization of a multi-state dataset for Bayesian fitting.

    The Gaussian prior of C-BMF is only meaningful when the regression
    problem is dimensionless: responses are centered per state and
    scaled by their pooled standard deviation; every non-constant basis
    column is centered per state and scaled by a pooled (shared across
    states, so template sharing is preserved) column norm; constant
    columns are dropped from the Bayesian problem and their per-state
    intercepts reconstructed when mapping coefficients back to raw
    units. *)

open Cbmf_linalg
open Cbmf_model

type t
(** The fitted transform (means, scales, dropped columns). *)

type params = {
  n_states : int;
  n_basis_raw : int;  (** M, the raw dictionary size *)
  kept : int array;  (** raw indices of the standardized columns *)
  constant_col : int option;  (** raw index of the intercept column *)
  y_means : float array;  (** per-state response centering *)
  y_scale : float;  (** pooled response scale *)
  col_means : Mat.t;  (** K × M per-state column centering *)
  col_scales : float array;  (** M pooled column scales (1 if dropped) *)
}
(** The transform as plain data — the serializable view a model
    snapshot persists.  {!params}/{!of_params} round-trip exactly. *)

val params : t -> params
(** Copy of the fitted transform's parameters (fresh arrays). *)

val of_params : params -> t
(** Rebuild a transform from persisted parameters.  Validates shapes
    and index ranges ([Invalid_argument] on inconsistent data). *)

val fit : Dataset.t -> t * Dataset.t
(** Learn the transform on a training dataset and return the
    standardized dataset (columns = kept basis functions only). *)

val apply : t -> Dataset.t -> Dataset.t
(** Standardize another dataset (e.g. a CV fold) with an existing
    transform. *)

val kept_columns : t -> int array
(** Original column indices of the standardized columns. *)

val standardize_row : t -> state:int -> Vec.t -> Vec.t
(** Map one raw dictionary row (length M) into the standardized basis
    (length M′ = kept columns), using state [state]'s centering. *)

val unstandardize_coeffs : t -> Mat.t -> Mat.t
(** Map a K×M′ coefficient matrix on the standardized problem back to
    a K×M matrix on the raw problem, filling per-state intercepts into
    the constant column (the first detected constant column, if any). *)

val response_scale : t -> float

val response_mean : t -> int -> float
(** Training mean of state [k]'s response. *)
