open Cbmf_linalg
open Cbmf_model

type config = {
  r0_grid : float array;
  sigma0_grid : float array;
  theta_max : int;
  n_folds : int;
  lambda_off : float;
}

let default_config =
  {
    r0_grid = [| 0.6; 0.9; 0.995 |];
    sigma0_grid = [| 0.1; 0.3 |];
    theta_max = 40;
    n_folds = 4;
    lambda_off = 1e-7;
  }

type result = {
  support : int array;
  r0 : float;
  sigma0 : float;
  theta : int;
  cv_error : float;
  prior : Prior.t;
}

(* Per-slot scratch shared by every grid cell a worker processes: the
   NK-sized update vector and flat response are grabbed once per pass
   and reused across cells (NK is fold-invariant, so after the first
   cell per slot these cost nothing). *)
let cell_arena = Cbmf_parallel.Arena.create ()

let id_rank1_u = Cbmf_parallel.Arena.fresh_id ()

let id_flat_y = Cbmf_parallel.Arena.fresh_id ()

(* One incremental greedy pass.  G starts at σ0²·I and grows by the
   rank-K contribution E_s·R·E_sᵀ = Σ_j (E_s·L_R·e_j)(…)ᵀ of each
   selected basis s (λ = 1), maintained as rank-1 Cholesky updates.
   [r_chol] is the pair (R(r0), lower Cholesky factor of R) — invariant
   across σ0 and folds, so {!run} factorizes it once per r0 instead of
   once per grid cell. *)
let greedy_pass_pre ~r_chol:(r, l_r) ~(train : Dataset.t) ~test ~sigma0
    ~theta_max =
  let k = train.Dataset.n_states
  and n = train.Dataset.n_samples
  and m = train.Dataset.n_basis in
  let nk = k * n in
  let theta_max = Stdlib.min theta_max (Stdlib.min (nk - 1) m) in
  assert (theta_max >= 1);
  let chol_g = Chol.of_scaled_identity nk (sigma0 *. sigma0) in
  let y = Cbmf_parallel.Arena.grab cell_arena id_flat_y nk in
  for s = 0 to k - 1 do
    Array.blit train.Dataset.response.(s) 0 y (s * n) n
  done;
  let residual = Array.map Vec.copy train.Dataset.response in
  let exclude = Array.make m false in
  let support = ref [] in
  let errors = ref [] in
  let steps = ref 0 in
  (* Hoisted out of the per-step per-j loop below: the old code built a
     fresh NK vector for every (step, j) — nk·k·θ allocations per
     pass.  A zero-fill of the shared buffer produces the same values
     bit-for-bit. *)
  let u = Cbmf_parallel.Arena.grab cell_arena id_rank1_u nk in
  (try
     for _ = 1 to theta_max do
       let s = Somp.select_next train ~residual ~exclude in
       exclude.(s) <- true;
       support := s :: !support;
       incr steps;
       (* Rank-K update of the G factor for basis s. *)
       for j = 0 to k - 1 do
         Array.fill u 0 nk 0.0;
         for st = 0 to k - 1 do
           let lrj = Mat.get l_r st j in
           if lrj <> 0.0 then begin
             let b = train.Dataset.design.(st) in
             for i = 0 to n - 1 do
               u.((st * n) + i) <- lrj *. Mat.get b i s
             done
           end
         done;
         Chol.rank1_update chol_g u
       done;
       (* Bayesian coefficients on the current support (λ = 1). *)
       let z = Chol.solve_vec chol_g y in
       let sup = Array.of_list (List.rev !support) in
       let a = Array.length sup in
       let mu = Mat.create a k in
       Array.iteri
         (fun j col ->
           let v = Array.make k 0.0 in
           for st = 0 to k - 1 do
             let b = train.Dataset.design.(st) in
             let bd = b.Mat.data and bc = b.Mat.cols in
             let acc = ref 0.0 in
             for i = 0 to n - 1 do
               acc :=
                 !acc
                 +. (Array.unsafe_get bd ((i * bc) + col)
                    *. Array.unsafe_get z ((st * n) + i))
             done;
             v.(st) <- !acc
           done;
           Mat.set_row mu j (Mat.mat_vec r v))
         sup;
       (* Residuals (eq. 34), rebuilt from the original response in
          place: each entry is fully overwritten and the old per-step
          copies are gone (the initial [Vec.copy] above made
          [residual] private to this pass). *)
       for st = 0 to k - 1 do
         let b = train.Dataset.design.(st) in
         let bd = b.Mat.data and bc = b.Mat.cols in
         let md = mu.Mat.data in
         let resp = train.Dataset.response.(st) in
         let res = residual.(st) in
         for i = 0 to n - 1 do
           let row = i * bc in
           let pred = ref 0.0 in
           for j = 0 to a - 1 do
             pred :=
               !pred
               +. (Array.unsafe_get bd (row + Array.unsafe_get sup j)
                  *. Array.unsafe_get md ((j * k) + st))
           done;
           res.(i) <- Array.unsafe_get resp i -. !pred
         done
       done;
       (* Score this θ on the held-out fold. *)
       match test with
       | None -> ()
       | Some (t : Dataset.t) ->
           let pairs =
             Array.init k (fun st ->
                 let b = t.Dataset.design.(st) in
                 let predicted =
                   Array.init b.Mat.rows (fun i ->
                       let acc = ref 0.0 in
                       for j = 0 to a - 1 do
                         acc := !acc +. (Mat.get b i sup.(j) *. Mat.get mu j st)
                       done;
                       !acc)
                 in
                 (predicted, t.Dataset.response.(st)))
           in
           errors := Metrics.relative_rms_pooled pairs :: !errors
     done
   with Not_found -> ());
  (Array.of_list (List.rev !support), Array.of_list (List.rev !errors))

let greedy_pass ~(train : Dataset.t) ~test ~r0 ~sigma0 ~theta_max =
  let r = Prior.r_of_r0 ~n_states:train.Dataset.n_states ~r0 in
  let l_r = Chol.lower (Chol.factorize_with_retry r) in
  greedy_pass_pre ~r_chol:(r, l_r) ~train ~test ~sigma0 ~theta_max

let run ?(config = default_config) (d : Dataset.t) =
  assert (Array.length config.r0_grid > 0);
  assert (Array.length config.sigma0_grid > 0);
  let pool = Cbmf_parallel.Pool.default () in
  (* --- Shared grid precomputation ------------------------------------
     Algorithm 1 prices an r0 × σ0 × fold grid of independent greedy
     passes; everything invariant across part of that nest is hoisted
     out of it:
     – the CV fold datasets (invariant across the whole grid) are
       materialized once instead of once per (r0, σ0) cell, and their
       column-norm / Bᵀy caches are warmed up front so the pool
       workers below only ever read them;
     – R(r0) and its Cholesky factor (invariant across σ0 and folds)
       are factorized once per r0 value. *)
  Dataset.warm_caches d;
  let folds =
    Array.init config.n_folds (fun fold ->
        let train, test = Dataset.split_fold d ~n_folds:config.n_folds ~fold in
        Dataset.warm_caches train;
        Dataset.warm_caches test;
        (train, test))
  in
  let r_chols =
    Array.map
      (fun r0 ->
        let r = Prior.r_of_r0 ~n_states:d.Dataset.n_states ~r0 in
        (r, Chol.lower (Chol.factorize_with_retry r)))
      config.r0_grid
  in
  (* Every (r0, σ0, fold) cell is independent: flatten the whole grid
     into one task list so the pool balances n_r0·n_σ0·n_folds units at
     once instead of n_folds at a time.  The reduction below walks the
     results in the original (r0 outer, σ0 inner, fold, θ ascending)
     order, so the selected cell — including tie-breaking — is
     identical to the sequential triple loop. *)
  let n_s0 = Array.length config.sigma0_grid in
  let n_cells =
    Array.length config.r0_grid * n_s0 * config.n_folds
  in
  let cell_errs =
    Cbmf_parallel.Pool.map ~chunk:1 pool ~n:n_cells (fun idx ->
        let r0_i = idx / (n_s0 * config.n_folds) in
        let rest = idx mod (n_s0 * config.n_folds) in
        let s0_i = rest / config.n_folds
        and fold = rest mod config.n_folds in
        let train, test = folds.(fold) in
        let _, errs =
          greedy_pass_pre ~r_chol:r_chols.(r0_i) ~train ~test:(Some test)
            ~sigma0:config.sigma0_grid.(s0_i) ~theta_max:config.theta_max
        in
        errs)
  in
  let best = ref None in
  Array.iteri
    (fun r0_i r0 ->
      Array.iteri
        (fun s0_i sigma0 ->
          let acc = ref [||] in
          let n_err = ref max_int in
          for fold = 0 to config.n_folds - 1 do
            let errs =
              cell_errs.((((r0_i * n_s0) + s0_i) * config.n_folds) + fold)
            in
            n_err := Stdlib.min !n_err (Array.length errs);
            if fold = 0 then acc := Array.copy errs
            else
              for i = 0
                   to Stdlib.min (Array.length !acc) (Array.length errs) - 1
              do
                !acc.(i) <- !acc.(i) +. errs.(i)
              done
          done;
          let n_err = Stdlib.min !n_err (Array.length !acc) in
          for theta_i = 0 to n_err - 1 do
            let e = !acc.(theta_i) /. float_of_int config.n_folds in
            match !best with
            | Some (_, _, _, e_best) when e >= e_best -> ()
            | _ -> best := Some (r0, sigma0, theta_i + 1, e)
          done)
        config.sigma0_grid)
    config.r0_grid;
  match !best with
  | None -> invalid_arg "Init.run: empty grid or degenerate data"
  | Some (r0, sigma0, theta, cv_error) ->
      (* Step 16-17: refit on all samples with the winning triple. *)
      let support, _ =
        greedy_pass ~train:d ~test:None ~r0 ~sigma0 ~theta_max:theta
      in
      let lambda = Array.make d.Dataset.n_basis config.lambda_off in
      Array.iter (fun s -> lambda.(s) <- 1.0) support;
      let prior =
        Prior.create ~lambda ~r:(Prior.r_of_r0 ~n_states:d.Dataset.n_states ~r0)
          ~sigma0
      in
      { support; r0; sigma0; theta; cv_error; prior }
