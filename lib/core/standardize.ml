open Cbmf_linalg
open Cbmf_model

type t = {
  n_states : int;
  n_basis_raw : int;
  kept : int array;
  constant_col : int option;
  y_means : float array;
  y_scale : float;
  col_means : Mat.t; (* K × M_raw *)
  col_scales : float array; (* M_raw; 1.0 for dropped columns *)
}

let fit (d : Dataset.t) =
  let k = d.Dataset.n_states
  and n = d.Dataset.n_samples
  and m = d.Dataset.n_basis in
  let y_means = Array.map Vec.mean d.Dataset.response in
  let y_var = ref 0.0 in
  for s = 0 to k - 1 do
    Array.iter
      (fun y ->
        let dv = y -. y_means.(s) in
        y_var := !y_var +. (dv *. dv))
      d.Dataset.response.(s)
  done;
  let y_scale =
    let denom = float_of_int (Stdlib.max ((k * n) - k) 1) in
    Float.max (sqrt (!y_var /. denom)) 1e-12
  in
  let col_means = Mat.create k m in
  for s = 0 to k - 1 do
    let b = d.Dataset.design.(s) in
    for j = 0 to m - 1 do
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. Mat.get b i j
      done;
      Mat.set col_means s j (!acc /. float_of_int n)
    done
  done;
  (* Pooled centered column scale. *)
  let col_scales = Array.make m 1.0 in
  let kept = ref [] and constant_col = ref None in
  for j = m - 1 downto 0 do
    let acc = ref 0.0 and mag = ref 0.0 in
    for s = 0 to k - 1 do
      let b = d.Dataset.design.(s) in
      let mu = Mat.get col_means s j in
      for i = 0 to n - 1 do
        let dv = Mat.get b i j -. mu in
        acc := !acc +. (dv *. dv);
        mag := Float.max !mag (abs_float (Mat.get b i j))
      done
    done;
    let denom = float_of_int (Stdlib.max ((k * n) - k) 1) in
    let sd = sqrt (!acc /. denom) in
    if sd <= 1e-10 *. Float.max 1.0 !mag then begin
      (* Constant (or empty) column: dropped from the Bayesian problem. *)
      if !mag > 0.0 then constant_col := Some j
    end
    else begin
      col_scales.(j) <- sd;
      kept := j :: !kept
    end
  done;
  let tr =
    {
      n_states = k;
      n_basis_raw = m;
      kept = Array.of_list !kept;
      constant_col = !constant_col;
      y_means;
      y_scale;
      col_means;
      col_scales;
    }
  in
  tr

let apply tr (d : Dataset.t) =
  assert (d.Dataset.n_states = tr.n_states);
  assert (d.Dataset.n_basis = tr.n_basis_raw);
  let design =
    Array.init tr.n_states (fun s ->
        let b = d.Dataset.design.(s) in
        Mat.init b.Mat.rows (Array.length tr.kept) (fun i j ->
            let c = tr.kept.(j) in
            (Mat.get b i c -. Mat.get tr.col_means s c) /. tr.col_scales.(c)))
  in
  let response =
    Array.init tr.n_states (fun s ->
        Array.map
          (fun y -> (y -. tr.y_means.(s)) /. tr.y_scale)
          d.Dataset.response.(s))
  in
  Dataset.create ~design ~response

let fit d =
  let tr = fit d in
  (tr, apply tr d)

let standardize_row tr ~state (row : Vec.t) =
  assert (state >= 0 && state < tr.n_states);
  assert (Array.length row = tr.n_basis_raw);
  Array.map
    (fun c -> (row.(c) -. Mat.get tr.col_means state c) /. tr.col_scales.(c))
    tr.kept

let kept_columns tr = Array.copy tr.kept

let response_scale tr = tr.y_scale

let response_mean tr k = tr.y_means.(k)

let unstandardize_coeffs tr (c : Mat.t) =
  assert (c.Mat.rows = tr.n_states);
  assert (c.Mat.cols = Array.length tr.kept);
  let out = Mat.create tr.n_states tr.n_basis_raw in
  for s = 0 to tr.n_states - 1 do
    let intercept = ref tr.y_means.(s) in
    Array.iteri
      (fun j col ->
        let raw = Mat.get c s j *. tr.y_scale /. tr.col_scales.(col) in
        Mat.set out s col raw;
        intercept := !intercept -. (raw *. Mat.get tr.col_means s col))
      tr.kept;
    match tr.constant_col with
    | Some col ->
        (* The constant basis evaluates to its stored magnitude; our
           dictionaries use exactly 1, so the coefficient is the
           intercept itself. *)
        Mat.set out s col !intercept
    | None -> ()
  done;
  out

(* The serializable view.  [t] is already plain data, so [params] is a
   defensive copy and [of_params] a validated repackaging.  Defined
   last because the field names shadow [t]'s. *)
type params = {
  n_states : int;
  n_basis_raw : int;
  kept : int array;
  constant_col : int option;
  y_means : float array;
  y_scale : float;
  col_means : Mat.t;
  col_scales : float array;
}

let params (tr : t) : params =
  {
    n_states = tr.n_states;
    n_basis_raw = tr.n_basis_raw;
    kept = Array.copy tr.kept;
    constant_col = tr.constant_col;
    y_means = Array.copy tr.y_means;
    y_scale = tr.y_scale;
    col_means = Mat.copy tr.col_means;
    col_scales = Array.copy tr.col_scales;
  }

let of_params (p : params) : t =
  let fail reason = invalid_arg ("Standardize.of_params: " ^ reason) in
  if p.n_states <= 0 then fail "n_states must be positive";
  if p.n_basis_raw < 0 then fail "negative n_basis_raw";
  if Array.length p.y_means <> p.n_states then fail "y_means length";
  if not (p.y_scale > 0.0) then fail "y_scale must be positive";
  if p.col_means.Mat.rows <> p.n_states || p.col_means.Mat.cols <> p.n_basis_raw
  then fail "col_means shape";
  if Array.length p.col_scales <> p.n_basis_raw then fail "col_scales length";
  Array.iter
    (fun s -> if not (s > 0.0) then fail "col_scales must be positive")
    p.col_scales;
  Array.iter
    (fun c -> if c < 0 || c >= p.n_basis_raw then fail "kept index out of range")
    p.kept;
  (match p.constant_col with
  | Some c when c < 0 || c >= p.n_basis_raw -> fail "constant_col out of range"
  | _ -> ());
  {
    n_states = p.n_states;
    n_basis_raw = p.n_basis_raw;
    kept = Array.copy p.kept;
    constant_col = p.constant_col;
    y_means = Array.copy p.y_means;
    y_scale = p.y_scale;
    col_means = Mat.copy p.col_means;
    col_scales = Array.copy p.col_scales;
  }
