(** Correlated Bayesian Model Fusion — Algorithm 1, end to end.

    [fit] standardizes the dataset, runs the modified-S-OMP
    cross-validated initialization (steps 1–17), refines the
    hyper-parameters by EM (steps 18–20), and maps the MAP coefficients
    back to raw units.  The result predicts any state's performance
    from a design-matrix row. *)

open Cbmf_linalg
open Cbmf_model

type config = {
  init : Init.config;
  em : Em.config;
}

val default_config : config

val fast_config : config
(** Smaller grids and iteration caps — for tests and quick sweeps. *)

val independent_config : config
(** Ablation: magnitude correlation disabled (R frozen at identity,
    r0 grid = {0}) — isolates the paper's claimed contribution over
    shared-template-only methods. *)

val init_only_config : config
(** Ablation: skip the EM refinement (steps 18–20). *)

type info = {
  r0 : float;  (** initializer's winning correlation decay *)
  sigma0_init : float;
  theta : int;  (** initializer's winning support size *)
  init_cv_error : float;
  em_iterations : int;
  em_converged : bool;
  nlml_history : float array;
  final_active : int;  (** basis functions surviving EM pruning *)
  final_sigma0 : float;  (** standardized units *)
  final_r : Mat.t;  (** K×K learned correlation *)
  fit_seconds : float;  (** CPU time of the whole fit *)
}

type fitted = {
  std : Standardize.params;
      (** the standardization learned at fit time — maps raw dictionary
          rows into the space the posterior lives in *)
  active : int array;
      (** active columns of the {e standardized} problem (indices into
          [std.kept]) — the basis functions that survived EM pruning *)
  mu : Mat.t;
      (** a×K posterior means of the active standardized coefficients
          (row j = coefficient of active term j across states): for a
          standardized row restricted to [active], [uᵀ·mu[:,s]] is the
          predictive mean in standardized units *)
  lambda : Vec.t;  (** their λ, standardized units, one per active *)
  r : Mat.t;  (** K×K learned correlation *)
  sigma0 : float;  (** noise standard deviation, standardized units *)
  cov : Mat.t array;
      (** K per-state a×a posterior covariance blocks of the active
          coefficients (see {!Posterior.state_cov}): for a standardized
          row restricted to [active], [uᵀ·cov.(s)·u] is the predictive
          variance, to which σ0² adds the observation noise — all in
          standardized units; multiply by [std.y_scale]² for raw. *)
}
(** Everything a consumer needs to {e predict} (mean and variance) at
    any [(x, state)] without the training data, the EM state or any
    closure — the serializable fitted-model view that
    [Cbmf_serve.Snapshot] persists. *)

type model = {
  coeffs : Mat.t;  (** K×M, raw units — eq. (1)'s α *)
  info : info;
  uncertainty : state:int -> Vec.t -> float * float;
      (** [(mean, sd)] in raw units for one raw dictionary row,
          including both posterior coefficient uncertainty and the
          observation-noise level σ0 — what the MAP-only paper does not
          expose but the Bayesian posterior provides for free. *)
  view : fitted Lazy.t;
      (** the serializable view, materialized on first use (forcing it
          extracts the posterior covariance blocks from the cached
          factorization — cheap next to the fit itself) *)
}

val fit : ?config:config -> ?init_hypers:Prior.t -> Dataset.t -> model
(** [fit d] runs the full pipeline: standardize → initializer grid →
    EM → unstandardize.  [init_hypers] (standardized-space Ω from a
    previous fit) skips the initializer grid entirely and warm-starts
    the EM there — the initializer fields of [info] are then neutral
    (r0 = 0, cv_error = 0, θ = #{λ > 0}) and the EM trace records
    [warm_start = true]. *)

val fitted_view : model -> fitted
(** Force and return {!model.view}. *)

val active_raw : fitted -> int array
(** The active support as {e raw} dictionary column indices (through
    [std.kept]), sorted ascending — comparable against a synthetic
    ground-truth support, which lives in raw column coordinates. *)

val predict_state : model -> design:Mat.t -> state:int -> Vec.t
(** ŷ_k = B_k α_k. *)

val test_error : model -> Dataset.t -> float
(** Pooled relative RMS on an independent dataset. *)
