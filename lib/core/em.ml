open Cbmf_linalg
open Cbmf_model

type config = {
  max_iter : int;
  tol : float;
  prune_tol : float;
  warm_iters : int;
  update_r : bool;
  update_sigma0 : bool;
  r_ridge : float;
  min_sigma0 : float;
  min_active : int;
}

let default_config =
  {
    max_iter = 30;
    tol = 1e-4;
    prune_tol = 1e-4;
    warm_iters = 1;
    update_r = true;
    update_sigma0 = false;
    r_ridge = 1e-5;
    min_sigma0 = 1e-4;
    min_active = 1;
  }

type trace = {
  iterations : int;
  nlml_history : float array;
  active_history : int array;
  converged : bool;
}

(* Keep at least [min_active] columns: if pruning is too aggressive,
   fall back to the largest-λ columns.  During the warm-up iterations
   every nonzero λ stays active so the first full posterior can
   resurrect basis functions the greedy initializer missed; afterwards
   the standard relative floor applies. *)
let prune cfg ~iter (lambda : Vec.t) =
  let m = Array.length lambda in
  let lmax = Array.fold_left Float.max 0.0 lambda in
  let tol = if iter <= cfg.warm_iters then 0.0 else cfg.prune_tol in
  let keep = ref [] in
  for j = m - 1 downto 0 do
    if lambda.(j) > tol *. lmax then keep := j :: !keep
  done;
  let kept = Array.of_list !keep in
  if Array.length kept >= cfg.min_active then kept
  else begin
    (* Top-λ fallback (hit e.g. when every λ is zero, so nothing clears
       the relative floor).  Array.sort is not stable, so ties must be
       broken explicitly — by column index — or the kept set would
       depend on the sort's internal order. *)
    let order = Array.init m (fun i -> i) in
    Array.sort
      (fun i j ->
        let c = compare lambda.(j) lambda.(i) in
        if c <> 0 then c else compare i j)
      order;
    let top = Array.sub order 0 (Stdlib.min cfg.min_active m) in
    Array.sort compare top;
    top
  end

let m_step cfg (d : Dataset.t) (prior : Prior.t) (post : Posterior.t) =
  let k = d.Dataset.n_states in
  let m = d.Dataset.n_basis in
  let nk = float_of_int post.Posterior.nk in
  let r_chol = Chol.factorize_with_retry prior.Prior.r in
  let r_inv = Chol.inverse r_chol in
  let lambda' = Array.make m 0.0 in
  let r_acc = Mat.create k k in
  let n_acc = ref 0 in
  Array.iter
    (fun (col, sigma_m) ->
      let mu_m = Mat.row post.Posterior.mu col in
      (* e = Σ_m + μ_m μ_mᵀ *)
      let e = Mat.copy sigma_m in
      Mat.add_outer_inplace e 1.0 mu_m mu_m;
      (* λ_m = Tr(R⁻¹ e)/K; both factors are symmetric, so the trace
         of the product is the elementwise dot — O(K²), not O(K³). *)
      let tr = Vec.dot r_inv.Mat.data e.Mat.data in
      let lam = Float.max (tr /. float_of_int k) 0.0 in
      lambda'.(col) <- lam;
      if lam > 1e-300 then begin
        Mat.add_scaled_inplace r_acc (1.0 /. lam) e;
        incr n_acc
      end)
    post.Posterior.sigma_blocks;
  let r' =
    if cfg.update_r && !n_acc > 0 then begin
      let r_new = Mat.scale (1.0 /. float_of_int !n_acc) r_acc in
      (* Fix the λ·R scale ambiguity and keep R well-conditioned. *)
      let mean_diag =
        Float.max (Mat.trace r_new /. float_of_int k) 1e-300
      in
      Mat.scale_inplace r_new (1.0 /. mean_diag);
      (* The sample estimate averages only |A| outer-product terms; a
         K×K correlation needs ≳2K of them.  Shrink toward the previous
         R in proportion to the evidence so a thin active set cannot
         destabilize the prior. *)
      let w = Float.min 1.0 (float_of_int !n_acc /. (2.0 *. float_of_int k)) in
      Mat.scale_inplace r_new w;
      Mat.add_scaled_inplace r_new (1.0 -. w) prior.Prior.r;
      Mat.symmetrize_inplace r_new;
      Mat.add_diag_inplace r_new cfg.r_ridge;
      Chol.nearest_pd_inplace r_new;
      r_new
    end
    else Mat.copy prior.Prior.r
  in
  let sigma0' =
    if cfg.update_sigma0 then begin
      let s2 = prior.Prior.sigma0 *. prior.Prior.sigma0 in
      let tr_dsd = s2 *. (nk -. (s2 *. post.Posterior.trace_ginv)) in
      let tr_dsd = Float.max tr_dsd 0.0 in
      Float.max (sqrt ((post.Posterior.resid_sq +. tr_dsd) /. nk)) cfg.min_sigma0
    end
    else prior.Prior.sigma0
  in
  Prior.create ~lambda:lambda' ~r:r' ~sigma0:sigma0'

let run ?(config = default_config) ?posterior (d : Dataset.t) prior0 =
  (* One workspace for the whole EM run: every iteration's posterior
     solve reuses the same large buffers (see {!Posterior.workspace}). *)
  let posterior =
    match posterior with
    | Some f -> f
    | None ->
        let ws = Posterior.make_workspace () in
        fun ?(need_sigma = true) d prior ~active ->
          Posterior.compute ~need_sigma ~ws d prior ~active
  in
  let nlml = ref [] and active_hist = ref [] in
  let rec loop prior last_nlml iter =
    let active = prune config ~iter prior.Prior.lambda in
    let post = posterior ~need_sigma:true d prior ~active in
    nlml := post.Posterior.nlml :: !nlml;
    active_hist := Array.length active :: !active_hist;
    let converged =
      match last_nlml with
      | Some prev ->
          abs_float (prev -. post.Posterior.nlml)
          <= config.tol *. Float.max 1.0 (abs_float prev)
      | None -> false
    in
    if converged || iter >= config.max_iter then (prior, post, converged, iter)
    else begin
      let prior' = m_step config d prior post in
      loop prior' (Some post.Posterior.nlml) (iter + 1)
    end
  in
  let prior, post, converged, iterations = loop prior0 None 1 in
  let trace =
    {
      iterations;
      nlml_history = Array.of_list (List.rev !nlml);
      active_history = Array.of_list (List.rev !active_hist);
      converged;
    }
  in
  (prior, post, trace)
