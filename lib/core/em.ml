open Cbmf_linalg
open Cbmf_model
open Cbmf_robust

type config = {
  max_iter : int;
  tol : float;
  prune_tol : float;
  warm_iters : int;
  update_r : bool;
  update_sigma0 : bool;
  r_ridge : float;
  min_sigma0 : float;
  min_active : int;
  max_recoveries : int;
  divergence_tol : float;
}

let default_config =
  {
    max_iter = 30;
    tol = 1e-4;
    prune_tol = 1e-4;
    warm_iters = 1;
    update_r = true;
    update_sigma0 = false;
    r_ridge = 1e-5;
    min_sigma0 = 1e-4;
    min_active = 1;
    max_recoveries = 8;
    divergence_tol = 0.5;
  }

type trace = {
  iterations : int;
  nlml_history : float array;
  active_history : int array;
  converged : bool;
  recoveries : int;
  warm_start : bool;
  diag : Diag.t;
}

(* Keep at least [min_active] columns: if pruning is too aggressive,
   fall back to the largest-λ columns.  During the warm-up iterations
   every nonzero λ stays active so the first full posterior can
   resurrect basis functions the greedy initializer missed; afterwards
   the standard relative floor applies. *)
let prune cfg ~iter (lambda : Vec.t) =
  let m = Array.length lambda in
  let lmax = Array.fold_left Float.max 0.0 lambda in
  let tol = if iter <= cfg.warm_iters then 0.0 else cfg.prune_tol in
  let keep = ref [] in
  for j = m - 1 downto 0 do
    if lambda.(j) > tol *. lmax then keep := j :: !keep
  done;
  let kept = Array.of_list !keep in
  if Array.length kept >= cfg.min_active then kept
  else begin
    (* Top-λ fallback (hit e.g. when every λ is zero, so nothing clears
       the relative floor).  Array.sort is not stable, so ties must be
       broken explicitly — by column index — or the kept set would
       depend on the sort's internal order. *)
    let order = Array.init m (fun i -> i) in
    Array.sort
      (fun i j ->
        let c = compare lambda.(j) lambda.(i) in
        if c <> 0 then c else compare i j)
      order;
    let top = Array.sub order 0 (Stdlib.min cfg.min_active m) in
    Array.sort compare top;
    top
  end

let finite_mat (m : Mat.t) = Array.for_all Float.is_finite m.Mat.data

let finite_prior (p : Prior.t) =
  Array.for_all Float.is_finite p.Prior.lambda
  && Float.is_finite p.Prior.sigma0
  && finite_mat p.Prior.r

let finite_post (t : Posterior.t) =
  Float.is_finite t.Posterior.nlml && finite_mat t.Posterior.mu

(* [damp] < 1 blends the update toward the previous hyper-parameters —
   the step damping applied after a rollback.  At the default 1.0 the
   update is used verbatim (no blend arithmetic touches the values, so
   a fault-free run is bit-identical to the undamped code path). *)
let m_step ?(damp = 1.0) cfg (d : Dataset.t) (prior : Prior.t)
    (post : Posterior.t) =
  let k = d.Dataset.n_states in
  let m = d.Dataset.n_basis in
  let nk = float_of_int post.Posterior.nk in
  let r_chol = Chol.factorize_with_retry prior.Prior.r in
  let r_inv = Chol.inverse r_chol in
  let lambda' = Array.make m 0.0 in
  let r_acc = Mat.create k k in
  let n_acc = ref 0 in
  Array.iter
    (fun (col, sigma_m) ->
      let mu_m = Mat.row post.Posterior.mu col in
      (* e = Σ_m + μ_m μ_mᵀ *)
      let e = Mat.copy sigma_m in
      Mat.add_outer_inplace e 1.0 mu_m mu_m;
      (* λ_m = Tr(R⁻¹ e)/K; both factors are symmetric, so the trace
         of the product is the elementwise dot — O(K²), not O(K³). *)
      let tr = Vec.dot r_inv.Mat.data e.Mat.data in
      let lam = Float.max (tr /. float_of_int k) 0.0 in
      lambda'.(col) <- lam;
      if lam > 1e-300 then begin
        Mat.add_scaled_inplace r_acc (1.0 /. lam) e;
        incr n_acc
      end)
    post.Posterior.sigma_blocks;
  let r' =
    if cfg.update_r && !n_acc > 0 then begin
      let r_new = Mat.scale (1.0 /. float_of_int !n_acc) r_acc in
      (* Fix the λ·R scale ambiguity and keep R well-conditioned. *)
      let mean_diag =
        Float.max (Mat.trace r_new /. float_of_int k) 1e-300
      in
      Mat.scale_inplace r_new (1.0 /. mean_diag);
      (* The sample estimate averages only |A| outer-product terms; a
         K×K correlation needs ≳2K of them.  Shrink toward the previous
         R in proportion to the evidence so a thin active set cannot
         destabilize the prior. *)
      let w = Float.min 1.0 (float_of_int !n_acc /. (2.0 *. float_of_int k)) in
      Mat.scale_inplace r_new w;
      Mat.add_scaled_inplace r_new (1.0 -. w) prior.Prior.r;
      Mat.symmetrize_inplace r_new;
      Mat.add_diag_inplace r_new cfg.r_ridge;
      (try Chol.nearest_pd_inplace r_new
       with Invalid_argument _ | Fault.Error _ ->
         (* The PD projection gave up: degrade R to its diagonal — the
            states decorrelate, which loses fusion strength but keeps
            the prior usable — and record the degradation. *)
         Diag.note (Fault.Not_pd { site = "em.m_step.r"; dim = k; tries = 0 });
         for i = 0 to k - 1 do
           for j = 0 to k - 1 do
             if i <> j then Mat.set r_new i j 0.0
             else Mat.set r_new i i (Float.max (abs_float (Mat.get r_new i i)) cfg.r_ridge)
           done
         done);
      r_new
    end
    else Mat.copy prior.Prior.r
  in
  let sigma0' =
    if cfg.update_sigma0 then begin
      let s2 = prior.Prior.sigma0 *. prior.Prior.sigma0 in
      let tr_dsd = s2 *. (nk -. (s2 *. post.Posterior.trace_ginv)) in
      let tr_dsd = Float.max tr_dsd 0.0 in
      Float.max (sqrt ((post.Posterior.resid_sq +. tr_dsd) /. nk)) cfg.min_sigma0
    end
    else prior.Prior.sigma0
  in
  if damp < 1.0 then begin
    (* Damped step: convex blend toward the previous hyper-parameters
       (a convex combination of PD matrices stays PD). *)
    let keep = 1.0 -. damp in
    for j = 0 to m - 1 do
      lambda'.(j) <- (damp *. lambda'.(j)) +. (keep *. prior.Prior.lambda.(j))
    done;
    let r_blend = Mat.scale damp r' in
    Mat.add_scaled_inplace r_blend keep prior.Prior.r;
    Mat.symmetrize_inplace r_blend;
    let sigma0'' = (damp *. sigma0') +. (keep *. prior.Prior.sigma0) in
    Prior.create ~lambda:lambda' ~r:r_blend ~sigma0:sigma0''
  end
  else Prior.create ~lambda:lambda' ~r:r' ~sigma0:sigma0'

let run ?(config = default_config) ?posterior ?diag ?init_hypers
    (d : Dataset.t) prior0 =
  let diag = match diag with Some dg -> dg | None -> Diag.create () in
  (* Warm start: a previous run's hyper-parameters replace [prior0] as
     the EM iterate — the streaming loop's resync entry, where the
     initializer's grid search would be both wasted work and a
     discontinuity in the model trajectory. *)
  let warm_start = init_hypers <> None in
  let prior0 =
    match init_hypers with
    | Some (h : Prior.t) ->
        if
          Prior.n_basis h <> Prior.n_basis prior0
          || Prior.n_states h <> Prior.n_states prior0
        then invalid_arg "Em.run: init_hypers shape mismatch"
        else h
    | None -> prior0
  in
  Diag.with_current diag @@ fun () ->
  (* Reject NaN/Inf rows up front with a structured, typed report —
     one bad entry would otherwise surface as an inscrutable Cholesky
     failure deep inside the first E-step. *)
  Dataset.validate_exn d;
  let user_posterior = posterior in
  (* One workspace for the whole EM run: every iteration's posterior
     solve reuses the same large buffers (see {!Posterior.workspace}). *)
  let ws = lazy (Posterior.make_workspace ()) in
  let base_solve ?path ~need_sigma prior ~active =
    match user_posterior with
    | Some f -> f ?need_sigma:(Some need_sigma) d prior ~active
    | None ->
        Posterior.compute ~need_sigma ?path ~ws:(Lazy.force ws) d prior ~active
  in
  let recoveries = ref 0 in
  (* E-step with a fallback chain: the auto-selected path (Primal when
     cheaper), then the dual path forced (better conditioned: it never
     divides by a tiny λ), then a jittered retry (ridged R, inflated
     σ0) on the dual path.  Every hop is recorded. *)
  let solve_guarded ~iter prior ~active =
    let attempt ?path prior =
      match base_solve ?path ~need_sigma:true prior ~active with
      | t ->
          if finite_post t then Ok t
          else
            Error
              (Fault.Non_finite
                 { site = "posterior.compute"; what = "nlml/mu"; index = iter })
      | exception Fault.Error f -> Error f
      | exception Chol.Not_positive_definite j ->
          Error (Fault.Not_pd { site = "posterior.compute"; dim = j; tries = 0 })
      | exception e ->
          Error
            (Fault.Worker_error
               { site = "posterior.compute"; message = Printexc.to_string e })
    in
    match attempt prior with
    | Ok t -> Ok t
    | Error f1 -> (
        Diag.record diag f1;
        incr recoveries;
        match attempt ~path:`Dual prior with
        | Ok t -> Ok t
        | Error f2 -> (
            Diag.record diag f2;
            incr recoveries;
            let jittered =
              try
                let k = Prior.n_states prior in
                let r_j = Mat.copy prior.Prior.r in
                let mean_diag =
                  Float.max (Mat.trace r_j /. float_of_int k) 1e-12
                in
                Mat.add_diag_inplace r_j (0.1 *. mean_diag);
                Some
                  (Prior.create ~lambda:prior.Prior.lambda ~r:r_j
                     ~sigma0:(10.0 *. prior.Prior.sigma0))
              with _ -> None
            in
            match jittered with
            | None ->
                Diag.record diag f2;
                Error f2
            | Some pj -> (
                match attempt ~path:`Dual pj with
                | Ok t -> Ok t
                | Error f3 ->
                    Diag.record diag f3;
                    Error f3)))
  in
  (* M-step guard: a typed fault or a non-finite hyper-parameter keeps
     the current prior (the update is skipped, which lets the loop's
     convergence test terminate it) instead of poisoning the run. *)
  let m_step_guarded ~iter ~damp prior post =
    match m_step ~damp config d prior post with
    | p when finite_prior p -> p
    | _ ->
        Diag.record diag
          (Fault.Non_finite
             { site = "em.m_step"; what = "lambda/R/sigma0"; index = iter });
        incr recoveries;
        prior
    | exception Fault.Error f ->
        Diag.record diag f;
        incr recoveries;
        prior
    | exception Chol.Not_positive_definite j ->
        Diag.record diag (Fault.Not_pd { site = "em.m_step"; dim = j; tries = 0 });
        incr recoveries;
        prior
  in
  let nlml = ref [] and active_hist = ref [] in
  let rec loop prior last_good last_nlml iter damp =
    let active = prune config ~iter prior.Prior.lambda in
    match solve_guarded ~iter prior ~active with
    | Error f -> (
        (* The whole fallback chain failed.  Degrade gracefully to the
           last checkpoint if one exists; a first-iteration total
           failure has nothing to fall back to and stays a typed
           error. *)
        match last_good with
        | Some (p, t) -> (p, t, false, iter)
        | None -> raise (Fault.Error f))
    | Ok post ->
        nlml := post.Posterior.nlml :: !nlml;
        active_hist := Array.length active :: !active_hist;
        let proceed () =
          let converged =
            match last_nlml with
            | Some prev ->
                abs_float (prev -. post.Posterior.nlml)
                <= config.tol *. Float.max 1.0 (abs_float prev)
            | None -> false
          in
          if converged || iter >= config.max_iter then
            (prior, post, converged, iter)
          else begin
            let prior' = m_step_guarded ~iter ~damp prior post in
            loop prior' (Some (prior, post)) (Some post.Posterior.nlml)
              (iter + 1) damp
          end
        in
        let diverged =
          match last_nlml with
          | Some prev ->
              post.Posterior.nlml
              > prev +. (config.divergence_tol *. Float.max 1.0 (abs_float prev))
          | None -> false
        in
        if diverged && !recoveries < config.max_recoveries then begin
          (match last_nlml with
          | Some prev ->
              Diag.record diag
                (Fault.Em_divergence
                   { iteration = iter; nlml_prev = prev; nlml = post.Posterior.nlml })
          | None -> ());
          incr recoveries;
          match last_good with
          | Some (gp, gpost) when iter < config.max_iter ->
              (* Checkpoint rollback: redo the M-step from the last
                 good (prior, posterior) pair with a damped step. *)
              let damp' = Float.max 0.0625 (damp /. 2.0) in
              let prior' = m_step_guarded ~iter ~damp:damp' gp gpost in
              loop prior' last_good last_nlml (iter + 1) damp'
          | _ -> proceed ()
        end
        else proceed ()
  in
  let prior, post, converged, iterations = loop prior0 None None 1 1.0 in
  let trace =
    {
      iterations;
      nlml_history = Array.of_list (List.rev !nlml);
      active_history = Array.of_list (List.rev !active_hist);
      converged;
      recoveries = !recoveries;
      warm_start;
      diag;
    }
  in
  (prior, post, trace)
