open Cbmf_linalg
open Cbmf_model

(* Upper-triangular state pairs (k1 ≤ k2), row-major.  Each pair owns
   the (k1,k2) and mirror (k2,k1) blocks of every NK×NK or K×K object
   below, so the pair loops parallelize with disjoint writes — the
   fan-out is bit-identical to the sequential loop at any domain
   count. *)
let upper_pairs k =
  let pairs = Array.make (k * (k + 1) / 2) (0, 0) in
  let idx = ref 0 in
  for k1 = 0 to k - 1 do
    for k2 = k1 to k - 1 do
      pairs.(!idx) <- (k1, k2);
      incr idx
    done
  done;
  pairs

(* Connected components of R's nonzero pattern.  G inherits R's block
   structure, Cholesky produces no fill across components, and G⁻¹ is
   therefore exactly block-diagonal over them — so any cross-component
   (k1,k2) block of G, L⁻¹·[stack] products or W is identically zero
   and can be skipped without changing a single bit of the result. *)
let r_components (r : Mat.t) =
  let k = r.Mat.rows in
  let comp = Array.make k (-1) in
  let next = ref 0 in
  for s = 0 to k - 1 do
    if comp.(s) < 0 then begin
      let c = !next in
      incr next;
      comp.(s) <- c;
      let stack = ref [ s ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
            stack := rest;
            for v = 0 to k - 1 do
              if comp.(v) < 0 && Mat.get r u v <> 0.0 then begin
                comp.(v) <- c;
                stack := v :: !stack
              end
            done
      done
    end
  done;
  comp

type path = [ `Dual | `Primal ]

type t = {
  mu : Mat.t;
  sigma_blocks : (int * Mat.t) array;
  active : int array;
  nlml : float;
  resid_sq : float;
  trace_ginv : float;
  nk : int;
  path : path;
  predictive : state:int -> Vec.t -> float * float;
  state_cov : unit -> Mat.t array;
}

(* Reusable per-EM-iteration buffers.  [Em.run] threads one workspace
   through every posterior solve so the large allocations (the NK×NK
   Gram assembly, the flat response, the NK×aK stacked solve) happen
   once and are reused: per-iteration allocation churn drops to ~zero
   after the first iteration.  The buffers are invisible outside a
   [compute] call — everything the returned record (including its
   [predictive] closure) holds is freshly allocated or owned by the
   Cholesky factor. *)
type workspace = {
  g_buf : float array ref;  (* NK·NK Gram assembly *)
  y_buf : float array ref;  (* NK flat response *)
  u_buf : float array ref;  (* NK·aK stacked design / TRSM solution *)
  arena : Cbmf_parallel.Arena.t;
      (* per-worker scratch for the state-pair fan-outs: each pool slot
         reuses its own pair-product / accumulator / block buffers
         across pairs, jobs and EM iterations *)
}

(* Scratch roles inside the pair fan-outs (names are global, buffers
   live per-workspace per-slot). *)
let id_pair_prod = Cbmf_parallel.Arena.fresh_id ()

let id_pair_acc = Cbmf_parallel.Arena.fresh_id ()

let id_pair_gblk = Cbmf_parallel.Arena.fresh_id ()

let id_pair_z = Cbmf_parallel.Arena.fresh_id ()

let make_workspace () =
  {
    g_buf = ref [||];
    y_buf = ref [||];
    u_buf = ref [||];
    arena = Cbmf_parallel.Arena.create ();
  }

(* Exact-size reuse: the NK-sized buffers keep their array across EM
   iterations (NK is fixed); the aK-sized ones reallocate only when
   pruning shrinks the active set. *)
let grab buf len =
  let arr = if Array.length !buf = len then !buf else Array.make len 0.0 in
  Array.fill arr 0 len 0.0;
  buf := arr;
  arr

(* Assemble G = σ0²I + DADᵀ block-wise: block (k,k') is
   R[k,k']·(B_k Λ B_{k'}ᵀ) on the active columns — the λ-weighting is
   fused into the kernel, so no scaled copies of the designs are
   formed. *)
let assemble_g (d : Dataset.t) (prior : Prior.t) ~(b_act : Mat.t array)
    ~(lambda_act : Vec.t) ~pairs ~arena ~(into : float array) =
  let k = d.Dataset.n_states and n = d.Dataset.n_samples in
  let nk = k * n in
  let g = into in
  let pool = Cbmf_parallel.Pool.default () in
  Cbmf_parallel.Pool.parallel_for pool ~n:(Array.length pairs)
    (fun pair_i ->
      let k1, k2 = pairs.(pair_i) in
      let r12 = Mat.get prior.Prior.r k1 k2 in
      if r12 <> 0.0 then begin
        (* The n×n pair product lands in this slot's reusable buffer
           (N is fixed, so after the first pair per slot no allocation
           happens at all). *)
        let p =
          Mat.unsafe_of_flat ~rows:n ~cols:n
            (Cbmf_parallel.Arena.grab arena id_pair_prod (n * n))
        in
        Mat.matmul_nt_weighted_into b_act.(k1) lambda_act b_act.(k2) ~dst:p;
        for i = 0 to n - 1 do
          let gi = ((k1 * n) + i) * nk in
          let pi = i * n in
          for j = 0 to n - 1 do
            let v = r12 *. p.Mat.data.(pi + j) in
            g.(gi + (k2 * n) + j) <- v;
            if k1 <> k2 then begin
              let gj = ((k2 * n) + j) * nk in
              g.(gj + (k1 * n) + i) <- v
            end
          done
        done
      end);
  let s2 = prior.Prior.sigma0 *. prior.Prior.sigma0 in
  for i = 0 to nk - 1 do
    g.((i * nk) + i) <- g.((i * nk) + i) +. s2
  done;
  Mat.unsafe_of_flat ~rows:nk ~cols:nk g

(* Flat response, state-major, into a reusable buffer. *)
let flat_response (d : Dataset.t) ~(into : float array) =
  let k = d.Dataset.n_states and n = d.Dataset.n_samples in
  for s = 0 to k - 1 do
    Array.blit d.Dataset.response.(s) 0 into (s * n) n
  done;
  into

(* ‖y − Dμ‖² over the active columns. *)
let residual_sq (d : Dataset.t) ~(b_act : Mat.t array) ~(mu : Mat.t) ~active
    ~(y : float array) =
  let k = d.Dataset.n_states and n = d.Dataset.n_samples in
  let a = Array.length active in
  let resid_sq = ref 0.0 in
  for s = 0 to k - 1 do
    let bm = b_act.(s) in
    for i = 0 to n - 1 do
      let pred = ref 0.0 in
      let row = i * a in
      for j = 0 to a - 1 do
        pred := !pred +. (bm.Mat.data.(row + j) *. Mat.get mu active.(j) s)
      done;
      let e = y.((s * n) + i) -. !pred in
      resid_sq := !resid_sq +. (e *. e)
    done
  done;
  !resid_sq

(* --- Dual path: (NK)-sized Cholesky of G ---------------------------- *)

let compute_dual ~need_sigma ws (d : Dataset.t) (prior : Prior.t) ~active
    ~(b_act : Mat.t array) ~(lambda_act : Vec.t) =
  let k = d.Dataset.n_states
  and n = d.Dataset.n_samples
  and m = d.Dataset.n_basis in
  let a = Array.length active in
  let nk = k * n in
  let pairs = upper_pairs k in
  let g =
    assemble_g d prior ~b_act ~lambda_act ~pairs ~arena:ws.arena
      ~into:(grab ws.g_buf (nk * nk))
  in
  let chol = Chol.factorize_with_retry g in
  let y = flat_response d ~into:(grab ws.y_buf nk) in
  let z = Chol.solve_vec chol y in
  (* v: a×k with v.(j).(s) = B_s[:,active_j]ᵀ z_s. *)
  let v = Array.make_matrix a k 0.0 in
  for s = 0 to k - 1 do
    let bm = b_act.(s) in
    for i = 0 to n - 1 do
      let zi = z.((s * n) + i) in
      if zi <> 0.0 then begin
        let row = i * a in
        for j = 0 to a - 1 do
          v.(j).(s) <- v.(j).(s) +. (zi *. bm.Mat.data.(row + j))
        done
      end
    done
  done;
  (* μ_m = λ_m · R · v_m. *)
  let mu = Mat.create m k in
  Array.iteri
    (fun j col ->
      let lam = prior.Prior.lambda.(col) in
      if lam > 0.0 then begin
        let rv = Mat.mat_vec prior.Prior.r v.(j) in
        for s = 0 to k - 1 do
          Mat.set mu col s (lam *. rv.(s))
        done
      end)
    active;
  let resid_sq = residual_sq d ~b_act ~mu ~active ~y in
  let nlml = Vec.dot y z +. Chol.log_det chol in
  let sigma_blocks, trace_ginv =
    if not need_sigma then ([||], 0.0)
    else begin
      (* W_j[k1,k2] = B_{k1}[:,j]ᵀ · Ginv_blk(k1,k2) · B_{k2}[:,j].
         Two exact routes, picked by the stacked-RHS width aK:

         - aK ≤ NK — never form G⁻¹: with U the NK×aK block-diagonal
           stack of the active designs and X = L⁻¹U (one multi-RHS
           TRSM, O((NK)²·aK)), W_j[k1,k2] is the dot of columns
           (k1,j) and (k2,j) of X.
         - aK > NK (the EM warm-up, where every λ is live) — the TRSM
           would cost O((NK)²·aK) ≫ O((NK)³), so instead materialize
           G⁻¹ = L⁻ᵀ·L⁻¹ once with blocked kernels (triangular
           inversion + SYRK) and contract each state-pair block
           through a blocked GEMM, O((NK)³ + (NK)²·a) total. *)
      let ak = a * k in
      let comp = r_components prior.Prior.r in
      let w = Array.init a (fun _ -> Mat.create k k) in
      let pool = Cbmf_parallel.Pool.default () in
      let trace_ginv =
        if ak <= nk then begin
          let trace_ginv = Chol.trace_inverse chol in
          let ubuf = grab ws.u_buf (nk * ak) in
          for s = 0 to k - 1 do
            let bm = b_act.(s) in
            for i = 0 to n - 1 do
              let urow = ((s * n) + i) * ak in
              let brow = i * a in
              for j = 0 to a - 1 do
                ubuf.(urow + (s * a) + j) <- bm.Mat.data.(brow + j)
              done
            done
          done;
          let x = Mat.unsafe_of_flat ~rows:nk ~cols:ak ubuf in
          Chol.solve_lower_mat_inplace chol x;
          Cbmf_parallel.Pool.parallel_for pool ~n:(Array.length pairs)
            (fun pair_i ->
              let k1, k2 = pairs.(pair_i) in
              if comp.(k1) = comp.(k2) then begin
                let acc =
                  Cbmf_parallel.Arena.grab_zeroed ws.arena id_pair_acc a
                in
                (* Column (s,j) of X is supported on rows ≥ s·N (the
                   TRSM starts at the stack's first nonzero row), so
                   the dot runs from row k2·N. *)
                let c1 = k1 * a and c2 = k2 * a in
                for i = k2 * n to nk - 1 do
                  let xrow = i * ak in
                  for j = 0 to a - 1 do
                    acc.(j) <-
                      acc.(j)
                      +. (Array.unsafe_get ubuf (xrow + c1 + j)
                         *. Array.unsafe_get ubuf (xrow + c2 + j))
                  done
                done;
                for j = 0 to a - 1 do
                  Mat.set w.(j) k1 k2 acc.(j);
                  if k1 <> k2 then Mat.set w.(j) k2 k1 acc.(j)
                done
              end);
          trace_ginv
        end
        else begin
          let linv_t = Chol.lower_inverse_t chol in
          (* Tr(G⁻¹) = ‖L⁻¹‖_F² comes free from the same factor. *)
          let trace_ginv = ref 0.0 in
          Array.iter
            (fun x -> trace_ginv := !trace_ginv +. (x *. x))
            linv_t.Mat.data;
          let ginv = Mat.syrk_nt linv_t in
          Cbmf_parallel.Pool.parallel_for pool ~n:(Array.length pairs)
            (fun pair_i ->
              let k1, k2 = pairs.(pair_i) in
              if comp.(k1) = comp.(k2) then begin
                let gblk =
                  Mat.unsafe_of_flat ~rows:n ~cols:n
                    (Cbmf_parallel.Arena.grab ws.arena id_pair_gblk (n * n))
                in
                Mat.submatrix_into ginv ~row0:(k1 * n) ~col0:(k2 * n)
                  ~dst:gblk;
                let z =
                  Mat.unsafe_of_flat ~rows:n ~cols:a
                    (Cbmf_parallel.Arena.grab ws.arena id_pair_z (n * a))
                in
                Mat.matmul_into gblk b_act.(k2) ~dst:z;
                let b1 = b_act.(k1).Mat.data and zd = z.Mat.data in
                let acc =
                  Cbmf_parallel.Arena.grab_zeroed ws.arena id_pair_acc a
                in
                for i = 0 to n - 1 do
                  let row = i * a in
                  for j = 0 to a - 1 do
                    acc.(j) <-
                      acc.(j)
                      +. (Array.unsafe_get b1 (row + j)
                         *. Array.unsafe_get zd (row + j))
                  done
                done;
                for j = 0 to a - 1 do
                  Mat.set w.(j) k1 k2 acc.(j);
                  if k1 <> k2 then Mat.set w.(j) k2 k1 acc.(j)
                done
              end);
          !trace_ginv
        end
      in
      let blocks =
        Array.mapi
          (fun j col ->
            let lam = prior.Prior.lambda.(col) in
            let rw = Mat.matmul prior.Prior.r w.(j) in
            let rwr = Mat.matmul rw prior.Prior.r in
            let s =
              Mat.sub (Mat.scale lam prior.Prior.r)
                (Mat.scale (lam *. lam) rwr)
            in
            Mat.symmetrize_inplace s;
            (col, s))
          active
      in
      (blocks, trace_ginv)
    end
  in
  (* Exact posterior-predictive functional: for the selector a of
     (basis row b, state s), aᵀA a = R[s,s]·Σ_m λ_m b_m² and
     w = D·A·a has state-k' block R[k',s]·B_{k'}(λ ∘ b), so the
     variance is aᵀA a − wᵀG⁻¹w via the cached Cholesky of G. *)
  let predictive ~state (b : Vec.t) =
    assert (state >= 0 && state < k);
    assert (Array.length b = m);
    let mean = ref 0.0 in
    Array.iter
      (fun col -> mean := !mean +. (b.(col) *. Mat.get mu col state))
      active;
    let t_act = Array.map (fun col -> prior.Prior.lambda.(col) *. b.(col)) active in
    let a_aa = ref 0.0 in
    Array.iteri (fun j col -> a_aa := !a_aa +. (t_act.(j) *. b.(col))) active;
    let a_aa = Mat.get prior.Prior.r state state *. !a_aa in
    let w = Array.make nk 0.0 in
    for s = 0 to k - 1 do
      let rks = Mat.get prior.Prior.r s state in
      if rks <> 0.0 then begin
        let bm = b_act.(s) in
        for i = 0 to n - 1 do
          let row = i * a in
          let acc = ref 0.0 in
          for j = 0 to a - 1 do
            acc := !acc +. (bm.Mat.data.(row + j) *. t_act.(j))
          done;
          w.((s * n) + i) <- rks *. !acc
        done
      end
    done;
    let var = a_aa -. Chol.quad_inv chol w in
    (!mean, Float.max var 0.0)
  in
  (* Per-state covariance of the active coefficients: with Ws the NK×a
     matrix whose column j stacks λ_j·R[k',s]·B_{k'}[:,j] over states
     k', C_s = R[s,s]·diag(λ) − WsᵀG⁻¹Ws = R[s,s]·diag(λ) − XᵀX with
     X = L⁻¹Ws, so bᵀC_s b equals [predictive]'s variance exactly. *)
  let state_cov () =
    Array.init k (fun s ->
        let ws_mat = Mat.create nk a in
        let wd = ws_mat.Mat.data in
        for k' = 0 to k - 1 do
          let rks = Mat.get prior.Prior.r k' s in
          if rks <> 0.0 then begin
            let bm = b_act.(k') in
            for i = 0 to n - 1 do
              let brow = i * a in
              let wrow = ((k' * n) + i) * a in
              for j = 0 to a - 1 do
                wd.(wrow + j) <-
                  rks *. lambda_act.(j) *. bm.Mat.data.(brow + j)
              done
            done
          end
        done;
        let x = Chol.solve_lower_mat chol ws_mat in
        let xtx = Mat.syrk_tn x in
        let c = Mat.create a a in
        let rss = Mat.get prior.Prior.r s s in
        for j = 0 to a - 1 do
          Mat.set c j j (rss *. lambda_act.(j))
        done;
        Mat.sub c xtx)
  in
  {
    mu;
    sigma_blocks;
    active;
    nlml;
    resid_sq;
    trace_ginv;
    nk;
    path = `Dual;
    predictive;
    state_cov;
  }

(* --- Primal (Woodbury) path: (aK)-sized system ----------------------
   In the post-pruning regime aK < NK it is cheaper to solve through
   P = A⁻¹ + σ0⁻²·DᵀD (the (aK)×(aK) primal normal matrix) than
   through the NK×NK marginal Gram:

     μ_w       = σ0⁻²·P⁻¹·Dᵀy                    (Woodbury)
     Σ_w       = P⁻¹                              (posterior covariance)
     yᵀG⁻¹y    = σ0⁻²·(yᵀy − (Dᵀy)ᵀ μ_w)
     log det G = 2NK·log σ0 + log det A + log det P   (determinant lemma)
     Tr(G⁻¹)   = σ0⁻²·(NK − σ0⁻²·Σ_s ⟨B_sᵀB_s, P⁻¹_ss⟩)

   With unknowns ordered state-major ((s,j) ↦ s·a+j):
   A⁻¹[(s1,j),(s2,j)] = R⁻¹[s1,s2]/λ_j (diagonal across basis), and
   DᵀD is block-diagonal across states with blocks B_sᵀB_s. *)

(* Assemble P = A⁻¹ + σ0⁻²·DᵀD and its factorization inputs.  Shared
   verbatim (same loop structure, same float-op order) between
   [compute_primal] and the public {!primal_system} hook the streaming
   rank-one updater builds on, so both produce bit-identical systems. *)
let assemble_primal (d : Dataset.t) (prior : Prior.t)
    ~(b_act : Mat.t array) ~(lambda_act : Vec.t) =
  let k = d.Dataset.n_states in
  let a = Array.length lambda_act in
  let ak = a * k in
  Array.iter (fun lam -> assert (lam > 0.0)) lambda_act;
  let sigma0 = prior.Prior.sigma0 in
  let inv_s2 = 1.0 /. (sigma0 *. sigma0) in
  let r_chol = Chol.factorize_with_retry prior.Prior.r in
  let r_inv = Chol.solve_mat r_chol (Mat.identity k) in
  Mat.symmetrize_inplace r_inv;
  let grams = Array.map Mat.gram b_act in
  let p = Mat.create ak ak in
  let pd = p.Mat.data in
  for s1 = 0 to k - 1 do
    for s2 = 0 to k - 1 do
      let rinv12 = Mat.get r_inv s1 s2 in
      if rinv12 <> 0.0 then
        for j = 0 to a - 1 do
          pd.((((s1 * a) + j) * ak) + (s2 * a) + j) <-
            rinv12 /. lambda_act.(j)
        done
    done
  done;
  for s = 0 to k - 1 do
    let gm = grams.(s) in
    for j1 = 0 to a - 1 do
      let prow = (((s * a) + j1) * ak) + (s * a) in
      let grow = j1 * a in
      for j2 = 0 to a - 1 do
        pd.(prow + j2) <- pd.(prow + j2) +. (inv_s2 *. gm.Mat.data.(grow + j2))
      done
    done
  done;
  (r_chol, grams, p)

(* c = Dᵀy, state-major — the primal right-hand side, shared like
   [assemble_primal]. *)
let primal_rhs (d : Dataset.t) ~(b_act : Mat.t array) ~(y : float array) =
  let k = d.Dataset.n_states and n = d.Dataset.n_samples in
  let a = if k > 0 then b_act.(0).Mat.cols else 0 in
  let ak = a * k in
  let c = Array.make ak 0.0 in
  for s = 0 to k - 1 do
    let bm = b_act.(s) in
    for i = 0 to n - 1 do
      let yi = y.((s * n) + i) in
      if yi <> 0.0 then begin
        let brow = i * a in
        for j = 0 to a - 1 do
          c.((s * a) + j) <- c.((s * a) + j) +. (yi *. bm.Mat.data.(brow + j))
        done
      end
    done
  done;
  c

(* log det A = K·Σ_j log λ_j + a·log det R (A is the Kronecker-structured
   prior covariance over the active block). *)
let primal_log_det_a ~(lambda_act : Vec.t) ~r_chol ~k =
  let a = Array.length lambda_act in
  let acc = ref 0.0 in
  for j = 0 to a - 1 do
    acc := !acc +. log lambda_act.(j)
  done;
  (float_of_int k *. !acc) +. (float_of_int a *. Chol.log_det r_chol)

let compute_primal ~need_sigma ws (d : Dataset.t) (prior : Prior.t) ~active
    ~(b_act : Mat.t array) ~(lambda_act : Vec.t) =
  let k = d.Dataset.n_states
  and n = d.Dataset.n_samples
  and m = d.Dataset.n_basis in
  let a = Array.length active in
  let nk = k * n in
  let ak = a * k in
  let sigma0 = prior.Prior.sigma0 in
  let inv_s2 = 1.0 /. (sigma0 *. sigma0) in
  let r_chol, grams, p = assemble_primal d prior ~b_act ~lambda_act in
  let p_chol = Chol.factorize_with_retry p in
  let y = flat_response d ~into:(grab ws.y_buf nk) in
  let c = primal_rhs d ~b_act ~y in
  let mu_w = Chol.solve_vec p_chol c in
  for i = 0 to ak - 1 do
    mu_w.(i) <- inv_s2 *. mu_w.(i)
  done;
  let mu = Mat.create m k in
  Array.iteri
    (fun j col ->
      for s = 0 to k - 1 do
        Mat.set mu col s mu_w.((s * a) + j)
      done)
    active;
  let resid_sq = residual_sq d ~b_act ~mu ~active ~y in
  let y_ginv_y = inv_s2 *. (Vec.dot y y -. Vec.dot c mu_w) in
  let log_det_a = primal_log_det_a ~lambda_act ~r_chol ~k in
  let log_det_g =
    (2.0 *. float_of_int nk *. log sigma0) +. log_det_a +. Chol.log_det p_chol
  in
  let nlml = y_ginv_y +. log_det_g in
  let sigma_blocks, trace_ginv =
    if not need_sigma then ([||], 0.0)
    else begin
      (* Only two slivers of P⁻¹ are ever read — the j-diagonal K×K
         blocks (Σ_m) and the state-diagonal a×a blocks (the trace) —
         so skip the O((aK)³) dense inverse: with rows of [linv_t]
         holding the columns of L⁻¹, each needed entry is one
         contiguous row dot P⁻¹[u,v] = Σ_{w≥max(u,v)} L⁻¹[w,u]·L⁻¹[w,v]
         on top of an O((aK)³/6) triangular inversion. *)
      let linv_t = Chol.lower_inverse_t p_chol in
      let ld = linv_t.Mat.data in
      let pinv_entry u v =
        let w0 = if u > v then u else v in
        let ru = u * ak and rv = v * ak in
        let s = ref 0.0 in
        for w = w0 to ak - 1 do
          s :=
            !s
            +. (Array.unsafe_get ld (ru + w) *. Array.unsafe_get ld (rv + w))
        done;
        !s
      in
      let blocks =
        Array.mapi
          (fun j col ->
            let s = Mat.create k k in
            for s1 = 0 to k - 1 do
              for s2 = s1 to k - 1 do
                let v = pinv_entry ((s1 * a) + j) ((s2 * a) + j) in
                Mat.set s s1 s2 v;
                if s1 <> s2 then Mat.set s s2 s1 v
              done
            done;
            (col, s))
          active
      in
      let tr_dp = ref 0.0 in
      for s = 0 to k - 1 do
        let gm = grams.(s) in
        for j1 = 0 to a - 1 do
          let grow = j1 * a in
          let u = (s * a) + j1 in
          tr_dp := !tr_dp +. (gm.Mat.data.(grow + j1) *. pinv_entry u u);
          for j2 = j1 + 1 to a - 1 do
            tr_dp :=
              !tr_dp
              +. (2.0 *. gm.Mat.data.(grow + j2)
                 *. pinv_entry u ((s * a) + j2))
          done
        done
      done;
      let trace_ginv = inv_s2 *. (float_of_int nk -. (inv_s2 *. !tr_dp)) in
      (blocks, trace_ginv)
    end
  in
  (* The coefficient posterior covariance is P⁻¹ itself, so the
     predictive variance of the functional f = Σ_j b_j·w[j,state] is a
     direct (aK)-sized quadratic form — no NK-sized work. *)
  let predictive ~state (b : Vec.t) =
    assert (state >= 0 && state < k);
    assert (Array.length b = m);
    let mean = ref 0.0 in
    Array.iter
      (fun col -> mean := !mean +. (b.(col) *. Mat.get mu col state))
      active;
    let u = Array.make ak 0.0 in
    Array.iteri (fun j col -> u.((state * a) + j) <- b.(col)) active;
    let var = Chol.quad_inv p_chol u in
    (!mean, Float.max var 0.0)
  in
  (* The coefficient covariance is P⁻¹ itself; each state-diagonal a×a
     block is read entry-wise as row dots of (L⁻¹)ᵀ. *)
  let state_cov () =
    let linv_t = Chol.lower_inverse_t p_chol in
    let ld = linv_t.Mat.data in
    let pinv_entry u v =
      let w0 = if u > v then u else v in
      let ru = u * ak and rv = v * ak in
      let s = ref 0.0 in
      for w = w0 to ak - 1 do
        s :=
          !s +. (Array.unsafe_get ld (ru + w) *. Array.unsafe_get ld (rv + w))
      done;
      !s
    in
    Array.init k (fun s ->
        let c = Mat.create a a in
        for j1 = 0 to a - 1 do
          for j2 = j1 to a - 1 do
            let v = pinv_entry ((s * a) + j1) ((s * a) + j2) in
            Mat.set c j1 j2 v;
            if j1 <> j2 then Mat.set c j2 j1 v
          done
        done;
        c)
  in
  {
    mu;
    sigma_blocks;
    active;
    nlml;
    resid_sq;
    trace_ginv;
    nk;
    path = `Primal;
    predictive;
    state_cov;
  }

let compute ?(need_sigma = true) ?(path = `Auto) ?ws (d : Dataset.t)
    (prior : Prior.t) ~active =
  let k = d.Dataset.n_states
  and n = d.Dataset.n_samples
  and m = d.Dataset.n_basis in
  assert (Prior.n_basis prior = m);
  assert (Prior.n_states prior = k);
  let a = Array.length active in
  assert (a > 0);
  Array.iter (fun i -> assert (i >= 0 && i < m)) active;
  let ws = match ws with Some w -> w | None -> make_workspace () in
  let b_act =
    Array.map (fun bmat -> Mat.select_cols bmat active) d.Dataset.design
  in
  let lambda_act = Array.map (fun j -> prior.Prior.lambda.(j)) active in
  let use_primal =
    match path with
    | `Primal -> true
    | `Dual -> false
    | `Auto ->
        a * k < n * k && Array.for_all (fun lam -> lam > 0.0) lambda_act
  in
  let t =
    if use_primal then
      compute_primal ~need_sigma ws d prior ~active ~b_act ~lambda_act
    else compute_dual ~need_sigma ws d prior ~active ~b_act ~lambda_act
  in
  (* Injection site "posterior.compute": corrupt the returned NLML so
     the EM watchdog's non-finite detection path is what recovers —
     the same path a real numerical blow-up would take. *)
  if Cbmf_robust.Inject.fire ~site:"posterior.compute" then
    { t with nlml = Float.nan }
  else t

let coefficients t = Mat.transpose t.mu

(* --- Primal-system hook for streaming rank-one updates --------------
   The active-learning updater ([Cbmf_active.Update]) keeps the aK×aK
   Cholesky of P alive across appended samples, growing it via
   [Chol.rank1_update] instead of refitting.  It seeds itself from the
   exact same assembly [compute_primal] uses (shared helpers above), so
   an updated factorization and a from-scratch primal solve agree to
   factorization round-off. *)

type primal_system = {
  p_mat : Mat.t;
  rhs : Vec.t;
  yty : float;
  log_det_a : float;
  sys_active : int array;
  sys_nk : int;
}

let primal_system (d : Dataset.t) (prior : Prior.t) ~active =
  let k = d.Dataset.n_states
  and n = d.Dataset.n_samples
  and m = d.Dataset.n_basis in
  assert (Prior.n_basis prior = m);
  assert (Prior.n_states prior = k);
  let a = Array.length active in
  assert (a > 0);
  Array.iter (fun i -> assert (i >= 0 && i < m)) active;
  let b_act =
    Array.map (fun bmat -> Mat.select_cols bmat active) d.Dataset.design
  in
  let lambda_act = Array.map (fun j -> prior.Prior.lambda.(j)) active in
  let r_chol, _grams, p = assemble_primal d prior ~b_act ~lambda_act in
  let nk = k * n in
  let y = flat_response d ~into:(Array.make nk 0.0) in
  let rhs = primal_rhs d ~b_act ~y in
  let yty = Vec.dot y y in
  let log_det_a = primal_log_det_a ~lambda_act ~r_chol ~k in
  {
    p_mat = p;
    rhs;
    yty;
    log_det_a;
    sys_active = Array.copy active;
    sys_nk = nk;
  }

(* Dense reference path: builds D (NK × MK), A (MK × MK) and applies
   eqs. (19)-(21) literally.  O((MK)³) — test-sized inputs only. *)
let naive_dense (d : Dataset.t) (prior : Prior.t) =
  let k = d.Dataset.n_states
  and n = d.Dataset.n_samples
  and m = d.Dataset.n_basis in
  let nk = k * n and mk = m * k in
  assert (mk <= 512);
  (* Column order: basis-major, (m, k) ↦ m·K + k.  Row order:
     state-major, (k, n) ↦ k·N + n. *)
  let dmat = Mat.create nk mk in
  for s = 0 to k - 1 do
    for i = 0 to n - 1 do
      for j = 0 to m - 1 do
        Mat.set dmat ((s * n) + i) ((j * k) + s) (Mat.get d.Dataset.design.(s) i j)
      done
    done
  done;
  let amat = Mat.create mk mk in
  for j = 0 to m - 1 do
    for s1 = 0 to k - 1 do
      for s2 = 0 to k - 1 do
        Mat.set amat ((j * k) + s1) ((j * k) + s2)
          (prior.Prior.lambda.(j) *. Mat.get prior.Prior.r s1 s2)
      done
    done
  done;
  let y = Array.make nk 0.0 in
  for s = 0 to k - 1 do
    Array.blit d.Dataset.response.(s) 0 y (s * n) n
  done;
  let da = Mat.matmul dmat amat in
  let dad = Mat.matmul_nt da dmat in
  let g = Mat.copy dad in
  Mat.add_diag_inplace g (prior.Prior.sigma0 *. prior.Prior.sigma0);
  let chol = Chol.factorize_with_retry g in
  let z = Chol.solve_vec chol y in
  (* μ = A Dᵀ G⁻¹ y. *)
  let adt = Mat.transpose da in
  let mu_flat = Mat.mat_vec adt z in
  let mu = Mat.init m k (fun j s -> mu_flat.((j * k) + s)) in
  (* Σp = A − A Dᵀ G⁻¹ D A. *)
  let ginv_da = Chol.solve_mat chol da in
  let sigma = Mat.sub amat (Mat.matmul_tn da ginv_da) in
  let nlml = Vec.dot y z +. Chol.log_det chol in
  (mu, sigma, nlml)
