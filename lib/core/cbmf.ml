open Cbmf_linalg
open Cbmf_model

type config = { init : Init.config; em : Em.config }

let default_config = { init = Init.default_config; em = Em.default_config }

let fast_config =
  {
    init =
      {
        Init.r0_grid = [| 0.5; 0.9 |];
        sigma0_grid = [| 0.1 |];
        theta_max = 24;
        n_folds = 3;
        lambda_off = 1e-7;
      };
    em = { Em.default_config with max_iter = 15; tol = 1e-3 };
  }

let independent_config =
  {
    init = { Init.default_config with r0_grid = [| 0.0 |] };
    em = { Em.default_config with update_r = false };
  }

let init_only_config =
  { default_config with em = { Em.default_config with max_iter = 1 } }

type info = {
  r0 : float;
  sigma0_init : float;
  theta : int;
  init_cv_error : float;
  em_iterations : int;
  em_converged : bool;
  nlml_history : float array;
  final_active : int;
  final_sigma0 : float;
  final_r : Mat.t;
  fit_seconds : float;
}

type fitted = {
  std : Standardize.params;
  active : int array;
  mu : Mat.t;
  lambda : Vec.t;
  r : Mat.t;
  sigma0 : float;
  cov : Mat.t array;
}

type model = {
  coeffs : Mat.t;
  info : info;
  uncertainty : state:int -> Vec.t -> float * float;
  view : fitted Lazy.t;
}

let fit ?(config = default_config) ?init_hypers (d : Dataset.t) =
  let t0 = Sys.time () in
  let transform, std = Standardize.fit d in
  (* A warm start skips the initializer's (r0, σ0, θ) grid search
     entirely: the supplied hyper-parameters (standardized space) are
     the EM's first iterate.  The info record keeps its shape with
     neutral initializer fields. *)
  let init =
    match init_hypers with
    | Some (h : Prior.t) ->
        if
          Prior.n_basis h <> std.Dataset.n_basis
          || Prior.n_states h <> std.Dataset.n_states
        then
          invalid_arg
            "Cbmf.fit: init_hypers shape mismatch (expects the \
             standardized problem's dimensions — kept columns only)";
        let support = ref [] in
        Array.iteri
          (fun j lam -> if lam > 0.0 then support := j :: !support)
          h.Prior.lambda;
        let support = Array.of_list (List.rev !support) in
        {
          Init.support;
          r0 = 0.0;
          sigma0 = h.Prior.sigma0;
          theta = Array.length support;
          cv_error = 0.0;
          prior = h;
        }
    | None -> Init.run ~config:config.init std
  in
  (* On standardized data the response has unit pooled variance, so the
     initializer's held-out relative error is directly an estimate of
     the noise floor in σ0 units.  Flooring σ0 there keeps the EM from
     collapsing into interpolation when the effective parameter count
     (θ·K under a strong R) exceeds N·K. *)
  let em_config =
    {
      config.em with
      Em.min_sigma0 =
        Float.max config.em.Em.min_sigma0 (0.9 *. init.Init.cv_error);
    }
  in
  let prior, post, trace =
    Em.run ~config:em_config ?init_hypers std init.Init.prior
  in
  let coeffs_std = Posterior.coefficients post in
  let coeffs = Standardize.unstandardize_coeffs transform coeffs_std in
  let y_scale = Standardize.response_scale transform in
  let sigma0 = prior.Prior.sigma0 in
  let uncertainty ~state raw_row =
    let b = Standardize.standardize_row transform ~state raw_row in
    let mean_std, var_std = post.Posterior.predictive ~state b in
    let mean = Standardize.response_mean transform state +. (y_scale *. mean_std) in
    let sd = y_scale *. sqrt (var_std +. (sigma0 *. sigma0)) in
    (mean, sd)
  in
  let info =
    {
      r0 = init.Init.r0;
      sigma0_init = init.Init.sigma0;
      theta = init.Init.theta;
      init_cv_error = init.Init.cv_error;
      em_iterations = trace.Em.iterations;
      em_converged = trace.Em.converged;
      nlml_history = trace.Em.nlml_history;
      final_active = Array.length post.Posterior.active;
      final_sigma0 = prior.Prior.sigma0;
      final_r = Mat.copy prior.Prior.r;
      fit_seconds = Sys.time () -. t0;
    }
  in
  let view =
    lazy
      (let active = Array.copy post.Posterior.active in
       let k = (Standardize.params transform).Standardize.n_states in
       {
         std = Standardize.params transform;
         active;
         mu =
           Mat.init (Array.length active) k (fun j s ->
               Mat.get post.Posterior.mu active.(j) s);
         lambda = Array.map (fun j -> prior.Prior.lambda.(j)) active;
         r = Mat.copy prior.Prior.r;
         sigma0 = prior.Prior.sigma0;
         cov = post.Posterior.state_cov ();
       })
  in
  { coeffs; info; uncertainty; view }

let fitted_view model = Lazy.force model.view

let active_raw (f : fitted) =
  let raw = Array.map (fun j -> f.std.Standardize.kept.(j)) f.active in
  Array.sort compare raw;
  raw

let predict_state model ~design ~state =
  Mat.mat_vec design (Mat.row model.coeffs state)

let test_error model (d : Dataset.t) =
  Metrics.coeffs_error_pooled ~coeffs:model.coeffs d
