(** Expectation-maximization over the C-BMF hyper-parameters
    (paper §3.3, eqs. 26–31).

    Each iteration computes the structured posterior (E-step) and then
    re-estimates Ω = {λ, R, σ0} (M-step):

    - λ_m ← Tr(R⁻¹(Σ_m + μ_m μ_mᵀ)) / K            (eq. 29)
    - R   ← (1/|A|) Σ_{m∈A} (Σ_m + μ_m μ_mᵀ)/λ_m    (eq. 30)
    - σ0² ← (‖y − Dμ‖² + σ0²(NK − σ0²·Tr G⁻¹)) / NK (eq. 31, using the
      exact identity Tr(DΣDᵀ) = σ0²(NK − σ0²·Tr G⁻¹))

    λ·R has a scale ambiguity, so R is renormalized to unit mean
    diagonal, symmetrized and ridge-stabilized after every update;
    basis functions whose λ collapses are pruned from the active set
    (standard sparse-Bayesian-learning pruning). *)

open Cbmf_linalg
open Cbmf_model

type config = {
  max_iter : int;
  tol : float;  (** relative NLML change for convergence *)
  prune_tol : float;  (** λ pruning threshold relative to max λ *)
  warm_iters : int;
      (** iterations during which nothing is pruned, giving the full
          posterior a chance to resurrect basis functions the greedy
          initializer missed *)
  update_r : bool;  (** false freezes R (ablation) *)
  update_sigma0 : bool;
      (** eq. 31's ML noise update.  Default false: the update converges
          to the DOF-corrected {e training} residual, which badly
          underestimates the held-out noise when the model error is a
          structured nonlinear residual rather than iid noise (as with
          any deterministic simulator), destabilizing the shrinkage.
          The cross-validated σ0 from the initializer is kept instead;
          enabling this applies eq. 31 with a floor at 0.9× the
          initializer's held-out error. *)
  r_ridge : float;  (** diagonal added to R after each update *)
  min_sigma0 : float;
  min_active : int;  (** never prune below this many basis functions *)
}

val default_config : config

val prune : config -> iter:int -> Vec.t -> int array
(** Active set for the next E-step: columns with λ above the relative
    floor, falling back deterministically (largest λ first, ties broken
    by column index) to the top [min_active] columns when pruning would
    leave too few — e.g. when every λ is zero.  Exposed for tests. *)

type trace = {
  iterations : int;
  nlml_history : float array;  (** one value per E-step, in order *)
  active_history : int array;  (** active-set size per iteration *)
  converged : bool;
}

val run :
  ?config:config ->
  ?posterior:
    (?need_sigma:bool -> Dataset.t -> Prior.t -> active:int array -> Posterior.t) ->
  Dataset.t ->
  Prior.t ->
  Prior.t * Posterior.t * trace
(** [run data prior0] iterates EM from [prior0] and returns the final
    hyper-parameters, the posterior under them, and the trace.
    [posterior] overrides the E-step solver (default:
    {!Posterior.compute} with one shared {!Posterior.workspace} for the
    whole run) — the bench harness uses this to time alternative
    posterior implementations through an identical EM loop. *)
