(** Expectation-maximization over the C-BMF hyper-parameters
    (paper §3.3, eqs. 26–31).

    Each iteration computes the structured posterior (E-step) and then
    re-estimates Ω = {λ, R, σ0} (M-step):

    - λ_m ← Tr(R⁻¹(Σ_m + μ_m μ_mᵀ)) / K            (eq. 29)
    - R   ← (1/|A|) Σ_{m∈A} (Σ_m + μ_m μ_mᵀ)/λ_m    (eq. 30)
    - σ0² ← (‖y − Dμ‖² + σ0²(NK − σ0²·Tr G⁻¹)) / NK (eq. 31, using the
      exact identity Tr(DΣDᵀ) = σ0²(NK − σ0²·Tr G⁻¹))

    λ·R has a scale ambiguity, so R is renormalized to unit mean
    diagonal, symmetrized and ridge-stabilized after every update;
    basis functions whose λ collapses are pruned from the active set
    (standard sparse-Bayesian-learning pruning). *)

open Cbmf_linalg
open Cbmf_model

type config = {
  max_iter : int;
  tol : float;  (** relative NLML change for convergence *)
  prune_tol : float;  (** λ pruning threshold relative to max λ *)
  warm_iters : int;
      (** iterations during which nothing is pruned, giving the full
          posterior a chance to resurrect basis functions the greedy
          initializer missed *)
  update_r : bool;  (** false freezes R (ablation) *)
  update_sigma0 : bool;
      (** eq. 31's ML noise update.  Default false: the update converges
          to the DOF-corrected {e training} residual, which badly
          underestimates the held-out noise when the model error is a
          structured nonlinear residual rather than iid noise (as with
          any deterministic simulator), destabilizing the shrinkage.
          The cross-validated σ0 from the initializer is kept instead;
          enabling this applies eq. 31 with a floor at 0.9× the
          initializer's held-out error. *)
  r_ridge : float;  (** diagonal added to R after each update *)
  min_sigma0 : float;
  min_active : int;  (** never prune below this many basis functions *)
  max_recoveries : int;
      (** budget of recovery actions (posterior fallbacks, M-step
          skips, divergence rollbacks) before the loop stops trying to
          self-heal and finishes with its best state *)
  divergence_tol : float;
      (** relative NLML increase treated as divergence; generous by
          default (0.5) because warm-up pruning legitimately jumps the
          NLML *)
}

val default_config : config

val prune : config -> iter:int -> Vec.t -> int array
(** Active set for the next E-step: columns with λ above the relative
    floor, falling back deterministically (largest λ first, ties broken
    by column index) to the top [min_active] columns when pruning would
    leave too few — e.g. when every λ is zero.  Exposed for tests. *)

type trace = {
  iterations : int;
  nlml_history : float array;  (** one value per E-step, in order *)
  active_history : int array;  (** active-set size per iteration *)
  converged : bool;
  recoveries : int;  (** recovery actions taken (0 for a clean run) *)
  warm_start : bool;
      (** true iff the run was seeded through [?init_hypers] (a
          streaming resync) rather than the cold [prior0] *)
  diag : Cbmf_robust.Diag.t;
      (** every fault seen and recovered from during the run *)
}

val run :
  ?config:config ->
  ?posterior:
    (?need_sigma:bool -> Dataset.t -> Prior.t -> active:int array -> Posterior.t) ->
  ?diag:Cbmf_robust.Diag.t ->
  ?init_hypers:Prior.t ->
  Dataset.t ->
  Prior.t ->
  Prior.t * Posterior.t * trace
(** [run data prior0] iterates EM from [prior0] and returns the final
    hyper-parameters, the posterior under them, and the trace.
    [posterior] overrides the E-step solver (default:
    {!Posterior.compute} with one shared {!Posterior.workspace} for the
    whole run) — the bench harness uses this to time alternative
    posterior implementations through an identical EM loop.
    [init_hypers] warm-starts the run: the supplied Ω = {λ, R, σ0}
    replaces [prior0] as the first iterate (shape-checked against it),
    [trace.warm_start] records the entry, and everything downstream is
    the standard loop — the active-learning resync path, where the
    previous fit's hyper-parameters are a far better start than the
    grid initializer's.

    Robustness: the dataset is validated ({!Dataset.validate_exn}) on
    entry; every E-step runs behind a fallback chain (auto path → dual
    path → jittered dual retry) with a NaN/Inf watchdog; M-step faults
    skip the update instead of crashing; a relative NLML increase
    beyond [divergence_tol] triggers a rollback to the last-good
    hyper-parameters with step damping.  All recoveries are recorded in
    [diag] (also installed as the ambient {!Cbmf_robust.Diag} recorder
    for the duration of the run, so deeper layers such as
    {!Cbmf_linalg.Chol.factorize_with_retry} report into it).  A
    fault-free run is bit-identical to the unguarded loop. *)
