(** Structured Bayesian posterior for the C-BMF prior (paper §3.2).

    Implements eqs. (19)–(22) without ever forming the (M·K)-sized
    objects.  With samples ordered state-major, the marginal Gram
    matrix G = σ0²I + D·A·Dᵀ has (k,k′) block R[k,k′]·(B_k Λ B_{k′}ᵀ),
    so one (N·K)-sized Cholesky plus per-basis contractions give

    - μ_m = λ_m·R·v_m          with v_m = (Dᵐ)ᵀ G⁻¹ y,
    - Σ_m = λ_m·R − λ_m²·R·W_m·R   with W_m = (Dᵐ)ᵀ G⁻¹ Dᵐ,

    where Dᵐ touches only state k's rows in column k.  The negative
    log marginal likelihood of eq. (25) falls out of the same
    factorization. *)

open Cbmf_linalg
open Cbmf_model

type path = [ `Dual | `Primal ]
(** Which linear system the posterior was solved through: [`Dual] is
    the NK×NK marginal Gram G = σ0²I + DADᵀ; [`Primal] is the
    (aK)×(aK) Woodbury system P = A⁻¹ + σ0⁻²DᵀD, cheaper in the
    post-pruning regime aK < NK. *)

type t = {
  mu : Mat.t;  (** M×K posterior mean; row m is μ_m (zero if inactive) *)
  sigma_blocks : (int * Mat.t) array;
      (** (m, Σ_m) for every active m — only when requested *)
  active : int array;
  nlml : float;  (** eq. (25): yᵀG⁻¹y + log det G *)
  resid_sq : float;  (** ‖y − D·μ‖² *)
  trace_ginv : float;  (** Tr(G⁻¹) (0 when covariance not requested) *)
  nk : int;
  path : path;  (** solver path actually taken *)
  predictive : state:int -> Vec.t -> float * float;
      (** [(mean, variance)] of the latent model value for one basis row
          (length M, same units as the training design) at one state.
          The variance is the exact posterior-predictive
          [aᵀΣ_p a = aᵀA a − wᵀG⁻¹w] of the coefficient functional —
          add σ0² for the observation noise. *)
  state_cov : unit -> Mat.t array;
      (** K per-state a×a posterior covariance blocks of the {e active}
          coefficients (a = [Array.length active], ordered as [active]):
          block [s] is [Cov(α_{active, s})] = Σ_p restricted to state
          [s]'s active rows/columns.  For any basis row [b] (length M)
          the posterior-predictive variance at state [s] is exactly
          [uᵀ·C_s·u] with [u = b.(active)] — the finite-dimensional Σ
          factor a model snapshot persists so a served model reproduces
          {!predictive}'s variance without the training data.  Computed
          on demand from the cached factorization (O(K·(NK)²·a) dual /
          O((aK)³/6) primal); call once and keep the result. *)
}

type workspace
(** Reusable buffers for the large per-solve allocations (NK×NK Gram
    assembly, flat response, NK×aK stacked TRSM).  Thread one
    workspace through repeated [compute] calls (as {!Em.run} does) and
    the allocation churn drops to ~zero after the first call.  Nothing
    in the returned {!t} aliases the workspace, so earlier results stay
    valid when it is reused. *)

val make_workspace : unit -> workspace

val compute :
  ?need_sigma:bool ->
  ?path:[ `Auto | `Dual | `Primal ] ->
  ?ws:workspace ->
  Dataset.t ->
  Prior.t ->
  active:int array ->
  t
(** [compute data prior ~active] evaluates the posterior restricted to
    the active basis set (inactive λ are treated as exactly 0).
    [need_sigma] (default true) additionally computes the Σ_m blocks
    and Tr(G⁻¹) — needed by the EM M-step but not by MAP-coefficient
    extraction.  [path] (default [`Auto]) selects the solver: [`Auto]
    takes the primal (Woodbury) path when aK < NK and every active λ
    is strictly positive, the dual path otherwise; forcing [`Primal]
    requires every active λ > 0.  Both paths agree with {!naive_dense}
    to solver precision.  [ws] supplies reusable buffers (see
    {!workspace}). *)

val coefficients : t -> Mat.t
(** K×M coefficient matrix (the MAP solution of eq. 22, transposed
    into the per-state layout used by the rest of the code base). *)

type primal_system = {
  p_mat : Mat.t;
      (** P = A⁻¹ + σ0⁻²·DᵀD, aK×aK, unknowns state-major
          ((s,j) ↦ s·a+j, j indexing [sys_active]) *)
  rhs : Vec.t;  (** c = Dᵀy, same ordering *)
  yty : float;  (** ‖y‖² over all states *)
  log_det_a : float;  (** K·Σ_j log λ_j + a·log det R *)
  sys_active : int array;  (** the active set the system was built on *)
  sys_nk : int;  (** N·K at build time *)
}
(** Everything the primal path derives from the data: the NLML is
    σ0⁻²·(yty − cᵀμ_w) + 2·NK·log σ0 + log_det_a + log det P with
    μ_w = σ0⁻²·P⁻¹c, and the predictive variance at (state, basis row
    b) is the P⁻¹ quadratic form of b's active slice embedded in state
    [state]'s block. *)

val primal_system : Dataset.t -> Prior.t -> active:int array -> primal_system
(** [primal_system d prior ~active] assembles the primal normal system
    through the {e same} helpers (same float-op order) as the [`Primal]
    path of {!compute} — the seed of [Cbmf_active.Update]'s streaming
    rank-one factorization updates.  Requires every active λ > 0. *)

val naive_dense : Dataset.t -> Prior.t -> Mat.t * Mat.t * float
(** Reference implementation that builds the full (M·K) system of
    eqs. (19)–(21) densely: returns (μ as M×K, Σ_p as MK×MK, nlml).
    Exponential-cost guardrails: only for tiny test instances. *)
