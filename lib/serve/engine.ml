open Cbmf_linalg
open Cbmf_basis
open Cbmf_parallel
open Cbmf_robust

(* The site named by the typed fault raised when a batch overruns its
   wall-clock budget — the server maps it to a [Deadline_exceeded]
   reply.  The check sits at chunk granularity, so an expired budget
   abandons the batch within one chunk's work instead of running to
   completion and replying late. *)
let deadline_site = "serve.deadline"

let deadline_fault step =
  Fault.Error
    (Fault.Early_stop
       { site = deadline_site; step; reason = "deadline exceeded" })

(* Fixed fan-out granularity, owned by [Tune.batch_chunk] ([CBMF_CHUNK]
   override, 64 otherwise).  MUST NOT depend on the pool size — chunk
   boundaries being a pure function of the batch makes the output
   bit-identical at any CBMF_DOMAINS.  (Changing [CBMF_CHUNK] itself
   may move points between buckets and hence low-order variance bits;
   it is an environment constant, so any fixed setting is still
   domain-count-invariant.) *)
let chunk_size = Tune.batch_chunk ()

(* Per-slot scratch for chunk processing: the standardized design
   slab, its covariance product, the hoisted μ column and the staged
   input row.  Used only under the pool (slots are then exclusive);
   the direct single-chunk path allocates locally instead, because
   concurrent systhread callers — the serving tier — share the calling
   domain's slot. *)
let chunk_arena = Arena.create ()

let id_us = Arena.fresh_id ()

let id_w = Arena.fresh_id ()

let id_mu_s = Arena.fresh_id ()

let id_x = Arena.fresh_id ()

let predict_batch ?pool ?deadline (m : Model.t) ~states ~(xs : Mat.t) =
  let n = xs.Mat.rows in
  let check_deadline step =
    match deadline with
    | None -> ()
    | Some d -> if Unix.gettimeofday () > d then raise (deadline_fault step)
  in
  check_deadline 0;
  if Array.length states <> n then
    invalid_arg
      (Printf.sprintf "Engine.predict_batch: %d states for %d points"
         (Array.length states) n);
  if xs.Mat.cols <> m.Model.input_dim then
    invalid_arg
      (Printf.sprintf "Engine.predict_batch: input dim %d, expected %d"
         xs.Mat.cols m.Model.input_dim);
  Array.iter
    (fun s ->
      if s < 0 || s >= m.Model.n_states then
        invalid_arg
          (Printf.sprintf "Engine.predict_batch: state %d of %d" s
             m.Model.n_states))
    states;
  let a = Array.length m.Model.terms in
  let k = m.Model.n_states in
  let d = m.Model.input_dim in
  let means = Array.make n 0.0 in
  let sds = Array.make n 0.0 in
  let noise = m.Model.sigma0 *. m.Model.sigma0 in
  let process_chunk ~grab c =
    check_deadline c;
    let lo = c * chunk_size in
    let hi = min n (lo + chunk_size) in
    let cn = hi - lo in
    (* Group chunk points by state so each group's variances come from
       one blocked matmul against that state's covariance block. *)
    let buckets = Array.make k [] in
    for i = cn - 1 downto 0 do
      let s = states.(lo + i) in
      buckets.(s) <- i :: buckets.(s)
    done;
    let mu = m.Model.mu in
    let x = grab id_x d in
    for s = 0 to k - 1 do
      match buckets.(s) with
      | [] -> ()
      | idxs ->
          let idxs = Array.of_list idxs in
          let g = Array.length idxs in
          (* Standardized active rows for the group — the same
             expression Model.features evaluates, so the bits agree.
             The input row is staged into scratch instead of copied
             fresh per point. *)
          let us = Mat.unsafe_of_flat ~rows:g ~cols:a (grab id_us (g * a)) in
          let ud = us.Mat.data in
          for gi = 0 to g - 1 do
            Array.blit xs.Mat.data ((lo + idxs.(gi)) * d) x 0 d;
            let row = gi * a in
            for j = 0 to a - 1 do
              ud.(row + j) <-
                (Term.eval m.Model.terms.(j) x -. Mat.get m.Model.col_means s j)
                /. m.Model.col_scales.(j)
            done
          done;
          (* cov.(s) is symmetric, so W = Us·covᵀ has row i equal to
             cov·u_i, each entry a sequential dot — bit-identical to
             Model.predict's mat_vec. *)
          let w = Mat.unsafe_of_flat ~rows:g ~cols:a (grab id_w (g * a)) in
          Mat.matmul_nt_into us m.Model.cov.(s) ~dst:w;
          (* Hoist the strided μ column; same values as Mat.get mu j s. *)
          let mu_s = grab id_mu_s a in
          for j = 0 to a - 1 do
            mu_s.(j) <- mu.Mat.data.((j * k) + s)
          done;
          let wd = w.Mat.data in
          for gi = 0 to g - 1 do
            let row = gi * a in
            let mean_std = ref 0.0 in
            for j = 0 to a - 1 do
              mean_std := !mean_std +. (ud.(row + j) *. mu_s.(j))
            done;
            let var = ref 0.0 in
            for j = 0 to a - 1 do
              var := !var +. (ud.(row + j) *. wd.(row + j))
            done;
            let i = lo + idxs.(gi) in
            means.(i) <- m.Model.y_means.(s) +. (m.Model.y_scale *. !mean_std);
            sds.(i) <-
              m.Model.y_scale *. sqrt (Float.max !var 0.0 +. noise)
          done
    done
  in
  let nchunks = (n + chunk_size - 1) / chunk_size in
  (if nchunks <= 1 then begin
     if nchunks = 1 then
       process_chunk ~grab:(fun _ len -> Array.make len 0.0) 0
   end
   else
     let pool = match pool with Some p -> p | None -> Pool.default () in
     Pool.parallel_for ~chunk:1 pool ~n:nchunks
       (process_chunk ~grab:(Arena.grab chunk_arena)));
  (means, sds)

let predict m ~state (x : Vec.t) =
  let xs = Mat.unsafe_of_flat ~rows:1 ~cols:(Array.length x) (Array.copy x) in
  let means, sds = predict_batch m ~states:[| state |] ~xs in
  (means.(0), sds.(0))
