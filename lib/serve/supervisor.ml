type replica = {
  index : int;
  mutable server : Server.t option;
  mutable r_addr : Unix.sockaddr option;
  mutable backoff : float;  (* delay before the next restart attempt *)
  mutable next_attempt : float;  (* earliest wall-clock restart time *)
}

type t = {
  make : int -> Server.t;
  health_interval : float;
  base_backoff : float;
  max_backoff : float;
  ping_timeout : float;
  lock : Mutex.t;
  replicas : replica array;
  mutable restarts : int;
  mutable stopping : bool;
  mutable thread : Thread.t option;
}

let ping_ok ~timeout addr =
  match Client.connect ~timeout addr with
  | exception _ -> false
  | c ->
      let ok = match Client.ping c with Ok _ -> true | Error _ -> false in
      Client.close c;
      ok

(* Replace a replica's server.  Stopping the old one first is safe
   even when it already died (Server.stop is idempotent) and releases
   its listening socket so a fixed address can be rebound.  [make]
   failing (e.g. the address is still busy) just reschedules the
   attempt with a grown backoff. *)
let restart_locked t r =
  (match r.server with
  | Some s -> ( try Server.stop s with _ -> ())
  | None -> ());
  r.server <- None;
  r.r_addr <- None;
  (match t.make r.index with
  | s ->
      r.server <- Some s;
      r.r_addr <- Some (Server.addr s);
      t.restarts <- t.restarts + 1
  | exception _ -> ());
  r.next_attempt <- Unix.gettimeofday () +. r.backoff;
  r.backoff <- Float.min t.max_backoff (r.backoff *. 2.0)

let check_replica t r =
  let addr = Mutex.protect t.lock (fun () -> r.r_addr) in
  let alive =
    match addr with
    | Some a -> ping_ok ~timeout:t.ping_timeout a
    | None -> false
  in
  Mutex.protect t.lock (fun () ->
      if t.stopping then ()
      else if alive then r.backoff <- t.base_backoff
      else if Unix.gettimeofday () >= r.next_attempt then restart_locked t r)

let supervise t =
  let rec loop () =
    let stopping = Mutex.protect t.lock (fun () -> t.stopping) in
    if not stopping then begin
      Array.iter (check_replica t) t.replicas;
      Thread.delay t.health_interval;
      loop ()
    end
  in
  loop ()

let start ?(health_interval = 0.1) ?(base_backoff = 0.05) ?(max_backoff = 1.0)
    ?(ping_timeout = 1.0) ~n make =
  if n < 1 then invalid_arg "Supervisor.start: need at least one replica";
  let t =
    {
      make;
      health_interval;
      base_backoff;
      max_backoff;
      ping_timeout;
      lock = Mutex.create ();
      replicas =
        Array.init n (fun index ->
            {
              index;
              server = None;
              r_addr = None;
              backoff = base_backoff;
              next_attempt = 0.0;
            });
      restarts = 0;
      stopping = false;
      thread = None;
    }
  in
  (* Bring every replica up before returning — the initial spawns are
     not counted as restarts. *)
  Array.iter
    (fun r ->
      match make r.index with
      | s ->
          r.server <- Some s;
          r.r_addr <- Some (Server.addr s)
      | exception e ->
          Array.iter
            (fun r ->
              match r.server with
              | Some s -> ( try Server.stop s with _ -> ())
              | None -> ())
            t.replicas;
          raise e)
    t.replicas;
  t.thread <- Some (Thread.create supervise t);
  t

let addrs t =
  Mutex.protect t.lock (fun () ->
      Array.to_list t.replicas
      |> List.filter_map (fun r -> r.r_addr))

let restarts t = Mutex.protect t.lock (fun () -> t.restarts)

let stop t =
  let th =
    Mutex.protect t.lock (fun () ->
        t.stopping <- true;
        let th = t.thread in
        t.thread <- None;
        th)
  in
  (match th with Some th -> Thread.join th | None -> ());
  Array.iter
    (fun r ->
      let s =
        Mutex.protect t.lock (fun () ->
            let s = r.server in
            r.server <- None;
            r.r_addr <- None;
            s)
      in
      match s with Some s -> ( try Server.stop s with _ -> ()) | None -> ())
    t.replicas
