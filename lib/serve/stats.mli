(** Thread-safe serving counters and a fixed-bucket latency histogram.

    Latencies land in log-spaced microsecond buckets (1–2–5 per
    decade, 1 µs to 10 s); p50/p99 are read off the histogram as the
    upper edge of the bucket where the cumulative count crosses the
    quantile — coarse, allocation-free, and stable under concurrency.

    {!to_json} renders everything as one JSON object (hand-rolled —
    no JSON dependency) whose schema the serve smoke test validates. *)

type t

val create : unit -> t

val record : ?batch:int -> t -> op:string -> ok:bool -> seconds:float -> unit
(** Count one request of kind [op] ("load", "predict", "stats", …),
    its batch size if any, whether it succeeded, and its wall-clock
    latency. *)

val record_shed : t -> unit
(** One connection refused by admission control (queue full → typed
    [Overloaded] reply and close). *)

val record_deadline : t -> unit
(** One request answered [Deadline_exceeded]. *)

val set_queue_depth : t -> int -> unit
(** Update the pending-connection gauge (also tracks its peak). *)

val record_queue_wait : t -> seconds:float -> unit
(** Time one connection spent on the admission queue (accept → worker
    pickup). *)

val record_batch_phase : t -> batch_wait:float -> compute:float -> unit
(** Per predict request: time parked in the dynamic batcher (enqueue →
    drain) and engine compute time (its share being the whole merged
    call), both in seconds. *)

val record_flush : t -> requests:int -> points:int -> unit
(** One merged engine call: how many wire requests it coalesced and how
    many points it carried (the occupancy histogram buckets are point
    counts, not µs). *)

val sheds : t -> int

val deadlines : t -> int

val quantile_us : t -> float -> float
(** Upper bucket edge (µs) at the given quantile in [0, 1]; 0 when
    nothing was recorded. *)

val phase_quantile :
  t -> [ `Queue_wait | `Batch_wait | `Compute | `Occupancy ] -> float -> float
(** Same read, but off one of the phase histograms ([`Occupancy] is in
    points). *)

val to_json : ?extra:(string * string) list -> t -> string
(** One JSON object: per-op request counts, error count, total points,
    max batch size, p50/p99 and the non-empty histogram buckets, the
    per-phase latency split ("phases": queue-wait / batch-wait /
    compute) and the batch-occupancy histogram ("batch_occupancy").
    [extra] appends pre-rendered members (e.g.
    [("registry", registry_json)]). *)

val registry_json : Registry.stats -> string
(** The registry counters as a JSON object, for {!to_json}'s [extra]. *)
