(** Concurrent snapshot-serving socket server.

    One acceptor thread multiplexes the listening socket against a
    self-pipe (so shutdown interrupts a blocking accept); accepted
    connections go through a bounded queue to a fixed pool of worker
    threads, each of which serves its connection's requests
    sequentially until the peer hangs up, a timeout fires, or the
    framing desynchronizes.

    {b Failure semantics.}  A request that fails — malformed body,
    unknown snapshot, shape mismatch, a typed {!Cbmf_robust.Fault}
    during load — produces a typed {!Protocol.Error} reply on the same
    connection; the server never dies on bad input.  Only two things
    end a connection from the server side: an unrecoverable framing
    error (torn frame or hostile length prefix — the stream cannot be
    resynchronized) and the per-request socket timeout.

    Works identically over Unix-domain ([ADDR_UNIX path]) and TCP
    ([ADDR_INET]) sockets. *)

type config = {
  workers : int;  (** worker threads (default 4) *)
  timeout : float;  (** per-request socket send/receive timeout, s (default 10) *)
  backlog : int;  (** listen backlog (default 16) *)
  queue_cap : int;  (** pending-connection bound (default 2·workers) *)
}

val default_config : config

val serve_fd : ?stats:Stats.t -> registry:Registry.t -> Unix.file_descr -> unit
(** Serve one pre-connected descriptor until the peer hangs up — no
    listener, no threads, same request handling and failure semantics
    as the full server.  A [Shutdown] request simply ends the
    connection.  The descriptor is closed on return.  This is the
    socketpair-loopback entry point the tests (and embedders) use. *)

type t

val start :
  ?config:config ->
  ?registry:Registry.t ->
  ?stats:Stats.t ->
  Unix.sockaddr ->
  t
(** Bind, listen and spawn the acceptor + workers.  For [ADDR_UNIX] a
    stale socket file is unlinked first; for [ADDR_INET] the socket is
    [SO_REUSEADDR] and port 0 picks a free port (see {!addr}). *)

val addr : t -> Unix.sockaddr
(** The actually bound address. *)

val registry : t -> Registry.t

val stats : t -> Stats.t

val request_stop : t -> unit
(** Signal shutdown without joining — safe from a worker thread (this
    is what a [Shutdown] request does). *)

val wait : t -> unit
(** Block until all threads exit.  Call from the thread that owns the
    server, not from a worker. *)

val stop : t -> unit
(** [request_stop] then [wait]; idempotent. *)
