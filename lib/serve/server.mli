(** Concurrent snapshot-serving socket server.

    One acceptor thread multiplexes the listening socket against a
    self-pipe (so shutdown interrupts a blocking accept; [EINTR] from
    signals just retries the select).  Accepted connections go through
    a bounded queue to a fixed pool of worker threads, each of which
    serves its connection's requests sequentially until the peer hangs
    up, a timeout fires, or the framing desynchronizes.

    {b Admission control.}  The acceptor never blocks on a full queue:
    when [queue_cap] connections are already pending, a new arrival is
    {e shed} — it immediately gets a typed {!Protocol.Overloaded}
    reply carrying the observed queue depth and a retry hint, and is
    closed.  Under overload the server thus keeps answering (tiny
    refusal frames) instead of silently stalling; sheds are counted in
    {!Stats}.

    {b Deadlines.}  A positive [deadline] gives every request a
    wall-clock budget anchored at the connection's accept time for its
    first request (queue wait counts) and at frame arrival after that.
    Clients can tighten it per request with
    {!Protocol.request.Predict_deadline}.  An expired budget abandons
    the batch mid-computation (chunk granularity, see
    {!Engine.predict_batch}) and answers a typed
    [Error { code = Deadline_exceeded; _ }].

    {b Dynamic batching.}  Predict requests from {e all} connections
    are coalesced by a shared {!Batcher} into merged engine calls
    under a [batch_window_us] / [batch_max] policy; replies are
    bit-identical to unbatched serving (see {!Batcher}), deadlines
    stay anchored where they were, and [batch_window_us = 0] restores
    the inline engine call.

    {b Graceful drain.}  {!request_stop} stops accepting but gives
    queued and in-flight requests up to [drain_timeout] to finish
    normally; only past that window are leftovers cut off (queued
    connections closed, in-flight ones shut down so their worker's
    read fails).  In-flight requests therefore never lose an
    already-computed reply to shutdown.

    {b Failure semantics.}  A request that fails — malformed body,
    unknown snapshot, shape mismatch, a typed {!Cbmf_robust.Fault}
    during load, an expired deadline — produces a typed
    {!Protocol.Error} reply on the same connection; the server never
    dies on bad input.  Only three things end a connection from the
    server side: an unrecoverable framing error, the per-request
    socket timeout, and the drain cutoff.

    {b Chaos sites.}  Four {!Cbmf_robust.Inject} sites exercise the
    failure paths deterministically: [serve.accept_drop] (connection
    dropped between accept and enqueue), [serve.slow_reply] (reply
    delayed), [serve.torn_frame] (reply frame cut mid-write, then
    close) and [serve.worker_crash] (request dropped with no reply,
    connection closed).  All are no-ops unless armed.

    Works identically over Unix-domain ([ADDR_UNIX path]) and TCP
    ([ADDR_INET]) sockets. *)

type config = {
  workers : int;  (** worker threads (default 4) *)
  timeout : float;  (** per-request socket send/receive timeout, s (default 10) *)
  backlog : int;  (** listen backlog (default 16) *)
  queue_cap : int;
      (** pending-connection bound (default 8); arrivals beyond it are
          shed with a typed [Overloaded] reply, never queued blocking *)
  deadline : float;
      (** per-request wall-clock budget in seconds; [0.] (the default)
          disables the server-side deadline *)
  drain_timeout : float;
      (** grace window in seconds for queued and in-flight requests to
          finish after {!request_stop} (default 1) *)
  retry_after_ms : int;
      (** retry hint carried by [Overloaded] replies (default 50) *)
  batch_window_us : int;
      (** dynamic-batching window in µs: predicts from all connections
          park in a {!Batcher} for up to this long (idle-edge only, see
          {!Batcher}) and are coalesced into merged engine calls.
          [0] serves every request individually (engine called inline);
          negative (the default) takes
          {!Cbmf_parallel.Tune.batch_window_us}
          ([CBMF_BATCH_WINDOW_US], 200 otherwise).  Replies are
          bit-identical either way. *)
  batch_max : int;
      (** points per merged engine call before an early flush;
          [<= 0] (the default) takes {!Cbmf_parallel.Tune.batch_max}
          ([CBMF_BATCH_MAX], 4 engine chunks otherwise) *)
}

val default_config : config

val serve_fd :
  ?stats:Stats.t ->
  ?batcher:Batcher.t ->
  ?deadline:float ->
  registry:Registry.t ->
  Unix.file_descr ->
  unit
(** Serve one pre-connected descriptor until the peer hangs up — no
    listener, no threads, same request handling and failure semantics
    as the full server.  [deadline] is the per-request budget in
    seconds ([0.], the default, disables it).  [batcher] routes this
    connection's predicts through a shared {!Batcher}, so several
    [serve_fd] threads coalesce across descriptors exactly like the
    full server's workers (the caller owns the batcher's lifetime).  A
    [Shutdown] request simply ends the connection.  The descriptor is
    closed on return.  This is the socketpair-loopback entry point the
    tests (and embedders) use. *)

type t

val start :
  ?config:config ->
  ?registry:Registry.t ->
  ?stats:Stats.t ->
  Unix.sockaddr ->
  t
(** Bind, listen and spawn the acceptor + workers.  For [ADDR_UNIX] a
    stale socket file is unlinked first; for [ADDR_INET] the socket is
    [SO_REUSEADDR] and port 0 picks a free port (see {!addr}). *)

val addr : t -> Unix.sockaddr
(** The actually bound address. *)

val registry : t -> Registry.t

val stats : t -> Stats.t

val request_stop : t -> unit
(** Signal shutdown without joining — safe from a worker thread (this
    is what a [Shutdown] request does).  Starts the graceful drain:
    no new connections, existing work gets [drain_timeout] to
    finish. *)

val wait : t -> unit
(** Block until all threads exit (including the drain).  Call from the
    thread that owns the server, not from a worker. *)

val stop : t -> unit
(** [request_stop] then [wait]; idempotent. *)
