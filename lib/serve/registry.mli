(** Warm model registry: named slots, lazy loading, LRU eviction.

    A slot is either {e resident} (the decoded {!Model.t} is in memory)
    or {e lazy} (only a snapshot path is registered; the first {!get}
    loads it).  Resident bytes are bounded by a configurable budget:
    whenever an insert or load pushes the total over it, the
    least-recently-used resident slots are evicted — path-backed slots
    demote back to lazy (a later hit reloads them), while slots that
    were {!put} directly are dropped for good.  The slot just touched
    is never evicted, so a single model larger than the whole budget
    still serves (the budget is then simply exceeded by that one
    model).

    All operations are thread-safe (one mutex; loading happens inside
    it, so two threads racing on the same cold slot decode once).

    {b Generations.}  Every {!put} and {!reload} of a name bumps that
    slot's generation counter (and a registry-global one).  Models are
    immutable values, so a reload is an atomic pointer swap: requests
    that already fetched the old model finish on it, the next {!find}
    sees the new one, and nothing is ever torn.  {!reload_path}
    decodes the snapshot {e outside} the lock — a slow or corrupt
    image neither stalls serving nor touches the slot (typed
    [Bad_snapshot] faults roll back for free). *)

type t

val create : ?max_bytes:int -> unit -> t
(** [max_bytes] defaults to 256 MiB. *)

val put : t -> name:string -> Model.t -> unit
(** Insert or replace a resident model (no backing path). *)

val reload : t -> name:string -> Model.t -> int
(** Atomic generation swap: like {!put} but returns the slot's new
    generation and counts as a reload.  In-flight users of the old
    model are unaffected (immutability), new lookups see the new
    model immediately. *)

val reload_path : t -> name:string -> string -> Model.t * int
(** Load the snapshot at the path (outside the registry lock), then
    swap it in and re-bind the slot to that path.  Raises the loader's
    typed {!Cbmf_robust.Fault.Bad_snapshot} on a corrupt image, in
    which case the slot is untouched — the old model keeps serving
    (rollback by construction). *)

val generation : t -> name:string -> int
(** The slot's reload generation (0 if never resident or unknown). *)

val total_generation : t -> int
(** Registry-global counter bumped by every {!put}/{!reload} — what
    {!Protocol.reply.Pong} reports. *)

val add_path : t -> name:string -> string -> unit
(** Register a snapshot file under [name] without loading it.  Replaces
    any existing slot of that name (the old resident model, if any, is
    released). *)

val get : t -> name:string -> Model.t
(** Resident slot: a cache hit.  Lazy slot: loads the snapshot (a
    cache miss — {!Snapshot.load} faults propagate and the slot stays
    lazy).  Unknown name: raises [Not_found]. *)

val find : t -> name:string -> Model.t option
(** Like {!get} but [None] on unknown names.  Loading faults still
    propagate — an unreadable registered snapshot is an error, not an
    absence. *)

val remove : t -> name:string -> unit
(** Forget the slot entirely (no-op on unknown names). *)

val names : t -> string list
(** Registered names, sorted. *)

type stats = {
  hits : int;  (** [get]/[find] served from a resident slot *)
  misses : int;  (** [get]/[find] that had to load from disk *)
  loads : int;  (** successful snapshot loads *)
  evictions : int;  (** slots evicted or demoted by the budget *)
  reloads : int;  (** successful {!reload}/{!reload_path} swaps *)
  generation : int;  (** global generation counter *)
  resident_bytes : int;
  resident_models : int;
  max_bytes : int;
}

val stats : t -> stats
