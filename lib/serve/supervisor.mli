(** Replica supervision: N servers, health checks, restart-on-crash.

    The supervisor owns [n] replicas, each produced by a user factory
    [make index] (which binds its own address — a fresh Unix-socket
    path or TCP port 0 both work).  A background thread pings every
    replica each [health_interval] via the {!Protocol.request.Ping}
    op; a replica that cannot be reached (refused connect, hangup,
    timeout) is restarted: the old server is stopped (idempotent even
    when it already died, and releases its listening socket) and
    [make] is called again.

    Restart attempts for a persistently-failing replica are spaced by
    a per-replica exponential backoff ([base_backoff] doubling up to
    [max_backoff]); one successful health check resets it.  A failing
    [make] (e.g. its address still busy) reschedules with the grown
    backoff instead of raising.

    {!addrs} always returns the {e currently bound} addresses — hand
    it to {!Client.with_failover} so clients follow replicas across
    restarts. *)

type t

val start :
  ?health_interval:float ->
  ?base_backoff:float ->
  ?max_backoff:float ->
  ?ping_timeout:float ->
  n:int ->
  (int -> Server.t) ->
  t
(** Spawn all [n] replicas (a failing initial spawn stops the already
    started ones and re-raises), then start the health-check thread.
    Defaults: [health_interval] 0.1 s, [base_backoff] 0.05 s,
    [max_backoff] 1 s, [ping_timeout] 1 s.  Raises [Invalid_argument]
    when [n < 1]. *)

val addrs : t -> Unix.sockaddr list
(** Currently bound replica addresses (a replica mid-restart may be
    momentarily absent). *)

val restarts : t -> int
(** Replicas restarted since {!start} (initial spawns not counted). *)

val stop : t -> unit
(** Stop the health-check thread, then every replica. *)
