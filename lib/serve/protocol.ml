open Cbmf_linalg

let max_frame_len = 64 * 1024 * 1024

type source = Path of string | Inline of string

type request =
  | Load of { name : string; source : source }
  | Predict of { name : string; states : int array; xs : Mat.t }
  | Stats
  | Shutdown
  | Ping
  | Reload of { name : string; source : source }
  | Predict_deadline of {
      name : string;
      states : int array;
      xs : Mat.t;
      deadline_ms : int;
    }

type error_code =
  | Bad_frame
  | Unknown_op
  | Bad_snapshot
  | Model_not_found
  | Bad_request
  | Internal
  | Deadline_exceeded

type reply =
  | Loaded of { n_active : int; n_states : int; bytes : int }
  | Predicted of { means : float array; sds : float array }
  | Stats_json of string
  | Shutting_down
  | Pong of { generation : int }
  | Reloaded of { generation : int; n_active : int; n_states : int; bytes : int }
  | Overloaded of { queue_depth : int; retry_after_ms : int }
  | Error of { code : error_code; message : string }

let error_code_name = function
  | Bad_frame -> "bad-frame"
  | Unknown_op -> "unknown-op"
  | Bad_snapshot -> "bad-snapshot"
  | Model_not_found -> "model-not-found"
  | Bad_request -> "bad-request"
  | Internal -> "internal"
  | Deadline_exceeded -> "deadline-exceeded"

(* --- Opcodes ---------------------------------------------------------

   Strictly additive: the pre-existing encodings (ops 1-4, reply tags
   1-4/255, error codes 1-6) are frozen — a client built before this
   file grew Ping/Reload/deadlines keeps speaking the same bytes and
   keeps getting byte-identical replies.  New messages only ever claim
   fresh numbers. *)

let op_load = 1
let op_predict = 2
let op_stats = 3
let op_shutdown = 4
let op_ping = 5
let op_reload = 6
let op_predict_deadline = 7

let rep_loaded = 1
let rep_predicted = 2
let rep_stats = 3
let rep_shutting_down = 4
let rep_pong = 5
let rep_reloaded = 6
let rep_overloaded = 7
let rep_error = 255

let code_of_int = function
  | 1 -> Bad_frame
  | 2 -> Unknown_op
  | 3 -> Bad_snapshot
  | 4 -> Model_not_found
  | 5 -> Bad_request
  | 6 -> Internal
  | 7 -> Deadline_exceeded
  | n -> raise (Codec.Corrupt (Printf.sprintf "unknown error code %d" n))

let int_of_code = function
  | Bad_frame -> 1
  | Unknown_op -> 2
  | Bad_snapshot -> 3
  | Model_not_found -> 4
  | Bad_request -> 5
  | Internal -> 6
  | Deadline_exceeded -> 7

(* --- Bodies ---------------------------------------------------------- *)

let w_source w = function
  | Path p ->
      Codec.w_u8 w 0;
      Codec.w_string w p
  | Inline image ->
      Codec.w_u8 w 1;
      Codec.w_string w image

let r_source r =
  let mode = Codec.r_u8 r in
  if mode = 0 then Path (Codec.r_string ~max_len:4096 r)
  else if mode = 1 then Inline (Codec.r_string ~max_len:max_frame_len r)
  else raise (Codec.Corrupt (Printf.sprintf "unknown load mode %d" mode))

let emit_request w req =
  match req with
  | Load { name; source } ->
      Codec.w_u8 w op_load;
      Codec.w_string w name;
      w_source w source
  | Predict { name; states; xs } ->
      Codec.w_u8 w op_predict;
      Codec.w_string w name;
      Codec.w_u32_array w states;
      Codec.w_mat w xs
  | Stats -> Codec.w_u8 w op_stats
  | Shutdown -> Codec.w_u8 w op_shutdown
  | Ping -> Codec.w_u8 w op_ping
  | Reload { name; source } ->
      Codec.w_u8 w op_reload;
      Codec.w_string w name;
      w_source w source
  | Predict_deadline { name; states; xs; deadline_ms } ->
      Codec.w_u8 w op_predict_deadline;
      Codec.w_string w name;
      Codec.w_u32_array w states;
      Codec.w_mat w xs;
      Codec.w_u32 w deadline_ms

let encode_request req =
  let w = Codec.writer () in
  emit_request w req;
  Codec.contents w

let decode_request body =
  let r = Codec.reader body in
  let op = Codec.r_u8 r in
  let req =
    if op = op_load then begin
      let name = Codec.r_string ~max_len:4096 r in
      Load { name; source = r_source r }
    end
    else if op = op_predict then begin
      let name = Codec.r_string ~max_len:4096 r in
      let states = Codec.r_u32_array r in
      let xs = Codec.r_mat r in
      Predict { name; states; xs }
    end
    else if op = op_stats then Stats
    else if op = op_shutdown then Shutdown
    else if op = op_ping then Ping
    else if op = op_reload then begin
      let name = Codec.r_string ~max_len:4096 r in
      Reload { name; source = r_source r }
    end
    else if op = op_predict_deadline then begin
      let name = Codec.r_string ~max_len:4096 r in
      let states = Codec.r_u32_array r in
      let xs = Codec.r_mat r in
      let deadline_ms = Codec.r_u32 r in
      Predict_deadline { name; states; xs; deadline_ms }
    end
    else raise (Codec.Corrupt (Printf.sprintf "unknown opcode %d" op))
  in
  Codec.expect_end r;
  req

let emit_reply w rep =
  match rep with
  | Loaded { n_active; n_states; bytes } ->
      Codec.w_u8 w rep_loaded;
      Codec.w_u32 w n_active;
      Codec.w_u32 w n_states;
      Codec.w_u32 w bytes
  | Predicted { means; sds } ->
      Codec.w_u8 w rep_predicted;
      Codec.w_f64_array w means;
      Codec.w_f64_array w sds
  | Stats_json json ->
      Codec.w_u8 w rep_stats;
      Codec.w_string w json
  | Shutting_down -> Codec.w_u8 w rep_shutting_down
  | Pong { generation } ->
      Codec.w_u8 w rep_pong;
      Codec.w_u32 w generation
  | Reloaded { generation; n_active; n_states; bytes } ->
      Codec.w_u8 w rep_reloaded;
      Codec.w_u32 w generation;
      Codec.w_u32 w n_active;
      Codec.w_u32 w n_states;
      Codec.w_u32 w bytes
  | Overloaded { queue_depth; retry_after_ms } ->
      Codec.w_u8 w rep_overloaded;
      Codec.w_u32 w queue_depth;
      Codec.w_u32 w retry_after_ms
  | Error { code; message } ->
      Codec.w_u8 w rep_error;
      Codec.w_u8 w (int_of_code code);
      Codec.w_string w message

let encode_reply rep =
  let w = Codec.writer () in
  emit_reply w rep;
  Codec.contents w

let decode_reply body =
  let r = Codec.reader body in
  let tag = Codec.r_u8 r in
  let rep =
    if tag = rep_loaded then
      let n_active = Codec.r_u32 r in
      let n_states = Codec.r_u32 r in
      let bytes = Codec.r_u32 r in
      Loaded { n_active; n_states; bytes }
    else if tag = rep_predicted then
      let means = Codec.r_f64_array r in
      let sds = Codec.r_f64_array r in
      Predicted { means; sds }
    else if tag = rep_stats then Stats_json (Codec.r_string r)
    else if tag = rep_shutting_down then Shutting_down
    else if tag = rep_pong then Pong { generation = Codec.r_u32 r }
    else if tag = rep_reloaded then
      let generation = Codec.r_u32 r in
      let n_active = Codec.r_u32 r in
      let n_states = Codec.r_u32 r in
      let bytes = Codec.r_u32 r in
      Reloaded { generation; n_active; n_states; bytes }
    else if tag = rep_overloaded then
      let queue_depth = Codec.r_u32 r in
      let retry_after_ms = Codec.r_u32 r in
      Overloaded { queue_depth; retry_after_ms }
    else if tag = rep_error then
      let code = code_of_int (Codec.r_u8 r) in
      let message = Codec.r_string ~max_len:65536 r in
      Error { code; message }
    else raise (Codec.Corrupt (Printf.sprintf "unknown reply tag %d" tag))
  in
  Codec.expect_end r;
  rep

(* --- Framing --------------------------------------------------------- *)

exception Closed

(* A frame writer must see a dead peer as [Unix_error EPIPE], not as
   process-terminating SIGPIPE — shed connections and crashed clients
   make writes-after-hangup a routine event, on both sides of the
   wire.  Forced on first write; no-op where the signal doesn't
   exist. *)
let ignore_sigpipe =
  lazy (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ())

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (pos + n) (len - n)
  end

let frame body =
  let len = String.length body in
  if len > max_frame_len then
    invalid_arg (Printf.sprintf "Protocol.frame: %d bytes" len);
  let buf = Bytes.create (4 + len) in
  Bytes.set_int32_le buf 0 (Int32.of_int len);
  Bytes.blit_string body 0 buf 4 len;
  buf

let write_frame fd body =
  Lazy.force ignore_sigpipe;
  let buf = frame body in
  write_all fd buf 0 (Bytes.length buf)

(* Zero-copy framed sends: the message is emitted straight into one
   framed writer (4 reserved prefix bytes + body, single buffer), the
   prefix patched in place, and the buffer written as-is — no body
   string, no second framed copy.  The wire bytes are identical to
   [write_frame fd (encode_* msg)]. *)

let write_framed fd w =
  Lazy.force ignore_sigpipe;
  let buf, len = Codec.frame_bytes w in
  if len - 4 > max_frame_len then
    invalid_arg (Printf.sprintf "Protocol.write_framed: %d bytes" (len - 4));
  write_all fd buf 0 len

let write_request fd req =
  let w = Codec.writer ~frame:true () in
  emit_request w req;
  write_framed fd w

let write_reply fd rep =
  let w = Codec.writer ~frame:true () in
  emit_reply w rep;
  write_framed fd w

(* Read exactly [len] bytes; [at_boundary] distinguishes a clean EOF
   (peer hung up between frames) from a torn frame. *)
let read_exact fd len ~at_boundary =
  let buf = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let n =
      try Unix.read fd buf !pos (len - !pos)
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    if n = 0 && len - !pos > 0 then
      if at_boundary && !pos = 0 then raise Closed
      else
        raise
          (Codec.Corrupt
             (Printf.sprintf "connection closed mid-frame (%d of %d bytes)"
                !pos len));
    pos := !pos + n
  done;
  Bytes.unsafe_to_string buf

let read_frame fd =
  let header = read_exact fd 4 ~at_boundary:true in
  let len = Int32.to_int (String.get_int32_le header 0) in
  if len < 0 || len > max_frame_len then
    raise (Codec.Corrupt (Printf.sprintf "frame length %d out of range" len));
  if len = 0 then ""
  else read_exact fd len ~at_boundary:false
