(** The compact serving form of a fitted C-BMF model.

    A {!t} is everything inference needs and nothing it does not: only
    the {e active} basis terms survive (the EM prunes most of the
    dictionary), together with their standardization constants and the
    finite-dimensional posterior factors (means [mu], per-state
    covariance blocks [cov]).  Prediction is O(a) for the mean and
    O(a²) for the variance per point, where a = [n_active t] — the raw
    dictionary size M never appears at serving time.

    {!predict} is the scalar reference path; [Engine.predict_batch]
    reproduces it bit-identically through blocked kernels (both
    accumulate every dot product in the same sequential index order). *)

open Cbmf_linalg
open Cbmf_basis

type t = {
  input_dim : int;  (** dimension of the raw variation vector x *)
  n_states : int;  (** K *)
  terms : Term.t array;  (** the a active basis terms, in posterior order *)
  col_means : Mat.t;  (** K×a per-state centering of the active columns *)
  col_scales : float array;  (** a pooled column scales (all > 0) *)
  y_means : float array;  (** K per-state response centering *)
  y_scale : float;  (** pooled response scale (> 0) *)
  mu : Mat.t;  (** a×K posterior means, standardized units *)
  lambda : float array;  (** a prior variances of the active terms *)
  r : Mat.t;  (** K×K learned correlation *)
  sigma0 : float;  (** noise sd, standardized units *)
  cov : Mat.t array;  (** K per-state a×a posterior covariance blocks *)
}

val of_fit : dict:Dictionary.t -> Cbmf_core.Cbmf.fitted -> t
(** Project a fitted model onto its active support: looks the active
    standardized columns up through [std.kept] to recover their raw
    dictionary terms and slices the standardization constants down to
    the active set.  Raises [Invalid_argument] if the dictionary does
    not match the fit (wrong size). *)

val of_synthetic : Cbmf_circuit.Synthetic.t -> t
(** A spec-driven serving model straight from synthetic ground truth —
    no EM run required.  Standardization is the identity (zero
    centerings, unit scales), [mu] holds the {e true} coefficients
    restricted to the support (so the predictive mean at any point is
    exactly [Synthetic.mean_at], making the engine path oracle-
    checkable at any (K, a, d)), and the covariance blocks come from
    {!Cbmf_circuit.Synthetic.posterior_cov_blocks}.  This is how the
    scaling benches and the >64-state engine stress suites reach
    shapes the physical testbenches cannot. *)

val n_active : t -> int

val validate : t -> (unit, string) result
(** Structural invariants: consistent dimensions everywhere, strictly
    positive scales, finite non-negative [sigma0], term variable
    indices within [input_dim].  The snapshot loader runs this after
    decoding so a corrupted-but-checksummed file can still not smuggle
    an inconsistent model into the registry. *)

val byte_size : t -> int
(** Approximate resident size in bytes (payload floats + boxing
    overhead) — the unit of the registry's eviction budget. *)

val features : t -> state:int -> Vec.t -> Vec.t
(** The standardized active row u for one raw input x (length
    [input_dim]): [u_j = (b_j(x) − col_means[state,j]) / col_scales[j]]
    where b_j is the j-th active term. *)

val predict : t -> state:int -> Vec.t -> float * float
(** [(mean, sd)] in raw response units for one raw input x, including
    both posterior coefficient uncertainty and the observation-noise
    level σ0.  Raises [Invalid_argument] on a bad state index or input
    length. *)

val equal : t -> t -> bool
(** Bit-exact structural equality (floats compared by their IEEE-754
    bit patterns, so NaNs compare equal to themselves) — the test
    oracle for snapshot round-trips. *)
