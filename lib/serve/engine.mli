(** Batched prediction over a serving model.

    [predict_batch] evaluates a whole batch in one pass: the active
    basis rows are materialized once, points sharing a state are
    grouped, and each group's predictive variances come from one
    blocked [Mat.matmul_nt] against that state's covariance block
    instead of a matrix-vector product per point.  Batch chunks fan
    out over a {!Cbmf_parallel.Pool}.

    {b Determinism.}  Results are bit-identical for any domain count:
    chunk boundaries are a fixed constant (independent of the pool
    size), every output location is written by exactly one index, and
    every kernel involved accumulates in sequential index order.  A
    batch of one is bit-identical to {!Model.predict}. *)

open Cbmf_linalg
open Cbmf_parallel

val chunk_size : int
(** The fixed fan-out granularity (points per pool task):
    {!Cbmf_parallel.Tune.batch_chunk} — [CBMF_CHUNK] when set, 64
    otherwise — read once at startup.  Independent of the pool size,
    so chunk boundaries (and hence results) are bit-identical at any
    [CBMF_DOMAINS]. *)

val deadline_site : string
(** ["serve.deadline"] — the site carried by the typed
    {!Cbmf_robust.Fault.Early_stop} fault {!predict_batch} raises when
    its [deadline] expires. *)

val predict_batch :
  ?pool:Pool.t ->
  ?deadline:float ->
  Model.t ->
  states:int array ->
  xs:Mat.t ->
  float array * float array
(** [predict_batch m ~states ~xs] predicts point [i] of [xs] (rows are
    raw inputs of length [m.input_dim]) at knob state [states.(i)];
    returns [(means, sds)] in raw response units, the sd including the
    observation-noise level σ0 — exactly {!Model.predict} per point.
    [pool] defaults to {!Pool.default}.  Raises [Invalid_argument] on
    shape mismatches or out-of-range states.

    [deadline] is an absolute wall-clock instant ([Unix.gettimeofday]
    scale).  When given, the budget is checked before every chunk; an
    expired budget abandons the batch by raising the typed fault
    [Fault.Early_stop { site = deadline_site; _ }] instead of
    finishing and replying late.  [None] (the default) adds no checks
    and no cost — the fault-free path is bit-identical to before. *)

val predict : Model.t -> state:int -> Vec.t -> float * float
(** Batch of one, through the batch path.  Equal to {!Model.predict}
    bit-for-bit (asserted by the test suite). *)
