(* Log-spaced 1–2–5 bucket edges, 1 µs to 10 s, plus +inf overflow. *)
let bucket_edges_us =
  [|
    1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 2e3; 5e3; 1e4; 2e4; 5e4;
    1e5; 2e5; 5e5; 1e6; 2e6; 5e6; 1e7; infinity;
  |]

let n_buckets = Array.length bucket_edges_us

type t = {
  lock : Mutex.t;
  ops : (string, int) Hashtbl.t;
  mutable errors : int;
  mutable points : int;
  mutable max_batch : int;
  hist : int array;
  mutable total : int;
  mutable sheds : int;  (* connections refused by admission control *)
  mutable deadlines : int;  (* requests answered Deadline_exceeded *)
  mutable queue_depth : int;  (* gauge: pending connections right now *)
  mutable queue_peak : int;  (* high-water mark of the gauge *)
}

let create () =
  {
    lock = Mutex.create ();
    ops = Hashtbl.create 8;
    errors = 0;
    points = 0;
    max_batch = 0;
    hist = Array.make n_buckets 0;
    total = 0;
    sheds = 0;
    deadlines = 0;
    queue_depth = 0;
    queue_peak = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let bucket_of_us us =
  let i = ref 0 in
  while us > bucket_edges_us.(!i) do incr i done;
  !i

let record ?batch t ~op ~ok ~seconds =
  locked t (fun () ->
      Hashtbl.replace t.ops op
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.ops op));
      if not ok then t.errors <- t.errors + 1;
      (match batch with
      | Some b ->
          t.points <- t.points + b;
          if b > t.max_batch then t.max_batch <- b
      | None -> ());
      let us = Float.max 0.0 (seconds *. 1e6) in
      t.hist.(bucket_of_us us) <- t.hist.(bucket_of_us us) + 1;
      t.total <- t.total + 1)

let record_shed t =
  locked t (fun () -> t.sheds <- t.sheds + 1)

let record_deadline t =
  locked t (fun () -> t.deadlines <- t.deadlines + 1)

let set_queue_depth t depth =
  locked t (fun () ->
      t.queue_depth <- depth;
      if depth > t.queue_peak then t.queue_peak <- depth)

let sheds t = locked t (fun () -> t.sheds)

let deadlines t = locked t (fun () -> t.deadlines)

let quantile_unlocked t q =
  if t.total = 0 then 0.0
  else begin
    let target = Float.of_int t.total *. q in
    let acc = ref 0 in
    let i = ref 0 in
    while !i < n_buckets - 1 && Float.of_int (!acc + t.hist.(!i)) < target do
      acc := !acc + t.hist.(!i);
      incr i
    done;
    bucket_edges_us.(!i)
  end

let quantile_us t q = locked t (fun () -> quantile_unlocked t q)

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_json ?(extra = []) t =
  locked t (fun () ->
      let buf = Buffer.create 512 in
      Buffer.add_string buf "{\"requests\":{";
      let ops =
        Hashtbl.fold (fun op n acc -> (op, n) :: acc) t.ops []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iteri
        (fun i (op, n) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "%S:%d" op n))
        ops;
      Buffer.add_string buf "},";
      Buffer.add_string buf (Printf.sprintf "\"errors\":%d," t.errors);
      Buffer.add_string buf (Printf.sprintf "\"points\":%d," t.points);
      Buffer.add_string buf (Printf.sprintf "\"max_batch\":%d," t.max_batch);
      Buffer.add_string buf (Printf.sprintf "\"sheds\":%d," t.sheds);
      Buffer.add_string buf
        (Printf.sprintf "\"deadline_exceeded\":%d," t.deadlines);
      Buffer.add_string buf (Printf.sprintf "\"queue_depth\":%d," t.queue_depth);
      Buffer.add_string buf (Printf.sprintf "\"queue_peak\":%d," t.queue_peak);
      Buffer.add_string buf "\"latency_us\":{";
      Buffer.add_string buf
        (Printf.sprintf "\"count\":%d,\"p50\":%s,\"p99\":%s,\"buckets\":["
           t.total
           (json_float (quantile_unlocked t 0.5))
           (json_float (quantile_unlocked t 0.99)));
      let first = ref true in
      for i = 0 to n_buckets - 1 do
        if t.hist.(i) > 0 then begin
          if not !first then Buffer.add_char buf ',';
          first := false;
          let edge =
            if Float.is_finite bucket_edges_us.(i) then
              json_float bucket_edges_us.(i)
            else "\"inf\""
          in
          Buffer.add_string buf (Printf.sprintf "[%s,%d]" edge t.hist.(i))
        end
      done;
      Buffer.add_string buf "]}";
      List.iter
        (fun (name, value) ->
          Buffer.add_string buf (Printf.sprintf ",%S:%s" name value))
        extra;
      Buffer.add_char buf '}';
      Buffer.contents buf)

let registry_json (r : Registry.stats) =
  Printf.sprintf
    "{\"hits\":%d,\"misses\":%d,\"loads\":%d,\"evictions\":%d,\
     \"reloads\":%d,\"generation\":%d,\
     \"resident_bytes\":%d,\"resident_models\":%d,\"max_bytes\":%d}"
    r.Registry.hits r.Registry.misses r.Registry.loads r.Registry.evictions
    r.Registry.reloads r.Registry.generation
    r.Registry.resident_bytes r.Registry.resident_models r.Registry.max_bytes
