(* Log-spaced 1–2–5 bucket edges, 1 µs to 10 s, plus +inf overflow. *)
let bucket_edges_us =
  [|
    1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1e3; 2e3; 5e3; 1e4; 2e4; 5e4;
    1e5; 2e5; 5e5; 1e6; 2e6; 5e6; 1e7; infinity;
  |]

let n_buckets = Array.length bucket_edges_us

(* A fixed-bucket histogram with its own count, so any latency phase
   (or the batch-occupancy distribution, whose "µs" are points) can
   reuse the same quantile machinery. *)
type hist = { counts : int array; mutable n : int }

let hist_make () = { counts = Array.make n_buckets 0; n = 0 }

type t = {
  lock : Mutex.t;
  ops : (string, int) Hashtbl.t;
  mutable errors : int;
  mutable points : int;
  mutable max_batch : int;
  hist : int array;
  mutable total : int;
  mutable sheds : int;  (* connections refused by admission control *)
  mutable deadlines : int;  (* requests answered Deadline_exceeded *)
  mutable queue_depth : int;  (* gauge: pending connections right now *)
  mutable queue_peak : int;  (* high-water mark of the gauge *)
  (* Latency split: time on the admission queue (accept → worker
     pickup, per connection), time parked in the dynamic batcher
     (enqueue → drain, per predict request), and engine compute time
     (per predict request, its share being the whole merged call). *)
  queue_wait : hist;
  batch_wait : hist;
  compute : hist;
  (* Batch occupancy: points per merged engine call (the buckets are
     point counts, not µs), plus how many wire requests coalesced. *)
  occupancy : hist;
  mutable flushes : int;  (* merged engine calls *)
  mutable coalesced : int;  (* wire requests those calls served *)
  mutable max_occupancy : int;
}

let create () =
  {
    lock = Mutex.create ();
    ops = Hashtbl.create 8;
    errors = 0;
    points = 0;
    max_batch = 0;
    hist = Array.make n_buckets 0;
    total = 0;
    sheds = 0;
    deadlines = 0;
    queue_depth = 0;
    queue_peak = 0;
    queue_wait = hist_make ();
    batch_wait = hist_make ();
    compute = hist_make ();
    occupancy = hist_make ();
    flushes = 0;
    coalesced = 0;
    max_occupancy = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let bucket_of_us us =
  let i = ref 0 in
  while us > bucket_edges_us.(!i) do incr i done;
  !i

let record ?batch t ~op ~ok ~seconds =
  locked t (fun () ->
      Hashtbl.replace t.ops op
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.ops op));
      if not ok then t.errors <- t.errors + 1;
      (match batch with
      | Some b ->
          t.points <- t.points + b;
          if b > t.max_batch then t.max_batch <- b
      | None -> ());
      let us = Float.max 0.0 (seconds *. 1e6) in
      t.hist.(bucket_of_us us) <- t.hist.(bucket_of_us us) + 1;
      t.total <- t.total + 1)

let hist_add h v =
  h.counts.(bucket_of_us v) <- h.counts.(bucket_of_us v) + 1;
  h.n <- h.n + 1

let record_queue_wait t ~seconds =
  locked t (fun () -> hist_add t.queue_wait (Float.max 0.0 (seconds *. 1e6)))

let record_batch_phase t ~batch_wait ~compute =
  locked t (fun () ->
      hist_add t.batch_wait (Float.max 0.0 (batch_wait *. 1e6));
      hist_add t.compute (Float.max 0.0 (compute *. 1e6)))

let record_flush t ~requests ~points =
  locked t (fun () ->
      hist_add t.occupancy (float_of_int (max 1 points));
      t.flushes <- t.flushes + 1;
      t.coalesced <- t.coalesced + requests;
      if points > t.max_occupancy then t.max_occupancy <- points)

let record_shed t =
  locked t (fun () -> t.sheds <- t.sheds + 1)

let record_deadline t =
  locked t (fun () -> t.deadlines <- t.deadlines + 1)

let set_queue_depth t depth =
  locked t (fun () ->
      t.queue_depth <- depth;
      if depth > t.queue_peak then t.queue_peak <- depth)

let sheds t = locked t (fun () -> t.sheds)

let deadlines t = locked t (fun () -> t.deadlines)

let counts_quantile counts total q =
  if total = 0 then 0.0
  else begin
    let target = Float.of_int total *. q in
    let acc = ref 0 in
    let i = ref 0 in
    while !i < n_buckets - 1 && Float.of_int (!acc + counts.(!i)) < target do
      acc := !acc + counts.(!i);
      incr i
    done;
    bucket_edges_us.(!i)
  end

let quantile_unlocked t q = counts_quantile t.hist t.total q

let quantile_us t q = locked t (fun () -> quantile_unlocked t q)

let phase_quantile t which q =
  locked t (fun () ->
      let h =
        match which with
        | `Queue_wait -> t.queue_wait
        | `Batch_wait -> t.batch_wait
        | `Compute -> t.compute
        | `Occupancy -> t.occupancy
      in
      counts_quantile h.counts h.n q)

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let to_json ?(extra = []) t =
  locked t (fun () ->
      let buf = Buffer.create 512 in
      Buffer.add_string buf "{\"requests\":{";
      let ops =
        Hashtbl.fold (fun op n acc -> (op, n) :: acc) t.ops []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      List.iteri
        (fun i (op, n) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "%S:%d" op n))
        ops;
      Buffer.add_string buf "},";
      Buffer.add_string buf (Printf.sprintf "\"errors\":%d," t.errors);
      Buffer.add_string buf (Printf.sprintf "\"points\":%d," t.points);
      Buffer.add_string buf (Printf.sprintf "\"max_batch\":%d," t.max_batch);
      Buffer.add_string buf (Printf.sprintf "\"sheds\":%d," t.sheds);
      Buffer.add_string buf
        (Printf.sprintf "\"deadline_exceeded\":%d," t.deadlines);
      Buffer.add_string buf (Printf.sprintf "\"queue_depth\":%d," t.queue_depth);
      Buffer.add_string buf (Printf.sprintf "\"queue_peak\":%d," t.queue_peak);
      Buffer.add_string buf "\"latency_us\":{";
      Buffer.add_string buf
        (Printf.sprintf "\"count\":%d,\"p50\":%s,\"p99\":%s,\"buckets\":["
           t.total
           (json_float (quantile_unlocked t 0.5))
           (json_float (quantile_unlocked t 0.99)));
      let add_buckets counts =
        let first = ref true in
        for i = 0 to n_buckets - 1 do
          if counts.(i) > 0 then begin
            if not !first then Buffer.add_char buf ',';
            first := false;
            let edge =
              if Float.is_finite bucket_edges_us.(i) then
                json_float bucket_edges_us.(i)
              else "\"inf\""
            in
            Buffer.add_string buf (Printf.sprintf "[%s,%d]" edge counts.(i))
          end
        done
      in
      add_buckets t.hist;
      Buffer.add_string buf "]}";
      (* Latency split: where a request's time went — admission queue,
         batcher park, engine compute. *)
      let add_phase name h last =
        Buffer.add_string buf
          (Printf.sprintf "%S:{\"count\":%d,\"p50\":%s,\"p99\":%s,\"buckets\":["
             name h.n
             (json_float (counts_quantile h.counts h.n 0.5))
             (json_float (counts_quantile h.counts h.n 0.99)));
        add_buckets h.counts;
        Buffer.add_string buf (if last then "]}" else "]},")
      in
      Buffer.add_string buf ",\"phases\":{";
      add_phase "queue_wait_us" t.queue_wait false;
      add_phase "batch_wait_us" t.batch_wait false;
      add_phase "compute_us" t.compute true;
      Buffer.add_string buf "},";
      (* Batch occupancy: points per merged engine call (bucket edges
         are point counts here, not µs). *)
      Buffer.add_string buf
        (Printf.sprintf
           "\"batch_occupancy\":{\"flushes\":%d,\"coalesced_requests\":%d,\
            \"max_points\":%d,\"p50_points\":%s,\"p99_points\":%s,\
            \"buckets\":["
           t.flushes t.coalesced t.max_occupancy
           (json_float (counts_quantile t.occupancy.counts t.occupancy.n 0.5))
           (json_float (counts_quantile t.occupancy.counts t.occupancy.n 0.99)));
      add_buckets t.occupancy.counts;
      Buffer.add_string buf "]}";
      List.iter
        (fun (name, value) ->
          Buffer.add_string buf (Printf.sprintf ",%S:%s" name value))
        extra;
      Buffer.add_char buf '}';
      Buffer.contents buf)

let registry_json (r : Registry.stats) =
  Printf.sprintf
    "{\"hits\":%d,\"misses\":%d,\"loads\":%d,\"evictions\":%d,\
     \"reloads\":%d,\"generation\":%d,\
     \"resident_bytes\":%d,\"resident_models\":%d,\"max_bytes\":%d}"
    r.Registry.hits r.Registry.misses r.Registry.loads r.Registry.evictions
    r.Registry.reloads r.Registry.generation
    r.Registry.resident_bytes r.Registry.resident_models r.Registry.max_bytes
