open Cbmf_linalg
open Cbmf_basis

type t = {
  input_dim : int;
  n_states : int;
  terms : Term.t array;
  col_means : Mat.t;
  col_scales : float array;
  y_means : float array;
  y_scale : float;
  mu : Mat.t;
  lambda : float array;
  r : Mat.t;
  sigma0 : float;
  cov : Mat.t array;
}

let n_active t = Array.length t.terms

let of_fit ~dict (f : Cbmf_core.Cbmf.fitted) =
  let std = f.Cbmf_core.Cbmf.std in
  let open Cbmf_core.Standardize in
  if Dictionary.size dict <> std.n_basis_raw then
    invalid_arg
      (Printf.sprintf
         "Model.of_fit: dictionary has %d terms but the fit saw %d"
         (Dictionary.size dict) std.n_basis_raw);
  let active = f.Cbmf_core.Cbmf.active in
  let a = Array.length active in
  let k = std.n_states in
  let raw j = std.kept.(active.(j)) in
  {
    input_dim = Dictionary.input_dim dict;
    n_states = k;
    terms = Array.init a (fun j -> Dictionary.term dict (raw j));
    col_means = Mat.init k a (fun s j -> Mat.get std.col_means s (raw j));
    col_scales = Array.init a (fun j -> std.col_scales.(raw j));
    y_means = Array.copy std.y_means;
    y_scale = std.y_scale;
    mu = Mat.copy f.Cbmf_core.Cbmf.mu;
    lambda = Array.copy f.Cbmf_core.Cbmf.lambda;
    r = Mat.copy f.Cbmf_core.Cbmf.r;
    sigma0 = f.Cbmf_core.Cbmf.sigma0;
    cov = Array.map Mat.copy f.Cbmf_core.Cbmf.cov;
  }

let of_synthetic (gt : Cbmf_circuit.Synthetic.t) =
  let open Cbmf_circuit.Synthetic in
  let spec = gt.spec in
  let a = Array.length gt.support in
  let k = spec.k in
  {
    input_dim = spec.d;
    n_states = k;
    terms = Array.map (fun col -> gt.terms.(col)) gt.support;
    col_means = Mat.create k a;
    col_scales = Array.make a 1.0;
    y_means = Array.make k 0.0;
    y_scale = 1.0;
    mu = Mat.init a k (fun j s -> Mat.get gt.coeffs s gt.support.(j));
    lambda = Array.copy gt.lambda;
    r = Mat.copy gt.r;
    sigma0 = spec.noise_sigma;
    cov = posterior_cov_blocks gt;
  }

let validate t =
  let a = Array.length t.terms and k = t.n_states in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_mat name (m : Mat.t) rows cols rest =
    if m.Mat.rows <> rows || m.Mat.cols <> cols then
      fail "%s is %dx%d, expected %dx%d" name m.Mat.rows m.Mat.cols rows cols
    else if Array.length m.Mat.data <> rows * cols then
      fail "%s data length %d inconsistent with %dx%d" name
        (Array.length m.Mat.data) rows cols
    else rest ()
  in
  if k < 1 then fail "n_states = %d" k
  else if t.input_dim < 0 then fail "input_dim = %d" t.input_dim
  else if Array.length t.col_scales <> a then
    fail "col_scales length %d, expected %d" (Array.length t.col_scales) a
  else if Array.length t.lambda <> a then
    fail "lambda length %d, expected %d" (Array.length t.lambda) a
  else if Array.length t.y_means <> k then
    fail "y_means length %d, expected %d" (Array.length t.y_means) k
  else if Array.length t.cov <> k then
    fail "cov has %d blocks, expected %d" (Array.length t.cov) k
  else if not (Float.is_finite t.y_scale && t.y_scale > 0.0) then
    fail "y_scale = %g" t.y_scale
  else if not (Float.is_finite t.sigma0 && t.sigma0 >= 0.0) then
    fail "sigma0 = %g" t.sigma0
  else
    match
      Array.find_opt
        (fun s -> not (Float.is_finite s && s > 0.0))
        t.col_scales
    with
    | Some s -> fail "non-positive column scale %g" s
    | None -> (
        match
          Array.find_opt
            (fun l -> not (Float.is_finite l && l >= 0.0))
            t.lambda
        with
        | Some l -> fail "invalid lambda %g" l
        | None -> (
            match
              Array.find_opt
                (fun tm -> Term.max_variable tm >= t.input_dim)
                t.terms
            with
            | Some tm ->
                fail "term %s exceeds input_dim %d" (Term.to_string tm)
                  t.input_dim
            | None ->
                check_mat "col_means" t.col_means k a (fun () ->
                    check_mat "mu" t.mu a k (fun () ->
                        check_mat "r" t.r k k (fun () ->
                            let rec blocks s =
                              if s = k then Ok ()
                              else
                                check_mat
                                  (Printf.sprintf "cov[%d]" s)
                                  t.cov.(s) a a (fun () -> blocks (s + 1))
                            in
                            blocks 0)))))

let byte_size t =
  let a = Array.length t.terms and k = t.n_states in
  let floats =
    (k * a) (* col_means *) + a (* col_scales *) + k (* y_means *)
    + (a * k) (* mu *) + a (* lambda *) + (k * k) (* r *)
    + (k * a * a) (* cov *)
  in
  (* 8 bytes per unboxed float, plus a flat allowance for headers,
     the term array and the record itself. *)
  (8 * floats) + (16 * a) + 256

let features t ~state (x : Vec.t) =
  if state < 0 || state >= t.n_states then
    invalid_arg (Printf.sprintf "Model.features: state %d of %d" state t.n_states);
  if Array.length x <> t.input_dim then
    invalid_arg
      (Printf.sprintf "Model.features: input length %d, expected %d"
         (Array.length x) t.input_dim);
  Array.init (Array.length t.terms) (fun j ->
      (Term.eval t.terms.(j) x -. Mat.get t.col_means state j)
      /. t.col_scales.(j))

let predict t ~state x =
  let u = features t ~state x in
  let a = Array.length u in
  let mean_std = ref 0.0 in
  for j = 0 to a - 1 do
    mean_std := !mean_std +. (u.(j) *. Mat.get t.mu j state)
  done;
  let w = Mat.mat_vec t.cov.(state) u in
  let var = Vec.dot u w in
  let mean = t.y_means.(state) +. (t.y_scale *. !mean_std) in
  let sd = t.y_scale *. sqrt (Float.max var 0.0 +. (t.sigma0 *. t.sigma0)) in
  (mean, sd)

(* --- Bit-exact equality --------------------------------------------- *)

let feq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let farr_eq xs ys =
  Array.length xs = Array.length ys
  && Array.for_all2 feq xs ys

let mat_eq (a : Mat.t) (b : Mat.t) =
  a.Mat.rows = b.Mat.rows && a.Mat.cols = b.Mat.cols
  && farr_eq a.Mat.data b.Mat.data

let equal t1 t2 =
  t1.input_dim = t2.input_dim
  && t1.n_states = t2.n_states
  && Array.length t1.terms = Array.length t2.terms
  && Array.for_all2 Term.equal t1.terms t2.terms
  && mat_eq t1.col_means t2.col_means
  && farr_eq t1.col_scales t2.col_scales
  && farr_eq t1.y_means t2.y_means
  && feq t1.y_scale t2.y_scale
  && mat_eq t1.mu t2.mu
  && farr_eq t1.lambda t2.lambda
  && mat_eq t1.r t2.r
  && feq t1.sigma0 t2.sigma0
  && Array.length t1.cov = Array.length t2.cov
  && Array.for_all2 mat_eq t1.cov t2.cov
