(* Consistent-hash sharding of the model namespace over N servers.
   --------------------------------------------------------------

   Placement is a pure function of the model NAME — never the model
   value or its reload generation — so a hot reload (which swaps the
   slot's model and bumps generations) keeps routing to the same
   shard, and every client computes the same placement from nothing
   but (shard count, vnode count, name).

   The ring holds [vnodes] virtual points per shard (FNV-64 of
   "shard-<i>/<v>", passed through a 64-bit finalizer); a name lands
   on the first point clockwise from its own hash.  The finalizer
   matters: FNV-1a diffuses a changed byte {e upward} only, so short
   strings sharing a prefix ("shard-0/17", "model-42") come out with
   correlated top bits, and ring order is decided by top bits —
   un-mixed, whole shards can end up owning no arc at all.  The fmix64
   step (murmur3's finalizer) gives full avalanche without touching
   [Codec.fnv64] itself, whose raw value is part of the snapshot
   checksum format.

   Virtual points smooth the load split and keep
   movement minimal when the shard count changes: going N → N+1 moves
   only the names whose successor point belongs to the new shard,
   ~1/(N+1) of the namespace, instead of rehashing everything the way
   [hash mod N] would. *)

type ring = {
  points : int64 array;  (* vnode hashes, sorted unsigned ascending *)
  owners : int array;  (* shard owning points.(i) *)
  shards : int;
}

(* murmur3 fmix64: full-avalanche finalizer over the raw FNV value. *)
let mix h =
  let open Int64 in
  let h = logxor h (shift_right_logical h 33) in
  let h = mul h 0xFF51AFD7ED558CCDL in
  let h = logxor h (shift_right_logical h 33) in
  let h = mul h 0xC4CEB9FE1A85EC53L in
  logxor h (shift_right_logical h 33)

let hash s = mix (Codec.fnv64 s)

let ring ?(vnodes = 64) shards =
  if shards < 1 then invalid_arg "Shard.ring: shard count must be >= 1";
  if vnodes < 1 then invalid_arg "Shard.ring: vnodes must be >= 1";
  let pts =
    Array.init (shards * vnodes) (fun i ->
        let shard = i / vnodes and v = i mod vnodes in
        (hash (Printf.sprintf "shard-%d/%d" shard v), shard))
  in
  Array.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) pts;
  {
    points = Array.map fst pts;
    owners = Array.map snd pts;
    shards;
  }

let shards r = r.shards

(* First vnode clockwise from the name's mixed hash: binary search for
   the smallest point >= h (unsigned), wrapping to point 0. *)
let place r name =
  let h = hash name in
  let n = Array.length r.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare r.points.(mid) h < 0 then lo := mid + 1
    else hi := mid
  done;
  r.owners.(if !lo = n then 0 else !lo)

(* --- Routed client ----------------------------------------------------

   One logical client over N per-shard connections, opened lazily and
   cached.  Every named operation goes to [place ring name]; a caller
   who needs an op the convenience layer doesn't wrap grabs the raw
   per-shard {!Client.t} with [client_for]. *)

type router = {
  r_ring : ring;
  connect : int -> Client.t;  (* dial shard i *)
  conns : Client.t option array;
  r_lock : Mutex.t;
}

let router ?vnodes connect ~shards =
  let r_ring = ring ?vnodes shards in
  { r_ring; connect; conns = Array.make shards None; r_lock = Mutex.create () }

let route t ~name = place t.r_ring name

let client_of t i =
  Mutex.lock t.r_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.r_lock)
    (fun () ->
      match t.conns.(i) with
      | Some c -> c
      | None ->
          let c = t.connect i in
          t.conns.(i) <- Some c;
          c)

let client_for t ~name = client_of t (route t ~name)

(* A dead shard connection must not poison the cache: on a retryable
   transport failure the cached connection is dropped so the next call
   redials. *)
let with_shard t ~name f =
  let i = route t ~name in
  let res = f (client_of t i) in
  (match res with
  | Error failure when Client.retryable failure ->
      Mutex.lock t.r_lock;
      (match t.conns.(i) with
      | Some c ->
          Client.close c;
          t.conns.(i) <- None
      | None -> ());
      Mutex.unlock t.r_lock
  | _ -> ());
  res

let predict_typed t ~name ~states ~xs =
  with_shard t ~name (fun c -> Client.predict_typed c ~name ~states ~xs)

let predict_deadline t ~name ~states ~xs ~deadline_ms =
  with_shard t ~name (fun c ->
      Client.predict_deadline c ~name ~states ~xs ~deadline_ms)

let predict_many t ~name reqs =
  Client.predict_many (client_for t ~name) ~name reqs

let load_inline t ~name ~image =
  Client.load_inline (client_for t ~name) ~name ~image

let load_path t ~name ~path = Client.load_path (client_for t ~name) ~name ~path

let reload_inline t ~name ~image =
  with_shard t ~name (fun c -> Client.reload_inline c ~name ~image)

let reload_path t ~name ~path =
  with_shard t ~name (fun c -> Client.reload_path c ~name ~path)

let close_router t =
  Mutex.lock t.r_lock;
  Array.iteri
    (fun i c ->
      Option.iter Client.close c;
      t.conns.(i) <- None)
    t.conns;
  Mutex.unlock t.r_lock

(* --- Multi-process cluster --------------------------------------------

   One forked child per shard, each running a full [Server.start] on
   its own Unix-domain socket "<base>.shard-<i>".  The fork happens
   before the child has any threads (the server's acceptor and workers
   are spawned fresh inside it), which is the only safe shape —
   [fork] clones just the calling thread, so a child forked from a
   threaded parent must not rely on any other thread's locks. *)

type cluster = {
  c_addrs : Unix.sockaddr array;
  c_pids : int array;
  c_paths : string array;
  vnodes : int option;
  mutable stopped : bool;
}

let shard_path ~base_path i = Printf.sprintf "%s.shard-%d" base_path i

let shard_addr ~base_path i = Unix.ADDR_UNIX (shard_path ~base_path i)

let start ?(config = Server.default_config) ?vnodes ~shards ~base_path () =
  if shards < 1 then invalid_arg "Shard.start: shard count must be >= 1";
  let paths = Array.init shards (shard_path ~base_path) in
  let addrs = Array.map (fun p -> Unix.ADDR_UNIX p) paths in
  let pids =
    Array.map
      (fun addr ->
        match Unix.fork () with
        | 0 ->
            (* Child: serve this shard until a Shutdown request lands.
               [_exit] skips at_exit / buffer flushing inherited from
               the parent — those belong to the parent's state. *)
            (try
               let srv = Server.start ~config addr in
               Server.wait srv
             with _ -> ());
            Unix._exit 0
        | pid -> pid)
      addrs
  in
  { c_addrs = addrs; c_pids = pids; c_paths = paths; vnodes; stopped = false }

let addrs c = c.c_addrs

(* Block until every shard answers a ping (socket file present AND the
   server behind it is accepting).  Gives forked children time to
   bind; raises [Failure] past [timeout]. *)
let wait_ready ?(timeout = 10.0) c =
  let cutoff = Unix.gettimeofday () +. timeout in
  Array.iter
    (fun addr ->
      let rec try_ping () =
        let ok =
          match Client.connect ~timeout:1.0 addr with
          | exception Unix.Unix_error _ -> false
          | cl ->
              Fun.protect
                ~finally:(fun () -> Client.close cl)
                (fun () ->
                  match Client.ping cl with Ok _ -> true | Error _ -> false)
        in
        if not ok then
          if Unix.gettimeofday () >= cutoff then
            failwith "Shard.wait_ready: shard did not come up"
          else begin
            Thread.delay 0.02;
            try_ping ()
          end
      in
      try_ping ())
    c.c_addrs

let connect ?timeout c =
  router ?vnodes:c.vnodes
    ~shards:(Array.length c.c_addrs)
    (fun i -> Client.connect ?timeout c.c_addrs.(i))

let stop ?(timeout = 5.0) c =
  if not c.stopped then begin
    c.stopped <- true;
    (* Polite first: a Shutdown request triggers each server's
       graceful drain.  A shard that won't die by the cutoff gets
       SIGKILL — stop must not hang the parent. *)
    Array.iter
      (fun addr ->
        match Client.connect ~timeout:1.0 addr with
        | exception Unix.Unix_error _ -> ()
        | cl ->
            Client.shutdown cl;
            Client.close cl)
      c.c_addrs;
    let cutoff = Unix.gettimeofday () +. timeout in
    Array.iter
      (fun pid ->
        let rec reap () =
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ ->
              if Unix.gettimeofday () >= cutoff then begin
                (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                ignore (Unix.waitpid [] pid)
              end
              else begin
                Thread.delay 0.02;
                reap ()
              end
          | _ -> ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
        in
        reap ())
      c.c_pids;
    Array.iter
      (fun p -> try Unix.unlink p with Unix.Unix_error _ -> ())
      c.c_paths
  end
