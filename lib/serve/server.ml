open Cbmf_robust

type config = {
  workers : int;
  timeout : float;
  backlog : int;
  queue_cap : int;
}

let default_config = { workers = 4; timeout = 10.0; backlog = 16; queue_cap = 8 }

type t = {
  config : config;
  registry : Registry.t;
  stats : Stats.t;
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  unix_path : string option;  (* socket file to unlink on stop *)
  pipe_rd : Unix.file_descr;
  pipe_wr : Unix.file_descr;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  queue : Unix.file_descr Queue.t;
  mutable stopping : bool;
  mutable joined : bool;
  mutable threads : Thread.t list;
}

let registry t = t.registry

let stats t = t.stats

let addr t = t.bound

(* --- Bounded connection queue ---------------------------------------- *)

let enqueue t fd =
  Mutex.lock t.lock;
  while Queue.length t.queue >= t.config.queue_cap && not t.stopping do
    Condition.wait t.not_full t.lock
  done;
  if t.stopping then begin
    Mutex.unlock t.lock;
    Unix.close fd
  end
  else begin
    Queue.push fd t.queue;
    Condition.signal t.not_empty;
    Mutex.unlock t.lock
  end

let dequeue t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.not_empty t.lock
  done;
  let conn =
    if Queue.is_empty t.queue then None
    else begin
      let fd = Queue.pop t.queue in
      Condition.signal t.not_full;
      Some fd
    end
  in
  Mutex.unlock t.lock;
  conn

(* --- Request handling ------------------------------------------------- *)

let op_of_request = function
  | Protocol.Load _ -> "load"
  | Protocol.Predict _ -> "predict"
  | Protocol.Stats -> "stats"
  | Protocol.Shutdown -> "shutdown"

let batch_of_request = function
  | Protocol.Predict { states; _ } -> Some (Array.length states)
  | _ -> None

let request_stop t =
  Mutex.lock t.lock;
  let first = not t.stopping in
  t.stopping <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.lock;
  if first then
    (* Wake the acceptor out of select. *)
    try ignore (Unix.write t.pipe_wr (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

(* Request handling is parameterized by a context so a pre-connected
   descriptor (e.g. one end of a socketpair) can be served without a
   listener — see [serve_fd]. *)
type ctx = {
  c_registry : Registry.t;
  c_stats : Stats.t;
  on_shutdown : unit -> unit;
}

let handle_request ctx req =
  match req with
  | Protocol.Load { name; source } -> (
      try
        let model =
          match source with
          | Protocol.Path path ->
              Registry.add_path ctx.c_registry ~name path;
              Registry.get ctx.c_registry ~name
          | Protocol.Inline image ->
              let m = Snapshot.decode ~site:"serve.decode" image in
              Registry.put ctx.c_registry ~name m;
              m
        in
        ( Protocol.Loaded
            {
              n_active = Model.n_active model;
              n_states = model.Model.n_states;
              bytes = Model.byte_size model;
            },
          true )
      with Fault.Error (Fault.Bad_snapshot _ as f) ->
        ( Protocol.Error
            { code = Protocol.Bad_snapshot; message = Fault.to_string f },
          true ))
  | Protocol.Predict { name; states; xs } -> (
      match Registry.find ctx.c_registry ~name with
      | None ->
          ( Protocol.Error
              {
                code = Protocol.Model_not_found;
                message = Printf.sprintf "no model %S" name;
              },
            true )
      | Some model -> (
          try
            let means, sds = Engine.predict_batch model ~states ~xs in
            (Protocol.Predicted { means; sds }, true)
          with Invalid_argument msg ->
            (Protocol.Error { code = Protocol.Bad_request; message = msg }, true)
          )
      | exception Fault.Error (Fault.Bad_snapshot _ as f) ->
          ( Protocol.Error
              { code = Protocol.Bad_snapshot; message = Fault.to_string f },
            true ))
  | Protocol.Stats ->
      let json =
        Stats.to_json
          ~extra:
            [ ("registry", Stats.registry_json (Registry.stats ctx.c_registry))
            ]
          ctx.c_stats
      in
      (Protocol.Stats_json json, true)
  | Protocol.Shutdown ->
      ctx.on_shutdown ();
      (Protocol.Shutting_down, false)

let is_timeout = function
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> true
  | _ -> false

let serve_connection ctx fd =
  let continue_ = ref true in
  while !continue_ do
    match Protocol.read_frame fd with
    | exception Protocol.Closed -> continue_ := false
    | exception Codec.Corrupt msg ->
        (* Torn frame or hostile length prefix: the stream cannot be
           resynchronized.  Best-effort typed error, then hang up. *)
        Stats.record ctx.c_stats ~op:"bad-frame" ~ok:false ~seconds:0.0;
        (try
           Protocol.write_frame fd
             (Protocol.encode_reply
                (Protocol.Error { code = Protocol.Bad_frame; message = msg }))
         with _ -> ());
        continue_ := false
    | exception e when is_timeout e -> continue_ := false
    | exception Unix.Unix_error _ -> continue_ := false
    | body -> (
        let t0 = Unix.gettimeofday () in
        match Protocol.decode_request body with
        | exception Codec.Corrupt msg ->
            (* The frame was well delimited, so the stream is still in
               sync — reply and keep the connection. *)
            Stats.record ctx.c_stats ~op:"bad-frame" ~ok:false
              ~seconds:(Unix.gettimeofday () -. t0);
            (try
               Protocol.write_frame fd
                 (Protocol.encode_reply
                    (Protocol.Error
                       { code = Protocol.Bad_frame; message = msg }))
             with _ -> continue_ := false)
        | req ->
            let op = op_of_request req in
            let batch = batch_of_request req in
            let reply, keep =
              try handle_request ctx req
              with e ->
                ( Protocol.Error
                    { code = Protocol.Internal; message = Printexc.to_string e },
                  true )
            in
            let ok =
              match reply with Protocol.Error _ -> false | _ -> true
            in
            Stats.record ?batch ctx.c_stats ~op ~ok
              ~seconds:(Unix.gettimeofday () -. t0);
            (try Protocol.write_frame fd (Protocol.encode_reply reply)
             with _ -> continue_ := false);
            if not keep then continue_ := false)
  done;
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve_fd ?stats ~registry fd =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  serve_connection
    { c_registry = registry; c_stats = stats; on_shutdown = (fun () -> ()) }
    fd

let worker_loop t =
  let ctx =
    {
      c_registry = t.registry;
      c_stats = t.stats;
      on_shutdown = (fun () -> request_stop t);
    }
  in
  let rec loop () =
    match dequeue t with
    | None -> ()
    | Some fd ->
        serve_connection ctx fd;
        loop ()
  in
  loop ()

let acceptor_loop t =
  let continue_ = ref true in
  while !continue_ do
    (match Unix.select [ t.listen_fd; t.pipe_rd ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        if List.mem t.pipe_rd ready then continue_ := false
        else if List.mem t.listen_fd ready then begin
          match Unix.accept ~cloexec:true t.listen_fd with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              (try
                 Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.timeout;
                 Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.timeout
               with Unix.Unix_error _ -> ());
              enqueue t fd
        end);
    Mutex.lock t.lock;
    if t.stopping then continue_ := false;
    Mutex.unlock t.lock
  done

let start ?(config = default_config) ?registry ?stats sockaddr =
  let registry =
    match registry with Some r -> r | None -> Registry.create ()
  in
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let domain =
    match sockaddr with
    | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
    | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let unix_path =
    match sockaddr with
    | Unix.ADDR_UNIX path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        Some path
    | _ -> None
  in
  let listen_fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     if domain = Unix.PF_INET then
       Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
   with Unix.Unix_error _ -> ());
  (try
     Unix.bind listen_fd sockaddr;
     Unix.listen listen_fd config.backlog
   with e ->
     Unix.close listen_fd;
     raise e);
  let bound = Unix.getsockname listen_fd in
  let pipe_rd, pipe_wr = Unix.pipe ~cloexec:true () in
  let t =
    {
      config;
      registry;
      stats;
      listen_fd;
      bound;
      unix_path;
      pipe_rd;
      pipe_wr;
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      joined = false;
      threads = [];
    }
  in
  let workers =
    List.init (max 1 config.workers) (fun _ -> Thread.create worker_loop t)
  in
  let acceptor = Thread.create acceptor_loop t in
  t.threads <- acceptor :: workers;
  t

let wait t =
  let to_join =
    Mutex.lock t.lock;
    let ts = if t.joined then [] else t.threads in
    t.joined <- true;
    Mutex.unlock t.lock;
    ts
  in
  List.iter Thread.join to_join;
  if to_join <> [] then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.pipe_rd with Unix.Unix_error _ -> ());
    (try Unix.close t.pipe_wr with Unix.Unix_error _ -> ());
    (match t.unix_path with
    | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | None -> ());
    Mutex.lock t.lock;
    Queue.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.queue;
    Queue.clear t.queue;
    Mutex.unlock t.lock
  end

let stop t =
  request_stop t;
  wait t
