open Cbmf_robust

(* Dead peers are routine here (shed connections, crashed clients,
   chaos injection): every raw write must surface EPIPE as an
   exception, never as process-terminating SIGPIPE. *)
let () = try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ()

type config = {
  workers : int;
  timeout : float;
  backlog : int;
  queue_cap : int;
  deadline : float;
  drain_timeout : float;
  retry_after_ms : int;
  batch_window_us : int;
      (* dynamic-batching window; 0 = unbatched, <0 = Tune default *)
  batch_max : int;  (* points per merged engine call; <=0 = Tune default *)
}

let default_config =
  {
    workers = 4;
    timeout = 10.0;
    backlog = 16;
    queue_cap = 8;
    deadline = 0.0;
    drain_timeout = 1.0;
    retry_after_ms = 50;
    batch_window_us = -1;
    batch_max = 0;
  }

(* Resolve the sentinel defaults against Tune (env-overridable) at
   server start, not at module load. *)
let batcher_of_config ~stats config =
  let window_us =
    if config.batch_window_us < 0 then Cbmf_parallel.Tune.batch_window_us ()
    else config.batch_window_us
  in
  let max_points =
    if config.batch_max <= 0 then Cbmf_parallel.Tune.batch_max ()
    else config.batch_max
  in
  Batcher.create ~stats ~window_us ~max_points ()

(* Chaos-harness fault sites (armed via CBMF_FAULT_SITES, see
   Cbmf_robust.Inject).  Each simulates one serve-tier failure mode:
   a connection dropped between accept and enqueue, a reply stalled
   in the kernel, a reply frame torn mid-write, and a worker dying
   mid-request (connection closed with no reply). *)
let accept_drop_site = "serve.accept_drop"

let slow_reply_site = "serve.slow_reply"

let torn_frame_site = "serve.torn_frame"

let worker_crash_site = "serve.worker_crash"

type t = {
  config : config;
  registry : Registry.t;
  stats : Stats.t;
  batcher : Batcher.t;
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  unix_path : string option;  (* socket file to unlink on stop *)
  pipe_rd : Unix.file_descr;
  pipe_wr : Unix.file_descr;
  lock : Mutex.t;
  not_empty : Condition.t;
  queue : (Unix.file_descr * float) Queue.t;  (* fd, accept timestamp *)
  inflight : (Unix.file_descr, unit) Hashtbl.t;  (* being served right now *)
  mutable stopping : bool;
  mutable joined : bool;
  mutable threads : Thread.t list;
}

let registry t = t.registry

let stats t = t.stats

let addr t = t.bound

(* --- Admission control ------------------------------------------------ *)

(* Queue full: the acceptor must never block, so the connection is
   refused on the spot — a typed [Overloaded] reply (bounded by the
   socket's SO_SNDTIMEO, already set) telling the client how deep the
   queue was and when to retry, then close. *)
let shed t fd ~depth =
  Stats.record_shed t.stats;
  (try
     Protocol.write_reply fd
       (Protocol.Overloaded
          { queue_depth = depth; retry_after_ms = t.config.retry_after_ms })
   with _ -> ());
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let try_enqueue t fd =
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    let depth = Queue.length t.queue in
    if depth >= t.config.queue_cap then begin
      Mutex.unlock t.lock;
      shed t fd ~depth
    end
    else begin
      Queue.push (fd, Unix.gettimeofday ()) t.queue;
      Condition.signal t.not_empty;
      Mutex.unlock t.lock;
      Stats.set_queue_depth t.stats (depth + 1)
    end
  end

(* Pops a connection and registers it in-flight under the same lock
   acquisition, so at every instant an accepted connection is either
   queued or in-flight — the drain reaper can enumerate both without a
   window where a connection belongs to neither. *)
let dequeue t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.not_empty t.lock
  done;
  let conn =
    if Queue.is_empty t.queue then None
    else begin
      let fd, accepted = Queue.pop t.queue in
      Hashtbl.replace t.inflight fd ();
      Some (fd, accepted, Queue.length t.queue)
    end
  in
  Mutex.unlock t.lock;
  match conn with
  | None -> None
  | Some (fd, accepted, depth) ->
      Stats.set_queue_depth t.stats depth;
      Stats.record_queue_wait t.stats
        ~seconds:(Unix.gettimeofday () -. accepted);
      Some (fd, accepted)

(* --- Request handling ------------------------------------------------- *)

let op_of_request = function
  | Protocol.Load _ -> "load"
  | Protocol.Predict _ | Protocol.Predict_deadline _ -> "predict"
  | Protocol.Stats -> "stats"
  | Protocol.Shutdown -> "shutdown"
  | Protocol.Ping -> "ping"
  | Protocol.Reload _ -> "reload"

let batch_of_request = function
  | Protocol.Predict { states; _ } | Protocol.Predict_deadline { states; _ } ->
      Some (Array.length states)
  | _ -> None

let request_stop t =
  Mutex.lock t.lock;
  let first = not t.stopping in
  t.stopping <- true;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.lock;
  if first then
    (* Wake the acceptor out of select. *)
    try ignore (Unix.write t.pipe_wr (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

(* Request handling is parameterized by a context so a pre-connected
   descriptor (e.g. one end of a socketpair) can be served without a
   listener — see [serve_fd]. *)
type ctx = {
  c_registry : Registry.t;
  c_stats : Stats.t;
  c_deadline : float;  (* per-request wall-clock budget, s; 0 = none *)
  c_batcher : Batcher.t option;  (* None = call the engine directly *)
  on_shutdown : unit -> unit;
}

(* The absolute deadline for one request: the tighter of the server's
   configured budget and the client's [Predict_deadline] budget, both
   anchored at [base] (accept time for a connection's first request —
   queue wait counts against it — frame arrival after that). *)
let effective_deadline ctx ~base req =
  let server =
    if ctx.c_deadline > 0.0 then Some (base +. ctx.c_deadline) else None
  in
  let client =
    match req with
    | Protocol.Predict_deadline { deadline_ms; _ } ->
        Some (base +. (float_of_int deadline_ms /. 1000.0))
    | _ -> None
  in
  match (server, client) with
  | None, d | d, None -> d
  | Some a, Some b -> Some (Float.min a b)

let model_reply model =
  ( Model.n_active model,
    model.Model.n_states,
    Model.byte_size model )

let do_predict ctx ?deadline ~name ~states ~xs () =
  match Registry.find ctx.c_registry ~name with
  | None ->
      ( Protocol.Error
          {
            code = Protocol.Model_not_found;
            message = Printf.sprintf "no model %S" name;
          },
        true )
  | Some model -> (
      try
        (* The batcher's reply is bit-identical to the direct engine
           call and raises the same exceptions, so the handlers below
           cover both paths. *)
        let means, sds =
          match ctx.c_batcher with
          | Some b -> Batcher.submit b ?deadline ~model ~states ~xs ()
          | None -> Engine.predict_batch ?deadline model ~states ~xs
        in
        (Protocol.Predicted { means; sds }, true)
      with
      | Invalid_argument msg ->
          (Protocol.Error { code = Protocol.Bad_request; message = msg }, true)
      | Fault.Error (Fault.Early_stop { site; _ } as f)
        when String.equal site Engine.deadline_site ->
          Stats.record_deadline ctx.c_stats;
          ( Protocol.Error
              { code = Protocol.Deadline_exceeded; message = Fault.to_string f },
            true ))
  | exception Fault.Error (Fault.Bad_snapshot _ as f) ->
      ( Protocol.Error
          { code = Protocol.Bad_snapshot; message = Fault.to_string f },
        true )

let handle_request ctx ?deadline req =
  match req with
  | Protocol.Load { name; source } -> (
      try
        let model =
          match source with
          | Protocol.Path path ->
              Registry.add_path ctx.c_registry ~name path;
              Registry.get ctx.c_registry ~name
          | Protocol.Inline image ->
              let m = Snapshot.decode ~site:"serve.decode" image in
              Registry.put ctx.c_registry ~name m;
              m
        in
        let n_active, n_states, bytes = model_reply model in
        (Protocol.Loaded { n_active; n_states; bytes }, true)
      with Fault.Error (Fault.Bad_snapshot _ as f) ->
        ( Protocol.Error
            { code = Protocol.Bad_snapshot; message = Fault.to_string f },
          true ))
  | Protocol.Reload { name; source } -> (
      try
        let model, generation =
          match source with
          | Protocol.Path path -> Registry.reload_path ctx.c_registry ~name path
          | Protocol.Inline image ->
              (* Decode before touching the slot: a corrupt inline image
                 raises here and the old model keeps serving. *)
              let m = Snapshot.decode ~site:"serve.decode" image in
              (m, Registry.reload ctx.c_registry ~name m)
        in
        let n_active, n_states, bytes = model_reply model in
        (Protocol.Reloaded { generation; n_active; n_states; bytes }, true)
      with Fault.Error (Fault.Bad_snapshot _ as f) ->
        ( Protocol.Error
            { code = Protocol.Bad_snapshot; message = Fault.to_string f },
          true ))
  | Protocol.Predict { name; states; xs } ->
      do_predict ctx ?deadline ~name ~states ~xs ()
  | Protocol.Predict_deadline { name; states; xs; deadline_ms = _ } ->
      do_predict ctx ?deadline ~name ~states ~xs ()
  | Protocol.Ping ->
      ( Protocol.Pong { generation = Registry.total_generation ctx.c_registry },
        true )
  | Protocol.Stats ->
      let json =
        Stats.to_json
          ~extra:
            [ ("registry", Stats.registry_json (Registry.stats ctx.c_registry))
            ]
          ctx.c_stats
      in
      (Protocol.Stats_json json, true)
  | Protocol.Shutdown ->
      ctx.on_shutdown ();
      (Protocol.Shutting_down, false)

let is_timeout = function
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> true
  | _ -> false

(* Reply write with the two reply-path fault sites.  A torn frame
   writes only a prefix of the framed bytes then raises [Closed] so
   the caller hangs up — exactly what a worker dying mid-write looks
   like from the client side. *)
let write_reply fd reply =
  if Inject.fire ~site:slow_reply_site then Thread.delay 0.02;
  if Inject.fire ~site:torn_frame_site then begin
    let buf = Protocol.frame (Protocol.encode_reply reply) in
    let half = max 1 (Bytes.length buf / 2) in
    (try ignore (Unix.write fd buf 0 half) with Unix.Unix_error _ -> ());
    raise Protocol.Closed
  end;
  (* Zero-copy hot path: one framed buffer, no body string. *)
  Protocol.write_reply fd reply

(* Serves one connection's requests until hangup / timeout / framing
   loss.  Does NOT close the descriptor — ownership stays with the
   caller (workers must unregister the fd from the in-flight table
   before closing it, so close ordering is theirs). *)
let serve_loop ctx ?accepted fd =
  let first_base = ref accepted in
  let continue_ = ref true in
  while !continue_ do
    match Protocol.read_frame fd with
    | exception Protocol.Closed -> continue_ := false
    | exception Codec.Corrupt msg ->
        (* Torn frame or hostile length prefix: the stream cannot be
           resynchronized.  Best-effort typed error, then hang up. *)
        Stats.record ctx.c_stats ~op:"bad-frame" ~ok:false ~seconds:0.0;
        (try
           write_reply fd
             (Protocol.Error { code = Protocol.Bad_frame; message = msg })
         with _ -> ());
        continue_ := false
    | exception e when is_timeout e -> continue_ := false
    | exception Unix.Unix_error _ -> continue_ := false
    | body -> (
        let t0 = Unix.gettimeofday () in
        let base =
          match !first_base with
          | Some a ->
              first_base := None;
              a
          | None -> t0
        in
        match Protocol.decode_request body with
        | exception Codec.Corrupt msg ->
            (* The frame was well delimited, so the stream is still in
               sync — reply and keep the connection. *)
            Stats.record ctx.c_stats ~op:"bad-frame" ~ok:false
              ~seconds:(Unix.gettimeofday () -. t0);
            (try
               write_reply fd
                 (Protocol.Error { code = Protocol.Bad_frame; message = msg })
             with _ -> continue_ := false)
        | req ->
            if Inject.fire ~site:worker_crash_site then begin
              (* Simulated worker death mid-request: no reply, the
                 connection just goes away.  The client sees a clean
                 close and must treat it as retryable. *)
              Stats.record ctx.c_stats ~op:"crash" ~ok:false
                ~seconds:(Unix.gettimeofday () -. t0);
              continue_ := false
            end
            else begin
              let op = op_of_request req in
              let batch = batch_of_request req in
              let deadline = effective_deadline ctx ~base req in
              let reply, keep =
                try handle_request ctx ?deadline req
                with e ->
                  ( Protocol.Error
                      {
                        code = Protocol.Internal;
                        message = Printexc.to_string e;
                      },
                    true )
              in
              let ok =
                match reply with Protocol.Error _ -> false | _ -> true
              in
              Stats.record ?batch ctx.c_stats ~op ~ok
                ~seconds:(Unix.gettimeofday () -. t0);
              (try write_reply fd reply with _ -> continue_ := false);
              if not keep then continue_ := false
            end)
  done

let close_conn fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve_fd ?stats ?batcher ?(deadline = 0.0) ~registry fd =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  serve_loop
    {
      c_registry = registry;
      c_stats = stats;
      c_deadline = deadline;
      c_batcher = batcher;
      on_shutdown = (fun () -> ());
    }
    fd;
  close_conn fd

let worker_loop t =
  let ctx =
    {
      c_registry = t.registry;
      c_stats = t.stats;
      c_deadline = t.config.deadline;
      c_batcher =
        (if Batcher.window_us t.batcher > 0 then Some t.batcher else None);
      on_shutdown = (fun () -> request_stop t);
    }
  in
  let rec loop () =
    match dequeue t with
    | None -> ()
    | Some (fd, accepted) ->
        serve_loop ctx ~accepted fd;
        (* Unregister before closing: the drain reaper only ever
           shuts down descriptors still present in the table, so a
           closed (possibly since reused) fd can never be hit. *)
        Mutex.lock t.lock;
        Hashtbl.remove t.inflight fd;
        Mutex.unlock t.lock;
        close_conn fd;
        loop ()
  in
  loop ()

(* --- Graceful drain --------------------------------------------------- *)

(* Past the drain window: queued connections (never picked up — the
   workers are wedged or gone) are closed outright; in-flight ones are
   shut down so their worker's blocking read fails, but the close is
   left to the owning worker.  Everything happens under the lock, so a
   worker that already unregistered its fd can never have it touched
   here. *)
let reap t =
  Mutex.lock t.lock;
  Queue.iter (fun (fd, _) -> close_conn fd) t.queue;
  Queue.clear t.queue;
  Hashtbl.iter
    (fun fd () ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    t.inflight;
  Mutex.unlock t.lock;
  Stats.set_queue_depth t.stats 0

(* After the stop signal the acceptor stops accepting but stays alive
   as the drain supervisor: queued and in-flight requests get up to
   [drain_timeout] to finish normally, then [reap] cuts them off. *)
let drain t =
  let cutoff = Unix.gettimeofday () +. t.config.drain_timeout in
  let rec loop () =
    let idle =
      Mutex.lock t.lock;
      let i = Queue.is_empty t.queue && Hashtbl.length t.inflight = 0 in
      Mutex.unlock t.lock;
      i
    in
    if idle then ()
    else if Unix.gettimeofday () >= cutoff then reap t
    else begin
      Thread.delay 0.01;
      loop ()
    end
  in
  loop ()

let acceptor_loop t =
  let continue_ = ref true in
  while !continue_ do
    (match Unix.select [ t.listen_fd; t.pipe_rd ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()  (* retry *)
    | ready, _, _ ->
        if List.mem t.pipe_rd ready then continue_ := false
        else if List.mem t.listen_fd ready then begin
          match Unix.accept ~cloexec:true t.listen_fd with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()  (* retry *)
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              (try
                 Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.timeout;
                 Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.timeout
               with Unix.Unix_error _ -> ());
              if Inject.fire ~site:accept_drop_site then
                (* Simulated drop between accept and enqueue. *)
                (try Unix.close fd with Unix.Unix_error _ -> ())
              else try_enqueue t fd
        end);
    Mutex.lock t.lock;
    if t.stopping then continue_ := false;
    Mutex.unlock t.lock
  done;
  drain t

let start ?(config = default_config) ?registry ?stats sockaddr =
  let registry =
    match registry with Some r -> r | None -> Registry.create ()
  in
  let stats = match stats with Some s -> s | None -> Stats.create () in
  let domain =
    match sockaddr with
    | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
    | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let unix_path =
    match sockaddr with
    | Unix.ADDR_UNIX path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        Some path
    | _ -> None
  in
  let listen_fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     if domain = Unix.PF_INET then
       Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
   with Unix.Unix_error _ -> ());
  (try
     Unix.bind listen_fd sockaddr;
     Unix.listen listen_fd config.backlog
   with e ->
     Unix.close listen_fd;
     raise e);
  let bound = Unix.getsockname listen_fd in
  let pipe_rd, pipe_wr = Unix.pipe ~cloexec:true () in
  let t =
    {
      config;
      registry;
      stats;
      batcher = batcher_of_config ~stats config;
      listen_fd;
      bound;
      unix_path;
      pipe_rd;
      pipe_wr;
      lock = Mutex.create ();
      not_empty = Condition.create ();
      queue = Queue.create ();
      inflight = Hashtbl.create 16;
      stopping = false;
      joined = false;
      threads = [];
    }
  in
  let workers =
    List.init (max 1 config.workers) (fun _ -> Thread.create worker_loop t)
  in
  let acceptor = Thread.create acceptor_loop t in
  t.threads <- acceptor :: workers;
  t

let wait t =
  let to_join =
    Mutex.lock t.lock;
    let ts = if t.joined then [] else t.threads in
    t.joined <- true;
    Mutex.unlock t.lock;
    ts
  in
  List.iter Thread.join to_join;
  if to_join <> [] then begin
    (* Workers are gone, so no submit can arrive; the batcher's final
       drain settles anything they left in flight, then its drainer
       joins.  Order matters: stopping the batcher before the workers
       would make late submits bypass coalescing. *)
    Batcher.stop t.batcher;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.pipe_rd with Unix.Unix_error _ -> ());
    (try Unix.close t.pipe_wr with Unix.Unix_error _ -> ());
    (match t.unix_path with
    | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | None -> ());
    (* Belt and braces: the drain already emptied the queue (workers
       picked everything up, or [reap] closed the rest). *)
    Mutex.lock t.lock;
    Queue.iter (fun (fd, _) -> close_conn fd) t.queue;
    Queue.clear t.queue;
    Mutex.unlock t.lock
  end

let stop t =
  request_stop t;
  wait t
