type slot = {
  path : string option;  (* backing snapshot, if any *)
  mutable model : Model.t option;
  mutable bytes : int;  (* 0 unless resident *)
  mutable last_use : int;  (* LRU tick *)
  generation : int;  (* bumped by every put/reload of this name *)
}

type stats = {
  hits : int;
  misses : int;
  loads : int;
  evictions : int;
  reloads : int;
  generation : int;
  resident_bytes : int;
  resident_models : int;
  max_bytes : int;
}

type t = {
  lock : Mutex.t;
  slots : (string, slot) Hashtbl.t;
  max_bytes : int;
  mutable tick : int;
  mutable resident : int;
  mutable hits : int;
  mutable misses : int;
  mutable loads : int;
  mutable evictions : int;
  mutable reloads : int;
  mutable gen : int;  (* global generation: every put/reload bumps it *)
}

let create ?(max_bytes = 256 * 1024 * 1024) () =
  {
    lock = Mutex.create ();
    slots = Hashtbl.create 16;
    max_bytes;
    tick = 0;
    resident = 0;
    hits = 0;
    misses = 0;
    loads = 0;
    evictions = 0;
    reloads = 0;
    gen = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let drop_resident t name slot =
  (match slot.model with
  | Some _ ->
      t.resident <- t.resident - slot.bytes;
      slot.model <- None;
      slot.bytes <- 0
  | None -> ());
  if slot.path = None then Hashtbl.remove t.slots name

(* Evict LRU resident slots (other than [keep]) until the budget holds
   or nothing evictable remains. *)
let enforce_budget t ~keep =
  let continue_ = ref true in
  while t.resident > t.max_bytes && !continue_ do
    let victim = ref None in
    Hashtbl.iter
      (fun name slot ->
        if slot.model <> None && name <> keep then
          match !victim with
          | Some (_, v) when v.last_use <= slot.last_use -> ()
          | _ -> victim := Some (name, slot))
      t.slots;
    match !victim with
    | None -> continue_ := false
    | Some (name, slot) ->
        drop_resident t name slot;
        t.evictions <- t.evictions + 1
  done

(* Swap [name] to [model] under the lock: release the old resident
   bytes, install the new model, bump both generation counters.  The
   old [Model.t] value stays valid for any request that already
   fetched it — models are immutable, so in-flight work finishes on
   the old generation while the next [find] sees the new one. *)
let swap_locked t ~name ~path model =
  let old_gen =
    match Hashtbl.find_opt t.slots name with
    | Some old ->
        drop_resident t name old;
        old.generation
    | None -> 0
  in
  Hashtbl.remove t.slots name;
  let bytes = Model.byte_size model in
  let generation = old_gen + 1 in
  Hashtbl.replace t.slots name
    { path; model = Some model; bytes; last_use = next_tick t; generation };
  t.resident <- t.resident + bytes;
  t.gen <- t.gen + 1;
  enforce_budget t ~keep:name;
  generation

let put t ~name model = locked t (fun () -> ignore (swap_locked t ~name ~path:None model))

let reload t ~name model =
  locked t (fun () ->
      t.reloads <- t.reloads + 1;
      swap_locked t ~name ~path:None model)

let reload_path t ~name path =
  (* Decode OUTSIDE the lock: a slow or faulty snapshot must not stall
     concurrent lookups, and a [Bad_snapshot] raised here rolls back
     for free — the slot was never touched. *)
  let model = Snapshot.load ~path in
  let generation =
    locked t (fun () ->
        t.reloads <- t.reloads + 1;
        swap_locked t ~name ~path:(Some path) model)
  in
  (model, generation)

let add_path t ~name path =
  locked t (fun () ->
      let old_gen =
        match Hashtbl.find_opt t.slots name with
        | Some old ->
            drop_resident t name old;
            old.generation
        | None -> 0
      in
      Hashtbl.remove t.slots name;
      Hashtbl.replace t.slots name
        {
          path = Some path;
          model = None;
          bytes = 0;
          last_use = next_tick t;
          generation = old_gen;
        })

let lookup t ~name =
  match Hashtbl.find_opt t.slots name with
  | None -> None
  | Some slot ->
      slot.last_use <- next_tick t;
      (match slot.model with
      | Some m ->
          t.hits <- t.hits + 1;
          Some m
      | None ->
          t.misses <- t.misses + 1;
          let path = Option.get slot.path in
          let m = Snapshot.load ~path in
          t.loads <- t.loads + 1;
          let bytes = Model.byte_size m in
          slot.model <- Some m;
          slot.bytes <- bytes;
          t.resident <- t.resident + bytes;
          enforce_budget t ~keep:name;
          Some m)

let find t ~name = locked t (fun () -> lookup t ~name)

let get t ~name =
  match find t ~name with Some m -> m | None -> raise Not_found

let remove t ~name =
  locked t (fun () ->
      match Hashtbl.find_opt t.slots name with
      | None -> ()
      | Some slot ->
          (match slot.model with
          | Some _ -> t.resident <- t.resident - slot.bytes
          | None -> ());
          Hashtbl.remove t.slots name)

let names t =
  locked t (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.slots []
      |> List.sort String.compare)

let generation t ~name =
  locked t (fun () ->
      match Hashtbl.find_opt t.slots name with
      | Some slot -> slot.generation
      | None -> 0)

let total_generation t = locked t (fun () -> t.gen)

let stats t =
  locked t (fun () ->
      let resident_models =
        Hashtbl.fold
          (fun _ slot acc -> if slot.model <> None then acc + 1 else acc)
          t.slots 0
      in
      {
        hits = t.hits;
        misses = t.misses;
        loads = t.loads;
        evictions = t.evictions;
        reloads = t.reloads;
        generation = t.gen;
        resident_bytes = t.resident;
        resident_models;
        max_bytes = t.max_bytes;
      })
