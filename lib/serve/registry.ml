type slot = {
  path : string option;  (* backing snapshot, if any *)
  mutable model : Model.t option;
  mutable bytes : int;  (* 0 unless resident *)
  mutable last_use : int;  (* LRU tick *)
}

type stats = {
  hits : int;
  misses : int;
  loads : int;
  evictions : int;
  resident_bytes : int;
  resident_models : int;
  max_bytes : int;
}

type t = {
  lock : Mutex.t;
  slots : (string, slot) Hashtbl.t;
  max_bytes : int;
  mutable tick : int;
  mutable resident : int;
  mutable hits : int;
  mutable misses : int;
  mutable loads : int;
  mutable evictions : int;
}

let create ?(max_bytes = 256 * 1024 * 1024) () =
  {
    lock = Mutex.create ();
    slots = Hashtbl.create 16;
    max_bytes;
    tick = 0;
    resident = 0;
    hits = 0;
    misses = 0;
    loads = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let drop_resident t name slot =
  (match slot.model with
  | Some _ ->
      t.resident <- t.resident - slot.bytes;
      slot.model <- None;
      slot.bytes <- 0
  | None -> ());
  if slot.path = None then Hashtbl.remove t.slots name

(* Evict LRU resident slots (other than [keep]) until the budget holds
   or nothing evictable remains. *)
let enforce_budget t ~keep =
  let continue_ = ref true in
  while t.resident > t.max_bytes && !continue_ do
    let victim = ref None in
    Hashtbl.iter
      (fun name slot ->
        if slot.model <> None && name <> keep then
          match !victim with
          | Some (_, v) when v.last_use <= slot.last_use -> ()
          | _ -> victim := Some (name, slot))
      t.slots;
    match !victim with
    | None -> continue_ := false
    | Some (name, slot) ->
        drop_resident t name slot;
        t.evictions <- t.evictions + 1
  done

let put t ~name model =
  locked t (fun () ->
      (match Hashtbl.find_opt t.slots name with
      | Some old -> drop_resident t name old
      | None -> ());
      Hashtbl.remove t.slots name;
      let bytes = Model.byte_size model in
      Hashtbl.replace t.slots name
        { path = None; model = Some model; bytes; last_use = next_tick t };
      t.resident <- t.resident + bytes;
      enforce_budget t ~keep:name)

let add_path t ~name path =
  locked t (fun () ->
      (match Hashtbl.find_opt t.slots name with
      | Some old -> drop_resident t name old
      | None -> ());
      Hashtbl.remove t.slots name;
      Hashtbl.replace t.slots name
        { path = Some path; model = None; bytes = 0; last_use = next_tick t })

let lookup t ~name =
  match Hashtbl.find_opt t.slots name with
  | None -> None
  | Some slot ->
      slot.last_use <- next_tick t;
      (match slot.model with
      | Some m ->
          t.hits <- t.hits + 1;
          Some m
      | None ->
          t.misses <- t.misses + 1;
          let path = Option.get slot.path in
          let m = Snapshot.load ~path in
          t.loads <- t.loads + 1;
          let bytes = Model.byte_size m in
          slot.model <- Some m;
          slot.bytes <- bytes;
          t.resident <- t.resident + bytes;
          enforce_budget t ~keep:name;
          Some m)

let find t ~name = locked t (fun () -> lookup t ~name)

let get t ~name =
  match find t ~name with Some m -> m | None -> raise Not_found

let remove t ~name =
  locked t (fun () ->
      match Hashtbl.find_opt t.slots name with
      | None -> ()
      | Some slot ->
          (match slot.model with
          | Some _ -> t.resident <- t.resident - slot.bytes
          | None -> ());
          Hashtbl.remove t.slots name)

let names t =
  locked t (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.slots []
      |> List.sort String.compare)

let stats t =
  locked t (fun () ->
      let resident_models =
        Hashtbl.fold
          (fun _ slot acc -> if slot.model <> None then acc + 1 else acc)
          t.slots 0
      in
      {
        hits = t.hits;
        misses = t.misses;
        loads = t.loads;
        evictions = t.evictions;
        resident_bytes = t.resident;
        resident_models;
        max_bytes = t.max_bytes;
      })
