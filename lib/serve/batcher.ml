open Cbmf_linalg
open Cbmf_parallel
open Cbmf_robust

(* Cross-connection dynamic batching.
   ----------------------------------

   Worker threads park predict requests here instead of calling the
   engine directly; a single drainer thread coalesces whatever is
   pending into merged [Engine.predict_batch] calls and fans the
   answers back out.  Merging is sound because the engine's per-point
   arithmetic is independent of batch composition (each point's basis
   row, covariance product and mean are sequential reductions over
   that point's own data — pinned by the "batch = scalar bitwise"
   tests), so a coalesced reply is bit-identical to the per-request
   one at any domain count.

   Flush policy: the window runs from the FIRST pending request's
   enqueue timestamp, so it only ever delays the idle→busy edge.
   Requests that arrive while a merged call is computing find that
   timestamp already old when the drainer comes back around — the next
   drain is immediate, and under sustained load the batcher is
   compute-bound, not window-bound.  Reaching [max_points] pending
   flushes early.  A window of 0 bypasses the machinery entirely:
   [submit] calls the engine inline, bit- and latency-identical to the
   unbatched server. *)

type outcome =
  | Reply of float array * float array
  | Raise of exn

(* One parked predict.  [p_deadline] is absolute (anchored where the
   server anchored it — at enqueue, not at drain), so time spent
   parked counts against the budget, never extends it. *)
type pending = {
  p_model : Model.t;
  p_states : int array;
  p_xs : Mat.t;
  p_deadline : float option;
  p_enqueued : float;
  p_cond : Condition.t;
  mutable p_done : outcome option;
}

type t = {
  lock : Mutex.t;
  wake : Condition.t;  (* drainer sleeps here while the queue is empty *)
  queue : pending Queue.t;
  mutable q_points : int;  (* points pending right now, for early flush *)
  window_us : int;
  max_points : int;
  stats : Stats.t option;
  pool : Pool.t option;
  mutable stopping : bool;
  mutable drainer : Thread.t option;
}

let deadline_fault =
  Fault.Error
    (Fault.Early_stop
       { site = Engine.deadline_site; step = 0; reason = "deadline exceeded" })

let settle t p outcome =
  Mutex.lock t.lock;
  p.p_done <- Some outcome;
  Condition.signal p.p_cond;
  Mutex.unlock t.lock

(* The engine's own pre-compute validation, replicated so one
   malformed request cannot poison a merged call.  A request failing
   this is run solo — the engine raises its authentic
   [Invalid_argument] before computing anything. *)
let valid p =
  Array.length p.p_states = p.p_xs.Mat.rows
  && p.p_xs.Mat.cols = p.p_model.Model.input_dim
  && Array.for_all
       (fun s -> s >= 0 && s < p.p_model.Model.n_states)
       p.p_states

(* One merged engine call over same-model requests, FIFO order
   preserved so request [i]'s points sit at a contiguous offset. *)
let run_merged t model ps =
  let reqs = Array.of_list ps in
  let n = Array.fold_left (fun a p -> a + p.p_xs.Mat.rows) 0 reqs in
  let d = model.Model.input_dim in
  let states = Array.make n 0 in
  let data = Array.make (n * d) 0.0 in
  let off = ref 0 in
  Array.iter
    (fun p ->
      let r = p.p_xs.Mat.rows in
      Array.blit p.p_states 0 states !off r;
      Array.blit p.p_xs.Mat.data 0 data (!off * d) (r * d);
      off := !off + r)
    reqs;
  let xs = Mat.unsafe_of_flat ~rows:n ~cols:d data in
  (* Merged budget = the loosest member's (a member with no budget
     means no merged budget).  When the max expires, every member's
     earlier deadline has too, so answering everyone Deadline on
     [Early_stop] wrongs no one; a min would abort loose-budget
     requests that merged with tight ones. *)
  let deadline =
    Array.fold_left
      (fun acc p ->
        match (acc, p.p_deadline) with
        | None, _ | _, None -> None
        | Some a, Some b -> Some (Float.max a b))
      (Some neg_infinity) reqs
  in
  let t_compute = Unix.gettimeofday () in
  let result =
    match Engine.predict_batch ?pool:t.pool ?deadline model ~states ~xs with
    | r -> Ok r
    | exception e -> Error e
  in
  let t_end = Unix.gettimeofday () in
  (match t.stats with
  | Some s ->
      Stats.record_flush s ~requests:(Array.length reqs) ~points:n;
      Array.iter
        (fun p ->
          Stats.record_batch_phase s
            ~batch_wait:(t_compute -. p.p_enqueued)
            ~compute:(t_end -. t_compute))
        reqs
  | None -> ());
  match result with
  | Error e -> Array.iter (fun p -> settle t p (Raise e)) reqs
  | Ok (means, sds) ->
      let off = ref 0 in
      Array.iter
        (fun p ->
          let r = p.p_xs.Mat.rows in
          let outcome =
            (* Re-check each member's own budget after compute:
               coalescing must never let a request that would have
               missed its deadline alone slip through late. *)
            match p.p_deadline with
            | Some dl when t_end > dl -> Raise deadline_fault
            | _ ->
                Reply (Array.sub means !off r, Array.sub sds !off r)
          in
          off := !off + r;
          settle t p outcome)
        reqs

(* Split one model's FIFO run into merged calls of at most
   [max_points] points, never splitting a request (one bigger than the
   cap runs alone). *)
let flush_group t model ps =
  let chunk = ref [] and chunk_pts = ref 0 in
  let emit () =
    if !chunk <> [] then run_merged t model (List.rev !chunk);
    chunk := [];
    chunk_pts := 0
  in
  List.iter
    (fun p ->
      let r = p.p_xs.Mat.rows in
      if !chunk <> [] && !chunk_pts + r > t.max_points then emit ();
      chunk := p :: !chunk;
      chunk_pts := !chunk_pts + r)
    ps;
  emit ()

let flush t batch =
  let now = Unix.gettimeofday () in
  let live, dead =
    List.partition
      (fun p ->
        match p.p_deadline with Some d -> now <= d | None -> true)
      batch
  in
  (* Already past budget: answer without burning compute on them. *)
  List.iter (fun p -> settle t p (Raise deadline_fault)) dead;
  let ok, bad = List.partition valid live in
  List.iter
    (fun p ->
      let outcome =
        match
          Engine.predict_batch ?pool:t.pool ?deadline:p.p_deadline p.p_model
            ~states:p.p_states ~xs:p.p_xs
        with
        | r -> Reply (fst r, snd r)
        | exception e -> Raise e
      in
      settle t p outcome)
    bad;
  (* Group by physical model (identity, not name: a reload swaps the
     model value, and generations must never merge), preserving
     arrival order within and across groups. *)
  let groups : (Model.t * pending list ref) list ref = ref [] in
  List.iter
    (fun p ->
      match List.find_opt (fun (m, _) -> m == p.p_model) !groups with
      | Some (_, l) -> l := p :: !l
      | None -> groups := !groups @ [ (p.p_model, ref [ p ]) ])
    ok;
  List.iter (fun (m, l) -> flush_group t m (List.rev !l)) !groups

let drainer_loop t =
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.wake t.lock
    done;
    if Queue.is_empty t.queue then begin
      (* stopping, nothing left *)
      Mutex.unlock t.lock;
      continue_ := false
    end
    else begin
      (* Window anchored at the oldest pending request's enqueue: on
         the idle→busy edge that is "just arrived" and we park for the
         window; coming back from a long merged call it is already in
         the past and the drain is immediate. *)
      let close =
        (Queue.peek t.queue).p_enqueued
        +. (float_of_int t.window_us *. 1e-6)
      in
      let rec park () =
        let now = Unix.gettimeofday () in
        if (not t.stopping) && t.q_points < t.max_points && now < close
        then begin
          Mutex.unlock t.lock;
          Thread.delay (Float.min (close -. now) 0.001);
          Mutex.lock t.lock;
          park ()
        end
      in
      park ();
      let batch =
        List.rev (Queue.fold (fun acc p -> p :: acc) [] t.queue)
      in
      Queue.clear t.queue;
      t.q_points <- 0;
      Mutex.unlock t.lock;
      flush t batch
    end
  done

let create ?stats ?pool ?window_us ?max_points () =
  let window_us =
    match window_us with
    | Some w when w >= 0 -> w
    | _ -> Tune.batch_window_us ()
  in
  let max_points =
    match max_points with Some m when m >= 1 -> m | _ -> Tune.batch_max ()
  in
  let t =
    {
      lock = Mutex.create ();
      wake = Condition.create ();
      queue = Queue.create ();
      q_points = 0;
      window_us;
      max_points;
      stats;
      pool;
      stopping = false;
      drainer = None;
    }
  in
  if window_us > 0 then t.drainer <- Some (Thread.create drainer_loop t);
  t

let window_us t = t.window_us

let submit t ?deadline ~model ~states ~xs () =
  let direct () = Engine.predict_batch ?pool:t.pool ?deadline model ~states ~xs in
  if t.window_us = 0 then direct ()
  else begin
    let p =
      {
        p_model = model;
        p_states = states;
        p_xs = xs;
        p_deadline = deadline;
        p_enqueued = Unix.gettimeofday ();
        p_cond = Condition.create ();
        p_done = None;
      }
    in
    Mutex.lock t.lock;
    if t.stopping then begin
      (* The drainer may already be gone; don't strand the request. *)
      Mutex.unlock t.lock;
      direct ()
    end
    else begin
      Queue.push p t.queue;
      t.q_points <- t.q_points + xs.Mat.rows;
      if Queue.length t.queue = 1 then Condition.signal t.wake;
      while p.p_done = None do
        Condition.wait p.p_cond t.lock
      done;
      Mutex.unlock t.lock;
      match p.p_done with
      | Some (Reply (means, sds)) -> (means, sds)
      | Some (Raise e) -> raise e
      | None -> assert false
    end
  end

let stop t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.signal t.wake;
  Mutex.unlock t.lock;
  match t.drainer with
  | Some th ->
      Thread.join th;
      t.drainer <- None
  | None -> ()
