(** Cross-connection dynamic batching between the worker pool and the
    engine.

    Worker threads {!submit} predict requests from any connection; a
    single drainer thread coalesces whatever is pending into merged
    {!Engine.predict_batch} calls (grouped by physical model, FIFO,
    never splitting one request) and fans the answers back out.

    {b Bit-identity.}  The engine's per-point arithmetic is
    independent of batch composition, so a coalesced reply is
    bit-identical to the per-request one — at any [CBMF_DOMAINS].  The
    batcher changes throughput and tail latency, never a single output
    bit (asserted by the serve.batcher tests and the bench harness).

    {b Flush policy.}  The batching window runs from the {e first}
    pending request's enqueue timestamp, so it only ever delays the
    idle→busy edge; under sustained load the drainer turns around
    immediately after each merged call and throughput is
    compute-bound.  Reaching [max_points] pending flushes early.  A
    window of 0 makes {!submit} call the engine inline — bit- and
    latency-identical to the unbatched server.

    {b Deadlines.}  A request's absolute deadline is honoured exactly
    as if it were served alone: expired requests are dropped before
    compute, a merged call carries the {e loosest} member budget (so
    an engine-level abort implies every member expired), and each
    member's own budget is re-checked after compute — coalescing never
    silently extends a budget. *)

open Cbmf_linalg
open Cbmf_parallel

type t

val create :
  ?stats:Stats.t ->
  ?pool:Pool.t ->
  ?window_us:int ->
  ?max_points:int ->
  unit ->
  t
(** [window_us] defaults to {!Cbmf_parallel.Tune.batch_window_us}
    ([CBMF_BATCH_WINDOW_US], 200 otherwise) and [max_points] to
    {!Cbmf_parallel.Tune.batch_max} ([CBMF_BATCH_MAX], 4 engine chunks
    otherwise).  When [window_us > 0] a drainer thread starts
    immediately; 0 starts nothing.  [stats] receives the batch-wait /
    compute phase split and the occupancy histogram. *)

val window_us : t -> int

val submit :
  t ->
  ?deadline:float ->
  model:Model.t ->
  states:int array ->
  xs:Mat.t ->
  unit ->
  float array * float array
(** Block until this request's slice of a merged call (or its solo
    call) completes; returns exactly what
    [Engine.predict_batch ?deadline model ~states ~xs] would, and
    raises exactly what it would raise ([Invalid_argument] on shape
    errors, the typed deadline fault on budget exhaustion) — callers
    keep their existing handlers.  [deadline] is absolute
    ({!Unix.gettimeofday} scale), anchored wherever the caller
    anchored it. *)

val stop : t -> unit
(** Flush everything still pending, then join the drainer.  Idempotent.
    Late {!submit}s fall back to direct engine calls rather than
    stranding. *)
