(** Consistent-hash sharding of the model namespace over several
    server processes.

    {b Placement} is a pure function of the model {e name} — never the
    model value or its reload generation — so a hot reload keeps
    routing to the same shard, and every client derives the same
    placement from nothing but (shard count, vnode count, name).  The
    ring carries [vnodes] virtual points per shard; changing the shard
    count N → N+1 moves only ~1/(N+1) of the namespace, where a
    [hash mod N] scheme would move almost all of it.

    Three layers, composable independently:
    - {!ring}/{!place} — the bare placement function;
    - {!router} — one logical client over N per-shard connections
      (lazily dialed, cached, redialed after transport failures),
      routing every named operation to its owner;
    - {!start}/{!connect}/{!stop} — a fork-per-shard cluster of full
      {!Server}s on Unix-domain sockets ["<base>.shard-<i>"].

    For tests, a router over [socketpair]-backed {!Client.t}s (one
    {!Server.serve_fd} thread per shard) gives multi-shard routing
    with no processes or ports — the generalized loopback-smoke
    pattern. *)

(** {1 Placement} *)

type ring

val ring : ?vnodes:int -> int -> ring
(** [ring n] places over shards [0 .. n-1]; [vnodes] (default 64)
    virtual points per shard.  Raises [Invalid_argument] when either
    is below 1. *)

val shards : ring -> int

val place : ring -> string -> int
(** The shard owning this model name: first ring point clockwise from
    the name's hash ([Codec.fnv64] passed through a full-avalanche
    64-bit finalizer, so names sharing a prefix still spread). *)

(** {1 Routed client} *)

type router

val router : ?vnodes:int -> (int -> Client.t) -> shards:int -> router
(** [router connect ~shards] dials shard [i] with [connect i] on first
    use and caches the connection.  Not itself thread-safe beyond
    connection caching — share like a {!Client.t}. *)

val route : router -> name:string -> int

val client_for : router -> name:string -> Client.t
(** The (cached) connection to the shard owning [name], for operations
    the convenience wrappers below don't cover. *)

val predict_typed :
  router ->
  name:string ->
  states:int array ->
  xs:Cbmf_linalg.Mat.t ->
  (float array * float array, Client.failure) result

val predict_deadline :
  router ->
  name:string ->
  states:int array ->
  xs:Cbmf_linalg.Mat.t ->
  deadline_ms:int ->
  (float array * float array, Client.failure) result

val predict_many :
  router ->
  name:string ->
  (int array * Cbmf_linalg.Mat.t) list ->
  (float array * float array, Client.failure) result list
(** {!Client.predict_many} on the owning shard's connection. *)

val load_inline :
  router -> name:string -> image:string -> (int * int * int, string) result

val load_path :
  router -> name:string -> path:string -> (int * int * int, string) result

val reload_inline :
  router -> name:string -> image:string -> (int * int * int * int, Client.failure) result

val reload_path :
  router -> name:string -> path:string -> (int * int * int * int, Client.failure) result

val close_router : router -> unit
(** Close and drop every cached connection (the router stays usable —
    the next call redials). *)

(** {1 Multi-process cluster} *)

type cluster

val shard_addr : base_path:string -> int -> Unix.sockaddr
(** [ADDR_UNIX "<base_path>.shard-<i>"] — the naming convention
    {!start} binds and external clients dial. *)

val start :
  ?config:Server.config ->
  ?vnodes:int ->
  shards:int ->
  base_path:string ->
  unit ->
  cluster
(** Fork one child per shard, each running [Server.start ~config] on
    [ADDR_UNIX "<base_path>.shard-<i>"].  Children are forked before
    they own any threads (the server's threads are spawned fresh
    inside each child).  Call {!wait_ready} before routing traffic. *)

val addrs : cluster -> Unix.sockaddr array

val wait_ready : ?timeout:float -> cluster -> unit
(** Block until every shard answers a ping; raises [Failure] past
    [timeout] (default 10 s). *)

val connect : ?timeout:float -> cluster -> router
(** A router dialing this cluster's sockets ([timeout] per
    {!Client.connect}). *)

val stop : ?timeout:float -> cluster -> unit
(** Graceful shutdown request to every shard, then reap; a child still
    alive after [timeout] (default 5 s) is killed.  Idempotent;
    removes the socket files. *)
