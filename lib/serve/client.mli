(** Blocking client for the serving protocol — used by the CLI, the
    tests and the smoke harness.  One connection, requests answered in
    order. *)

open Cbmf_linalg

type t

val connect : ?timeout:float -> Unix.sockaddr -> t
(** [timeout] (default 10 s) bounds each send/receive. *)

val of_fd : Unix.file_descr -> t
(** Wrap an already-connected descriptor (e.g. one end of a
    [socketpair] in tests).  [close] closes it. *)

val close : t -> unit

val call : t -> Protocol.request -> Protocol.reply
(** One round-trip.  Raises {!Protocol.Closed} if the server hung up
    and {!Codec.Corrupt} if the reply does not decode. *)

val send_raw : t -> string -> Protocol.reply
(** Frame an arbitrary body and read one reply — the malformed-frame
    test hook. *)

val load_path : t -> name:string -> path:string -> (int * int * int, string) result
(** Ask the server to load a snapshot file it can reach; [Ok (n_active,
    n_states, bytes)] on success, the server's error message otherwise. *)

val load_inline : t -> name:string -> image:string -> (int * int * int, string) result
(** Ship a snapshot image in the request body. *)

val predict :
  t ->
  name:string ->
  states:int array ->
  xs:Mat.t ->
  (float array * float array, string) result

val stats : t -> (string, string) result
(** The server's stats-JSON blob. *)

val shutdown : t -> unit
(** Fire the shutdown request; tolerates the server hanging up before
    the reply lands. *)
