(** Blocking client for the serving protocol — used by the CLI, the
    tests and the smoke harness.  One connection, requests answered in
    order. *)

open Cbmf_linalg

type t

val connect : ?timeout:float -> Unix.sockaddr -> t
(** [timeout] (default 10 s) bounds each send/receive. *)

val of_fd : Unix.file_descr -> t
(** Wrap an already-connected descriptor (e.g. one end of a
    [socketpair] in tests).  [close] closes it. *)

val close : t -> unit

val call : t -> Protocol.request -> Protocol.reply
(** One round-trip.  Raises {!Protocol.Closed} if the server hung up
    and {!Codec.Corrupt} if the reply does not decode. *)

val send_raw : t -> string -> Protocol.reply
(** Frame an arbitrary body and read one reply — the malformed-frame
    test hook. *)

val load_path : t -> name:string -> path:string -> (int * int * int, string) result
(** Ask the server to load a snapshot file it can reach; [Ok (n_active,
    n_states, bytes)] on success, the server's error message otherwise. *)

val load_inline : t -> name:string -> image:string -> (int * int * int, string) result
(** Ship a snapshot image in the request body. *)

val predict :
  t ->
  name:string ->
  states:int array ->
  xs:Mat.t ->
  (float array * float array, string) result

val stats : t -> (string, string) result
(** The server's stats-JSON blob. *)

val shutdown : t -> unit
(** Fire the shutdown request; tolerates the server hanging up before
    the reply lands. *)

(** {1 Typed failures}

    The [_typed] entry points never raise on transport problems:
    everything that ends a round-trip folds into a {!failure}, split
    by what a caller may do about it — {!retryable} failures
    ([Connection_lost], [Overloaded]) are safe to retry on another
    replica for idempotent requests; the rest are answers, not
    outages. *)

type failure =
  | Connection_lost of string
      (** The stream is gone: hangup, torn reply frame, socket timeout
          or refused connect.  Retryable against another replica. *)
  | Overloaded of { queue_depth : int; retry_after_ms : int }
      (** Admission control shed the connection; retry after the
          hint. *)
  | Server_error of { code : Protocol.error_code; message : string }
      (** A typed error reply — the server is healthy and said no. *)
  | Unexpected of string  (** Protocol violation; not retryable. *)

val failure_to_string : failure -> string

val retryable : failure -> bool
(** [true] exactly for [Connection_lost] and [Overloaded]. *)

val call_typed : t -> Protocol.request -> (Protocol.reply, failure) result
(** Like {!call} but transport failures and [Overloaded]/[Error]
    replies land in [Error]; any other reply is [Ok]. *)

val predict_typed :
  t ->
  name:string ->
  states:int array ->
  xs:Mat.t ->
  (float array * float array, failure) result

val predict_many :
  t ->
  name:string ->
  (int array * Mat.t) list ->
  (float array * float array, failure) result list
(** Pipelined predicts on this one connection: every request frame is
    sent before any reply is read, collapsing N round-trip latencies
    into one.  (The server handles each connection sequentially, so
    pipelining does not by itself fill the dynamic batcher's window —
    that takes concurrent connections — but it keeps this connection's
    requests arriving back-to-back.)  Replies arrive in request order;
    the result list aligns 1:1 with
    the input.  A typed server error fails only its own slot; a
    transport failure (hangup, torn frame, timeout) fails its slot and
    every later one with the same [Connection_lost], since the stream
    cannot be resynchronized.  Never raises on transport problems. *)

val predict_deadline :
  t ->
  name:string ->
  states:int array ->
  xs:Mat.t ->
  deadline_ms:int ->
  (float array * float array, failure) result
(** {!predict_typed} with a client-side wall-clock budget in
    milliseconds; the server answers [Deadline_exceeded] (a
    [Server_error]) when it cannot make it. *)

val ping : t -> (int, failure) result
(** Health probe; [Ok generation] carries the registry's global
    reload generation. *)

val reload_path :
  t -> name:string -> path:string -> (int * int * int * int, failure) result
(** Atomically swap the named model to the snapshot at [path];
    [Ok (generation, n_active, n_states, bytes)].  A corrupt snapshot
    is a [Server_error] with code [Bad_snapshot] and the old model
    keeps serving. *)

val reload_inline :
  t -> name:string -> image:string -> (int * int * int * int, failure) result
(** Same, shipping the snapshot image in the request body. *)

val with_failover :
  ?attempts:int ->
  ?base_backoff:float ->
  ?max_backoff:float ->
  ?seed:int64 ->
  ?timeout:float ->
  Unix.sockaddr list ->
  (t -> ('a, failure) result) ->
  ('a, failure) result
(** [with_failover addrs f] connects to replicas round-robin and runs
    [f] (which should issue {e idempotent} requests — predicts, pings)
    until it succeeds, a non-retryable failure is returned, or
    [attempts] (default 6) tries are exhausted.  Between retries it
    sleeps a capped exponential backoff ([base_backoff] 10 ms doubling
    up to [max_backoff] 250 ms) with deterministic jitter in
    [0.5, 1.5)× derived from [(seed, attempt)] via
    {!Cbmf_prob.Rng.derive} — replays sleep the same schedule.  An
    [Overloaded] hint floors the next delay at its [retry_after_ms].
    Each attempt uses a fresh connection, closed before returning.
    Raises [Invalid_argument] on an empty replica list. *)
