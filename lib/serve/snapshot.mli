(** Versioned binary persistence of a serving model.

    File layout (everything little-endian):

    {v
    offset  size  field
    0       8     magic "CBMFSNAP"
    8       4     format version (u32, currently 1)
    12      4     reserved (u32, must be 0)
    16      8     payload length in bytes (u64)
    24      8     FNV-1a 64-bit checksum of the payload (u64)
    32      —     payload (version-specific encoding of {!Model.t})
    v}

    The header is fixed forever; only the payload encoding is
    versioned.  [save] followed by [load] round-trips the model
    {e bit-identically} ({!Model.equal}), and saving the loaded model
    reproduces the file byte-for-byte.

    Loading is paranoid: a short header, a bad magic, a version this
    build does not know, a payload length that disagrees with the file
    size, a checksum mismatch, or a payload that decodes to an
    inconsistent model all raise
    [Cbmf_robust.Fault.(Error (Bad_snapshot _))] — never a segfault,
    never a module-private exception.  The fault's [site] is
    ["snapshot.load"] (or ["serve.decode"] when raised through the
    wire-transfer entry points). *)

val format_version : int
(** The payload version this build writes (and the newest it reads). *)

val encode : Model.t -> string
(** The full snapshot image (header + payload) as bytes. *)

val decode : ?site:string -> string -> Model.t
(** Parse a snapshot image.  [site] (default ["snapshot.load"]) names
    the fault site used when rejecting bad bytes.  Honors the
    {!Cbmf_robust.Inject} harness at site ["serve.decode"]: when armed
    there, an injected decode failure raises the same typed fault a
    genuinely corrupt image would. *)

val save : path:string -> Model.t -> unit
(** Write atomically: encode to [path ^ ".tmp"], then rename, so a
    crash mid-write never leaves a torn file under the real name. *)

val load : path:string -> Model.t
(** Read and {!decode} the file.  I/O errors ([Unix_error], [Sys_error])
    are reported as [Bad_snapshot] too — a missing file is just another
    way for a snapshot to be unreadable. *)
