open Cbmf_basis
open Cbmf_robust

let magic = "CBMFSNAP"

let format_version = 1

let header_len = 32

let bad site fmt =
  Printf.ksprintf
    (fun reason -> raise (Fault.Error (Fault.Bad_snapshot { site; reason })))
    fmt

(* --- Payload (version 1) -------------------------------------------- *)

let tag_constant = 0
let tag_linear = 1
let tag_square = 2
let tag_cross = 3

let w_term w = function
  | Term.Constant -> Codec.w_u8 w tag_constant
  | Term.Linear i ->
      Codec.w_u8 w tag_linear;
      Codec.w_u32 w i
  | Term.Square i ->
      Codec.w_u8 w tag_square;
      Codec.w_u32 w i
  | Term.Cross (i, j) ->
      Codec.w_u8 w tag_cross;
      Codec.w_u32 w i;
      Codec.w_u32 w j

let r_term r =
  let tag = Codec.r_u8 r in
  if tag = tag_constant then Term.Constant
  else if tag = tag_linear then Term.Linear (Codec.r_u32 r)
  else if tag = tag_square then Term.Square (Codec.r_u32 r)
  else if tag = tag_cross then
    let i = Codec.r_u32 r in
    let j = Codec.r_u32 r in
    Term.Cross (i, j)
  else raise (Codec.Corrupt (Printf.sprintf "unknown term tag %d" tag))

let encode_payload (m : Model.t) =
  let w = Codec.writer () in
  Codec.w_u32 w m.Model.input_dim;
  Codec.w_u32 w m.Model.n_states;
  Codec.w_u32 w (Array.length m.Model.terms);
  Array.iter (w_term w) m.Model.terms;
  Codec.w_mat w m.Model.col_means;
  Codec.w_f64_array w m.Model.col_scales;
  Codec.w_f64_array w m.Model.y_means;
  Codec.w_f64 w m.Model.y_scale;
  Codec.w_mat w m.Model.mu;
  Codec.w_f64_array w m.Model.lambda;
  Codec.w_mat w m.Model.r;
  Codec.w_f64 w m.Model.sigma0;
  Array.iter (Codec.w_mat w) m.Model.cov;
  Codec.contents w

let decode_payload ~site payload =
  let r = Codec.reader payload in
  let input_dim = Codec.r_u32 r in
  let n_states = Codec.r_u32 r in
  let a = Codec.r_u32 r in
  if a > 1_000_000 then
    raise (Codec.Corrupt (Printf.sprintf "absurd active count %d" a));
  let terms = Array.init a (fun _ -> r_term r) in
  let col_means = Codec.r_mat r in
  let col_scales = Codec.r_f64_array r in
  let y_means = Codec.r_f64_array r in
  let y_scale = Codec.r_f64 r in
  let mu = Codec.r_mat r in
  let lambda = Codec.r_f64_array r in
  let rr = Codec.r_mat r in
  let sigma0 = Codec.r_f64 r in
  if n_states < 0 || n_states > 1_000_000 then
    raise (Codec.Corrupt (Printf.sprintf "absurd state count %d" n_states));
  let cov = Array.init n_states (fun _ -> Codec.r_mat r) in
  Codec.expect_end r;
  let m =
    {
      Model.input_dim;
      n_states;
      terms;
      col_means;
      col_scales;
      y_means;
      y_scale;
      mu;
      lambda;
      r = rr;
      sigma0;
      cov;
    }
  in
  (match Model.validate m with
  | Ok () -> ()
  | Error reason -> bad site "inconsistent model: %s" reason);
  m

(* --- Image ----------------------------------------------------------- *)

let encode m =
  let payload = encode_payload m in
  let w = Codec.writer () in
  String.iter (fun c -> Codec.w_u8 w (Char.code c)) magic;
  Codec.w_u32 w format_version;
  Codec.w_u32 w 0;
  Codec.w_i64 w (Int64.of_int (String.length payload));
  Codec.w_i64 w (Codec.fnv64 payload);
  Codec.contents w ^ payload

let decode ?(site = "snapshot.load") image =
  if Inject.fire ~site:"serve.decode" then
    bad site "injected decode fault";
  let n = String.length image in
  if n < header_len then bad site "truncated header: %d bytes" n;
  if String.sub image 0 8 <> magic then bad site "bad magic";
  let hr = Codec.reader ~pos:8 ~len:24 image in
  let version, payload_len, checksum =
    try
      let v = Codec.r_u32 hr in
      let reserved = Codec.r_u32 hr in
      if reserved <> 0 then raise (Codec.Corrupt "reserved field not 0");
      let len = Codec.r_i64 hr in
      let sum = Codec.r_i64 hr in
      (v, len, sum)
    with Codec.Corrupt reason -> bad site "bad header: %s" reason
  in
  if version <> format_version then
    bad site "unknown format version %d (this build reads %d)" version
      format_version;
  if
    Int64.compare payload_len 0L < 0
    || Int64.compare payload_len (Int64.of_int (n - header_len)) > 0
  then
    bad site "payload length %Ld disagrees with file size %d" payload_len n;
  if Int64.to_int payload_len <> n - header_len then
    bad site "trailing bytes after payload (%d past the declared %Ld)"
      (n - header_len) payload_len;
  let payload = String.sub image header_len (Int64.to_int payload_len) in
  let actual = Codec.fnv64 payload in
  if not (Int64.equal actual checksum) then
    bad site "checksum mismatch (stored %Lx, computed %Lx)" checksum actual;
  try decode_payload ~site payload
  with Codec.Corrupt reason -> bad site "malformed payload: %s" reason

let save ~path m =
  let image = encode m in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try output_string oc image
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

let load ~path =
  let site = "snapshot.load" in
  let image =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | Sys_error msg -> bad site "cannot read %s: %s" path msg
    | End_of_file -> bad site "cannot read %s: unexpected end of file" path
  in
  decode ~site image
