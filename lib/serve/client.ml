open Cbmf_prob

type t = { fd : Unix.file_descr; mutable closed : bool }

let of_fd fd = { fd; closed = false }

let connect ?(timeout = 10.0) sockaddr =
  let domain =
    match sockaddr with
    | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
    | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     Unix.close fd;
     raise e);
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
   with Unix.Unix_error _ -> ());
  of_fd fd

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send_raw t body =
  Protocol.write_frame t.fd body;
  Protocol.decode_reply (Protocol.read_frame t.fd)

let call t req =
  Protocol.write_request t.fd req;
  Protocol.decode_reply (Protocol.read_frame t.fd)

let err_string code message =
  Printf.sprintf "%s: %s" (Protocol.error_code_name code) message

let load_result t req =
  match call t req with
  | Protocol.Loaded { n_active; n_states; bytes } -> Ok (n_active, n_states, bytes)
  | Protocol.Error { code; message } -> Error (err_string code message)
  | _ -> Error "unexpected reply"

let load_path t ~name ~path =
  load_result t (Protocol.Load { name; source = Protocol.Path path })

let load_inline t ~name ~image =
  load_result t (Protocol.Load { name; source = Protocol.Inline image })

let predict t ~name ~states ~xs =
  match call t (Protocol.Predict { name; states; xs }) with
  | Protocol.Predicted { means; sds } -> Ok (means, sds)
  | Protocol.Error { code; message } -> Error (err_string code message)
  | _ -> Error "unexpected reply"

let stats t =
  match call t Protocol.Stats with
  | Protocol.Stats_json json -> Ok json
  | Protocol.Error { code; message } -> Error (err_string code message)
  | _ -> Error "unexpected reply"

let shutdown t =
  match call t Protocol.Shutdown with
  | _ -> ()
  | exception (Protocol.Closed | Codec.Corrupt _ | Unix.Unix_error _) -> ()

(* --- Typed failures --------------------------------------------------- *)

type failure =
  | Connection_lost of string
  | Overloaded of { queue_depth : int; retry_after_ms : int }
  | Server_error of { code : Protocol.error_code; message : string }
  | Unexpected of string

let failure_to_string = function
  | Connection_lost msg -> Printf.sprintf "connection lost: %s" msg
  | Overloaded { queue_depth; retry_after_ms } ->
      Printf.sprintf "overloaded: queue depth %d, retry after %d ms"
        queue_depth retry_after_ms
  | Server_error { code; message } ->
      Printf.sprintf "%s: %s" (Protocol.error_code_name code) message
  | Unexpected msg -> Printf.sprintf "unexpected reply: %s" msg

let retryable = function
  | Connection_lost _ | Overloaded _ -> true
  | Server_error _ | Unexpected _ -> false

(* One round-trip with every transport-level failure folded into a
   typed value: a hangup, a torn reply frame, a socket timeout and a
   refused connect all become [Connection_lost] — the stream is gone
   either way, and a caller (e.g. [with_failover]) can't use the raw
   exception to decide anything the constructor doesn't already say. *)
let call_typed t req =
  match call t req with
  | Protocol.Overloaded { queue_depth; retry_after_ms } ->
      Error (Overloaded { queue_depth; retry_after_ms })
  | Protocol.Error { code; message } -> Error (Server_error { code; message })
  | reply -> Ok reply
  | exception Protocol.Closed ->
      Error (Connection_lost "server closed the connection")
  | exception End_of_file -> Error (Connection_lost "unexpected end of stream")
  | exception Codec.Corrupt msg ->
      Error (Connection_lost (Printf.sprintf "torn reply: %s" msg))
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Connection_lost (Printf.sprintf "%s: %s" fn (Unix.error_message e)))

let predicted_of = function
  | Ok (Protocol.Predicted { means; sds }) -> Ok (means, sds)
  | Ok _ -> Error (Unexpected "predict answered with a non-predict reply")
  | Error _ as e -> e

let predict_typed t ~name ~states ~xs =
  predicted_of (call_typed t (Protocol.Predict { name; states; xs }))

(* Pipelined predicts: every frame goes out before any reply is read,
   collapsing N round-trip latencies into one.  The server handles a
   connection sequentially, so pipelining alone does not fill the
   dynamic batcher's window — cross-connection concurrency does that —
   but it keeps this connection's requests flowing back-to-back into
   it.  Replies come back in request order.  A
   transport failure poisons the rest of the pipeline — the stream is
   unreadable past the tear — so every remaining slot gets the same
   [Connection_lost]; a typed server error ([Model_not_found], a shape
   error) only fails its own slot. *)
let predict_many t ~name reqs =
  let lost = ref None in
  let connection_lost e =
    let f =
      match e with
      | Protocol.Closed -> Connection_lost "server closed the connection"
      | End_of_file -> Connection_lost "unexpected end of stream"
      | Codec.Corrupt msg ->
          Connection_lost (Printf.sprintf "torn reply: %s" msg)
      | Unix.Unix_error (ue, fn, _) ->
          Connection_lost (Printf.sprintf "%s: %s" fn (Unix.error_message ue))
      | e -> raise e
    in
    lost := Some f;
    f
  in
  (* Send phase.  SO_SNDTIMEO bounds a wedged pipe (a server that
     stopped reading while both socket buffers are full), surfacing it
     as [Connection_lost] rather than a hang. *)
  (try
     List.iter
       (fun (states, xs) ->
         match !lost with
         | Some _ -> ()
         | None ->
             Protocol.write_request t.fd (Protocol.Predict { name; states; xs }))
       reqs
   with e -> ignore (connection_lost e));
  (* Read phase, in order; sends that never happened still consume a
     slot so the result list always aligns with [reqs]. *)
  List.map
    (fun _ ->
      match !lost with
      | Some f -> Error f
      | None -> (
          match Protocol.decode_reply (Protocol.read_frame t.fd) with
          | Protocol.Predicted { means; sds } -> Ok (means, sds)
          | Protocol.Overloaded { queue_depth; retry_after_ms } ->
              Error (Overloaded { queue_depth; retry_after_ms })
          | Protocol.Error { code; message } ->
              Error (Server_error { code; message })
          | _ -> Error (Unexpected "predict answered with a non-predict reply")
          | exception
              ((Protocol.Closed | End_of_file | Codec.Corrupt _
               | Unix.Unix_error _) as e) ->
              Error (connection_lost e)))
    reqs

let predict_deadline t ~name ~states ~xs ~deadline_ms =
  predicted_of
    (call_typed t (Protocol.Predict_deadline { name; states; xs; deadline_ms }))

let ping t =
  match call_typed t Protocol.Ping with
  | Ok (Protocol.Pong { generation }) -> Ok generation
  | Ok _ -> Error (Unexpected "ping answered with a non-pong reply")
  | Error _ as e -> e

let reload_result t req =
  match call_typed t req with
  | Ok (Protocol.Reloaded { generation; n_active; n_states; bytes }) ->
      Ok (generation, n_active, n_states, bytes)
  | Ok _ -> Error (Unexpected "reload answered with a non-reload reply")
  | Error _ as e -> e

let reload_path t ~name ~path =
  reload_result t (Protocol.Reload { name; source = Protocol.Path path })

let reload_inline t ~name ~image =
  reload_result t (Protocol.Reload { name; source = Protocol.Inline image })

(* --- Failover --------------------------------------------------------- *)

let with_failover ?(attempts = 6) ?(base_backoff = 0.01) ?(max_backoff = 0.25)
    ?(seed = 0L) ?(timeout = 10.0) addrs f =
  match addrs with
  | [] -> invalid_arg "Client.with_failover: no replicas"
  | _ ->
      let replicas = Array.of_list addrs in
      let n = Array.length replicas in
      let attempts = max 1 attempts in
      let rec go i =
        let addr = replicas.(i mod n) in
        let outcome =
          match connect ~timeout addr with
          | exception Unix.Unix_error (e, fn, _) ->
              Error
                (Connection_lost
                   (Printf.sprintf "connect %s: %s" fn (Unix.error_message e)))
          | c -> Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
        in
        match outcome with
        | Ok _ as ok -> ok
        | Error failure when retryable failure && i + 1 < attempts ->
            (* Capped exponential backoff with deterministic jitter:
               the multiplier in [0.5, 1.5) is a pure function of
               (seed, attempt index), so a replayed run sleeps the
               same schedule.  An [Overloaded] retry hint floors the
               delay — the server told us when it wants us back. *)
            let expo = base_backoff *. (2.0 ** float_of_int i) in
            let capped = Float.min max_backoff expo in
            let floor_s =
              match failure with
              | Overloaded { retry_after_ms; _ } ->
                  float_of_int retry_after_ms /. 1000.0
              | _ -> 0.0
            in
            let r = Rng.derive seed ~index:i in
            let delay = Float.max floor_s (capped *. (0.5 +. Rng.float r)) in
            Thread.delay delay;
            go (i + 1)
        | Error _ as e -> e
      in
      go 0
