type t = { fd : Unix.file_descr; mutable closed : bool }

let of_fd fd = { fd; closed = false }

let connect ?(timeout = 10.0) sockaddr =
  let domain =
    match sockaddr with
    | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
    | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     Unix.close fd;
     raise e);
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
   with Unix.Unix_error _ -> ());
  of_fd fd

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send_raw t body =
  Protocol.write_frame t.fd body;
  Protocol.decode_reply (Protocol.read_frame t.fd)

let call t req = send_raw t (Protocol.encode_request req)

let err_string code message =
  Printf.sprintf "%s: %s" (Protocol.error_code_name code) message

let load_result t req =
  match call t req with
  | Protocol.Loaded { n_active; n_states; bytes } -> Ok (n_active, n_states, bytes)
  | Protocol.Error { code; message } -> Error (err_string code message)
  | _ -> Error "unexpected reply"

let load_path t ~name ~path =
  load_result t (Protocol.Load { name; source = Protocol.Path path })

let load_inline t ~name ~image =
  load_result t (Protocol.Load { name; source = Protocol.Inline image })

let predict t ~name ~states ~xs =
  match call t (Protocol.Predict { name; states; xs }) with
  | Protocol.Predicted { means; sds } -> Ok (means, sds)
  | Protocol.Error { code; message } -> Error (err_string code message)
  | _ -> Error "unexpected reply"

let stats t =
  match call t Protocol.Stats with
  | Protocol.Stats_json json -> Ok json
  | Protocol.Error { code; message } -> Error (err_string code message)
  | _ -> Error "unexpected reply"

let shutdown t =
  match call t Protocol.Shutdown with
  | _ -> ()
  | exception (Protocol.Closed | Codec.Corrupt _ | Unix.Unix_error _) -> ()
