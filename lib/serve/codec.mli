(** Endian-fixed binary encoding primitives shared by the snapshot
    format and the wire protocol.

    Everything is little-endian regardless of host byte order; floats
    travel as their IEEE-754 bit patterns ([Int64.bits_of_float]), so a
    value round-trips {e bit-identically} — including negative zeros,
    subnormals and NaN payloads.

    Readers never trust the input: every length is bounds-checked
    against the remaining bytes before any allocation, and any
    inconsistency raises {!Corrupt} with a human-readable reason.
    Callers (the snapshot loader, the protocol decoder) translate
    {!Corrupt} into their own typed error — it never escapes the
    library. *)

exception Corrupt of string
(** The bytes do not decode: truncated input, a length field that
    exceeds the remaining payload, an invalid tag, a count that is
    negative or absurdly large. *)

(** {1 Writing}

    The writer appends into one growable [Bytes] buffer with in-place
    little-endian stores — no per-field scratch cell, no intermediate
    copies, and (in native code) no boxed [int64] per float: bulk
    float payloads are a single capacity check followed by a tight
    unboxed store loop.  A writer opened with [~frame:true]
    additionally reserves 4 bytes for the wire length prefix so a
    whole framed message is one allocation (see {!frame_bytes}). *)

type writer

val writer : ?frame:bool -> unit -> writer
(** [frame] (default false) reserves 4 leading bytes for a u32-LE
    length prefix, to be patched by {!frame_bytes}. *)

val contents : writer -> string
(** The written body (excluding any reserved frame prefix), as a fresh
    string. *)

val frame_bytes : writer -> Bytes.t * int
(** For a [~frame:true] writer: patch the length prefix with the body
    length and return [(buf, total_len)] — the underlying buffer and
    the number of valid bytes ([4 + body]).  Zero-copy: the buffer is
    the writer's own storage, only valid until the next write.  Raises
    [Invalid_argument] on an unframed writer. *)

val length : writer -> int
(** Body length written so far (excluding any frame prefix). *)

val w_u8 : writer -> int -> unit
(** [0, 255]. *)

val w_u32 : writer -> int -> unit
(** Non-negative, at most [2^31 - 1] (asserted — encoder-side counts
    are trusted). *)

val w_i64 : writer -> int64 -> unit

val w_f64 : writer -> float -> unit

val w_string : writer -> string -> unit
(** u32 length + raw bytes. *)

val w_f64_array : writer -> float array -> unit

val w_floats : writer -> float array -> int -> int -> unit
(** [w_floats w xs pos n] writes [xs.(pos .. pos+n-1)] as raw f64s (no
    length field) in one bulk store — the zero-copy building block for
    float payloads. *)

val w_u32_array : writer -> int array -> unit

val w_mat : writer -> Cbmf_linalg.Mat.t -> unit
(** u32 rows, u32 cols, rows·cols f64s (row-major). *)

(** {1 Reading} *)

type reader

val reader : ?pos:int -> ?len:int -> string -> reader
(** A cursor over [s.[pos .. pos+len-1]] (default: the whole string). *)

val remaining : reader -> int

val r_u8 : reader -> int

val r_u32 : reader -> int

val r_i64 : reader -> int64

val r_f64 : reader -> float

val r_string : ?max_len:int -> reader -> string
(** [max_len] (default 16 MiB) guards against hostile length fields. *)

val r_f64_array : reader -> float array

val r_floats : reader -> float array -> int -> int -> unit
(** [r_floats r dst pos n] bulk-loads [n] raw f64s into
    [dst.(pos ..)] — bounds-checked once, no per-element boxing. *)

val r_u32_array : reader -> int array

val r_mat : reader -> Cbmf_linalg.Mat.t

val expect_end : reader -> unit
(** Raises {!Corrupt} unless the cursor consumed the whole slice —
    trailing garbage is as suspect as truncation. *)

(** {1 Checksum} *)

val fnv64 : ?pos:int -> ?len:int -> string -> int64
(** FNV-1a, 64-bit, over the byte range (default: whole string). *)
