(** Endian-fixed binary encoding primitives shared by the snapshot
    format and the wire protocol.

    Everything is little-endian regardless of host byte order; floats
    travel as their IEEE-754 bit patterns ([Int64.bits_of_float]), so a
    value round-trips {e bit-identically} — including negative zeros,
    subnormals and NaN payloads.

    Readers never trust the input: every length is bounds-checked
    against the remaining bytes before any allocation, and any
    inconsistency raises {!Corrupt} with a human-readable reason.
    Callers (the snapshot loader, the protocol decoder) translate
    {!Corrupt} into their own typed error — it never escapes the
    library. *)

exception Corrupt of string
(** The bytes do not decode: truncated input, a length field that
    exceeds the remaining payload, an invalid tag, a count that is
    negative or absurdly large. *)

(** {1 Writing} *)

type writer

val writer : unit -> writer

val contents : writer -> string

val length : writer -> int

val w_u8 : writer -> int -> unit
(** [0, 255]. *)

val w_u32 : writer -> int -> unit
(** Non-negative, at most [2^31 - 1] (asserted — encoder-side counts
    are trusted). *)

val w_i64 : writer -> int64 -> unit

val w_f64 : writer -> float -> unit

val w_string : writer -> string -> unit
(** u32 length + raw bytes. *)

val w_f64_array : writer -> float array -> unit

val w_u32_array : writer -> int array -> unit

val w_mat : writer -> Cbmf_linalg.Mat.t -> unit
(** u32 rows, u32 cols, rows·cols f64s (row-major). *)

(** {1 Reading} *)

type reader

val reader : ?pos:int -> ?len:int -> string -> reader
(** A cursor over [s.[pos .. pos+len-1]] (default: the whole string). *)

val remaining : reader -> int

val r_u8 : reader -> int

val r_u32 : reader -> int

val r_i64 : reader -> int64

val r_f64 : reader -> float

val r_string : ?max_len:int -> reader -> string
(** [max_len] (default 16 MiB) guards against hostile length fields. *)

val r_f64_array : reader -> float array

val r_u32_array : reader -> int array

val r_mat : reader -> Cbmf_linalg.Mat.t

val expect_end : reader -> unit
(** Raises {!Corrupt} unless the cursor consumed the whole slice —
    trailing garbage is as suspect as truncation. *)

(** {1 Checksum} *)

val fnv64 : ?pos:int -> ?len:int -> string -> int64
(** FNV-1a, 64-bit, over the byte range (default: whole string). *)
