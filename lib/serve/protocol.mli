(** The length-prefixed binary wire protocol.

    Every frame on the wire is a u32 little-endian byte length followed
    by that many body bytes; bodies are {!Codec} encodings of one
    {!request} or one {!reply}.  Frames above {!max_frame_len} are
    rejected before allocation — a hostile length prefix cannot make
    the server allocate gigabytes.

    Decoding never trusts the peer: any malformed body raises
    {!Codec.Corrupt}, which the server answers with a typed
    [`Bad_frame] {!reply} error instead of dying. *)

open Cbmf_linalg

val max_frame_len : int
(** 64 MiB. *)

(** {1 Messages} *)

type source =
  | Path of string  (** a snapshot file the server can reach *)
  | Inline of string  (** a full snapshot image shipped in the request *)

type request =
  | Load of { name : string; source : source }
  | Predict of { name : string; states : int array; xs : Mat.t }
  | Stats
  | Shutdown

type error_code =
  | Bad_frame  (** the body did not decode *)
  | Unknown_op  (** valid frame, unknown opcode (a newer client?) *)
  | Bad_snapshot  (** a {!Cbmf_robust.Fault.Bad_snapshot} during load *)
  | Model_not_found
  | Bad_request  (** shape/state errors from the engine *)
  | Internal  (** anything else; the server stays up *)

type reply =
  | Loaded of { n_active : int; n_states : int; bytes : int }
  | Predicted of { means : float array; sds : float array }
  | Stats_json of string
  | Shutting_down
  | Error of { code : error_code; message : string }

val error_code_name : error_code -> string

(** {1 Encoding} *)

val encode_request : request -> string

val decode_request : string -> request
(** Raises {!Codec.Corrupt} on malformed bodies. *)

val encode_reply : reply -> string

val decode_reply : string -> reply
(** Raises {!Codec.Corrupt} on malformed bodies. *)

(** {1 Framing} *)

exception Closed
(** The peer closed the connection at a frame boundary. *)

val write_frame : Unix.file_descr -> string -> unit
(** Length prefix + body, handling short writes.  Raises
    [Invalid_argument] on bodies above {!max_frame_len}. *)

val read_frame : Unix.file_descr -> string
(** One whole frame.  Raises {!Closed} on EOF at a boundary,
    {!Codec.Corrupt} on an oversized length prefix or EOF mid-frame,
    and lets [Unix_error (EAGAIN, _, _)] (a socket receive timeout)
    propagate. *)
