(** The length-prefixed binary wire protocol.

    Every frame on the wire is a u32 little-endian byte length followed
    by that many body bytes; bodies are {!Codec} encodings of one
    {!request} or one {!reply}.  Frames above {!max_frame_len} are
    rejected before allocation — a hostile length prefix cannot make
    the server allocate gigabytes.

    Decoding never trusts the peer: any malformed body raises
    {!Codec.Corrupt}, which the server answers with a typed
    [`Bad_frame] {!reply} error instead of dying.

    {b Versioning is strictly additive.}  The original encodings (ops
    1-4, reply tags 1-4/255, error codes 1-6) are frozen byte-for-byte;
    the overload/deadline/reload/health extensions only ever claim
    fresh numbers ([Ping]=5, [Reload]=6, [Predict_deadline]=7; reply
    tags [Pong]=5, [Reloaded]=6, [Overloaded]=7; error code
    [Deadline_exceeded]=7).  A pre-extension client keeps speaking the
    old bytes and keeps receiving byte-identical replies — the wire
    back-compat test in [test_serve.ml] pins this. *)

open Cbmf_linalg

val max_frame_len : int
(** 64 MiB. *)

(** {1 Messages} *)

type source =
  | Path of string  (** a snapshot file the server can reach *)
  | Inline of string  (** a full snapshot image shipped in the request *)

type request =
  | Load of { name : string; source : source }
  | Predict of { name : string; states : int array; xs : Mat.t }
  | Stats
  | Shutdown
  | Ping  (** health probe; answered with {!reply.Pong} even under load *)
  | Reload of { name : string; source : source }
      (** atomic generation-swap of an existing (or new) slot:
          in-flight predicts finish on the old model, the next request
          sees the new one; a bad image rolls back (slot untouched) *)
  | Predict_deadline of {
      name : string;
      states : int array;
      xs : Mat.t;
      deadline_ms : int;
          (** client-side wall budget for this request, milliseconds
              from server receipt; the server answers
              [Deadline_exceeded] rather than replying late *)
    }

type error_code =
  | Bad_frame  (** the body did not decode *)
  | Unknown_op  (** valid frame, unknown opcode (a newer client?) *)
  | Bad_snapshot  (** a {!Cbmf_robust.Fault.Bad_snapshot} during load *)
  | Model_not_found
  | Bad_request  (** shape/state errors from the engine *)
  | Internal  (** anything else; the server stays up *)
  | Deadline_exceeded
      (** the request's wall budget (client [deadline_ms] or the
          server's configured per-request deadline) ran out *)

type reply =
  | Loaded of { n_active : int; n_states : int; bytes : int }
  | Predicted of { means : float array; sds : float array }
  | Stats_json of string
  | Shutting_down
  | Pong of { generation : int }
      (** [generation] is the registry's global reload counter, so a
          client can observe a reload land without a model request *)
  | Reloaded of { generation : int; n_active : int; n_states : int; bytes : int }
  | Overloaded of { queue_depth : int; retry_after_ms : int }
      (** admission control shed this connection before any request
          was read; retry against another replica or after
          [retry_after_ms] *)
  | Error of { code : error_code; message : string }

val error_code_name : error_code -> string

(** {1 Encoding} *)

val encode_request : request -> string

val decode_request : string -> request
(** Raises {!Codec.Corrupt} on malformed bodies. *)

val encode_reply : reply -> string

val decode_reply : string -> reply
(** Raises {!Codec.Corrupt} on malformed bodies. *)

(** {1 Framing} *)

exception Closed
(** The peer closed the connection at a frame boundary. *)

val frame : string -> bytes
(** The on-wire bytes of one frame (length prefix + body).  Raises
    [Invalid_argument] on bodies above {!max_frame_len}.  Exposed so
    the chaos harness can write {e partial} frames (torn-frame
    injection); normal senders use {!write_frame}. *)

val write_frame : Unix.file_descr -> string -> unit
(** Length prefix + body, handling short writes.  Raises
    [Invalid_argument] on bodies above {!max_frame_len}. *)

val write_request : Unix.file_descr -> request -> unit
(** Encode and send one framed request with zero copies: the message
    is emitted into a single framed buffer (prefix patched in place)
    and written directly.  Byte-identical on the wire to
    [write_frame fd (encode_request req)]. *)

val write_reply : Unix.file_descr -> reply -> unit
(** Same, for replies — the server's reply hot path. *)

val read_frame : Unix.file_descr -> string
(** One whole frame.  Raises {!Closed} on EOF at a boundary,
    {!Codec.Corrupt} on an oversized length prefix or EOF mid-frame,
    and lets [Unix_error (EAGAIN, _, _)] (a socket receive timeout)
    propagate. *)
