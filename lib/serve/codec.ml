open Cbmf_linalg

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* --- Writing -------------------------------------------------------- *)

type writer = { buf : Buffer.t; scratch : Bytes.t }

let writer () = { buf = Buffer.create 4096; scratch = Bytes.create 8 }

let contents w = Buffer.contents w.buf

let length w = Buffer.length w.buf

let w_u8 w v =
  assert (v >= 0 && v <= 0xFF);
  Buffer.add_char w.buf (Char.chr v)

let w_u32 w v =
  assert (v >= 0 && v <= 0x7FFFFFFF);
  Bytes.set_int32_le w.scratch 0 (Int32.of_int v);
  Buffer.add_subbytes w.buf w.scratch 0 4

let w_i64 w v =
  Bytes.set_int64_le w.scratch 0 v;
  Buffer.add_subbytes w.buf w.scratch 0 8

let w_f64 w v = w_i64 w (Int64.bits_of_float v)

let w_string w s =
  w_u32 w (String.length s);
  Buffer.add_string w.buf s

let w_f64_array w xs =
  w_u32 w (Array.length xs);
  Array.iter (w_f64 w) xs

let w_u32_array w xs =
  w_u32 w (Array.length xs);
  Array.iter (w_u32 w) xs

let w_mat w (m : Mat.t) =
  w_u32 w m.Mat.rows;
  w_u32 w m.Mat.cols;
  Array.iter (w_f64 w) m.Mat.data

(* --- Reading -------------------------------------------------------- *)

type reader = { data : string; limit : int; mutable pos : int }

let reader ?(pos = 0) ?len data =
  let len = match len with Some l -> l | None -> String.length data - pos in
  if pos < 0 || len < 0 || pos + len > String.length data then
    invalid_arg "Codec.reader: slice out of range";
  { data; limit = pos + len; pos }

let remaining r = r.limit - r.pos

let need r n what =
  if n < 0 then corrupt "negative length for %s" what;
  if remaining r < n then
    corrupt "truncated: %s needs %d bytes, %d remain" what n (remaining r)

let r_u8 r =
  need r 1 "u8";
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  need r 4 "u32";
  let v = String.get_int32_le r.data r.pos in
  r.pos <- r.pos + 4;
  (* Counts and dimensions are never negative; a sign bit means the
     bytes are not what we think they are. *)
  if Int32.compare v 0l < 0 then corrupt "u32 with sign bit set";
  Int32.to_int v

let r_i64 r =
  need r 8 "i64";
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let r_f64 r = Int64.float_of_bits (r_i64 r)

let r_string ?(max_len = 16 * 1024 * 1024) r =
  let n = r_u32 r in
  if n > max_len then corrupt "string length %d exceeds cap %d" n max_len;
  need r n "string body";
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_f64_array r =
  let n = r_u32 r in
  need r (n * 8) "f64 array body";
  Array.init n (fun _ -> r_f64 r)

let r_u32_array r =
  let n = r_u32 r in
  need r (n * 4) "u32 array body";
  Array.init n (fun _ -> r_u32 r)

let r_mat r =
  let rows = r_u32 r in
  let cols = r_u32 r in
  if rows < 0 || cols < 0 then corrupt "negative matrix dimension";
  if rows > 0 && cols > max_int / 8 / rows then
    corrupt "matrix %dx%d too large" rows cols;
  need r (rows * cols * 8) "matrix body";
  let data = Array.init (rows * cols) (fun _ -> r_f64 r) in
  Mat.unsafe_of_flat ~rows ~cols data

let expect_end r =
  if remaining r <> 0 then corrupt "%d trailing bytes" (remaining r)

(* --- Checksum ------------------------------------------------------- *)

let fnv64 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let h = ref 0xCBF29CE484222325L in
  for i = pos to pos + len - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (String.unsafe_get s i))))
        0x100000001B3L
  done;
  !h
