open Cbmf_linalg

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* --- Writing --------------------------------------------------------

   The writer is a growable [Bytes] buffer written in place.  Scalar
   fields are stored with the [Bytes.set_int*_le] primitives directly
   at the cursor — the intermediate [int64]/[int32] stays unboxed in
   native code because it never crosses a function boundary — and
   float arrays/matrices go through one capacity check followed by a
   tight store loop.  Compared to the previous [Buffer]-based writer
   (a scratch cell plus an [add_subbytes] copy per field) the predict
   hot path allocates nothing per field: one buffer, doubled
   geometrically, holds the whole message.

   A writer created with [~frame:true] additionally reserves 4 bytes
   up front for the wire-protocol length prefix; [frame_bytes] patches
   the prefix in place and hands back the underlying buffer, so
   framing a message costs zero copies (the historical path built the
   body string, then copied it into a fresh framed buffer). *)

type writer = { mutable buf : Bytes.t; mutable len : int; start : int }

let writer ?(frame = false) () =
  let start = if frame then 4 else 0 in
  { buf = Bytes.create 256; len = start; start }

let length w = w.len - w.start

let contents w = Bytes.sub_string w.buf w.start (w.len - w.start)

let reserve w extra =
  let needed = w.len + extra in
  if needed > Bytes.length w.buf then begin
    let cap = ref (Bytes.length w.buf * 2) in
    while needed > !cap do
      cap := !cap * 2
    done;
    let fresh = Bytes.create !cap in
    Bytes.blit w.buf 0 fresh 0 w.len;
    w.buf <- fresh
  end

let frame_bytes w =
  if w.start <> 4 then invalid_arg "Codec.frame_bytes: writer not framed";
  Bytes.set_int32_le w.buf 0 (Int32.of_int (w.len - 4));
  (w.buf, w.len)

let w_u8 w v =
  assert (v >= 0 && v <= 0xFF);
  reserve w 1;
  Bytes.unsafe_set w.buf w.len (Char.unsafe_chr v);
  w.len <- w.len + 1

let w_u32 w v =
  assert (v >= 0 && v <= 0x7FFFFFFF);
  reserve w 4;
  Bytes.set_int32_le w.buf w.len (Int32.of_int v);
  w.len <- w.len + 4

let w_i64 w v =
  reserve w 8;
  Bytes.set_int64_le w.buf w.len v;
  w.len <- w.len + 8

let w_f64 w v =
  reserve w 8;
  Bytes.set_int64_le w.buf w.len (Int64.bits_of_float v);
  w.len <- w.len + 8

let w_string w s =
  let n = String.length s in
  w_u32 w n;
  reserve w n;
  Bytes.blit_string s 0 w.buf w.len n;
  w.len <- w.len + n

(* Bulk float stores: one reserve, then straight unboxed stores. *)
let w_floats w xs pos n =
  reserve w (8 * n);
  let buf = w.buf in
  let base = w.len in
  for i = 0 to n - 1 do
    Bytes.set_int64_le buf
      (base + (8 * i))
      (Int64.bits_of_float (Array.unsafe_get xs (pos + i)))
  done;
  w.len <- base + (8 * n)

let w_f64_array w xs =
  let n = Array.length xs in
  w_u32 w n;
  w_floats w xs 0 n

let w_u32_array w xs =
  let n = Array.length xs in
  w_u32 w n;
  reserve w (4 * n);
  let buf = w.buf in
  let base = w.len in
  for i = 0 to n - 1 do
    let v = Array.unsafe_get xs i in
    assert (v >= 0 && v <= 0x7FFFFFFF);
    Bytes.set_int32_le buf (base + (4 * i)) (Int32.of_int v)
  done;
  w.len <- base + (4 * n)

let w_mat w (m : Mat.t) =
  w_u32 w m.Mat.rows;
  w_u32 w m.Mat.cols;
  w_floats w m.Mat.data 0 (m.Mat.rows * m.Mat.cols)

(* --- Reading -------------------------------------------------------- *)

type reader = { data : string; limit : int; mutable pos : int }

let reader ?(pos = 0) ?len data =
  let len = match len with Some l -> l | None -> String.length data - pos in
  if pos < 0 || len < 0 || pos + len > String.length data then
    invalid_arg "Codec.reader: slice out of range";
  { data; limit = pos + len; pos }

let remaining r = r.limit - r.pos

let need r n what =
  if n < 0 then corrupt "negative length for %s" what;
  if remaining r < n then
    corrupt "truncated: %s needs %d bytes, %d remain" what n (remaining r)

let r_u8 r =
  need r 1 "u8";
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  need r 4 "u32";
  let v = String.get_int32_le r.data r.pos in
  r.pos <- r.pos + 4;
  (* Counts and dimensions are never negative; a sign bit means the
     bytes are not what we think they are. *)
  if Int32.compare v 0l < 0 then corrupt "u32 with sign bit set";
  Int32.to_int v

let r_i64 r =
  need r 8 "i64";
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let r_f64 r = Int64.float_of_bits (r_i64 r)

let r_string ?(max_len = 16 * 1024 * 1024) r =
  let n = r_u32 r in
  if n > max_len then corrupt "string length %d exceeds cap %d" n max_len;
  need r n "string body";
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

(* Bulk float loads: bounds-checked once, then a tight loop whose
   [get_int64_le → float_of_bits → float-array store] chain stays
   unboxed — no per-element reader-cursor calls, no boxed [int64] per
   field. *)
let r_floats r dst pos n =
  need r (n * 8) "f64 array body";
  let data = r.data in
  let base = r.pos in
  for i = 0 to n - 1 do
    Array.unsafe_set dst (pos + i)
      (Int64.float_of_bits (String.get_int64_le data (base + (8 * i))))
  done;
  r.pos <- base + (8 * n)

let r_f64_array r =
  let n = r_u32 r in
  need r (n * 8) "f64 array body";
  let dst = Array.create_float n in
  r_floats r dst 0 n;
  dst

let r_u32_array r =
  let n = r_u32 r in
  need r (n * 4) "u32 array body";
  let dst = Array.make n 0 in
  let data = r.data in
  let base = r.pos in
  for i = 0 to n - 1 do
    let v = String.get_int32_le data (base + (4 * i)) in
    if Int32.compare v 0l < 0 then corrupt "u32 with sign bit set";
    Array.unsafe_set dst i (Int32.to_int v)
  done;
  r.pos <- base + (4 * n);
  dst

let r_mat r =
  let rows = r_u32 r in
  let cols = r_u32 r in
  if rows < 0 || cols < 0 then corrupt "negative matrix dimension";
  if rows > 0 && cols > max_int / 8 / rows then
    corrupt "matrix %dx%d too large" rows cols;
  need r (rows * cols * 8) "matrix body";
  let data = Array.create_float (rows * cols) in
  r_floats r data 0 (rows * cols);
  Mat.unsafe_of_flat ~rows ~cols data

let expect_end r =
  if remaining r <> 0 then corrupt "%d trailing bytes" (remaining r)

(* --- Checksum ------------------------------------------------------- *)

let fnv64 ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  let h = ref 0xCBF29CE484222325L in
  for i = pos to pos + len - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (String.unsafe_get s i))))
        0x100000001B3L
  done;
  !h
