(* Chunk-size and fan-out heuristics for the domain pool.

   One module owns every scheduling constant that used to be scattered
   across the hot paths (the pool's [n / (4·size)] default, the serving
   engine's fixed 64-point batch chunk, ad-hoc "is this worth fanning
   out" guesses).  Two kinds of knob live here:

   - *Bit-affecting* chunk sizes — the serving engine's batch chunk
     changes which points share a state bucket, so it must be a pure
     function of the environment ([CBMF_CHUNK] or the built-in
     default), never of the pool size or the calibration below.
     Holding the environment fixed, results stay bit-identical at any
     [CBMF_DOMAINS].

   - *Bit-neutral* chunk sizes — the pool's index-range chunking and
     the GEMM fan-out threshold only decide which domain computes
     which slot; the determinism contract makes the result identical
     for any value.  These are auto-calibrated: a one-shot startup
     microbenchmark prices a cross-domain wakeup (mutex + condvar
     round-trip through a scratch domain) and the per-chunk claim cost
     (an atomic fetch-and-add), and the heuristics size chunks so the
     measured overhead stays a few percent of useful work.

   On a single-core box ([recommended_domains () = 1]) no pool ever
   fans out, calibration never runs, and every entry point falls
   through to the strictly sequential path. *)

let max_domains = 64

let clamp_domains n = Stdlib.max 1 (Stdlib.min max_domains n)

let recommended_domains () =
  match Sys.getenv_opt "CBMF_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> clamp_domains n
      | _ -> clamp_domains (Domain.recommended_domain_count ()))
  | None -> clamp_domains (Domain.recommended_domain_count ())

let sequential_recommended () = recommended_domains () = 1

(* Memoization below is mutex-guarded rather than [Lazy]: chunk sizes
   are computed on worker domains too (nested fan-outs), and
   concurrently forcing one lazy from two domains is unsound. *)
let memo_mutex = Mutex.create ()

let memoized cell compute =
  Mutex.lock memo_mutex;
  let v =
    match !cell with
    | Some v -> v
    | None ->
        let v = compute () in
        cell := Some v;
        v
  in
  Mutex.unlock memo_mutex;
  v

(* [CBMF_CHUNK]: explicit chunk-size override for every consumer of
   this module.  Parsed once; invalid values are ignored. *)
let chunk_override_memo : int option option ref = ref None

let chunk_override () =
  memoized chunk_override_memo (fun () ->
      match Sys.getenv_opt "CBMF_CHUNK" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some c when c >= 1 -> Some c
          | _ -> None)
      | None -> None)

(* --- Startup microbenchmark ----------------------------------------

   Measured lazily, at most once per process, and only when a
   multi-domain decision actually needs the numbers (a 1-core run
   never pays for it).  Two costs are measured:

   - [claim_ns]: one atomic fetch-and-add plus an indirect call — the
     per-chunk cost of the pool's cursor scheduler.
   - [wakeup_ns]: a mutex/condvar ping-pong round-trip against a
     freshly spawned domain — the per-job cost of waking a parked
     worker (an upper bound on the gate latency, since the scratch
     domain here is cold).

   Both are floors/ceilings-clamped so a noisy measurement cannot
   produce absurd chunking. *)

type calibration = { claim_ns : float; wakeup_ns : float }

let measure_claim_ns () =
  let a = Atomic.make 0 in
  let f = Sys.opaque_identity (fun i -> ignore (Sys.opaque_identity i)) in
  let reps = 200_000 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to reps - 1 do
    ignore (Atomic.fetch_and_add a 1);
    f i
  done;
  let dt = Unix.gettimeofday () -. t0 in
  dt *. 1e9 /. float_of_int reps

let measure_wakeup_ns () =
  (* Ping-pong [reps] times through a mutex + two condvars: each round
     trip is one worker wakeup plus one reply — the same primitives the
     pool's gate uses. *)
  let m = Mutex.create () in
  let to_worker = Condition.create () and to_main = Condition.create () in
  let turn = ref 0 (* 0 = main's move, 1 = worker's move *) in
  let reps = 200 in
  let stop = ref false in
  let worker =
    Domain.spawn (fun () ->
        Mutex.lock m;
        while not !stop do
          while !turn = 0 && not !stop do
            Condition.wait to_worker m
          done;
          if not !stop then begin
            turn := 0;
            Condition.signal to_main
          end
        done;
        Mutex.unlock m)
  in
  let t0 = Unix.gettimeofday () in
  Mutex.lock m;
  for _ = 1 to reps do
    turn := 1;
    Condition.signal to_worker;
    while !turn = 1 do
      Condition.wait to_main m
    done
  done;
  let dt = Unix.gettimeofday () -. t0 in
  stop := true;
  Condition.signal to_worker;
  Mutex.unlock m;
  Domain.join worker;
  dt *. 1e9 /. float_of_int reps /. 2.0

let calibration_memo : calibration option ref = ref None

let calibrated () =
  memoized calibration_memo (fun () ->
      let claim = measure_claim_ns () in
      let wakeup = measure_wakeup_ns () in
      {
        claim_ns = Float.min 2_000.0 (Float.max 5.0 claim);
        wakeup_ns = Float.min 500_000.0 (Float.max 500.0 wakeup);
      })

(* --- Pool chunking -------------------------------------------------

   The cursor scheduler makes chunks cheap (one fetch-and-add each),
   so the heuristic aims for plenty of chunks per domain — dynamic
   claiming then absorbs stragglers — while keeping each chunk's claim
   cost under ~2% of its work.  [cost_hint_ns] is the caller's rough
   per-item cost; the default (100 ns) suits the per-index bodies the
   pool actually runs (state-pair blocks, Monte-Carlo samples, CV
   cells are all far heavier). *)

let chunks_per_domain = 8

let chunk ?(cost_hint_ns = 100.0) ~size ~n () =
  match chunk_override () with
  | Some c -> c
  | None ->
      if size <= 1 || n <= 1 then Stdlib.max 1 n
      else begin
        let { claim_ns; _ } = calibrated () in
        (* Claim cost ≤ 2% of chunk work: chunk ≥ 50·claim/item. *)
        let min_items =
          int_of_float (ceil (50.0 *. claim_ns /. Float.max 1.0 cost_hint_ns))
        in
        let balanced = n / (chunks_per_domain * size) in
        Stdlib.max 1 (Stdlib.max min_items balanced)
      end

(* --- Fan-out worthwhileness ----------------------------------------

   A job is worth waking the pool for when the sequential work
   comfortably exceeds the gate cost: one wakeup broadcast plus a
   join.  We require work ≥ 32× the measured wakeup round-trip
   (expressed in ns of estimated work) so even a pessimistic wakeup
   costs ≈ 3% of the job. *)

let fanout_worthwhile ~size ~work_ns =
  size > 1
  &&
  let { wakeup_ns; _ } = calibrated () in
  work_ns >= 32.0 *. wakeup_ns

(* Estimated ns for [flops] floating multiply-adds of straight-line
   OCaml kernel code (~1 flop/ns is the right order on current cores
   for the blocked kernels). *)
let gemm_fanout ~size ~flops = fanout_worthwhile ~size ~work_ns:flops

(* --- Serving-engine batch chunk ------------------------------------

   Bit-affecting: chunk boundaries decide which points are bucketed
   together, so this must not depend on pool size or calibration.
   [CBMF_CHUNK] overrides the built-in 64 (documented: changing the
   environment may change low-order bits of batched variances;
   changing [CBMF_DOMAINS] never does). *)

let default_batch_chunk = 64

let batch_chunk () =
  match chunk_override () with
  | Some c -> c
  | None -> default_batch_chunk

(* --- Serving-tier dynamic-batching policy --------------------------

   The batch window is how long the serving batcher lets the first
   queued predict request age before flushing, so concurrent
   connections get a chance to coalesce into one blocked engine call.
   It trades tail latency (every request can wait up to one window)
   against throughput (bigger merged batches), so it is an explicit
   environment knob with a conservative default: long enough to
   gather requests that arrive "together" through the worker pool
   (hundreds of microseconds of systhread scheduling jitter), short
   enough to be invisible next to a model evaluation.  Under
   sustained load the batcher drains continuously and the window only
   pays at the idle→busy edge, so the default is not throughput
   critical.  0 disables batching entirely (strict per-request
   serving).

   The batch cap bounds the points of one merged engine call.  The
   default is a few engine chunks: big enough that a full merge still
   fans out across the pool, small enough that one giant request
   cannot stall every coalesced neighbour behind it.

   Both are bit-neutral: merged and per-request serving are
   bit-identical per point (the engine's per-point arithmetic never
   depends on its batch neighbours), so these knobs affect latency
   and throughput only. *)

let default_batch_window_us = 200

let env_int_memo : (string, int option) Hashtbl.t = Hashtbl.create 4

let env_int name =
  Mutex.lock memo_mutex;
  let v =
    match Hashtbl.find_opt env_int_memo name with
    | Some v -> v
    | None ->
        let v =
          match Sys.getenv_opt name with
          | Some s -> int_of_string_opt (String.trim s)
          | None -> None
        in
        Hashtbl.replace env_int_memo name v;
        v
  in
  Mutex.unlock memo_mutex;
  v

let batch_window_us () =
  match env_int "CBMF_BATCH_WINDOW_US" with
  | Some w when w >= 0 -> w
  | _ -> default_batch_window_us

let batch_max () =
  match env_int "CBMF_BATCH_MAX" with
  | Some m when m >= 1 -> m
  | _ -> 4 * batch_chunk ()
