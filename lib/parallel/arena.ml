(* Per-worker float scratch arenas.

   A pool task that needs temporary buffers (a state-pair product
   block, a staged weighted row, a batch-chunk design matrix) would
   otherwise allocate them once per task — millions of short-lived
   arrays across an EM run.  An arena gives each *slot* (see
   [Pool.slot]: 0 = submitting domain, 1..size-1 = workers) its own
   cache of named buffers, reused across tasks and across jobs.

   Correctness rules, enforced by construction:

   - A buffer is keyed by (slot, id).  Only the domain currently
     occupying a slot touches that slot's buffers, and the pool never
     runs two domains on one slot at a time, so there is no sharing
     and no locking.
   - Buffers carry stale garbage from previous tasks.  Callers must
     fully overwrite the region they use ([_into] kernels zero or
     overwrite their whole output) — an arena never zeroes on grab.
   - [grab] returns an array of *exactly* the requested length (the
     flat-matrix layer asserts exact lengths), reallocating when the
     requested size changes and reusing when it is stable — which it
     is across EM iterations, CV folds, and serving batches.

   Nested sequential-fallback calls run on the same domain, hence the
   same slot: a nested task grabbing the same [id] as its parent would
   clobber the parent's scratch.  Call sites avoid this by using one
   [Arena.t] per subsystem with locally unique ids — ids are
   [`Fresh]-allocated, so two subsystems can never collide. *)

type id = int

let next_id = Atomic.make 0

let fresh_id () = Atomic.fetch_and_add next_id 1

type t = {
  (* slots.(slot) is the per-slot id -> buffer table; tables are tiny
     (a handful of ids per subsystem) so an assoc-style pair of parallel
     arrays would do, but a Hashtbl keyed by id keeps it simple.  Each
     table is touched by at most one domain at a time (see above). *)
  slots : (id, float array) Hashtbl.t array;
}

let create () =
  { slots = Array.init Tune.max_domains (fun _ -> Hashtbl.create 8) }

(* [grab a id len] returns this slot's buffer for [id], of exactly
   [len] elements, contents unspecified. *)
let grab a id len =
  let tbl = a.slots.(Pool.slot ()) in
  match Hashtbl.find_opt tbl id with
  | Some buf when Array.length buf = len -> buf
  | _ ->
      let buf = Array.make len 0.0 in
      Hashtbl.replace tbl id buf;
      buf

(* [grab_zeroed] additionally clears the buffer — for accumulation
   targets. *)
let grab_zeroed a id len =
  let buf = grab a id len in
  Array.fill buf 0 len 0.0;
  buf
