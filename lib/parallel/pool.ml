(* Reusable domain pool for the C-BMF hot paths.

   Determinism contract: every parallel entry point is chunk-order- and
   domain-count-invariant.  [map]/[map_reduce] store per-index results in
   a pre-allocated slot array and reduce them sequentially in index
   order, so for any pool size and any chunking the result is
   bit-identical to the sequential fold.  [parallel_for] requires the
   body to write only index-owned locations; under that contract the
   output is bit-identical to the sequential loop.

   Scheduling: one job at a time, described by a single [run] closure
   over a chunk index plus an atomic cursor.  Participating domains
   claim chunks with [Atomic.fetch_and_add] — no per-chunk closure
   allocation, no lock acquisition, no condvar wakeup per chunk.  The
   mutex/condvar pair is only a parking gate between jobs: workers wait
   on an epoch counter, the submitter bumps it and broadcasts once per
   job, and a per-job [pending] countdown wakes the submitter when the
   last straggler finishes.

   Pool size comes from [CBMF_DOMAINS] when set, otherwise
   [Domain.recommended_domain_count ()] (see [Tune]).  A pool of size 1
   (and any call issued from inside a pool task — nested parallelism)
   runs strictly sequentially on the calling domain, with no gate
   traffic at all. *)

type job = {
  run : int -> unit; (* chunk index -> work; never raises (error-wrapped) *)
  n_chunks : int;
  cursor : int Atomic.t; (* next unclaimed chunk *)
  pending : int Atomic.t; (* chunks not yet completed *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t; (* epoch bumped or stopped *)
  job_done : Condition.t; (* pending reached zero *)
  mutable current : job option;
  mutable epoch : int; (* bumped once per submitted job, under [mutex] *)
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
  submit : Mutex.t; (* one job in flight at a time *)
}

(* True while the current domain is executing a pool task: nested
   parallel calls fall back to the sequential path instead of
   deadlocking on the shared gate. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Stable per-domain slot for arena indexing: 0 on the submitting
   domain, 1..size-1 on workers.  Nested (sequential-fallback) calls
   run on the same domain and therefore see the same slot, so a slot's
   scratch is never touched by two domains at once. *)
let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let slot () = Domain.DLS.get slot_key

(* True on a domain currently executing a pool task: callers that
   would otherwise do setup work for a parallel path (operand packing,
   arena grabs) can skip straight to their sequential kernel. *)
let in_parallel () = Domain.DLS.get in_task

let max_domains = Tune.max_domains

let clamp_size = Tune.clamp_domains

let env_domains = Tune.recommended_domains

(* Claim-and-run loop shared by workers and the submitting domain.
   Each chunk index is claimed exactly once across all domains (the
   fetch-and-add is the only claim path), so [pending] reaches zero
   precisely when every chunk has completed — and the submitter can
   always finish a job alone by draining the cursor itself. *)
let run_chunks pool job =
  let rec loop () =
    let c = Atomic.fetch_and_add job.cursor 1 in
    if c < job.n_chunks then begin
      job.run c;
      if Atomic.fetch_and_add job.pending (-1) = 1 then begin
        (* Last chunk: wake the submitter.  Taken under [mutex] so the
           broadcast cannot slip between the submitter's pending check
           and its wait. *)
        Mutex.lock pool.mutex;
        Condition.broadcast pool.job_done;
        Mutex.unlock pool.mutex
      end;
      loop ()
    end
  in
  loop ()

let worker_loop pool index () =
  Domain.DLS.set in_task true;
  Domain.DLS.set slot_key index;
  let last_epoch = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while pool.epoch = !last_epoch && not pool.stopped do
      Condition.wait pool.work_ready pool.mutex
    done;
    if pool.stopped then begin
      (* Checked only here, at the gate: a worker mid-job always
         finishes its claimed chunks before it can observe [stopped],
         so shutdown during an in-flight job cannot strand the
         submitter's pending count. *)
      running := false;
      Mutex.unlock pool.mutex
    end
    else begin
      last_epoch := pool.epoch;
      let job = pool.current in
      Mutex.unlock pool.mutex;
      (* [current] may already be cleared if the job finished before we
         woke; the stale epoch was still consumed above. *)
      match job with Some j -> run_chunks pool j | None -> ()
    end
  done

let create n =
  let size = clamp_size n in
  let pool =
    {
      size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      job_done = Condition.create ();
      current = None;
      epoch = 0;
      stopped = false;
      workers = [||];
      submit = Mutex.create ();
    }
  in
  if size > 1 then
    pool.workers <-
      Array.init (size - 1) (fun i -> Domain.spawn (worker_loop pool (i + 1)));
  pool

let size pool = pool.size

(* Idempotent: a second (or concurrent) call finds [stopped] already
   set and returns immediately — the first caller owns the join.  This
   makes the [at_exit] guard below safe even when the user already shut
   the pool down explicitly.  A pool remains usable after shutdown: the
   submitting domain simply drains every chunk itself. *)
let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.stopped then Mutex.unlock pool.mutex
  else begin
    pool.stopped <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    let workers = pool.workers in
    pool.workers <- [||];
    Array.iter Domain.join workers
  end

(* Run [body 0 .. body (n_chunks-1)] across the pool; re-raises the
   lowest-indexed exception (deterministic regardless of execution
   order) with its original backtrace.  The submitting domain
   participates in claiming chunks. *)
let exec_chunks pool ~n_chunks body =
  if n_chunks <= 0 then ()
  else if pool.size <= 1 || n_chunks = 1 || Domain.DLS.get in_task then
    for c = 0 to n_chunks - 1 do
      body c
    done
  else begin
    Mutex.lock pool.submit;
    let errors = Array.make n_chunks None in
    let run c =
      try body c
      with e ->
        (* Capture the backtrace where the chunk raised, so the
           re-raise on the submitting domain preserves the real
           origin. *)
        errors.(c) <- Some (e, Printexc.get_raw_backtrace ())
    in
    let job =
      { run; n_chunks; cursor = Atomic.make 0; pending = Atomic.make n_chunks }
    in
    Mutex.lock pool.mutex;
    pool.current <- Some job;
    pool.epoch <- pool.epoch + 1;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    Domain.DLS.set in_task true;
    run_chunks pool job;
    Domain.DLS.set in_task false;
    Mutex.lock pool.mutex;
    while Atomic.get job.pending > 0 do
      Condition.wait pool.job_done pool.mutex
    done;
    pool.current <- None;
    Mutex.unlock pool.mutex;
    Mutex.unlock pool.submit;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors
  end

let parallel_for ?chunk pool ~n f =
  if n > 0 then begin
    let c =
      match chunk with
      | Some c -> Stdlib.max 1 c
      | None -> Tune.chunk ~size:pool.size ~n ()
    in
    let n_chunks = (n + c - 1) / c in
    exec_chunks pool ~n_chunks (fun ci ->
        let lo = ci * c in
        let hi = Stdlib.min n (lo + c) in
        for i = lo to hi - 1 do
          f i
        done)
  end

let map ?chunk pool ~n f =
  let slots = Array.make n None in
  parallel_for ?chunk pool ~n (fun i -> slots.(i) <- Some (f i));
  Array.map (function Some x -> x | None -> assert false) slots

let map_reduce ?chunk pool ~n ~map:map_f ~init ~reduce =
  (* Mapped in parallel, reduced sequentially in index order: the
     result is bit-identical to the sequential fold for any pool size
     and chunking, even for non-associative float reductions. *)
  Array.fold_left reduce init (map ?chunk pool ~n map_f)

let map_array ?chunk pool f xs =
  map ?chunk pool ~n:(Array.length xs) (fun i -> f xs.(i))

(* --- Global default pool ------------------------------------------- *)

let default_pool : t option ref = ref None

let default_mutex = Mutex.create ()

(* Join the default pool's domains at process exit: a fault that
   unwinds past the pool's users (or a plain exit mid-pipeline) must
   not leak live domains.  [shutdown] is idempotent, so this is safe
   when the pool was already shut down explicitly.  Registered once,
   under [default_mutex]. *)
let at_exit_registered = ref false

let register_at_exit () =
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit (fun () ->
        match !default_pool with Some p -> shutdown p | None -> ())
  end

let default () =
  Mutex.lock default_mutex;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create (env_domains ()) in
        default_pool := Some p;
        register_at_exit ();
        p
  in
  Mutex.unlock default_mutex;
  pool

(* Resize the shared default pool (bench and the determinism tests use
   this to compare domain counts within one process). *)
let set_default_size n =
  Mutex.lock default_mutex;
  (match !default_pool with Some p -> shutdown p | None -> ());
  default_pool := Some (create n);
  register_at_exit ();
  Mutex.unlock default_mutex
